// Extension bench: sampled-engine error vs. speedup, per scheduling scheme.
//
// Runs every factory scheduler on a fig-2-grid workload subset twice — once
// under the exact skip engine, once under engine=sampled (SMARTS-style
// interval sampling, src/sim/system.cpp run_sampled) — and reports, per
// (workload, scheme) case:
//   * wall-clock speedup of sampled over exact;
//   * the relative error of each headline estimate (read latency, total
//     IPC, row-hit rate, fairness proxy) against the exact run;
//   * the estimate's own relative 95% CI half-width, so the table shows
//     whether the stated uncertainty covers the observed error.
// The differential CI-coverage *gate* lives in tests/test_sampled_equiv.cpp
// (ctest -L sampled-equiv); this bench produces the error-vs-speedup table
// quoted in EXPERIMENTS.md. Emits BENCH_sampled_error.json (out=<path>).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/scheduler_factory.hpp"
#include "harness/guarded_main.hpp"
#include "report.hpp"
#include "sim/system.hpp"
#include "sim/workloads.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/wallclock.hpp"

using namespace memsched;
using bench::BenchSetup;

namespace {

// The full fig-2 core-count span. The 8-core cases are where sampling pays
// most: exact simulation cost per instruction grows with core count while
// the detailed sample stays fixed at K*(warmup+measure).
const std::vector<std::string> kWorkloads = {"2MEM-1", "2MIX-1", "4MEM-1",
                                             "4MIX-1", "8MEM-1", "8MIX-1"};

// The fig2 reference schemes (paper's five plus the epoch-aware zoo's
// leaderboard additions); schemes=... swaps in any factory subset,
// e.g. the full core::known_schedulers() zoo.
const std::vector<std::string> kFig2Schemes = {"HF-RF", "ME",      "RR",  "LREQ",
                                               "ME-LREQ", "BLISS", "TCM", "CADS"};

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string tok = csv.substr(start, comma - start);
    if (!tok.empty()) out.push_back(tok);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

sched::SchedulerPtr scheduler_for(const std::string& scheme, std::uint32_t cores) {
  core::SchedulerArgs args;
  args.core_count = cores;
  std::vector<double> me, ipc;
  for (std::uint32_t c = 0; c < cores; ++c) {
    me.push_back(9.0 / (1.0 + static_cast<double>(c)));
    ipc.push_back(2.0 / (1.0 + 0.2 * static_cast<double>(c)));
  }
  args.me = core::MeTable(me);
  args.ipc_single = ipc;
  return core::make_scheduler(scheme, args);
}

struct TimedResult {
  double wall_s = 0.0;
  sim::RunResult result;
};

TimedResult timed_run(const BenchSetup& setup, const sim::Workload& w,
                      const std::string& scheme, sim::Engine engine, int reps) {
  sim::SystemConfig cfg = setup.experiment.base;
  cfg.cores = w.cores();
  cfg.engine = engine;
  TimedResult out;
  for (int i = 0; i < reps; ++i) {
    const sched::SchedulerPtr s = scheduler_for(scheme, cfg.cores);
    sim::MultiCoreSystem sys(cfg, w.apps(), *s, setup.experiment.eval_seed);
    const auto t0 = util::monotonic_now();
    out.result = sys.run(setup.experiment.eval_insts, setup.experiment.warmup_insts);
    const double wall = util::seconds_between(t0, util::monotonic_now());
    if (i == 0 || wall < out.wall_s) out.wall_s = wall;
  }
  return out;
}

double rel_pct(double est, double exact) {
  return exact == 0.0 ? 0.0 : 100.0 * std::abs(est - exact) / std::abs(exact);
}

double exact_ipc_ratio(const sim::RunResult& r) {
  double lo = 0.0, hi = 0.0;
  for (std::size_t c = 0; c < r.cores.size(); ++c) {
    const double ipc = r.cores[c].ipc;
    lo = c == 0 ? ipc : std::min(lo, ipc);
    hi = c == 0 ? ipc : std::max(hi, ipc);
  }
  return lo > 0.0 ? hi / lo : 1.0;
}

int run_bench(int argc, char** argv) {
  BenchSetup setup = BenchSetup::parse(
      argc, argv, {"out", "reps", "intervals", "interval_insts", "sample_warmup",
                   "workloads", "schemes"});
  sim::SamplingConfig& smp_cfg = setup.experiment.base.sampling;
  smp_cfg.intervals =
      static_cast<std::uint32_t>(setup.cli.get_uint("intervals", smp_cfg.intervals));
  smp_cfg.interval_insts = setup.cli.get_uint("interval_insts", smp_cfg.interval_insts);
  smp_cfg.warmup_insts = setup.cli.get_uint("sample_warmup", smp_cfg.warmup_insts);
  bench::print_header(
      setup, "Extension — sampled-engine error vs. speedup",
      "interval sampling trades exactness for wall clock; errors must sit "
      "within the stated 95% CIs (gated by ctest -L sampled-equiv)");
  const int reps =
      std::max(1, static_cast<int>(setup.cli.get_int("reps", 2)));
  const std::string out_path =
      setup.cli.get_string("out", "BENCH_sampled_error.json");

  std::vector<std::string> workloads = kWorkloads;
  if (const std::string csv = setup.cli.get_string("workloads", ""); !csv.empty())
    workloads = split_csv(csv);
  std::vector<std::string> schemes = kFig2Schemes;
  if (const std::string csv = setup.cli.get_string("schemes", ""); !csv.empty())
    schemes = split_csv(csv);
  util::Json cases = util::Json::array();
  util::RunningStat speedups;
  util::RunningStat lat_err, ipc_err, rhr_err, fair_err;
  double grid_wall_exact = 0.0, grid_wall_sampled = 0.0;

  for (const std::string& wl : workloads) {
    const sim::Workload& w = sim::workload_by_name(wl);
    std::printf("---- %s (%u cores, %llu insts/core) ----\n", wl.c_str(), w.cores(),
                static_cast<unsigned long long>(setup.experiment.eval_insts));
    std::printf("%-9s %8s %12s %12s %12s %12s\n", "scheme", "speedup",
                "lat err/ci%", "ipc err/ci%", "rhr err/ci%", "fair err/ci%");
    for (const std::string& scheme : schemes) {
      const TimedResult exact = timed_run(setup, w, scheme, sim::Engine::kSkip, reps);
      const TimedResult smp = timed_run(setup, w, scheme, sim::Engine::kSampled, reps);
      const sim::SamplingStats& st = smp.result.sampling;

      const double speedup = exact.wall_s / std::max(smp.wall_s, 1e-9);
      const double lat_exact = exact.result.avg_read_latency_cpu;
      const double ipc_exact = exact.result.total_ipc();
      const double rhr_exact = exact.result.row_hit_rate;
      const double fair_exact = exact_ipc_ratio(exact.result);

      const auto err_ci = [](const sim::MetricEstimate& e, double ex) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%5.1f/%4.1f", rel_pct(e.mean, ex),
                      ex == 0.0 ? 0.0 : 100.0 * e.ci95 / std::abs(ex));
        return std::string(buf);
      };
      std::printf("%-9s %7.2fx %12s %12s %12s %12s\n", scheme.c_str(), speedup,
                  err_ci(st.read_latency_cpu, lat_exact).c_str(),
                  err_ci(st.total_ipc, ipc_exact).c_str(),
                  err_ci(st.row_hit_rate, rhr_exact).c_str(),
                  err_ci(st.ipc_ratio, fair_exact).c_str());

      speedups.add(speedup);
      grid_wall_exact += exact.wall_s;
      grid_wall_sampled += smp.wall_s;
      lat_err.add(rel_pct(st.read_latency_cpu.mean, lat_exact));
      ipc_err.add(rel_pct(st.total_ipc.mean, ipc_exact));
      rhr_err.add(rel_pct(st.row_hit_rate.mean, rhr_exact));
      fair_err.add(rel_pct(st.ipc_ratio.mean, fair_exact));

      util::Json e = util::Json::object();
      e["workload"] = wl;
      e["scheme"] = scheme;
      e["wall_s_exact"] = exact.wall_s;
      e["wall_s_sampled"] = smp.wall_s;
      e["speedup"] = speedup;
      e["read_latency_err_pct"] = rel_pct(st.read_latency_cpu.mean, lat_exact);
      e["read_latency_ci95"] = st.read_latency_cpu.ci95;
      e["total_ipc_err_pct"] = rel_pct(st.total_ipc.mean, ipc_exact);
      e["row_hit_rate_err_pct"] = rel_pct(st.row_hit_rate.mean, rhr_exact);
      e["ipc_ratio_err_pct"] = rel_pct(st.ipc_ratio.mean, fair_exact);
      // Raw point estimates, so the table is reproducible and scheme-ranking
      // fidelity (does sampled order the schemes like exact?) can be checked
      // offline from the JSON alone.
      e["read_latency_exact"] = lat_exact;
      e["read_latency_sampled"] = st.read_latency_cpu.mean;
      e["total_ipc_exact"] = ipc_exact;
      e["total_ipc_sampled"] = st.total_ipc.mean;
      e["row_hit_rate_exact"] = rhr_exact;
      e["row_hit_rate_sampled"] = st.row_hit_rate.mean;
      e["ipc_ratio_exact"] = fair_exact;
      e["ipc_ratio_sampled"] = st.ipc_ratio.mean;
      e["intervals_measured"] = static_cast<double>(st.intervals_measured);
      cases.push_back(std::move(e));
    }
    std::printf("\n");
  }

  std::printf("==== aggregate over %zu cases ====\n", static_cast<std::size_t>(speedups.count()));
  const double grid_speedup = grid_wall_exact / std::max(grid_wall_sampled, 1e-9);
  std::printf("grid wall clock:    exact %.2fs  sampled %.2fs  -> %.2fx\n",
              grid_wall_exact, grid_wall_sampled, grid_speedup);
  std::printf("per-case speedup:   min %.2fx  mean %.2fx  max %.2fx\n", speedups.min(),
              speedups.mean(), speedups.max());
  std::printf("read-latency error: mean %.1f%%  max %.1f%%\n", lat_err.mean(), lat_err.max());
  std::printf("total-IPC error:    mean %.1f%%  max %.1f%%\n", ipc_err.mean(), ipc_err.max());
  std::printf("row-hit-rate error: mean %.1f%%  max %.1f%%\n", rhr_err.mean(), rhr_err.max());
  std::printf("fairness error:     mean %.1f%%  max %.1f%%\n", fair_err.mean(), fair_err.max());

  util::Json doc = util::Json::object();
  doc["bench"] = "sampled_error_speedup";
  doc["eval_insts"] = static_cast<double>(setup.experiment.eval_insts);
  doc["cases"] = std::move(cases);
  doc["speedup_min"] = speedups.min();
  doc["speedup_mean"] = speedups.mean();
  doc["grid_wall_exact_s"] = grid_wall_exact;
  doc["grid_wall_sampled_s"] = grid_wall_sampled;
  doc["grid_speedup"] = grid_speedup;
  doc.write_file(out_path);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return harness::guarded_main("sampled_error_speedup",
                               [&] { return run_bench(argc, argv); });
}
