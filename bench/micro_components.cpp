// Component microbenchmarks (google-benchmark): cost of the simulator's
// building blocks, and of one scheduling decision per policy. These measure
// the *simulator*, not the modeled hardware — they answer "how fast does
// memsched run" and guard against performance regressions in the hot loop.
#include <benchmark/benchmark.h>

#include "cache/cache.hpp"
#include "core/me_schedulers.hpp"
#include "core/priority_table.hpp"
#include "core/scheduler_factory.hpp"
#include "dram/address_map.hpp"
#include "sched/policies.hpp"
#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace memsched;

void BM_Xoshiro(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Xoshiro);

void BM_AddressDecode(benchmark::State& state) {
  dram::Organization org;
  dram::AddressMap map(org, dram::Interleave::kHybrid);
  util::Xoshiro256 rng(2);
  Addr a = 0;
  for (auto _ : state) {
    a += 64 * 1024 + 64;
    benchmark::DoNotOptimize(map.decode(a));
  }
}
BENCHMARK(BM_AddressDecode);

void BM_CacheAccess(benchmark::State& state) {
  cache::CacheConfig cfg;
  cfg.size_bytes = 4ull << 20;
  cfg.ways = 4;
  cache::SetAssocCache cache(cfg);
  util::Xoshiro256 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.below(64ull << 20) & ~63ull, false));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_SyntheticStream(benchmark::State& state) {
  const auto& app = trace::spec2000_by_name("swim");
  trace::SyntheticStream s(app, 0, 7);
  for (auto _ : state) benchmark::DoNotOptimize(s.next());
}
BENCHMARK(BM_SyntheticStream);

void BM_PriorityTableLookup(benchmark::State& state) {
  core::MeTable me({2.5, 0.3, 0.7, 0.08});
  core::PriorityTable table(me);
  std::uint32_t p = 1;
  for (auto _ : state) {
    p = (p % 64) + 1;
    benchmark::DoNotOptimize(table.lookup(p & 3, p));
  }
}
BENCHMARK(BM_PriorityTableLookup);

// One full simulated bus cycle of an N-core system under a given scheduler,
// measured end to end (cores + caches + controller + DRAM).
void BM_SystemTick(benchmark::State& state) {
  const auto cores = static_cast<std::uint32_t>(state.range(0));
  sim::SystemConfig cfg;
  cfg.cores = cores;
  std::vector<trace::AppProfile> apps;
  const char* names[] = {"swim", "applu", "mgrid", "wupwise",
                         "mcf",  "equake", "galgel", "lucas"};
  for (std::uint32_t c = 0; c < cores; ++c)
    apps.push_back(trace::spec2000_by_name(names[c % 8]));
  sched::HitFirstReadFirstScheduler sched;
  sim::MultiCoreSystem sys(cfg, apps, sched, 11);
  sys.run(5'000, 0);  // settle
  for (auto _ : state) sys.run(200, 0);
  state.SetItemsProcessed(state.iterations() * 200 * cores);
}
BENCHMARK(BM_SystemTick)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

// Scheduling-decision cost per policy: a loaded 8-core controller ticking.
void BM_SchedulerDecision(benchmark::State& state) {
  const char* schemes[] = {"HF-RF", "RR", "LREQ", "ME", "ME-LREQ", "ME-LREQ-HW"};
  const std::string scheme = schemes[state.range(0)];
  sim::SystemConfig cfg;
  cfg.cores = 8;
  std::vector<trace::AppProfile> apps;
  const char* names[] = {"swim", "applu", "mgrid", "wupwise",
                         "mcf",  "equake", "galgel", "lucas"};
  std::vector<double> me;
  for (int c = 0; c < 8; ++c) {
    apps.push_back(trace::spec2000_by_name(names[c]));
    me.push_back(apps.back().predicted_me());
  }
  core::SchedulerArgs args;
  args.core_count = 8;
  args.me = core::MeTable(me);
  auto sched = core::make_scheduler(scheme, args);
  sim::MultiCoreSystem sys(cfg, apps, *sched, 13);
  sys.run(5'000, 0);
  for (auto _ : state) sys.run(200, 0);
  state.SetLabel(scheme);
}
BENCHMARK(BM_SchedulerDecision)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
