// Extension bench: simulation-engine throughput — cycle oracle vs. skip.
//
// Measures wall-clock time and simulated-ticks-per-second for both time-
// advancement engines on (a) the paper's closed-loop workloads and (b) the
// open-loop queueing driver at several offered loads. The low-load open-loop
// points are the genuinely idle-heavy case (low MLP: long quiet spans between
// arrivals) where next-event fast-forwarding pays off by an order of
// magnitude; the closed-loop workloads have a high activity floor (cores
// compute almost every tick) and mostly document that the skip engine costs
// nothing there. Every measurement first asserts that the two engines
// produced identical results — a speedup over a wrong simulation would be
// meaningless.
//
// Emits BENCH_sim_throughput.json (override with out=<path>) for
// scripts/check_throughput.py, the CI regression gate.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/scheduler_factory.hpp"
#include "harness/guarded_main.hpp"
#include "report.hpp"
#include "sim/json_report.hpp"
#include "sim/open_loop.hpp"
#include "sim/system.hpp"
#include "sim/workloads.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/wallclock.hpp"

using namespace memsched;
using bench::BenchSetup;

namespace {

double seconds_since(util::MonotonicTime t0) {
  return util::seconds_between(t0, util::monotonic_now());
}

sched::SchedulerPtr scheduler_for(const std::string& scheme, std::uint32_t cores) {
  core::SchedulerArgs args;
  args.core_count = cores;
  std::vector<double> me, ipc;
  for (std::uint32_t c = 0; c < cores; ++c) {
    me.push_back(9.0 / (1.0 + static_cast<double>(c)));
    ipc.push_back(2.0 / (1.0 + 0.2 * static_cast<double>(c)));
  }
  args.me = core::MeTable(me);
  args.ipc_single = ipc;
  return core::make_scheduler(scheme, args);
}

struct TimedRun {
  double wall_s = 0.0;
  Tick ticks = 0;
  Tick visited = 0;
  std::string record;  ///< serialized result, for the equality check
};

// Wall time is the min over at least `reps` fresh runs (best-of-N): the
// simulation is deterministic, so the minimum is the least-noise estimate of
// its cost. Short runs get extra repetitions so every case accumulates
// roughly 150 ms of sampling — a single descheduling blip on a 10 ms run
// would otherwise swing the reported ratio by tens of percent.
int reps_for(double first_wall_s, int reps) {
  const int by_time = static_cast<int>(0.15 / std::max(first_wall_s, 1e-4));
  return std::max(reps, std::min(12, by_time));
}

TimedRun time_closed(const BenchSetup& setup, const sim::Workload& w,
                     const std::string& scheme, sim::Engine engine, int reps) {
  sim::SystemConfig cfg = setup.experiment.base;
  cfg.cores = w.cores();
  cfg.engine = engine;
  TimedRun out;
  for (int i = 0; i < reps; ++i) {
    const sched::SchedulerPtr s = scheduler_for(scheme, cfg.cores);
    sim::MultiCoreSystem sys(cfg, w.apps(), *s, setup.experiment.eval_seed);
    const auto t0 = util::monotonic_now();
    const sim::RunResult r = sys.run(setup.experiment.eval_insts,
                                     setup.experiment.warmup_insts);
    const double wall = seconds_since(t0);
    if (i == 0) reps = reps_for(wall, reps);
    if (i == 0 || wall < out.wall_s) out.wall_s = wall;
    out.ticks = r.ticks;
    out.visited = r.visited_ticks;
    out.record = sim::to_json(r).dump();
  }
  return out;
}

TimedRun time_open(const sim::OpenLoopConfig& base, const std::string& scheme,
                   sim::Engine engine, int reps) {
  sim::OpenLoopConfig cfg = base;
  cfg.engine = engine;
  TimedRun out;
  for (int i = 0; i < reps; ++i) {
    const sched::SchedulerPtr s = scheduler_for(scheme, cfg.cores);
    const auto t0 = util::monotonic_now();
    const sim::OpenLoopResult r = sim::run_open_loop(cfg, *s);
    const double wall = seconds_since(t0);
    if (i == 0) reps = reps_for(wall, reps);
    if (i == 0 || wall < out.wall_s) out.wall_s = wall;
    out.ticks = cfg.warmup_ticks + cfg.measure_ticks;
    char buf[256];
    std::snprintf(buf, sizeof buf, "%.17g %.17g %.17g %.17g %.17g %.17g %.17g",
                  r.offered_per_tick, r.accepted_per_tick,
                  r.avg_read_latency_ticks, r.p50_ticks, r.p90_ticks,
                  r.p99_ticks, r.row_hit_rate);
    out.record = buf;
  }
  return out;
}

int run_bench(int argc, char** argv) {
  const BenchSetup setup =
      BenchSetup::parse(argc, argv, {"out", "ol_ticks", "reps"});
  bench::print_header(setup, "Extension — engine throughput (cycle vs. skip)",
                      "the next-event engine is byte-identical to the per-cycle "
                      "oracle, free on compute-bound workloads and >=3x faster "
                      "on idle-heavy (low-MLP) ones");

  const std::string out_path =
      setup.cli.get_string("out", "BENCH_sim_throughput.json");
  const Tick ol_ticks = setup.cli.get_uint("ol_ticks", 1'200'000);
  const int reps = static_cast<int>(setup.cli.get_uint("reps", 3));

  bench::CsvSink csv(setup.csv_path);
  csv.row({"kind", "case", "scheme", "ticks", "visited_share", "wall_s_cycle",
           "wall_s_skip", "speedup", "mticks_per_s_skip"});

  util::Json doc = util::Json::object();
  doc["bench"] = "sim_throughput";
  doc["eval_insts"] = setup.experiment.eval_insts;
  doc["open_loop_ticks"] = ol_ticks;
  util::Json closed = util::Json::array();
  util::Json open = util::Json::array();
  bool all_identical = true;

  // --- closed-loop paper workloads ---------------------------------------
  const std::vector<std::pair<std::string, std::string>> kClosed = {
      {"2MEM-1", "HF-RF"}, {"2MIX-1", "FCFS"},
      {"4MEM-1", "ME-LREQ"}, {"4MIX-1", "PAR-BS"}};

  std::printf("closed loop (paper workloads, %llu insts/core):\n",
              static_cast<unsigned long long>(setup.experiment.eval_insts));
  std::printf("  %-8s %-8s %12s %8s %9s %9s %8s\n", "workload", "scheme",
              "bus ticks", "visited", "cycle(s)", "skip(s)", "speedup");
  double busy_wall_s = 0.0;   // non-idle-heavy closed-loop skip walls
  double busy_ticks = 0.0;
  for (const auto& [wname, scheme] : kClosed) {
    const sim::Workload& w = sim::workload_by_name(wname);
    const TimedRun cyc = time_closed(setup, w, scheme, sim::Engine::kCycle, reps);
    const TimedRun skp = time_closed(setup, w, scheme, sim::Engine::kSkip, reps);
    const bool same = cyc.record == skp.record;
    all_identical = all_identical && same;
    const double share =
        static_cast<double>(skp.visited) / static_cast<double>(skp.ticks);
    const double speedup = cyc.wall_s / skp.wall_s;
    std::printf("  %-8s %-8s %12llu %7.0f%% %9.3f %9.3f %7.2fx%s\n",
                wname.c_str(), scheme.c_str(),
                static_cast<unsigned long long>(skp.ticks), share * 100.0,
                cyc.wall_s, skp.wall_s, speedup,
                same ? "" : "  <-- RESULTS DIVERGED");
    util::Json e = util::Json::object();
    e["workload"] = wname;
    e["scheme"] = scheme;
    e["ticks"] = skp.ticks;
    e["visited_share"] = share;
    e["wall_s_cycle"] = cyc.wall_s;
    e["wall_s_skip"] = skp.wall_s;
    e["speedup"] = speedup;
    e["mticks_per_s_skip"] = static_cast<double>(skp.ticks) / skp.wall_s / 1e6;
    e["results_identical"] = same;
    e["idle_heavy"] = false;
    busy_wall_s += skp.wall_s;
    busy_ticks += static_cast<double>(skp.ticks);
    closed.push_back(e);
    csv.row({"closed", wname, scheme, std::to_string(skp.ticks),
             util::fmt(share, 4), util::fmt(cyc.wall_s, 4),
             util::fmt(skp.wall_s, 4), util::fmt(speedup, 3),
             util::fmt(static_cast<double>(skp.ticks) / skp.wall_s / 1e6, 2)});
  }

  // --- open-loop offered-load sweep --------------------------------------
  // Low loads are the paper-methodology idle-heavy points (queueing latency
  // curves near zero utilization): long arrival gaps the skip engine jumps.
  struct OpenCase {
    double load;
    bool idle_heavy;
  };
  const std::vector<OpenCase> kOpen = {
      {0.01, true}, {0.02, true}, {0.05, false}, {0.30, false}};

  std::printf("\nopen loop (HF-RF, %llu measured ticks):\n",
              static_cast<unsigned long long>(ol_ticks));
  std::printf("  %-8s %12s %9s %9s %8s\n", "load", "bus ticks", "cycle(s)",
              "skip(s)", "speedup");
  for (const OpenCase& oc : kOpen) {
    sim::OpenLoopConfig cfg;
    cfg.inject_per_tick = oc.load;
    cfg.warmup_ticks = 20'000;
    cfg.measure_ticks = ol_ticks;
    cfg.seed = setup.experiment.eval_seed;
    const TimedRun cyc = time_open(cfg, "HF-RF", sim::Engine::kCycle, reps);
    const TimedRun skp = time_open(cfg, "HF-RF", sim::Engine::kSkip, reps);
    const bool same = cyc.record == skp.record;
    all_identical = all_identical && same;
    const double speedup = cyc.wall_s / skp.wall_s;
    std::printf("  %-8.2f %12llu %9.3f %9.3f %7.2fx%s%s\n", oc.load,
                static_cast<unsigned long long>(skp.ticks), cyc.wall_s,
                skp.wall_s, speedup, oc.idle_heavy ? "  (idle-heavy)" : "",
                same ? "" : "  <-- RESULTS DIVERGED");
    util::Json e = util::Json::object();
    e["load"] = oc.load;
    e["scheme"] = "HF-RF";
    e["ticks"] = skp.ticks;
    e["wall_s_cycle"] = cyc.wall_s;
    e["wall_s_skip"] = skp.wall_s;
    e["speedup"] = speedup;
    e["mticks_per_s_skip"] = static_cast<double>(skp.ticks) / skp.wall_s / 1e6;
    e["results_identical"] = same;
    e["idle_heavy"] = oc.idle_heavy;
    open.push_back(e);
    csv.row({"open", util::fmt(oc.load, 2), "HF-RF", std::to_string(skp.ticks),
             "", util::fmt(cyc.wall_s, 4), util::fmt(skp.wall_s, 4),
             util::fmt(speedup, 3),
             util::fmt(static_cast<double>(skp.ticks) / skp.wall_s / 1e6, 2)});
  }

  doc["closed_loop"] = closed;
  doc["open_loop"] = open;
  doc["all_results_identical"] = all_identical;
  // The hot-path metric the baseline ratchet tracks explicitly: aggregate
  // skip-engine wall and throughput over the busy closed-loop cases, where
  // the per-tick controller/core path (not idle skipping) is the cost.
  util::Json busy = util::Json::object();
  busy["wall_s_skip"] = busy_wall_s;
  busy["mticks_per_s"] = busy_ticks / std::max(busy_wall_s, 1e-9) / 1e6;
  doc["busy_load"] = std::move(busy);
  std::printf("\nbusy-load aggregate (closed loop, skip engine): %.3f s, %.2f Mticks/s\n",
              busy_wall_s, busy_ticks / std::max(busy_wall_s, 1e-9) / 1e6);
  doc.write_file(out_path);
  std::printf("\nwrote %s; gate with scripts/check_throughput.py against\n"
              "bench/baselines/sim_throughput_baseline.json.\n", out_path.c_str());

  if (!all_identical) {
    std::printf("FAIL: engines disagreed on at least one case.\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return harness::guarded_main("sim_throughput",
                               [&] { return run_bench(argc, argv); });
}
