// Figure 2 reproduction: SMT speedup of HF-RF / ME / RR / LREQ / ME-LREQ on
// all 36 Table-3 workloads (2/4/8 cores, MEM and MIX groups), plus the
// paper's §5.1 headline aggregates.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/guarded_main.hpp"
#include "report.hpp"
#include "sim/json_report.hpp"
#include "sim/runner.hpp"
#include "sim/workloads.hpp"
#include "util/stats.hpp"

using namespace memsched;
using bench::BenchSetup;

namespace {

// The paper's five Figure-2 schemes first (the summary below references
// them by index), then the epoch-aware zoo appended for the leaderboard.
const std::vector<std::string> kSchemes = {"HF-RF", "ME",  "RR",  "LREQ",
                                           "ME-LREQ", "BLISS", "TCM", "CADS"};

struct Row {
  std::vector<sim::WorkloadRun> runs = std::vector<sim::WorkloadRun>(kSchemes.size());
};

}  // namespace

namespace {

int run_bench(int argc, char** argv) {
  const BenchSetup setup = BenchSetup::parse(argc, argv, {"json"});
  bench::print_header(
      setup, "Figure 2 — SMT speedup: paper schemes + BLISS/TCM/CADS",
      "ME-LREQ wins on MEM workloads; gains grow with core count "
      "(paper: +10.7% avg / +17.7% max over HF-RF on 4 cores; +19.9% avg on 8)");

  sim::Experiment exp(setup.experiment);
  bench::CsvSink csv(setup.csv_path);
  csv.row({"workload", "scheme", "smt_speedup", "vs_hfrf_pct"});

  const auto& all = sim::table3_workloads();

  // Profile every needed application first (serial, cached), so the
  // parallel evaluation phase only reads the caches.
  for (const auto& w : all) {
    for (const auto& app : w.apps()) exp.profile(app.name);
  }

  // Echo Table 3 so the workload composition is visible in the output.
  std::printf("Table 3 workload mixes:\n");
  for (const auto& w : all) {
    std::printf("  %-7s %-10s", w.name.c_str(), w.codes.c_str());
    if (w.name.back() == '6' || w.name.back() == '3') std::printf("\n");
  }
  std::printf("\n");

  std::vector<Row> rows(all.size());
  std::vector<std::pair<std::size_t, std::size_t>> jobs;
  for (std::size_t wi = 0; wi < all.size(); ++wi) {
    for (std::size_t si = 0; si < kSchemes.size(); ++si) jobs.emplace_back(wi, si);
  }
  sim::parallel_for(jobs.size(), sim::default_thread_count(), [&](std::size_t j) {
    const auto [wi, si] = jobs[j];
    rows[wi].runs[si] = exp.run(all[wi], kSchemes[si]);
  });

  // Optional machine-readable dump of every run (json=path).
  if (const std::string json_path = setup.cli.get_string("json", "");
      !json_path.empty()) {
    util::Json doc = util::Json::object();
    doc["artefact"] = "figure2";
    doc["config"] = sim::to_json(exp.config_for(4));
    util::Json runs = util::Json::array();
    for (std::size_t wi = 0; wi < all.size(); ++wi) {
      for (std::size_t si = 0; si < kSchemes.size(); ++si) {
        runs.push_back(sim::to_json(rows[wi].runs[si]));
      }
    }
    doc["runs"] = std::move(runs);
    doc.write_file(json_path);
    std::printf("(JSON dump written to %s)\n\n", json_path.c_str());
  }

  // Per-group tables + aggregates.
  std::map<std::string, std::vector<double>> group_gain;  // scheme gains per group
  struct Agg {
    std::vector<util::RunningStat> gain =
        std::vector<util::RunningStat>(kSchemes.size());  // vs HF-RF, percent
  };
  std::map<std::string, Agg> aggregates;  // key: "<cores><type>"

  for (std::uint32_t cores : {2u, 4u, 8u}) {
    for (const std::string type : {"MEM", "MIX"}) {
      std::printf("---- %u-core %s workloads ----\n", cores, type.c_str());
      std::printf("%-8s", "mix");
      for (const auto& s : kSchemes) std::printf(" %10s", s.c_str());
      std::printf("   best-vs-HF-RF\n");
      Agg& agg = aggregates[std::to_string(cores) + type];
      for (std::size_t wi = 0; wi < all.size(); ++wi) {
        const auto& w = all[wi];
        if (w.cores() != cores || w.memory_intensive != (type == "MEM")) continue;
        const Row& row = rows[wi];
        const double base = row.runs[0].smt_speedup;
        std::printf("%-8s", w.name.c_str());
        for (std::size_t si = 0; si < kSchemes.size(); ++si) {
          std::printf(" %10.4f", row.runs[si].smt_speedup);
          agg.gain[si].add(bench::pct(row.runs[si].smt_speedup, base));
          csv.row({w.name, kSchemes[si], util::fmt(row.runs[si].smt_speedup, 4),
                   util::fmt(bench::pct(row.runs[si].smt_speedup, base), 2)});
        }
        std::printf("   ME-LREQ %s\n",
                    bench::fmt_pct(bench::pct(row.runs[4].smt_speedup, base)).c_str());
      }
      std::printf("%-8s", "avg-gain");
      for (std::size_t si = 0; si < kSchemes.size(); ++si) {
        std::printf(" %10s", bench::fmt_pct(agg.gain[si].mean()).c_str());
      }
      std::printf("\n\n");
    }
  }

  std::printf("==== paper-vs-measured summary (SMT-speedup gain over HF-RF) ====\n");
  std::printf("%-34s %10s %10s\n", "aggregate", "paper", "measured");
  const auto line = [&](const char* label, const char* key, std::size_t si,
                        const char* paper, bool max_stat = false) {
    const Agg& a = aggregates[key];
    const double v = max_stat ? a.gain[si].max() : a.gain[si].mean();
    std::printf("%-34s %10s %9.1f%%\n", label, paper, v);
  };
  line("4-core MEM: LREQ avg", "4MEM", 3, "+4.0%");
  line("4-core MEM: ME-LREQ avg", "4MEM", 4, "+10.7%");
  line("4-core MEM: ME-LREQ max", "4MEM", 4, "+17.7%", true);
  line("4-core MEM: ME avg", "4MEM", 1, "-0.6%");
  line("8-core MEM: LREQ avg", "8MEM", 3, "+8.7%");
  line("8-core MEM: ME-LREQ avg", "8MEM", 4, "+19.9%");
  line("8-core MEM: ME-LREQ max", "8MEM", 4, "+21.4%", true);
  line("4-core MIX: ME-LREQ avg", "4MIX", 4, "+4.0%");
  line("8-core MIX: ME-LREQ avg", "8MIX", 4, "+12.1%");
  std::printf("\n(2-core groups are expected to be nearly flat — paper §5.1:\n"
              " \"the performance gains ... are insignificant on the two-core\n"
              " platform\".)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return harness::guarded_main("fig2_smt_speedup", [&] { return run_bench(argc, argv); });
}
