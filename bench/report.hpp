// Shared reporting helpers for the figure/table reproduction harnesses.
//
// Every harness prints:
//   * a header echoing the effective configuration (Table 1 defaults plus
//     any key=value overrides from the command line);
//   * the rows/series of the paper artefact it regenerates;
//   * a summary block comparing against the paper's headline numbers.
// Output is plain text; pass csv=<path> to also dump machine-readable rows.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "sim/experiment.hpp"
#include "util/config.hpp"

namespace memsched::bench {

/// Parses CLI overrides and builds the experiment configuration:
///   insts=N repeats=N warmup=N profile_insts=N seed=N profile_seed=N
///   interleave=line|page|hybrid refresh=0|1 verify=0|1
struct BenchSetup {
  util::Config cli;
  sim::ExperimentConfig experiment;
  std::string csv_path;  ///< empty = no CSV

  /// Parses or dies loudly: malformed tokens, unknown keys (after a
  /// did-you-mean check), or bad enum values print usage and raise
  /// std::invalid_argument, which the guarded_main wrapper turns into exit
  /// code 2 plus a structured MEMSCHED_ERROR line. `extra_keys` lists
  /// bench-specific additions to the shared vocabulary above.
  static BenchSetup parse(int argc, char** argv,
                          const std::vector<std::string_view>& extra_keys = {});
};

/// Prints the standard header: binary name, paper artefact, configuration.
void print_header(const BenchSetup& setup, const char* artefact,
                  const char* paper_claim);

/// Minimal CSV sink; writes a header row then data rows.
class CsvSink {
 public:
  explicit CsvSink(const std::string& path);  ///< empty path = disabled
  ~CsvSink();
  CsvSink(const CsvSink&) = delete;
  CsvSink& operator=(const CsvSink&) = delete;

  void row(const std::vector<std::string>& cells);

 private:
  std::FILE* f_ = nullptr;
};

/// Percentage delta helper: 100 * (x / base - 1).
double pct(double x, double base);

/// "+4.2%"-style formatting.
std::string fmt_pct(double percent);

}  // namespace memsched::bench
