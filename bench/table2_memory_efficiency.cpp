// Table 2 reproduction: application class and memory-efficiency value for
// all 26 SPEC2000 application models, from single-core profiling runs
// (Equation 1: ME = IPC_single / BW_single).
//
// Absolute ME values differ from the paper by the documented uniform factor
// kTable2MeScale (the schedulers only consume ME relatively); what must
// match is the ORDER and the RATIOS, which the rank columns make visible.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness/guarded_main.hpp"
#include "report.hpp"
#include "trace/app_profile.hpp"
#include "util/stats.hpp"

using namespace memsched;
using bench::BenchSetup;

namespace {

int run_bench(int argc, char** argv) {
  const BenchSetup setup = BenchSetup::parse(argc, argv);
  bench::print_header(setup, "Table 2 — per-application memory efficiency",
                      "26 SPEC2000 apps, class (M/I) and ME = IPC_single/BW_single");

  sim::Experiment exp(setup.experiment);
  bench::CsvSink csv(setup.csv_path);
  csv.row({"app", "code", "class", "paper_me", "measured_me", "scaled_me",
           "ipc_single", "bw_gbs"});

  struct Entry {
    const trace::AppProfile* app;
    core::MeProfile profile;
  };
  std::vector<Entry> entries;
  for (const auto& app : trace::spec2000_profiles()) {
    entries.push_back({&app, exp.profile(app.name)});
  }

  std::printf("%-10s %4s %5s %10s %12s %12s %8s %9s\n", "app", "code", "class",
              "paper-ME", "measured-ME", "scaled-ME", "IPC1", "BW(GB/s)");
  for (const Entry& e : entries) {
    const double scaled = e.profile.memory_efficiency * trace::kTable2MeScale;
    std::printf("%-10s %4c %5c %10.0f %12.3f %12.1f %8.3f %9.3f\n",
                e.app->name.c_str(), e.app->code,
                e.app->memory_intensive ? 'M' : 'I', e.app->table_me,
                e.profile.memory_efficiency, scaled, e.profile.ipc_single,
                e.profile.bandwidth_gbs);
    csv.row({e.app->name, std::string(1, e.app->code),
             e.app->memory_intensive ? "M" : "I", util::fmt(e.app->table_me, 0),
             util::fmt(e.profile.memory_efficiency, 4), util::fmt(scaled, 2),
             util::fmt(e.profile.ipc_single, 3), util::fmt(e.profile.bandwidth_gbs, 3)});
  }

  // Rank agreement: Spearman-style check between paper ME and measured ME.
  std::vector<std::size_t> by_paper(entries.size()), by_meas(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) by_paper[i] = by_meas[i] = i;
  std::sort(by_paper.begin(), by_paper.end(), [&](std::size_t a, std::size_t b) {
    return entries[a].app->table_me < entries[b].app->table_me;
  });
  std::sort(by_meas.begin(), by_meas.end(), [&](std::size_t a, std::size_t b) {
    return entries[a].profile.memory_efficiency < entries[b].profile.memory_efficiency;
  });
  std::vector<double> rank_paper(entries.size()), rank_meas(entries.size());
  for (std::size_t r = 0; r < entries.size(); ++r) {
    rank_paper[by_paper[r]] = static_cast<double>(r);
    rank_meas[by_meas[r]] = static_cast<double>(r);
  }
  double d2 = 0.0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const double d = rank_paper[i] - rank_meas[i];
    d2 += d * d;
  }
  const double n = static_cast<double>(entries.size());
  const double spearman = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));

  std::printf("\n==== paper-vs-measured summary ====\n");
  std::printf("Spearman rank correlation, paper ME vs measured ME: %.3f "
              "(1.0 = identical ordering)\n", spearman);
  std::printf("scaled-ME column = measured-ME x %.0f (the documented uniform\n"
              "traffic-scale factor); it should approximate the paper column.\n",
              trace::kTable2MeScale);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return harness::guarded_main("table2_memory_efficiency", [&] { return run_bench(argc, argv); });
}
