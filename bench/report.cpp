#include "report.hpp"

#include <cstdio>
#include <stdexcept>

#include "sim/engine.hpp"

namespace memsched::bench {

BenchSetup BenchSetup::parse(int argc, char** argv,
                             const std::vector<std::string_view>& extra_keys) {
  BenchSetup out;
  const auto fail = [&](const std::string& msg) -> void {
    std::fprintf(stderr, "argument error: %s\n", msg.c_str());
    std::fprintf(stderr,
                 "usage: %s [insts=N] [repeats=N] [warmup=N] [profile_insts=N]\n"
                 "          [seed=N] [profile_seed=N] [interleave=line|page|hybrid]\n"
                 "          [refresh=0|1] [verify=0|1] [engine=skip|cycle|sampled] [csv=path]\n",
                 argv[0]);
    throw std::invalid_argument(msg);
  };
  if (auto err = out.cli.parse_args(argc, argv)) fail(*err);
  // A misspelled override must stop the bench, not silently measure the
  // default configuration.
  std::vector<std::string_view> known = {"insts",        "repeats",    "warmup",
                                         "profile_insts", "seed",      "profile_seed",
                                         "interleave",    "refresh",   "verify",
                                         "engine",        "csv"};
  known.insert(known.end(), extra_keys.begin(), extra_keys.end());
  if (auto err = out.cli.check_known(known)) fail(*err);
  sim::ExperimentConfig& e = out.experiment;
  e.eval_insts = out.cli.get_uint("insts", e.eval_insts);
  e.eval_repeats = static_cast<std::uint32_t>(out.cli.get_uint("repeats", e.eval_repeats));
  e.warmup_insts = out.cli.get_uint("warmup", e.warmup_insts);
  e.profile_insts = out.cli.get_uint("profile_insts", e.profile_insts);
  e.eval_seed = out.cli.get_uint("seed", e.eval_seed);
  e.profile_seed = out.cli.get_uint("profile_seed", e.profile_seed);
  const std::string il = out.cli.get_string("interleave", "hybrid");
  if (il == "line") e.base.interleave = dram::Interleave::kLineInterleave;
  else if (il == "page") e.base.interleave = dram::Interleave::kPageInterleave;
  else if (il == "hybrid") e.base.interleave = dram::Interleave::kHybrid;
  else fail("unknown interleave '" + il + "'");
  e.base.timing.refresh_enabled = out.cli.get_bool("refresh", false);
  // Default comes from the MEMSCHED_VERIFY environment flag; verify= overrides.
  e.base.audit.enabled = out.cli.get_bool("verify", e.base.audit.enabled);
  const std::string eng = out.cli.get_string("engine", "skip");
  if (eng == "skip") e.base.engine = sim::Engine::kSkip;
  else if (eng == "cycle") e.base.engine = sim::Engine::kCycle;
  else if (eng == "sampled") e.base.engine = sim::Engine::kSampled;
  else fail("unknown engine '" + eng + "'");
  out.csv_path = out.cli.get_string("csv", "");
  return out;
}

void print_header(const BenchSetup& setup, const char* artefact,
                  const char* paper_claim) {
  const sim::ExperimentConfig& e = setup.experiment;
  std::printf("memsched reproduction — %s\n", artefact);
  std::printf("paper: Zheng et al., \"Memory Access Scheduling Schemes for Systems with\n");
  std::printf("       Multi-Core Processors\", ICPP 2008\n");
  std::printf("claim: %s\n", paper_claim);
  std::printf(
      "config (Table 1): %u-issue cores @%.1f GHz, 64KB L1, 4MB shared L2,\n"
      "  %u logic channels x %u banks DDR2-800 5-5-5, %u-entry controller buffer,\n"
      "  %s mapping, close page, read-first + hit-first, write drain %u/%u\n",
      e.base.core.issue_width, e.base.cpu_ghz, e.base.org.channels,
      e.base.org.banks_per_channel(), e.base.controller.buffer_entries,
      dram::AddressMap::scheme_name(e.base.interleave).c_str(),
      e.base.controller.drain_high, e.base.controller.drain_low);
  std::printf("run: eval %llu insts x %u slices (seed %llu), profile %llu insts "
              "(seed %llu), warmup %llu, %s engine\n\n",
              static_cast<unsigned long long>(e.eval_insts), e.eval_repeats,
              static_cast<unsigned long long>(e.eval_seed),
              static_cast<unsigned long long>(e.profile_insts),
              static_cast<unsigned long long>(e.profile_seed),
              static_cast<unsigned long long>(e.warmup_insts),
              sim::engine_name(e.base.engine));
}

CsvSink::CsvSink(const std::string& path) {
  if (path.empty()) return;
  f_ = std::fopen(path.c_str(), "w");
  if (!f_) std::fprintf(stderr, "warning: cannot open CSV path %s\n", path.c_str());
}

CsvSink::~CsvSink() {
  if (f_) std::fclose(f_);
}

void CsvSink::row(const std::vector<std::string>& cells) {
  if (!f_) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::fprintf(f_, "%s%s", i ? "," : "", cells[i].c_str());
  }
  std::fputc('\n', f_);
}

double pct(double x, double base) { return base != 0.0 ? 100.0 * (x / base - 1.0) : 0.0; }

std::string fmt_pct(double percent) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", percent);
  return buf;
}

}  // namespace memsched::bench
