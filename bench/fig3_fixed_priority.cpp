// Figure 3 reproduction: simple fixed-priority schemes vs ME on the
// four-core workloads — HF-RF, ME, FIX-3210 (descending core priority) and
// FIX-0123 (ascending).
//
// The paper's point: random fixed priorities swing wildly per workload
// (4MEM-1: +2.8% under FIX-0123 but -13.8% under FIX-3210; 4MEM-6: -18.0%
// under FIX-3210), while ME-guided priority is comparatively consistent —
// so the ME information, not the mere existence of fixed priorities, is
// what matters.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/guarded_main.hpp"
#include "report.hpp"
#include "sim/runner.hpp"
#include "sim/workloads.hpp"
#include "util/stats.hpp"

using namespace memsched;
using bench::BenchSetup;

namespace {
// Paper's Figure-3 schemes first (the summary indexes them 0-3), then the
// epoch-aware zoo appended for the leaderboard comparison.
const std::vector<std::string> kSchemes = {"HF-RF",   "ME",  "FIX-DESC", "FIX-ASC",
                                           "BLISS", "TCM", "CADS"};
}

namespace {

int run_bench(int argc, char** argv) {
  const BenchSetup setup = BenchSetup::parse(argc, argv);
  bench::print_header(setup, "Figure 3 — simple and fixed priority schemes (4 cores)",
                      "random fixed priorities are erratic across workloads; "
                      "ME-guided priority is consistent");

  sim::Experiment exp(setup.experiment);
  bench::CsvSink csv(setup.csv_path);
  csv.row({"workload", "scheme", "smt_speedup", "vs_hfrf_pct"});

  const auto workloads = sim::table3_workloads(4, "ALL");
  for (const auto& w : workloads) {
    for (const auto& app : w.apps()) exp.profile(app.name);
  }

  std::vector<std::vector<sim::WorkloadRun>> rows(workloads.size());
  for (auto& r : rows) r.resize(kSchemes.size());
  std::vector<std::pair<std::size_t, std::size_t>> jobs;
  for (std::size_t wi = 0; wi < workloads.size(); ++wi)
    for (std::size_t si = 0; si < kSchemes.size(); ++si) jobs.emplace_back(wi, si);
  sim::parallel_for(jobs.size(), sim::default_thread_count(), [&](std::size_t j) {
    const auto [wi, si] = jobs[j];
    rows[wi][si] = exp.run(workloads[wi], kSchemes[si]);
  });

  std::printf("%-8s", "mix");
  for (const auto& s : kSchemes) std::printf(" %10s", s.c_str());
  std::printf("   (gains vs HF-RF)\n");

  util::RunningStat asymmetry;     // FIX-3210 minus FIX-0123, points
  util::RunningStat me_vs_best_fix;  // ME minus max(FIX-3210, FIX-0123)
  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    const double base = rows[wi][0].smt_speedup;
    std::printf("%-8s", workloads[wi].name.c_str());
    for (std::size_t si = 0; si < kSchemes.size(); ++si) {
      std::printf(" %10.4f", rows[wi][si].smt_speedup);
      csv.row({workloads[wi].name, kSchemes[si],
               util::fmt(rows[wi][si].smt_speedup, 4),
               util::fmt(bench::pct(rows[wi][si].smt_speedup, base), 2)});
    }
    const double g_me = bench::pct(rows[wi][1].smt_speedup, base);
    const double g_desc = bench::pct(rows[wi][2].smt_speedup, base);
    const double g_asc = bench::pct(rows[wi][3].smt_speedup, base);
    asymmetry.add(g_desc - g_asc);
    me_vs_best_fix.add(g_me - std::max(g_desc, g_asc));
    std::printf("   ME %s  FIX-3210 %s  FIX-0123 %s\n", bench::fmt_pct(g_me).c_str(),
                bench::fmt_pct(g_desc).c_str(), bench::fmt_pct(g_asc).c_str());
  }

  std::printf("\n==== paper-vs-measured summary ====\n");
  std::printf(
      "The paper's point: which fixed order helps is workload-dependent and\n"
      "unpredictable (4MEM-1 gains +2.8%% under FIX-0123 but loses -13.8%%\n"
      "under FIX-3210), while ME-guided priority is consistent. Measured:\n");
  std::printf("  FIX-3210 minus FIX-0123 per workload: %+0.1f .. %+0.1f pts\n"
              "    (sign flips => the \"right\" order is unpredictable: %s)\n",
              asymmetry.min(), asymmetry.max(),
              asymmetry.min() < -0.25 && asymmetry.max() > 0.25 ? "yes" : "no");
  std::printf("  ME minus best-of-both-FIX per workload: mean %+0.2f pts\n"
              "    (>= ~0 => profiling-guided priority matches or beats the\n"
              "    lucky fixed order without having to guess it)\n",
              me_vs_best_fix.mean());
  std::printf(
      "\nNote: in this reproduction all priority schemes share one structural\n"
      "advantage over the windowed HF-RF baseline (DESIGN.md §4.6), so none\n"
      "swings *negative* as in the paper; the order-dependence and ME's\n"
      "consistency — Figure 3's argument — are in the two statistics above.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return harness::guarded_main("fig3_fixed_priority", [&] { return run_bench(argc, argv); });
}
