// Extension bench: open-loop latency-vs-load curves per scheduling scheme.
//
// Classic queueing characterization of the controller: sweep the offered
// request rate and report mean/p99 read latency until saturation. Shows the
// knee of each policy — and that the thread-aware schemes (unbounded
// scheduling) push the knee further right than the windowed HF-RF baseline.
#include <cstdio>
#include <string>
#include <vector>

#include "core/scheduler_factory.hpp"
#include "harness/guarded_main.hpp"
#include "report.hpp"
#include "sim/open_loop.hpp"
#include "util/stats.hpp"

using namespace memsched;
using bench::BenchSetup;

namespace {

int run_bench(int argc, char** argv) {
  const BenchSetup setup = BenchSetup::parse(argc, argv);
  bench::print_header(setup, "Extension — open-loop latency-vs-load curves",
                      "queueing knees per policy; thread-aware scheduling defers "
                      "saturation relative to the windowed arrival-order baseline");

  bench::CsvSink csv(setup.csv_path);
  csv.row({"scheme", "offered_per_tick", "accepted_per_tick", "avg_lat_ticks",
           "p99_ticks", "row_hit", "bus_util"});

  const std::vector<std::string> schemes = {"HF-RF", "HF-RF-OOO", "RR", "LREQ",
                                            "ME-LREQ", "FQ"};
  core::SchedulerArgs args;
  args.core_count = 4;
  // Open-loop traffic has no application semantics; give the ME schemes a
  // mildly heterogeneous profile so their ranking logic engages.
  args.me = core::MeTable({2.0, 1.0, 0.5, 0.25});
  args.ipc_single = {1.0, 1.0, 1.0, 1.0};

  const std::vector<double> loads = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35,
                                     0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70,
                                     0.75, 0.80};

  for (const std::string& scheme : schemes) {
    auto sched = core::make_scheduler(scheme, args);
    std::printf("%s:\n", sched->name().c_str());
    std::printf("  %10s %10s %10s %10s %8s %8s\n", "offered/t", "accepted/t",
                "avg-lat", "p99-lat", "row-hit", "bus-util");
    for (const double load : loads) {
      sim::OpenLoopConfig cfg;
      cfg.inject_per_tick = load;
      cfg.seed = setup.experiment.eval_seed;
      const sim::OpenLoopResult r = sim::run_open_loop(cfg, *sched);
      std::printf("  %10.3f %10.3f %10.1f %10.1f %8.2f %8.2f%s\n",
                  r.offered_per_tick, r.accepted_per_tick, r.avg_read_latency_ticks,
                  r.p99_ticks, r.row_hit_rate, r.data_bus_utilization,
                  r.saturated() ? "  <-- saturated" : "");
      csv.row({scheme, util::fmt(r.offered_per_tick, 3),
               util::fmt(r.accepted_per_tick, 3),
               util::fmt(r.avg_read_latency_ticks, 2), util::fmt(r.p99_ticks, 2),
               util::fmt(r.row_hit_rate, 3), util::fmt(r.data_bus_utilization, 3)});
      if (r.saturated()) break;  // past the knee; higher loads are noise
    }
    std::printf("\n");
  }
  std::printf("latencies in bus ticks (x8 for 3.2 GHz CPU cycles); a row is\n"
              "marked saturated when >1%% of offered requests were rejected.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return harness::guarded_main("latency_curves", [&] { return run_bench(argc, argv); });
}
