// Figure 5 reproduction: unfairness (max slowdown / min slowdown) under the
// five schemes on the four-core MEM workloads.
//
// Paper findings: ME-LREQ achieves the best fairness — vs HF-RF / RR / LREQ
// it cuts unfairness by 7.9% / 7.6% / 16.6% on average (max 32.5% on
// 4MEM-1); the ME scheme is the least fair (avg +4.7% vs HF-RF, up to
// +22.4% on 4MEM-4).
#include <cstdio>
#include <string>
#include <vector>

#include "harness/guarded_main.hpp"
#include "report.hpp"
#include "sim/runner.hpp"
#include "sim/workloads.hpp"
#include "util/stats.hpp"

using namespace memsched;
using bench::BenchSetup;

namespace {
// Paper's five Figure-5 schemes first (the summary indexes 0-4; index 4 is
// the ME-LREQ reference), then the epoch-aware zoo for the leaderboard.
const std::vector<std::string> kSchemes = {"HF-RF",   "ME",  "RR",  "LREQ",
                                           "ME-LREQ", "BLISS", "TCM", "CADS"};
}

namespace {

int run_bench(int argc, char** argv) {
  const BenchSetup setup = BenchSetup::parse(argc, argv);
  bench::print_header(setup, "Figure 5 — fairness (4-core MEM workloads)",
                      "ME-LREQ has the lowest unfairness; fixed ME priority the worst");

  sim::Experiment exp(setup.experiment);
  bench::CsvSink csv(setup.csv_path);
  csv.row({"workload", "scheme", "unfairness", "vs_hfrf_pct"});

  const auto workloads = sim::table3_workloads(4, "MEM");
  for (const auto& w : workloads) {
    for (const auto& app : w.apps()) exp.profile(app.name);
  }

  std::vector<std::vector<sim::WorkloadRun>> rows(workloads.size());
  for (auto& r : rows) r.resize(kSchemes.size());
  std::vector<std::pair<std::size_t, std::size_t>> jobs;
  for (std::size_t wi = 0; wi < workloads.size(); ++wi)
    for (std::size_t si = 0; si < kSchemes.size(); ++si) jobs.emplace_back(wi, si);
  sim::parallel_for(jobs.size(), sim::default_thread_count(), [&](std::size_t j) {
    const auto [wi, si] = jobs[j];
    rows[wi][si] = exp.run(workloads[wi], kSchemes[si]);
  });

  std::printf("%-8s", "mix");
  for (const auto& s : kSchemes) std::printf(" %9s", s.c_str());
  std::printf("   (unfairness; 1.0 = perfectly fair)\n");
  std::vector<util::RunningStat> unf(kSchemes.size());
  // Reduction of ME-LREQ vs each scheme.
  std::vector<util::RunningStat> melreq_cut_vs(kSchemes.size());
  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    std::printf("%-8s", workloads[wi].name.c_str());
    const double base = rows[wi][0].unfairness;
    for (std::size_t si = 0; si < kSchemes.size(); ++si) {
      const double u = rows[wi][si].unfairness;
      std::printf(" %9.3f", u);
      unf[si].add(u);
      melreq_cut_vs[si].add(-bench::pct(rows[wi][4].unfairness, u));
      csv.row({workloads[wi].name, kSchemes[si], util::fmt(u, 4),
               util::fmt(bench::pct(u, base), 2)});
    }
    std::printf("\n");
  }
  std::printf("%-8s", "mean");
  for (auto& s : unf) std::printf(" %9.3f", s.mean());
  std::printf("\n");

  std::printf("\n==== paper-vs-measured summary ====\n");
  std::printf("unfairness reduction by ME-LREQ (positive = ME-LREQ fairer):\n");
  std::printf("  vs HF-RF: paper  +7.9%% avg / +32.5%% max     measured %s avg / %s max\n",
              bench::fmt_pct(melreq_cut_vs[0].mean()).c_str(),
              bench::fmt_pct(melreq_cut_vs[0].max()).c_str());
  std::printf("  vs RR:    paper  +7.6%% avg                  measured %s avg\n",
              bench::fmt_pct(melreq_cut_vs[2].mean()).c_str());
  std::printf("  vs LREQ:  paper +16.6%% avg (9.7%% in §5.3)   measured %s avg\n",
              bench::fmt_pct(melreq_cut_vs[3].mean()).c_str());
  std::printf("ME scheme unfairness vs HF-RF: paper +4.7%% avg (worst of all);\n");
  std::printf("  measured mean ME %.3f vs HF-RF %.3f (%s)\n", unf[1].mean(), unf[0].mean(),
              bench::fmt_pct(bench::pct(unf[1].mean(), unf[0].mean())).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return harness::guarded_main("fig5_fairness", [&] { return run_bench(argc, argv); });
}
