// Extension bench: memory-system sensitivity sweep (paper §7 mentions
// "other design choices" as future work).
//
// Sweeps the device speed grade (DDR2-400 … DDR3-1600), the logic-channel
// count, and permutation-based (XOR) bank indexing, reporting HF-RF
// throughput and the ME-LREQ gain at each point. The interesting readout:
// scheduling matters most where the memory system is scarcest — slow
// grades and few channels — and XOR hashing trades row locality for bank
// spread.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/guarded_main.hpp"
#include "report.hpp"
#include "sim/workloads.hpp"
#include "util/stats.hpp"

using namespace memsched;
using bench::BenchSetup;

namespace {

struct Point {
  double hf_speedup;
  double melreq_gain_pct;
  double hf_latency;
  double row_hit;
};

Point measure(const sim::ExperimentConfig& cfg, const sim::Workload& w) {
  sim::Experiment exp(cfg);
  const auto hf = exp.run(w, "HF-RF");
  const auto ml = exp.run(w, "ME-LREQ");
  return {hf.smt_speedup, bench::pct(ml.smt_speedup, hf.smt_speedup),
          hf.avg_read_latency_cpu, hf.row_hit_rate};
}

}  // namespace

namespace {

int run_bench(int argc, char** argv) {
  const BenchSetup setup = BenchSetup::parse(argc, argv, {"workload"});
  bench::print_header(setup, "Extension — device/organization sensitivity sweep",
                      "scheduling gains grow as the memory system gets scarcer");

  bench::CsvSink csv(setup.csv_path);
  csv.row({"workload", "grade", "channels", "bank_xor", "hf_smt", "melreq_gain_pct",
           "hf_latency", "row_hit"});

  const std::string wname = setup.cli.get_string("workload", "4MEM-1");
  const sim::Workload& w = sim::workload_by_name(wname);
  std::printf("workload: %s (%s)\n\n", w.name.c_str(), w.codes.c_str());

  std::printf("A. speed grade (2 channels):\n");
  std::printf("  %-10s %10s %14s %12s %8s\n", "grade", "HF-RF", "ME-LREQ-gain",
              "HF-latency", "row-hit");
  for (const dram::SpeedGrade& g : dram::SpeedGrade::all()) {
    sim::ExperimentConfig cfg = setup.experiment;
    cfg.base.apply_speed_grade(g);
    const Point p = measure(cfg, w);
    std::printf("  %-10s %10.4f %13.1f%% %12.0f %8.2f\n", g.name, p.hf_speedup,
                p.melreq_gain_pct, p.hf_latency, p.row_hit);
    csv.row({w.name, g.name, "2", "0", util::fmt(p.hf_speedup, 4),
             util::fmt(p.melreq_gain_pct, 2), util::fmt(p.hf_latency, 0),
             util::fmt(p.row_hit, 3)});
  }

  std::printf("\nB. channel count (DDR2-800):\n");
  std::printf("  %-10s %10s %14s %12s %8s\n", "channels", "HF-RF", "ME-LREQ-gain",
              "HF-latency", "row-hit");
  for (const std::uint32_t channels : {1u, 2u, 4u}) {
    sim::ExperimentConfig cfg = setup.experiment;
    cfg.base.org.channels = channels;
    const Point p = measure(cfg, w);
    std::printf("  %-10u %10.4f %13.1f%% %12.0f %8.2f\n", channels, p.hf_speedup,
                p.melreq_gain_pct, p.hf_latency, p.row_hit);
    csv.row({w.name, "DDR2-800", std::to_string(channels), "0",
             util::fmt(p.hf_speedup, 4), util::fmt(p.melreq_gain_pct, 2),
             util::fmt(p.hf_latency, 0), util::fmt(p.row_hit, 3)});
  }

  std::printf("\nC. XOR bank hashing (DDR2-800, 2 channels):\n");
  std::printf("  %-10s %10s %14s %12s %8s\n", "bank-xor", "HF-RF", "ME-LREQ-gain",
              "HF-latency", "row-hit");
  for (const bool xor_on : {false, true}) {
    sim::ExperimentConfig cfg = setup.experiment;
    cfg.base.bank_xor = xor_on;
    const Point p = measure(cfg, w);
    std::printf("  %-10s %10.4f %13.1f%% %12.0f %8.2f\n", xor_on ? "on" : "off",
                p.hf_speedup, p.melreq_gain_pct, p.hf_latency, p.row_hit);
    csv.row({w.name, "DDR2-800", "2", xor_on ? "1" : "0", util::fmt(p.hf_speedup, 4),
             util::fmt(p.melreq_gain_pct, 2), util::fmt(p.hf_latency, 0),
             util::fmt(p.row_hit, 3)});
  }

  std::printf("\nD. L2 stream prefetcher (DDR2-800, 2 channels):\n");
  std::printf("  %-14s %10s %14s %12s %8s\n", "prefetch", "HF-RF", "ME-LREQ-gain",
              "HF-latency", "row-hit");
  for (const std::uint32_t degree : {0u, 2u, 4u}) {
    sim::ExperimentConfig cfg = setup.experiment;
    cfg.base.hierarchy.prefetch.enabled = degree > 0;
    cfg.base.hierarchy.prefetch.degree = degree > 0 ? degree : 2;
    const Point p = measure(cfg, w);
    char label[32];
    std::snprintf(label, sizeof label, degree ? "degree=%u" : "off", degree);
    std::printf("  %-14s %10.4f %13.1f%% %12.0f %8.2f\n", label, p.hf_speedup,
                p.melreq_gain_pct, p.hf_latency, p.row_hit);
    csv.row({w.name, "DDR2-800", "2", "0", util::fmt(p.hf_speedup, 4),
             util::fmt(p.melreq_gain_pct, 2), util::fmt(p.hf_latency, 0),
             util::fmt(p.row_hit, 3)});
  }

  std::printf("\nexpected: HF-RF throughput rises monotonically with grade and\n"
              "channel count while the ME-LREQ gain shrinks (contention is the\n"
              "scheduler's opportunity); XOR hashing preserves the hybrid map's\n"
              "row locality for sequential streams (low row bits untouched).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return harness::guarded_main("sensitivity_sweep", [&] { return run_bench(argc, argv); });
}
