// Ablation bench: quantifies the design choices DESIGN.md calls out, on the
// four-core MEM workloads.
//
//   A. Hardware priority table (Figure 1): exact ME/p division vs the
//      10-bit quantised table, plus a bit-width sweep — supports the
//      paper's claim that the table implementation is performance-neutral.
//   B. Hit-first vs thread-priority ordering: the §4.1 command-engine
//      reading (hits above thread priority; our default) vs the literal
//      Figure-1 reading (thread priority above everything).
//   C. Address interleaving: hybrid (default) vs pure line vs page.
//   D. Write-drain hysteresis thresholds.
//   E. Online-ME extension (paper §7 future work) vs off-line profiling.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/guarded_main.hpp"
#include "report.hpp"
#include "sim/runner.hpp"
#include "sim/workloads.hpp"
#include "util/stats.hpp"

using namespace memsched;
using bench::BenchSetup;

namespace {

/// Mean SMT speedup of a scheme over the 4-core MEM mixes under `cfg`.
double mean_speedup(const sim::ExperimentConfig& cfg, const std::string& scheme) {
  sim::Experiment exp(cfg);
  const auto workloads = sim::table3_workloads(4, "MEM");
  util::RunningStat s;
  for (const auto& w : workloads) s.add(exp.run(w, scheme).smt_speedup);
  return s.mean();
}

/// Mean unfairness of a scheme over the 4-core MEM mixes under `cfg`.
double mean_unfairness(const sim::ExperimentConfig& cfg, const std::string& scheme) {
  sim::Experiment exp(cfg);
  const auto workloads = sim::table3_workloads(4, "MEM");
  util::RunningStat s;
  for (const auto& w : workloads) s.add(exp.run(w, scheme).unfairness);
  return s.mean();
}

}  // namespace

namespace {

int run_bench(int argc, char** argv) {
  const BenchSetup setup = BenchSetup::parse(argc, argv);
  bench::print_header(setup, "Ablation — design choices (4-core MEM mean SMT speedup)",
                      "priority-table quantisation is performance-neutral; ordering, "
                      "interleaving and drain thresholds quantified");

  const sim::ExperimentConfig base = setup.experiment;
  bench::CsvSink csv(setup.csv_path);
  csv.row({"study", "variant", "mean_smt_speedup"});
  const auto report = [&](const char* study, const std::string& variant, double v,
                          double ref) {
    std::printf("  %-28s %8.4f  (%s vs reference)\n", variant.c_str(), v,
                bench::fmt_pct(bench::pct(v, ref)).c_str());
    csv.row({study, variant, util::fmt(v, 4)});
  };

  // A. Exact division vs hardware table, with bit-width sweep.
  std::printf("A. ME-LREQ arithmetic (Figure 1 hardware table):\n");
  const double exact = mean_speedup(base, "ME-LREQ");
  report("table", "exact division", exact, exact);
  for (unsigned bits : {10u, 8u, 6u, 4u}) {
    sim::ExperimentConfig cfg = base;
    cfg.table_bits = bits;
    report("table", std::to_string(bits) + "-bit table", mean_speedup(cfg, "ME-LREQ-HW"),
           exact);
  }

  // B. Hit-first above vs below thread priority.
  std::printf("B. Priority ordering (hit-first vs thread-first):\n");
  for (const std::string s : {"LREQ", "ME", "ME-LREQ"}) {
    const double hf_above = mean_speedup(base, s);
    const double thread_above = mean_speedup(base, s + "/TOH");
    report("ordering", s + " (hit above)", hf_above, hf_above);
    report("ordering", s + " (thread above)", thread_above, hf_above);
  }

  // C. Address interleaving.
  std::printf("C. Address interleaving (HF-RF / ME-LREQ):\n");
  double ref_c = 0.0;
  for (const auto il : {dram::Interleave::kHybrid, dram::Interleave::kLineInterleave,
                        dram::Interleave::kPageInterleave}) {
    sim::ExperimentConfig cfg = base;
    cfg.base.interleave = il;
    const double hf = mean_speedup(cfg, "HF-RF");
    const double ml = mean_speedup(cfg, "ME-LREQ");
    if (ref_c == 0.0) ref_c = ml;
    report("interleave", dram::AddressMap::scheme_name(il) + " HF-RF", hf, ref_c);
    report("interleave", dram::AddressMap::scheme_name(il) + " ME-LREQ", ml, ref_c);
  }

  // D. Write-drain thresholds (high/low as fractions of the 64-entry buffer).
  std::printf("D. Write-drain hysteresis (paper: 1/2 and 1/4 of the buffer):\n");
  double ref_d = 0.0;
  for (const auto& [hi, lo] : {std::pair{32u, 16u}, {48u, 16u}, {16u, 8u}, {56u, 40u}}) {
    sim::ExperimentConfig cfg = base;
    cfg.base.controller.drain_high = hi;
    cfg.base.controller.drain_low = lo;
    const double v = mean_speedup(cfg, "ME-LREQ");
    if (ref_d == 0.0) ref_d = v;
    report("drain", "high=" + std::to_string(hi) + " low=" + std::to_string(lo), v,
           ref_d);
  }

  // E. Online ME estimation (future work, §7).
  std::printf("E. Online-ME extension vs off-line profiling:\n");
  const double offline = mean_speedup(base, "ME-LREQ");
  report("online", "ME-LREQ (off-line profile)", offline, offline);
  report("online", "ME-LREQ-ONLINE (epoch EWMA)", mean_speedup(base, "ME-LREQ-ONLINE"),
         offline);
  report("online", "LREQ (no ME at all)", mean_speedup(base, "LREQ"), offline);

  // H. Baseline scheduling-window depth (DESIGN.md §4.6): how far the
  // arrival-ordered HF-RF baseline may look past a blocked head request.
  std::printf("H. HF-RF scheduling-window depth (vs unbounded ME-LREQ):\n");
  {
    const double melreq = mean_speedup(base, "ME-LREQ");
    report("window", "ME-LREQ (unbounded)", melreq, melreq);
    report("window", "HF-RF window=8 (default)", mean_speedup(base, "HF-RF"), melreq);
    report("window", "HF-RF unbounded (OOO)", mean_speedup(base, "HF-RF-OOO"), melreq);
    report("window", "FCFS-RF window=1 (strict)", mean_speedup(base, "FCFS-RF"), melreq);
  }

  // F. Row-buffer management policy.
  std::printf("F. Page policy (paper: close page with lookahead):\n");
  {
    const double close_hf = mean_speedup(base, "HF-RF");
    sim::ExperimentConfig cfg = base;
    cfg.base.controller.page_policy = mc::PagePolicy::kOpenPage;
    report("page", "close-page HF-RF", close_hf, close_hf);
    report("page", "open-page HF-RF", mean_speedup(cfg, "HF-RF"), close_hf);
    report("page", "open-page ME-LREQ", mean_speedup(cfg, "ME-LREQ"), close_hf);
    cfg.base.controller.page_policy = mc::PagePolicy::kAdaptive;
    report("page", "adaptive HF-RF", mean_speedup(cfg, "HF-RF"), close_hf);
    report("page", "adaptive ME-LREQ", mean_speedup(cfg, "ME-LREQ"), close_hf);
  }

  // I. The SS7 combination design space: Priority = ME^a / Pending^b.
  std::printf("I. Combination exponents (ME^a / Pending^b, paper = a=1 b=1):\n");
  {
    const double eq2 = mean_speedup(base, "ME-LREQ");
    report("exponents", "a=1.0 b=1.0 (Equation 2)", eq2, eq2);
    for (const char* spec : {"ME-LREQ-POW-05-10", "ME-LREQ-POW-20-10",
                             "ME-LREQ-POW-10-05", "ME-LREQ-POW-10-20",
                             "ME-LREQ-POW-05-20", "ME-LREQ-POW-20-05"}) {
      report("exponents", spec, mean_speedup(base, spec), eq2);
    }
  }

  // G. Fairness contrast with fair queueing (paper §6 related work).
  std::printf("G. Fairness: related-work baselines (mean unfairness, lower=fairer):\n");
  {
    const double u_hf = mean_unfairness(base, "HF-RF");
    std::printf("  %-28s %8.4f\n", "HF-RF", u_hf);
    std::printf("  %-28s %8.4f\n", "FQ (Nesbit-style)", mean_unfairness(base, "FQ"));
    std::printf("  %-28s %8.4f\n", "STFM (Mutlu-style)", mean_unfairness(base, "STFM"));
    std::printf("  %-28s %8.4f\n", "PAR-BS (batching)", mean_unfairness(base, "PAR-BS"));
    std::printf("  %-28s %8.4f\n", "ME-LREQ", mean_unfairness(base, "ME-LREQ"));
    std::printf("  %-28s %8.4f\n", "ME", mean_unfairness(base, "ME"));
  }

  std::printf("\nexpected: (A) table variants within noise of exact division down to\n"
              "~6 bits; (B) ordering choice small for ME-LREQ; (C) hybrid mapping\n"
              "strongest for both schemes; (D) paper thresholds competitive;\n"
              "(E) online ME approaches off-line profiling and beats plain LREQ.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return harness::guarded_main("ablation_design_choices", [&] { return run_bench(argc, argv); });
}
