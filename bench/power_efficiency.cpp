// Extension bench (no paper counterpart): DRAM power and energy efficiency
// under the five scheduling schemes on the 4-core MEM workloads.
//
// Scheduling shapes DRAM energy through the row-hit rate (every avoided
// ACT/PRE pair saves activate energy) and through runtime (background
// power integrates over the whole run). Reported per scheme: average DRAM
// power, energy per kilo-instruction, and the activate-energy share.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/guarded_main.hpp"
#include "report.hpp"
#include "sim/runner.hpp"
#include "sim/workloads.hpp"
#include "util/stats.hpp"

using namespace memsched;
using bench::BenchSetup;

namespace {
const std::vector<std::string> kSchemes = {"HF-RF", "ME", "RR", "LREQ", "ME-LREQ"};
}

namespace {

int run_bench(int argc, char** argv) {
  const BenchSetup setup = BenchSetup::parse(argc, argv);
  bench::print_header(setup, "Extension — DRAM power/energy by scheduling scheme",
                      "row-hit-friendly scheduling avoids ACT/PRE energy; faster "
                      "runs amortize background power");

  sim::Experiment exp(setup.experiment);
  bench::CsvSink csv(setup.csv_path);
  csv.row({"workload", "scheme", "avg_power_w", "energy_uj_per_kinst",
           "activate_share", "row_hit_rate"});

  const auto workloads = sim::table3_workloads(4, "MEM");
  for (const auto& w : workloads) {
    for (const auto& app : w.apps()) exp.profile(app.name);
  }

  std::vector<std::vector<sim::WorkloadRun>> rows(workloads.size());
  for (auto& r : rows) r.resize(kSchemes.size());
  std::vector<std::pair<std::size_t, std::size_t>> jobs;
  for (std::size_t wi = 0; wi < workloads.size(); ++wi)
    for (std::size_t si = 0; si < kSchemes.size(); ++si) jobs.emplace_back(wi, si);
  sim::parallel_for(jobs.size(), sim::default_thread_count(), [&](std::size_t j) {
    const auto [wi, si] = jobs[j];
    rows[wi][si] = exp.run(workloads[wi], kSchemes[si]);
  });

  std::printf("%-8s %-9s %10s %14s %10s %8s\n", "mix", "scheme", "power(W)",
              "uJ/kinst", "ACT-share", "row-hit");
  util::RunningStat power_by_scheme[5], energy_by_scheme[5];
  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    for (std::size_t si = 0; si < kSchemes.size(); ++si) {
      const sim::WorkloadRun& r = rows[wi][si];
      const auto& e = r.raw.dram_energy;
      std::uint64_t insts = 0;
      for (const auto& c : r.raw.cores) insts += c.committed;
      const double uj_per_kinst = e.total() * 1e6 / (static_cast<double>(insts) / 1000.0);
      const double act_share = e.total() > 0 ? e.activate / e.total() : 0.0;
      std::printf("%-8s %-9s %10.3f %14.2f %10.2f %8.2f\n",
                  workloads[wi].name.c_str(), kSchemes[si].c_str(),
                  r.raw.dram_power_watts, uj_per_kinst, act_share, r.row_hit_rate);
      power_by_scheme[si].add(r.raw.dram_power_watts);
      energy_by_scheme[si].add(uj_per_kinst);
      csv.row({workloads[wi].name, kSchemes[si], util::fmt(r.raw.dram_power_watts, 3),
               util::fmt(uj_per_kinst, 2), util::fmt(act_share, 3),
               util::fmt(r.row_hit_rate, 3)});
    }
  }

  std::printf("\nmeans over 4MEM mixes:\n%-9s %10s %14s\n", "scheme", "power(W)",
              "uJ/kinst");
  for (std::size_t si = 0; si < kSchemes.size(); ++si) {
    std::printf("%-9s %10.3f %14.2f\n", kSchemes[si].c_str(),
                power_by_scheme[si].mean(), energy_by_scheme[si].mean());
  }
  std::printf("\nexpected: schemes with higher row-hit rates / shorter runtimes\n"
              "spend fewer microjoules per kilo-instruction; HF-RF's head-of-line\n"
              "stalls stretch runtime and pay background power for it.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return harness::guarded_main("power_efficiency", [&] { return run_bench(argc, argv); });
}
