// Figure 4 reproduction: memory read latency under the five schemes on the
// four-core MEM workloads.
//
//   Left part  — average read latency per workload and scheme.
//   Right part — per-core read latency for 4MEM-1 and 4MEM-5, exposing the
//                starvation behaviour of fixed ME priority (paper: core 1 at
//                289 cycles vs core 3 at 1042 cycles under ME on 4MEM-5).
#include <cstdio>
#include <string>
#include <vector>

#include "harness/guarded_main.hpp"
#include "report.hpp"
#include "sim/runner.hpp"
#include "sim/workloads.hpp"
#include "util/stats.hpp"

using namespace memsched;
using bench::BenchSetup;

namespace {
// Paper's five Figure-4 schemes first (the measured-means summary indexes
// 0-4), then the epoch-aware zoo appended for the leaderboard.
const std::vector<std::string> kSchemes = {"HF-RF",   "ME",  "RR",  "LREQ",
                                           "ME-LREQ", "BLISS", "TCM", "CADS"};
}

namespace {

int run_bench(int argc, char** argv) {
  const BenchSetup setup = BenchSetup::parse(argc, argv);
  bench::print_header(setup, "Figure 4 — memory read latency (4-core MEM workloads)",
                      "ME-LREQ has the lowest average read latency; fixed ME "
                      "priority spreads per-core latency the most (starvation)");

  sim::Experiment exp(setup.experiment);
  bench::CsvSink csv(setup.csv_path);
  csv.row({"workload", "scheme", "avg_read_latency_cpu", "core0", "core1", "core2",
           "core3"});

  const auto workloads = sim::table3_workloads(4, "MEM");
  for (const auto& w : workloads) {
    for (const auto& app : w.apps()) exp.profile(app.name);
  }

  std::vector<std::vector<sim::WorkloadRun>> rows(workloads.size());
  for (auto& r : rows) r.resize(kSchemes.size());
  std::vector<std::pair<std::size_t, std::size_t>> jobs;
  for (std::size_t wi = 0; wi < workloads.size(); ++wi)
    for (std::size_t si = 0; si < kSchemes.size(); ++si) jobs.emplace_back(wi, si);
  sim::parallel_for(jobs.size(), sim::default_thread_count(), [&](std::size_t j) {
    const auto [wi, si] = jobs[j];
    rows[wi][si] = exp.run(workloads[wi], kSchemes[si]);
  });

  std::printf("---- left part: average read latency (CPU cycles) ----\n");
  std::printf("%-8s", "mix");
  for (const auto& s : kSchemes) std::printf(" %9s", s.c_str());
  std::printf("\n");
  std::vector<util::RunningStat> avg_by_scheme(kSchemes.size());
  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    std::printf("%-8s", workloads[wi].name.c_str());
    for (std::size_t si = 0; si < kSchemes.size(); ++si) {
      const sim::WorkloadRun& r = rows[wi][si];
      std::printf(" %9.0f", r.avg_read_latency_cpu);
      avg_by_scheme[si].add(r.avg_read_latency_cpu);
      csv.row({workloads[wi].name, kSchemes[si], util::fmt(r.avg_read_latency_cpu, 1),
               util::fmt(r.core_read_latency_cpu[0], 1),
               util::fmt(r.core_read_latency_cpu[1], 1),
               util::fmt(r.core_read_latency_cpu[2], 1),
               util::fmt(r.core_read_latency_cpu[3], 1)});
    }
    std::printf("\n");
  }
  std::printf("%-8s", "mean");
  for (auto& s : avg_by_scheme) std::printf(" %9.0f", s.mean());
  std::printf("\n\n");

  std::printf("---- right part: per-core read latency (CPU cycles) ----\n");
  for (const char* pick : {"4MEM-1", "4MEM-5"}) {
    std::printf("%s:\n", pick);
    std::printf("  %-9s %8s %8s %8s %8s %10s\n", "scheme", "core0", "core1", "core2",
                "core3", "max/min");
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
      if (workloads[wi].name != pick) continue;
      for (std::size_t si = 0; si < kSchemes.size(); ++si) {
        const auto& lat = rows[wi][si].core_read_latency_cpu;
        double mn = lat[0], mx = lat[0];
        for (double v : lat) {
          mn = std::min(mn, v);
          mx = std::max(mx, v);
        }
        std::printf("  %-9s %8.0f %8.0f %8.0f %8.0f %9.2fx\n", kSchemes[si].c_str(),
                    lat[0], lat[1], lat[2], lat[3], mn > 0 ? mx / mn : 0.0);
      }
    }
  }

  std::printf("\n---- latency distribution (CPU cycles, pooled over 4MEM mixes, last slice) ----\n");
  std::printf("  %-9s %8s %8s %8s\n", "scheme", "p50", "p90", "p99");
  for (std::size_t si = 0; si < kSchemes.size(); ++si) {
    util::Histogram pooled(32.0, 256);
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
      pooled.merge(rows[wi][si].raw.controller_stats.read_latency_hist);
    }
    std::printf("  %-9s %8.0f %8.0f %8.0f\n", kSchemes[si].c_str(), pooled.quantile(0.5),
                pooled.quantile(0.9), pooled.quantile(0.99));
  }

  std::printf("\n==== paper-vs-measured summary ====\n");
  std::printf("paper: HF-RF 376 cycles avg vs ME-LREQ 323 (ME-LREQ lowest);\n");
  std::printf("       4MEM-1 under HF-RF 613 -> ME-LREQ 490;\n");
  std::printf("       ME on 4MEM-5 spreads cores 289..1042 (starvation).\n");
  std::printf("measured means: HF-RF %.0f, ME %.0f, RR %.0f, LREQ %.0f, ME-LREQ %.0f\n",
              avg_by_scheme[0].mean(), avg_by_scheme[1].mean(), avg_by_scheme[2].mean(),
              avg_by_scheme[3].mean(), avg_by_scheme[4].mean());
  std::printf("reproduced when ME-LREQ's mean is the lowest (or ties lowest) and the\n"
              "ME scheme shows the largest per-core max/min ratio above.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return harness::guarded_main("fig4_read_latency", [&] { return run_bench(argc, argv); });
}
