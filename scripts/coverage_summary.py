#!/usr/bin/env python3
"""Aggregate gcov JSON intermediate files into a src/ line-coverage summary.

Reads every *.gcov.json.gz in the given directory (as produced by
`gcov --json-format`), merges the per-line execution counts of all source
files under src/ (a line is covered if any object executed it), and prints a
per-file table plus the total. With --floor N, exits 1 when the total falls
below N percent.

Usage: coverage_summary.py <dir-with-gcov-json> [--floor N]
"""
import glob
import gzip
import json
import os
import sys


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    report_dir = argv[1]
    floor = 0.0
    if "--floor" in argv:
        floor = float(argv[argv.index("--floor") + 1])

    # (file -> line -> max count) across all translation units.
    lines = {}
    inputs = glob.glob(os.path.join(report_dir, "*.gcov.json.gz"))
    if not inputs:
        print(f"coverage: no gcov JSON files found in {report_dir}", file=sys.stderr)
        return 2
    for path in inputs:
        with gzip.open(path, "rt") as f:
            doc = json.load(f)
        for entry in doc.get("files", []):
            name = entry["file"]
            # Normalize compile-dir-relative paths and keep only src/.
            norm = os.path.normpath(name)
            marker = norm.find("src" + os.sep)
            if marker < 0:
                continue
            rel = norm[marker:]
            per_file = lines.setdefault(rel, {})
            for ln in entry.get("lines", []):
                n = ln["line_number"]
                per_file[n] = max(per_file.get(n, 0), ln["count"])

    total_lines = total_hit = 0
    print(f"{'file':<44} {'lines':>6} {'hit':>6} {'cover':>7}")
    for rel in sorted(lines):
        per_file = lines[rel]
        n = len(per_file)
        if n == 0:  # header with no executable lines in any TU
            continue
        hit = sum(1 for c in per_file.values() if c > 0)
        total_lines += n
        total_hit += hit
        print(f"{rel:<44} {n:>6} {hit:>6} {100.0 * hit / n:>6.1f}%")
    if total_lines == 0:
        print("coverage: no src/ lines instrumented", file=sys.stderr)
        return 2
    pct = 100.0 * total_hit / total_lines
    print(f"{'TOTAL src/':<44} {total_lines:>6} {total_hit:>6} {pct:>6.1f}%")
    if pct < floor:
        print(f"COVERAGE GATE: FAIL ({pct:.1f}% < soft floor {floor:.1f}%)")
        return 1
    if floor > 0:
        print(f"COVERAGE GATE: OK ({pct:.1f}% >= soft floor {floor:.1f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
