#!/bin/sh
# Checkpoint/restore smoke: proves the snapshot layer end to end on real
# binaries (unit tests emulate kills in-process; this script uses real
# signals against real processes).
#
#   1. memsched_sim SIGKILLed mid-run with ckpt_dir= set must, when re-run
#      with the same command line, resume from its latest snapshot and write
#      a JSON record byte-identical to an uninterrupted run.
#   2. memsched_sim SIGTERMed must park its state gracefully (exit code 6,
#      the documented "interrupted" contract) and resume the same way.
#   3. A memsched_sweep point SIGKILLed mid-simulation must resume from the
#      point's own snapshot on the next invocation and produce a report
#      byte-identical to an uninterrupted sweep.
#   4. memsched_sweep SIGTERMed must stop gracefully with exit code 6 and
#      leave the manifest consistent for resume.
#
# Usage: scripts/ckpt_smoke.sh [build-dir]   (default: build)
set -eu

# Checkpointing deliberately degrades to off while the invariant auditor is
# attached (its shadow state is not snapshotted — see Experiment::policy_for),
# so an inherited MEMSCHED_VERIFY=1 would leave the snapshot wait loops below
# spinning forever. Pin it off for these runs.
unset MEMSCHED_VERIFY 2> /dev/null || true

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
SIM="$BUILD/tools/memsched_sim"
SWEEP="$BUILD/tools/memsched_sweep"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

[ -x "$SIM" ] || { echo "ckpt_smoke: $SIM not built" >&2; exit 1; }
[ -x "$SWEEP" ] || { echo "ckpt_smoke: $SWEEP not built" >&2; exit 1; }

# The cycle engine makes the run long enough (~1-2 s) for a signal to land
# mid-flight; small ckpt_interval gives the resume plenty of snapshots.
ARGS="workload=2MEM-1 scheme=ME-LREQ insts=2000000 repeats=1 engine=cycle"
CKPT="ckpt_interval=50000"

echo "== ckpt 1: SIGKILL mid-run, resume -> byte-identical JSON =="
"$SIM" run $ARGS json="$WORK/ref.json" > /dev/null
"$SIM" run $ARGS json="$WORK/kill.json" ckpt_dir="$WORK/ck1" $CKPT \
    > /dev/null 2>&1 &
PID=$!
# Kill only after the first snapshot exists, so the resume has state.
while [ -z "$(ls "$WORK/ck1" 2> /dev/null)" ]; do sleep 0.05; done
sleep 0.4
kill -KILL "$PID" 2> /dev/null || true
wait "$PID" 2> /dev/null || true
if [ -f "$WORK/kill.json" ]; then
  echo "  note: run completed before the kill landed (still exercises resume)"
fi
"$SIM" run $ARGS json="$WORK/kill.json" ckpt_dir="$WORK/ck1" $CKPT > /dev/null
cmp "$WORK/ref.json" "$WORK/kill.json" ||
    { echo "ckpt_smoke: SIGKILL-resumed JSON differs" >&2; exit 1; }
echo "  resumed JSON is byte-identical to the uninterrupted run"

echo "== ckpt 2: SIGTERM parks with exit 6, resume -> byte-identical =="
"$SIM" run $ARGS json="$WORK/term.json" ckpt_dir="$WORK/ck2" $CKPT \
    > /dev/null 2>&1 &
PID=$!
while [ -z "$(ls "$WORK/ck2" 2> /dev/null)" ]; do sleep 0.05; done
kill -TERM "$PID" 2> /dev/null || true
RC=0
wait "$PID" || RC=$?
[ "$RC" -eq 6 ] ||
    { echo "ckpt_smoke: expected exit 6 (interrupted), got $RC" >&2; exit 1; }
[ ! -f "$WORK/term.json" ] ||
    { echo "ckpt_smoke: interrupted run must not write its JSON" >&2; exit 1; }
"$SIM" run $ARGS json="$WORK/term.json" ckpt_dir="$WORK/ck2" $CKPT > /dev/null
cmp "$WORK/ref.json" "$WORK/term.json" ||
    { echo "ckpt_smoke: SIGTERM-resumed JSON differs" >&2; exit 1; }
echo "  exit code 6 honored; resumed JSON is byte-identical"

SARGS="workloads=2MEM-1 schemes=HF-RF,ME-LREQ insts=2000000 repeats=1 \
       engine=cycle timeout=240 quiet=1"

echo "== ckpt 3: sweep point SIGKILLed mid-simulation resumes from snapshot =="
"$SWEEP" grid $SARGS manifest="$WORK/ref.m" report="$WORK/ref.r" > /dev/null
"$SWEEP" grid $SARGS manifest="$WORK/vic.m" report="$WORK/unused.r" \
    > /dev/null 2>&1 &
PID=$!
# Wait until some point has written a snapshot, then kill the whole sweep.
until ls "$WORK"/vic.m.work/point-*.ckpt.d/*.ckpt > /dev/null 2>&1; do
  sleep 0.05
done
kill -KILL "$PID" 2> /dev/null || true
wait "$PID" 2> /dev/null || true
"$SWEEP" grid $SARGS manifest="$WORK/vic.m" report="$WORK/vic.r" > /dev/null
cmp "$WORK/ref.r" "$WORK/vic.r" ||
    { echo "ckpt_smoke: resumed sweep report differs" >&2; exit 1; }
echo "  resumed sweep report is byte-identical to the uninterrupted run"

echo "== ckpt 4: sweep SIGTERM stops gracefully with exit 6 =="
"$SWEEP" grid $SARGS manifest="$WORK/g.m" report="$WORK/g.r" > /dev/null 2>&1 &
PID=$!
until ls "$WORK"/g.m.work/point-*.ckpt.d/*.ckpt > /dev/null 2>&1; do
  sleep 0.05
done
kill -TERM "$PID" 2> /dev/null || true
RC=0
wait "$PID" || RC=$?
[ "$RC" -eq 6 ] ||
    { echo "ckpt_smoke: expected sweep exit 6, got $RC" >&2; exit 1; }
[ ! -f "$WORK/g.r" ] ||
    { echo "ckpt_smoke: interrupted sweep must not write a report" >&2; exit 1; }
"$SWEEP" grid $SARGS manifest="$WORK/g.m" report="$WORK/g.r" > /dev/null
cmp "$WORK/ref.r" "$WORK/g.r" ||
    { echo "ckpt_smoke: post-SIGTERM resumed report differs" >&2; exit 1; }
echo "  graceful stop honored; resumed report is byte-identical"

echo "CKPT SMOKE PASSED"
