#!/bin/sh
# Chaos smoke: proves the fault-tolerance layer end to end on real binaries.
#
#   1. A sweep with an injected livelock (permanently stalled channels on one
#      point) must record that point as a structured failure and still finish
#      the remaining points with exit code 0 — graceful degradation.
#   2. A sweep SIGKILLed mid-flight must resume from its manifest and produce
#      a final report byte-identical to an uninterrupted run.
#   3. A sweep whose result cache is under filesystem fault injection
#      (MEMSCHED_CACHE_FSFAULT) must degrade cache I/O to miss-and-resimulate
#      and still produce the byte-identical report with exit 0. Deeper cache
#      coverage (kill matrices, fsck repair) lives in scripts/cache_smoke.sh.
#
# Usage: scripts/chaos_smoke.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
SWEEP="$BUILD/tools/memsched_sweep"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

[ -x "$SWEEP" ] || { echo "chaos_smoke: $SWEEP not built" >&2; exit 1; }

# Small but long enough that a wedged point would spin for minutes without
# the watchdog — the progress window is what terminates it.
ARGS="workloads=2MEM-1 schemes=HF-RF,ME-LREQ insts=15000 profile_insts=50000 \
      progress_window=100000 timeout=240 quiet=1"

echo "== chaos 1: injected livelock is recorded, sweep still succeeds =="
"$SWEEP" grid $ARGS fault=1 fault.stall=1 fault.points=2MEM-1/HF-RF \
    manifest="$WORK/chaos.manifest.json" report="$WORK/chaos.report.json"
grep -q '"category": "livelock"' "$WORK/chaos.report.json" ||
    { echo "chaos_smoke: no livelock failure recorded" >&2; exit 1; }
grep -q '"gap_count": 1' "$WORK/chaos.report.json" ||
    { echo "chaos_smoke: expected exactly one gap" >&2; exit 1; }
grep -q '"status": "ok"' "$WORK/chaos.report.json" ||
    { echo "chaos_smoke: surviving point missing from report" >&2; exit 1; }
echo "  livelock recorded as gap; surviving point completed; exit 0"

echo "== chaos 2: SIGKILL mid-sweep, then resume -> byte-identical report =="
# Enough points that the kill reliably lands while the sweep is mid-flight.
ARGS2="workloads=2MEM-1 schemes=FCFS,FCFS-RF,HF-RF,LREQ,ME,ME-LREQ,BLISS,TCM,CADS \
       insts=15000 profile_insts=50000 progress_window=100000 \
       timeout=240 quiet=1"
# Reference: uninterrupted run.
"$SWEEP" grid $ARGS2 manifest="$WORK/ref.manifest.json" \
    report="$WORK/ref.report.json"
# Victim: killed hard after the first point checkpoints, then resumed
# against the same manifest.
"$SWEEP" grid $ARGS2 manifest="$WORK/vic.manifest.json" \
    report="$WORK/unused.report.json" &
PID=$!
while [ ! -s "$WORK/vic.manifest.json" ]; do sleep 0.1; done
kill -KILL "$PID" 2> /dev/null || true
wait "$PID" 2> /dev/null || true
DONE=$(grep -c '"name"' "$WORK/vic.manifest.json" || true)
echo "  killed with $DONE/6 points checkpointed"
RESUME_OUT=$("$SWEEP" grid $ARGS2 manifest="$WORK/vic.manifest.json" \
    report="$WORK/vic.report.json")
echo "$RESUME_OUT" | grep -q "(0 resumed)" &&
    { echo "chaos_smoke: resume replayed nothing from the manifest" >&2; exit 1; }
cmp "$WORK/ref.report.json" "$WORK/vic.report.json" ||
    { echo "chaos_smoke: resumed report differs from reference" >&2; exit 1; }
echo "  resumed report is byte-identical to the uninterrupted run"

echo "== chaos 3: result cache under fs faults degrades, never fails =="
CHAOS="seed=42,short_write=0.4,enospc=0.25,eio=0.2,bitflip=0.25"
MEMSCHED_CACHE_FSFAULT="$CHAOS" "$SWEEP" grid $ARGS2 \
    cache="$WORK/store" manifest="$WORK/cc.manifest.json" \
    report="$WORK/cc.report.json" > /dev/null 2>&1 ||
    { echo "chaos_smoke: faulted cached sweep failed" >&2; exit 1; }
cmp "$WORK/ref.report.json" "$WORK/cc.report.json" ||
    { echo "chaos_smoke: faulted cached report differs" >&2; exit 1; }
MEMSCHED_CACHE_FSFAULT="$CHAOS" "$SWEEP" grid $ARGS2 \
    cache="$WORK/store" manifest="$WORK/cw.manifest.json" \
    report="$WORK/cw.report.json" > /dev/null 2>&1 ||
    { echo "chaos_smoke: faulted warm cached sweep failed" >&2; exit 1; }
cmp "$WORK/ref.report.json" "$WORK/cw.report.json" ||
    { echo "chaos_smoke: faulted warm cached report differs" >&2; exit 1; }
echo "  cached sweeps under fs faults: exit 0, byte-identical reports"

echo "CHAOS SMOKE PASSED"
