#!/bin/sh
# Full local gate: configure, build, run the test suite, and smoke every
# bench/tool/example with small parameters. Exits nonzero on any failure.
set -eu

cd "$(dirname "$0")/.."
# Reuse whatever generator an existing build tree was configured with.
if [ -f build/CMakeCache.txt ]; then
  cmake -B build
else
  cmake -B build -G Ninja
fi
cmake --build build
# Hard wall-clock cap: a wedged test must fail the gate, not hang it.
timeout 2400 ctest --test-dir build --output-on-failure

echo "== memsched-lint (determinism & contract checks, see docs/static-analysis.md) =="
scripts/run_lint.sh build
echo "  memsched-lint ok"

echo "== clang-tidy =="
if command -v clang-tidy > /dev/null 2>&1; then
  find src -name '*.cpp' -print | xargs clang-tidy -p build --quiet
  echo "  clang-tidy ok"
else
  echo "  clang-tidy not installed; skipped"
fi

echo "== bench smoke (small parameters, protocol/invariant checkers on) =="
export MEMSCHED_VERIFY=1
for b in table2_memory_efficiency fig3_fixed_priority fig4_read_latency \
         fig5_fairness; do
  ./build/bench/$b insts=40000 repeats=1 profile_insts=100000 > /dev/null
  echo "  $b ok"
done
./build/bench/fig2_smt_speedup insts=30000 repeats=1 profile_insts=80000 > /dev/null
echo "  fig2_smt_speedup ok"
./build/bench/micro_components --benchmark_min_time=0.01 > /dev/null
echo "  micro_components ok"
# Tiny grid; the table-quality run is documented in EXPERIMENTS.md.
./build/bench/sampled_error_speedup insts=60000 reps=1 profile_insts=80000 \
    intervals=2 interval_insts=2000 sample_warmup=1000 \
    workloads=2MEM-1 schemes=HF-RF,ME-LREQ out=/tmp/BENCH_sampled_error.json \
    > /dev/null
rm -f /tmp/BENCH_sampled_error.json
echo "  sampled_error_speedup ok"

echo "== engine throughput gate (cycle vs skip, see docs/performance.md) =="
# BENCH_throughput.json carries the per-case speedups and the busy-load
# aggregate (busy_load.mticks_per_s). The gate is ratcheted: a committed
# hot-path win must be folded into bench/baselines/ via
#   python3 scripts/check_throughput.py --update-baseline /tmp/BENCH_throughput.json
# and the update refuses to loosen the baseline (see the script docstring).
./build/bench/sim_throughput out=/tmp/BENCH_throughput.json > /dev/null
python3 scripts/check_throughput.py /tmp/BENCH_throughput.json
rm -f /tmp/BENCH_throughput.json

echo "== tool smoke =="
./build/tools/memsched_sim run workload=2MEM-1 scheme=ME-LREQ insts=20000 \
    profile_insts=60000 repeats=1 > /dev/null
./build/tools/memsched_trace gen app=swim insts=10000 out=/tmp/check_trace.bin
./build/tools/memsched_trace info in=/tmp/check_trace.bin > /dev/null
rm -f /tmp/check_trace.bin
echo "  tools ok"

# The bench-smoke MEMSCHED_VERIFY export must not leak into the smoke
# scripts below: checkpointing is inert under the auditor, and the ckpt and
# parallel-sweep smokes wait on snapshot files appearing.
unset MEMSCHED_VERIFY

echo "== chaos smoke (fault injection + kill/resume, see docs/robustness.md) =="
scripts/chaos_smoke.sh build > /dev/null
echo "  chaos smoke ok"

echo "== ckpt smoke (SIGKILL/SIGTERM + snapshot resume, see docs/robustness.md) =="
scripts/ckpt_smoke.sh build > /dev/null
echo "  ckpt smoke ok"

echo "== parallel sweep smoke (jobs=N determinism + worker loss, see docs/performance.md) =="
scripts/parallel_sweep_smoke.sh build > /dev/null
echo "  parallel sweep smoke ok"

echo "== serve smoke (sweep daemon kill/restart + queue faults, see docs/robustness.md) =="
scripts/serve_smoke.sh build > /dev/null
echo "  serve smoke ok"

echo "== sweep scaling (wall-clock at jobs=1/2/4 -> BENCH_sweep.json) =="
python3 scripts/check_sweep_scaling.py build --out /tmp/BENCH_sweep.json
rm -f /tmp/BENCH_sweep.json

# Soft line-coverage floor for src/ (enforced by the CI coverage job via
# scripts/coverage.sh). Not run here by default — it rebuilds the whole tree
# instrumented; opt in with MEMSCHED_CHECK_COVERAGE=1.
MEMSCHED_COVERAGE_FLOOR=80
if [ "${MEMSCHED_CHECK_COVERAGE:-0}" = 1 ]; then
  echo "== coverage (soft floor ${MEMSCHED_COVERAGE_FLOOR}%) =="
  scripts/coverage.sh "$MEMSCHED_COVERAGE_FLOOR"
fi

echo "ALL CHECKS PASSED"
