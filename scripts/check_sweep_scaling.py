#!/usr/bin/env python3
"""Measure sweep wall-clock at jobs=1/2/4 and emit BENCH_sweep.json.

Runs a fixed 12-point sensitivity-style grid through tools/memsched_sweep at
each pool width, records end-to-end wall-clock, and cross-checks that every
width produces byte-identical reports (the pool's determinism contract).

The speedup gate (>= MIN_SPEEDUP at jobs=4) is enforced only on machines with
4+ CPUs; narrower machines cannot physically exhibit the scaling, so there the
script records the measurements and passes.

Usage: scripts/check_sweep_scaling.py [build-dir] [--out BENCH_sweep.json]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

GRID = [
    "workloads=2MEM-1,4MEM-1,2MIX-1",
    "schemes=HF-RF,ME-LREQ,FCFS,FCFS-RF",
    "insts=40000",
    "profile_insts=60000",
    "repeats=1",
    "timeout=240",
    "quiet=1",
]
JOBS = [1, 2, 4]
MIN_SPEEDUP = 3.0  # required at jobs=4, on 4+-core machines only
MIN_GATE_CPUS = 4


def run_sweep(sweep, jobs, workdir):
    manifest = os.path.join(workdir, f"jobs{jobs}.manifest.json")
    report = os.path.join(workdir, f"jobs{jobs}.report.json")
    start = time.monotonic()
    subprocess.run(
        [sweep, "grid", *GRID, f"jobs={jobs}", f"manifest={manifest}",
         f"report={report}"],
        check=True,
        stdout=subprocess.DEVNULL,
    )
    wall_s = time.monotonic() - start
    with open(report, "rb") as f:
        return wall_s, f.read()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("build_dir", nargs="?", default="build")
    parser.add_argument("--out", default="BENCH_sweep.json")
    args = parser.parse_args()

    sweep = os.path.join(args.build_dir, "tools", "memsched_sweep")
    if not os.access(sweep, os.X_OK):
        print(f"check_sweep_scaling: {sweep} not built", file=sys.stderr)
        return 1

    cpus = os.cpu_count() or 1
    walls = {}
    reports = {}
    with tempfile.TemporaryDirectory() as workdir:
        for jobs in JOBS:
            wall_s, report_bytes = run_sweep(sweep, jobs, workdir)
            walls[jobs] = wall_s
            reports[jobs] = report_bytes
            print(f"  jobs={jobs}: {wall_s:.2f} s wall")

    for jobs in JOBS[1:]:
        if reports[jobs] != reports[JOBS[0]]:
            print(f"SWEEP SCALING: FAIL (report at jobs={jobs} is not "
                  f"byte-identical to jobs={JOBS[0]})", file=sys.stderr)
            return 1

    speedups = {jobs: walls[JOBS[0]] / walls[jobs] for jobs in JOBS}
    doc = {
        "schema": "memsched-bench-sweep-v1",
        "grid": GRID,
        "cpus": cpus,
        "wall_s": {str(j): round(walls[j], 3) for j in JOBS},
        "speedup_vs_serial": {str(j): round(speedups[j], 3) for j in JOBS},
        "gate": {
            "min_speedup_at_jobs4": MIN_SPEEDUP,
            "enforced": cpus >= MIN_GATE_CPUS,
        },
    }
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"  wrote {args.out}")

    if cpus >= MIN_GATE_CPUS:
        if speedups[4] < MIN_SPEEDUP:
            print(f"SWEEP SCALING: FAIL (jobs=4 speedup {speedups[4]:.2f}x "
                  f"< {MIN_SPEEDUP}x on a {cpus}-CPU machine)",
                  file=sys.stderr)
            return 1
        print(f"SWEEP SCALING: OK (jobs=4 speedup {speedups[4]:.2f}x "
              f">= {MIN_SPEEDUP}x on {cpus} CPUs)")
    else:
        print(f"SWEEP SCALING: OK (measurements recorded; speedup gate "
              f"needs {MIN_GATE_CPUS}+ CPUs, this machine has {cpus})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
