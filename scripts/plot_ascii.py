#!/usr/bin/env python3
"""Terminal plots for memsched CSV outputs (stdlib only).

Examples:
  scripts/plot_ascii.py results/latency_curves.csv \
      --x offered_per_tick --y avg_lat_ticks --series scheme
  scripts/plot_ascii.py results/fig2_smt_speedup.csv \
      --bar --label workload --y vs_hfrf_pct --filter scheme=ME-LREQ
"""
import argparse
import csv
import sys

WIDTH = 72
HEIGHT = 20
MARKS = "ox+*#@%&"


def load(path, flt):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    for cond in flt or []:
        key, _, value = cond.partition("=")
        rows = [r for r in rows if r.get(key) == value]
    return rows


def bar_chart(rows, label_col, y_col):
    data = [(r[label_col], float(r[y_col])) for r in rows]
    if not data:
        sys.exit("no rows after filtering")
    lo = min(0.0, min(v for _, v in data))
    hi = max(0.0, max(v for _, v in data))
    span = (hi - lo) or 1.0
    print(f"{y_col}  [{lo:.3g} .. {hi:.3g}]")
    for name, v in data:
        n = int(round((v - lo) / span * WIDTH))
        zero = int(round((0.0 - lo) / span * WIDTH))
        line = [" "] * (WIDTH + 1)
        a, b = sorted((zero, n))
        for i in range(a, b + 1):
            line[i] = "█" if i != zero else "|"
        print(f"{name:>12} {''.join(line)} {v:.3f}")


def xy_chart(rows, x_col, y_col, series_col):
    series = {}
    for r in rows:
        key = r.get(series_col, "") if series_col else ""
        series.setdefault(key, []).append((float(r[x_col]), float(r[y_col])))
    if not series:
        sys.exit("no rows after filtering")
    xs = [p[0] for pts in series.values() for p in pts]
    ys = [p[1] for pts in series.values() for p in pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0
    grid = [[" "] * (WIDTH + 1) for _ in range(HEIGHT + 1)]
    for si, (name, pts) in enumerate(sorted(series.items())):
        mark = MARKS[si % len(MARKS)]
        for x, y in pts:
            col = int(round((x - x0) / xspan * WIDTH))
            row = HEIGHT - int(round((y - y0) / yspan * HEIGHT))
            grid[row][col] = mark
    print(f"{y_col}  [{y0:.3g} .. {y1:.3g}]")
    for row in grid:
        print("  |" + "".join(row))
    print("  +" + "-" * (WIDTH + 1))
    print(f"   {x_col}: {x0:.3g} .. {x1:.3g}")
    for si, name in enumerate(sorted(series)):
        print(f"   {MARKS[si % len(MARKS)]} = {name or '(all)'}")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("csv")
    ap.add_argument("--x", help="x column (scatter mode)")
    ap.add_argument("--y", required=True, help="y column")
    ap.add_argument("--series", help="group scatter points by this column")
    ap.add_argument("--bar", action="store_true", help="horizontal bar chart")
    ap.add_argument("--label", help="bar label column")
    ap.add_argument("--filter", action="append",
                    help="keep rows where col=value (repeatable)")
    args = ap.parse_args()

    rows = load(args.csv, args.filter)
    if args.bar:
        if not args.label:
            sys.exit("--bar requires --label")
        bar_chart(rows, args.label, args.y)
    else:
        if not args.x:
            sys.exit("scatter mode requires --x")
        xy_chart(rows, args.x, args.y, args.series)


if __name__ == "__main__":
    main()
