#!/bin/sh
# Sweep-daemon smoke: proves the crash-safe serve loop end to end on real
# binaries (unit tests drive the daemon inline and in-process; this script
# uses real forked runners, real SIGKILL/SIGTERM against a real daemon).
#
#   1. A submitted grid must produce a report byte-identical to the same
#      grid run through `memsched_sweep grid` directly, and resubmitting the
#      identical grid must collapse onto the finished job.
#   2. A daemon SIGKILLed at arbitrary instants mid-job must lose nothing:
#      `memsched_served check` heals any torn WAL tail, a restarted daemon
#      recovers the job, the client's retry resubmission deduplicates, and
#      the final report is byte-identical.
#   3. SIGTERM is a graceful drain: exit code 6 (interrupted contract), no
#      torn queue bytes, and the restarted daemon — at a different
#      orchestrator pool width — resumes to the byte-identical report.
#   4. A daemon with filesystem faults injected into the queue I/O path
#      (MEMSCHED_QUEUE_FSFAULT: short writes, ENOSPC, EIO, bit flips) must
#      keep serving — degraded at worst, never wrong, never down — and still
#      deliver the byte-identical report.
#
# Usage: scripts/serve_smoke.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
SWEEP="$BUILD/tools/memsched_sweep"
SERVED="$BUILD/tools/memsched_served"
CTL="$BUILD/tools/memsched_submitctl"
WORK="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2> /dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

[ -x "$SWEEP" ] || { echo "serve_smoke: $SWEEP not built" >&2; exit 1; }
[ -x "$SERVED" ] || { echo "serve_smoke: $SERVED not built" >&2; exit 1; }
[ -x "$CTL" ] || { echo "serve_smoke: $CTL not built" >&2; exit 1; }

GRID="workloads=2MEM-1 schemes=FCFS,HF-RF,ME-LREQ insts=15000 profile_insts=50000"

start_daemon() {
  # start_daemon <state-dir> [extra daemon args...]
  STATE="$1"
  shift
  "$SERVED" start socket="$WORK/d.sock" state="$STATE" quiet=1 "$@" &
  DAEMON_PID=$!
  "$CTL" ping socket="$WORK/d.sock" retries=50 > /dev/null ||
      { echo "serve_smoke: daemon did not come up" >&2; exit 1; }
}

# Reference report: the same grid through the CLI sweep tool, no daemon.
"$SWEEP" grid $GRID manifest="$WORK/ref.m" report="$WORK/ref.r" quiet=1 > /dev/null

echo "== serve 1: submitted job is byte-identical to the CLI sweep =="
start_daemon "$WORK/s1"
"$CTL" submit socket="$WORK/d.sock" wait=1 timeout=240 $GRID > /dev/null
"$CTL" result socket="$WORK/d.sock" id=1 out="$WORK/s1.r"
cmp "$WORK/ref.r" "$WORK/s1.r" ||
    { echo "serve_smoke: daemon report differs from CLI sweep" >&2; exit 1; }
# Exactly-once: the identical grid collapses onto job 1, already done.
"$CTL" submit socket="$WORK/d.sock" $GRID | grep -q "job 1 done (duplicate)" ||
    { echo "serve_smoke: duplicate submission was not collapsed" >&2; exit 1; }
"$CTL" drain socket="$WORK/d.sock" > /dev/null
wait "$DAEMON_PID" || { echo "serve_smoke: drained daemon exited nonzero" >&2; exit 1; }
DAEMON_PID=""
echo "  report byte-identical; duplicate collapsed; drain exited 0"

echo "== serve 2: SIGKILL mid-job loses nothing, restart recovers =="
for DELAY in 0.05 0.20 0.45; do
  rm -rf "$WORK/s2"
  start_daemon "$WORK/s2"
  "$CTL" submit socket="$WORK/d.sock" $GRID > /dev/null
  sleep "$DELAY"
  kill -KILL "$DAEMON_PID" 2> /dev/null || true
  wait "$DAEMON_PID" 2> /dev/null || true
  DAEMON_PID=""
  # First check may report (and heal) a torn tail from the kill; the second
  # must find a clean queue with the job still present.
  "$SERVED" check state="$WORK/s2" > /dev/null 2>&1 || true
  "$SERVED" check state="$WORK/s2" | grep -q "check: 1 job(s)" ||
      { echo "serve_smoke: job lost after SIGKILL at ${DELAY}s" >&2; exit 1; }
  # Restart; the client retries its submission (exactly-once: deduplicated)
  # and waits the recovered job out.
  start_daemon "$WORK/s2"
  "$CTL" submit socket="$WORK/d.sock" wait=1 timeout=240 $GRID > /dev/null
  "$CTL" result socket="$WORK/d.sock" id=1 out="$WORK/s2.r"
  cmp "$WORK/ref.r" "$WORK/s2.r" ||
      { echo "serve_smoke: post-SIGKILL report differs (${DELAY}s)" >&2; exit 1; }
  "$CTL" drain socket="$WORK/d.sock" > /dev/null
  wait "$DAEMON_PID" || { echo "serve_smoke: drain after recovery failed" >&2; exit 1; }
  DAEMON_PID=""
done
echo "  3 kills, zero lost jobs, all reports byte-identical"

echo "== serve 3: SIGTERM drains gracefully (exit 6), warm restart at jobs=3 =="
start_daemon "$WORK/s3"
"$CTL" submit socket="$WORK/d.sock" $GRID > /dev/null
sleep 0.2
kill -TERM "$DAEMON_PID"
RC=0
wait "$DAEMON_PID" || RC=$?
DAEMON_PID=""
[ "$RC" = 6 ] ||
    { echo "serve_smoke: SIGTERM exit code was $RC, want 6" >&2; exit 1; }
# A graceful drain never tears the WAL: check must be clean on the first try.
"$SERVED" check state="$WORK/s3" > /dev/null ||
    { echo "serve_smoke: queue dirty after graceful drain" >&2; exit 1; }
start_daemon "$WORK/s3" jobs=3
"$CTL" wait socket="$WORK/d.sock" id=1 timeout=240 ||
    { echo "serve_smoke: recovered job did not finish" >&2; exit 1; }
"$CTL" result socket="$WORK/d.sock" id=1 out="$WORK/s3.r"
cmp "$WORK/ref.r" "$WORK/s3.r" ||
    { echo "serve_smoke: warm jobs=3 report differs" >&2; exit 1; }
"$CTL" drain socket="$WORK/d.sock" > /dev/null
wait "$DAEMON_PID" || { echo "serve_smoke: drain after warm restart failed" >&2; exit 1; }
DAEMON_PID=""
echo "  graceful exit 6; clean queue; warm jobs=3 report byte-identical"

echo "== serve 4: injected queue fs faults degrade, never lose or corrupt =="
CHAOS="seed=20260808,short_write=0.3,enospc=0.2,eio=0.15,bitflip=0.2"
MEMSCHED_QUEUE_FSFAULT="$CHAOS" "$SERVED" start socket="$WORK/d.sock" \
    state="$WORK/s4" quiet=1 &
DAEMON_PID=$!
"$CTL" ping socket="$WORK/d.sock" retries=50 > /dev/null ||
    { echo "serve_smoke: chaos daemon did not come up" >&2; exit 1; }
"$CTL" submit socket="$WORK/d.sock" wait=1 timeout=240 $GRID > /dev/null ||
    { echo "serve_smoke: chaos daemon lost the submission" >&2; exit 1; }
"$CTL" result socket="$WORK/d.sock" id=1 out="$WORK/s4.r"
cmp "$WORK/ref.r" "$WORK/s4.r" ||
    { echo "serve_smoke: chaos report differs" >&2; exit 1; }
"$CTL" drain socket="$WORK/d.sock" > /dev/null
wait "$DAEMON_PID" || { echo "serve_smoke: chaos drain failed" >&2; exit 1; }
DAEMON_PID=""
# Without the fault env the queue must replay clean (a degraded daemon
# compacts its way back to a healthy WAL before serving).
"$SERVED" check state="$WORK/s4" > /dev/null ||
    { echo "serve_smoke: chaos queue did not heal" >&2; exit 1; }
echo "  chaos daemon served the byte-identical report; queue healed"

echo "SERVE SMOKE PASSED"
