#!/bin/sh
# Parallel sweep smoke: proves the N-way process pool's contracts on real
# binaries (the unit tests emulate workers in-process; this script uses real
# processes and real signals).
#
#   1. The determinism contract: the same grid swept at jobs=4 and jobs=1
#      must produce byte-identical manifests and reports — completion order,
#      dispatch order, and pool width must never leak into the output.
#   2. Worker loss: one worker child SIGKILLed mid-pool is recorded as a
#      crash gap, the rest of the sweep completes; the next invocation
#      re-runs ONLY the lost point (resuming from its snapshot) and the
#      repaired report is byte-identical to an uninterrupted serial run.
#   3. Graceful stop: SIGTERM to the sweep fans out to every live worker,
#      each parks its state, the sweep exits with the "interrupted" contract
#      code (6), and the resume is byte-identical.
#
# Usage: scripts/parallel_sweep_smoke.sh [build-dir]   (default: build)
set -eu

# Checkpointing degrades to off under the invariant auditor (its shadow state
# is not snapshotted), so an inherited MEMSCHED_VERIFY=1 would hang the
# snapshot wait loop in the SIGTERM leg. Pin it off.
unset MEMSCHED_VERIFY 2> /dev/null || true

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
SWEEP="$BUILD/tools/memsched_sweep"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

[ -x "$SWEEP" ] || { echo "parallel_sweep_smoke: $SWEEP not built" >&2; exit 1; }

# Small sensitivity grid (8 points) for the pure determinism check.
GRID="workloads=2MEM-1,4MEM-1 schemes=HF-RF,ME-LREQ,FCFS,FCFS-RF,BLISS,TCM,CADS insts=20000 \
      profile_insts=60000 repeats=1 timeout=240 quiet=1"

echo "== pool 1: jobs=4 vs jobs=1 -> byte-identical manifest and report =="
"$SWEEP" grid $GRID jobs=1 manifest="$WORK/serial.m" report="$WORK/serial.r" \
    > /dev/null
"$SWEEP" grid $GRID jobs=4 manifest="$WORK/pool.m" report="$WORK/pool.r" \
    > /dev/null
cmp "$WORK/serial.m" "$WORK/pool.m" ||
    { echo "parallel_sweep_smoke: manifests differ across jobs=" >&2; exit 1; }
cmp "$WORK/serial.r" "$WORK/pool.r" ||
    { echo "parallel_sweep_smoke: reports differ across jobs=" >&2; exit 1; }
echo "  jobs=4 output is byte-identical to jobs=1"

# Long-running points (cycle engine + checkpointing) so signals land
# mid-flight and the resume has snapshots to start from.
KGRID="workloads=2MEM-1,4MEM-1 schemes=HF-RF,ME-LREQ insts=2000000 repeats=1 \
       engine=cycle timeout=240 quiet=1"

echo "== pool 2: SIGKILL one worker mid-pool; resume repairs the gap =="
"$SWEEP" grid $KGRID jobs=1 manifest="$WORK/kref.m" report="$WORK/kref.r" \
    > /dev/null
"$SWEEP" grid $KGRID jobs=4 manifest="$WORK/kill.m" report="$WORK/unused.r" \
    > /dev/null 2>&1 &
PID=$!
CHILD=""
i=0
while [ $i -lt 200 ]; do
  CHILD="$(pgrep -P "$PID" 2> /dev/null | head -n 1 || true)"
  [ -n "$CHILD" ] && break
  sleep 0.05
  i=$((i + 1))
done
[ -n "$CHILD" ] ||
    { echo "parallel_sweep_smoke: no worker child appeared" >&2; exit 1; }
sleep 0.3  # let the victim get some simulation (and ideally a snapshot) done
kill -KILL "$CHILD" 2> /dev/null || true
wait "$PID" || true  # lost point is a recorded gap; the sweep still lands
"$SWEEP" grid $KGRID jobs=4 manifest="$WORK/kill.m" report="$WORK/kill.r" \
    > /dev/null
cmp "$WORK/kref.r" "$WORK/kill.r" ||
    { echo "parallel_sweep_smoke: repaired report differs from reference" >&2
      exit 1; }
cmp "$WORK/kref.m" "$WORK/kill.m" ||
    { echo "parallel_sweep_smoke: repaired manifest differs from reference" >&2
      exit 1; }
echo "  lost worker re-ran on resume; report is byte-identical"

echo "== pool 3: SIGTERM fans out, exit 6, resume -> byte-identical =="
"$SWEEP" grid $KGRID jobs=4 manifest="$WORK/term.m" report="$WORK/unused2.r" \
    > /dev/null 2>&1 &
PID=$!
i=0
until ls "$WORK"/term.m.work/point-*.ckpt.d/*.ckpt > /dev/null 2>&1; do
  [ $i -lt 600 ] ||
      { echo "parallel_sweep_smoke: no snapshot appeared within 30s" >&2
        exit 1; }
  sleep 0.05
  i=$((i + 1))
done
kill -TERM "$PID" 2> /dev/null || true
RC=0
wait "$PID" || RC=$?
[ "$RC" -eq 6 ] ||
    { echo "parallel_sweep_smoke: expected exit 6 (interrupted), got $RC" >&2
      exit 1; }
"$SWEEP" grid $KGRID jobs=4 manifest="$WORK/term.m" report="$WORK/term.r" \
    > /dev/null
cmp "$WORK/kref.r" "$WORK/term.r" ||
    { echo "parallel_sweep_smoke: post-SIGTERM resumed report differs" >&2
      exit 1; }
echo "  graceful stop honored across the pool; resumed report byte-identical"

echo "PARALLEL SWEEP SMOKE PASSED"
