#!/bin/sh
# Runs memsched-lint (tools/memsched_lint) over the whole tree: every TU in
# compile_commands.json plus all headers under src/, tools/ and bench/.
#
# Usage: scripts/run_lint.sh [build-dir]     (default: build)
#
# Exit codes: 0 = clean, 1 = findings (grep convention — deliberately outside
# the orchestrator's exit-code contract, which reserves 1 as "never emitted"),
# 2 = usage error. If the linter binary is missing (MEMSCHED_LINT=OFF or the
# build hasn't run) the gate SKIPS with a notice instead of failing: the lint
# job in CI builds the tool explicitly, so a skip here never hides findings
# on a checked-in branch.
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
LINT_BIN="$BUILD_DIR/tools/memsched_lint/memsched_lint"

if [ ! -x "$LINT_BIN" ]; then
  echo "memsched-lint: $LINT_BIN not built (MEMSCHED_LINT=OFF?); skipped" >&2
  exit 0
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "memsched-lint: $BUILD_DIR/compile_commands.json missing; skipped" >&2
  exit 0
fi

exec "$LINT_BIN" \
  compile_commands="$BUILD_DIR/compile_commands.json" \
  headers=src,tools,bench \
  baseline=tools/memsched_lint/baseline.txt \
  root=.
