#!/bin/sh
# Line-coverage report for src/: instrumented build (MEMSCHED_COVERAGE=ON),
# full test suite, then a gcov-based per-file summary.
#
# Usage: scripts/coverage.sh [floor-percent]
#   floor-percent  fail (exit 1) when total src/ line coverage is below this;
#                  default 0 = report only. scripts/check.sh records the
#                  project's soft floor.
#
# Uses gcov's JSON intermediate format + python3 (both in the base toolchain);
# no gcovr/lcov required.
set -eu

cd "$(dirname "$0")/.."
FLOOR="${1:-0}"

cmake -B build-cov -S . -DMEMSCHED_COVERAGE=ON
cmake --build build-cov -j "$(nproc)"
timeout 3600 ctest --test-dir build-cov --output-on-failure -j "$(nproc)"

REPORT_DIR=build-cov/coverage-report
rm -rf "$REPORT_DIR"
mkdir -p "$REPORT_DIR"
# Only the library objects under build-cov/src carry src/ counters; test and
# bench objects would just re-report the same headers.
(
  cd "$REPORT_DIR"
  find ../src -name '*.gcda' -print | while read -r gcda; do
    gcov --json-format "$gcda" > /dev/null
  done
)
python3 scripts/coverage_summary.py "$REPORT_DIR" --floor "$FLOOR"
