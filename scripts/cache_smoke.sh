#!/bin/sh
# Result-cache smoke: proves the crash-safe content-addressed cache end to
# end on real binaries (unit tests emulate torn commits in-process; this
# script uses real SIGKILL against real sweeps).
#
#   1. A warm --cache re-run (manifest deleted, store populated) must serve
#      every point from the cache and produce a report byte-identical to the
#      cold run — at jobs=1 and jobs=4.
#   2. Sweeps SIGKILLed at arbitrary instants while populating the cache must
#      never leave a torn entry: memsched_cachectl verify reports zero
#      corrupt entries after every kill, fsck reclaims whatever the dead
#      writers left behind (intents, tmp files), and the next sweep
#      self-heals to the byte-identical report.
#   3. A sweep with filesystem faults injected into the cache I/O path
#      (short writes, ENOSPC, EIO, read bit-flips via MEMSCHED_CACHE_FSFAULT)
#      must degrade to miss-and-resimulate — exit 0, byte-identical report —
#      and never serve corrupt bytes.
#
# Usage: scripts/cache_smoke.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
SWEEP="$BUILD/tools/memsched_sweep"
CTL="$BUILD/tools/memsched_cachectl"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

[ -x "$SWEEP" ] || { echo "cache_smoke: $SWEEP not built" >&2; exit 1; }
[ -x "$CTL" ] || { echo "cache_smoke: $CTL not built" >&2; exit 1; }

ARGS="workloads=2MEM-1 schemes=FCFS,FCFS-RF,HF-RF,LREQ,ME,ME-LREQ,BLISS,TCM,CADS \
      insts=15000 profile_insts=50000 timeout=240 quiet=1"

# Reference report: no cache involved at all.
"$SWEEP" grid $ARGS manifest="$WORK/ref.m" report="$WORK/ref.r" > /dev/null

echo "== cache 1: warm re-run is byte-identical to cold, jobs=1 and jobs=4 =="
"$SWEEP" grid $ARGS cache="$WORK/store1" manifest="$WORK/cold.m" \
    report="$WORK/cold.r" > /dev/null
cmp "$WORK/ref.r" "$WORK/cold.r" ||
    { echo "cache_smoke: cold cached report differs from uncached" >&2; exit 1; }
rm -f "$WORK/cold.m" "$WORK/cold.m.timing.json"
WARM_OUT=$("$SWEEP" grid $ARGS cache="$WORK/store1" manifest="$WORK/warm1.m" \
    report="$WORK/warm1.r")
echo "$WARM_OUT" | grep -q "cache: 6 hits" ||
    { echo "cache_smoke: warm run did not serve all 6 points" >&2; exit 1; }
cmp "$WORK/ref.r" "$WORK/warm1.r" ||
    { echo "cache_smoke: warm jobs=1 report differs" >&2; exit 1; }
"$SWEEP" grid $ARGS cache="$WORK/store1" manifest="$WORK/warm4.m" \
    report="$WORK/warm4.r" --jobs 4 > /dev/null
cmp "$WORK/ref.r" "$WORK/warm4.r" ||
    { echo "cache_smoke: warm jobs=4 report differs" >&2; exit 1; }
cmp "$WORK/warm1.m" "$WORK/warm4.m" ||
    { echo "cache_smoke: warm manifests differ across pool widths" >&2; exit 1; }
echo "  all 6 points served from cache; reports byte-identical at both widths"

echo "== cache 2: SIGKILL while populating never tears an entry =="
for DELAY in 0.05 0.10 0.15 0.20 0.30 0.45; do
  rm -f "$WORK/kill.m" "$WORK/kill.m.timing.json"
  "$SWEEP" grid $ARGS cache="$WORK/store2" manifest="$WORK/kill.m" \
      report="$WORK/kill.r" > /dev/null 2>&1 &
  PID=$!
  sleep "$DELAY"
  kill -KILL "$PID" 2> /dev/null || true
  wait "$PID" 2> /dev/null || true
  # The store must be corruption-free at every instant: entries are created
  # only by atomic rename. Leftover intents/tmp files are legal (that's what
  # the kill leaves) — torn entries are not.
  "$CTL" verify dir="$WORK/store2" | grep -q " 0 corrupt," ||
      { echo "cache_smoke: torn entry after SIGKILL at ${DELAY}s" >&2; exit 1; }
done
"$CTL" stats dir="$WORK/store2"
# Reclaim dead writers' leftovers, then the store must verify clean under
# strict (no corrupt entries, no intents, no tmp orphans).
"$CTL" fsck dir="$WORK/store2" lease=0
"$CTL" verify dir="$WORK/store2" strict=1 > /dev/null ||
    { echo "cache_smoke: store not clean after fsck" >&2; exit 1; }
# Self-heal: the next sweep fills whatever the kills left missing and the
# report comes out byte-identical.
rm -f "$WORK/kill.m" "$WORK/kill.m.timing.json"
"$SWEEP" grid $ARGS cache="$WORK/store2" manifest="$WORK/kill.m" \
    report="$WORK/kill.r" > /dev/null
cmp "$WORK/ref.r" "$WORK/kill.r" ||
    { echo "cache_smoke: post-kill report differs" >&2; exit 1; }
echo "  6 kills, zero torn entries; fsck cleaned the store; report identical"

echo "== cache 3: injected fs faults degrade to resimulation, never failure =="
CHAOS="seed=20260808,short_write=0.4,enospc=0.25,eio=0.2,bitflip=0.25"
MEMSCHED_CACHE_FSFAULT="$CHAOS" "$SWEEP" grid $ARGS cache="$WORK/store3" \
    manifest="$WORK/chaos_cold.m" report="$WORK/chaos_cold.r" > /dev/null 2>&1 ||
    { echo "cache_smoke: faulted cold sweep failed" >&2; exit 1; }
cmp "$WORK/ref.r" "$WORK/chaos_cold.r" ||
    { echo "cache_smoke: faulted cold report differs" >&2; exit 1; }
MEMSCHED_CACHE_FSFAULT="$CHAOS" "$SWEEP" grid $ARGS cache="$WORK/store3" \
    manifest="$WORK/chaos_warm.m" report="$WORK/chaos_warm.r" > /dev/null 2>&1 ||
    { echo "cache_smoke: faulted warm sweep failed" >&2; exit 1; }
cmp "$WORK/ref.r" "$WORK/chaos_warm.r" ||
    { echo "cache_smoke: faulted warm report differs" >&2; exit 1; }
"$CTL" verify dir="$WORK/store3" | grep -q " 0 corrupt," ||
    { echo "cache_smoke: faulted store serves corrupt entries" >&2; exit 1; }
echo "  both faulted sweeps exited 0 with byte-identical reports"

echo "CACHE SMOKE PASSED"
