#!/usr/bin/env python3
"""Regression gate + ratchet for the simulation-engine throughput bench.

Gate mode compares a fresh BENCH_throughput.json (from bench/sim_throughput)
against the checked-in baseline and fails on:

  * any case where the two engines did not produce identical results
    (equivalence is checked inside the bench itself);
  * a skip-engine speedup more than 10% below the baseline speedup for the
    same case (wall-clock regression of the fast-forward path); idle-heavy
    cases are exempt from this relative check — their skip-engine walls are
    a few milliseconds, so the ratio of two tiny timings is too noisy for a
    10% band, and they are covered by the absolute 3x floor instead;
  * a visited-tick share more than 10% above baseline on closed-loop cases
    (a deterministic signal that the engine stopped skipping spans it used
    to skip, independent of machine speed);
  * any idle-heavy open-loop case below the absolute speedup floor the
    engine is required to deliver on low-MLP workloads (1.5x: the skip
    engine must still pay for itself; the floor used to be 3x, but the
    per-channel sleep elision made *cycle-engine* ticks nearly free on
    idle spans, so the ratio now measures skip's edge over an already-fast
    baseline rather than over a naive full scan);
  * a stale baseline: fresh busy-load throughput more than 1.5x the
    baseline's busy_load.mticks_per_s means a committed hot-path win was
    never ratcheted into the baseline — rerun with --update-baseline.

Ratchet mode (--update-baseline) rewrites the baseline from a fresh bench
run. It applies the deterministic checks (engine equivalence, visited-tick
share) but not the wall-clock-ratio comparisons — those compare against a
baseline that may have been recorded on a different machine, which is
exactly what the update exists to refresh. What it does enforce is that
the ratchet only moves DOWN: the update is refused (exit 1) when the fresh
busy-load throughput regresses more than 10% against the committed
baseline, so a slower hot path can never silently loosen the gate
(--force overrides, for deliberate re-baselining on a slower machine).
The new baseline records the busy-load win explicitly as
busy_load.speedup_vs_previous.

Usage: check_throughput.py <BENCH_throughput.json> [baseline.json]
       check_throughput.py --update-baseline [--force] <BENCH_throughput.json> [baseline.json]
"""
import json
import sys

SPEEDUP_TOLERANCE = 0.90      # >10% regression fails
VISITED_TOLERANCE = 1.10      # >10% more visited ticks fails
IDLE_HEAVY_FLOOR = 1.5        # required speedup on idle-heavy cases
RATCHET_TOLERANCE = 0.90      # busy mticks/s may not drop >10% on update
STALE_FACTOR = 1.50           # fresh busy mticks/s >1.5x baseline => stale

DEFAULT_BASELINE = "bench/baselines/sim_throughput_baseline.json"


def key(entry):
    return (entry.get("workload") or "load=%.3f" % entry["load"], entry["scheme"])


def index(doc, section):
    return {key(e): e for e in doc.get(section, [])}


def busy_mticks(doc):
    return doc.get("busy_load", {}).get("mticks_per_s")


def gate_failures(bench, base, check_stale=True, check_wall_clock=True):
    failures = []
    if not bench.get("all_results_identical", False):
        failures.append("engine results diverged (all_results_identical is false)")

    for section in ("closed_loop", "open_loop"):
        fresh = index(bench, section)
        ref = index(base, section)
        for k, b in ref.items():
            e = fresh.get(k)
            if e is None:
                failures.append(f"{section} {k}: case missing from bench output")
                continue
            if not e.get("results_identical", False):
                failures.append(f"{section} {k}: engines disagreed")
            if "visited_share" in b and "visited_share" in e:
                if e["visited_share"] > b["visited_share"] * VISITED_TOLERANCE:
                    failures.append(
                        f"{section} {k}: visited share {e['visited_share']:.3f} "
                        f"grew >10% over baseline {b['visited_share']:.3f}")
            if not check_wall_clock:
                continue
            floor = b["speedup"] * SPEEDUP_TOLERANCE
            if not e.get("idle_heavy") and e["speedup"] < floor:
                failures.append(
                    f"{section} {k}: speedup {e['speedup']:.2f}x regressed >10% "
                    f"below baseline {b['speedup']:.2f}x")
            if e.get("idle_heavy") and e["speedup"] < IDLE_HEAVY_FLOOR:
                failures.append(
                    f"{section} {k}: idle-heavy speedup {e['speedup']:.2f}x "
                    f"below the {IDLE_HEAVY_FLOOR:.1f}x floor")

    if check_stale:
        fresh_busy, base_busy = busy_mticks(bench), busy_mticks(base)
        if fresh_busy is not None and base_busy is not None:
            if fresh_busy > base_busy * STALE_FACTOR:
                failures.append(
                    f"baseline is stale: busy-load throughput {fresh_busy:.2f} "
                    f"Mticks/s is >{STALE_FACTOR:.1f}x the baseline's "
                    f"{base_busy:.2f} — a committed win was not ratcheted; "
                    f"rerun with --update-baseline")
    return failures


def update_baseline(bench, base, base_path, force):
    # Deterministic checks only: the wall-clock ratios compare against a
    # baseline possibly recorded on different hardware — refreshing them is
    # the update's job. "Don't loosen" is enforced by the busy-load ratchet.
    failures = gate_failures(bench, base, check_stale=False, check_wall_clock=False)

    fresh_busy, old_busy = busy_mticks(bench), busy_mticks(base)
    if fresh_busy is not None and old_busy is not None and not force:
        if fresh_busy < old_busy * RATCHET_TOLERANCE:
            failures.append(
                f"ratchet only moves down: fresh busy-load throughput "
                f"{fresh_busy:.2f} Mticks/s is >10% below the committed "
                f"{old_busy:.2f} (use --force to re-baseline anyway)")

    if failures:
        print("BASELINE UPDATE: REFUSED")
        for f in failures:
            print("  -", f)
        return 1

    new_base = {
        "bench": bench.get("bench", "sim_throughput"),
        "eval_insts": bench.get("eval_insts"),
        "open_loop_ticks": bench.get("open_loop_ticks"),
        "closed_loop": bench.get("closed_loop", []),
        "open_loop": bench.get("open_loop", []),
        "all_results_identical": bench.get("all_results_identical", False),
    }
    if "busy_load" in bench:
        busy = dict(bench["busy_load"])
        if fresh_busy is not None and old_busy:
            # The committed hot-path win, recorded explicitly: how much
            # faster the busy closed-loop aggregate got vs the previous
            # baseline (same-machine comparison at ratchet time).
            busy["speedup_vs_previous"] = fresh_busy / old_busy
        new_base["busy_load"] = busy
    with open(base_path, "w") as f:
        json.dump(new_base, f, indent=2, sort_keys=True)
        f.write("\n")
    win = new_base.get("busy_load", {}).get("speedup_vs_previous")
    print(f"BASELINE UPDATED: {base_path}" +
          (f" (busy-load win vs previous: {win:.2f}x)" if win else ""))
    return 0


def main(argv):
    args = list(argv[1:])
    update = force = False
    if "--update-baseline" in args:
        args.remove("--update-baseline")
        update = True
    if "--force" in args:
        args.remove("--force")
        force = True
    if not args:
        print(__doc__)
        return 2
    bench_path = args[0]
    base_path = args[1] if len(args) > 1 else DEFAULT_BASELINE
    with open(bench_path) as f:
        bench = json.load(f)
    try:
        with open(base_path) as f:
            base = json.load(f)
    except FileNotFoundError:
        if not update:
            raise
        base = {}

    if update:
        return update_baseline(bench, base, base_path, force)

    failures = gate_failures(bench, base)
    if failures:
        print("THROUGHPUT GATE: FAIL")
        for f in failures:
            print("  -", f)
        return 1
    print(f"THROUGHPUT GATE: OK ({bench_path} vs {base_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
