#!/usr/bin/env python3
"""Regression gate for the simulation-engine throughput bench.

Compares a fresh BENCH_sim_throughput.json (from bench/sim_throughput)
against the checked-in baseline and fails on:

  * any case where the two engines did not produce identical results
    (equivalence is checked inside the bench itself);
  * a skip-engine speedup more than 10% below the baseline speedup for the
    same case (wall-clock regression of the fast-forward path); idle-heavy
    cases are exempt from this relative check — their skip-engine walls are
    a few milliseconds, so the ratio of two tiny timings is too noisy for a
    10% band, and they are covered by the absolute 3x floor instead;
  * a visited-tick share more than 10% above baseline on closed-loop cases
    (a deterministic signal that the engine stopped skipping spans it used
    to skip, independent of machine speed);
  * any idle-heavy open-loop case below the 3x speedup floor the engine is
    required to deliver on low-MLP workloads.

Usage: check_throughput.py <BENCH_sim_throughput.json> [baseline.json]
"""
import json
import sys

SPEEDUP_TOLERANCE = 0.90      # >10% regression fails
VISITED_TOLERANCE = 1.10      # >10% more visited ticks fails
IDLE_HEAVY_FLOOR = 3.0        # required speedup on idle-heavy cases


def key(entry):
    return (entry.get("workload") or "load=%.3f" % entry["load"], entry["scheme"])


def index(doc, section):
    return {key(e): e for e in doc.get(section, [])}


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    bench_path = argv[1]
    base_path = argv[2] if len(argv) > 2 else "bench/baselines/sim_throughput_baseline.json"
    with open(bench_path) as f:
        bench = json.load(f)
    with open(base_path) as f:
        base = json.load(f)

    failures = []

    if not bench.get("all_results_identical", False):
        failures.append("engine results diverged (all_results_identical is false)")

    for section in ("closed_loop", "open_loop"):
        fresh = index(bench, section)
        ref = index(base, section)
        for k, b in ref.items():
            e = fresh.get(k)
            if e is None:
                failures.append(f"{section} {k}: case missing from bench output")
                continue
            if not e.get("results_identical", False):
                failures.append(f"{section} {k}: engines disagreed")
            floor = b["speedup"] * SPEEDUP_TOLERANCE
            if not e.get("idle_heavy") and e["speedup"] < floor:
                failures.append(
                    f"{section} {k}: speedup {e['speedup']:.2f}x regressed >10% "
                    f"below baseline {b['speedup']:.2f}x")
            if "visited_share" in b and "visited_share" in e:
                if e["visited_share"] > b["visited_share"] * VISITED_TOLERANCE:
                    failures.append(
                        f"{section} {k}: visited share {e['visited_share']:.3f} "
                        f"grew >10% over baseline {b['visited_share']:.3f}")
            if e.get("idle_heavy") and e["speedup"] < IDLE_HEAVY_FLOOR:
                failures.append(
                    f"{section} {k}: idle-heavy speedup {e['speedup']:.2f}x "
                    f"below the {IDLE_HEAVY_FLOOR:.1f}x floor")

    if failures:
        print("THROUGHPUT GATE: FAIL")
        for f in failures:
            print("  -", f)
        return 1
    print(f"THROUGHPUT GATE: OK ({bench_path} vs {base_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
