// Unit tests for src/cache: set-associative cache, MSHR file, hierarchy.
#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hpp"
#include "cache/hierarchy.hpp"
#include "cache/mshr.hpp"
#include "dram/dram_system.hpp"
#include "mc/controller.hpp"
#include "sched/policies.hpp"
#include "util/rng.hpp"

namespace memsched::cache {
namespace {

CacheConfig tiny_cache() {
  // 4 sets x 2 ways x 64 B = 512 B: easy to exercise eviction.
  return CacheConfig{.size_bytes = 512, .ways = 2, .line_bytes = 64,
                     .hit_latency_cpu = 3, .name = "tiny"};
}

Addr line_in_set(std::uint64_t set, std::uint64_t tag, std::uint64_t sets = 4) {
  return (tag * sets + set) * 64;
}

// --------------------------------------------------------------- cache ----

TEST(Cache, MissThenHit) {
  SetAssocCache c(tiny_cache());
  EXPECT_FALSE(c.access(0x0, false).hit);
  EXPECT_TRUE(c.access(0x0, false).hit);
  EXPECT_TRUE(c.access(0x3f, false).hit);  // same line
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEvictsOldest) {
  SetAssocCache c(tiny_cache());
  const Addr a = line_in_set(0, 1), b = line_in_set(0, 2), d = line_in_set(0, 3);
  c.access(a, false);
  c.access(b, false);
  c.access(a, false);       // a is now MRU
  c.access(d, false);       // evicts b (LRU)
  EXPECT_TRUE(c.probe(a));
  EXPECT_FALSE(c.probe(b));
  EXPECT_TRUE(c.probe(d));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, DirtyEvictionReportsVictimLineAddress) {
  SetAssocCache c(tiny_cache());
  const Addr a = line_in_set(2, 1);
  c.access(a, true);  // dirty
  c.access(line_in_set(2, 2), false);
  const AccessResult r = c.access(line_in_set(2, 3), false);  // evicts a
  ASSERT_TRUE(r.writeback_line.has_value());
  EXPECT_EQ(*r.writeback_line, a);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback) {
  SetAssocCache c(tiny_cache());
  c.access(line_in_set(1, 1), false);
  c.access(line_in_set(1, 2), false);
  const AccessResult r = c.access(line_in_set(1, 3), false);
  EXPECT_FALSE(r.writeback_line.has_value());
}

TEST(Cache, WriteHitMarksDirty) {
  SetAssocCache c(tiny_cache());
  c.access(line_in_set(0, 1), false);
  c.access(line_in_set(0, 1), true);  // hit, dirties
  c.access(line_in_set(0, 2), false);
  const AccessResult r = c.access(line_in_set(0, 3), false);
  ASSERT_TRUE(r.writeback_line.has_value());
}

TEST(Cache, ProbeDoesNotTouchState) {
  SetAssocCache c(tiny_cache());
  c.access(line_in_set(0, 1), false);
  c.access(line_in_set(0, 2), false);
  // Many probes of line 1 must not refresh its LRU position.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(c.probe(line_in_set(0, 1)));
  EXPECT_EQ(c.stats().hits, 0u);
  // Access line 2 (making 1 LRU), then insert line 3: 1 must be evicted.
  c.access(line_in_set(0, 2), false);
  c.access(line_in_set(0, 3), false);
  EXPECT_FALSE(c.probe(line_in_set(0, 1)));
}

TEST(Cache, InvalidateReportsDirtiness) {
  SetAssocCache c(tiny_cache());
  c.access(0x0, true);
  c.access(0x40, false);
  EXPECT_TRUE(c.invalidate(0x0));
  EXPECT_FALSE(c.invalidate(0x40));
  EXPECT_FALSE(c.invalidate(0x8000));  // absent
  EXPECT_FALSE(c.probe(0x0));
}

TEST(Cache, WarmInsertNoStatsNoVictimEscape) {
  SetAssocCache c(tiny_cache());
  for (std::uint64_t t = 1; t <= 5; ++t) c.warm_insert(line_in_set(0, t), true);
  EXPECT_EQ(c.stats().misses, 0u);
  EXPECT_EQ(c.stats().writebacks, 0u);
  // The two most recent survive.
  EXPECT_TRUE(c.probe(line_in_set(0, 5)));
  EXPECT_TRUE(c.probe(line_in_set(0, 4)));
  EXPECT_FALSE(c.probe(line_in_set(0, 1)));
}

TEST(Cache, ResetStatsKeepsContents) {
  SetAssocCache c(tiny_cache());
  c.access(0x0, false);
  c.reset_stats();
  EXPECT_EQ(c.stats().misses, 0u);
  EXPECT_TRUE(c.probe(0x0));
}

TEST(Cache, Table1Geometry) {
  const HierarchyConfig h;
  EXPECT_EQ(CacheConfig(h.l1d).sets(), 512u);
  EXPECT_EQ(CacheConfig(h.l2).sets(), 16384u);
}

// ---------------------------------------------------------------- MSHR ----

TEST(Mshr, AllocateFindRelease) {
  MshrFile m(4);
  EXPECT_EQ(m.capacity(), 4u);
  MshrEntry* e = m.allocate(0x1000, 2);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->requester, 2u);
  EXPECT_EQ(m.find(0x1000), e);
  EXPECT_EQ(m.find(0x2000), nullptr);
  std::vector<std::uint64_t> waiters;
  EXPECT_TRUE(m.release(0x1000, waiters));
  EXPECT_EQ(m.in_use(), 0u);
  EXPECT_FALSE(m.release(0x1000, waiters));
}

TEST(Mshr, RejectsDuplicateAndFull) {
  MshrFile m(2);
  ASSERT_NE(m.allocate(0x40, 0), nullptr);
  EXPECT_EQ(m.allocate(0x40, 0), nullptr);  // duplicate
  ASSERT_NE(m.allocate(0x80, 0), nullptr);
  EXPECT_TRUE(m.full());
  EXPECT_EQ(m.allocate(0xc0, 0), nullptr);
}

TEST(Mshr, ReleaseHandsBackWaiters) {
  MshrFile m(2);
  MshrEntry* e = m.allocate(0x40, 1);
  e->waiters.push_back(11);
  e->waiters.push_back(22);
  std::vector<std::uint64_t> waiters{7};
  ASSERT_TRUE(m.release(0x40, waiters));
  EXPECT_EQ(waiters, (std::vector<std::uint64_t>{7, 11, 22}));
}

TEST(Mshr, UndispatchedIteration) {
  MshrFile m(4);
  m.allocate(0x40, 0);
  MshrEntry* e = m.allocate(0x80, 0);
  e->dispatched = true;
  int seen = 0;
  m.for_each_undispatched([&](MshrEntry& u) {
    ++seen;
    EXPECT_EQ(u.line_addr, 0x40u);
  });
  EXPECT_EQ(seen, 1);
}

// ---------------------------------------------------------- prefetcher ----

TEST(Prefetcher, DisabledEmitsNothing) {
  StreamPrefetcher pf(PrefetchConfig{.enabled = false}, 1);
  EXPECT_TRUE(pf.train(0, 0x0).empty());
  EXPECT_TRUE(pf.train(0, 0x40).empty());
}

TEST(Prefetcher, DetectsSequentialStream) {
  StreamPrefetcher pf(PrefetchConfig{.enabled = true, .degree = 2}, 1);
  EXPECT_TRUE(pf.train(0, 0x1000).empty());  // allocation miss
  const auto targets = pf.train(0, 0x1040);  // extends the stream
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0], 0x1080u);
  EXPECT_EQ(targets[1], 0x10c0u);
  EXPECT_EQ(pf.triggers(), 1u);
}

TEST(Prefetcher, RandomMissesNeverTrigger) {
  StreamPrefetcher pf(PrefetchConfig{.enabled = true}, 1);
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(pf.train(0, rng.below(1u << 24) * 64).empty());
  }
  EXPECT_EQ(pf.triggers(), 0u);
}

TEST(Prefetcher, TracksInterleavedStreamsPerCore) {
  StreamPrefetcher pf(PrefetchConfig{.enabled = true, .degree = 1}, 2);
  pf.train(0, 0x1000);
  pf.train(1, 0x8000);
  // Core 1's stream must not be confused with core 0's.
  EXPECT_TRUE(pf.train(1, 0x1040).empty());
  EXPECT_FALSE(pf.train(0, 0x1040).empty());
  EXPECT_FALSE(pf.train(1, 0x8040).empty());
}

TEST(Prefetcher, MultipleStreamsPerCore) {
  StreamPrefetcher pf(PrefetchConfig{.enabled = true, .degree = 1, .table_entries = 4}, 1);
  pf.train(0, 0x1000);
  pf.train(0, 0x20000);
  EXPECT_FALSE(pf.train(0, 0x1040).empty());
  EXPECT_FALSE(pf.train(0, 0x20040).empty());
}

TEST(Prefetcher, ResetForgetsStreams) {
  StreamPrefetcher pf(PrefetchConfig{.enabled = true, .degree = 1}, 1);
  pf.train(0, 0x1000);
  pf.reset();
  EXPECT_TRUE(pf.train(0, 0x1040).empty());  // stream forgotten
}

// ----------------------------------------------------------- hierarchy ----

struct Stack {
  dram::DramSystem dram{dram::Timing{}, dram::Organization{}, dram::Interleave::kHybrid};
  sched::HitFirstReadFirstScheduler sched;
  mc::MemoryController mcu;
  CacheHierarchy hier;
  std::vector<std::pair<std::uint64_t, CpuCycle>> fills;
  Tick now = 0;

  explicit Stack(HierarchyConfig cfg = {}, std::uint32_t cores = 2)
      : mcu(dram, sched, mc::ControllerConfig{}, cores, 1), hier(cfg, cores, mcu) {
    hier.set_fill_callback([this](std::uint64_t token, CpuCycle done) {
      fills.emplace_back(token, done);
    });
  }
  void drain(Tick limit = 50'000) {
    while ((!mcu.idle() || !hier.idle()) && limit--) {
      hier.tick(now);
      mcu.tick(now);
      ++now;
    }
    ASSERT_TRUE(mcu.idle() && hier.idle());
  }
};

TEST(Hierarchy, L1HitHasL1Latency) {
  Stack s;
  s.hier.load(0, 0x1000, 0, 1);  // install (goes to DRAM)
  s.drain();
  const AccessReply r = s.hier.load(0, 0x1000, 100, 2);
  EXPECT_EQ(r.outcome, AccessOutcome::kHitL1);
  EXPECT_EQ(r.done_cpu, 100u + s.hier.l1d(0).config().hit_latency_cpu);
}

TEST(Hierarchy, L2HitAfterOtherCoreFetched) {
  Stack s;
  s.hier.load(0, 0x2000, 0, 1);
  s.drain();
  // Core 1 misses its own L1 but hits shared L2.
  const AccessReply r = s.hier.load(1, 0x2000, 50, 2);
  EXPECT_EQ(r.outcome, AccessOutcome::kHitL2);
  EXPECT_EQ(r.done_cpu, 50u + s.hier.l2().config().hit_latency_cpu);
}

TEST(Hierarchy, MissFillsAndWakesWaiter) {
  Stack s;
  const AccessReply r = s.hier.load(0, 0x3000, 0, 42);
  EXPECT_EQ(r.outcome, AccessOutcome::kMiss);
  EXPECT_EQ(s.hier.fills_in_flight(), 1u);
  s.drain();
  ASSERT_EQ(s.fills.size(), 1u);
  EXPECT_EQ(s.fills[0].first, 42u);
  EXPECT_GT(s.fills[0].second, 0u);
}

TEST(Hierarchy, SecondaryMissMerges) {
  Stack s;
  EXPECT_EQ(s.hier.load(0, 0x4000, 0, 1).outcome, AccessOutcome::kMiss);
  EXPECT_EQ(s.hier.load(1, 0x4010, 0, 2).outcome, AccessOutcome::kMiss);  // same line
  EXPECT_EQ(s.hier.fills_in_flight(), 1u);
  EXPECT_EQ(s.hier.l2_mshr().merges(), 1u);
  s.drain();
  ASSERT_EQ(s.fills.size(), 2u);  // both waiters woken by one fill
}

TEST(Hierarchy, StoreMissWriteAllocatesWithoutWaiter) {
  Stack s;
  EXPECT_TRUE(s.hier.store(0, 0x5000));
  EXPECT_EQ(s.hier.fills_in_flight(), 1u);
  s.drain();
  EXPECT_TRUE(s.fills.empty());
  // The line is now present and dirty in L1.
  EXPECT_EQ(s.hier.load(0, 0x5000, 0, 9).outcome, AccessOutcome::kHitL1);
}

TEST(Hierarchy, BackPressureWhenL2MshrFull) {
  HierarchyConfig cfg;
  cfg.l2_mshr_entries = 2;
  Stack s(cfg);
  EXPECT_EQ(s.hier.load(0, 64 * 100, 0, 1).outcome, AccessOutcome::kMiss);
  EXPECT_EQ(s.hier.load(0, 64 * 200, 0, 2).outcome, AccessOutcome::kMiss);
  EXPECT_EQ(s.hier.load(0, 64 * 300, 0, 3).outcome, AccessOutcome::kRetry);
  EXPECT_FALSE(s.hier.store(0, 64 * 400));
  s.drain();
  EXPECT_EQ(s.fills.size(), 2u);
}

TEST(Hierarchy, DirtyL1VictimFlowsToL2ThenDram) {
  // Tiny L1 so victims happen fast; default L2.
  HierarchyConfig cfg;
  cfg.l1d = CacheConfig{.size_bytes = 128, .ways = 1, .line_bytes = 64,
                        .hit_latency_cpu = 3, .name = "L1D"};
  Stack s(cfg, 1);
  // Dirty a line, then evict it from L1 by touching its set conflict.
  EXPECT_TRUE(s.hier.store(0, 0x0));         // set 0, dirty
  s.hier.load(0, 0x80, 0, 1);                // set 0 conflict -> victim 0x0 to L2
  s.drain();
  // L2 now holds 0x0 dirty; storm the L2 set to force a DRAM writeback.
  // (simpler: verify L2 has it and a later L2 eviction produces a write)
  EXPECT_TRUE(s.hier.l2().probe(0x0));
}

TEST(Hierarchy, WritebackQueueDrainsToController) {
  Stack s;
  // Manufacture a dirty L2 line via warm() and evict it.
  std::vector<WarmSpec> specs(2);
  specs[0].footprint_base = 0;
  specs[0].footprint_bytes = 64ull << 20;
  specs[0].dirty_share = 1.0;  // everything dirty
  s.hier.warm(specs, 7);
  // Touch fresh lines until some dirty victim is evicted from L2.
  std::uint64_t token = 100;
  Addr a = 256ull << 20;
  while (s.mcu.stats().writes_served == 0 && token < 100 + 40'000) {
    if (s.hier.load(0, a, 0, token).outcome != AccessOutcome::kRetry) a += 64;
    ++token;
    s.hier.tick(s.now);
    s.mcu.tick(s.now);
    ++s.now;
  }
  EXPECT_GT(s.mcu.stats().writes_served, 0u);
}

TEST(Hierarchy, WarmFillsCaches) {
  Stack s;
  std::vector<WarmSpec> specs(2);
  specs[0].footprint_base = 0;
  specs[0].footprint_bytes = 64ull << 20;
  specs[0].dirty_share = 0.3;
  specs[0].hot_base = 64ull << 20;
  specs[0].hot_bytes = 32 * 1024;
  specs[0].code_base = (64ull << 20) + 32 * 1024;
  specs[0].code_bytes = 16 * 1024;
  s.hier.warm(specs, 3);
  // Hot and code lines hit L1 immediately.
  EXPECT_EQ(s.hier.load(0, specs[0].hot_base, 0, 1).outcome, AccessOutcome::kHitL1);
  EXPECT_EQ(s.hier.ifetch(0, specs[0].code_base, 0, 2).outcome, AccessOutcome::kHitL1);
  // The L2 holds a uniform sample of the 64 MB footprint: with a 4 MB L2
  // roughly 1/16 of probed footprint lines should be resident.
  std::uint64_t present = 0;
  for (int i = 0; i < 1000; ++i) {
    if (s.hier.l2().probe(static_cast<Addr>(i) * 64 * 1024)) ++present;
  }
  EXPECT_GT(present, 25u);
  EXPECT_LT(present, 160u);
}

TEST(Hierarchy, PrefetcherCoversSequentialStream) {
  HierarchyConfig cfg;
  cfg.prefetch = PrefetchConfig{.enabled = true, .degree = 2};
  Stack s(cfg, 1);
  // Walk a sequential stream of demand loads; after the detector locks on,
  // later lines should already be in flight (merges) or resident.
  std::uint64_t token = 1;
  for (int i = 0; i < 32; ++i) {
    s.hier.load(0, 0x100000 + static_cast<Addr>(i) * 64, 0, token++);
    // Let the memory system advance a little between touches.
    for (int t = 0; t < 40; ++t) {
      s.hier.tick(s.now);
      s.mcu.tick(s.now);
      ++s.now;
    }
  }
  s.drain();
  EXPECT_GT(s.hier.prefetches_issued(), 8u);
  EXPECT_GT(s.hier.prefetches_useful(), 4u);
  EXPECT_GT(s.mcu.stats().prefetch_reads, 0u);
}

TEST(Hierarchy, PrefetchOffByDefault) {
  Stack s({}, 1);
  std::uint64_t token = 1;
  for (int i = 0; i < 16; ++i) {
    s.hier.load(0, 0x100000 + static_cast<Addr>(i) * 64, 0, token++);
  }
  s.drain();
  EXPECT_EQ(s.hier.prefetches_issued(), 0u);
  EXPECT_EQ(s.mcu.stats().prefetch_reads, 0u);
}

TEST(Hierarchy, DemandMergeOntoPrefetchWakesWaiter) {
  HierarchyConfig cfg;
  cfg.prefetch = PrefetchConfig{.enabled = true, .degree = 1};
  Stack s(cfg, 1);
  // Two sequential misses train the prefetcher; the prefetch for line 2 is
  // in flight when the demand load for it arrives.
  s.hier.load(0, 0x200000, 0, 1);
  s.hier.load(0, 0x200040, 0, 2);
  ASSERT_GT(s.hier.prefetches_issued(), 0u);
  const AccessReply r = s.hier.load(0, 0x200080, 0, 3);
  EXPECT_EQ(r.outcome, AccessOutcome::kMiss);  // merged onto the prefetch
  s.drain();
  // All three demand waiters woken.
  ASSERT_EQ(s.fills.size(), 3u);
  EXPECT_GT(s.hier.prefetches_useful(), 0u);
}

TEST(Hierarchy, IfetchMissWakesFrontendWaiter) {
  Stack s;
  const std::uint64_t token = (1ull << 63) | 77;
  EXPECT_EQ(s.hier.ifetch(0, 0x7000, 0, token).outcome, AccessOutcome::kMiss);
  s.drain();
  ASSERT_EQ(s.fills.size(), 1u);
  EXPECT_EQ(s.fills[0].first, token);
}

}  // namespace
}  // namespace memsched::cache
