// Property tests for the epoch-aware scheduler zoo (BLISS / TCM / CADS)
// plus the factory's name contract (case-insensitive canonical names,
// did-you-mean suggestions) and the scheme-name round trip through the JSON
// report. Registered under the `scheduler-zoo` ctest label.
//
// The policy-level tests drive the schedulers with hand-built QueueSnapshots
// — exactly the values the controller's interval machinery would present —
// so each paper-mechanism claim (blacklist-on-streak, disjoint cluster
// cover, monotonic hog deprioritisation) is pinned in isolation from queue
// dynamics.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/scheduler_factory.hpp"
#include "sched/bliss.hpp"
#include "sched/cads.hpp"
#include "sched/tcm.hpp"
#include "sim/experiment.hpp"
#include "sim/json_report.hpp"
#include "sim/workloads.hpp"
#include "util/json.hpp"

namespace memsched {
namespace {

/// Owns the per-core arrays a QueueSnapshot points into.
struct SnapFixture {
  explicit SnapFixture(std::uint32_t cores)
      : pending_reads(cores, 1),
        pending_writes(cores, 0),
        interval_served(cores, 0),
        interval_arrivals(cores, 0) {
    snap.core_count = cores;
    snap.pending_reads = pending_reads.data();
    snap.pending_writes = pending_writes.data();
    snap.interval_served = interval_served.data();
    snap.interval_arrivals = interval_arrivals.data();
  }

  std::vector<std::uint32_t> pending_reads;
  std::vector<std::uint32_t> pending_writes;
  std::vector<std::uint32_t> interval_served;
  std::vector<std::uint32_t> interval_arrivals;
  sched::QueueSnapshot snap;
};

// ---------------------------------------------------------------------------
// BLISS: a core streaking >= threshold is deprioritised until the next
// clearing interval wipes the blacklist.
// ---------------------------------------------------------------------------

TEST(BlissZoo, StreakAtThresholdBlacklistsUntilIntervalClear) {
  sched::BlissScheduler s(4);
  SnapFixture f(4);

  // Below threshold: nobody blacklisted, all cores rank equal.
  f.snap.streak_core = 2;
  f.snap.streak_len = s.streak_threshold() - 1;
  s.prepare(f.snap);
  EXPECT_FALSE(s.blacklisted(2));
  EXPECT_EQ(s.core_priority(2), s.core_priority(0));

  // At threshold: the streaker drops strictly below every other core.
  f.snap.streak_len = s.streak_threshold();
  s.prepare(f.snap);
  EXPECT_TRUE(s.blacklisted(2));
  EXPECT_LT(s.core_priority(2), s.core_priority(0));
  EXPECT_LT(s.core_priority(2), s.core_priority(1));
  EXPECT_LT(s.core_priority(2), s.core_priority(3));
  EXPECT_EQ(s.blacklist_events(), 1u);

  // prepare() is idempotent: the controller may snapshot many times per
  // round (and the cycle engine every tick) without double-counting.
  s.prepare(f.snap);
  s.prepare(f.snap);
  EXPECT_EQ(s.blacklist_events(), 1u);

  // The clearing interval forgives: after on_epoch the core ranks equal
  // again and can be re-blacklisted by a fresh streak.
  s.on_epoch(s.epoch_ticks(), f.snap);
  EXPECT_FALSE(s.blacklisted(2));
  EXPECT_EQ(s.core_priority(2), s.core_priority(0));
  s.prepare(f.snap);
  EXPECT_TRUE(s.blacklisted(2));
  EXPECT_EQ(s.blacklist_events(), 2u);
}

TEST(BlissZoo, BlacklistDominatesRowHits) {
  // The BLISS priority order is non-blacklisted > row-hit > age: core rank
  // must sit above the hit-first key.
  sched::BlissScheduler s(2);
  EXPECT_FALSE(s.hit_first_above_core());
  EXPECT_GT(s.epoch_ticks(), Tick{0});
}

// ---------------------------------------------------------------------------
// TCM: the quantum partition is a disjoint cover of all cores, light cores
// outrank heavy ones, and the bandwidth ranking rotates across quanta.
// ---------------------------------------------------------------------------

TEST(TcmZoo, ClusterPartitionIsDisjointCover) {
  constexpr std::uint32_t kCores = 6;
  sched::TcmScheduler s(kCores);
  SnapFixture f(kCores);
  // Skewed bandwidth use: cores 0-1 light, 2-5 increasingly heavy.
  const std::uint32_t served[kCores] = {1, 2, 40, 55, 70, 90};
  for (std::uint32_t c = 0; c < kCores; ++c) {
    f.interval_served[c] = served[c];
    f.interval_arrivals[c] = served[c] + 1;
  }
  s.on_epoch(s.epoch_ticks(), f.snap);

  std::set<CoreId> seen;
  for (const CoreId c : s.latency_cluster()) EXPECT_TRUE(seen.insert(c).second);
  for (const CoreId c : s.bandwidth_cluster()) EXPECT_TRUE(seen.insert(c).second);
  EXPECT_EQ(seen.size(), kCores);  // disjoint AND covering
  for (CoreId c = 0; c < kCores; ++c) EXPECT_EQ(seen.count(c), 1u);

  // The lightest users land in the latency cluster and outrank every
  // bandwidth-cluster core.
  const auto& lat = s.latency_cluster();
  EXPECT_NE(std::find(lat.begin(), lat.end(), CoreId{0}), lat.end());
  for (const CoreId l : s.latency_cluster())
    for (const CoreId b : s.bandwidth_cluster())
      EXPECT_GT(s.core_priority(l), s.core_priority(b));
}

TEST(TcmZoo, IdleQuantumPutsEveryCoreInLatencyCluster) {
  constexpr std::uint32_t kCores = 4;
  sched::TcmScheduler s(kCores);
  SnapFixture f(kCores);  // interval_served all zero
  s.on_epoch(s.epoch_ticks(), f.snap);
  EXPECT_EQ(s.latency_cluster().size(), kCores);
  EXPECT_TRUE(s.bandwidth_cluster().empty());
}

TEST(TcmZoo, BandwidthRanksRotateAcrossQuanta) {
  constexpr std::uint32_t kCores = 4;
  sched::TcmScheduler s(kCores);
  SnapFixture f(kCores);
  // Everyone heavy and equal: the whole population exceeds ClusterThresh
  // except the first greedy pick, so most cores are bandwidth-clustered and
  // the rotation (TCM's shuffle stand-in) must change relative ranks.
  for (std::uint32_t c = 0; c < kCores; ++c) f.interval_served[c] = 50;

  s.on_epoch(s.epoch_ticks(), f.snap);
  ASSERT_GE(s.bandwidth_cluster().size(), 2u);
  std::vector<double> first;
  for (const CoreId c : s.bandwidth_cluster()) first.push_back(s.core_priority(c));

  for (std::uint32_t c = 0; c < kCores; ++c) f.interval_served[c] = 50;
  s.on_epoch(2 * s.epoch_ticks(), f.snap);
  EXPECT_EQ(s.quanta(), 2u);
  std::vector<double> second;
  for (const CoreId c : s.bandwidth_cluster()) second.push_back(s.core_priority(c));
  ASSERT_EQ(first.size(), second.size());
  EXPECT_NE(first, second);  // the rotation moved somebody
}

// ---------------------------------------------------------------------------
// CADS: a synthetic hog's priority responds monotonically — every interval
// it keeps hogging pushes it strictly further below the quiet cores.
// ---------------------------------------------------------------------------

TEST(CadsZoo, HogPriorityDecreasesMonotonically) {
  constexpr std::uint32_t kCores = 4;
  constexpr CoreId kHog = 1;
  sched::CadsScheduler s(kCores);
  SnapFixture f(kCores);

  double prev = s.core_priority(kHog);
  for (int interval = 1; interval <= 6; ++interval) {
    for (std::uint32_t c = 0; c < kCores; ++c)
      f.interval_served[c] = (c == kHog) ? 120 : 3;
    s.on_epoch(static_cast<Tick>(interval) * s.epoch_ticks(), f.snap);
    const double cur = s.core_priority(kHog);
    EXPECT_LT(cur, prev) << "interval " << interval;
    prev = cur;
    // The hog always ranks below every light core.
    for (CoreId c = 0; c < kCores; ++c) {
      if (c == kHog) continue;
      EXPECT_LT(s.core_priority(kHog), s.core_priority(c));
    }
  }

  // And it recovers once it goes quiet: score decays, priority climbs back.
  for (std::uint32_t c = 0; c < kCores; ++c) f.interval_served[c] = 0;
  s.on_epoch(7 * s.epoch_ticks(), f.snap);
  EXPECT_GT(s.core_priority(kHog), prev);
}

// ---------------------------------------------------------------------------
// Factory name contract: canonical UPPERCASE names, case-insensitive input,
// did-you-mean suggestions for near-misses.
// ---------------------------------------------------------------------------

TEST(FactoryZoo, CaseInsensitiveCanonicalNames) {
  core::SchedulerArgs args;
  args.core_count = 2;
  EXPECT_EQ(core::make_scheduler("bliss", args)->name(), "BLISS");
  EXPECT_EQ(core::make_scheduler("Bliss", args)->name(), "BLISS");
  EXPECT_EQ(core::make_scheduler("tcm", args)->name(), "TCM");
  EXPECT_EQ(core::make_scheduler("cads", args)->name(), "CADS");
  EXPECT_EQ(core::make_scheduler("hf-rf", args)->name(), "HF-RF");
}

TEST(FactoryZoo, DidYouMeanSuggestsNearestScheme) {
  core::SchedulerArgs args;
  args.core_count = 2;
  try {
    core::make_scheduler("blis", args);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("blis"), std::string::npos) << msg;   // echoes the input
    EXPECT_NE(msg.find("did you mean"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'BLISS'"), std::string::npos) << msg;
  }
  try {
    core::make_scheduler("CADZ", args);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'CADS'"), std::string::npos) << e.what();
  }
  // Nothing plausibly close: no suggestion appended.
  try {
    core::make_scheduler("COMPLETELY-WRONG", args);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()).find("did you mean"), std::string::npos)
        << e.what();
  }
}

TEST(FactoryZoo, KnownSchedulersListsTheZoo) {
  const auto known = core::known_schedulers();
  for (const char* name : {"BLISS", "TCM", "CADS"})
    EXPECT_NE(std::find(known.begin(), known.end(), name), known.end()) << name;
}

// ---------------------------------------------------------------------------
// Golden-report contract: the canonical scheme name survives the trip
// lowercase CLI input -> Experiment -> JSON report -> parse.
// ---------------------------------------------------------------------------

TEST(ReportZoo, SchemeNameRoundTripsThroughJsonReport) {
  sim::ExperimentConfig cfg;
  cfg.profile_insts = 60'000;
  cfg.eval_insts = 30'000;
  cfg.warmup_insts = 5'000;
  cfg.eval_repeats = 1;
  sim::Experiment exp(cfg);
  const sim::Workload w = sim::workload_by_name("2MIX-1");

  for (const char* input : {"bliss", "tcm", "cads"}) {
    const sim::WorkloadRun run = exp.run(w, input);
    std::string canon = input;
    for (char& c : canon) c = static_cast<char>(std::toupper(c));
    EXPECT_EQ(run.scheme, canon);

    const util::Json parsed = util::Json::parse(sim::to_json(run).dump());
    EXPECT_EQ(parsed.at("scheme").as_string(), canon);
    EXPECT_EQ(parsed.at("workload").as_string(), w.name);
  }
}

}  // namespace
}  // namespace memsched
