// Differential validation of the sampled engine (sim/system.cpp run_sampled).
//
// Engine::kSampled trades exactness for speed: it executes K short detailed
// measurement intervals separated by functional fast-forward and reports
// per-metric means with 95% confidence intervals. Unlike kSkip (byte-identical
// to kCycle by contract), sampled results carry statistical error — so these
// tests validate them *differentially* against the exact engine:
//   - every factory scheduler on a reference workload: the read-latency and
//     fairness-proxy estimates must cover the exact value within their stated
//     CI (plus a small bias allowance — the CI captures interval variance,
//     not systematic warmup bias);
//   - the sampled engine must do substantially less detailed work than the
//     exact engine on the same target (the wall-clock speedup table lives in
//     EXPERIMENTS.md; here we assert the visited-tick proxy);
//   - sampled runs are deterministic: same seed, byte-identical JSON;
//   - misuse is rejected: fault injection, checkpointing, the open-loop
//     driver and degenerate interval counts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/scheduler_factory.hpp"
#include "sim/json_report.hpp"
#include "sim/open_loop.hpp"
#include "sim/system.hpp"
#include "sim/workloads.hpp"
#include "trace/app_profile.hpp"

namespace memsched {
namespace {

constexpr std::uint64_t kTarget = 120'000;
constexpr std::uint64_t kWarmup = 10'000;

sched::SchedulerPtr make_sched(const std::string& name, std::uint32_t cores) {
  core::SchedulerArgs args;
  args.core_count = cores;
  std::vector<double> me, ipc;
  for (std::uint32_t c = 0; c < cores; ++c) {
    me.push_back(9.0 / (1.0 + static_cast<double>(c)));
    ipc.push_back(2.0 / (1.0 + 0.2 * static_cast<double>(c)));
  }
  args.me = core::MeTable(me);
  args.ipc_single = ipc;
  return core::make_scheduler(name, args);
}

sim::SystemConfig sampled_config(std::uint32_t cores) {
  sim::SystemConfig cfg;
  cfg.cores = cores;
  cfg.engine = sim::Engine::kSampled;
  cfg.sampling.intervals = 8;
  cfg.sampling.interval_insts = 2'500;
  cfg.sampling.warmup_insts = 1'500;
  return cfg;
}

sim::RunResult run_engine(const sim::Workload& w, const std::string& scheme,
                          sim::Engine engine, std::uint64_t seed = 42) {
  sim::SystemConfig cfg =
      engine == sim::Engine::kSampled ? sampled_config(w.cores()) : sim::SystemConfig{};
  cfg.cores = w.cores();
  cfg.engine = engine;
  const sched::SchedulerPtr s = make_sched(scheme, cfg.cores);
  sim::MultiCoreSystem sys(cfg, w.apps(), *s, seed);
  return sys.run(kTarget, kWarmup, Tick{1} << 32);
}

/// |estimate - exact| within the stated 95% CI plus a bias allowance: the CI
/// covers interval-to-interval variance; short detailed warmups add a small
/// systematic component the differential bound must absorb.
void expect_covered(const char* metric, const sim::MetricEstimate& est, double exact,
                    double rel_bias, const std::string& ctx) {
  const double bound = est.ci95 + rel_bias * std::abs(exact);
  EXPECT_LE(std::abs(est.mean - exact), bound)
      << ctx << ": " << metric << " estimate " << est.mean << " +/- " << est.ci95
      << " vs exact " << exact;
}

// ---------------------------------------------------------------------------
// Every factory scheduler on a fig-2 reference workload.
// ---------------------------------------------------------------------------

class EverySchemeSampled : public ::testing::TestWithParam<std::string> {};

TEST_P(EverySchemeSampled, EstimatesCoverExactRun) {
  const std::string scheme = GetParam();
  const sim::Workload w = sim::workload_by_name("2MIX-1");
  const sim::RunResult exact = run_engine(w, scheme, sim::Engine::kSkip);
  const sim::RunResult sampled = run_engine(w, scheme, sim::Engine::kSampled);
  const std::string ctx = scheme + "/2MIX-1";

  ASSERT_TRUE(sampled.sampling.enabled);
  ASSERT_EQ(sampled.sampling.intervals_measured, 8u);
  ASSERT_FALSE(sampled.hit_tick_limit);

  // Read latency and the fairness proxy are the acceptance-gated metrics.
  expect_covered("read_latency_cpu", sampled.sampling.read_latency_cpu,
                 exact.avg_read_latency_cpu, 0.15, ctx);
  double exact_min = 0.0, exact_max = 0.0;
  for (std::size_t c = 0; c < exact.cores.size(); ++c) {
    const double ipc = exact.cores[c].ipc;
    exact_min = c == 0 ? ipc : std::min(exact_min, ipc);
    exact_max = c == 0 ? ipc : std::max(exact_max, ipc);
  }
  expect_covered("ipc_ratio", sampled.sampling.ipc_ratio,
                 exact_min > 0.0 ? exact_max / exact_min : 1.0, 0.20, ctx);

  // Secondary metrics: looser relative bounds, still anchored to the CI.
  expect_covered("total_ipc", sampled.sampling.total_ipc, exact.total_ipc(), 0.15, ctx);
  expect_covered("row_hit_rate", sampled.sampling.row_hit_rate, exact.row_hit_rate,
                 0.20, ctx);

  // Per-core IPC estimates (what the experiment layer's unfairness consumes).
  ASSERT_EQ(sampled.sampling.core_ipc.size(), exact.cores.size());
  for (std::size_t c = 0; c < exact.cores.size(); ++c) {
    expect_covered("core_ipc", sampled.sampling.core_ipc[c], exact.cores[c].ipc, 0.20,
                   ctx + " core " + std::to_string(c));
  }

  // The estimates are real numbers with non-degenerate spread information.
  EXPECT_TRUE(std::isfinite(sampled.sampling.read_latency_cpu.ci95));
  EXPECT_GE(sampled.sampling.read_latency_cpu.ci95, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Zoo, EverySchemeSampled,
                         ::testing::ValuesIn(core::known_schedulers()),
                         [](const auto& pi) {
                           std::string n = pi.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// ---------------------------------------------------------------------------
// Work reduction: the point of sampling. Wall-clock speedup is measured by
// bench/sim_throughput (EXPERIMENTS.md table); the deterministic proxy here
// is simulated bus ticks — the sampled engine details only K*(warm+meas)
// instructions per core out of the full target.
// ---------------------------------------------------------------------------

TEST(SampledSpeed, DetailedWorkShrinksSeveralFold) {
  const sim::Workload w = sim::workload_by_name("4MEM-1");
  const sim::RunResult exact = run_engine(w, "HF-RF", sim::Engine::kSkip);
  const sim::RunResult sampled = run_engine(w, "HF-RF", sim::Engine::kSampled);
  ASSERT_FALSE(sampled.hit_tick_limit);
  // 8 * (1500 + 2500) = 32k detailed of 120k target => >= 3x fewer simulated
  // ticks even with drain overhead counted against the sampler.
  EXPECT_LT(sampled.ticks * 3, exact.ticks)
      << "sampled detailed ticks " << sampled.ticks << " vs exact " << exact.ticks;
  EXPECT_GT(sampled.sampling.skipped_insts_per_core,
            sampled.sampling.measured_insts_per_core);
}

// ---------------------------------------------------------------------------
// Determinism and report stability.
// ---------------------------------------------------------------------------

TEST(SampledDeterminism, SameSeedByteIdenticalJson) {
  const sim::Workload w = sim::workload_by_name("2MEM-1");
  const std::string a =
      sim::to_json(run_engine(w, "PAR-BS", sim::Engine::kSampled)).dump();
  const std::string b =
      sim::to_json(run_engine(w, "PAR-BS", sim::Engine::kSampled)).dump();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"sampling\""), std::string::npos);
}

TEST(SampledDeterminism, ExactEngineReportsCarryNoSamplingSection) {
  const sim::Workload w = sim::workload_by_name("2MEM-1");
  const std::string j = sim::to_json(run_engine(w, "FCFS", sim::Engine::kSkip)).dump();
  EXPECT_EQ(j.find("\"sampling\""), std::string::npos);
}

TEST(SampledFingerprint, OnlySampledConfigsMentionSampling) {
  sim::SystemConfig exact;
  EXPECT_EQ(exact.fingerprint().find(";sampling="), std::string::npos);
  sim::SystemConfig s = sampled_config(2);
  EXPECT_NE(s.fingerprint().find(";sampling="), std::string::npos);
}

// ---------------------------------------------------------------------------
// Misuse rejection.
// ---------------------------------------------------------------------------

TEST(SampledRejects, FaultInjection) {
  sim::SystemConfig cfg = sampled_config(2);
  cfg.fault.enabled = true;
  EXPECT_NE(cfg.validate().find("fault"), std::string::npos);
}

TEST(SampledRejects, DegenerateIntervalCount) {
  sim::SystemConfig cfg = sampled_config(2);
  cfg.sampling.intervals = 1;  // no variance -> no CI
  EXPECT_FALSE(cfg.validate().empty());
  cfg.sampling.intervals = 4;
  cfg.sampling.interval_insts = 0;
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(SampledRejects, Checkpointing) {
  const sim::Workload w = sim::workload_by_name("2MEM-1");
  sim::SystemConfig cfg = sampled_config(w.cores());
  const sched::SchedulerPtr s = make_sched("FCFS", cfg.cores);
  sim::MultiCoreSystem sys(cfg, w.apps(), *s, 42);
  ckpt::CheckpointPolicy policy;
  policy.path = "/tmp/memsched_sampled_reject.ckpt";
  policy.interval_ticks = 1'000;
  EXPECT_THROW(sys.run(10'000, 1'000, Tick{1} << 32, policy), std::invalid_argument);
}

TEST(SampledRejects, OpenLoopDriver) {
  sim::OpenLoopConfig cfg;
  cfg.engine = sim::Engine::kSampled;
  cfg.inject_per_tick = 0.05;
  const sched::SchedulerPtr s = make_sched("FCFS", cfg.cores);
  EXPECT_THROW(sim::run_open_loop(cfg, *s), std::invalid_argument);
}

}  // namespace
}  // namespace memsched
