// Unit tests for src/sim: metrics, workload catalog, system configuration,
// the run protocol, and the parallel runner.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "sched/policies.hpp"
#include "sim/experiment.hpp"
#include "sim/json_report.hpp"
#include "sim/metrics.hpp"
#include "sim/open_loop.hpp"
#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "sim/workloads.hpp"

namespace memsched::sim {
namespace {

// ------------------------------------------------------------- metrics ----

TEST(Metrics, SmtSpeedupSumsNormalizedIpc) {
  EXPECT_DOUBLE_EQ(smt_speedup({1.0, 2.0}, {2.0, 2.0}), 1.5);
  EXPECT_DOUBLE_EQ(smt_speedup({1.0}, {1.0}), 1.0);
}

TEST(Metrics, SlowdownsInvertRatios) {
  const auto s = slowdowns({1.0, 0.5}, {2.0, 2.0});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[1], 4.0);
}

TEST(Metrics, UnfairnessIsMaxOverMinSlowdown) {
  EXPECT_DOUBLE_EQ(unfairness({1.0, 0.5}, {2.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(unfairness({1.0, 1.0}, {2.0, 2.0}), 1.0);  // perfectly fair
}

// ----------------------------------------------------------- workloads ----

TEST(Workloads, Table3Complete) {
  const auto& all = table3_workloads();
  EXPECT_EQ(all.size(), 36u);
  int n2 = 0, n4 = 0, n8 = 0, mem = 0;
  for (const auto& w : all) {
    EXPECT_EQ(w.codes.size(), w.cores());
    n2 += w.cores() == 2;
    n4 += w.cores() == 4;
    n8 += w.cores() == 8;
    mem += w.memory_intensive;
  }
  EXPECT_EQ(n2, 12);
  EXPECT_EQ(n4, 12);
  EXPECT_EQ(n8, 12);
  EXPECT_EQ(mem, 18);
}

TEST(Workloads, MemGroupsContainOnlyMemApps) {
  for (const auto& w : table3_workloads()) {
    if (!w.memory_intensive) continue;
    for (const auto& app : w.apps()) {
      EXPECT_TRUE(app.memory_intensive) << w.name << " contains " << app.name;
    }
  }
}

TEST(Workloads, MixGroupsContainBothClasses) {
  for (const auto& w : table3_workloads()) {
    if (w.memory_intensive) continue;
    bool any_mem = false, any_ilp = false;
    for (const auto& app : w.apps()) {
      (app.memory_intensive ? any_mem : any_ilp) = true;
    }
    EXPECT_TRUE(any_mem) << w.name;
    EXPECT_TRUE(any_ilp) << w.name;
  }
}

TEST(Workloads, PaperSpotChecks) {
  EXPECT_EQ(workload_by_name("2MEM-1").codes, "bc");
  EXPECT_EQ(workload_by_name("4MIX-2").codes, "hzde");
  EXPECT_EQ(workload_by_name("4MEM-5").codes, "qvce");
  EXPECT_EQ(workload_by_name("8MIX-1").codes, "arhzbcde");
}

TEST(Workloads, FilterByCoresAndType) {
  EXPECT_EQ(table3_workloads(4, "MEM").size(), 6u);
  EXPECT_EQ(table3_workloads(8, "MIX").size(), 6u);
  EXPECT_EQ(table3_workloads(2, "ALL").size(), 12u);
}

TEST(Workloads, LookupThrowsOnUnknown) {
  EXPECT_THROW(workload_by_name("9MEM-1"), std::invalid_argument);
}

TEST(Workloads, MakeCustomWorkload) {
  const Workload w = make_workload("mine", "bcde");
  EXPECT_EQ(w.cores(), 4u);
  EXPECT_TRUE(w.memory_intensive);  // all MEM codes
  EXPECT_EQ(w.apps()[1].name, "swim");
  const Workload mix = make_workload("mix", "ab");
  EXPECT_FALSE(mix.memory_intensive);  // gzip is ILP
  EXPECT_THROW(make_workload("bad", "b!"), std::invalid_argument);
  EXPECT_THROW(make_workload("empty", ""), std::invalid_argument);
}

TEST(Workloads, ResolveNameOrCodes) {
  EXPECT_EQ(resolve_workload("4MEM-1").codes, "bcde");
  const Workload w = resolve_workload("codes:kk");
  EXPECT_EQ(w.cores(), 2u);
  EXPECT_EQ(w.apps()[0].name, "mcf");
  EXPECT_THROW(resolve_workload("nope"), std::invalid_argument);
}

// --------------------------------------------------------------- config ---

TEST(SystemConfig, Table1DefaultsValidate) {
  const SystemConfig cfg;
  EXPECT_TRUE(cfg.validate().empty()) << cfg.validate();
  EXPECT_DOUBLE_EQ(cfg.cpu_hz(), 3.2e9);
  EXPECT_DOUBLE_EQ(cfg.bus_hz(), 4e8);
}

TEST(SystemConfig, RejectsRegionOverflow) {
  SystemConfig cfg;
  cfg.cores = 16;  // 16 x 512 MB > 4 GB
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(SystemConfig, RejectsRatioMismatch) {
  SystemConfig cfg;
  cfg.cpu_ratio = 4;  // hierarchy/controller still carry 8
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(SystemConfig, ApplySpeedGradeKeepsConfigConsistent) {
  SystemConfig cfg;
  cfg.apply_speed_grade(dram::SpeedGrade::ddr3_1600());
  EXPECT_TRUE(cfg.validate().empty()) << cfg.validate();
  EXPECT_EQ(cfg.cpu_ratio, 4u);
  EXPECT_EQ(cfg.controller.overhead_ticks, 12u);
  EXPECT_EQ(cfg.timing.tCL, 11u);
  EXPECT_DOUBLE_EQ(cfg.bus_hz(), 8e8);
}

TEST(SystemConfig, FasterGradeRunsFaster) {
  std::vector<trace::AppProfile> app{trace::spec2000_by_name("swim")};
  auto ipc_under = [&](const dram::SpeedGrade& g) {
    SystemConfig cfg;
    cfg.cores = 1;
    cfg.apply_speed_grade(g);
    sched::HitFirstReadFirstScheduler s;
    MultiCoreSystem sys(cfg, app, s, 5);
    return sys.run(40'000, 10'000).cores[0].ipc;
  };
  const double slow = ipc_under(dram::SpeedGrade::ddr2_400());
  const double fast = ipc_under(dram::SpeedGrade::ddr3_1600());
  EXPECT_GT(fast, slow * 1.05);
}

// --------------------------------------------------------------- runner ---

TEST(Runner, VisitsAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(100, 4, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Runner, SingleThreadFallback) {
  int sum = 0;
  parallel_for(10, 1, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(Runner, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(8, 4, [](std::size_t i) {
        if (i == 3) throw std::runtime_error("boom");
      }),
      std::runtime_error);
}

TEST(Runner, ZeroJobsIsNoop) {
  parallel_for(0, 4, [](std::size_t) { FAIL(); });
}

// --------------------------------------------------------- run protocol ---

std::vector<trace::AppProfile> two_apps() {
  return {trace::spec2000_by_name("swim"), trace::spec2000_by_name("gzip")};
}

TEST(System, DeterministicForSeed) {
  SystemConfig cfg;
  cfg.cores = 2;
  sched::HitFirstReadFirstScheduler s1, s2;
  MultiCoreSystem a(cfg, two_apps(), s1, 99);
  MultiCoreSystem b(cfg, two_apps(), s2, 99);
  const RunResult ra = a.run(30'000, 5'000);
  const RunResult rb = b.run(30'000, 5'000);
  EXPECT_EQ(ra.ticks, rb.ticks);
  for (std::uint32_t c = 0; c < 2; ++c) {
    EXPECT_DOUBLE_EQ(ra.cores[c].ipc, rb.cores[c].ipc);
    EXPECT_EQ(ra.cores[c].dram_reads, rb.cores[c].dram_reads);
  }
}

TEST(System, DifferentSeedsDiffer) {
  SystemConfig cfg;
  cfg.cores = 2;
  sched::HitFirstReadFirstScheduler s1, s2;
  MultiCoreSystem a(cfg, two_apps(), s1, 1);
  MultiCoreSystem b(cfg, two_apps(), s2, 2);
  EXPECT_NE(a.run(30'000, 5'000).cores[0].dram_reads,
            b.run(30'000, 5'000).cores[0].dram_reads);
}

TEST(System, EveryCoreCommitsTarget) {
  SystemConfig cfg;
  cfg.cores = 2;
  sched::HitFirstReadFirstScheduler s;
  MultiCoreSystem sys(cfg, two_apps(), s, 7);
  const RunResult r = sys.run(25'000, 5'000);
  EXPECT_FALSE(r.hit_tick_limit);
  for (const auto& c : r.cores) {
    EXPECT_GE(c.committed, 30'000u);  // warmup + target
    EXPECT_GT(c.ipc, 0.0);
    EXPECT_LT(c.ipc, 4.0);
  }
}

TEST(System, TickLimitReported) {
  SystemConfig cfg;
  cfg.cores = 2;
  sched::HitFirstReadFirstScheduler s;
  MultiCoreSystem sys(cfg, two_apps(), s, 7);
  const RunResult r = sys.run(1'000'000'000, 0, /*max_ticks=*/500);
  EXPECT_TRUE(r.hit_tick_limit);
}

TEST(System, BandwidthAccountingConsistent) {
  SystemConfig cfg;
  cfg.cores = 2;
  sched::HitFirstReadFirstScheduler s;
  MultiCoreSystem sys(cfg, two_apps(), s, 13);
  const RunResult r = sys.run(40'000, 5'000);
  std::uint64_t bytes = 0;
  for (const auto& c : r.cores) bytes += (c.dram_reads + c.dram_writes) * 64;
  EXPECT_GT(r.bandwidth_gbs, 0.0);
  EXPECT_LT(r.bandwidth_gbs, cfg.org.peak_bandwidth_gbs());
  EXPECT_GT(bytes, 0u);
}

TEST(System, WarmupSuppressesColdMisses) {
  // With warm_caches + warmup phase, a light app (gzip) must show near-zero
  // DRAM traffic in the measured window; cold-started it shows hundreds of
  // compulsory misses.
  SystemConfig warm_cfg;
  warm_cfg.cores = 1;
  std::vector<trace::AppProfile> app{trace::spec2000_by_name("eon")};
  sched::HitFirstReadFirstScheduler s1;
  MultiCoreSystem warm(warm_cfg, app, s1, 3);
  const RunResult rw = warm.run(50'000, 20'000);

  SystemConfig cold_cfg = warm_cfg;
  cold_cfg.warm_caches = false;
  sched::HitFirstReadFirstScheduler s2;
  MultiCoreSystem cold(cold_cfg, app, s2, 3);
  const RunResult rc = cold.run(50'000, 0);

  EXPECT_LT(rw.cores[0].dram_reads * 10, rc.cores[0].dram_reads + 10);
}

TEST(System, RejectsMismatchedApps) {
  SystemConfig cfg;
  cfg.cores = 2;
  sched::HitFirstReadFirstScheduler s;
  EXPECT_DEATH_IF_SUPPORTED(
      { MultiCoreSystem sys(cfg, {trace::spec2000_by_name("swim")}, s, 1); }, "");
}

// ------------------------------------------------------------ open loop ---

TEST(OpenLoop, LowLoadLatencyNearDeviceMinimum) {
  sim::OpenLoopConfig cfg;
  cfg.inject_per_tick = 0.02;
  cfg.measure_ticks = 20'000;
  sched::HitFirstReadFirstScheduler s;
  const sim::OpenLoopResult r = run_open_loop(cfg, s);
  EXPECT_FALSE(r.saturated());
  // Uncontended close-page read: overhead + tRCD + tCL + burst ~ 18 ticks.
  EXPECT_GT(r.avg_read_latency_ticks, 15.0);
  EXPECT_LT(r.avg_read_latency_ticks, 30.0);
}

TEST(OpenLoop, LatencyGrowsWithLoad) {
  sched::HitFirstReadFirstScheduler s;
  double prev = 0.0;
  for (const double load : {0.05, 0.25, 0.55}) {
    sim::OpenLoopConfig cfg;
    cfg.inject_per_tick = load;
    cfg.measure_ticks = 20'000;
    const sim::OpenLoopResult r = run_open_loop(cfg, s);
    EXPECT_GT(r.avg_read_latency_ticks, prev);
    prev = r.avg_read_latency_ticks;
  }
}

TEST(OpenLoop, OverloadSaturates) {
  sim::OpenLoopConfig cfg;
  cfg.inject_per_tick = 2.0;  // far beyond 2 channels' capacity
  cfg.measure_ticks = 20'000;
  sched::HitFirstReadFirstScheduler s;
  const sim::OpenLoopResult r = run_open_loop(cfg, s);
  EXPECT_TRUE(r.saturated());
  EXPECT_LT(r.accepted_per_tick, 1.2);
}

TEST(OpenLoop, AcceptedNeverExceedsOffered) {
  sched::LeastRequestScheduler s;
  for (const double load : {0.1, 0.6, 1.5}) {
    sim::OpenLoopConfig cfg;
    cfg.inject_per_tick = load;
    cfg.measure_ticks = 10'000;
    const sim::OpenLoopResult r = run_open_loop(cfg, s);
    EXPECT_LE(r.accepted_per_tick, r.offered_per_tick + 1e-9);
    EXPECT_GT(r.accepted_per_tick, 0.0);
  }
}

TEST(OpenLoop, SequentialRunsProduceRowHitsUnderLoad) {
  sim::OpenLoopConfig cfg;
  cfg.inject_per_tick = 0.5;
  cfg.seq_run_lines = 32.0;
  cfg.measure_ticks = 20'000;
  sched::HitFirstReadFirstScheduler s;
  const sim::OpenLoopResult r = run_open_loop(cfg, s);
  EXPECT_GT(r.row_hit_rate, 0.3);
}

// ---------------------------------------------------------- json report ---

TEST(JsonReport, RunResultSerializesKeyFields) {
  SystemConfig cfg;
  cfg.cores = 2;
  sched::HitFirstReadFirstScheduler s;
  MultiCoreSystem sys(cfg, two_apps(), s, 3);
  const RunResult r = sys.run(20'000, 5'000);
  const std::string j = to_json(r).dump(-1);
  EXPECT_NE(j.find("\"avg_read_latency_cpu\""), std::string::npos);
  EXPECT_NE(j.find("\"dram_energy\""), std::string::npos);
  EXPECT_NE(j.find("\"cores\":[{"), std::string::npos);
  EXPECT_NE(j.find("\"row_hits\""), std::string::npos);
}

TEST(JsonReport, SystemConfigSerializesTable1) {
  const std::string j = to_json(SystemConfig{}).dump(-1);
  EXPECT_NE(j.find("\"channels\":2"), std::string::npos);
  EXPECT_NE(j.find("\"buffer_entries\":64"), std::string::npos);
  EXPECT_NE(j.find("\"interleave\":\"hybrid-interleave\""), std::string::npos);
  EXPECT_NE(j.find("\"page_policy\":\"close\""), std::string::npos);
}

TEST(JsonReport, WorkloadRunSerializesMetrics) {
  ExperimentConfig cfg;
  cfg.profile_insts = 50'000;
  cfg.eval_insts = 20'000;
  cfg.warmup_insts = 5'000;
  cfg.eval_repeats = 1;
  Experiment exp(cfg);
  const WorkloadRun r = exp.run(workload_by_name("2MEM-1"), "LREQ");
  const std::string j = to_json(r).dump(-1);
  EXPECT_NE(j.find("\"workload\":\"2MEM-1\""), std::string::npos);
  EXPECT_NE(j.find("\"scheme\":\"LREQ\""), std::string::npos);
  EXPECT_NE(j.find("\"smt_speedup\""), std::string::npos);
  EXPECT_NE(j.find("\"ipc_multi\":["), std::string::npos);
}

// ----------------------------------------------------------- experiment ---

TEST(Experiment, ProfileCachesAcrossCalls) {
  ExperimentConfig cfg;
  cfg.profile_insts = 50'000;
  cfg.warmup_insts = 10'000;
  Experiment exp(cfg);
  const auto& a = exp.profile("gzip");
  const auto& b = exp.profile("gzip");
  EXPECT_EQ(&a, &b);  // same cached object
  EXPECT_GT(a.memory_efficiency, 0.0);
}

TEST(Experiment, MeTableMatchesWorkloadOrder) {
  ExperimentConfig cfg;
  cfg.profile_insts = 50'000;
  cfg.warmup_insts = 10'000;
  Experiment exp(cfg);
  const Workload& w = workload_by_name("2MIX-1");  // gzip + wupwise
  const core::MeTable t = exp.me_table_for(w);
  ASSERT_EQ(t.core_count(), 2u);
  EXPECT_DOUBLE_EQ(t.me(0), exp.profile("gzip").memory_efficiency);
  EXPECT_DOUBLE_EQ(t.me(1), exp.profile("wupwise").memory_efficiency);
  // gzip is far more memory-efficient than wupwise.
  EXPECT_GT(t.me(0), t.me(1));
}

TEST(Experiment, RunProducesSaneAggregates) {
  ExperimentConfig cfg;
  cfg.profile_insts = 50'000;
  cfg.eval_insts = 30'000;
  cfg.warmup_insts = 10'000;
  cfg.eval_repeats = 2;
  Experiment exp(cfg);
  const WorkloadRun r = exp.run(workload_by_name("2MEM-1"), "ME-LREQ");
  EXPECT_EQ(r.scheme, "ME-LREQ");
  EXPECT_EQ(r.ipc_multi.size(), 2u);
  EXPECT_GT(r.smt_speedup, 0.5);
  EXPECT_LT(r.smt_speedup, 2.1);
  EXPECT_GE(r.unfairness, 1.0);
  EXPECT_GT(r.avg_read_latency_cpu, 100.0);
}

}  // namespace
}  // namespace memsched::sim
