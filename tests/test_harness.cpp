// Robustness-layer tests: forward-progress watchdog, cycle-budget guard,
// deterministic fault injection, and the fault-tolerant sweep orchestrator
// (isolation, timeout, retry, checkpoint/resume).
#include <gtest/gtest.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/cost_model.hpp"
#include "harness/fingerprint.hpp"
#include "harness/guarded_main.hpp"
#include "harness/manifest.hpp"
#include "harness/orchestrator.hpp"
#include "mc/fault_injector.hpp"
#include "sched/policies.hpp"
#include "sim/experiment.hpp"
#include "sim/open_loop.hpp"
#include "sim/system.hpp"
#include "sim/watchdog.hpp"
#include "trace/app_profile.hpp"
#include "util/json.hpp"

using namespace memsched;

namespace {

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "memsched_" + name;
}

harness::PointSpec ok_point(const std::string& name, double value) {
  harness::PointSpec p;
  p.name = name;
  p.body = [value] {
    util::Json j = util::Json::object();
    j["value"] = value;
    return j;
  };
  return p;
}

harness::OrchestratorConfig quick_config(const std::string& tag) {
  harness::OrchestratorConfig oc;
  oc.work_dir = tmp_path("work_" + tag);
  oc.verbose = false;
  oc.timeout_seconds = 60.0;
  return oc;
}

}  // namespace

// ---------------------------------------------------------------------------
// ProgressWatchdog unit behaviour.

TEST(ProgressWatchdog, FiresOnlyAfterFullWindowWithoutProgress) {
  sim::ProgressWatchdog wd(100);
  ASSERT_TRUE(wd.enabled());
  EXPECT_FALSE(wd.poll(0, 5, true));    // first observation arms the lane
  EXPECT_FALSE(wd.poll(60, 5, true));   // within the window
  EXPECT_TRUE(wd.poll(100, 5, true));   // window elapsed, counter frozen
  EXPECT_FALSE(wd.poll(150, 6, true));  // progress resets the lane
  EXPECT_FALSE(wd.poll(260, 6, false));  // no pending work: lane resets
  EXPECT_FALSE(wd.poll(300, 6, true));
  EXPECT_TRUE(wd.poll(400, 6, true));  // re-armed after the idle reset
}

TEST(ProgressWatchdog, ZeroWindowDisables) {
  sim::ProgressWatchdog wd(0);
  EXPECT_FALSE(wd.enabled());
  EXPECT_FALSE(wd.poll(1'000'000, 0, true));
}

// ---------------------------------------------------------------------------
// Injected starvation: the simulator watchdogs must convert a wedged memory
// system into a structured, diagnosable error instead of an endless spin.

TEST(Livelock, StalledChannelsTripClosedLoopWatchdog) {
  sim::SystemConfig cfg;
  cfg.cores = 1;
  cfg.progress_window_ticks = 20'000;
  cfg.audit.enabled = false;  // isolate the watchdog path
  cfg.fault.enabled = true;
  cfg.fault.stall_prob = 1.0;  // freeze every channel forever
  sched::HitFirstReadFirstScheduler sched;
  const std::vector<trace::AppProfile> apps = {trace::spec2000_by_name("swim")};
  sim::MultiCoreSystem sys(cfg, apps, sched, 1);
  try {
    sys.run(50'000, 0, 500'000);
    FAIL() << "expected LivelockError";
  } catch (const sim::LivelockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("livelock"), std::string::npos) << what;
    EXPECT_NE(what.find("core 0"), std::string::npos) << what;
    EXPECT_NE(e.state_dump().find("controller state"), std::string::npos);
    EXPECT_GE(e.tick(), cfg.progress_window_ticks);
    EXPECT_LT(e.tick(), Tick{500'000});  // caught well before the budget
  }
}

TEST(Livelock, DroppedReadsStarveTheCore) {
  // The "always-starving" case: every demand read is accepted and then lost,
  // so the core waits forever on a fill that never comes.
  sim::SystemConfig cfg;
  cfg.cores = 1;
  cfg.progress_window_ticks = 20'000;
  cfg.audit.enabled = false;
  cfg.fault.enabled = true;
  cfg.fault.drop_read_prob = 1.0;
  sched::HitFirstReadFirstScheduler sched;
  const std::vector<trace::AppProfile> apps = {trace::spec2000_by_name("swim")};
  sim::MultiCoreSystem sys(cfg, apps, sched, 1);
  EXPECT_THROW(sys.run(50'000, 0, 500'000), sim::LivelockError);
}

TEST(Livelock, StalledChannelsTripOpenLoopWatchdog) {
  sim::OpenLoopConfig cfg;
  cfg.warmup_ticks = 1'000;
  cfg.measure_ticks = 400'000;
  cfg.progress_window_ticks = 20'000;
  cfg.audit.enabled = false;
  cfg.fault.enabled = true;
  cfg.fault.stall_prob = 1.0;
  sched::HitFirstReadFirstScheduler sched;
  EXPECT_THROW(sim::run_open_loop(cfg, sched), sim::LivelockError);
}

TEST(Livelock, HealthyRunDoesNotTrip) {
  sim::SystemConfig cfg;
  cfg.cores = 1;
  cfg.progress_window_ticks = 20'000;  // tight window, healthy system
  sched::HitFirstReadFirstScheduler sched;
  const std::vector<trace::AppProfile> apps = {trace::spec2000_by_name("gzip")};
  sim::MultiCoreSystem sys(cfg, apps, sched, 1);
  const sim::RunResult r = sys.run(5'000, 0);
  EXPECT_FALSE(r.hit_tick_limit);
}

TEST(CycleBudget, ExperimentThrowsStructuredError) {
  sim::ExperimentConfig cfg;
  cfg.profile_insts = 500'000;
  cfg.max_ticks = 2'000;  // nowhere near enough
  sim::Experiment exp(cfg);
  try {
    exp.profile("swim");
    FAIL() << "expected CycleBudgetError";
  } catch (const sim::CycleBudgetError& e) {
    EXPECT_EQ(e.budget(), Tick{2'000});
    EXPECT_NE(std::string(e.what()).find("budget"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Fault injector: seeded, reproducible, and audited by the verification
// layer when it corrupts state.

TEST(FaultInjector, ValidatesKnobRanges) {
  mc::FaultConfig bad;
  bad.enabled = true;
  bad.drop_read_prob = 1.5;
  EXPECT_FALSE(bad.validate().empty());
  mc::FaultConfig good;
  good.enabled = true;
  good.dup_prob = 0.25;
  EXPECT_TRUE(good.validate().empty());
}

TEST(FaultInjector, SameSeedSameDecisions) {
  mc::FaultConfig fc;
  fc.enabled = true;
  fc.seed = 7;
  fc.drop_read_prob = 0.3;
  fc.dup_prob = 0.2;
  fc.delay_prob = 0.5;
  fc.delay_ticks_max = 16;
  mc::FaultInjector a(fc), b(fc);
  for (int i = 0; i < 500; ++i) {
    const auto fa = a.on_enqueue(i % 3 == 0);
    const auto fb = b.on_enqueue(i % 3 == 0);
    ASSERT_EQ(fa.drop, fb.drop) << "call " << i;
    ASSERT_EQ(fa.duplicate, fb.duplicate) << "call " << i;
    ASSERT_EQ(fa.delay_ticks, fb.delay_ticks) << "call " << i;
  }
  EXPECT_EQ(a.stats().total(), b.stats().total());
  EXPECT_GT(a.stats().total(), 0u);

  fc.seed = 8;
  mc::FaultInjector c(fc);
  fc.seed = 7;
  mc::FaultInjector a2(fc);
  bool diverged = false;
  for (int i = 0; i < 500 && !diverged; ++i) {
    const auto fa = a2.on_enqueue(false);
    const auto fcv = c.on_enqueue(false);
    diverged = fa.drop != fcv.drop || fa.duplicate != fcv.duplicate ||
               fa.delay_ticks != fcv.delay_ticks;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, PermanentStallFreezesChannel) {
  mc::FaultConfig fc;
  fc.enabled = true;
  fc.stall_prob = 1.0;
  mc::FaultInjector inj(fc);
  for (Tick t = 0; t < 10'000; t += 1'000) EXPECT_TRUE(inj.stall_command(0, t));
  mc::FaultConfig off;
  off.enabled = true;  // stall_prob 0
  mc::FaultInjector none(off);
  for (Tick t = 0; t < 10'000; t += 1'000) EXPECT_FALSE(none.stall_command(0, t));
}

TEST(FaultInjector, DroppedWritesAreCaughtByVerificationLayer) {
  // Chaos cross-check: induced request loss must register as lifecycle
  // violations in PR 1's audit layer (record mode), proving the checkers see
  // real corruption — not just clean runs.
  sim::SystemConfig cfg;
  cfg.cores = 1;
  cfg.audit.enabled = true;
  cfg.audit.abort_on_violation = false;
  cfg.fault.enabled = true;
  cfg.fault.seed = 11;
  cfg.fault.drop_write_prob = 0.5;
  sched::HitFirstReadFirstScheduler sched;
  const std::vector<trace::AppProfile> apps = {trace::spec2000_by_name("swim")};
  sim::MultiCoreSystem sys(cfg, apps, sched, 1);
  const sim::RunResult r = sys.run(20'000, 0);
  (void)r;
  ASSERT_NE(sys.fault_injector(), nullptr);
  EXPECT_GT(sys.fault_injector()->stats().dropped_writes, 0u);
  ASSERT_NE(sys.auditor(), nullptr);
  EXPECT_GT(sys.auditor()->violation_count(), 0u);
}

// ---------------------------------------------------------------------------
// guarded_main: the binary-side half of the exit-code contract.

TEST(GuardedMain, MapsExceptionsToContractExitCodes) {
  EXPECT_EQ(harness::guarded_main("t", [] { return 0; }), harness::kExitOk);
  EXPECT_EQ(harness::guarded_main(
                "t", []() -> int { throw std::invalid_argument("bad key"); }),
            harness::kExitUsage);
  EXPECT_EQ(harness::guarded_main(
                "t", []() -> int { throw sim::LivelockError("livelock: x", 1, "dump"); }),
            harness::kExitLivelock);
  EXPECT_EQ(harness::guarded_main(
                "t", []() -> int { throw sim::CycleBudgetError("budget", 9); }),
            harness::kExitBudget);
  EXPECT_EQ(harness::guarded_main(
                "t", []() -> int { throw std::runtime_error("boom"); }),
            harness::kExitInternal);
}

// ---------------------------------------------------------------------------
// Manifest: atomic checkpoint + fingerprint-guarded resume.

TEST(Manifest, RoundTripsRecordsAndPayloadBytes) {
  const std::string path = tmp_path("manifest_roundtrip.json");
  std::remove(path.c_str());

  harness::Manifest m;
  m.open(path, "fp-a");
  harness::PointRecord rec;
  rec.name = "p0";
  rec.status = "ok";
  rec.category = "ok";
  rec.attempts = 2;
  rec.wall_ms = 12.5;
  rec.payload = R"({"v":1.25,"s":"quote\"and\nnewline"})";
  m.record(rec);

  harness::Manifest back;
  back.open(path, "fp-a");
  ASSERT_EQ(back.size(), 1u);
  const harness::PointRecord* r = back.find("p0");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->payload, rec.payload);  // byte-exact through the checkpoint
  EXPECT_EQ(r->attempts, 2u);
  EXPECT_TRUE(r->ok());
  std::remove(path.c_str());
}

TEST(Manifest, RefusesForeignFingerprint) {
  const std::string path = tmp_path("manifest_fp.json");
  std::remove(path.c_str());
  harness::Manifest m;
  m.open(path, "sweep-one");
  harness::PointRecord rec;
  rec.name = "p0";
  rec.status = "failed";
  m.record(rec);

  harness::Manifest other;
  EXPECT_THROW(other.open(path, "sweep-two"), std::runtime_error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Orchestrator: classification, retry, isolation, resume.

TEST(Orchestrator, RunsPointsAndSplicesPayloads) {
  harness::OrchestratorConfig oc = quick_config("ok");
  oc.isolate = false;
  harness::Orchestrator orch(oc);
  const harness::SweepSummary s =
      orch.run({ok_point("a", 1.0), ok_point("b", 2.0)});
  EXPECT_EQ(s.ok, 2u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_TRUE(s.complete());
  const util::Json rep = orch.report();
  EXPECT_EQ(rep.at("summary").at("gap_count").as_uint(), 0u);
  // Payloads are spliced verbatim (raw nodes), so navigate via a re-parse.
  const util::Json result =
      util::Json::parse(rep.at("points").at(0).at("result").dump(-1));
  EXPECT_DOUBLE_EQ(result.at("value").as_number(), 1.0);
}

TEST(Orchestrator, RetriesThenRecordsFailureAndContinues) {
  harness::OrchestratorConfig oc = quick_config("retry");
  oc.isolate = false;
  oc.max_attempts = 3;
  harness::PointSpec bad;
  bad.name = "bad";
  bad.body = []() -> util::Json { throw std::invalid_argument("unknown key 'x'"); };
  harness::Orchestrator orch(oc);
  const harness::SweepSummary s = orch.run({bad, ok_point("good", 4.0)});
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.ok, 1u);  // the sweep did not stop at the failure
  const harness::PointRecord* r = orch.manifest().find("bad");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->status, "failed");
  EXPECT_EQ(r->category, "usage");
  EXPECT_EQ(r->exit_code, harness::kExitUsage);
  EXPECT_EQ(r->attempts, 3u);
  const util::Json rep = orch.report();
  EXPECT_EQ(rep.at("summary").at("gaps").at(0).as_string(), "bad");
}

TEST(Orchestrator, ForkedChildExitCodeIsClassified) {
  harness::OrchestratorConfig oc = quick_config("exitcode");
  harness::PointSpec p;
  p.name = "livelocked";
  p.body = []() -> util::Json {
    throw sim::LivelockError("livelock: injected point", 42, "dump text");
  };
  harness::Orchestrator orch(oc);
  const harness::SweepSummary s = orch.run({p});
  EXPECT_EQ(s.failed, 1u);
  const harness::PointRecord* r = orch.manifest().find("livelocked");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->status, "failed");
  EXPECT_EQ(r->category, "livelock");
  EXPECT_EQ(r->exit_code, harness::kExitLivelock);
  // The structured stderr line made it into the record.
  EXPECT_NE(r->error.find("\"category\":\"livelock\""), std::string::npos) << r->error;
}

TEST(Orchestrator, WallClockWatchdogKillsHungChild) {
  harness::OrchestratorConfig oc = quick_config("timeout");
  oc.timeout_seconds = 0.3;
  harness::PointSpec hung;
  hung.name = "hung";
  hung.body = []() -> util::Json {
    volatile std::uint64_t spin = 0;
    for (;;) spin = spin + 1;  // a wedge the in-process watchdogs cannot see
  };
  harness::Orchestrator orch(oc);
  const harness::SweepSummary s = orch.run({hung, ok_point("after", 1.0)});
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.ok, 1u);  // the point after the hang still ran
  const harness::PointRecord* r = orch.manifest().find("hung");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->status, "timeout");
  EXPECT_EQ(r->term_signal, SIGKILL);
}

TEST(Orchestrator, CrashIsRecordedWithSignal) {
  harness::OrchestratorConfig oc = quick_config("crash");
  harness::PointSpec crash;
  crash.name = "crash";
  crash.body = []() -> util::Json {
    std::abort();
  };
  harness::Orchestrator orch(oc);
  const harness::SweepSummary s = orch.run({crash});
  EXPECT_EQ(s.failed, 1u);
  const harness::PointRecord* r = orch.manifest().find("crash");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->status, "crash");
  EXPECT_EQ(r->term_signal, SIGABRT);
}

TEST(Orchestrator, InterruptedSweepResumesByteIdentical) {
  const std::string mA = tmp_path("resume_a.json");
  const std::string mB = tmp_path("resume_b.json");
  std::remove(mA.c_str());
  std::remove(mB.c_str());

  harness::PointSpec flaky;  // deterministic failure: same record every run
  flaky.name = "fails";
  flaky.body = []() -> util::Json { throw std::invalid_argument("always"); };
  const std::vector<harness::PointSpec> points = {ok_point("p0", 0.5), flaky,
                                                  ok_point("p2", 2.5)};

  // Interrupted run: killed (simulated) after two executed points.
  harness::OrchestratorConfig oc1 = quick_config("resume1");
  oc1.isolate = false;
  oc1.manifest_path = mA;
  oc1.fingerprint = "resume-sweep";
  oc1.stop_after = 2;
  {
    harness::Orchestrator orch(oc1);
    const harness::SweepSummary s = orch.run(points);
    EXPECT_TRUE(s.abandoned);
    EXPECT_EQ(s.executed, 2u);
  }

  // Resume: completed points replay from the manifest, the rest run.
  harness::OrchestratorConfig oc2 = oc1;
  oc2.stop_after = 0;
  oc2.work_dir = tmp_path("work_resume2");
  harness::Orchestrator resumed(oc2);
  const harness::SweepSummary s2 = resumed.run(points);
  EXPECT_TRUE(s2.complete());
  EXPECT_EQ(s2.resumed, 1u);  // p0 came from the checkpoint

  // Uninterrupted reference sweep.
  harness::OrchestratorConfig oc3 = oc1;
  oc3.stop_after = 0;
  oc3.manifest_path = mB;
  oc3.work_dir = tmp_path("work_resume3");
  harness::Orchestrator reference(oc3);
  const harness::SweepSummary s3 = reference.run(points);
  EXPECT_TRUE(s3.complete());

  EXPECT_EQ(resumed.report().dump(2), reference.report().dump(2));
  std::remove(mA.c_str());
  std::remove(mB.c_str());
}

TEST(Orchestrator, ExecPointRunsExternalBinary) {
  harness::OrchestratorConfig oc = quick_config("exec");
  harness::PointSpec p;
  p.name = "true-cmd";
  p.argv = {"/bin/sh", "-c", "exit 0"};
  harness::PointSpec bad;
  bad.name = "usage-cmd";
  bad.argv = {"/bin/sh", "-c", "exit 2"};
  harness::Orchestrator orch(oc);
  const harness::SweepSummary s = orch.run({p, bad});
  EXPECT_EQ(s.ok, 1u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(orch.manifest().find("usage-cmd")->category, "usage");
}

// ---------------------------------------------------------------------------
// Sweep fingerprinting (regression): the grid fingerprint is built on
// SystemConfig::fingerprint(), so EVERY result-affecting knob participates.
// The engine= knob shipped after the sweep tool froze its original inline
// fingerprint list — resuming a skip-engine manifest with engine=cycle then
// silently mixed incompatible points. These tests pin the fix.

TEST(GridFingerprint, EngineChangeInvalidates) {
  sim::ExperimentConfig cfg;
  const mc::FaultConfig no_fault;
  cfg.base.engine = sim::Engine::kSkip;
  const std::string skip =
      harness::grid_fingerprint(cfg, "2MEM-1", "HF-RF", no_fault, "");
  cfg.base.engine = sim::Engine::kCycle;
  const std::string cycle =
      harness::grid_fingerprint(cfg, "2MEM-1", "HF-RF", no_fault, "");
  EXPECT_NE(skip, cycle);
}

TEST(GridFingerprint, StableForIdenticalConfigs) {
  sim::ExperimentConfig a, b;
  const mc::FaultConfig no_fault;
  EXPECT_EQ(harness::grid_fingerprint(a, "2MEM-1,4MIX-1", "HF-RF", no_fault, ""),
            harness::grid_fingerprint(b, "2MEM-1,4MIX-1", "HF-RF", no_fault, ""));
}

TEST(GridFingerprint, EveryResultAffectingKnobParticipates) {
  const mc::FaultConfig no_fault;
  const auto fp = [&no_fault](const sim::ExperimentConfig& c) {
    return harness::grid_fingerprint(c, "2MEM-1", "HF-RF", no_fault, "");
  };
  const sim::ExperimentConfig base;
  sim::ExperimentConfig m = base;
  m.warmup_insts += 1;
  EXPECT_NE(fp(m), fp(base));
  m = base;
  m.base.progress_window_ticks += 1;
  EXPECT_NE(fp(m), fp(base));
  m = base;
  m.base.timing.tCL += 1;
  EXPECT_NE(fp(m), fp(base));
  m = base;
  m.eval_seed += 1;
  EXPECT_NE(fp(m), fp(base));
  m = base;
  mc::FaultConfig fault;
  fault.enabled = true;
  fault.delay_prob = 0.5;
  EXPECT_NE(harness::grid_fingerprint(base, "2MEM-1", "HF-RF", fault, ""),
            fp(base));
}

// ---------------------------------------------------------------------------
// Orchestrator checkpoint plumbing.

TEST(Orchestrator, BodyCkptGetsDirKeptAcrossRetriesRemovedOnSuccess) {
  harness::OrchestratorConfig oc = quick_config("body_ckpt");
  oc.isolate = false;
  oc.max_attempts = 2;
  harness::PointSpec p;
  p.name = "ckpt-point";
  // First attempt writes a marker into the per-point checkpoint dir and
  // fails; the retry must see the SAME dir with the marker intact (that is
  // what lets a real point resume from its snapshot), then succeed.
  p.body_ckpt = [](const std::string& ckpt_dir) {
    const std::string marker = ckpt_dir + "/marker";
    if (!std::ifstream(marker).good()) {
      std::ofstream(marker) << "attempt1";
      throw std::runtime_error("first attempt dies after checkpointing");
    }
    util::Json j = util::Json::object();
    j["resumed_from_marker"] = true;
    return j;
  };
  harness::Orchestrator orch(oc);
  const harness::SweepSummary s = orch.run({p});
  EXPECT_EQ(s.ok, 1u);
  const harness::PointRecord* rec = orch.manifest().find("ckpt-point");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->attempts, 2u);
  // The checkpoint dir is torn down once the point lands.
  EXPECT_FALSE(std::ifstream(oc.work_dir + "/point-0.ckpt.d/marker").good());
}

TEST(Orchestrator, ChildExitSixStopsSweepWithoutRecording) {
  harness::OrchestratorConfig oc = quick_config("interrupt6");
  oc.manifest_path = tmp_path("interrupt6.manifest");
  std::remove(oc.manifest_path.c_str());
  harness::PointSpec a = ok_point("first", 1.0);
  harness::PointSpec b;
  b.name = "parked";
  b.argv = {"/bin/sh", "-c", "exit 6"};  // kExitInterrupted contract
  harness::PointSpec c = ok_point("never-reached", 3.0);
  harness::Orchestrator orch(oc);
  const harness::SweepSummary s = orch.run({a, b, c});
  EXPECT_TRUE(s.interrupted);
  EXPECT_FALSE(s.complete());
  EXPECT_EQ(s.ok, 1u);
  // The parked point is NOT recorded: the next invocation re-runs it (and a
  // real simulation then resumes from its snapshot).
  EXPECT_EQ(orch.manifest().find("parked"), nullptr);
  EXPECT_EQ(orch.manifest().find("never-reached"), nullptr);
}

// ---------------------------------------------------------------------------
// Cost model + dispatch order for the parallel executor.

TEST(CostModel, EstimateFallsBackHintThenOne) {
  harness::CostModel m;
  EXPECT_DOUBLE_EQ(m.estimate("x", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(m.estimate("x", 7.5), 7.5);
  m.observe("x", 123.0);
  EXPECT_DOUBLE_EQ(m.estimate("x", 7.5), 123.0);
  EXPECT_TRUE(m.has("x"));
  EXPECT_FALSE(m.has("y"));
}

TEST(CostModel, RoundTripsThroughSidecarFile) {
  const std::string path = tmp_path("cost_model.json");
  std::remove(path.c_str());
  harness::CostModel m;
  m.observe("slow", 900.0);
  m.observe("fast", 10.0);
  m.save(path);
  harness::CostModel n;
  n.load(path);
  EXPECT_EQ(n.size(), 2u);
  EXPECT_DOUBLE_EQ(n.estimate("slow", 0.0), 900.0);
  EXPECT_DOUBLE_EQ(n.estimate("fast", 0.0), 10.0);
  std::remove(path.c_str());
}

TEST(CostModel, CorruptOrMissingHistoryDegradesToHints) {
  const std::string path = tmp_path("cost_model_bad.json");
  { std::ofstream(path) << "this is not json"; }
  harness::CostModel m;
  m.load(path);  // must not throw — timing only orders dispatch
  EXPECT_EQ(m.size(), 0u);
  std::remove(path.c_str());
  m.load(path);  // missing file: same story
  EXPECT_EQ(m.size(), 0u);
}

TEST(CostModel, LongestFirstOrderSortsByCostThenIndex) {
  const std::vector<std::size_t> pending = {0, 1, 2, 3};
  const double est[] = {5.0, 9.0, 9.0, 1.0};
  const auto order =
      harness::longest_first_order(pending, [&](std::size_t i) { return est[i]; });
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1u);  // ties broken by index for determinism
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
  EXPECT_EQ(order[3], 3u);
}

TEST(ResolveJobs, ExplicitEnvAndAutoFallback) {
  EXPECT_EQ(harness::resolve_jobs(3), 3u);
  ::setenv("MEMSCHED_JOBS", "2", 1);
  EXPECT_EQ(harness::resolve_jobs(0), 2u);
  ::setenv("MEMSCHED_JOBS", "not-a-number", 1);
  EXPECT_GE(harness::resolve_jobs(0), 1u);  // garbage env → hardware fallback
  ::unsetenv("MEMSCHED_JOBS");
  EXPECT_GE(harness::resolve_jobs(0), 1u);
}

// ---------------------------------------------------------------------------
// N-way process-pool executor: same records, same bytes, any width.

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// A point that sleeps (to force out-of-order completion under the pool)
/// then reports a deterministic payload.
harness::PointSpec sleepy_point(const std::string& name, double value,
                                unsigned sleep_ms) {
  harness::PointSpec p;
  p.name = name;
  p.cost_hint = static_cast<double>(sleep_ms) + 1.0;
  p.body = [value, sleep_ms] {
    ::usleep(sleep_ms * 1000);
    util::Json j = util::Json::object();
    j["value"] = value;
    return j;
  };
  return p;
}

}  // namespace

TEST(OrchestratorPool, ManifestAndReportByteIdenticalToSerial) {
  const std::string mSerial = tmp_path("pool_vs_serial_a.manifest");
  const std::string mPool = tmp_path("pool_vs_serial_b.manifest");
  for (const std::string& m : {mSerial, mPool}) {
    std::remove(m.c_str());
    std::remove((m + ".timing.json").c_str());
  }

  // Sleeps shrink with the index, so under the pool later points finish
  // first — the exact completion order a naive append-to-manifest would leak.
  std::vector<harness::PointSpec> points;
  for (unsigned i = 0; i < 6; ++i) {
    points.push_back(sleepy_point("pt-" + std::to_string(i),
                                  static_cast<double>(i) * 0.25, (5 - i) * 20));
  }

  harness::OrchestratorConfig serial_cfg = quick_config("pool_serial");
  serial_cfg.manifest_path = mSerial;
  serial_cfg.fingerprint = "pool-sweep";
  serial_cfg.jobs = 1;
  harness::Orchestrator serial(serial_cfg);
  const harness::SweepSummary s1 = serial.run(points);
  EXPECT_TRUE(s1.complete());
  EXPECT_EQ(s1.jobs, 1u);

  harness::OrchestratorConfig pool_cfg = quick_config("pool_parallel");
  pool_cfg.manifest_path = mPool;
  pool_cfg.fingerprint = "pool-sweep";
  pool_cfg.jobs = 4;
  harness::Orchestrator pool(pool_cfg);
  const harness::SweepSummary s2 = pool.run(points);
  EXPECT_TRUE(s2.complete());
  EXPECT_EQ(s2.ok, 6u);
  EXPECT_EQ(s2.jobs, 4u);

  // The determinism contract: byte-for-byte, manifest and report.
  EXPECT_EQ(slurp(mSerial), slurp(mPool));
  EXPECT_EQ(serial.report().dump(2), pool.report().dump(2));
  // Wall clock lives in the sidecar, not the manifest.
  EXPECT_FALSE(slurp(mPool).find("wall") != std::string::npos);
  EXPECT_TRUE(slurp(mPool + ".timing.json").find("points") != std::string::npos);
}

TEST(OrchestratorPool, RetriedFlakyPointMatchesSerialBytes) {
  const std::string mSerial = tmp_path("pool_retry_a.manifest");
  const std::string mPool = tmp_path("pool_retry_b.manifest");
  const std::string markerSerial = tmp_path("pool_retry_a.marker");
  const std::string markerPool = tmp_path("pool_retry_b.marker");
  for (const std::string& f : {mSerial, mPool, markerSerial, markerPool}) {
    std::remove(f.c_str());
    std::remove((f + ".timing.json").c_str());
  }

  const auto points_with = [](const std::string& marker) {
    harness::PointSpec flaky;
    flaky.name = "flaky";
    // First attempt dies AFTER leaving a marker; the retry sees the marker
    // and succeeds — deterministic two-attempt record either way.
    flaky.body = [marker]() -> util::Json {
      if (!std::ifstream(marker).good()) {
        std::ofstream(marker) << "seen";
        throw std::runtime_error("first attempt dies");
      }
      util::Json j = util::Json::object();
      j["value"] = 42.0;
      return j;
    };
    return std::vector<harness::PointSpec>{ok_point("a", 1.0), flaky,
                                           ok_point("b", 2.0)};
  };

  harness::OrchestratorConfig serial_cfg = quick_config("pool_retry_serial");
  serial_cfg.manifest_path = mSerial;
  serial_cfg.fingerprint = "retry-sweep";
  serial_cfg.jobs = 1;
  serial_cfg.max_attempts = 2;
  serial_cfg.backoff_seconds = 0.01;
  harness::Orchestrator serial(serial_cfg);
  EXPECT_TRUE(serial.run(points_with(markerSerial)).complete());

  harness::OrchestratorConfig pool_cfg = quick_config("pool_retry_pool");
  pool_cfg.manifest_path = mPool;
  pool_cfg.fingerprint = "retry-sweep";
  pool_cfg.jobs = 3;
  pool_cfg.max_attempts = 2;
  pool_cfg.backoff_seconds = 0.01;
  harness::Orchestrator pool(pool_cfg);
  const harness::SweepSummary s = pool.run(points_with(markerPool));
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.ok, 3u);

  const harness::PointRecord* rec = pool.manifest().find("flaky");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->attempts, 2u);
  EXPECT_EQ(slurp(mSerial), slurp(mPool));
}

TEST(OrchestratorPool, KilledWorkerRecordedThenResumeRepairsByteIdentical) {
  const std::string mPool = tmp_path("pool_kill.manifest");
  const std::string mRef = tmp_path("pool_kill_ref.manifest");
  const std::string marker = tmp_path("pool_kill.marker");
  const std::string markerRef = tmp_path("pool_kill_ref.marker");
  for (const std::string& f : {mPool, mRef, marker, markerRef}) {
    std::remove(f.c_str());
    std::remove((f + ".timing.json").c_str());
  }

  const auto points_with = [](const std::string& m) {
    harness::PointSpec victim;
    victim.name = "victim";
    // Simulates losing the worker process itself: first run, the forked
    // child is SIGKILLed mid-point (after leaving a marker); later runs
    // complete normally.
    victim.body = [m]() -> util::Json {
      if (!std::ifstream(m).good()) {
        std::ofstream(m) << "died here";
        ::raise(SIGKILL);
      }
      util::Json j = util::Json::object();
      j["value"] = 9.0;
      return j;
    };
    return std::vector<harness::PointSpec>{ok_point("a", 1.0), victim,
                                           ok_point("b", 2.0), ok_point("c", 3.0)};
  };

  harness::OrchestratorConfig cfg = quick_config("pool_kill");
  cfg.manifest_path = mPool;
  cfg.fingerprint = "kill-sweep";
  cfg.jobs = 3;
  {
    harness::Orchestrator orch(cfg);
    const harness::SweepSummary s = orch.run(points_with(marker));
    EXPECT_TRUE(s.complete());  // crash recorded as a gap, sweep still lands
    EXPECT_EQ(s.failed, 1u);
    const harness::PointRecord* rec = orch.manifest().find("victim");
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->status, "crash");
    EXPECT_EQ(rec->term_signal, SIGKILL);
  }

  // Resume: the three ok points replay from the manifest; ONLY the lost
  // point re-runs (and now succeeds past its marker).
  harness::OrchestratorConfig resume_cfg = cfg;
  resume_cfg.work_dir = tmp_path("work_pool_kill_resume");
  harness::Orchestrator resumed(resume_cfg);
  const harness::SweepSummary s2 = resumed.run(points_with(marker));
  EXPECT_TRUE(s2.complete());
  EXPECT_EQ(s2.resumed, 3u);
  EXPECT_EQ(s2.executed, 1u);
  EXPECT_EQ(s2.ok, 4u);

  // Uninterrupted serial reference (marker pre-created: victim never dies).
  { std::ofstream(markerRef) << "precreated"; }
  harness::OrchestratorConfig ref_cfg = quick_config("pool_kill_ref");
  ref_cfg.manifest_path = mRef;
  ref_cfg.fingerprint = "kill-sweep";
  ref_cfg.jobs = 1;
  harness::Orchestrator reference(ref_cfg);
  EXPECT_TRUE(reference.run(points_with(markerRef)).complete());

  EXPECT_EQ(slurp(mPool), slurp(mRef));
  EXPECT_EQ(resumed.report().dump(2), reference.report().dump(2));
}

TEST(OrchestratorPool, WatchdogKillsHungChildOthersComplete) {
  harness::OrchestratorConfig cfg = quick_config("pool_timeout");
  cfg.jobs = 2;
  cfg.timeout_seconds = 0.3;
  harness::PointSpec hung;
  hung.name = "hung";
  hung.body = [] {
    ::usleep(5 * 1000 * 1000);
    return util::Json::object();
  };
  harness::Orchestrator orch(cfg);
  const harness::SweepSummary s =
      orch.run({hung, ok_point("a", 1.0), ok_point("b", 2.0)});
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.ok, 2u);
  EXPECT_EQ(s.failed, 1u);
  const harness::PointRecord* rec = orch.manifest().find("hung");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->status, "timeout");
}

TEST(OrchestratorPool, ChildExitSixHaltsPoolWithoutRecordingIt) {
  harness::OrchestratorConfig cfg = quick_config("pool_exit6");
  cfg.manifest_path = tmp_path("pool_exit6.manifest");
  std::remove(cfg.manifest_path.c_str());
  std::remove((cfg.manifest_path + ".timing.json").c_str());
  cfg.jobs = 2;
  harness::PointSpec parked;
  parked.name = "parked";
  parked.argv = {"/bin/sh", "-c", "exit 6"};  // kExitInterrupted contract
  harness::Orchestrator orch(cfg);
  const harness::SweepSummary s =
      orch.run({parked, ok_point("a", 1.0), ok_point("b", 2.0)});
  EXPECT_TRUE(s.interrupted);
  EXPECT_FALSE(s.complete());
  // The parked point must stay unrecorded so the next invocation re-runs it.
  EXPECT_EQ(orch.manifest().find("parked"), nullptr);
}
