// Checkpoint/restore tests.
//
// The contract (src/ckpt): a run killed at ANY tick and resumed from its
// latest valid snapshot produces a byte-identical final JSON report to an
// uninterrupted run, under both engines, with fault injection on, for
// stateful schedulers. A snapshot that is truncated, bit-flipped, or written
// by a different configuration/engine/version is rejected with a clean
// SnapshotError-driven fallback to cycle zero — never UB (these tests also
// run under ASan/UBSan in CI).
//
// MEMSCHED_VERIFY=1 is set by the ctest harness and turns the invariant
// auditor on by default; checkpointing is rejected alongside the auditor
// (its shadow state is not serialized), so every config here sets
// audit.enabled = false explicitly — except the test that asserts the
// rejection itself.
#include <gtest/gtest.h>

#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/policy.hpp"
#include "ckpt/signal.hpp"
#include "ckpt/snapshot.hpp"
#include "core/scheduler_factory.hpp"
#include "sim/json_report.hpp"
#include "sim/open_loop.hpp"
#include "sim/system.hpp"
#include "sim/workloads.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace memsched {
namespace {

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "memsched_ckpt_" + name;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// Writer/Reader format layer.
// ---------------------------------------------------------------------------

TEST(Snapshot, Crc32KnownVector) {
  // IEEE 802.3 check value for "123456789".
  EXPECT_EQ(ckpt::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(ckpt::crc32("", 0), 0u);
}

ckpt::Writer sample_writer() {
  ckpt::Writer w;
  w.begin_section("alpha");
  w.put_u8(0xAB);
  w.put_bool(true);
  w.put_bool(false);
  w.put_u32(0xDEADBEEFu);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_i64(-42);
  w.put_f64(-0.0);
  w.put_f64(1.0 / 3.0);
  w.put_str("");
  w.put_str("hello \xF0\x9F\x92\xBE world");
  w.put_u64_vec({});
  w.put_u64_vec({1, 2, ~0ull});
  w.begin_section("beta");
  util::Xoshiro256 rng(7);
  rng.next();
  w.put_rng(rng);
  util::RunningStat st;
  st.add(3.25);
  st.add(-1.5);
  w.put_stat(st);
  util::Histogram h(2.0, 4);
  h.add(1.0);
  h.add(3.0);
  h.add(99.0);
  w.put_hist(h);
  return w;
}

TEST(Snapshot, WriterReaderRoundtrip) {
  const std::string path = tmp_path("roundtrip.ckpt");
  sample_writer().save(path, "fp-roundtrip");

  ckpt::Reader r(path, "fp-roundtrip");
  EXPECT_TRUE(r.has_section("alpha"));
  EXPECT_TRUE(r.has_section("beta"));
  EXPECT_FALSE(r.has_section("gamma"));

  r.open_section("alpha");
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_TRUE(r.get_bool());
  EXPECT_FALSE(r.get_bool());
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_i64(), -42);
  const double neg_zero = r.get_f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.get_f64(), 1.0 / 3.0);
  EXPECT_EQ(r.get_str(), "");
  EXPECT_EQ(r.get_str(), "hello \xF0\x9F\x92\xBE world");
  EXPECT_TRUE(r.get_u64_vec().empty());
  EXPECT_EQ(r.get_u64_vec(), (std::vector<std::uint64_t>{1, 2, ~0ull}));
  r.close_section();

  r.open_section("beta");
  util::Xoshiro256 want(7), got(1);
  want.next();
  r.get_rng(got);
  EXPECT_EQ(got.next(), want.next());
  util::RunningStat st;
  r.get_stat(st);
  EXPECT_EQ(st.count(), 2u);
  EXPECT_EQ(st.sum(), 1.75);
  EXPECT_EQ(st.min(), -1.5);
  EXPECT_EQ(st.max(), 3.25);
  util::Histogram h(2.0, 4);
  r.get_hist(h);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  r.close_section();
}

TEST(Snapshot, UnderReadIsSchemaMismatch) {
  const std::string path = tmp_path("underread.ckpt");
  ckpt::Writer w;
  w.begin_section("s");
  w.put_u64(1);
  w.put_u64(2);
  w.save(path, "fp");
  ckpt::Reader r(path, "fp");
  r.open_section("s");
  EXPECT_EQ(r.get_u64(), 1u);
  EXPECT_THROW(r.close_section(), ckpt::SnapshotError);  // 8 bytes unread
}

TEST(Snapshot, OverReadThrowsNotUB) {
  const std::string path = tmp_path("overread.ckpt");
  ckpt::Writer w;
  w.begin_section("s");
  w.put_u32(5);
  w.save(path, "fp");
  ckpt::Reader r(path, "fp");
  r.open_section("s");
  EXPECT_EQ(r.get_u32(), 5u);
  EXPECT_THROW(r.get_u64(), ckpt::SnapshotError);
}

TEST(Snapshot, FingerprintMismatchRejected) {
  const std::string path = tmp_path("fp_mismatch.ckpt");
  sample_writer().save(path, "fp-A");
  EXPECT_NO_THROW(ckpt::Reader(path, "fp-A"));
  EXPECT_THROW(ckpt::Reader(path, "fp-B"), ckpt::SnapshotError);
}

TEST(Snapshot, BadMagicRejected) {
  const std::string path = tmp_path("bad_magic.ckpt");
  sample_writer().save(path, "fp");
  auto bytes = read_file(path);
  bytes[0] ^= 0xFF;
  write_file(path, bytes);
  EXPECT_THROW(ckpt::Reader(path, "fp"), ckpt::SnapshotError);
}

TEST(Snapshot, WrongVersionRejected) {
  const std::string path = tmp_path("bad_version.ckpt");
  sample_writer().save(path, "fp");
  auto bytes = read_file(path);
  bytes[8] = static_cast<std::uint8_t>(bytes[8] + 1);  // version u32 LSB
  write_file(path, bytes);
  EXPECT_THROW(ckpt::Reader(path, "fp"), ckpt::SnapshotError);
}

TEST(Snapshot, MissingFileRejected) {
  EXPECT_THROW(ckpt::Reader(tmp_path("does_not_exist.ckpt"), "fp"),
               ckpt::SnapshotError);
}

TEST(Snapshot, EveryTruncationRejected) {
  const std::string path = tmp_path("trunc_src.ckpt");
  sample_writer().save(path, "fp");
  const auto bytes = read_file(path);
  ASSERT_GT(bytes.size(), 16u);
  const std::string cut = tmp_path("trunc_cut.ckpt");
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    write_file(cut, {bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(len)});
    EXPECT_THROW(ckpt::Reader(cut, "fp"), ckpt::SnapshotError) << "prefix " << len;
  }
}

TEST(Snapshot, EveryBitFlipSafe) {
  // Flip one bit in every byte of a valid snapshot. Each flip must either be
  // rejected (SnapshotError — the expected outcome for payload, length and
  // header bytes) or, for the few unprotected bytes (section *names* carry no
  // CRC), yield a reader whose typed reads still fail cleanly. No other
  // exception type, no crash, no UB (sanitizer jobs re-run this test).
  const std::string path = tmp_path("flip_src.ckpt");
  sample_writer().save(path, "fp");
  const auto bytes = read_file(path);
  const std::string flipped = tmp_path("flip_cur.ckpt");
  std::size_t detected = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto mut = bytes;
    mut[i] ^= 0x01;
    write_file(flipped, mut);
    try {
      ckpt::Reader r(flipped, "fp");
      if (r.has_section("alpha")) {
        r.open_section("alpha");
        r.get_u8();
        r.close_section();  // partial consumption throws; that is the point
      }
    } catch (const ckpt::SnapshotError&) {
      ++detected;
    }
    // Anything else (std::bad_alloc, segfault, UBSan trap) fails the test.
  }
  // Everything except the section-name bytes is CRC- or length-protected.
  EXPECT_GE(detected, bytes.size() - 16);
}

// ---------------------------------------------------------------------------
// Closed-loop kill-and-resume differential.
// ---------------------------------------------------------------------------

sched::SchedulerPtr make_sched(const std::string& name, std::uint32_t cores) {
  core::SchedulerArgs args;
  args.core_count = cores;
  std::vector<double> me, ipc;
  for (std::uint32_t c = 0; c < cores; ++c) {
    me.push_back(9.0 / (1.0 + static_cast<double>(c)));
    ipc.push_back(2.0 / (1.0 + 0.2 * static_cast<double>(c)));
  }
  args.me = core::MeTable(me);
  args.ipc_single = ipc;
  return core::make_scheduler(name, args);
}

constexpr std::uint64_t kTarget = 20'000;
constexpr std::uint64_t kWarmup = 4'000;

sim::SystemConfig base_config(sim::Engine engine, std::uint32_t cores, bool fault) {
  sim::SystemConfig cfg;
  cfg.audit.enabled = false;  // MEMSCHED_VERIFY=1 would default it on
  cfg.engine = engine;
  cfg.cores = cores;
  if (fault) {
    // Delay/dup/stall only: a *dropped* read would park a closed-loop core
    // forever (the load never returns) and trip the livelock watchdog.
    cfg.fault.enabled = true;
    cfg.fault.seed = 99;
    cfg.fault.dup_prob = 0.01;
    cfg.fault.delay_prob = 0.03;
    cfg.fault.stall_prob = 0.001;
  }
  return cfg;
}

/// Fresh system per attempt — resume always happens in a new process image.
std::string run_once(const sim::SystemConfig& cfg, const sim::Workload& w,
                     const std::string& scheme,
                     const ckpt::CheckpointPolicy& policy = {}) {
  const sched::SchedulerPtr s = make_sched(scheme, w.cores());
  sim::MultiCoreSystem sys(cfg, w.apps(), *s, 42);
  return sim::to_json(sys.run(kTarget, kWarmup, Tick{1} << 32, policy)).dump();
}

/// Kill (emulated SIGKILL: abort WITHOUT a stop-snapshot) at each tick in
/// turn, resuming between kills, then finish and compare against a pristine
/// uninterrupted run.
void expect_kill_resume_identical(sim::Engine engine, const std::string& scheme,
                                  const std::string& workload, bool fault,
                                  const std::string& tag) {
  const sim::Workload w = sim::workload_by_name(workload);
  const sim::SystemConfig cfg = base_config(engine, w.cores(), fault);
  const std::string baseline = run_once(cfg, w, scheme);

  const std::string path = tmp_path("kill_" + tag + ".ckpt");
  std::remove(path.c_str());
  ckpt::CheckpointPolicy p;
  p.path = path;
  p.interval_ticks = 1'000;
  p.save_on_stop = false;  // die like SIGKILL: no parting snapshot
  // Randomized-ish, deliberately interval-unaligned kill points (the runs
  // here span roughly 2-4k ticks; later kills may land after completion,
  // which exercises the finished-snapshot path too).
  for (const Tick kill : {Tick{1'217}, Tick{1'537}, Tick{2'011}}) {
    ckpt::CheckpointPolicy kp = p;
    kp.stop_at_tick = kill;
    try {
      run_once(cfg, w, scheme, kp);
    } catch (const ckpt::CheckpointStop&) {
      // expected: the run died mid-flight
    }
  }
  ckpt::ResumeInfo info;
  ckpt::CheckpointPolicy fin = p;
  fin.resume_info = &info;
  EXPECT_EQ(run_once(cfg, w, scheme, fin), baseline)
      << "resumed run diverged: " << tag;
  EXPECT_TRUE(info.attempted);
  EXPECT_TRUE(info.resumed) << info.error;
}

using KillCase = std::tuple<sim::Engine, std::string, std::string, bool>;

class KillResume : public ::testing::TestWithParam<KillCase> {};

TEST_P(KillResume, ByteIdenticalReport) {
  const auto& [engine, scheme, workload, fault] = GetParam();
  std::string tag = std::string(engine == sim::Engine::kCycle ? "cyc" : "skp") +
                    "_" + scheme + "_" + workload + (fault ? "_f" : "");
  for (char& c : tag)
    if (c == '-' || c == '/') c = '_';
  expect_kill_resume_identical(engine, scheme, workload, fault, tag);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KillResume,
    ::testing::Values(
        // Both engines x a stateless and the stateful paper schedulers, and
        // fault injection on (the injector RNG must also survive a kill).
        KillCase(sim::Engine::kCycle, "HF-RF", "2MEM-1", false),
        KillCase(sim::Engine::kSkip, "HF-RF", "2MEM-1", false),
        KillCase(sim::Engine::kCycle, "ME-LREQ", "4MIX-1", false),
        KillCase(sim::Engine::kSkip, "ME-LREQ", "4MIX-1", false),
        KillCase(sim::Engine::kCycle, "PAR-BS", "2MIX-1", false),
        KillCase(sim::Engine::kSkip, "PAR-BS", "2MIX-1", false),
        KillCase(sim::Engine::kCycle, "STFM", "2MEM-2", false),
        KillCase(sim::Engine::kSkip, "STFM", "2MEM-2", false),
        // Epoch-aware zoo: interval counters + blacklist/cluster/score state
        // must survive a mid-interval SIGKILL (controller section v2).
        KillCase(sim::Engine::kCycle, "BLISS", "4MIX-1", false),
        KillCase(sim::Engine::kSkip, "BLISS", "4MIX-1", false),
        KillCase(sim::Engine::kCycle, "TCM", "4MIX-1", false),
        KillCase(sim::Engine::kSkip, "TCM", "4MIX-1", false),
        KillCase(sim::Engine::kCycle, "CADS", "2MEM-2", false),
        KillCase(sim::Engine::kSkip, "CADS", "2MEM-2", false),
        KillCase(sim::Engine::kCycle, "HF-RF", "2MEM-1", true),
        KillCase(sim::Engine::kSkip, "ME-LREQ", "2MEM-1", true)),
    [](const auto& pi) {
      std::string n =
          std::string(std::get<0>(pi.param) == sim::Engine::kCycle ? "Cycle" : "Skip") +
          "_" + std::get<1>(pi.param) + "_" + std::get<2>(pi.param) +
          (std::get<3>(pi.param) ? "_Fault" : "");
      for (char& c : n)
        if (c == '-' || c == '/') c = '_';
      return n;
    });

TEST(Ckpt, GracefulStopSavesAndResumes) {
  // SIGTERM path: the stop snapshot is written at the exact stop tick, so the
  // resumed run replays nothing and still matches the baseline byte for byte.
  const sim::Workload w = sim::workload_by_name("2MEM-1");
  const sim::SystemConfig cfg = base_config(sim::Engine::kSkip, w.cores(), false);
  const std::string baseline = run_once(cfg, w, "HF-RF");

  const std::string path = tmp_path("graceful.ckpt");
  std::remove(path.c_str());
  ckpt::CheckpointPolicy p;
  p.path = path;
  p.interval_ticks = 0;  // stop snapshot only
  p.stop_at_tick = 1'777;  // the full run spans ~2.2k ticks
  EXPECT_THROW(run_once(cfg, w, "HF-RF", p), ckpt::CheckpointStop);
  EXPECT_TRUE(std::ifstream(path, std::ios::binary).good());

  ckpt::ResumeInfo info;
  ckpt::CheckpointPolicy fin;
  fin.path = path;
  fin.resume_info = &info;
  EXPECT_EQ(run_once(cfg, w, "HF-RF", fin), baseline);
  EXPECT_TRUE(info.resumed) << info.error;
}

TEST(Ckpt, FinishedSnapshotIsIdempotent) {
  // A completed checkpointed run leaves a finished=true snapshot; re-running
  // the same command restores it and reports identically without simulating.
  const sim::Workload w = sim::workload_by_name("2MEM-1");
  const sim::SystemConfig cfg = base_config(sim::Engine::kSkip, w.cores(), false);
  const std::string path = tmp_path("finished.ckpt");
  std::remove(path.c_str());
  ckpt::CheckpointPolicy p;
  p.path = path;
  const std::string first = run_once(cfg, w, "HF-RF", p);
  ckpt::ResumeInfo info;
  p.resume_info = &info;
  EXPECT_EQ(run_once(cfg, w, "HF-RF", p), first);
  EXPECT_TRUE(info.resumed) << info.error;
}

TEST(Ckpt, CorruptSnapshotFallsBackCleanly) {
  const sim::Workload w = sim::workload_by_name("2MEM-1");
  const sim::SystemConfig cfg = base_config(sim::Engine::kSkip, w.cores(), false);
  const std::string baseline = run_once(cfg, w, "HF-RF");

  const std::string path = tmp_path("corrupt.ckpt");
  std::remove(path.c_str());
  ckpt::CheckpointPolicy p;
  p.path = path;
  p.interval_ticks = 1'000;
  p.save_on_stop = false;
  p.stop_at_tick = 1'500;
  EXPECT_THROW(run_once(cfg, w, "HF-RF", p), ckpt::CheckpointStop);

  // Corrupt the parked snapshot (payload bit flip) — resume must fall back
  // to cycle zero with a diagnostic and still produce the exact baseline.
  auto bytes = read_file(path);
  bytes[bytes.size() / 2] ^= 0x10;
  write_file(path, bytes);

  ckpt::ResumeInfo info;
  ckpt::CheckpointPolicy fin;
  fin.path = path;
  fin.resume_info = &info;
  EXPECT_EQ(run_once(cfg, w, "HF-RF", fin), baseline);
  EXPECT_TRUE(info.attempted);
  EXPECT_FALSE(info.resumed);
  EXPECT_FALSE(info.error.empty());
}

TEST(Ckpt, GarbageFileFallsBackCleanly) {
  const sim::Workload w = sim::workload_by_name("2MEM-1");
  const sim::SystemConfig cfg = base_config(sim::Engine::kCycle, w.cores(), false);
  const std::string baseline = run_once(cfg, w, "HF-RF");
  const std::string path = tmp_path("garbage.ckpt");
  write_file(path, {'n', 'o', 't', ' ', 'a', ' ', 's', 'n', 'a', 'p'});
  ckpt::ResumeInfo info;
  ckpt::CheckpointPolicy p;
  p.path = path;
  p.resume_info = &info;
  EXPECT_EQ(run_once(cfg, w, "HF-RF", p), baseline);
  EXPECT_TRUE(info.attempted);
  EXPECT_FALSE(info.resumed);
}

TEST(Ckpt, CrossEngineResumeInvalidates) {
  // Satellite-2 regression at the snapshot layer: engine= participates in
  // the run fingerprint, so a cycle-engine snapshot must NOT resume a
  // skip-engine run — it falls back and recomputes from scratch.
  const sim::Workload w = sim::workload_by_name("2MEM-1");
  const sim::SystemConfig cyc = base_config(sim::Engine::kCycle, w.cores(), false);
  const sim::SystemConfig skp = base_config(sim::Engine::kSkip, w.cores(), false);
  const std::string baseline_skip = run_once(skp, w, "HF-RF");

  const std::string path = tmp_path("xengine.ckpt");
  std::remove(path.c_str());
  ckpt::CheckpointPolicy p;
  p.path = path;
  p.stop_at_tick = 1'200;
  EXPECT_THROW(run_once(cyc, w, "HF-RF", p), ckpt::CheckpointStop);

  ckpt::ResumeInfo info;
  ckpt::CheckpointPolicy fin;
  fin.path = path;
  fin.resume_info = &info;
  EXPECT_EQ(run_once(skp, w, "HF-RF", fin), baseline_skip);
  EXPECT_TRUE(info.attempted);
  EXPECT_FALSE(info.resumed);
  EXPECT_NE(info.error.find("fingerprint"), std::string::npos) << info.error;
}

TEST(Ckpt, AuditorAndCheckpointAreIncompatible) {
  const sim::Workload w = sim::workload_by_name("2MEM-1");
  sim::SystemConfig cfg = base_config(sim::Engine::kCycle, w.cores(), false);
  cfg.audit.enabled = true;
  ckpt::CheckpointPolicy p;
  p.path = tmp_path("audit_reject.ckpt");
  EXPECT_THROW(run_once(cfg, w, "HF-RF", p), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Open-loop kill-and-resume differential.
// ---------------------------------------------------------------------------

void expect_open_loop_equal(const sim::OpenLoopResult& a, const sim::OpenLoopResult& b) {
  EXPECT_EQ(a.offered_per_tick, b.offered_per_tick);
  EXPECT_EQ(a.accepted_per_tick, b.accepted_per_tick);
  EXPECT_EQ(a.rejected_share, b.rejected_share);
  EXPECT_EQ(a.avg_read_latency_ticks, b.avg_read_latency_ticks);
  EXPECT_EQ(a.p50_ticks, b.p50_ticks);
  EXPECT_EQ(a.p90_ticks, b.p90_ticks);
  EXPECT_EQ(a.p99_ticks, b.p99_ticks);
  EXPECT_EQ(a.row_hit_rate, b.row_hit_rate);
  EXPECT_EQ(a.data_bus_utilization, b.data_bus_utilization);
}

class OpenLoopKillResume : public ::testing::TestWithParam<sim::Engine> {};

TEST_P(OpenLoopKillResume, ByteIdenticalResult) {
  sim::OpenLoopConfig cfg;
  cfg.engine = GetParam();
  cfg.audit.enabled = false;
  cfg.measure_ticks = 20'000;
  cfg.fault.enabled = true;
  cfg.fault.seed = 3;
  cfg.fault.delay_prob = 0.02;

  const sched::SchedulerPtr ref = make_sched("HF-RF", cfg.cores);
  const sim::OpenLoopResult baseline = sim::run_open_loop(cfg, *ref);

  const std::string path = tmp_path(
      std::string("openloop_") + (cfg.engine == sim::Engine::kCycle ? "cyc" : "skp") +
      ".ckpt");
  std::remove(path.c_str());
  ckpt::CheckpointPolicy p;
  p.path = path;
  p.interval_ticks = 1'000;
  p.save_on_stop = false;
  for (const Tick kill : {Tick{2'345}, Tick{11'003}}) {
    ckpt::CheckpointPolicy kp = p;
    kp.stop_at_tick = kill;
    const sched::SchedulerPtr s = make_sched("HF-RF", cfg.cores);
    EXPECT_THROW(sim::run_open_loop(cfg, *s, kp), ckpt::CheckpointStop);
  }
  ckpt::ResumeInfo info;
  ckpt::CheckpointPolicy fin = p;
  fin.resume_info = &info;
  const sched::SchedulerPtr s = make_sched("HF-RF", cfg.cores);
  expect_open_loop_equal(sim::run_open_loop(cfg, *s, fin), baseline);
  EXPECT_TRUE(info.resumed) << info.error;
}

INSTANTIATE_TEST_SUITE_P(Engines, OpenLoopKillResume,
                         ::testing::Values(sim::Engine::kCycle, sim::Engine::kSkip),
                         [](const auto& pi) {
                           return pi.param == sim::Engine::kCycle ? "Cycle" : "Skip";
                         });

TEST(OpenLoopCkpt, AuditorRejected) {
  sim::OpenLoopConfig cfg;
  cfg.audit.enabled = true;
  ckpt::CheckpointPolicy p;
  p.path = tmp_path("openloop_audit.ckpt");
  const sched::SchedulerPtr s = make_sched("HF-RF", cfg.cores);
  EXPECT_THROW(sim::run_open_loop(cfg, *s, p), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Signal plumbing.
// ---------------------------------------------------------------------------

TEST(CkptSignal, SigtermParksTheRun) {
  ckpt::install_stop_handlers();
  ckpt::reset_stop_for_tests();
  ASSERT_FALSE(ckpt::stop_requested());
  std::raise(SIGTERM);
  EXPECT_TRUE(ckpt::stop_requested());

  const sim::Workload w = sim::workload_by_name("2MEM-1");
  const sim::SystemConfig cfg = base_config(sim::Engine::kSkip, w.cores(), false);
  const std::string path = tmp_path("signal.ckpt");
  std::remove(path.c_str());
  ckpt::CheckpointPolicy p;
  p.path = path;
  p.stop = &ckpt::stop_flag();
  EXPECT_THROW(run_once(cfg, w, "HF-RF", p), ckpt::CheckpointStop);
  EXPECT_TRUE(std::ifstream(path, std::ios::binary).good());

  ckpt::reset_stop_for_tests();
  EXPECT_FALSE(ckpt::stop_requested());
  // With the flag cleared the parked run resumes and completes normally.
  ckpt::ResumeInfo info;
  ckpt::CheckpointPolicy fin;
  fin.path = path;
  fin.stop = &ckpt::stop_flag();
  fin.resume_info = &info;
  EXPECT_EQ(run_once(cfg, w, "HF-RF", fin), run_once(cfg, w, "HF-RF"));
  EXPECT_TRUE(info.resumed) << info.error;
}

}  // namespace
}  // namespace memsched
