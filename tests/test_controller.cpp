// Unit tests for src/mc: queues, drain hysteresis, forwarding, close-page
// command engine, completion delivery, statistics.
#include <gtest/gtest.h>

#include <vector>

#include "dram/dram_system.hpp"
#include "mc/controller.hpp"
#include "sched/policies.hpp"

namespace memsched::mc {
namespace {

struct Harness {
  dram::DramSystem dram{dram::Timing{}, dram::Organization{}, dram::Interleave::kHybrid};
  sched::HitFirstReadFirstScheduler sched;
  ControllerConfig cfg{};
  MemoryController mcu;
  std::vector<std::pair<RequestId, Tick>> completions;
  Tick now = 0;

  explicit Harness(ControllerConfig c = {})
      : cfg(c), mcu(dram, sched, cfg, /*core_count=*/4, /*seed=*/1) {
    mcu.set_read_callback([this](const Request& r, Tick done) {
      completions.emplace_back(r.id, done);
    });
  }

  void run_ticks(Tick n) {
    for (Tick i = 0; i < n; ++i) mcu.tick(now++);
  }
  void run_until_idle(Tick limit = 10'000) {
    while (!mcu.idle() && limit--) mcu.tick(now++);
    ASSERT_TRUE(mcu.idle()) << "controller failed to drain";
  }

  /// Address targeting a specific channel/bank/row.
  Addr addr(std::uint32_t ch, std::uint32_t bank, std::uint64_t row,
            std::uint64_t col = 0) const {
    dram::DramAddress da{ch, bank, row, col};
    return dram.address_map().encode(da);
  }
};

TEST(Controller, AcceptsUntilBufferFull) {
  Harness h;
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(h.mcu.enqueue_read(i % 4, h.addr(0, i % 8, i, i % 16), 0));
  }
  EXPECT_FALSE(h.mcu.can_accept());
  EXPECT_FALSE(h.mcu.enqueue_read(0, h.addr(1, 0, 99), 0));
}

TEST(Controller, CompletesAllReads) {
  Harness h;
  for (std::uint32_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(h.mcu.enqueue_read(i % 4, h.addr(i % 2, (i / 2) % 8, i), 0));
  }
  h.run_until_idle();
  EXPECT_EQ(h.completions.size(), 16u);
  EXPECT_EQ(h.mcu.stats().reads_served, 16u);
}

TEST(Controller, ReadLatencyAtLeastDeviceMinimum) {
  Harness h;
  ASSERT_TRUE(h.mcu.enqueue_read(0, h.addr(0, 0, 5), 0));
  h.run_until_idle();
  ASSERT_EQ(h.completions.size(), 1u);
  const dram::Timing& t = h.dram.timing();
  const Tick min_ticks = h.cfg.overhead_ticks + t.tRCD + t.tCL + t.burst_cycles;
  EXPECT_GE(h.completions[0].second, min_ticks);
  EXPECT_GE(h.mcu.stats().read_latency_cpu.min(),
            static_cast<double>(min_ticks * h.cfg.cpu_ratio));
}

TEST(Controller, OverheadDelaysScheduling) {
  Harness h;
  ASSERT_TRUE(h.mcu.enqueue_read(0, h.addr(0, 0, 1), 0));
  // Within the overhead window nothing can be scheduled.
  for (Tick i = 0; i < h.cfg.overhead_ticks; ++i) h.mcu.tick(h.now++);
  EXPECT_EQ(h.mcu.stats().sched_rounds, 0u);
  h.run_until_idle();
  EXPECT_EQ(h.mcu.stats().sched_rounds, 1u);
}

TEST(Controller, ReadAfterWriteForwards) {
  Harness h;
  const Addr a = h.addr(0, 0, 7);
  ASSERT_TRUE(h.mcu.enqueue_write(1, a, 0));
  ASSERT_TRUE(h.mcu.enqueue_read(2, a, 0));
  EXPECT_EQ(h.mcu.stats().read_forwards, 1u);
  EXPECT_EQ(h.mcu.queued_reads(), 0u);  // never entered the read queue
  h.run_until_idle();
  ASSERT_EQ(h.completions.size(), 1u);
  // Forwarded read completes after the pipeline overhead only.
  EXPECT_EQ(h.completions[0].second, h.cfg.overhead_ticks);
}

TEST(Controller, ForwardingDisabledGoesToDram) {
  ControllerConfig cfg;
  cfg.forward_writes = false;
  Harness h(cfg);
  const Addr a = h.addr(0, 0, 7);
  ASSERT_TRUE(h.mcu.enqueue_write(1, a, 0));
  ASSERT_TRUE(h.mcu.enqueue_read(2, a, 0));
  EXPECT_EQ(h.mcu.stats().read_forwards, 0u);
  EXPECT_EQ(h.mcu.queued_reads(), 1u);
}

TEST(Controller, DuplicateWritesCombine) {
  Harness h;
  const Addr a = h.addr(1, 3, 9);
  ASSERT_TRUE(h.mcu.enqueue_write(0, a, 0));
  ASSERT_TRUE(h.mcu.enqueue_write(0, a, 0));
  EXPECT_EQ(h.mcu.stats().write_merges, 1u);
  EXPECT_EQ(h.mcu.queued_writes(), 1u);
}

TEST(Controller, DrainModeHysteresis) {
  Harness h;
  // Fill writes to the drain-high threshold (32).
  for (std::uint32_t i = 0; i < h.cfg.drain_high; ++i) {
    ASSERT_TRUE(h.mcu.enqueue_write(0, h.addr(i % 2, (i / 2) % 8, 100 + i), 0));
  }
  EXPECT_TRUE(h.mcu.drain_mode());
  EXPECT_EQ(h.mcu.stats().drain_entries, 1u);
  // Served writes bring the queue down to drain-low, then the mode clears.
  while (h.mcu.drain_mode()) {
    h.mcu.tick(h.now++);
    ASSERT_LT(h.now, 100'000u);
  }
  EXPECT_LE(h.mcu.queued_writes(), h.cfg.drain_low);
}

TEST(Controller, ReadsBypassOlderWrites) {
  Harness h;
  // A write arrives first, then a read to a different row of the same bank.
  ASSERT_TRUE(h.mcu.enqueue_write(0, h.addr(0, 0, 1), 0));
  ASSERT_TRUE(h.mcu.enqueue_read(1, h.addr(0, 0, 2), 0));
  h.run_until_idle();
  // The read must have been scheduled before the write: its transaction
  // starts first, so reads_served increments before writes_served. Verify
  // via latency: read latency equals the no-contention minimum.
  const dram::Timing& t = h.dram.timing();
  const Tick min_ticks = h.cfg.overhead_ticks + t.tRCD + t.tCL + t.burst_cycles;
  EXPECT_LE(h.completions[0].second, min_ticks + 2);
}

TEST(Controller, RowHitDetectedForQueuedSameRowRequests) {
  Harness h;
  // Two reads to the same (channel, bank, row), different columns: the
  // engine keeps the row open for the second, which becomes a row hit.
  ASSERT_TRUE(h.mcu.enqueue_read(0, h.addr(0, 0, 4, 0), 0));
  ASSERT_TRUE(h.mcu.enqueue_read(1, h.addr(0, 0, 4, 3), 0));
  h.run_until_idle();
  EXPECT_EQ(h.mcu.stats().row_hits, 1u);
  EXPECT_EQ(h.mcu.stats().row_closed, 1u);
  EXPECT_EQ(h.mcu.stats().row_conflicts, 0u);
}

TEST(Controller, RowConflictWhenRowLeftOpenForAbsentHit) {
  Harness h;
  // First two reads share a row (second kept open). A third to a different
  // row of the same bank arrives while the row is still open -> conflict
  // (needs PRE first) unless it was already auto-precharged.
  ASSERT_TRUE(h.mcu.enqueue_read(0, h.addr(0, 2, 4, 0), 0));
  ASSERT_TRUE(h.mcu.enqueue_read(1, h.addr(0, 2, 4, 1), 0));
  ASSERT_TRUE(h.mcu.enqueue_read(2, h.addr(0, 2, 9, 0), 0));
  h.run_until_idle();
  EXPECT_EQ(h.completions.size(), 3u);
  EXPECT_EQ(h.mcu.stats().row_hits, 1u);
  // Third request: either conflict (row 4 still open) or closed (already
  // precharged); both are legal outcomes of timing, but never a hit.
  EXPECT_EQ(h.mcu.stats().row_hits + h.mcu.stats().row_closed +
                h.mcu.stats().row_conflicts,
            3u);
}

TEST(Controller, PendingCountersTrackLifecycle) {
  Harness h;
  ASSERT_TRUE(h.mcu.enqueue_read(2, h.addr(0, 0, 1), 0));
  ASSERT_TRUE(h.mcu.enqueue_read(2, h.addr(1, 0, 1), 0));
  ASSERT_TRUE(h.mcu.enqueue_write(3, h.addr(0, 1, 1), 0));
  EXPECT_EQ(h.mcu.pending_reads(2), 2u);
  EXPECT_EQ(h.mcu.pending_writes(3), 1u);
  h.run_until_idle();
  EXPECT_EQ(h.mcu.pending_reads(2), 0u);
  EXPECT_EQ(h.mcu.pending_writes(3), 0u);
}

TEST(Controller, PerCoreStatsAttribution) {
  Harness h;
  ASSERT_TRUE(h.mcu.enqueue_read(1, h.addr(0, 0, 1), 0));
  ASSERT_TRUE(h.mcu.enqueue_read(3, h.addr(1, 1, 2), 0));
  ASSERT_TRUE(h.mcu.enqueue_write(0, h.addr(0, 5, 3), 0));
  h.run_until_idle();
  EXPECT_EQ(h.mcu.stats().core_reads[1], 1u);
  EXPECT_EQ(h.mcu.stats().core_reads[3], 1u);
  EXPECT_EQ(h.mcu.stats().core_writes[0], 1u);
  EXPECT_EQ(h.mcu.stats().core_read_latency_cpu[1].count(), 1u);
  EXPECT_EQ(h.mcu.stats().core_read_latency_cpu[2].count(), 0u);
}

TEST(Controller, ResetStatsClearsCountersOnly) {
  Harness h;
  ASSERT_TRUE(h.mcu.enqueue_read(0, h.addr(0, 0, 1), 0));
  h.run_until_idle();
  ASSERT_EQ(h.mcu.stats().reads_served, 1u);
  h.mcu.reset_stats();
  EXPECT_EQ(h.mcu.stats().reads_served, 0u);
  EXPECT_EQ(h.mcu.stats().read_latency_cpu.count(), 0u);
  ASSERT_EQ(h.mcu.stats().core_reads.size(), 4u);
  // Controller still functional after the reset.
  ASSERT_TRUE(h.mcu.enqueue_read(0, h.addr(0, 0, 2), h.now));
  h.run_until_idle();
  EXPECT_EQ(h.mcu.stats().reads_served, 1u);
}

TEST(Controller, CompletionOrderMonotonic) {
  Harness h;
  for (std::uint32_t i = 0; i < 24; ++i) {
    ASSERT_TRUE(h.mcu.enqueue_read(i % 4, h.addr(i % 2, (i / 2) % 8, i, i % 32), 0));
  }
  h.run_until_idle();
  for (std::size_t i = 1; i < h.completions.size(); ++i) {
    EXPECT_GE(h.completions[i].second, h.completions[i - 1].second);
  }
}

TEST(Controller, RefreshStallsTraffic) {
  dram::Timing t;
  t.refresh_enabled = true;
  t.tREFI = 200;
  dram::DramSystem dram(t, dram::Organization{}, dram::Interleave::kHybrid);
  sched::HitFirstReadFirstScheduler sched;
  MemoryController mcu(dram, sched, ControllerConfig{}, 1, 1);
  std::size_t completed = 0;
  mcu.set_read_callback([&](const Request&, Tick) { ++completed; });
  // Steady trickle of reads across a few refresh intervals; the buffer may
  // back-pressure while a refresh drains, so count what was accepted.
  Tick now = 0;
  std::uint64_t row = 0;
  std::size_t accepted = 0;
  for (; now < 1000; ++now) {
    if (now % 10 == 0) {
      accepted += mcu.enqueue_read(0, dram.address_map().encode({0, 0, ++row, 0}), now);
    }
    mcu.tick(now);
  }
  while (!mcu.idle()) mcu.tick(now++);
  EXPECT_EQ(completed, accepted);  // nothing lost across refreshes
  EXPECT_GT(completed, 50u);
}

TEST(Controller, OpenPageKeepsRowsOpen) {
  ControllerConfig cfg;
  cfg.page_policy = PagePolicy::kOpenPage;
  Harness h(cfg);
  // Two same-row reads far apart in time: under open page the row stays
  // open after the first even though nothing is queued, so the second is a
  // hit; under close page it would auto-precharge.
  ASSERT_TRUE(h.mcu.enqueue_read(0, h.addr(0, 0, 4, 0), 0));
  h.run_until_idle();
  ASSERT_TRUE(h.mcu.enqueue_read(0, h.addr(0, 0, 4, 5), h.now));
  h.run_until_idle();
  EXPECT_EQ(h.mcu.stats().row_hits, 1u);
  EXPECT_EQ(h.mcu.stats().row_closed, 1u);
}

TEST(Controller, ClosePageAutoPrechargesIdleRows) {
  Harness h;  // default close page
  ASSERT_TRUE(h.mcu.enqueue_read(0, h.addr(0, 0, 4, 0), 0));
  h.run_until_idle();
  ASSERT_TRUE(h.mcu.enqueue_read(0, h.addr(0, 0, 4, 5), h.now));
  h.run_until_idle();
  // Same row, but the row was closed in between: both accesses miss.
  EXPECT_EQ(h.mcu.stats().row_hits, 0u);
  EXPECT_EQ(h.mcu.stats().row_closed, 2u);
}

TEST(Controller, OpenPageConflictPaysPrecharge) {
  ControllerConfig cfg;
  cfg.page_policy = PagePolicy::kOpenPage;
  Harness h(cfg);
  ASSERT_TRUE(h.mcu.enqueue_read(0, h.addr(0, 0, 4, 0), 0));
  h.run_until_idle();
  ASSERT_TRUE(h.mcu.enqueue_read(0, h.addr(0, 0, 9, 0), h.now));
  h.run_until_idle();
  EXPECT_EQ(h.mcu.stats().row_conflicts, 1u);
}

TEST(Controller, AdaptivePolicyLearnsToKeepHotRowsOpen) {
  ControllerConfig cfg;
  cfg.page_policy = PagePolicy::kAdaptive;
  Harness h(cfg);
  // Repeatedly touch the same row with idle gaps: the predictor starts
  // weakly-open, so the second access already hits, and hits keep it open.
  std::uint64_t hits_before = 0;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(h.mcu.enqueue_read(0, h.addr(0, 0, 4, static_cast<std::uint64_t>(i)), h.now));
    h.run_until_idle();
  }
  hits_before = h.mcu.stats().row_hits;
  EXPECT_GE(hits_before, 4u);
}

TEST(Controller, AdaptivePolicyLearnsToCloseConflictingRows) {
  ControllerConfig cfg;
  cfg.page_policy = PagePolicy::kAdaptive;
  Harness h(cfg);
  // Alternate rows on one bank with idle gaps: every open row is wrong, so
  // the predictor must fall to "close" and stop paying conflict penalties.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(h.mcu.enqueue_read(0, h.addr(0, 0, 4 + static_cast<std::uint64_t>(i % 2) * 7, 0), h.now));
    h.run_until_idle();
  }
  // After the predictor trains (a few conflicts), later accesses find the
  // bank closed: conflicts must be bounded, not one per access.
  EXPECT_LT(h.mcu.stats().row_conflicts, 6u);
  EXPECT_GT(h.mcu.stats().row_closed, 6u);
}

TEST(Controller, LatencyHistogramTracksSamples) {
  Harness h;
  for (std::uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(h.mcu.enqueue_read(0, h.addr(i % 2, (i / 2) % 8, i), 0));
  }
  h.run_until_idle();
  const auto& st = h.mcu.stats();
  EXPECT_EQ(st.read_latency_hist.count(), st.read_latency_cpu.count());
  // The histogram median must sit near the running-stat mean for this
  // narrow distribution.
  EXPECT_NEAR(st.read_latency_hist.quantile(0.5), st.read_latency_cpu.mean(),
              st.read_latency_cpu.mean() * 0.5 + 64.0);
}

TEST(Controller, WritesServedWhenNoReads) {
  Harness h;
  ASSERT_TRUE(h.mcu.enqueue_write(0, h.addr(0, 0, 1), 0));
  h.run_until_idle();
  EXPECT_EQ(h.mcu.stats().writes_served, 1u);
}

TEST(Controller, TraceSinkObservesEveryTransaction) {
  Harness h;
  std::vector<std::pair<RequestId, RowState>> seen;
  h.mcu.set_trace_sink([&](const Request& r, RowState s, Tick) {
    seen.emplace_back(r.id, s);
  });
  ASSERT_TRUE(h.mcu.enqueue_read(0, h.addr(0, 0, 4, 0), 0));
  ASSERT_TRUE(h.mcu.enqueue_read(1, h.addr(0, 0, 4, 1), 0));
  ASSERT_TRUE(h.mcu.enqueue_write(2, h.addr(1, 3, 9), 0));
  h.run_until_idle();
  ASSERT_EQ(seen.size(), 3u);
  // The second same-row read was a hit.
  int hits = 0;
  for (const auto& [id, st] : seen) hits += st == RowState::kHit;
  EXPECT_EQ(hits, 1);
}

TEST(Controller, IdleReflectsOutstandingWork) {
  Harness h;
  EXPECT_TRUE(h.mcu.idle());
  ASSERT_TRUE(h.mcu.enqueue_read(0, h.addr(0, 0, 1), 0));
  EXPECT_FALSE(h.mcu.idle());
  h.run_until_idle();
  EXPECT_TRUE(h.mcu.idle());
}

}  // namespace
}  // namespace memsched::mc
