// Unit tests for src/dram: timing parameters, address mapping, bank state
// machine, channel bus arbitration.
#include <gtest/gtest.h>

#include <set>

#include "dram/address_map.hpp"
#include "dram/bank.hpp"
#include "dram/channel.hpp"
#include "dram/dram_system.hpp"
#include "dram/power.hpp"
#include "dram/timing.hpp"
#include "util/rng.hpp"

namespace memsched::dram {
namespace {

Timing ddr2() { return Timing{}; }

// ------------------------------------------------------------- timing -----

TEST(Timing, DefaultsAreValidDdr2_800) {
  const Timing t;
  EXPECT_TRUE(t.validate().empty()) << t.validate();
  EXPECT_EQ(t.tCL, 5u);
  EXPECT_EQ(t.tRCD, 5u);
  EXPECT_EQ(t.tRP, 5u);
  EXPECT_EQ(t.tRC(), t.tRAS + t.tRP);
  EXPECT_EQ(t.min_read_cycles(), 5u + 5u + 2u);
}

TEST(Timing, RejectsZeroCoreParams) {
  Timing t;
  t.tCL = 0;
  EXPECT_FALSE(t.validate().empty());
}

TEST(Timing, RejectsWriteLatencyAboveCas) {
  Timing t;
  t.tWL = t.tCL + 1;
  EXPECT_FALSE(t.validate().empty());
}

TEST(Timing, RejectsRefreshIntervalBelowRfc) {
  Timing t;
  t.refresh_enabled = true;
  t.tREFI = t.tRFC;
  EXPECT_FALSE(t.validate().empty());
}

TEST(Timing, RefreshIntervalUncheckedWhileRefreshDisabled) {
  Timing t;
  t.tREFI = t.tRFC;  // inconsistent, but the refresh machinery is off
  EXPECT_TRUE(t.validate().empty());
}

TEST(Timing, RejectsRasShorterThanRcd) {
  Timing t;
  t.tRAS = t.tRCD - 1;
  EXPECT_FALSE(t.validate().empty());
}

TEST(Timing, RejectsZeroBurst) {
  Timing t;
  t.burst_cycles = 0;
  EXPECT_FALSE(t.validate().empty());
}

TEST(Timing, RejectsFawBelowRrd) {
  Timing t;
  t.tFAW = t.tRRD - 1;
  EXPECT_FALSE(t.validate().empty());
}

TEST(Timing, AcceptsWriteLatencyEqualToCas) {
  Timing t;
  t.tWL = t.tCL;  // DDR2 allows tWL up to tCL (nominally tCL - 1)
  EXPECT_TRUE(t.validate().empty()) << t.validate();
}

TEST(Organization, Table1Defaults) {
  const Organization o;
  EXPECT_TRUE(o.validate().empty());
  EXPECT_EQ(o.channels, 2u);
  EXPECT_EQ(o.banks_per_channel(), 8u);
  EXPECT_EQ(o.total_banks(), 16u);
  EXPECT_EQ(o.lines_per_row(), 128u);
  // Table 1: 12.8 GB/s per logic channel.
  EXPECT_NEAR(o.peak_bandwidth_gbs(), 25.6, 1e-9);
}

TEST(Organization, RejectsNonPow2) {
  Organization o;
  o.banks_per_dimm = 3;
  EXPECT_FALSE(o.validate().empty());
}

TEST(Organization, RejectsTooSmallCapacity) {
  Organization o;
  o.capacity_bytes = o.row_bytes;  // fewer rows than banks
  EXPECT_FALSE(o.validate().empty());
}

TEST(Organization, RejectsZeroDimensions) {
  for (int field = 0; field < 3; ++field) {
    Organization o;
    if (field == 0) o.channels = 0;
    if (field == 1) o.dimms_per_channel = 0;
    if (field == 2) o.banks_per_dimm = 0;
    EXPECT_FALSE(o.validate().empty()) << "field " << field;
  }
}

TEST(Organization, RejectsRowSmallerThanLine) {
  Organization o;
  o.row_bytes = kLineBytes / 2;
  EXPECT_FALSE(o.validate().empty());
}

TEST(Organization, RejectsNonPow2RowBytes) {
  Organization o;
  o.row_bytes = 8192 + 64;
  EXPECT_FALSE(o.validate().empty());
}

TEST(Organization, RejectsNonPow2Capacity) {
  Organization o;
  o.capacity_bytes = (std::uint64_t{4} << 30) + 4096;
  EXPECT_FALSE(o.validate().empty());
}

TEST(Organization, MinimalSingleRowPerBankValidates) {
  Organization o;
  o.capacity_bytes = static_cast<std::uint64_t>(o.total_banks()) * o.row_bytes;
  EXPECT_TRUE(o.validate().empty()) << o.validate();
  EXPECT_EQ(o.rows_per_bank(), 1u);
}

// -------------------------------------------------------- address map -----

class AddressMapRoundTrip : public ::testing::TestWithParam<Interleave> {};

TEST_P(AddressMapRoundTrip, DecodeEncodeIsIdentityOnRandomLines) {
  const Organization org;
  const AddressMap map(org, GetParam());
  util::Xoshiro256 rng(77);
  for (int i = 0; i < 2000; ++i) {
    const Addr a = (rng.below(org.capacity_bytes)) & ~static_cast<Addr>(63);
    const DramAddress da = map.decode(a);
    EXPECT_EQ(map.encode(da), a);
    EXPECT_LT(da.channel, org.channels);
    EXPECT_LT(da.bank, org.banks_per_channel());
    EXPECT_LT(da.row, org.rows_per_bank());
    EXPECT_LT(da.col_line, org.lines_per_row());
  }
}

TEST_P(AddressMapRoundTrip, SameLineDifferentOffsetsDecodeEqually) {
  const Organization org;
  const AddressMap map(org, GetParam());
  EXPECT_EQ(map.decode(0x12340), map.decode(0x12340 + 63));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, AddressMapRoundTrip,
                         ::testing::Values(Interleave::kLineInterleave,
                                           Interleave::kPageInterleave,
                                           Interleave::kHybrid),
                         [](const auto& pi) {
                           return AddressMap::scheme_name(pi.param) ==
                                          "line-interleave"
                                      ? std::string("Line")
                                  : AddressMap::scheme_name(pi.param) ==
                                          "page-interleave"
                                      ? std::string("Page")
                                      : std::string("Hybrid");
                         });

TEST(AddressMap, LineInterleaveRotatesChannelsFirst) {
  const Organization org;
  const AddressMap map(org, Interleave::kLineInterleave);
  const DramAddress a = map.decode(0);
  const DramAddress b = map.decode(64);
  EXPECT_NE(a.channel, b.channel);
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(a.row, b.row);
}

TEST(AddressMap, HybridKeepsSequentialLinesInOneRowPerChannel) {
  const Organization org;
  const AddressMap map(org, Interleave::kHybrid);
  // Lines 0 and 2 are on the same channel; with channel bit lowest and
  // column bits next, they share bank and row but differ in column.
  const DramAddress a = map.decode(0);
  const DramAddress b = map.decode(2 * 64);
  EXPECT_EQ(a.channel, b.channel);
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(a.row, b.row);
  EXPECT_NE(a.col_line, b.col_line);
  // Consecutive lines alternate channels.
  EXPECT_NE(map.decode(0).channel, map.decode(64).channel);
}

TEST(AddressMap, PageInterleaveFillsRowBeforeSwitching) {
  const Organization org;
  const AddressMap map(org, Interleave::kPageInterleave);
  const DramAddress a = map.decode(0);
  const DramAddress b = map.decode(64);
  EXPECT_EQ(a.channel, b.channel);
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(a.row, b.row);
}

TEST(AddressMap, HybridCoversAllBanks) {
  const Organization org;
  const AddressMap map(org, Interleave::kHybrid);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  // A full row-span of sequential lines must touch every (channel, bank).
  const std::uint64_t span =
      org.lines_per_row() * org.banks_per_channel() * org.channels;
  for (std::uint64_t line = 0; line < span; ++line) {
    const DramAddress da = map.decode(line * 64);
    seen.insert({da.channel, da.bank});
  }
  EXPECT_EQ(seen.size(), org.total_banks());
}

// ---------------------------------------------------------------- bank ----

TEST(Bank, ActivateThenCasTiming) {
  const Timing t = ddr2();
  Bank b(t);
  EXPECT_TRUE(b.can_activate(0));
  EXPECT_FALSE(b.can_cas(0));
  b.issue_activate(0, 42);
  EXPECT_TRUE(b.row_open());
  EXPECT_EQ(b.open_row(), 42u);
  EXPECT_FALSE(b.can_activate(1));  // row open
  EXPECT_FALSE(b.can_cas(t.tRCD - 1));
  EXPECT_TRUE(b.can_cas(t.tRCD));
}

TEST(Bank, PrechargeRespectsTras) {
  const Timing t = ddr2();
  Bank b(t);
  b.issue_activate(0, 1);
  EXPECT_FALSE(b.can_precharge(t.tRAS - 1));
  EXPECT_TRUE(b.can_precharge(t.tRAS));
  b.issue_precharge(t.tRAS);
  EXPECT_FALSE(b.row_open());
  EXPECT_FALSE(b.can_activate(t.tRAS + t.tRP - 1));
  EXPECT_TRUE(b.can_activate(t.tRAS + t.tRP));
}

TEST(Bank, SameBankActsSeparatedByTrc) {
  const Timing t = ddr2();
  Bank b(t);
  b.issue_activate(0, 1);
  b.issue_read(t.tRCD, /*auto_precharge=*/true);
  // Auto-precharge: earliest next ACT >= tRC from the first ACT.
  EXPECT_GE(b.earliest_activate(), static_cast<Tick>(t.tRC()));
  EXPECT_FALSE(b.row_open());
}

TEST(Bank, ReadWithoutAutoPrechargeKeepsRowOpen) {
  const Timing t = ddr2();
  Bank b(t);
  b.issue_activate(0, 9);
  b.issue_read(t.tRCD, /*auto_precharge=*/false);
  EXPECT_TRUE(b.row_open());
  EXPECT_EQ(b.open_row(), 9u);
  // A second CAS to the open row is legal immediately (bank-local view).
  EXPECT_TRUE(b.can_cas(t.tRCD + 1));
}

TEST(Bank, WriteRecoveryDelaysPrecharge) {
  const Timing t = ddr2();
  Bank b(t);
  b.issue_activate(0, 3);
  const Tick w = t.tRCD;
  b.issue_write(w, /*auto_precharge=*/false);
  const Tick write_done = w + t.tWL + t.burst_cycles + t.tWR;
  EXPECT_FALSE(b.can_precharge(write_done - 1));
  EXPECT_TRUE(b.can_precharge(std::max<Tick>(write_done, t.tRAS)));
}

TEST(Bank, RefreshBlocksBank) {
  Timing t = ddr2();
  Bank b(t);
  b.issue_refresh(0);
  EXPECT_FALSE(b.can_activate(t.tRFC - 1));
  EXPECT_TRUE(b.can_activate(t.tRFC));
}

TEST(Bank, CountsActivatesAndPrecharges) {
  const Timing t = ddr2();
  Bank b(t);
  b.issue_activate(0, 1);
  b.issue_read(t.tRCD, true);
  EXPECT_EQ(b.activate_count(), 1u);
  EXPECT_EQ(b.precharge_count(), 1u);
}

// ------------------------------------------------------------- channel ----

TEST(Channel, OneCommandPerCycle) {
  const Timing t = ddr2();
  Channel ch(t, 8);
  ASSERT_TRUE(ch.can_activate(0, 0));
  ch.issue_activate(0, 1, 0);
  EXPECT_FALSE(ch.command_bus_free(0));
  EXPECT_FALSE(ch.can_activate(1, 0));  // same tick
  EXPECT_TRUE(ch.can_activate(1, t.tRRD));
}

TEST(Channel, TrrdBetweenActs) {
  const Timing t = ddr2();
  Channel ch(t, 8);
  ch.issue_activate(0, 1, 0);
  EXPECT_FALSE(ch.can_activate(1, t.tRRD - 1));
  EXPECT_TRUE(ch.can_activate(1, t.tRRD));
}

TEST(Channel, TfawLimitsFourActs) {
  const Timing t = ddr2();
  Channel ch(t, 8);
  Tick now = 0;
  for (std::uint32_t b = 0; b < 4; ++b) {
    while (!ch.can_activate(b, now)) ++now;
    ch.issue_activate(b, 1, now);
  }
  // The fifth ACT must wait until tFAW after the first.
  Tick fifth = now;
  while (!ch.can_activate(4, fifth)) ++fifth;
  EXPECT_GE(fifth, static_cast<Tick>(t.tFAW));
}

TEST(Channel, ReadReturnsDataEnd) {
  const Timing t = ddr2();
  Channel ch(t, 8);
  ch.issue_activate(0, 1, 0);
  const Tick cas = t.tRCD;
  ASSERT_TRUE(ch.can_read(0, cas));
  const Tick done = ch.issue_read(0, cas, true);
  EXPECT_EQ(done, cas + t.tCL + t.burst_cycles);
  EXPECT_EQ(ch.bursts(), 1u);
  EXPECT_EQ(ch.data_busy_cycles(), t.burst_cycles);
}

TEST(Channel, TccdBetweenColumnAccesses) {
  const Timing t = ddr2();
  Channel ch(t, 8);
  ch.issue_activate(0, 1, 0);
  ch.issue_activate(1, 1, t.tRRD);
  // Wait until BOTH banks are CAS-ready so only channel constraints remain.
  const Tick both_ready = t.tRRD + t.tRCD;
  ASSERT_TRUE(ch.can_read(0, both_ready));
  ch.issue_read(0, both_ready, false);
  EXPECT_FALSE(ch.can_read(1, both_ready + 1));  // tCCD = 2
  EXPECT_TRUE(ch.can_read(1, both_ready + t.tCCD));
}

TEST(Channel, WriteToReadTurnaround) {
  const Timing t = ddr2();
  Channel ch(t, 8);
  ch.issue_activate(0, 1, 0);
  ch.issue_activate(1, 2, t.tRRD);
  Tick w = t.tRCD;
  while (!ch.can_write(0, w)) ++w;
  ch.issue_write(0, w, false);
  const Tick write_end = w + t.tWL + t.burst_cycles;
  // Read CAS illegal until tWTR after the final write beat.
  EXPECT_FALSE(ch.can_read(1, write_end + t.tWTR - 1));
  EXPECT_TRUE(ch.can_read(1, write_end + t.tWTR));
}

TEST(Channel, ReadToWriteTurnaround) {
  const Timing t = ddr2();
  Channel ch(t, 8);
  ch.issue_activate(0, 1, 0);
  ch.issue_activate(1, 2, t.tRRD);
  Tick r = t.tRCD;
  while (!ch.can_read(0, r)) ++r;
  const Tick read_end = ch.issue_read(0, r, false);
  // Write data may not start before read data end + tRTW.
  Tick w = r + 1;
  while (!ch.can_write(1, w)) ++w;
  EXPECT_GE(w + t.tWL, read_end + t.tRTW);
}

TEST(Channel, RankSwitchPaysTrtrs) {
  const Timing t = ddr2();
  // 8 banks, 4 per rank: banks 0-3 are rank 0, banks 4-7 rank 1.
  Channel ch(t, 8, /*banks_per_rank=*/4);
  ch.issue_activate(0, 1, 0);
  ch.issue_activate(4, 1, t.tRRD);
  const Tick both_ready = t.tRRD + t.tRCD;
  ASSERT_TRUE(ch.can_read(0, both_ready));
  const Tick end0 = ch.issue_read(0, both_ready, false);
  // Same-rank CAS may follow back-to-back (data bus permitting)...
  Tick same_rank = both_ready + t.tCCD;
  // ...but bank 4 (other rank) must trail by tRTRS on the data bus.
  Tick cross = same_rank;
  while (!ch.can_read(4, cross)) ++cross;
  EXPECT_GE(cross + t.tCL, end0 + t.tRTRS);
}

TEST(Channel, SameRankNeedsNoSwitchGap) {
  const Timing t = ddr2();
  Channel ch(t, 8, 4);
  ch.issue_activate(0, 1, 0);
  ch.issue_activate(1, 1, t.tRRD);
  const Tick both_ready = t.tRRD + t.tRCD;
  ch.issue_read(0, both_ready, false);
  // Bank 1 shares the rank: only tCCD applies, back-to-back bursts legal.
  EXPECT_TRUE(ch.can_read(1, both_ready + t.tCCD));
}

TEST(Channel, ZeroBanksPerRankDisablesPenalty) {
  const Timing t = ddr2();
  Channel ch(t, 8, 0);
  ch.issue_activate(0, 1, 0);
  ch.issue_activate(4, 1, t.tRRD);
  const Tick both_ready = t.tRRD + t.tRCD;
  ch.issue_read(0, both_ready, false);
  EXPECT_TRUE(ch.can_read(4, both_ready + t.tCCD));
}

TEST(Channel, RefreshRequiresAllBanksIdle) {
  const Timing t = ddr2();
  Channel ch(t, 4);
  ch.issue_activate(0, 1, 0);
  EXPECT_FALSE(ch.can_refresh(5));  // bank 0 open
  Tick now = t.tRAS;
  while (!ch.can_precharge(0, now)) ++now;
  ch.issue_precharge(0, now);
  Tick ref = now + t.tRP;
  while (!ch.can_refresh(ref)) ++ref;
  ch.issue_refresh(ref);
  EXPECT_FALSE(ch.can_activate(0, ref + t.tRFC - 1));
}

// --------------------------------------------------------- DramSystem -----

TEST(DramSystem, ConstructsPerTable1) {
  DramSystem sys(Timing{}, Organization{}, Interleave::kHybrid);
  EXPECT_EQ(sys.channel_count(), 2u);
  EXPECT_EQ(sys.channel(0).bank_count(), 8u);
  EXPECT_EQ(sys.total_bursts(), 0u);
  EXPECT_EQ(sys.data_bus_utilization(100), 0.0);
}

TEST(DramSystem, UtilizationTracksBursts) {
  const Timing t;
  DramSystem sys(t, Organization{}, Interleave::kHybrid);
  Channel& ch = sys.channel(0);
  ch.issue_activate(0, 1, 0);
  ch.issue_read(0, t.tRCD, true);
  EXPECT_EQ(sys.total_bursts(), 1u);
  const Tick elapsed = 100;
  EXPECT_NEAR(sys.data_bus_utilization(elapsed),
              static_cast<double>(t.burst_cycles) / (100.0 * 2), 1e-12);
}

// -------------------------------------------------------- speed grades ----

TEST(SpeedGrade, AllGradesValidate) {
  for (const SpeedGrade& g : SpeedGrade::all()) {
    EXPECT_TRUE(g.timing.validate().empty()) << g.name << ": " << g.timing.validate();
    EXPECT_GT(g.cpu_ratio, 0u);
    EXPECT_GT(g.overhead_ticks, 0u);
  }
}

TEST(SpeedGrade, Ddr2_800MatchesTable1Defaults) {
  const SpeedGrade g = SpeedGrade::ddr2_800();
  EXPECT_EQ(g.timing.tCL, Timing{}.tCL);
  EXPECT_EQ(g.cpu_ratio, 8u);
  EXPECT_EQ(g.overhead_ticks, 6u);
}

TEST(SpeedGrade, CoreParametersKeepRealTimeRoughlyConstant) {
  // tCL in nanoseconds must stay ~13-15 ns across the family.
  for (const SpeedGrade& g : SpeedGrade::all()) {
    const double tick_ns = 0.3125 * g.cpu_ratio;  // 3.2 GHz CPU cycle = 0.3125 ns
    const double tcl_ns = g.timing.tCL * tick_ns;
    EXPECT_GE(tcl_ns, 12.0) << g.name;
    EXPECT_LE(tcl_ns, 16.0) << g.name;
    const double overhead_ns = g.overhead_ticks * tick_ns;
    EXPECT_NEAR(overhead_ns, 15.0, 1.1) << g.name;
  }
}

TEST(SpeedGrade, LookupByName) {
  EXPECT_EQ(SpeedGrade::by_name("DDR3-1600").cpu_ratio, 4u);
  EXPECT_THROW(SpeedGrade::by_name("DDR4-3200"), std::invalid_argument);
}

// ----------------------------------------------------- XOR bank hashing ---

TEST(BankXor, RoundTripStillBijective) {
  const Organization org;
  const AddressMap map(org, Interleave::kHybrid, /*bank_xor=*/true);
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 2000; ++i) {
    const Addr a = rng.below(org.capacity_bytes) & ~static_cast<Addr>(63);
    EXPECT_EQ(map.encode(map.decode(a)), a);
  }
}

TEST(BankXor, PermutesBanksAcrossRows) {
  const Organization org;
  const AddressMap plain(org, Interleave::kHybrid, false);
  const AddressMap hashed(org, Interleave::kHybrid, true);
  // Same column/channel stride across rows: plain maps to one bank,
  // hashed spreads over all of them.
  std::set<std::uint32_t> plain_banks, hashed_banks;
  for (std::uint64_t row = 0; row < org.banks_per_channel() * 4; ++row) {
    DramAddress da{0, 0, row, 0};
    plain_banks.insert(plain.decode(plain.encode(da)).bank);
    // Construct the same physical stride through the plain map and decode
    // it with the hashed map.
    hashed_banks.insert(hashed.decode(plain.encode(da)).bank);
  }
  EXPECT_EQ(plain_banks.size(), 1u);
  EXPECT_EQ(hashed_banks.size(), static_cast<std::size_t>(org.banks_per_channel()));
}

TEST(BankXor, PreservesRowLocalityOfSequentialLines) {
  // Within one row the row index is constant, so the XOR cannot split a
  // sequential run across banks: lines 0 and 2 still share bank and row.
  const Organization org;
  const AddressMap map(org, Interleave::kHybrid, true);
  const DramAddress a = map.decode(0);
  const DramAddress b = map.decode(2 * 64);
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(a.row, b.row);
}

// --------------------------------------------------------------- power ----

TEST(Power, PerEventEnergiesArePlausible) {
  const Timing t;
  const PowerModel pm(PowerConfig{}, t, 400e6);
  // One ACT-PRE pair on a 16-device channel: order of tens of nanojoules.
  EXPECT_GT(pm.activate_energy(), 1e-9);
  EXPECT_LT(pm.activate_energy(), 1e-6);
  EXPECT_GT(pm.read_burst_energy(), 0.0);
  EXPECT_GT(pm.write_burst_energy(), pm.read_burst_energy());  // IDD4W > IDD4R
  EXPECT_GT(pm.refresh_energy(), pm.activate_energy());
}

TEST(Power, IdleSystemDrawsOnlyBackground) {
  DramSystem sys(Timing{}, Organization{}, Interleave::kHybrid);
  const PowerModel pm(PowerConfig{}, sys.timing(), 400e6);
  const Tick elapsed = 400'000;  // 1 ms
  const EnergyBreakdown e = pm.energy_of(sys, elapsed);
  EXPECT_EQ(e.activate, 0.0);
  EXPECT_EQ(e.read, 0.0);
  EXPECT_GT(e.background, 0.0);
  // 2 channels x 16 devices x IDD2N x VDD ~= 2.6 W of idle standby.
  EXPECT_NEAR(e.average_power(1e-3), 2 * 16 * 0.045 * 1.8, 0.1);
}

TEST(Power, ActivityAddsEnergyMonotonically) {
  const Timing t;
  DramSystem sys(t, Organization{}, Interleave::kHybrid);
  const PowerModel pm(PowerConfig{}, t, 400e6);
  const EnergyBreakdown before = pm.energy_of(sys, 1000);
  Channel& ch = sys.channel(0);
  ch.issue_activate(0, 1, 0);
  ch.issue_read(0, t.tRCD, /*auto_precharge=*/true);
  const EnergyBreakdown after = pm.energy_of(sys, 1000);
  EXPECT_GT(after.activate, before.activate);
  EXPECT_GT(after.read + after.write, 0.0);
  EXPECT_GT(after.total(), before.total());
}

TEST(Power, BankActiveTimeAccounting) {
  const Timing t;
  Bank b(t);
  b.issue_activate(10, 1);
  EXPECT_EQ(b.active_ticks(30), 20u);  // still open: counted up to `now`
  Tick pre = 10 + t.tRAS;
  b.issue_precharge(pre);
  EXPECT_EQ(b.active_ticks(1000), static_cast<Tick>(t.tRAS));
}

TEST(Power, AutoPrechargeClosesActiveInterval) {
  const Timing t;
  Bank b(t);
  b.issue_activate(0, 1);
  b.issue_read(t.tRCD, /*auto_precharge=*/true);
  // Row closes at max(tRCD + tRTP, tRAS); active time is bounded by that.
  const Tick expect = std::max<Tick>(t.tRCD + t.tRTP, t.tRAS);
  EXPECT_EQ(b.active_ticks(10'000), expect);
}

TEST(Power, RefreshEnergyScalesWithInterval) {
  Timing t;
  t.refresh_enabled = true;
  DramSystem sys(t, Organization{}, Interleave::kHybrid);
  const PowerModel pm(PowerConfig{}, t, 400e6);
  const EnergyBreakdown shorter = pm.energy_of(sys, 10 * t.tREFI);
  const EnergyBreakdown longer = pm.energy_of(sys, 20 * t.tREFI);
  EXPECT_NEAR(longer.refresh / shorter.refresh, 2.0, 1e-9);
}

}  // namespace
}  // namespace memsched::dram
