// Unit tests for src/core — the paper's contribution: memory efficiency
// (Eq. 1), ME / ME-LREQ schedulers (Eq. 2), the Figure-1 hardware priority
// table, and the online-ME extension.
#include <gtest/gtest.h>

#include <cmath>

#include "core/me_schedulers.hpp"
#include "core/memory_efficiency.hpp"
#include "core/priority_table.hpp"

namespace memsched::core {
namespace {

sched::QueueSnapshot snapshot(std::vector<std::uint32_t> reads_in) {
  // Static storage: the snapshot carries raw pointers, so the backing
  // vectors must outlive the caller's use of the returned value.
  static std::vector<std::uint32_t> reads, writes;
  reads = std::move(reads_in);
  writes.assign(reads.size(), 0);
  sched::QueueSnapshot s;
  s.core_count = static_cast<std::uint32_t>(reads.size());
  s.pending_reads = reads.data();
  s.pending_writes = writes.data();
  return s;
}

// --------------------------------------------------- memory efficiency ----

TEST(MeProfile, Equation1) {
  const MeProfile p = MeProfile::from_measurement("swim", 0.8, 4.0);
  EXPECT_DOUBLE_EQ(p.memory_efficiency, 0.2);
  EXPECT_EQ(p.app_name, "swim");
}

TEST(MeProfile, ZeroBandwidthClampsInsteadOfInf) {
  const MeProfile p = MeProfile::from_measurement("eon", 2.0, 0.0);
  EXPECT_TRUE(std::isfinite(p.memory_efficiency));
  EXPECT_GT(p.memory_efficiency, 1e5);
}

TEST(MeTable, MaxAndLookup) {
  const MeTable t({0.5, 3.0, 1.5});
  EXPECT_EQ(t.core_count(), 3u);
  EXPECT_DOUBLE_EQ(t.me(1), 3.0);
  EXPECT_DOUBLE_EQ(t.max_me(), 3.0);
}

// ------------------------------------------------------ priority table ----

TEST(PriorityTable, StorageMatchesPaperCostEstimate) {
  const MeTable me({1.0, 2.0, 3.0, 4.0});
  const PriorityTable t(me);
  // Paper §3.2: N x 64 x 10 = 640N bits.
  EXPECT_EQ(t.storage_bits(), 4u * 640u);
  EXPECT_EQ(t.max_pending(), 64u);
  EXPECT_EQ(t.bits(), 10u);
}

TEST(PriorityTable, MonotoneDecreasingInPending) {
  const MeTable me({5.0, 1.0});
  const PriorityTable t(me);
  for (CoreId c = 0; c < 2; ++c) {
    for (std::uint32_t p = 1; p < 64; ++p) {
      EXPECT_GE(t.lookup(c, p), t.lookup(c, p + 1)) << "core " << c << " p " << p;
    }
  }
}

TEST(PriorityTable, HighestEntryIsTopOfScale) {
  const MeTable me({8.0, 2.0});
  const PriorityTable t(me);
  // Core 0 at pending=1 holds the global maximum ME/1 -> full-scale code.
  EXPECT_EQ(t.lookup(0, 1), 1023u);
  EXPECT_LT(t.lookup(1, 1), 1023u);
}

TEST(PriorityTable, PendingClampsToRange) {
  const MeTable me({1.0});
  const PriorityTable t(me);
  EXPECT_EQ(t.lookup(0, 0), t.lookup(0, 1));
  EXPECT_EQ(t.lookup(0, 1000), t.lookup(0, 64));
}

TEST(PriorityTable, ReloadChangesOneCore) {
  const MeTable me({1.0, 1.0});
  PriorityTable t(me);
  const auto before = t.lookup(1, 4);
  t.reload(0, 0.25);
  EXPECT_EQ(t.lookup(1, 4), before);       // untouched core
  EXPECT_LT(t.lookup(0, 4), before);       // reloaded with smaller ME
}

/// The table must order (core, pending) pairs like exact division whenever
/// the exact values are meaningfully apart. Parameterised over entry width.
class TableFidelity : public ::testing::TestWithParam<unsigned> {};

TEST_P(TableFidelity, PreservesWellSeparatedComparisons) {
  const unsigned bits = GetParam();
  const MeTable me({16.0, 4.0, 1.0, 0.25});
  const PriorityTable t(me, 64, bits);
  const double resolution = 16.0 / ((1u << bits) - 1);  // one code step
  int checked = 0;
  for (CoreId a = 0; a < 4; ++a) {
    for (CoreId b = 0; b < 4; ++b) {
      for (std::uint32_t pa = 1; pa <= 64; pa += 3) {
        for (std::uint32_t pb = 1; pb <= 64; pb += 3) {
          const double ea = me.me(a) / pa;
          const double eb = me.me(b) / pb;
          if (std::abs(ea - eb) < 2.0 * resolution) continue;  // too close to call
          ++checked;
          if (ea > eb) {
            EXPECT_GE(t.lookup(a, pa), t.lookup(b, pb));
          } else {
            EXPECT_LE(t.lookup(a, pa), t.lookup(b, pb));
          }
        }
      }
    }
  }
  EXPECT_GT(checked, 100);
}

INSTANTIATE_TEST_SUITE_P(Widths, TableFidelity, ::testing::Values(6u, 8u, 10u, 12u));

// ------------------------------------------------------------ schemes -----

TEST(MeScheduler, FixedPriorityByMe) {
  MeScheduler s(MeTable({0.5, 3.0, 1.5}));
  EXPECT_EQ(s.name(), "ME");
  EXPECT_GT(s.core_priority(1), s.core_priority(2));
  EXPECT_GT(s.core_priority(2), s.core_priority(0));
  EXPECT_TRUE(s.random_core_tie_break());
}

TEST(MeLreq, Equation2) {
  MeLreqScheduler s(MeTable({4.0, 1.0}));
  s.prepare(snapshot({8, 1}));
  // 4/8 = 0.5 vs 1/1 = 1.0: the light low-ME core wins here.
  EXPECT_LT(s.core_priority(0), s.core_priority(1));
  s.prepare(snapshot({2, 1}));
  // 4/2 = 2.0 vs 1.0: now the high-ME core wins.
  EXPECT_GT(s.core_priority(0), s.core_priority(1));
}

TEST(MeLreq, NoPendingRanksLowest) {
  MeLreqScheduler s(MeTable({4.0, 0.001}));
  s.prepare(snapshot({0, 60}));
  EXPECT_LT(s.core_priority(0), s.core_priority(1));
}

TEST(MeLreqTable, AgreesWithExactOnSeparatedCases) {
  const MeTable me({6.0, 1.0});
  MeLreqScheduler exact{me};
  MeLreqTableScheduler table{me};
  EXPECT_EQ(table.name(), "ME-LREQ-HW");
  for (std::uint32_t p0 : {1u, 2u, 8u, 32u, 64u}) {
    for (std::uint32_t p1 : {1u, 2u, 8u, 32u, 64u}) {
      // One snapshot object shared by both schedulers: snapshot() reuses
      // static backing storage, so a second call would invalidate the first.
      const sched::QueueSnapshot snap = snapshot({p0, p1});
      exact.prepare(snap);
      table.prepare(snap);
      const double de = exact.core_priority(0) - exact.core_priority(1);
      const double dt = table.core_priority(0) - table.core_priority(1);
      if (std::abs(de) > 0.1) {
        EXPECT_GT(de * dt, 0.0) << "p0=" << p0 << " p1=" << p1;
      }
    }
  }
}

TEST(GeneralizedMeLreq, DegeneratesToKnownSchemes) {
  const MeTable me({4.0, 1.0});
  // (1,1) matches Equation 2 orderings.
  GeneralizedMeLreqScheduler eq2(me, 1.0, 1.0);
  MeLreqScheduler exact{me};
  for (std::uint32_t p0 : {1u, 3u, 9u}) {
    for (std::uint32_t p1 : {1u, 3u, 9u}) {
      const sched::QueueSnapshot snap = snapshot({p0, p1});
      eq2.prepare(snap);
      exact.prepare(snap);
      const double d1 = eq2.core_priority(0) - eq2.core_priority(1);
      const double d2 = exact.core_priority(0) - exact.core_priority(1);
      EXPECT_GT(d1 * d2, -1e-12) << p0 << "," << p1;
    }
  }
  // (0,1): ME ignored — pure least-request.
  GeneralizedMeLreqScheduler lreq_like(me, 0.0, 1.0);
  lreq_like.prepare(snapshot({5, 2}));
  EXPECT_LT(lreq_like.core_priority(0), lreq_like.core_priority(1));
  // (1,0): pending ignored — fixed ME priority.
  GeneralizedMeLreqScheduler me_like(me, 1.0, 0.0);
  me_like.prepare(snapshot({60, 1}));
  EXPECT_GT(me_like.core_priority(0), me_like.core_priority(1));
}

TEST(GeneralizedMeLreq, BetaWeightsShortTermSignal) {
  const MeTable me({4.0, 1.0});
  // With beta = 2, a modest queue imbalance overrides the 4x ME advantage.
  GeneralizedMeLreqScheduler heavy_beta(me, 1.0, 2.0);
  heavy_beta.prepare(snapshot({3, 1}));
  EXPECT_LT(heavy_beta.core_priority(0), heavy_beta.core_priority(1));
  // With beta = 0.5 the same imbalance does not.
  GeneralizedMeLreqScheduler light_beta(me, 1.0, 0.5);
  light_beta.prepare(snapshot({3, 1}));
  EXPECT_GT(light_beta.core_priority(0), light_beta.core_priority(1));
}

TEST(GeneralizedMeLreq, NameEncodesExponents) {
  GeneralizedMeLreqScheduler s(MeTable({1.0}), 0.5, 2.0);
  EXPECT_EQ(s.name(), "ME-LREQ-POW(a=0.5,b=2.0)");
}

TEST(OnlineMeLreq, NeutralBeforeFirstSample) {
  OnlineMeLreqScheduler s(2);
  s.prepare(snapshot({3, 5}));
  EXPECT_DOUBLE_EQ(s.core_priority(0), 0.0);
  EXPECT_DOUBLE_EQ(s.core_priority(1), 0.0);
}

TEST(OnlineMeLreq, EstimateUnitsMatchEquation1) {
  // ME = insts * 1e9 / (bytes * f_cpu): 3.2e9 insts over 3.2 GB of traffic
  // at 3.2 GHz is exactly IPC 1 at 3.2 GB/s -> ME = 1/3.2.
  OnlineMeLreqScheduler s(1, 0.5, 3.2e9);
  s.on_epoch(0, 3.2e9, 3.2e9);
  EXPECT_NEAR(s.estimated_me(0), 1.0 / 3.2, 1e-12);
}

TEST(OnlineMeLreq, EwmaConvergesToStationaryRate) {
  OnlineMeLreqScheduler s(1, 0.25, 3.2e9);
  for (int i = 0; i < 100; ++i) s.on_epoch(0, 1000.0, 6400.0);
  const double expected = 1000.0 * 1e9 / (6400.0 * 3.2e9);
  EXPECT_NEAR(s.estimated_me(0), expected, 1e-9);
}

TEST(OnlineMeLreq, TracksPhaseChange) {
  OnlineMeLreqScheduler s(1, 0.5, 3.2e9);
  s.on_epoch(0, 1000.0, 64.0);
  const double high = s.estimated_me(0);
  for (int i = 0; i < 50; ++i) s.on_epoch(0, 1000.0, 64000.0);
  EXPECT_LT(s.estimated_me(0), high / 100.0);
}

TEST(OnlineMeLreq, ResetForgetsEstimates) {
  OnlineMeLreqScheduler s(2);
  s.on_epoch(0, 100.0, 100.0);
  s.reset();
  EXPECT_DOUBLE_EQ(s.estimated_me(0), 0.0);
  s.prepare(snapshot({1, 1}));
  EXPECT_DOUBLE_EQ(s.core_priority(0), s.core_priority(1));
}

TEST(OnlineMeLreq, ZeroTrafficEpochIsHighEfficiency) {
  OnlineMeLreqScheduler s(1, 1.0, 3.2e9);
  s.on_epoch(0, 1e6, 0.0);
  EXPECT_GT(s.estimated_me(0), 100.0);
  EXPECT_TRUE(std::isfinite(s.estimated_me(0)));
}

}  // namespace
}  // namespace memsched::core
