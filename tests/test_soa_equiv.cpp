// SoA queue-refactor pin tests.
//
// The controller's request queues were restructured from AoS
// (std::vector<Request> with mid-vector erase) to flat structure-of-arrays
// storage with swap-removal (see docs/performance.md). The scheduling
// contract says results depend only on the candidate *set* — arrival orders
// are unique and every tie resolves through them — so queue storage order
// must never leak into results. These tests pin that end to end against
// golden fixtures captured from the pre-refactor AoS implementation:
//
//   * PickOrderGolden — a controller-level harness drives congested queues
//     (drain hysteresis, row hits/conflicts, prefetches, multi-channel) for
//     every factory scheme and hashes the exact transaction schedule seen by
//     the TraceSink (id, core, row state, decision tick, arrival order).
//   * ReportBytesGolden — whole-system closed-loop runs; the serialized JSON
//     report is hashed byte for byte.
//   * CkptResumeDuringQueueChurn — save mid-churn, resume, and require the
//     final report bytes to equal the uninterrupted run's.
//
// Regenerate fixtures (only when a *deliberate* result change lands) with
//   MEMSCHED_UPDATE_GOLDEN=1 ./tests/test_soa_equiv
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/policy.hpp"
#include "core/scheduler_factory.hpp"
#include "ckpt/snapshot.hpp"
#include "dram/dram_system.hpp"
#include "harness/orchestrator.hpp"
#include "mc/controller.hpp"
#include "sim/json_report.hpp"
#include "sim/system.hpp"
#include "sim/workloads.hpp"
#include "util/rng.hpp"

namespace memsched {
namespace {

// ----------------------------------------------------------- fixtures -----

constexpr const char* kGoldenFile = MEMSCHED_SOA_GOLDEN_FILE;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a_str(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::map<std::string, std::string> load_golden() {
  std::map<std::string, std::string> out;
  std::ifstream in(kGoldenFile);
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos || line.empty() || line[0] == '#') continue;
    out[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return out;
}

bool updating_golden() {
  const char* v = std::getenv("MEMSCHED_UPDATE_GOLDEN");
  return v != nullptr && v[0] == '1';
}

/// Collected results for regeneration mode (one process runs all tests).
std::map<std::string, std::string>& pending_updates() {
  static std::map<std::string, std::string> u;
  return u;
}

void check_or_record(const std::string& key, std::uint64_t hash) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(hash));
  if (updating_golden()) {
    pending_updates()[key] = buf;
    return;
  }
  static const std::map<std::string, std::string> golden = load_golden();
  const auto it = golden.find(key);
  ASSERT_NE(it, golden.end()) << "no golden entry for " << key
                              << " — regenerate with MEMSCHED_UPDATE_GOLDEN=1";
  EXPECT_EQ(it->second, buf)
      << key << ": result drifted from the pre-refactor AoS oracle";
}

/// Flushes regenerated fixtures after the last test (gtest environment).
class GoldenFlusher : public ::testing::Environment {
 public:
  void TearDown() override {
    if (!updating_golden() || pending_updates().empty()) return;
    std::ofstream out(kGoldenFile, std::ios::trunc);
    out << "# Golden result hashes captured from the pre-SoA-refactor AoS\n"
           "# controller. Regenerate: MEMSCHED_UPDATE_GOLDEN=1 ./test_soa_equiv\n";
    for (const auto& [k, v] : pending_updates()) out << k << '=' << v << '\n';
  }
};
const auto* const kFlusher =
    ::testing::AddGlobalTestEnvironment(new GoldenFlusher);

// ------------------------------------------------------------ helpers -----

sched::SchedulerPtr make_sched(const std::string& name, std::uint32_t cores) {
  core::SchedulerArgs args;
  args.core_count = cores;
  std::vector<double> me, ipc;
  for (std::uint32_t c = 0; c < cores; ++c) {
    me.push_back(9.0 / (1.0 + static_cast<double>(c)));
    ipc.push_back(2.0 / (1.0 + 0.2 * static_cast<double>(c)));
  }
  args.me = core::MeTable(me);
  args.ipc_single = ipc;
  return core::make_scheduler(name, args);
}

// ------------------------------------------- pick-order schedule pin ------

/// Drives one controller through a congested, multi-phase workload and
/// returns the FNV hash of every scheduling decision the TraceSink saw.
std::uint64_t pick_order_hash(const std::string& scheme) {
  dram::DramSystem dram{dram::Timing{}, dram::Organization{},
                        dram::Interleave::kHybrid};
  const sched::SchedulerPtr sched = make_sched(scheme, 4);
  mc::ControllerConfig cfg;
  mc::MemoryController mcu(dram, *sched, cfg, /*core_count=*/4, /*seed=*/1234);

  std::uint64_t h = 0xcbf29ce484222325ULL;
  mcu.set_trace_sink([&](const mc::Request& r, mc::RowState s, Tick t) {
    h = fnv1a(h, r.id);
    h = fnv1a(h, r.core);
    h = fnv1a(h, r.line_addr);
    h = fnv1a(h, (static_cast<std::uint64_t>(r.is_write) << 2) |
                     (static_cast<std::uint64_t>(r.is_prefetch) << 1) |
                     static_cast<std::uint64_t>(s));
    h = fnv1a(h, r.order);
    h = fnv1a(h, t);
  });
  mcu.set_read_callback([&](const mc::Request& r, Tick done) {
    h = fnv1a(h, r.id ^ 0x5ca1ab1eULL);
    h = fnv1a(h, done);
  });

  // Deterministic bursty traffic: a hot row set (hits + conflicts), both
  // channels, duplicate lines (combining/forwarding), prefetches, and
  // enough write pressure to flip drain mode both ways repeatedly.
  util::Xoshiro256 rng(99);
  Tick now = 0;
  for (int burst = 0; burst < 60; ++burst) {
    const int arrivals = 2 + static_cast<int>(rng.below(10));
    for (int i = 0; i < arrivals; ++i) {
      const CoreId core = static_cast<CoreId>(rng.below(4));
      const std::uint32_t ch = static_cast<std::uint32_t>(rng.below(2));
      const std::uint32_t bank = static_cast<std::uint32_t>(rng.below(8));
      const std::uint64_t row = rng.below(3);        // hot rows -> hits
      const std::uint64_t col = rng.below(16);
      const Addr a = dram.address_map().encode({ch, bank, row, col});
      if (rng.chance(0.45)) {
        mcu.enqueue_write(core, a, now);
      } else {
        mcu.enqueue_read(core, a, now, /*is_prefetch=*/rng.chance(0.15));
      }
    }
    const Tick span = 1 + rng.below(12);
    for (Tick i = 0; i < span; ++i) mcu.tick(now++);
  }
  Tick limit = 200'000;
  while (!mcu.idle() && limit--) mcu.tick(now++);
  EXPECT_TRUE(mcu.idle()) << scheme << ": controller failed to drain";

  // Fold in headline counters: served counts and row outcomes catch any
  // change the schedule hash alone might alias.
  const mc::ControllerStats& st = mcu.stats();
  h = fnv1a(h, st.reads_served);
  h = fnv1a(h, st.writes_served);
  h = fnv1a(h, st.read_forwards);
  h = fnv1a(h, st.write_merges);
  h = fnv1a(h, st.row_hits);
  h = fnv1a(h, st.row_conflicts);
  h = fnv1a(h, st.drain_entries);
  return h;
}

class PickOrderGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(PickOrderGolden, MatchesAosOracle) {
  check_or_record("pick_order/" + GetParam(), pick_order_hash(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PickOrderGolden,
                         ::testing::ValuesIn(core::known_schedulers()),
                         [](const auto& pi) {
                           std::string n = pi.param;
                           for (char& c : n)
                             if (c == '-' || c == '/') c = '_';
                           return n;
                         });

// --------------------------------------------- report-bytes pin ----------

std::string run_closed_json(const std::string& scheme, const std::string& workload,
                            sim::Engine engine, const ckpt::CheckpointPolicy& policy = {}) {
  const sim::Workload& w = sim::workload_by_name(workload);
  sim::SystemConfig cfg;
  cfg.cores = w.cores();
  cfg.engine = engine;
  const sched::SchedulerPtr s = make_sched(scheme, cfg.cores);
  sim::MultiCoreSystem sys(cfg, w.apps(), *s, /*seed=*/42);
  return sim::to_json(sys.run(25'000, 5'000, Tick{1} << 32, policy)).dump();
}

using SchemeWorkload = std::tuple<std::string, std::string>;
class ReportBytesGolden : public ::testing::TestWithParam<SchemeWorkload> {};

TEST_P(ReportBytesGolden, MatchesAosOracle) {
  const auto& [scheme, workload] = GetParam();
  const std::string json = run_closed_json(scheme, workload, sim::Engine::kSkip);
  check_or_record("report/" + scheme + "/" + workload, fnv1a_str(json));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ReportBytesGolden,
    ::testing::Combine(::testing::ValuesIn(core::known_schedulers()),
                       ::testing::Values("2MEM-1", "4MIX-1")),
    [](const auto& pi) {
      std::string n = std::get<0>(pi.param) + "_" + std::get<1>(pi.param);
      for (char& c : n)
        if (c == '-' || c == '/') c = '_';
      return n;
    });

// ------------------------------- checkpoint round-trip under churn --------

// Queue storage order is checkpointed storage-order-faithfully; a snapshot
// taken mid-churn (swap-removal has shuffled the arrays) must resume to a
// byte-identical report. MEMSCHED_VERIFY is on under ctest and checkpointing
// requires audit off, so this test builds its systems with audit disabled.
TEST(SoaCkpt, ResumeDuringQueueChurnIsByteIdentical) {
  const std::string path = ::testing::TempDir() + "soa_churn.ckpt";
  std::remove(path.c_str());
  const sim::Workload& w = sim::workload_by_name("4MEM-1");

  const auto run_one = [&](const ckpt::CheckpointPolicy& policy) {
    sim::SystemConfig cfg;
    cfg.cores = w.cores();
    cfg.audit.enabled = false;
    const sched::SchedulerPtr s = make_sched("ME-LREQ", cfg.cores);
    sim::MultiCoreSystem sys(cfg, w.apps(), *s, /*seed=*/7);
    return sim::to_json(sys.run(20'000, 4'000, Tick{1} << 32, policy)).dump();
  };

  const std::string uninterrupted = run_one({});

  ckpt::CheckpointPolicy stop_mid;
  stop_mid.path = path;
  stop_mid.stop_at_tick = 800;  // mid-measurement, queues busy
  stop_mid.save_on_stop = true;
  EXPECT_THROW(run_one(stop_mid), ckpt::CheckpointStop);

  ckpt::CheckpointPolicy resume;
  resume.path = path;
  resume.resume = true;
  EXPECT_EQ(uninterrupted, run_one(resume));
  std::remove(path.c_str());
}

// ------------------------------- sweep parity at every jobs width ---------

// End-to-end: a sweep of *real* simulation points through the orchestrator's
// process pool. The pool reorders completions (longest-expected-first
// dispatch, nondeterministic reaping), so any storage-order leak the SoA
// refactor introduced into results OR any completion-order leak into the
// manifest would break the byte-parity contract here. Complements the
// synthetic-point pool tests in test_harness.cpp with simulator payloads.
TEST(SoaSweepParity, ManifestAndReportBytesIdenticalAcrossJobs) {
  const auto make_points = [] {
    std::vector<harness::PointSpec> pts;
    for (const char* wl : {"2MEM-1", "2MIX-1"}) {
      for (const char* scheme : {"FCFS", "ME-LREQ", "PAR-BS"}) {
        harness::PointSpec p;
        p.name = std::string(scheme) + "/" + wl;
        p.body = [wl, scheme]() -> util::Json {
          const sim::Workload& w = sim::workload_by_name(wl);
          sim::SystemConfig cfg;
          cfg.cores = w.cores();
          const sched::SchedulerPtr s = make_sched(scheme, cfg.cores);
          sim::MultiCoreSystem sys(cfg, w.apps(), *s, /*seed=*/42);
          return sim::to_json(sys.run(8'000, 2'000, Tick{1} << 32));
        };
        pts.push_back(std::move(p));
      }
    }
    return pts;
  };

  const auto slurp = [](const std::string& p) {
    std::ifstream in(p);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };

  std::string manifests[2];
  std::string reports[2];
  const std::uint32_t widths[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    harness::OrchestratorConfig oc;
    oc.manifest_path =
        ::testing::TempDir() + "soa_jobs" + std::to_string(widths[i]) + ".manifest";
    oc.work_dir = ::testing::TempDir() + "soa_jobs_work" + std::to_string(widths[i]);
    oc.fingerprint = "soa-jobs-parity";
    oc.jobs = widths[i];
    oc.verbose = false;
    std::remove(oc.manifest_path.c_str());
    std::remove((oc.manifest_path + ".timing.json").c_str());
    harness::Orchestrator orch(oc);
    const harness::SweepSummary s = orch.run(make_points());
    ASSERT_TRUE(s.complete());
    ASSERT_EQ(s.ok, 6u) << "jobs=" << widths[i];
    manifests[i] = slurp(oc.manifest_path);
    reports[i] = orch.report().dump(2);
    std::remove(oc.manifest_path.c_str());
    std::remove((oc.manifest_path + ".timing.json").c_str());
  }
  EXPECT_EQ(manifests[0], manifests[1]);
  EXPECT_EQ(reports[0], reports[1]);
}

}  // namespace
}  // namespace memsched
