// Unit tests for src/trace: the SPEC2000 catalog, the synthetic generator,
// and trace-file I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "trace/app_profile.hpp"
#include "trace/generator.hpp"
#include "trace/trace_file.hpp"

namespace memsched::trace {
namespace {

// ------------------------------------------------------------- catalog ----

TEST(Catalog, Has26AppsWithUniqueCodes) {
  const auto& apps = spec2000_profiles();
  EXPECT_EQ(apps.size(), 26u);
  std::set<char> codes;
  std::set<std::string> names;
  for (const auto& a : apps) {
    codes.insert(a.code);
    names.insert(a.name);
  }
  EXPECT_EQ(codes.size(), 26u);
  EXPECT_EQ(names.size(), 26u);
}

TEST(Catalog, Table2ClassAssignments) {
  // Paper Table 2: 14 MEM applications, 12 ILP.
  int mem = 0;
  for (const auto& a : spec2000_profiles()) mem += a.memory_intensive;
  EXPECT_EQ(mem, 14);
  EXPECT_TRUE(spec2000_by_name("swim").memory_intensive);
  EXPECT_TRUE(spec2000_by_name("mcf").memory_intensive);
  EXPECT_FALSE(spec2000_by_name("eon").memory_intensive);
  EXPECT_FALSE(spec2000_by_name("gzip").memory_intensive);
}

TEST(Catalog, Table2CodesMatchPaper) {
  EXPECT_EQ(spec2000_by_code('a').name, "gzip");
  EXPECT_EQ(spec2000_by_code('c').name, "swim");
  EXPECT_EQ(spec2000_by_code('k').name, "mcf");
  EXPECT_EQ(spec2000_by_code('t').name, "eon");
  EXPECT_EQ(spec2000_by_code('z').name, "apsi");
}

TEST(Catalog, PredictedMePreservesTable2Ratios) {
  // predicted_me * kTable2MeScale must equal the paper's ME for every app.
  for (const auto& a : spec2000_profiles()) {
    EXPECT_NEAR(a.predicted_me() * kTable2MeScale / a.table_me, 1.0, 1e-9)
        << a.name;
  }
}

TEST(Catalog, MemAppsStreamHarderThanIlpApps) {
  double min_mem = 1e300, max_ilp = 0.0;
  for (const auto& a : spec2000_profiles()) {
    if (a.memory_intensive)
      min_mem = std::min(min_mem, a.fresh_lines_per_kinst);
    else
      max_ilp = std::max(max_ilp, a.fresh_lines_per_kinst);
  }
  // The lightest MEM app (facerec, ME=40) still streams more than any ILP
  // app except the borderline ones; check group means instead of extremes.
  double mem_sum = 0, ilp_sum = 0;
  int nm = 0, ni = 0;
  for (const auto& a : spec2000_profiles()) {
    (a.memory_intensive ? mem_sum : ilp_sum) += a.fresh_lines_per_kinst;
    ++(a.memory_intensive ? nm : ni);
  }
  EXPECT_GT(mem_sum / nm, 10.0 * (ilp_sum / ni));
}

TEST(Catalog, LookupThrowsOnUnknown) {
  EXPECT_THROW(spec2000_by_name("doom"), std::invalid_argument);
  EXPECT_THROW(spec2000_by_code('!'), std::invalid_argument);
}

TEST(Catalog, FootprintsFitPerCoreRegion) {
  for (const auto& a : spec2000_profiles()) {
    EXPECT_LE(a.footprint_bytes + a.hot_bytes + a.code_bytes, 512ull << 20) << a.name;
  }
}

// ----------------------------------------------------------- generator ----

class GeneratorRates : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratorRates, FreshLineAndRefRatesMatchProfile) {
  const AppProfile& app = spec2000_by_name(GetParam());
  SyntheticStream s(app, 0, 2024);
  const std::uint64_t n = 3'000'000;
  std::uint64_t refs = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (s.next().cls != InstClass::kCompute) ++refs;
  }
  const double kinst = static_cast<double>(n) / 1000.0;
  EXPECT_NEAR(static_cast<double>(refs) / kinst, app.mem_ref_per_kinst,
              0.05 * app.mem_ref_per_kinst);
  EXPECT_NEAR(static_cast<double>(s.fresh_lines_emitted()) / kinst,
              app.fresh_lines_per_kinst, 0.15 * app.fresh_lines_per_kinst + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Apps, GeneratorRates,
                         ::testing::Values("swim", "applu", "mcf", "wupwise", "gzip",
                                           "mgrid", "vpr", "facerec"));

TEST(Generator, DeterministicPerSeed) {
  const AppProfile& app = spec2000_by_name("equake");
  SyntheticStream a(app, 0x1000, 5), b(app, 0x1000, 5);
  for (int i = 0; i < 50'000; ++i) {
    const InstRecord ra = a.next(), rb = b.next();
    ASSERT_EQ(ra.cls, rb.cls);
    ASSERT_EQ(ra.addr, rb.addr);
    ASSERT_EQ(ra.dep_on_prev, rb.dep_on_prev);
  }
}

TEST(Generator, DifferentSeedsDiverge) {
  const AppProfile& app = spec2000_by_name("equake");
  SyntheticStream a(app, 0, 1), b(app, 0, 2);
  int same_addr = 0, mem = 0;
  for (int i = 0; i < 50'000; ++i) {
    const InstRecord ra = a.next(), rb = b.next();
    if (ra.cls != InstClass::kCompute && rb.cls != InstClass::kCompute) {
      ++mem;
      same_addr += (ra.addr == rb.addr);
    }
  }
  EXPECT_LT(same_addr, mem / 10);
}

TEST(Generator, ResetReproducesFromStart) {
  const AppProfile& app = spec2000_by_name("swim");
  SyntheticStream s(app, 0, 9);
  std::vector<Addr> first;
  for (int i = 0; i < 10'000; ++i) first.push_back(s.next().addr);
  s.reset(9);
  for (int i = 0; i < 10'000; ++i) ASSERT_EQ(s.next().addr, first[static_cast<std::size_t>(i)]);
}

TEST(Generator, AddressesStayInsideRegion) {
  const AppProfile& app = spec2000_by_name("mcf");
  const Addr base = 3ull << 30;
  SyntheticStream s(app, base, 11);
  const Addr end = base + app.footprint_bytes + app.hot_bytes + app.code_bytes;
  for (int i = 0; i < 500'000; ++i) {
    const InstRecord r = s.next();
    if (r.cls == InstClass::kCompute) continue;
    ASSERT_GE(r.addr, base);
    ASSERT_LT(r.addr, end);
  }
  EXPECT_EQ(s.code_base(), base + app.footprint_bytes + app.hot_bytes);
  EXPECT_EQ(s.code_bytes(), app.code_bytes);
}

TEST(Generator, DepFlagsOnlyOnPointerChasers) {
  std::uint64_t deps_mcf = 0, deps_swim = 0;
  SyntheticStream mcf(spec2000_by_name("mcf"), 0, 3);
  SyntheticStream swim(spec2000_by_name("swim"), 0, 3);
  for (int i = 0; i < 1'000'000; ++i) {
    deps_mcf += mcf.next().dep_on_prev;
    deps_swim += swim.next().dep_on_prev;
  }
  EXPECT_GT(deps_mcf, 1000u);
  EXPECT_EQ(deps_swim, 0u);
}

TEST(Generator, DirtyShareProducesStores) {
  const AppProfile& app = spec2000_by_name("swim");  // dirty_fresh_share 0.40
  SyntheticStream s(app, 0, 17);
  std::uint64_t stream_stores = 0;
  for (int i = 0; i < 2'000'000; ++i) {
    const InstRecord r = s.next();
    // Stores inside the streamed footprint region (below the hot base).
    if (r.cls == InstClass::kStore && r.addr < app.footprint_bytes) ++stream_stores;
  }
  const double per_fresh =
      static_cast<double>(stream_stores) / static_cast<double>(s.fresh_lines_emitted());
  EXPECT_NEAR(per_fresh, app.dirty_fresh_share, 0.08);
}

// ------------------------------------------------------------ trace IO ----

std::vector<InstRecord> sample_records() {
  return {
      {InstClass::kCompute, 0, false},
      {InstClass::kLoad, 0xdeadbeef40, false},
      {InstClass::kLoad, 0x1234567890, true},
      {InstClass::kStore, 0x40, false},
      {InstClass::kCompute, 0, false},
  };
}

class TraceRoundTrip : public ::testing::TestWithParam<bool> {};  // binary?

TEST_P(TraceRoundTrip, WriteReadIdentity) {
  const bool binary = GetParam();
  const std::string path = ::testing::TempDir() + (binary ? "t.bin" : "t.txt");
  const auto recs = sample_records();
  if (binary)
    write_binary_trace(path, recs);
  else
    write_text_trace(path, recs);
  const auto back = binary ? read_binary_trace(path) : read_text_trace(path);
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(back[i].cls, recs[i].cls) << i;
    if (recs[i].cls != InstClass::kCompute) {
      EXPECT_EQ(back[i].addr, recs[i].addr) << i;
    }
    EXPECT_EQ(back[i].dep_on_prev, recs[i].dep_on_prev) << i;
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Formats, TraceRoundTrip, ::testing::Bool(),
                         [](const auto& pi) {
                           return pi.param ? std::string("Binary") : std::string("Text");
                         });

TEST(TraceIo, RejectsMissingFile) {
  EXPECT_THROW(read_binary_trace("/nonexistent/x.bin"), std::runtime_error);
  EXPECT_THROW(read_text_trace("/nonexistent/x.txt"), std::runtime_error);
}

TEST(TraceIo, RejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "bad.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("NOPE....", f);
  std::fclose(f);
  EXPECT_THROW(read_binary_trace(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, TextParserRejectsGarbageOps) {
  const std::string path = ::testing::TempDir() + "bad.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("Q 1234\n", f);
  std::fclose(f);
  EXPECT_THROW(read_text_trace(path), std::runtime_error);
  std::remove(path.c_str());
}

// Corrupt-input diagnosis: every failure must name the file and say where
// and why reading stopped, so a bad trace is debuggable from the message.

std::string capture_error(const std::string& path, bool binary = true) {
  try {
    if (binary)
      read_binary_trace(path);
    else
      read_text_trace(path);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

std::string write_bytes(const std::string& name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  return path;
}

TEST(TraceIo, TruncatedCountHeaderNamesOffset) {
  const std::string path = write_bytes("trunc_hdr.bin", std::string("MST1\x02\x00", 6));
  const std::string msg = capture_error(path);
  EXPECT_NE(msg.find(path), std::string::npos) << msg;
  EXPECT_NE(msg.find("byte offset"), std::string::npos) << msg;
  EXPECT_NE(msg.find("record count header"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(TraceIo, OversizedCountHeaderIsRejectedBeforeReserve) {
  // Header claims 2^56 records in a 12-byte file: the sanity check must
  // refuse it instead of trusting it with a reserve().
  std::string bytes = "MST1";
  bytes += std::string("\x00\x00\x00\x00\x00\x00\x00\x01", 8);  // LE 2^56
  const std::string path = write_bytes("huge_count.bin", bytes);
  const std::string msg = capture_error(path);
  EXPECT_NE(msg.find("record count header claims"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(TraceIo, TruncationMidRecordsNamesTheRecord) {
  // Write a valid 3-record trace, then chop it after the first record.
  const std::string path = ::testing::TempDir() + "chop.bin";
  write_binary_trace(path, sample_records());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  char buf[64];
  const std::size_t n = std::fread(buf, 1, sizeof buf, f);
  std::fclose(f);
  ASSERT_GT(n, 14u);
  f = std::fopen(path.c_str(), "wb");
  std::fwrite(buf, 1, 14, f);  // magic + count + record 0 + 1 byte of record 1
  std::fclose(f);
  const std::string msg = capture_error(path);
  EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
  EXPECT_NE(msg.find("record"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(TraceIo, InvalidClassBitsNameTheRecordIndex) {
  std::string bytes = "MST1";
  bytes += std::string("\x01\x00\x00\x00\x00\x00\x00\x00", 8);  // count = 1
  bytes += '\x03';  // class bits 3: no such InstClass
  const std::string path = write_bytes("badclass.bin", bytes);
  const std::string msg = capture_error(path);
  EXPECT_NE(msg.find("record 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("invalid class bits"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(TraceIo, TextErrorsNameFileAndLine) {
  const std::string path = write_bytes("badline.txt", "C\nL 40\nS\n");
  const std::string msg = capture_error(path, /*binary=*/false);
  EXPECT_NE(msg.find(path), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("store needs an address"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(TraceIo, TextParserSkipsCommentsAndBlanks) {
  const std::string path = ::testing::TempDir() + "c.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("# header\n\nL 40\n  # indented comment\nC\n", f);
  std::fclose(f);
  const auto recs = read_text_trace(path);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].cls, InstClass::kLoad);
  EXPECT_EQ(recs[1].cls, InstClass::kCompute);
  std::remove(path.c_str());
}

TEST(ReplayStream, WrapsAroundAndResets) {
  ReplayStream s(sample_records());
  EXPECT_EQ(s.length(), 5u);
  for (int i = 0; i < 12; ++i) s.next();
  EXPECT_EQ(s.wraps(), 2u);
  s.reset(0);
  EXPECT_EQ(s.wraps(), 0u);
  EXPECT_EQ(s.next().cls, InstClass::kCompute);
}

}  // namespace
}  // namespace memsched::trace
