// Property-based tests: invariants that must hold for every scheduling
// policy over randomized request patterns, and structural properties of the
// address map and statistics utilities. Parameterised over (policy, seed).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/scheduler_factory.hpp"
#include "dram/dram_system.hpp"
#include "mc/controller.hpp"
#include "sim/metrics.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace memsched {
namespace {

using Param = std::tuple<std::string, std::uint64_t>;

/// Random open-loop traffic driven straight into a controller under the
/// given policy. Checks global invariants that no policy may violate:
///   * conservation — every accepted read completes exactly once;
///   * no starvation — all requests finish within a generous horizon;
///   * latency lower bound — nothing completes faster than the device
///     minimum (controller overhead + CAS + burst);
///   * completion-time monotonicity;
///   * buffer occupancy never exceeds capacity.
class PolicyInvariants : public ::testing::TestWithParam<Param> {};

TEST_P(PolicyInvariants, RandomTrafficInvariantsHold) {
  const auto& [scheme, seed] = GetParam();
  dram::DramSystem dram(dram::Timing{}, dram::Organization{},
                        dram::Interleave::kHybrid);
  const std::uint32_t cores = 4;
  core::SchedulerArgs args;
  args.core_count = cores;
  args.me = core::MeTable({9.0, 2.5, 0.8, 0.1});
  args.ipc_single = {2.0, 1.5, 1.0, 0.5};
  auto sched = core::make_scheduler(scheme, args);
  mc::MemoryController mcu(dram, *sched, mc::ControllerConfig{}, cores, seed);

  std::set<RequestId> completed_ids;
  Tick last_done = 0;
  std::uint64_t completed = 0;
  mcu.set_read_callback([&](const mc::Request& r, Tick done) {
    EXPECT_TRUE(completed_ids.insert(r.id).second) << "duplicate completion";
    EXPECT_GE(done, last_done);  // delivery order is monotonic
    last_done = done;
    // Even a forwarded read costs the controller pipeline overhead.
    EXPECT_GE(done - r.enqueue_tick, mcu.config().overhead_ticks);
    ++completed;
  });

  util::Xoshiro256 rng(seed * 7919 + 13);
  std::uint64_t accepted_reads = 0;
  Tick now = 0;
  const Tick inject_until = 6'000;
  for (; now < inject_until; ++now) {
    // Bursty injection: some ticks push several requests.
    const std::uint64_t burst = rng.below(4);
    for (std::uint64_t i = 0; i < burst; ++i) {
      const auto core = static_cast<CoreId>(rng.below(cores));
      const Addr line = (rng.below(1u << 20)) * 64;
      if (rng.chance(0.3)) {
        mcu.enqueue_write(core, line, now);
      } else if (mcu.enqueue_read(core, line, now)) {
        ++accepted_reads;
      }
    }
    EXPECT_LE(mcu.occupied(), mcu.config().buffer_entries);
    mcu.tick(now);
  }
  // Drain: no starvation means it empties within a generous horizon.
  const Tick horizon = now + 200'000;
  while (!mcu.idle() && now < horizon) mcu.tick(now++);
  EXPECT_TRUE(mcu.idle()) << scheme << " left requests unserved (starvation)";
  EXPECT_EQ(completed, accepted_reads);
  EXPECT_EQ(mcu.stats().reads_served + mcu.stats().read_forwards, accepted_reads);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesSeeds, PolicyInvariants,
    ::testing::Combine(::testing::Values("FCFS", "FCFS-RF", "HF-RF", "RR", "LREQ",
                                         "FQ", "STFM", "PAR-BS", "FIX-DESC", "FIX-ASC", "ME", "ME-LREQ",
                                         "ME-LREQ-HW", "ME-LREQ-ONLINE",
                                         "ME-LREQ/TOH", "ME/TOH",
                                         "BLISS", "TCM", "CADS"),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& pi) {
      std::string n = std::get<0>(pi.param);
      for (char& c : n)
        if (c == '-' || c == '/') c = '_';
      return n + "_s" + std::to_string(std::get<1>(pi.param));
    });

// ------------------------------------------------------------ map props ---

class MapBijectivity : public ::testing::TestWithParam<dram::Interleave> {};

TEST_P(MapBijectivity, DistinctLinesDecodeToDistinctCoordinates) {
  dram::Organization org;
  org.capacity_bytes = 1ull << 26;  // small enough to enumerate a slice
  dram::AddressMap map(org, GetParam());
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t, std::uint64_t>> seen;
  const std::uint64_t lines = 1 << 14;
  for (std::uint64_t l = 0; l < lines; ++l) {
    const auto da = map.decode(l * 64);
    EXPECT_TRUE(seen.insert({da.channel, da.bank, da.row, da.col_line}).second)
        << "line " << l << " collided";
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, MapBijectivity,
                         ::testing::Values(dram::Interleave::kLineInterleave,
                                           dram::Interleave::kPageInterleave,
                                           dram::Interleave::kHybrid),
                         [](const auto& pi) {
                           switch (pi.param) {
                             case dram::Interleave::kLineInterleave: return "Line";
                             case dram::Interleave::kPageInterleave: return "Page";
                             default: return "Hybrid";
                           }
                         });

// --------------------------------------------------------- stats props ----

class StatMergeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatMergeProperty, MergeEqualsPooledForRandomSplits) {
  util::Xoshiro256 rng(GetParam());
  util::RunningStat parts[3], all;
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.uniform() * 1e4 - 5e3;
    parts[rng.below(3)].add(x);
    all.add(x);
  }
  util::RunningStat merged;
  for (auto& p : parts) merged.merge(p);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_NEAR(merged.mean(), all.mean(), 1e-7);
  EXPECT_NEAR(merged.variance() / all.variance(), 1.0, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatMergeProperty, ::testing::Values(11u, 22u, 33u, 44u));

// ------------------------------------------------------- metric props -----

class MetricProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricProperties, UnfairnessScaleInvariantAndBounded) {
  util::Xoshiro256 rng(GetParam());
  std::vector<double> multi, single;
  for (int i = 0; i < 6; ++i) {
    single.push_back(0.2 + rng.uniform() * 2.0);
    multi.push_back(single.back() * (0.2 + rng.uniform() * 0.8));
  }
  const double u = sim::unfairness(multi, single);
  EXPECT_GE(u, 1.0);
  // Scaling every IPC by a constant changes nothing.
  std::vector<double> multi2 = multi, single2 = single;
  for (auto& x : multi2) x *= 3.7;
  for (auto& x : single2) x *= 3.7;
  EXPECT_NEAR(sim::unfairness(multi2, single2), u, 1e-12);
  // SMT speedup is bounded by the core count.
  EXPECT_LE(sim::smt_speedup(multi, single), static_cast<double>(multi.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricProperties, ::testing::Values(5u, 6u, 7u, 8u));

}  // namespace
}  // namespace memsched
