// Unit tests for src/cpu: the out-of-order core performance model.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/hierarchy.hpp"
#include "cpu/core_model.hpp"
#include "dram/dram_system.hpp"
#include "mc/controller.hpp"
#include "sched/policies.hpp"
#include "trace/inst_stream.hpp"

namespace memsched::cpu {
namespace {

/// Scripted instruction stream for deterministic tests.
class ScriptStream final : public trace::InstStream {
 public:
  explicit ScriptStream(std::vector<trace::InstRecord> recs, bool loop = true)
      : recs_(std::move(recs)), loop_(loop) {}

  trace::InstRecord next() override {
    if (pos_ >= recs_.size()) {
      if (!loop_) return trace::InstRecord{};  // endless compute
      pos_ = 0;
    }
    return recs_[pos_++];
  }
  void reset(std::uint64_t) override { pos_ = 0; }

 private:
  std::vector<trace::InstRecord> recs_;
  bool loop_;
  std::size_t pos_ = 0;
};

trace::InstRecord compute() { return {}; }
trace::InstRecord load(Addr a, bool dep = false) {
  return {trace::InstClass::kLoad, a, dep};
}
trace::InstRecord store(Addr a) { return {trace::InstClass::kStore, a, false}; }

struct Rig {
  dram::DramSystem dram{dram::Timing{}, dram::Organization{}, dram::Interleave::kHybrid};
  sched::HitFirstReadFirstScheduler sched;
  mc::MemoryController mcu;
  cache::CacheHierarchy hier;
  std::unique_ptr<trace::InstStream> stream;
  std::unique_ptr<CoreModel> core;

  explicit Rig(std::vector<trace::InstRecord> recs, double ipc = 4.0,
               CoreConfig cfg = {})
      : mcu(dram, sched, mc::ControllerConfig{}, 1, 1), hier({}, 1, mcu) {
    cfg.model_ifetch = false;  // scripted streams carry no code region
    stream = std::make_unique<ScriptStream>(std::move(recs));
    core = std::make_unique<CoreModel>(0, cfg, ipc, *stream, hier);
    hier.set_fill_callback([this](std::uint64_t token, CpuCycle done) {
      core->on_fill(token, done);
    });
  }

  void run_ticks(Tick n) {
    for (Tick t = 0; t < n; ++t) {
      hier.tick(t);
      mcu.tick(t);
      core->step_to((t + 1) * 8);
    }
  }
};

TEST(CoreModel, ComputeOnlyCommitsAtDispatchRate) {
  Rig rig({compute()}, /*ipc=*/2.0);
  rig.run_ticks(1000);  // 8000 CPU cycles
  EXPECT_NEAR(static_cast<double>(rig.core->committed()), 2.0 * 8000, 16.0);
}

TEST(CoreModel, DispatchCappedByIssueWidth) {
  CoreConfig cfg;
  cfg.issue_width = 4;
  Rig rig({compute()}, /*ipc=*/10.0, cfg);
  rig.run_ticks(500);
  EXPECT_LE(rig.core->committed(), 4u * 500 * 8 + 4);
  EXPECT_NEAR(static_cast<double>(rig.core->committed()), 4.0 * 4000, 32.0);
}

TEST(CoreModel, L1HitsDoNotStall) {
  // Loads to one line: first miss warms it; after that pure L1 hits.
  Rig rig({load(0x100), compute(), compute(), compute()}, 4.0);
  rig.run_ticks(2000);
  const auto& st = rig.core->stats();
  EXPECT_GT(st.l1d_hits, 1000u);
  // Near-full dispatch despite the loads.
  EXPECT_GT(rig.core->committed(), 2000u * 8 * 4 * 9 / 10);
}

TEST(CoreModel, IndependentMissesOverlap) {
  // 8 independent miss loads per iteration over a huge stride: MLP limited
  // only by ROB/MSHR, so throughput is far better than serial misses.
  std::vector<trace::InstRecord> recs;
  for (int i = 0; i < 8; ++i) recs.push_back(load(static_cast<Addr>(i) * (1 << 20)));
  for (int i = 0; i < 24; ++i) recs.push_back(compute());
  Rig rig(recs, 4.0);
  rig.run_ticks(4000);
  const std::uint64_t overlapped = rig.core->committed();

  // Same loads but each dependent on the previous: serialised.
  std::vector<trace::InstRecord> dep_recs;
  for (int i = 0; i < 8; ++i)
    dep_recs.push_back(load(static_cast<Addr>(i) * (1 << 20), /*dep=*/true));
  for (int i = 0; i < 24; ++i) dep_recs.push_back(compute());
  Rig rig2(dep_recs, 4.0);
  rig2.run_ticks(4000);
  const std::uint64_t serial = rig2.core->committed();

  EXPECT_GT(overlapped, serial * 2);
  EXPECT_GT(rig2.core->stats().stall_dep, 0u);
}

TEST(CoreModel, RobLimitsRunahead) {
  // A long chain of dependent misses to DISTINCT lines: the window fills
  // behind each miss and issue must stall on ROB/dependence.
  std::vector<trace::InstRecord> recs;
  for (int i = 0; i < 2000; ++i) {
    recs.push_back(load(static_cast<Addr>(i + 1) * (1 << 20), /*dep=*/true));
    for (int j = 0; j < 3; ++j) recs.push_back(compute());
  }
  CoreConfig cfg;
  cfg.rob_entries = 16;
  Rig rig(recs, 4.0, cfg);
  rig.run_ticks(2000);
  EXPECT_GT(rig.core->stats().stall_rob + rig.core->stats().stall_dep, 100u);
  EXPECT_GT(rig.core->committed(), 0u);
}

TEST(CoreModel, MshrLimitBoundsOutstanding) {
  std::vector<trace::InstRecord> recs;
  for (int i = 0; i < 64; ++i) recs.push_back(load(static_cast<Addr>(i + 1) * (1 << 20)));
  CoreConfig cfg;
  cfg.l1d_mshr = 4;
  Rig rig(recs, 4.0, cfg);
  for (Tick t = 0; t < 200; ++t) {
    rig.hier.tick(t);
    rig.mcu.tick(t);
    rig.core->step_to((t + 1) * 8);
    EXPECT_LE(rig.core->outstanding_misses(), 4u);
  }
  EXPECT_GT(rig.core->stats().stall_mshr, 0u);
}

TEST(CoreModel, StoresDoNotBlockCommit) {
  std::vector<trace::InstRecord> recs;
  recs.push_back(store(0x7000000));
  for (int i = 0; i < 3; ++i) recs.push_back(compute());
  Rig rig(recs, 4.0);
  rig.run_ticks(500);
  // Store misses go to DRAM but commit continues at near-full rate modulo
  // L2-MSHR back-pressure.
  EXPECT_GT(rig.core->committed(), 500u * 8 * 2);
  EXPECT_GT(rig.core->stats().stores, 100u);
}

TEST(CoreModel, StoreQueueBoundsOutstandingStoreMisses) {
  // A pure stream of store misses to distinct lines: the store queue fills
  // to sq_entries and dispatch stalls until fills return.
  std::vector<trace::InstRecord> recs;
  for (int i = 0; i < 256; ++i) recs.push_back(store(static_cast<Addr>(i + 1) * (1 << 20)));
  CoreConfig cfg;
  cfg.sq_entries = 4;
  Rig rig(recs, 4.0, cfg);
  for (Tick t = 0; t < 400; ++t) {
    rig.hier.tick(t);
    rig.mcu.tick(t);
    rig.core->step_to((t + 1) * 8);
    ASSERT_LE(rig.core->outstanding_stores(), 4u);
  }
  EXPECT_GT(rig.core->stats().stall_sq, 10u);
}

TEST(CoreModel, StoreQueueDrainsOnFills) {
  // Distinct cache sets so the looped stream hits after the first pass.
  std::vector<trace::InstRecord> recs;
  for (int i = 0; i < 8; ++i) {
    recs.push_back(store(static_cast<Addr>(i + 1) * (1 << 20) +
                         static_cast<Addr>(i) * 64));
  }
  for (int i = 0; i < 1000; ++i) recs.push_back(compute());
  Rig rig(recs, 4.0);
  rig.run_ticks(2000);
  EXPECT_EQ(rig.core->outstanding_stores(), 0u);  // all fills returned
  EXPECT_GT(rig.core->stats().stores, 8u);
}

TEST(CoreModel, StoreHitsDoNotOccupyStoreQueue) {
  // Warm one line, then hammer it with stores: all L1 hits, zero SQ usage.
  std::vector<trace::InstRecord> recs{store(0x40)};
  Rig rig(recs, 4.0);
  rig.run_ticks(500);
  EXPECT_EQ(rig.core->outstanding_stores(), 0u);
  EXPECT_EQ(rig.core->stats().stall_sq, 0u);
}

TEST(CoreModel, CommitNeverExceedsIssueAndIsMonotonic) {
  std::vector<trace::InstRecord> recs;
  recs.push_back(load(0x100));
  recs.push_back(load(0x9000000));
  recs.push_back(compute());
  Rig rig(recs, 3.0);
  std::uint64_t prev = 0;
  for (Tick t = 0; t < 1000; ++t) {
    rig.hier.tick(t);
    rig.mcu.tick(t);
    rig.core->step_to((t + 1) * 8);
    EXPECT_GE(rig.core->committed(), prev);
    prev = rig.core->committed();
  }
}

TEST(CoreModel, TokensRoundTrip) {
  const std::uint64_t tok = CoreModel::make_token(5, 123456, false);
  EXPECT_EQ(CoreModel::token_core(tok), 5u);
  EXPECT_EQ(tok >> 63, 0u);
  const std::uint64_t itok = CoreModel::make_token(7, 1, true);
  EXPECT_EQ(CoreModel::token_core(itok), 7u);
  EXPECT_EQ(itok >> 63, 1u);
}

TEST(CoreModel, StatsClassifyAccessLevels) {
  Rig rig({load(0x100), load(0x100), compute()}, 4.0);
  rig.run_ticks(1000);
  const auto& st = rig.core->stats();
  EXPECT_GT(st.loads, 0u);
  EXPECT_EQ(st.dram_loads, 1u);  // only the first touch of the single line
  EXPECT_GT(st.l1d_hits, st.dram_loads);
}

TEST(CoreModel, ResetStatsZeroesCounters) {
  Rig rig({load(0x100)}, 4.0);
  rig.run_ticks(100);
  ASSERT_GT(rig.core->stats().loads, 0u);
  rig.core->reset_stats();
  EXPECT_EQ(rig.core->stats().loads, 0u);
  EXPECT_EQ(rig.core->stats().stall_rob, 0u);
}

TEST(CoreModel, DeterministicAcrossRuns) {
  auto make = [] {
    std::vector<trace::InstRecord> recs;
    for (int i = 0; i < 4; ++i) recs.push_back(load(static_cast<Addr>(i) * (2 << 20)));
    for (int i = 0; i < 12; ++i) recs.push_back(compute());
    return recs;
  };
  Rig a(make(), 3.0), b(make(), 3.0);
  a.run_ticks(1500);
  b.run_ticks(1500);
  EXPECT_EQ(a.core->committed(), b.core->committed());
  EXPECT_EQ(a.core->cycle(), b.core->cycle());
  EXPECT_EQ(a.mcu.stats().reads_served, b.mcu.stats().reads_served);
}

void expect_same_state(const CoreModel& a, const CoreModel& b) {
  EXPECT_EQ(a.cycle(), b.cycle());
  EXPECT_EQ(a.committed(), b.committed());
  const CoreRunStats& sa = a.stats();
  const CoreRunStats& sb = b.stats();
  EXPECT_EQ(sa.loads, sb.loads);
  EXPECT_EQ(sa.stores, sb.stores);
  EXPECT_EQ(sa.l1d_hits, sb.l1d_hits);
  EXPECT_EQ(sa.l2_hits, sb.l2_hits);
  EXPECT_EQ(sa.dram_loads, sb.dram_loads);
  EXPECT_EQ(sa.stall_rob, sb.stall_rob);
  EXPECT_EQ(sa.stall_dep, sb.stall_dep);
  EXPECT_EQ(sa.stall_mshr, sb.stall_mshr);
  EXPECT_EQ(sa.stall_sq, sb.stall_sq);
  EXPECT_EQ(sa.stall_backpressure, sb.stall_backpressure);
  EXPECT_EQ(sa.stall_frontend, sb.stall_frontend);
}

TEST(CoreModel, StepWindowPartitionInvariance) {
  // Advancing a core through one tick window in several step_to calls must
  // land in exactly the same state as one call covering the whole window —
  // the fast-forward inside step_to may not depend on how the caller chops
  // up time. Miss-heavy stream so the blocked/fast-forward path is hot.
  auto make = [] {
    std::vector<trace::InstRecord> recs;
    for (int i = 0; i < 6; ++i)
      recs.push_back(load(static_cast<Addr>(i + 1) * (1 << 20), i % 2 == 1));
    for (int i = 0; i < 10; ++i) recs.push_back(compute());
    recs.push_back(store(0x5000000));
    return recs;
  };
  Rig whole(make(), 3.0), chopped(make(), 3.0);
  for (Tick t = 0; t < 1500; ++t) {
    whole.hier.tick(t);
    whole.mcu.tick(t);
    whole.core->step_to((t + 1) * 8);

    chopped.hier.tick(t);
    chopped.mcu.tick(t);
    // Uneven partition of the same window, including a zero-length step.
    chopped.core->step_to(t * 8 + 3);
    chopped.core->step_to(t * 8 + 3);
    chopped.core->step_to(t * 8 + 7);
    chopped.core->step_to((t + 1) * 8);
    expect_same_state(*whole.core, *chopped.core);
    if (HasFailure()) return;  // don't spam 1500 copies of the same diff
  }
}

TEST(CoreModel, StallCountersCountCyclesNotAttempts) {
  // The stall_* statistics are defined in CPU *cycles* blocked, not in
  // issue attempts: re-stepping a blocked core (which retries the same
  // instruction) must not inflate them beyond the elapsed cycles.
  std::vector<trace::InstRecord> recs;
  recs.push_back(load(1 << 20, /*dep=*/false));
  recs.push_back(load(2 << 20, /*dep=*/true));  // serialises on the first
  Rig rig(recs, 4.0);
  rig.run_ticks(1000);
  const CoreRunStats& st = rig.core->stats();
  const std::uint64_t total_stalls = st.stall_rob + st.stall_dep + st.stall_mshr +
                                     st.stall_sq + st.stall_backpressure +
                                     st.stall_frontend;
  EXPECT_GT(st.stall_dep, 0u);
  // Each elapsed CPU cycle records at most one stall reason.
  EXPECT_LE(total_stalls, rig.core->cycle());
}

TEST(CoreModel, NextActivityCycleReflectsBlockedState) {
  // Compute-only core: always active, so the self-wake report is exactly
  // the window end the caller asked for.
  Rig busy({compute()}, 2.0);
  busy.run_ticks(10);
  EXPECT_EQ(busy.core->next_activity_cycle(), 10u * 8);

  // A dependent-miss chain blocks the core on an external DRAM fill: after
  // a window that ends blocked with no known completion, the core must
  // report kIdle (only on_fill can unblock it), and the fill must restore
  // an actionable wake-up at or before the fill cycle.
  std::vector<trace::InstRecord> recs;
  recs.push_back(load(1 << 20, false));
  recs.push_back(load(2 << 20, true));
  Rig rig(recs, 4.0);
  bool saw_idle = false, saw_wake_after_fill = false;
  for (Tick t = 0; t < 400; ++t) {
    rig.hier.tick(t);
    rig.mcu.tick(t);
    rig.core->step_to((t + 1) * 8);
    const CpuCycle wake = rig.core->next_activity_cycle();
    if (wake == CoreModel::kIdle) {
      saw_idle = true;
    } else if (saw_idle) {
      // First non-idle report after being externally blocked comes from
      // on_fill and must never lie in the already-simulated past's favour:
      // it is a cycle the caller can step to and observe progress.
      saw_wake_after_fill = true;
      EXPECT_GE(wake, rig.core->cycle());
      break;
    }
  }
  EXPECT_TRUE(saw_idle);
  EXPECT_TRUE(saw_wake_after_fill);
}

}  // namespace
}  // namespace memsched::cpu
