// lint-as: src/fixture/serve_frame_symmetry_bad.cpp
// Fixture: cache-entry-framing covers the serve subsystem's WAL record
// codec style — WireWriter/WireReader member calls inside free
// encode_/decode_ pairs — catching a swapped field sequence and a schema
// truncation just like it does for the result cache's ckpt-based codec.

namespace fixture {

class WireWriter {
 public:
  void put_u8(unsigned char);
  void put_u32(unsigned);
  void put_u64(unsigned long long);
  void put_str(const char*);
};

class WireReader {
 public:
  unsigned char get_u8();
  unsigned get_u32();
  unsigned long long get_u64();
  const char* get_str();
};

struct Record {
  unsigned long long id = 0;
  const char* key = "";
  unsigned attempts = 0;
};

// Shape 1: the writer frames id then key; the reader pulls key first.
inline void encode_swapped_record(WireWriter& w, const Record& rec) {
  w.put_u64(rec.id);
  w.put_str(rec.key);
}
inline void decode_swapped_record(WireReader& r, Record& rec) {
  rec.key = r.get_str();  // expect-lint: cache-entry-framing
  rec.id = r.get_u64();
}

// Shape 2: the writer frames three fields, the reader stops after two — a
// replayed WAL would leave every later frame misaligned.
inline void encode_short_record(WireWriter& w, const Record& rec) {
  w.put_u64(rec.id);
  w.put_str(rec.key);
  w.put_u32(rec.attempts);
}
inline void decode_short_record(WireReader& r, Record& rec) {  // expect-lint: cache-entry-framing
  rec.id = r.get_u64();
  rec.key = r.get_str();
}

}  // namespace fixture
