// lint-as: tools/fixture/contract_config_key.cpp
// Fixture: contract-config-key — getters must use keys registered through
// one of the validation idioms: literals passed to check_known(...), a
// braced extra-keys list handed to a parse helper, or a string_view key
// table. Exact matches and registered prefix families pass; an unregistered
// key fires; a suppressed read stays quiet.
#include <initializer_list>
#include <string_view>

namespace fixture {

struct Config {
  void check_known(std::initializer_list<const char*> keys) const {}
  const char* get_string(const char* key) const { return ""; }
  int get_int(const char* key) const { return 0; }
  bool get_bool(const char* key) const { return false; }
  bool has(const char* key) const { return false; }
};

inline void parse_extra(int argc, char** argv,
                        std::initializer_list<const char*> extra) {}

constexpr std::string_view kTableKeys[] = {"report"};

inline int run(int argc, char** argv, const Config& cfg) {
  cfg.check_known({"ticks", "trace", "fault."});
  parse_extra(argc, argv, {"out"});

  int acc = cfg.get_int("ticks");
  if (cfg.has("trace")) acc += 1;
  if (cfg.get_bool("fault.drop")) acc += 2;  // prefix family "fault."
  acc += cfg.get_int(cfg.get_string("report"));
  if (cfg.has("out")) acc += 3;
  acc += cfg.get_int("warmup");  // expect-lint: contract-config-key
  // memsched-lint: allow(contract-config-key)
  acc += cfg.get_int("debug.secret");
  return acc;
}

}  // namespace fixture
