// lint-as: src/fixture/contract_raw_assert.cpp
// Fixture: raw assert() is flagged; the project macros, static_assert, and a
// suppressed occurrence are not.
#include <cassert>

#define MEMSCHED_ASSERT(cond) ((void)0)
#define MEMSCHED_ASSERTF(cond, ...) ((void)0)

namespace fixture {

static_assert(sizeof(int) >= 4, "ILP32 or wider");

inline int checked_div(int a, int b) {
  assert(b != 0);  // expect-lint: contract-raw-assert
  MEMSCHED_ASSERT(b != 0);
  MEMSCHED_ASSERTF(b != 0, "divisor %d", b);
  return a / b;
}

inline int legacy_div(int a, int b) {
  // Third-party-derived code kept byte-identical on purpose.
  // memsched-lint: allow(contract-raw-assert)
  assert(b != 0);
  return a / b;
}

}  // namespace fixture
