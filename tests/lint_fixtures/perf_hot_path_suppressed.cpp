// lint-as: src/mc/perf_hot_path_suppressed.cpp
// Fixture: real perf-hot-path violations silenced by inline allow()
// comments — the suppression mechanism must cover this check too.
#include <map>
#include <memory>
#include <vector>

namespace fixture {

struct Controller {
  std::map<int, int> pending_;
  std::vector<int> scratch_;

  void tick(long now) {
    // Deliberate: this diagnostic-only walk runs once per epoch boundary.
    // memsched-lint: allow(perf-hot-path)
    for (const auto& [id, slot] : pending_) scratch_.push_back(slot);
    auto box = std::make_unique<long>(now);  // memsched-lint: allow(perf-hot-path)
    scratch_.push_back(static_cast<int>(*box));
  }
};

}  // namespace fixture
