// lint-as: src/fixture/cache_entry_framing_suppressed.cpp
// Fixture: a deliberate framing asymmetry (the reader swallows a legacy
// trailing field the writer no longer emits) silenced with allow().

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace fixture {

template <class W, class T>
void put_str(W&, const T&) {}
template <class R, class T>
void get_str(R&, T&) {}
template <class R, class T>
void get_u64(R&, T&) {}

struct Entry {
  unsigned long long legacy_rev = 0;
  const char* payload = "";
};

inline void encode_legacy(ckpt::Writer& w, const Entry& e) {
  put_str(w, e.payload);
}

// Old stores carry a trailing u64 revision we no longer write.
// memsched-lint: allow(cache-entry-framing)
inline void decode_legacy(ckpt::Reader& r, Entry& e) {
  get_str(r, e.payload);
  get_u64(r, e.legacy_rev);
}

}  // namespace fixture
