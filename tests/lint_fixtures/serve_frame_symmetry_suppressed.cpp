// lint-as: src/fixture/serve_frame_symmetry_suppressed.cpp
// Fixture: a deliberate WAL codec asymmetry — the reader tolerates a legacy
// trailing field the writer no longer emits — silenced with allow().

namespace fixture {

class WireWriter {
 public:
  void put_u64(unsigned long long);
  void put_str(const char*);
};

class WireReader {
 public:
  unsigned get_u32();
  unsigned long long get_u64();
  const char* get_str();
};

struct Record {
  unsigned long long id = 0;
  const char* spec = "";
  unsigned legacy_flags = 0;
};

inline void encode_legacy_record(WireWriter& w, const Record& rec) {
  w.put_u64(rec.id);
  w.put_str(rec.spec);
}

// Pre-v2 WALs carry a trailing flags word we no longer write.
// memsched-lint: allow(cache-entry-framing)
inline void decode_legacy_record(WireReader& r, Record& rec) {
  rec.id = r.get_u64();
  rec.spec = r.get_str();
  rec.legacy_flags = r.get_u32();
}

}  // namespace fixture
