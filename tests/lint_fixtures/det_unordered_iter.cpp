// lint-as: src/fixture/det_unordered_iter.cpp
// Fixture: det-unordered-iter must flag every hash-order-dependent walk and
// stay quiet on ordered containers.
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

using Table = std::unordered_map<int, double>;

struct Holder {
  std::unordered_map<int, int> counts_;
  std::unordered_set<int> seen_;
  std::map<int, int> ordered_;
  Table aliased_;

  int sum() const {
    int total = 0;
    for (const auto& [k, v] : counts_) total += v;  // expect-lint: det-unordered-iter
    for (const int v : seen_) total += v;           // expect-lint: det-unordered-iter
    for (const auto& [k, v] : aliased_) total += k; // expect-lint: det-unordered-iter
    for (const auto& [k, v] : ordered_) total += v;
    return total;
  }

  int first() const {
    auto it = counts_.begin();  // expect-lint: det-unordered-iter
    return it == counts_.end() ? 0 : it->second;
  }

  int lookup(int k) const {
    // Point lookups are order-independent and must not be flagged.
    const auto it = counts_.find(k);
    return it == counts_.end() ? 0 : it->second;
  }
};

}  // namespace fixture
