// lint-as: src/fixture/ckpt_symmetry_ok.cpp
// Fixture: a fully symmetric checkpointer — sections, scalars, a counted
// loop, and delegation to a nested component — produces no diagnostics.
// A save-only class (its load lives in another TU) is also quiet.

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace fixture {

inline void put_u64(ckpt::Writer&, unsigned long long) {}
inline void put_u32(ckpt::Writer&, unsigned) {}
inline void put_bool(ckpt::Writer&, bool) {}
inline unsigned long long get_u64(ckpt::Reader&) { return 0; }
inline unsigned get_u32(ckpt::Reader&) { return 0; }
inline bool get_bool(ckpt::Reader&) { return false; }
inline void begin_section(ckpt::Writer&, const char*) {}
inline void open_section(ckpt::Reader&, const char*) {}

class Bank {
 public:
  void save_state(ckpt::Writer& w) const {
    put_u32(w, open_row_);
    put_bool(w, precharged_);
  }
  void load_state(ckpt::Reader& r) {
    open_row_ = get_u32(r);
    precharged_ = get_bool(r);
  }

 private:
  unsigned open_row_ = 0;
  bool precharged_ = true;
};

class Controller {
 public:
  void save_state(ckpt::Writer& w) const {
    begin_section(w, "controller");
    put_u64(w, tick_);
    put_u32(w, bank_count_);
    for (unsigned i = 0; i < bank_count_; ++i) banks_[i].save_state(w);
  }
  void load_state(ckpt::Reader& r) {
    open_section(r, "controller");
    tick_ = get_u64(r);
    bank_count_ = get_u32(r);
    for (unsigned i = 0; i < bank_count_; ++i) banks_[i].load_state(r);
  }

 private:
  unsigned long long tick_ = 0;
  unsigned bank_count_ = 0;
  Bank banks_[8];
};

// Only one side in this TU: nothing to pair, nothing to report.
class SaveOnly {
 public:
  void save_state(ckpt::Writer& w) const { put_u64(w, stamp_); }

 private:
  unsigned long long stamp_ = 0;
};

}  // namespace fixture
