// lint-as: src/mc/perf_hot_path_ok.cpp
// Fixture: perf-hot-path stays quiet on flat-array tick bodies, on point
// lookups (order- and allocation-free), and on map walks in cold functions.
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace fixture {

struct Controller {
  std::map<int, int> row_history_;
  std::vector<std::uint32_t> bank_of_;
  std::vector<std::uint64_t> row_of_;
  std::uint64_t open_row_[8] = {};

  // The SoA shape the check protects: flat arrays, index arithmetic only.
  void tick(long now) {
    for (std::size_t i = 0; i < bank_of_.size(); ++i) {
      if (row_of_[i] == open_row_[bank_of_[i]]) row_of_[i] = static_cast<std::uint64_t>(now);
    }
    // Point lookups into a map are O(log n) pointer chasing but not an
    // order-dependent walk; they are left to the throughput gate.
    const auto it = row_history_.find(static_cast<int>(now));
    if (it != row_history_.end()) open_row_[0] = static_cast<std::uint64_t>(it->second);
  }

  // Cold path: statistics assembly may walk maps and allocate freely.
  std::vector<int> snapshot_stats() const {
    std::vector<int> out;
    for (const auto& [row, hits] : row_history_) out.push_back(hits);
    auto scratch = std::make_unique<int>(0);
    out.push_back(*scratch);
    return out;
  }

  // Calls *to* tick functions are not definitions and must not re-trigger
  // body scanning at the call site.
  void run(long until) {
    for (long t = 0; t < until; ++t) tick(t);
  }
};

}  // namespace fixture
