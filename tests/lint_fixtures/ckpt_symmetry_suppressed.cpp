// lint-as: src/fixture/ckpt_symmetry_suppressed.cpp
// Fixture: a deliberate save/load asymmetry (version-skew shim reads an
// extra legacy field) silenced with an allow() on the reported line.

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace fixture {

inline void put_u64(ckpt::Writer&, unsigned long long) {}
inline unsigned long long get_u64(ckpt::Reader&) { return 0; }
inline unsigned get_u32(ckpt::Reader&) { return 0; }

class LegacyShim {
 public:
  void save_state(ckpt::Writer& w) const { put_u64(w, tick_); }

  // Old snapshots carry a trailing u32 revision we no longer write.
  // memsched-lint: allow(ckpt-symmetry)
  void load_state(ckpt::Reader& r) {
    tick_ = get_u64(r);
    (void)get_u32(r);
  }

 private:
  unsigned long long tick_ = 0;
};

}  // namespace fixture
