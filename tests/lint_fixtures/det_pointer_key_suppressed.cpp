// lint-as: src/fixture/det_pointer_key_suppressed.cpp
// Fixture: det-pointer-key suppression on the flagged declaration.
#include <map>

namespace fixture {

struct Request {
  int id;
};

struct Holder {
  // Keyed by identity on purpose; consumers never iterate.
  // memsched-lint: allow(det-pointer-key)
  std::map<Request*, int> by_identity_;
};

}  // namespace fixture
