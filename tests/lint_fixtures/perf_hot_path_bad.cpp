// lint-as: src/mc/perf_hot_path_bad.cpp
// Fixture: perf-hot-path must flag node-based container walks and heap
// allocation inside controller tick-path functions (tick / *_tick / tick_*).
#include <map>
#include <memory>
#include <vector>

namespace fixture {

struct Controller {
  std::map<int, int> pending_;
  std::vector<int> scratch_;

  void tick(long now) {
    for (const auto& [id, slot] : pending_) {  // expect-lint: perf-hot-path
      scratch_.push_back(slot + static_cast<int>(now));
    }
    auto it = pending_.begin();  // expect-lint: perf-hot-path
    if (it != pending_.end()) scratch_.push_back(it->second);
    int* leak = new int(7);  // expect-lint: perf-hot-path
    delete leak;
  }

  void cmd_tick() {
    auto box = std::make_unique<int>(3);  // expect-lint: perf-hot-path
    scratch_.push_back(*box);
  }

  void tick_refresh() {
    void* raw = malloc(16);  // expect-lint: perf-hot-path
    free(raw);
  }
};

}  // namespace fixture
