// lint-as: src/fixture/serve_frame_symmetry_ok.cpp
// Fixture: a field-for-field symmetric WAL record codec in the serve
// subsystem's WireWriter/WireReader style is clean, as is an encoder whose
// decoder lives in another translation unit.

namespace fixture {

class WireWriter {
 public:
  void put_u8(unsigned char);
  void put_u32(unsigned);
  void put_u64(unsigned long long);
  void put_str(const char*);
};

class WireReader {
 public:
  unsigned char get_u8();
  unsigned get_u32();
  unsigned long long get_u64();
  const char* get_str();
};

struct Record {
  unsigned long long id = 0;
  const char* key = "";
  unsigned char state = 0;
  unsigned attempts = 0;
  const char* spec = "";
};

// Mirror images: the exact shape of the serve queue's WAL record codec.
inline void encode_job_record(WireWriter& w, const Record& rec) {
  w.put_u64(rec.id);
  w.put_str(rec.key);
  w.put_u8(rec.state);
  w.put_u32(rec.attempts);
  w.put_str(rec.spec);
}
inline void decode_job_record(WireReader& r, Record& rec) {
  rec.id = r.get_u64();
  rec.key = r.get_str();
  rec.state = r.get_u8();
  rec.attempts = r.get_u32();
  rec.spec = r.get_str();
}

// A one-sided encoder (its reader is elsewhere) pairs with nothing here.
inline void encode_export_record(WireWriter& w, const Record& rec) {
  w.put_str(rec.spec);
}

// Call sites are not definitions; a round trip contributes no pair.
inline void roundtrip(WireWriter& w, WireReader& r, Record& rec) {
  encode_job_record(w, rec);
  decode_job_record(r, rec);
}

}  // namespace fixture
