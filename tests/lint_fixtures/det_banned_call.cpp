// lint-as: src/fixture/det_banned_call.cpp
// Fixture: det-banned-call flags wall-clock and libc randomness/time entry
// points outside the blessed wrappers, including clock aliases, and leaves
// same-named member functions and namespaced lookalikes alone.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

using Clock = std::chrono::steady_clock;

struct Stopwatch {
  long time() const { return 0; }   // member named `time` is fine
  long rand() const { return 0; }
};

namespace mylib {
inline int time() { return 0; }
}  // namespace mylib

inline long bad_calls() {
  long acc = 0;
  acc += std::rand();                                        // expect-lint: det-banned-call
  std::srand(42);                                            // expect-lint: det-banned-call
  acc += static_cast<long>(time(nullptr));                   // expect-lint: det-banned-call
  acc += static_cast<long>(std::time(nullptr));              // expect-lint: det-banned-call
  std::random_device rd;                                     // expect-lint: det-banned-call
  acc += static_cast<long>(rd());
  auto t0 = std::chrono::steady_clock::now();                // expect-lint: det-banned-call
  auto t1 = std::chrono::system_clock::now();                // expect-lint: det-banned-call
  auto t2 = Clock::now();                                    // expect-lint: det-banned-call
  acc += t0.time_since_epoch().count();
  acc += t1.time_since_epoch().count();
  acc += t2.time_since_epoch().count();
  return acc;
}

inline long ok_calls(const Stopwatch& sw) {
  long acc = 0;
  acc += sw.time();        // member call, not ::time
  acc += sw.rand();
  acc += mylib::time();    // user namespace, not the libc symbol
  return acc;
}

}  // namespace fixture
