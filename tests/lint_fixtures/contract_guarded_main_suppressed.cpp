// lint-as: tools/fixture/contract_guarded_main_suppressed.cpp
// Fixture: contract-guarded-main suppression for a micro-tool that must not
// pull in the harness library.

// memsched-lint: allow(contract-guarded-main)
int main() { return 0; }
