// lint-as: src/fixture/cache_entry_framing_ok.cpp
// Fixture: symmetric encode_/decode_ pairs — including section framing — and
// an encoder with no matching decoder are all clean.

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace fixture {

template <class W, class T>
void put_str(W&, const T&) {}
template <class W, class T>
void put_u64(W&, const T&) {}
template <class R, class T>
void get_str(R&, T&) {}
template <class R, class T>
void get_u64(R&, T&) {}
template <class W>
void begin_section(W&, const char*) {}
template <class W>
void end_section(W&) {}
template <class R>
void open_section(R&, const char*) {}
template <class R>
void close_section(R&) {}

struct Entry {
  unsigned long long ticks = 0;
  const char* name = "";
  const char* payload = "";
};

// Field-for-field mirror images, section framing included.
inline void encode_result(ckpt::Writer& w, const Entry& e) {
  begin_section(w, "result");
  put_str(w, e.name);
  put_str(w, e.payload);
  put_u64(w, e.ticks);
  end_section(w);
}
inline void decode_result(ckpt::Reader& r, Entry& e) {
  open_section(r, "result");
  get_str(r, e.name);
  get_str(r, e.payload);
  get_u64(r, e.ticks);
  close_section(r);
}

// A writer whose reader lives in another translation unit pairs with
// nothing here and must not fire.
inline void encode_exported(ckpt::Writer& w, const Entry& e) {
  put_str(w, e.payload);
}

// Call sites and declarations are not definitions; neither contributes a
// side to the pairing.
void decode_elsewhere(ckpt::Reader& r, Entry& e);
inline void roundtrip(ckpt::Writer& w, ckpt::Reader& r, Entry& e) {
  encode_result(w, e);
  decode_result(r, e);
}

}  // namespace fixture
