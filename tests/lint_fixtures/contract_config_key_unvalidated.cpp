// lint-as: tools/fixture/contract_config_key_unvalidated.cpp
// Fixture: a TU that never calls check_known has opted out of key
// validation, so contract-config-key stays silent even for odd keys.

namespace fixture {

struct Config {
  int get_int(const char* key) const { return 0; }
};

inline int run(const Config& cfg) { return cfg.get_int("anything.goes"); }

}  // namespace fixture
