// lint-as: src/fixture/ckpt_symmetry_bad.cpp
// Fixture: ckpt-symmetry catches the three asymmetry shapes — reordered
// field sequence, mismatched field count, and a member the load side drops.

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace fixture {

// Shape 1: save and load touch the same fields in different order.
class Reordered {
 public:
  void save_state(ckpt::Writer& w) const {
    put_u64(w, ticks_);
    put_bool(w, drain_);
  }
  void load_state(ckpt::Reader& r) {
    get_bool(r, drain_);  // expect-lint: ckpt-symmetry
    get_u64(r, ticks_);
  }

 private:
  template <class W, class T>
  static void put_u64(W&, const T&) {}
  template <class W, class T>
  static void put_bool(W&, const T&) {}
  template <class R, class T>
  static void get_u64(R&, T&) {}
  template <class R, class T>
  static void get_bool(R&, T&) {}

  unsigned long long ticks_ = 0;
  bool drain_ = false;
};

// Shape 2: save serializes two fields, load reads only one.
class Truncated {
 public:
  void save_state(ckpt::Writer& w) const {
    put_u32(w, row_);
    put_u32(w, col_);
  }
  void load_state(ckpt::Reader& r) {  // expect-lint: ckpt-symmetry
    get_u32(r, row_);
  }

 private:
  template <class W, class T>
  static void put_u32(W&, const T&) {}
  template <class R, class T>
  static void get_u32(R&, T&) {}

  unsigned row_ = 0;
  unsigned col_ = 0;
};

}  // namespace fixture

// Shape 3 (out-of-class definitions): the event sequence matches but the
// member written by save_state is never mentioned on the load side — the
// restored object silently keeps its default.
namespace fixture2 {

class Dropped {
 public:
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  unsigned long long epoch_ = 0;
};

inline void put_u64(ckpt::Writer&, unsigned long long) {}
inline unsigned long long get_u64(ckpt::Reader&) { return 0; }

void Dropped::save_state(ckpt::Writer& w) const { put_u64(w, epoch_); }

void Dropped::load_state(ckpt::Reader& r) {  // expect-lint: ckpt-symmetry
  (void)get_u64(r);  // value read to keep the stream aligned, then dropped
}

}  // namespace fixture2
