// lint-as: src/util/wallclock.hpp
// Fixture: the blessed wrapper files may touch the real clocks — no
// diagnostics expected even though every line here would fire elsewhere.
#include <chrono>

namespace fixture {

inline auto now() { return std::chrono::steady_clock::now(); }
inline auto wall() { return std::chrono::system_clock::now(); }

}  // namespace fixture
