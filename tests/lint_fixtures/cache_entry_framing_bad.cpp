// lint-as: src/fixture/cache_entry_framing_bad.cpp
// Fixture: cache-entry-framing catches encode_/decode_ pairs whose field
// sequences diverge — reordered fields and a field-count mismatch.

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace fixture {

template <class W, class T>
void put_str(W&, const T&) {}
template <class W, class T>
void put_u64(W&, const T&) {}
template <class R, class T>
void get_str(R&, T&) {}
template <class R, class T>
void get_u64(R&, T&) {}

struct Entry {
  unsigned long long ticks = 0;
  const char* name = "";
  const char* payload = "";
};

// Shape 1: the writer frames name then ticks; the reader pulls ticks first.
inline void encode_swapped(ckpt::Writer& w, const Entry& e) {
  put_str(w, e.name);
  put_u64(w, e.ticks);
}
inline void decode_swapped(ckpt::Reader& r, Entry& e) {
  get_u64(r, e.ticks);  // expect-lint: cache-entry-framing
  get_str(r, e.name);
}

// Shape 2: the writer frames two fields, the reader stops after one.
inline void encode_truncated(ckpt::Writer& w, const Entry& e) {
  put_str(w, e.name);
  put_str(w, e.payload);
}
inline void decode_truncated(ckpt::Reader& r, Entry& e) {  // expect-lint: cache-entry-framing
  get_str(r, e.name);
}

}  // namespace fixture
