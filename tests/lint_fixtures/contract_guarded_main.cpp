// lint-as: tools/fixture/contract_guarded_main.cpp
// Fixture: a tool entry point that bypasses harness::guarded_main violates
// the exit-code contract.

int main(int argc, char** argv) {  // expect-lint: contract-guarded-main
  (void)argc;
  (void)argv;
  return 0;
}
