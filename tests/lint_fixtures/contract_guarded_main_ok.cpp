// lint-as: tools/fixture/contract_guarded_main_ok.cpp
// Fixture: the blessed entry-point shape — main() delegates straight to
// harness::guarded_main — is accepted, as is a helper with main in its name.

namespace memsched::harness {
template <class Fn>
int guarded_main(const char* tool, Fn&& body) {
  return body();
}
}  // namespace memsched::harness

int run_main_loop() { return 0; }  // not an entry point, never inspected

int main(int, char**) {
  return memsched::harness::guarded_main("fixture", [] { return run_main_loop(); });
}
