// lint-as: src/fixture/det_banned_call_suppressed.cpp
// Fixture: det-banned-call suppression for a deliberate wall-clock read.
#include <chrono>

namespace fixture {

inline auto startup_stamp() {
  // Logged once at startup for humans; never feeds simulation state.
  // memsched-lint: allow(det-banned-call)
  return std::chrono::system_clock::now();
}

}  // namespace fixture
