// lint-as: src/fixture/det_unordered_iter_suppressed.cpp
// Fixture: both suppression placements (same line, line above) silence
// det-unordered-iter, and allow(*) silences any check.
#include <unordered_map>

namespace fixture {

struct Holder {
  std::unordered_map<int, int> counts_;

  int sum() const {
    int total = 0;
    for (const auto& [k, v] : counts_) total += v;  // memsched-lint: allow(det-unordered-iter)
    // memsched-lint: allow(det-unordered-iter)
    for (const auto& [k, v] : counts_) total += k;
    // memsched-lint: allow(*)
    auto it = counts_.begin();
    return total + (it == counts_.end() ? 0 : it->second);
  }
};

}  // namespace fixture
