// lint-as: src/fixture/det_pointer_key.cpp
// Fixture: det-pointer-key flags ordered containers keyed by raw pointer
// (iteration order = allocation order = nondeterministic) and leaves
// value-keyed ones alone.
#include <map>
#include <set>
#include <string>

namespace fixture {

struct Request {
  int id;
};

struct Holder {
  std::map<Request*, int> by_ptr_;             // expect-lint: det-pointer-key
  std::set<const Request*> ptr_set_;           // expect-lint: det-pointer-key
  std::multimap<Request*, int> multi_;         // expect-lint: det-pointer-key
  std::map<std::string, int> by_name_;
  std::set<int> ids_;
  std::map<int, Request*> ptr_values_ok_;
};

}  // namespace fixture
