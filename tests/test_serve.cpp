// Serve subsystem robustness tests: the wire codec and frame parser, the
// durable job queue (SIGKILL corruption matrix over every byte prefix of the
// WAL, bit-flip recovery, degraded mode under injected ENOSPC/EIO and its
// healing compaction), and the daemon protocol end-to-end over a real
// Unix-domain socket (submit/status/result/cancel/drain, duplicate
// collapsing, two-client concurrent-submission parity, graceful-stop exit
// code, restart recovery, and cross-grid result-cache sharing).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "harness/exit_codes.hpp"
#include "harness/grid.hpp"
#include "harness/orchestrator.hpp"
#include "serve/daemon.hpp"
#include "serve/job_queue.hpp"
#include "serve/wire.hpp"
#include "util/config.hpp"
#include "util/fs_fault.hpp"
#include "util/json.hpp"
#include "util/unix_socket.hpp"
#include "util/wallclock.hpp"

using namespace memsched;
namespace fs = std::filesystem;

namespace {

std::string tmp_dir(const std::string& name) {
  const std::string d = testing::TempDir() + "memsched_serve_" + name;
  fs::remove_all(d);
  return d;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Scripted fault hooks: fail one named op with one errno for the first
/// `fail_count` consultations, optionally clamp writes.
struct ScriptedFaults : util::FsFaultHooks {
  std::string fail_name;
  int fail_errno = 0;
  int fail_count = 0;  // -1 = always
  std::size_t clamp = 0;

  std::size_t clamp_write(std::size_t requested) override {
    if (clamp == 0 || requested <= clamp) return requested;
    return clamp;
  }
  int fail_op(const char* op) override {
    if (fail_name != op || fail_count == 0) return 0;
    if (fail_count > 0) --fail_count;
    return fail_errno;
  }
};

/// A quick, real grid spec (one workload x one scheme, short traces) in the
/// daemon's submission format.
const char* kQuickSpec =
    "workloads=2MEM-1\n"
    "schemes=HF-RF\n"
    "insts=15000\n"
    "profile_insts=50000\n";

/// The dedupe key the daemon computes for a spec — same parse, same
/// fingerprint.
std::string key_for_spec(const std::string& spec) {
  util::Config cli;
  std::istringstream lines(spec);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty()) {
      EXPECT_FALSE(cli.parse_token(line).has_value()) << line;
    }
  }
  return harness::fingerprint(harness::grid_from_config(cli));
}

// ---------------------------------------------------------------------------
// Wire codec.

TEST(ServeWire, WriterReaderRoundTrip) {
  serve::WireWriter w;
  w.put_u8(7);
  w.put_u32(0xdead'beef);
  w.put_u64(0x0123'4567'89ab'cdefULL);
  w.put_str("hello");
  w.put_str("");  // empty strings are legal
  const std::vector<std::uint8_t> buf = w.take();

  serve::WireReader r(buf);
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_u32(), 0xdead'beefu);
  EXPECT_EQ(r.get_u64(), 0x0123'4567'89ab'cdefULL);
  EXPECT_EQ(r.get_str(), "hello");
  EXPECT_EQ(r.get_str(), "");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ServeWire, ReaderThrowsOnOverRead) {
  serve::WireWriter w;
  w.put_u32(42);
  const std::vector<std::uint8_t> buf = w.bytes();

  serve::WireReader r(buf);
  EXPECT_THROW((void)r.get_u64(), serve::WireError);  // 8 > 4 available

  serve::WireReader r2(buf);
  (void)r2.get_u32();
  EXPECT_THROW((void)r2.get_u8(), serve::WireError);  // exhausted
}

TEST(ServeWire, ReaderThrowsOnOversizedStringLength) {
  serve::WireWriter w;
  w.put_u32(0x00ff'ffff);  // declared string length with no bytes behind it
  w.put_u8(0);
  serve::WireReader r(w.bytes());
  EXPECT_THROW((void)r.get_str(), serve::WireError);
}

TEST(ServeWire, ParseFrameAcceptsWholeAndChainsSequentially) {
  const std::vector<std::uint8_t> p1 = {1, 2, 3};
  const std::vector<std::uint8_t> p2 = {9};
  std::vector<std::uint8_t> stream = serve::frame_payload(serve::kQueueFrameMagic, p1);
  const std::vector<std::uint8_t> f2 = serve::frame_payload(serve::kQueueFrameMagic, p2);
  stream.insert(stream.end(), f2.begin(), f2.end());

  const serve::FrameParse a =
      serve::parse_frame(serve::kQueueFrameMagic, stream.data(), stream.size());
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a.payload, p1);
  const serve::FrameParse b = serve::parse_frame(
      serve::kQueueFrameMagic, stream.data() + a.consumed, stream.size() - a.consumed);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(b.payload, p2);
  EXPECT_EQ(a.consumed + b.consumed, stream.size());
}

TEST(ServeWire, ParseFrameEveryProperPrefixIsNeedMore) {
  const std::vector<std::uint8_t> frame =
      serve::frame_payload(serve::kQueueFrameMagic, {10, 20, 30, 40});
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const serve::FrameParse fp =
        serve::parse_frame(serve::kQueueFrameMagic, frame.data(), len);
    EXPECT_FALSE(fp.ok) << "prefix " << len;
    EXPECT_TRUE(fp.need_more) << "prefix " << len;
  }
}

TEST(ServeWire, ParseFrameRejectsCorruption) {
  // Wrong magic from the very first byte: corrupt, not need_more.
  const std::uint8_t junk[] = {0xff};
  serve::FrameParse fp = serve::parse_frame(serve::kQueueFrameMagic, junk, 1);
  EXPECT_FALSE(fp.ok);
  EXPECT_FALSE(fp.need_more);

  // Implausible length field.
  serve::WireWriter w;
  w.put_u32(serve::kQueueFrameMagic);
  w.put_u32(serve::kMaxFramePayload + 1);
  w.put_u32(0);
  fp = serve::parse_frame(serve::kQueueFrameMagic, w.bytes().data(), w.bytes().size());
  EXPECT_FALSE(fp.ok);
  EXPECT_FALSE(fp.need_more);

  // Payload flip: CRC mismatch.
  std::vector<std::uint8_t> frame =
      serve::frame_payload(serve::kQueueFrameMagic, {10, 20, 30});
  frame.back() ^= 0x01;
  fp = serve::parse_frame(serve::kQueueFrameMagic, frame.data(), frame.size());
  EXPECT_FALSE(fp.ok);
  EXPECT_FALSE(fp.need_more);
}

TEST(ServeWire, QueueRecordCodecRoundTripAndStructuralChecks) {
  serve::QueueRecord rec;
  rec.id = 42;
  rec.key = "grid-v2|w=2MEM-1|s=HF-RF|...";
  rec.state = serve::JobState::kFailed;
  rec.attempts = 3;
  rec.spec = kQuickSpec;
  rec.error = "runner exited 5 (internal)";

  const std::vector<std::uint8_t> bytes = serve::encode_queue_record(rec);
  const serve::QueueRecord back = serve::decode_queue_record(bytes.data(), bytes.size());
  EXPECT_EQ(back.id, rec.id);
  EXPECT_EQ(back.key, rec.key);
  EXPECT_EQ(back.state, rec.state);
  EXPECT_EQ(back.attempts, rec.attempts);
  EXPECT_EQ(back.spec, rec.spec);
  EXPECT_EQ(back.error, rec.error);

  // Trailing bytes are corruption, not slack.
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_THROW((void)serve::decode_queue_record(padded.data(), padded.size()),
               serve::WireError);

  // An out-of-range state byte is corruption too. The state field sits right
  // after id (u64) + key (u32 len + bytes).
  std::vector<std::uint8_t> bad = bytes;
  bad[8 + 4 + rec.key.size()] = 99;
  EXPECT_THROW((void)serve::decode_queue_record(bad.data(), bad.size()),
               serve::WireError);
}

// ---------------------------------------------------------------------------
// Job queue state machine and persistence.

using JobSnap =
    std::map<std::uint64_t,
             std::tuple<std::string, serve::JobState, std::uint32_t, std::string,
                        std::string>>;

JobSnap snap(const serve::JobQueue& q) {
  JobSnap out;
  for (const serve::QueueRecord* rec : q.jobs()) {
    out[rec->id] = {rec->key, rec->state, rec->attempts, rec->spec, rec->error};
  }
  return out;
}

TEST(ServeQueue, SubmitDedupeAndLifecycle) {
  const std::string dir = tmp_dir("lifecycle");
  serve::JobQueue q(dir, nullptr, /*verbose=*/false);
  ASSERT_TRUE(q.open());

  const auto a = q.submit("key-a", "spec-a");
  EXPECT_EQ(a.id, 1u);
  EXPECT_TRUE(a.accepted);
  EXPECT_FALSE(a.duplicate);

  // Same key again: collapsed, nothing new runs.
  const auto a2 = q.submit("key-a", "spec-a");
  EXPECT_EQ(a2.id, 1u);
  EXPECT_FALSE(a2.accepted);
  EXPECT_TRUE(a2.duplicate);

  const auto b = q.submit("key-b", "spec-b");
  EXPECT_EQ(b.id, 2u);

  EXPECT_EQ(q.next_queued()->id, 1u);
  EXPECT_TRUE(q.mark_running(1));
  EXPECT_EQ(q.find(1)->attempts, 1u);
  EXPECT_EQ(q.next_queued()->id, 2u);
  EXPECT_TRUE(q.mark_done(1));

  EXPECT_TRUE(q.mark_running(2));
  EXPECT_TRUE(q.requeue(2));  // graceful park keeps the attempt count
  EXPECT_EQ(q.find(2)->state, serve::JobState::kQueued);
  EXPECT_EQ(q.find(2)->attempts, 1u);
  EXPECT_TRUE(q.mark_running(2));
  EXPECT_TRUE(q.mark_failed(2, "boom"));

  // Done jobs dedupe; failed jobs requeue on resubmission with a fresh
  // attempt budget.
  EXPECT_FALSE(q.submit("key-a", "spec-a").accepted);
  const auto b2 = q.submit("key-b", "spec-b2");
  EXPECT_EQ(b2.id, 2u);
  EXPECT_TRUE(b2.accepted);
  EXPECT_TRUE(b2.duplicate);
  EXPECT_EQ(q.find(2)->state, serve::JobState::kQueued);
  EXPECT_EQ(q.find(2)->attempts, 0u);
  EXPECT_EQ(q.find(2)->spec, "spec-b2");
  EXPECT_TRUE(q.find(2)->error.empty());

  EXPECT_TRUE(q.mark_cancelled(2));
  EXPECT_EQ(q.next_queued(), nullptr);

  // Unknown ids are reported, not UB.
  EXPECT_FALSE(q.mark_running(99));
  EXPECT_EQ(q.find(99), nullptr);
  EXPECT_EQ(q.find_by_key("nope"), nullptr);
  EXPECT_EQ(q.find_by_key("key-a")->id, 1u);

  // Everything above survives a reopen byte-for-byte at the state level.
  const JobSnap before = snap(q);
  serve::JobQueue q2(dir, nullptr, /*verbose=*/false);
  ASSERT_TRUE(q2.open());
  EXPECT_EQ(snap(q2), before);
  EXPECT_EQ(q2.truncated_bytes(), 0u);

  // Compaction folds history to one frame per job and preserves state.
  ASSERT_TRUE(q2.compact());
  serve::JobQueue q3(dir, nullptr, /*verbose=*/false);
  ASSERT_TRUE(q3.open());
  EXPECT_EQ(snap(q3), before);
  EXPECT_EQ(q3.replayed(), before.size());
}

// The SIGKILL corruption matrix: run a known operation history, then replay
// every byte-length prefix of the WAL as if the daemon had been SIGKILLed at
// exactly that offset. Recovery must land on precisely the state after the
// last wholly-durable operation — no lost completed frames, no duplicated or
// invented jobs — and client-style resubmission must converge back to the
// full job set.
TEST(ServeQueue, SigkillCorruptionMatrixRecoversExactPrefix) {
  const std::string dir = tmp_dir("matrix_src");
  serve::JobQueue q(dir, nullptr, /*verbose=*/false);
  ASSERT_TRUE(q.open());

  std::vector<JobSnap> snaps;      // state after op k (snaps[0] = empty)
  std::vector<std::uint64_t> sizes;  // durable WAL bytes after op k
  const auto checkpoint = [&] {
    snaps.push_back(snap(q));
    sizes.push_back(fs::file_size(q.wal_path()));
  };
  snaps.push_back({});
  sizes.push_back(0);

  // Each operation appends exactly one frame.
  q.submit("key-1", "spec one");
  checkpoint();
  q.submit("key-2", "spec two");
  checkpoint();
  q.mark_running(1);
  checkpoint();
  q.mark_done(1);
  checkpoint();
  q.submit("key-3", "spec three");
  checkpoint();
  q.mark_running(2);
  checkpoint();
  q.mark_failed(2, "io troubles");
  checkpoint();
  q.submit("key-2", "spec two again");  // failed -> requeued
  checkpoint();
  q.mark_cancelled(3);
  checkpoint();

  const std::string wal = slurp(q.wal_path());
  ASSERT_EQ(wal.size(), sizes.back());

  const std::string crash_dir = tmp_dir("matrix_crash");
  for (std::size_t cut = 0; cut <= wal.size(); ++cut) {
    fs::remove_all(crash_dir);
    fs::create_directories(crash_dir);
    spew(crash_dir + "/queue.wal", wal.substr(0, cut));

    serve::JobQueue rec(crash_dir, nullptr, /*verbose=*/false);
    ASSERT_TRUE(rec.open()) << "cut=" << cut;

    // The expected state is the latest operation whose frame fits in the cut.
    std::size_t op = 0;
    while (op + 1 < sizes.size() && sizes[op + 1] <= cut) ++op;
    EXPECT_EQ(snap(rec), snaps[op]) << "cut=" << cut;
    EXPECT_EQ(rec.replayed(), op) << "cut=" << cut;
    EXPECT_EQ(rec.truncated_bytes(), cut - sizes[op]) << "cut=" << cut;

    // Unacked submissions are retried by the client; resubmitting every key
    // converges to the full set with no duplicates, whatever survived.
    rec.submit("key-1", "spec one");
    rec.submit("key-2", "spec two");
    rec.submit("key-3", "spec three");
    EXPECT_EQ(rec.jobs().size(), 3u) << "cut=" << cut;
    EXPECT_NE(rec.find_by_key("key-1"), nullptr) << "cut=" << cut;
    EXPECT_NE(rec.find_by_key("key-2"), nullptr) << "cut=" << cut;
    EXPECT_NE(rec.find_by_key("key-3"), nullptr) << "cut=" << cut;
  }
}

// Media corruption rather than a torn append: flip every byte of the WAL in
// turn. CRC framing must detect each flip and recovery must truncate to a
// whole-frame prefix — the recovered state is always some point of the real
// history, never an invented one.
TEST(ServeQueue, BitFlipRecoveryLandsOnRealHistory) {
  const std::string dir = tmp_dir("flip_src");
  serve::JobQueue q(dir, nullptr, /*verbose=*/false);
  ASSERT_TRUE(q.open());

  std::vector<JobSnap> history;
  history.push_back({});
  q.submit("key-1", "first spec");
  history.push_back(snap(q));
  q.mark_running(1);
  history.push_back(snap(q));
  q.submit("key-2", "second spec");
  history.push_back(snap(q));
  q.mark_done(1);
  history.push_back(snap(q));

  const std::string wal = slurp(q.wal_path());
  const std::string flip_dir = tmp_dir("flip_crash");
  for (std::size_t i = 0; i < wal.size(); ++i) {
    std::string mutated = wal;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xff);
    fs::remove_all(flip_dir);
    fs::create_directories(flip_dir);
    spew(flip_dir + "/queue.wal", mutated);

    serve::JobQueue rec(flip_dir, nullptr, /*verbose=*/false);
    ASSERT_TRUE(rec.open()) << "flip at " << i;
    const JobSnap got = snap(rec);
    bool matches_history = false;
    for (const JobSnap& h : history) matches_history |= (got == h);
    EXPECT_TRUE(matches_history) << "flip at " << i << " invented state";
  }
}

// ---------------------------------------------------------------------------
// Degraded mode: queue I/O failure must not lose state or kill the daemon.

TEST(ServeQueue, EnospcDegradesServesFromMemoryAndHealsByCompaction) {
  const std::string dir = tmp_dir("enospc");
  ScriptedFaults faults;
  faults.fail_name = "write";
  faults.fail_errno = ENOSPC;
  faults.fail_count = -1;

  serve::JobQueue q(dir, &faults, /*verbose=*/false);
  ASSERT_TRUE(q.open());

  // The append fails, the torn bytes are rolled back, and the queue keeps
  // serving the submission from memory.
  q.submit("key-1", "spec one");
  EXPECT_TRUE(q.degraded());
  ASSERT_NE(q.find(1), nullptr);
  EXPECT_EQ(fs::file_size(q.wal_path()), 0u) << "torn bytes must be rolled back";

  // Still failing: the healing compaction attempt also fails, state still
  // advances in memory.
  q.submit("key-2", "spec two");
  EXPECT_TRUE(q.degraded());
  EXPECT_EQ(q.jobs().size(), 2u);

  // Disk recovers: the next mutation heals the queue via compaction, and the
  // WAL then holds EVERYTHING, including the mutations made while degraded.
  faults.fail_count = 0;
  q.mark_running(1);
  EXPECT_FALSE(q.degraded());

  serve::JobQueue back(dir, nullptr, /*verbose=*/false);
  ASSERT_TRUE(back.open());
  EXPECT_EQ(snap(back), snap(q));
  EXPECT_EQ(back.find(1)->state, serve::JobState::kRunning);
  EXPECT_EQ(back.find(2)->state, serve::JobState::kQueued);
}

TEST(ServeQueue, FsyncFailureDegradesThenHeals) {
  const std::string dir = tmp_dir("fsync");
  ScriptedFaults faults;
  faults.fail_name = "fsync";
  faults.fail_errno = EIO;
  faults.fail_count = 1;

  serve::JobQueue q(dir, &faults, /*verbose=*/false);
  ASSERT_TRUE(q.open());

  // A write that cannot be made durable is a failed write: rolled back and
  // degraded, never half-acknowledged.
  q.submit("key-1", "spec one");
  EXPECT_TRUE(q.degraded());
  EXPECT_EQ(fs::file_size(q.wal_path()), 0u);

  // The fault was transient, so the very next mutation heals.
  q.submit("key-2", "spec two");
  EXPECT_FALSE(q.degraded());

  serve::JobQueue back(dir, nullptr, /*verbose=*/false);
  ASSERT_TRUE(back.open());
  EXPECT_EQ(back.jobs().size(), 2u);
}

TEST(ServeQueue, ShortWritesAreInvisible) {
  // A kernel that only takes a few bytes per write() must not corrupt frames.
  const std::string dir = tmp_dir("shortw");
  ScriptedFaults faults;
  faults.clamp = 3;

  serve::JobQueue q(dir, &faults, /*verbose=*/false);
  ASSERT_TRUE(q.open());
  q.submit("key-1", "a spec that spans many short writes");
  q.mark_running(1);
  EXPECT_FALSE(q.degraded());

  serve::JobQueue back(dir, nullptr, /*verbose=*/false);
  ASSERT_TRUE(back.open());
  EXPECT_EQ(snap(back), snap(q));
}

// ---------------------------------------------------------------------------
// Daemon protocol over a real socket (inline execution: the test is
// threaded, so jobs run inside the event loop; the forked-runner path is
// covered by the serve smoke script and the tool round-trip ctest).

serve::ServeConfig daemon_cfg(const std::string& dir) {
  serve::ServeConfig cfg;
  cfg.socket_path = dir + "/d.sock";
  cfg.state_dir = dir + "/state";
  cfg.inline_exec = true;
  cfg.verbose = false;
  cfg.backoff_seconds = 0.0;
  return cfg;
}

/// One request/reply exchange. `extra` receives the raw second frame when
/// the reply advertises one (the `result` command's report bytes). Retries
/// connection failures briefly so tests can race the daemon thread's startup.
util::Json rpc(const std::string& sock, const util::Json& req,
               std::string* extra = nullptr) {
  const util::MonotonicTime start = util::monotonic_now();
  for (;;) {
    util::Fd conn = util::unix_connect(sock);
    if (conn.valid()) {
      EXPECT_TRUE(serve::write_json(conn.get(), req));
      std::vector<std::uint8_t> payload;
      std::string err;
      EXPECT_TRUE(serve::read_message(conn.get(), &payload, &err)) << err;
      const util::Json resp = util::Json::parse(std::string_view(
          reinterpret_cast<const char*>(payload.data()), payload.size()));
      if (extra != nullptr && resp.find("bytes") != nullptr) {
        std::vector<std::uint8_t> raw;
        EXPECT_TRUE(serve::read_message(conn.get(), &raw, &err)) << err;
        extra->assign(raw.begin(), raw.end());
      }
      return resp;
    }
    if (util::seconds_between(start, util::monotonic_now()) > 10.0) {
      ADD_FAILURE() << "cannot connect to " << sock;
      return util::Json::object();
    }
    ::usleep(20 * 1000);
  }
}

util::Json cmd(const std::string& name) {
  util::Json req = util::Json::object();
  req["cmd"] = name;
  return req;
}

/// Polls `status` until job `id` reaches a terminal state; returns it.
std::string wait_terminal(const std::string& sock, std::uint64_t id) {
  const util::MonotonicTime start = util::monotonic_now();
  for (;;) {
    util::Json req = cmd("status");
    req["id"] = id;
    const util::Json resp = rpc(sock, req);
    if (resp.find("ok") != nullptr && resp.at("ok").as_bool()) {
      const std::string state = resp.at("jobs").at(0).at("state").as_string();
      if (state == "done" || state == "failed" || state == "cancelled") return state;
    }
    if (util::seconds_between(start, util::monotonic_now()) > 120.0) {
      ADD_FAILURE() << "job " << id << " never reached a terminal state";
      return "timeout";
    }
    ::usleep(50 * 1000);
  }
}

TEST(ServeDaemon, SubmitStatusResultDuplicateCancelDrain) {
  const std::string dir = tmp_dir("daemon_e2e");
  fs::create_directories(dir);
  serve::Daemon d(daemon_cfg(dir));
  ASSERT_TRUE(d.start()) << d.error();
  std::thread loop([&] { (void)d.run(); });

  const util::Json pong = rpc(dir + "/d.sock", cmd("ping"));
  EXPECT_TRUE(pong.at("ok").as_bool());
  EXPECT_FALSE(pong.at("degraded").as_bool());

  util::Json submit = cmd("submit");
  submit["spec"] = kQuickSpec;
  const util::Json acc = rpc(dir + "/d.sock", submit);
  ASSERT_TRUE(acc.at("ok").as_bool()) << acc.dump(0);
  EXPECT_EQ(acc.at("id").as_uint(), 1u);
  EXPECT_FALSE(acc.at("duplicate").as_bool());

  EXPECT_EQ(wait_terminal(dir + "/d.sock", 1), "done");

  std::string report;
  util::Json result = cmd("result");
  result["id"] = std::uint64_t{1};
  const util::Json res = rpc(dir + "/d.sock", result, &report);
  ASSERT_TRUE(res.at("ok").as_bool()) << res.dump(0);
  EXPECT_EQ(res.at("bytes").as_uint(), report.size());
  EXPECT_NE(report.find("smt_speedup"), std::string::npos);

  // Resubmitting the identical grid collapses onto the finished job; the
  // report is served again, byte-identical.
  const util::Json dup = rpc(dir + "/d.sock", submit);
  ASSERT_TRUE(dup.at("ok").as_bool());
  EXPECT_EQ(dup.at("id").as_uint(), 1u);
  EXPECT_TRUE(dup.at("duplicate").as_bool());
  EXPECT_EQ(dup.at("state").as_string(), "done");
  std::string report2;
  EXPECT_TRUE(rpc(dir + "/d.sock", result, &report2).at("ok").as_bool());
  EXPECT_EQ(report, report2);

  // Protocol error surfaces, not crashes.
  EXPECT_FALSE(rpc(dir + "/d.sock", cmd("frobnicate")).at("ok").as_bool());
  util::Json bad_cancel = cmd("cancel");
  bad_cancel["id"] = std::uint64_t{999};
  EXPECT_EQ(rpc(dir + "/d.sock", bad_cancel).at("error").as_string(), "no such job");
  util::Json done_cancel = cmd("cancel");
  done_cancel["id"] = std::uint64_t{1};
  EXPECT_EQ(rpc(dir + "/d.sock", done_cancel).at("error").as_string(),
            "job already done");

  // Drain: finish in-flight work (none) and exit with the clean code.
  EXPECT_TRUE(rpc(dir + "/d.sock", cmd("drain")).at("ok").as_bool());
  loop.join();
  EXPECT_EQ(d.exit_code(), 0);
}

TEST(ServeDaemon, TwoClientConcurrentSubmissionsCollapseToOneJob) {
  const std::string dir = tmp_dir("daemon_race");
  fs::create_directories(dir);
  serve::Daemon d(daemon_cfg(dir));
  ASSERT_TRUE(d.start()) << d.error();
  std::thread loop([&] { (void)d.run(); });

  util::Json submit = cmd("submit");
  submit["spec"] = kQuickSpec;
  util::Json replies[2];
  std::thread c0([&] { replies[0] = rpc(dir + "/d.sock", submit); });
  std::thread c1([&] { replies[1] = rpc(dir + "/d.sock", submit); });
  c0.join();
  c1.join();

  ASSERT_TRUE(replies[0].at("ok").as_bool()) << replies[0].dump(0);
  ASSERT_TRUE(replies[1].at("ok").as_bool()) << replies[1].dump(0);
  EXPECT_EQ(replies[0].at("id").as_uint(), replies[1].at("id").as_uint());
  EXPECT_TRUE(replies[0].at("duplicate").as_bool() ||
              replies[1].at("duplicate").as_bool());

  const util::Json status = rpc(dir + "/d.sock", cmd("status"));
  ASSERT_TRUE(status.at("ok").as_bool());
  EXPECT_EQ(status.at("jobs").size(), 1u) << "concurrent submits must dedupe";

  EXPECT_EQ(wait_terminal(dir + "/d.sock", replies[0].at("id").as_uint()), "done");
  std::string r0;
  std::string r1;
  util::Json result = cmd("result");
  result["id"] = replies[0].at("id").as_uint();
  EXPECT_TRUE(rpc(dir + "/d.sock", result, &r0).at("ok").as_bool());
  EXPECT_TRUE(rpc(dir + "/d.sock", result, &r1).at("ok").as_bool());
  EXPECT_FALSE(r0.empty());
  EXPECT_EQ(r0, r1);

  d.request_stop();
  loop.join();
  EXPECT_EQ(d.exit_code(), harness::kExitInterrupted);
}

TEST(ServeDaemon, GracefulStopExitsWithInterruptedCode) {
  const std::string dir = tmp_dir("daemon_stop");
  fs::create_directories(dir);
  serve::Daemon d(daemon_cfg(dir));
  ASSERT_TRUE(d.start()) << d.error();
  std::thread loop([&] { (void)d.run(); });
  EXPECT_TRUE(rpc(dir + "/d.sock", cmd("ping")).at("ok").as_bool());
  d.request_stop();
  loop.join();
  EXPECT_EQ(d.exit_code(), harness::kExitInterrupted);
}

// Restart recovery through the real protocol: a daemon inherits a queue with
// a failed job from a previous incarnation, serves its diagnosis, accepts
// the resubmission (failed -> requeued), finishes it, and a THIRD
// incarnation serves the identical report bytes.
TEST(ServeDaemon, RestartRecoversFailedJobAndServesIdenticalReport) {
  const std::string dir = tmp_dir("daemon_restart");
  fs::create_directories(dir);
  const std::string key = key_for_spec(kQuickSpec);

  {
    serve::JobQueue seed(dir + "/state/queue", nullptr, /*verbose=*/false);
    ASSERT_TRUE(seed.open());
    ASSERT_EQ(seed.submit(key, kQuickSpec).id, 1u);
    seed.mark_running(1);
    seed.mark_failed(1, "boom");
  }

  std::string report;
  {
    serve::Daemon d(daemon_cfg(dir));
    ASSERT_TRUE(d.start()) << d.error();
    std::thread loop([&] { (void)d.run(); });

    util::Json result = cmd("result");
    result["id"] = std::uint64_t{1};
    const util::Json failed = rpc(dir + "/d.sock", result);
    EXPECT_FALSE(failed.at("ok").as_bool());
    EXPECT_EQ(failed.at("error").as_string(), "job failed: boom");

    util::Json submit = cmd("submit");
    submit["spec"] = kQuickSpec;
    const util::Json acc = rpc(dir + "/d.sock", submit);
    ASSERT_TRUE(acc.at("ok").as_bool()) << acc.dump(0);
    EXPECT_EQ(acc.at("id").as_uint(), 1u);
    EXPECT_TRUE(acc.at("duplicate").as_bool());

    EXPECT_EQ(wait_terminal(dir + "/d.sock", 1), "done");
    EXPECT_TRUE(rpc(dir + "/d.sock", result, &report).at("ok").as_bool());
    EXPECT_NE(report.find("smt_speedup"), std::string::npos);

    d.request_stop();
    loop.join();
    EXPECT_EQ(d.exit_code(), harness::kExitInterrupted);
  }

  {
    serve::Daemon d(daemon_cfg(dir));
    ASSERT_TRUE(d.start()) << d.error();
    EXPECT_EQ(d.queue().find(1)->state, serve::JobState::kDone);
    std::thread loop([&] { (void)d.run(); });

    std::string again;
    util::Json result = cmd("result");
    result["id"] = std::uint64_t{1};
    EXPECT_TRUE(rpc(dir + "/d.sock", result, &again).at("ok").as_bool());
    EXPECT_EQ(again, report);

    EXPECT_TRUE(rpc(dir + "/d.sock", cmd("drain")).at("ok").as_bool());
    loop.join();
    EXPECT_EQ(d.exit_code(), 0);
  }
}

// ---------------------------------------------------------------------------
// Incremental re-sweeps: two grids sharing a configuration share result-cache
// entries per point, because the daemon keys the cache on the
// point-independent config fingerprint plus the point name.

TEST(ServeGrid, ConfigFingerprintSharesCacheAcrossGrids) {
  util::Config c1;
  ASSERT_FALSE(c1.parse_token("workloads=2MEM-1").has_value());
  ASSERT_FALSE(c1.parse_token("schemes=HF-RF").has_value());
  ASSERT_FALSE(c1.parse_token("insts=15000").has_value());
  ASSERT_FALSE(c1.parse_token("profile_insts=50000").has_value());
  const harness::GridSpec g1 = harness::grid_from_config(c1);

  util::Config c2;
  ASSERT_FALSE(c2.parse_token("workloads=2MEM-1").has_value());
  ASSERT_FALSE(c2.parse_token("schemes=HF-RF,FCFS").has_value());
  ASSERT_FALSE(c2.parse_token("insts=15000").has_value());
  ASSERT_FALSE(c2.parse_token("profile_insts=50000").has_value());
  const harness::GridSpec g2 = harness::grid_from_config(c2);

  // Different grids, one configuration: the classic sweep identity differs,
  // the config identity matches.
  EXPECT_NE(harness::fingerprint(g1), harness::fingerprint(g2));
  EXPECT_EQ(harness::config_fingerprint(g1), harness::config_fingerprint(g2));

  // A knob that changes results must change the config identity.
  util::Config c3;
  ASSERT_FALSE(c3.parse_token("workloads=2MEM-1").has_value());
  ASSERT_FALSE(c3.parse_token("schemes=HF-RF").has_value());
  ASSERT_FALSE(c3.parse_token("insts=20000").has_value());
  ASSERT_FALSE(c3.parse_token("profile_insts=50000").has_value());
  EXPECT_NE(harness::config_fingerprint(g1),
            harness::config_fingerprint(harness::grid_from_config(c3)));

  // And the sharing is real: sweep grid 1, then the superset grid 2 against
  // the same cache — its HF-RF point is served from the cache, not re-run.
  const std::string dir = tmp_dir("cache_share");
  const auto orch_cfg = [&](const harness::GridSpec& g, const char* tag) {
    harness::OrchestratorConfig oc;
    oc.work_dir = dir + "/work-" + tag;
    oc.cache_dir = dir + "/cache";
    oc.fingerprint = harness::fingerprint(g);
    oc.cache_fingerprint = harness::config_fingerprint(g);
    oc.isolate = false;
    oc.verbose = false;
    return oc;
  };
  harness::Orchestrator first(orch_cfg(g1, "a"));
  const harness::SweepSummary s1 = first.run(harness::grid_points(g1));
  ASSERT_TRUE(s1.complete());
  EXPECT_EQ(s1.ok, 1u);
  EXPECT_EQ(s1.cache_hits, 0u);

  harness::Orchestrator second(orch_cfg(g2, "b"));
  const harness::SweepSummary s2 = second.run(harness::grid_points(g2));
  ASSERT_TRUE(s2.complete());
  EXPECT_EQ(s2.ok, 2u);
  EXPECT_EQ(s2.cache_hits, 1u) << "shared point must be a cache hit";
  EXPECT_EQ(s2.executed, 1u);
}

}  // namespace
