// Integration tests: whole-stack runs through the public API, cross-module
// invariants, and weak (non-flaky) versions of the paper's findings.
#include <gtest/gtest.h>

#include <string>

#include "core/scheduler_factory.hpp"
#include "sched/policies.hpp"
#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "sim/workloads.hpp"

namespace memsched {
namespace {

sim::ExperimentConfig fast_config() {
  sim::ExperimentConfig cfg;
  cfg.profile_insts = 120'000;
  cfg.eval_insts = 60'000;
  cfg.warmup_insts = 15'000;
  cfg.eval_repeats = 1;
  return cfg;
}

// Every factory scheme completes a 2-core MEM workload with sane results.
class AllSchemesRun : public ::testing::TestWithParam<std::string> {};

TEST_P(AllSchemesRun, TwoCoreWorkloadFinishes) {
  sim::Experiment exp(fast_config());
  const sim::WorkloadRun r = exp.run(sim::workload_by_name("2MEM-2"), GetParam());
  EXPECT_GT(r.smt_speedup, 0.4);
  EXPECT_LE(r.smt_speedup, 2.05);
  EXPECT_GE(r.unfairness, 1.0);
  EXPECT_LT(r.unfairness, 10.0);
  EXPECT_GT(r.avg_read_latency_cpu, 50.0);
  EXPECT_LT(r.avg_read_latency_cpu, 5000.0);
  EXPECT_FALSE(r.raw.hit_tick_limit);
}

INSTANTIATE_TEST_SUITE_P(Factory, AllSchemesRun,
                         ::testing::ValuesIn(core::known_schedulers()),
                         [](const auto& pi) {
                           std::string n = pi.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(Integration, MeOrderingSurvivesProfiling) {
  // Profiled ME must reproduce the catalog's (and thus Table 2's) ordering
  // for clearly separated applications.
  sim::ExperimentConfig cfg = fast_config();
  cfg.profile_insts = 500'000;
  sim::Experiment exp(cfg);
  const double me_gzip = exp.profile("gzip").memory_efficiency;
  const double me_wupwise = exp.profile("wupwise").memory_efficiency;
  const double me_mgrid = exp.profile("mgrid").memory_efficiency;
  const double me_applu = exp.profile("applu").memory_efficiency;
  EXPECT_GT(me_gzip, me_wupwise);    // 192 vs 15
  EXPECT_GT(me_wupwise, me_mgrid);   // 15 vs 4
  EXPECT_GT(me_mgrid, me_applu);     // 4 vs 1
}

TEST(Integration, ConservationOfReads) {
  // Every DRAM load the cores observed corresponds to a controller read
  // (plus write-allocate fills for stores), and nothing is lost.
  sim::SystemConfig cfg;
  cfg.cores = 4;
  std::vector<trace::AppProfile> apps;
  for (const char* n : {"swim", "applu", "mgrid", "equake"})
    apps.push_back(trace::spec2000_by_name(n));
  sched::HitFirstReadFirstScheduler s;
  sim::MultiCoreSystem sys(cfg, apps, s, 21);
  const sim::RunResult r = sys.run(40'000, 0);
  std::uint64_t core_dram_loads = 0, ctrl_reads = 0;
  for (const auto& c : r.cores) {
    core_dram_loads += c.core_stats.dram_loads;
    ctrl_reads += c.dram_reads;
  }
  ctrl_reads += r.controller_stats.read_forwards;
  // A core-observed DRAM load is either a controller read, a forward, an
  // MSHR merge onto an existing fill, or still in flight when the run
  // stopped (bounded by the MSHR file size).
  const std::uint64_t merges = sys.hierarchy().l2_mshr().merges();
  const std::uint64_t in_flight_bound = sys.hierarchy().l2_mshr().capacity();
  EXPECT_GE(ctrl_reads + merges + in_flight_bound, core_dram_loads);
  EXPECT_LT(ctrl_reads, core_dram_loads * 3 + 100);
}

TEST(Integration, HardwareTableMatchesExactArithmetic) {
  // The Figure-1 10-bit table implementation must track exact ME-LREQ
  // closely (the paper's implementability claim).
  sim::Experiment exp(fast_config());
  const auto& w = sim::workload_by_name("4MEM-1");
  const double exact = exp.run(w, "ME-LREQ").smt_speedup;
  const double table = exp.run(w, "ME-LREQ-HW").smt_speedup;
  EXPECT_NEAR(table / exact, 1.0, 0.05);
}

TEST(Integration, DeterministicEndToEnd) {
  sim::Experiment a(fast_config());
  sim::Experiment b(fast_config());
  const auto& w = sim::workload_by_name("4MEM-4");
  const auto ra = a.run(w, "ME-LREQ");
  const auto rb = b.run(w, "ME-LREQ");
  EXPECT_DOUBLE_EQ(ra.smt_speedup, rb.smt_speedup);
  EXPECT_DOUBLE_EQ(ra.unfairness, rb.unfairness);
  for (std::size_t c = 0; c < ra.ipc_multi.size(); ++c)
    EXPECT_DOUBLE_EQ(ra.ipc_multi[c], rb.ipc_multi[c]);
}

TEST(Integration, MoreCoresMoreContention) {
  // The same applications suffer more slowdown (lower normalized speedup
  // fraction) on 8 cores than the 2-core subsets do.
  sim::Experiment exp(fast_config());
  const auto r2 = exp.run(sim::workload_by_name("2MEM-1"), "HF-RF");
  const auto r8 = exp.run(sim::workload_by_name("8MEM-1"), "HF-RF");
  EXPECT_GT(r2.smt_speedup / 2.0, r8.smt_speedup / 8.0);
  EXPECT_GT(r8.avg_read_latency_cpu, r2.avg_read_latency_cpu);
}

TEST(Integration, FixPrioritySpeedsUpFavoredCore) {
  sim::Experiment exp(fast_config());
  const auto& w = sim::workload_by_name("4MEM-1");
  const auto asc = exp.run(w, "FIX-ASC");    // core 0 favored
  const auto desc = exp.run(w, "FIX-DESC");  // core 3 favored
  // Favoring a core must not slow it down much relative to the opposite
  // order. Core 3 (applu) is traffic-bound, so priority shows clearly
  // there; core 0 (wupwise) barely touches memory, so allow slice noise.
  EXPECT_GE(desc.ipc_multi[3], asc.ipc_multi[3] * 0.98);
  EXPECT_GE(asc.ipc_multi[0], desc.ipc_multi[0] * 0.95);
}

TEST(Integration, OnlineMeLearnsWithoutProfiles) {
  // ME-LREQ-ONLINE gets no profiled table yet must behave sanely and end
  // within the envelope of LREQ..ME-LREQ.
  sim::Experiment exp(fast_config());
  const auto& w = sim::workload_by_name("4MEM-2");
  const auto online = exp.run(w, "ME-LREQ-ONLINE");
  const auto baseline = exp.run(w, "HF-RF");
  EXPECT_GT(online.smt_speedup, baseline.smt_speedup * 0.9);
}

TEST(Integration, InterleaveSchemesAllWork) {
  for (const auto il : {dram::Interleave::kLineInterleave,
                        dram::Interleave::kPageInterleave, dram::Interleave::kHybrid}) {
    sim::ExperimentConfig cfg = fast_config();
    cfg.base.interleave = il;
    sim::Experiment exp(cfg);
    const auto r = exp.run(sim::workload_by_name("2MEM-2"), "HF-RF");
    EXPECT_GT(r.smt_speedup, 0.4) << dram::AddressMap::scheme_name(il);
    EXPECT_FALSE(r.raw.hit_tick_limit);
  }
}

TEST(Integration, RefreshEnabledStillCompletes) {
  sim::ExperimentConfig cfg = fast_config();
  cfg.base.timing.refresh_enabled = true;
  sim::Experiment exp(cfg);
  const auto with_ref = exp.run(sim::workload_by_name("2MEM-1"), "HF-RF");
  sim::Experiment exp2(fast_config());
  const auto without = exp2.run(sim::workload_by_name("2MEM-1"), "HF-RF");
  EXPECT_FALSE(with_ref.raw.hit_tick_limit);
  // Refresh steals bandwidth: performance must not improve beyond slice
  // noise (single short slice => a few percent of jitter).
  EXPECT_LE(with_ref.smt_speedup, without.smt_speedup * 1.05);
}

}  // namespace
}  // namespace memsched
