// Differential-equivalence tests for the cycle-skipping engine.
//
// The contract (sim/engine.hpp): Engine::kSkip must produce *byte-identical*
// results to the per-cycle oracle Engine::kCycle — every statistic, latency
// histogram, power figure and RNG draw. These tests enforce the contract by
// serializing full RunResults to JSON and comparing the strings, across
//   - every factory scheduler x a grid of paper workloads,
//   - verification (invariant auditor) on and off,
//   - fault injection on,
//   - the open-loop queueing driver across offered loads,
//   - randomized SystemConfigs (fuzzing timing edges such as tFAW == tRRD,
//     drain-hysteresis boundaries, page policies, refresh, interleaves).
// Plus exactness property tests for the Channel next_*_tick queries that the
// fast-forward jump computation is built on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/scheduler_factory.hpp"
#include "dram/channel.hpp"
#include "dram/timing.hpp"
#include "sim/json_report.hpp"
#include "sim/open_loop.hpp"
#include "sim/system.hpp"
#include "sim/workloads.hpp"
#include "trace/app_profile.hpp"
#include "util/rng.hpp"

namespace memsched {
namespace {

// Synthetic-but-plausible profiling inputs: distinct descending ME values and
// positive alone-IPCs, enough for every scheme (ME*, STFM, FIX-*) to exercise
// its real decision logic.
sched::SchedulerPtr make_sched(const std::string& name, std::uint32_t cores) {
  core::SchedulerArgs args;
  args.core_count = cores;
  std::vector<double> me, ipc;
  for (std::uint32_t c = 0; c < cores; ++c) {
    me.push_back(9.0 / (1.0 + static_cast<double>(c)));
    ipc.push_back(2.0 / (1.0 + 0.2 * static_cast<double>(c)));
  }
  args.me = core::MeTable(me);
  args.ipc_single = ipc;
  return core::make_scheduler(name, args);
}

std::string run_closed(sim::SystemConfig cfg, const sim::Workload& w,
                       const std::string& scheme, sim::Engine engine,
                       std::uint64_t target, std::uint64_t warmup,
                       std::uint64_t seed = 42) {
  cfg.cores = w.cores();
  cfg.engine = engine;
  const sched::SchedulerPtr s = make_sched(scheme, cfg.cores);
  sim::MultiCoreSystem sys(cfg, w.apps(), *s, seed);
  return sim::to_json(sys.run(target, warmup, Tick{1} << 32)).dump();
}

void expect_engines_agree(const sim::SystemConfig& cfg, const sim::Workload& w,
                          const std::string& scheme, std::uint64_t target,
                          std::uint64_t warmup, std::uint64_t seed = 42) {
  const std::string cycle =
      run_closed(cfg, w, scheme, sim::Engine::kCycle, target, warmup, seed);
  const std::string skip =
      run_closed(cfg, w, scheme, sim::Engine::kSkip, target, warmup, seed);
  EXPECT_EQ(cycle, skip) << "engines diverged: " << w.name << " / " << scheme;
}

// ---------------------------------------------------------------------------
// Every scheduler policy x a workload grid (MEMSCHED_VERIFY=1 is set by the
// test harness, so the invariant auditor also runs in both engines).
// ---------------------------------------------------------------------------

using SchemeWorkload = std::tuple<std::string, std::string>;

class EveryScheme : public ::testing::TestWithParam<SchemeWorkload> {};

TEST_P(EveryScheme, ByteIdenticalJson) {
  const auto& [scheme, workload] = GetParam();
  sim::SystemConfig cfg;
  expect_engines_agree(cfg, sim::workload_by_name(workload), scheme, 25'000, 5'000);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EveryScheme,
    ::testing::Combine(::testing::ValuesIn(core::known_schedulers()),
                       ::testing::Values("2MEM-2", "4MIX-1")),
    [](const auto& pi) {
      std::string n = std::get<0>(pi.param) + "_" + std::get<1>(pi.param);
      for (char& c : n)
        if (c == '-' || c == '/') c = '_';
      return n;
    });

// Wider workload sweep with representative schemes (one per family).
class MoreWorkloads : public ::testing::TestWithParam<SchemeWorkload> {};

TEST_P(MoreWorkloads, ByteIdenticalJson) {
  const auto& [scheme, workload] = GetParam();
  sim::SystemConfig cfg;
  expect_engines_agree(cfg, sim::workload_by_name(workload), scheme, 20'000, 4'000);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MoreWorkloads,
    ::testing::Combine(::testing::Values("FCFS", "HF-RF", "PAR-BS", "ME-LREQ"),
                       ::testing::Values("2MIX-2", "4MEM-3", "8MEM-1")),
    [](const auto& pi) {
      std::string n = std::get<0>(pi.param) + "_" + std::get<1>(pi.param);
      for (char& c : n)
        if (c == '-' || c == '/') c = '_';
      return n;
    });

// ---------------------------------------------------------------------------
// Auditor off + watchdog off: the skip engine then has no poll-boundary
// clamp, so jumps run all the way to the next component event.
// ---------------------------------------------------------------------------

TEST(EngineEquiv, NoAuditNoWatchdog) {
  sim::SystemConfig cfg;
  cfg.audit.enabled = false;
  cfg.progress_window_ticks = 0;
  expect_engines_agree(cfg, sim::workload_by_name("2MEM-1"), "HF-RF", 25'000, 5'000);
  expect_engines_agree(cfg, sim::workload_by_name("4MEM-1"), "ME-LREQ", 25'000, 5'000);
}

// Epoch-aware schedulers (BLISS / TCM / CADS) roll interval state lazily on
// controller entry; refresh adds extra channel events the skip engine must
// jump over without perturbing when those rolls are observed. Exercise the
// combination explicitly.
class EpochSchemeRefresh : public ::testing::TestWithParam<std::string> {};

TEST_P(EpochSchemeRefresh, ByteIdenticalWithRefresh) {
  sim::SystemConfig cfg;
  cfg.timing.refresh_enabled = true;
  expect_engines_agree(cfg, sim::workload_by_name("4MIX-1"), GetParam(), 25'000,
                       5'000);
  expect_engines_agree(cfg, sim::workload_by_name("2MEM-2"), GetParam(), 20'000,
                       4'000);
}

INSTANTIATE_TEST_SUITE_P(EpochAware, EpochSchemeRefresh,
                         ::testing::Values("BLISS", "TCM", "CADS"));

TEST(EngineEquiv, SingleCore) {
  sim::SystemConfig cfg;
  expect_engines_agree(cfg, sim::make_workload("solo", "b"), "FCFS", 30'000, 5'000);
}

// ---------------------------------------------------------------------------
// Fault injection: the injector's RNG stream is part of the simulated state,
// so both engines must drive it identically (the controller reports now + 1
// while a fault injector is attached, disabling jumps around it).
// ---------------------------------------------------------------------------

TEST(EngineEquiv, FaultInjectionEnabled) {
  sim::SystemConfig cfg;
  // Non-lossy faults only: a dropped request livelocks the waiting core by
  // design (the watchdog catches it), which is its own test elsewhere. The
  // lifecycle auditor must be off — injected delays violate its visible-tick
  // invariant on purpose (that detection is test_verif's subject).
  cfg.audit.enabled = false;
  cfg.fault.enabled = true;
  cfg.fault.seed = 7;
  cfg.fault.dup_prob = 0.01;
  cfg.fault.delay_prob = 0.03;
  cfg.fault.stall_prob = 0.0005;
  expect_engines_agree(cfg, sim::workload_by_name("2MEM-2"), "HF-RF", 20'000, 4'000);
  expect_engines_agree(cfg, sim::workload_by_name("4MIX-1"), "PAR-BS", 20'000, 4'000);
}

// ---------------------------------------------------------------------------
// Open-loop driver: the injection accumulator (a float summed once per tick)
// and the arrival RNG are part of the state the skip engine must reproduce.
// ---------------------------------------------------------------------------

sim::OpenLoopResult run_open(sim::OpenLoopConfig cfg, const std::string& scheme,
                             sim::Engine engine) {
  cfg.engine = engine;
  const sched::SchedulerPtr s = make_sched(scheme, cfg.cores);
  return sim::run_open_loop(cfg, *s);
}

void expect_open_equal(const sim::OpenLoopConfig& cfg, const std::string& scheme) {
  const sim::OpenLoopResult a = run_open(cfg, scheme, sim::Engine::kCycle);
  const sim::OpenLoopResult b = run_open(cfg, scheme, sim::Engine::kSkip);
  // Exact equality, not almost-equal: the engines run the same float ops.
  EXPECT_EQ(a.offered_per_tick, b.offered_per_tick);
  EXPECT_EQ(a.accepted_per_tick, b.accepted_per_tick);
  EXPECT_EQ(a.rejected_share, b.rejected_share);
  EXPECT_EQ(a.avg_read_latency_ticks, b.avg_read_latency_ticks);
  EXPECT_EQ(a.p50_ticks, b.p50_ticks);
  EXPECT_EQ(a.p90_ticks, b.p90_ticks);
  EXPECT_EQ(a.p99_ticks, b.p99_ticks);
  EXPECT_EQ(a.row_hit_rate, b.row_hit_rate);
  EXPECT_EQ(a.data_bus_utilization, b.data_bus_utilization);
}

using LoadScheme = std::tuple<double, std::string>;

class OpenLoopEquiv : public ::testing::TestWithParam<LoadScheme> {};

TEST_P(OpenLoopEquiv, ExactResultMatch) {
  const auto& [load, scheme] = GetParam();
  sim::OpenLoopConfig cfg;
  cfg.inject_per_tick = load;
  cfg.warmup_ticks = 3'000;
  cfg.measure_ticks = 25'000;
  expect_open_equal(cfg, scheme);
}

INSTANTIATE_TEST_SUITE_P(
    Loads, OpenLoopEquiv,
    ::testing::Combine(::testing::Values(0.01, 0.08, 0.35),
                       ::testing::Values("FCFS", "HF-RF", "ME-LREQ")),
    [](const auto& pi) {
      std::string n = "load" + std::to_string(static_cast<int>(std::get<0>(pi.param) * 100)) +
                      "_" + std::get<1>(pi.param);
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(OpenLoopEquivExtra, NoWatchdogAndFaults) {
  sim::OpenLoopConfig cfg;
  cfg.inject_per_tick = 0.02;
  cfg.warmup_ticks = 2'000;
  cfg.measure_ticks = 20'000;
  cfg.progress_window_ticks = 0;  // no poll clamp on the jump
  expect_open_equal(cfg, "HF-RF");

  cfg.progress_window_ticks = 200'000;
  cfg.audit.enabled = false;  // injected delays trip the auditor by design
  cfg.fault.enabled = true;
  cfg.fault.seed = 3;
  cfg.fault.delay_prob = 0.02;
  cfg.fault.stall_prob = 0.001;
  expect_open_equal(cfg, "FCFS");
}

// ---------------------------------------------------------------------------
// Randomized SystemConfig fuzzing: timing values within validated ranges
// (including the tFAW == tRRD edge), drain hysteresis boundaries, page
// policies, interleaves, refresh on/off, bank XOR, cpu_ratio — all must keep
// the two engines byte-identical.
// ---------------------------------------------------------------------------

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, RandomConfigMatches) {
  util::Xoshiro256 rng(GetParam() * 0x9e3779b97f4a7c15ULL + 1);

  sim::SystemConfig cfg;
  dram::Timing& t = cfg.timing;
  t.tCL = 3 + static_cast<std::uint32_t>(rng.below(4));
  t.tRCD = 3 + static_cast<std::uint32_t>(rng.below(4));
  t.tRP = 3 + static_cast<std::uint32_t>(rng.below(4));
  t.tRAS = t.tRCD + 8 + static_cast<std::uint32_t>(rng.below(8));
  t.tWL = t.tCL - static_cast<std::uint32_t>(rng.below(2));  // DDR2: tWL <= tCL
  t.tWR = 4 + static_cast<std::uint32_t>(rng.below(4));
  t.tWTR = 2 + static_cast<std::uint32_t>(rng.below(3));
  t.tRTW = 1 + static_cast<std::uint32_t>(rng.below(3));
  t.tRTP = 2 + static_cast<std::uint32_t>(rng.below(3));
  t.tRRD = 2 + static_cast<std::uint32_t>(rng.below(3));
  // Edge coverage: tFAW collapsed onto tRRD (no four-activate slack) through
  // a wide window that actually throttles bursts of activates.
  t.tFAW = t.tRRD + static_cast<std::uint32_t>(rng.below(13));
  t.tCCD = 1 + static_cast<std::uint32_t>(rng.below(2));
  t.burst_cycles = 1U << rng.below(3);
  t.refresh_enabled = rng.chance(0.3);

  cfg.org.channels = 1U << rng.below(2);
  cfg.org.dimms_per_channel = 1U << rng.below(2);
  cfg.org.banks_per_dimm = 2U << rng.below(2);

  cfg.cpu_ratio = 4U << rng.below(2);
  cfg.hierarchy.cpu_ratio = cfg.cpu_ratio;
  cfg.controller.cpu_ratio = cfg.cpu_ratio;

  mc::ControllerConfig& mcc = cfg.controller;
  mcc.buffer_entries = 16U << rng.below(3);
  // Drain hysteresis incl. the tight drain_low == drain_high - 1 boundary.
  mcc.drain_high = mcc.buffer_entries / 2 + static_cast<std::uint32_t>(rng.below(4));
  mcc.drain_low = rng.chance(0.5) ? mcc.drain_high - 1
                                  : mcc.drain_high / 2;
  mcc.forward_writes = rng.chance(0.8);
  mcc.combine_writes = rng.chance(0.8);
  const mc::PagePolicy policies[] = {mc::PagePolicy::kClosePage,
                                     mc::PagePolicy::kOpenPage,
                                     mc::PagePolicy::kAdaptive};
  mcc.page_policy = policies[rng.below(3)];

  const dram::Interleave il[] = {dram::Interleave::kLineInterleave,
                                 dram::Interleave::kPageInterleave,
                                 dram::Interleave::kHybrid};
  cfg.interleave = il[rng.below(3)];
  cfg.bank_xor = rng.chance(0.5);
  cfg.epoch_ticks = 1024ULL << rng.below(4);
  cfg.progress_window_ticks = rng.chance(0.25) ? 0 : 200'000;
  cfg.audit.enabled = rng.chance(0.5);

  ASSERT_EQ(cfg.validate(), "");

  static const char* kApps[] = {"gzip",  "wupwise", "mgrid", "applu",
                                "swim",  "equake",  "mesa",  "apsi"};
  const std::uint32_t cores = 1U << rng.below(3);  // 1, 2 or 4
  std::vector<trace::AppProfile> apps;
  for (std::uint32_t c = 0; c < cores; ++c)
    apps.push_back(trace::spec2000_by_name(kApps[rng.below(8)]));

  const std::string scheme =
      core::known_schedulers()[rng.below(core::known_schedulers().size())];
  const std::uint64_t seed = rng.next();

  const auto run = [&](sim::Engine engine) {
    sim::SystemConfig c = cfg;
    c.cores = cores;
    c.engine = engine;
    const sched::SchedulerPtr s = make_sched(scheme, cores);
    sim::MultiCoreSystem sys(c, apps, *s, seed);
    return sim::to_json(sys.run(8'000, 1'500, Tick{1} << 32)).dump();
  };
  EXPECT_EQ(run(sim::Engine::kCycle), run(sim::Engine::kSkip))
      << "engines diverged for fuzz seed " << GetParam() << " scheme " << scheme;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz, ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Channel next_*_tick exactness: the fast-forward jump is built on these
// queries, which claim to return the *smallest* legal issue tick. Drive a
// random-but-legal command sequence and check each query against the can_*
// predicates: false just below the returned tick, true at it, and false at
// every tick in between (full scan when the gap is small, samples otherwise).
// ---------------------------------------------------------------------------

struct NextTickCase {
  const char* name;
  dram::Timing timing;
};

std::vector<NextTickCase> next_tick_cases() {
  std::vector<NextTickCase> cases;
  cases.push_back({"default", dram::Timing{}});
  dram::Timing faw_edge;
  faw_edge.tFAW = faw_edge.tRRD;  // collapsed four-activate window
  cases.push_back({"tFAW_eq_tRRD", faw_edge});
  dram::Timing faw_wide;
  faw_wide.tFAW = 4 * faw_wide.tRRD + 9;  // window genuinely throttles
  cases.push_back({"tFAW_wide", faw_wide});
  dram::Timing fast;
  fast.tCL = 3; fast.tRCD = 3; fast.tRP = 3; fast.tRAS = 9; fast.tWL = 2;
  fast.tCCD = 1; fast.burst_cycles = 4;
  cases.push_back({"fast_long_burst", fast});
  return cases;
}

class ChannelNextTick : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChannelNextTick, MatchesCanPredicates) {
  const NextTickCase c = next_tick_cases()[GetParam()];
  ASSERT_EQ(c.timing.validate(), "");
  constexpr std::uint32_t kBanks = 4;
  dram::Channel ch(c.timing, kBanks, /*banks_per_rank=*/2);
  util::Xoshiro256 rng(0xabcdefULL + GetParam());

  enum class Op { kActivate, kRead, kWrite, kPrecharge };
  const auto can = [&](Op op, std::uint32_t b, Tick now) {
    switch (op) {
      case Op::kActivate: return ch.can_activate(b, now);
      case Op::kRead: return ch.can_read(b, now);
      case Op::kWrite: return ch.can_write(b, now);
      case Op::kPrecharge: return ch.can_precharge(b, now);
    }
    return false;
  };
  const auto next = [&](Op op, std::uint32_t b, Tick now) {
    switch (op) {
      case Op::kActivate: return ch.next_activate_tick(b, now);
      case Op::kRead: return ch.next_read_tick(b, now);
      case Op::kWrite: return ch.next_write_tick(b, now);
      case Op::kPrecharge: return ch.next_precharge_tick(b, now);
    }
    return kNeverTick;
  };

  Tick now = 0;
  for (int step = 0; step < 1500; ++step) {
    const auto b = static_cast<std::uint32_t>(rng.below(kBanks));
    const bool open = ch.bank(b).row_open();

    // Exactness check for *every* query against the current state.
    for (Op op : {Op::kActivate, Op::kRead, Op::kWrite, Op::kPrecharge}) {
      const Tick n = next(op, b, now);
      if (n == kNeverTick) {
        // Wrong row state: no amount of waiting makes it legal.
        for (Tick probe = now; probe < now + 64; probe += 7)
          ASSERT_FALSE(can(op, b, probe)) << c.name << " op " << static_cast<int>(op);
        continue;
      }
      ASSERT_GE(n, now);
      ASSERT_TRUE(can(op, b, n)) << c.name << " step " << step;
      if (n > now) {
        ASSERT_FALSE(can(op, b, n - 1)) << c.name << " step " << step;
      }
      if (n - now <= 256) {
        for (Tick probe = now; probe < n; ++probe)
          ASSERT_FALSE(can(op, b, probe)) << c.name << " step " << step;
      } else {
        for (int k = 0; k < 8; ++k) {
          const Tick probe = now + rng.below(n - now);
          ASSERT_FALSE(can(op, b, probe)) << c.name << " step " << step;
        }
      }
    }

    // Advance the state with a legal command (issue exactly at its earliest
    // legal tick, occasionally with extra slack — legality is monotone).
    const Op op = !open ? Op::kActivate
                        : (rng.chance(0.25)
                               ? Op::kPrecharge
                               : (rng.chance(0.5) ? Op::kRead : Op::kWrite));
    const Tick at = next(op, b, now) + (rng.chance(0.3) ? rng.below(4) : 0);
    ASSERT_NE(at, kNeverTick);
    ASSERT_TRUE(can(op, b, at));
    const bool auto_pre = rng.chance(0.3);
    switch (op) {
      case Op::kActivate: ch.issue_activate(b, rng.below(64), at); break;
      case Op::kRead: ch.issue_read(b, at, auto_pre); break;
      case Op::kWrite: ch.issue_write(b, at, auto_pre); break;
      case Op::kPrecharge: ch.issue_precharge(b, at); break;
    }
    now = at + rng.below(3);
  }
}

INSTANTIATE_TEST_SUITE_P(Timings, ChannelNextTick,
                         ::testing::Range<std::size_t>(0, 4),
                         [](const auto& pi) {
                           return std::string(next_tick_cases()[pi.param].name);
                         });

}  // namespace
}  // namespace memsched
