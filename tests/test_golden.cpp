// Golden-model tests: exhaustive randomized comparison of optimized
// components against simple, obviously-correct reference implementations,
// plus protocol fuzzing of the DRAM device model.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "cache/cache.hpp"
#include "dram/channel.hpp"
#include "dram/timing.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace memsched {
namespace {

// ------------------------------------------------- cache vs reference -----

/// Obviously-correct cache reference: per-set std::list in LRU order
/// (front = MRU), linear search everywhere.
class ReferenceCache {
 public:
  ReferenceCache(std::uint64_t sets, std::uint32_t ways, unsigned line_shift,
                 unsigned set_bits)
      : sets_(sets), ways_(ways), line_shift_(line_shift), set_bits_(set_bits) {}

  struct Result {
    bool hit;
    std::optional<Addr> writeback;
  };

  Result access(Addr addr, bool is_write) {
    auto& set = storage_[set_of(addr)];
    const Addr tag = tag_of(addr);
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (it->tag == tag) {
        it->dirty |= is_write;
        set.splice(set.begin(), set, it);  // move to MRU
        return {true, std::nullopt};
      }
    }
    Result r{false, std::nullopt};
    if (set.size() == ways_) {
      const auto& victim = set.back();
      if (victim.dirty) r.writeback = rebuild(set_of(addr), victim.tag);
      set.pop_back();
    }
    set.push_front({tag, is_write});
    return r;
  }

  bool probe(Addr addr) const {
    const auto it = storage_.find(set_of(addr));
    if (it == storage_.end()) return false;
    const Addr tag = tag_of(addr);
    for (const auto& line : it->second) {
      if (line.tag == tag) return true;
    }
    return false;
  }

  bool invalidate(Addr addr) {
    auto it = storage_.find(set_of(addr));
    if (it == storage_.end()) return false;
    const Addr tag = tag_of(addr);
    for (auto lit = it->second.begin(); lit != it->second.end(); ++lit) {
      if (lit->tag == tag) {
        const bool dirty = lit->dirty;
        it->second.erase(lit);
        return dirty;
      }
    }
    return false;
  }

 private:
  struct Line {
    Addr tag;
    bool dirty;
  };

  [[nodiscard]] std::uint64_t set_of(Addr a) const {
    return (a >> line_shift_) & (sets_ - 1);
  }
  [[nodiscard]] Addr tag_of(Addr a) const { return a >> line_shift_ >> set_bits_; }
  [[nodiscard]] Addr rebuild(std::uint64_t set, Addr tag) const {
    return ((tag << set_bits_) | set) << line_shift_;
  }

  std::uint64_t sets_;
  std::uint32_t ways_;
  unsigned line_shift_;
  unsigned set_bits_;
  std::map<std::uint64_t, std::list<Line>> storage_;
};

using CacheGolden = std::tuple<std::uint64_t /*size*/, std::uint32_t /*ways*/,
                               std::uint64_t /*seed*/>;

class CacheVsReference : public ::testing::TestWithParam<CacheGolden> {};

TEST_P(CacheVsReference, RandomTraceAgreesExactly) {
  const auto& [size, ways, seed] = GetParam();
  cache::CacheConfig cfg;
  cfg.size_bytes = size;
  cfg.ways = ways;
  cache::SetAssocCache dut(cfg);
  const std::uint64_t sets = cfg.sets();
  ReferenceCache ref(sets, ways, 6, static_cast<unsigned>(util::ilog2(sets)));

  util::Xoshiro256 rng(seed);
  // Footprint ~4x the cache so hits and evictions both occur constantly.
  const std::uint64_t lines = sets * ways * 4;
  for (int i = 0; i < 20'000; ++i) {
    const Addr addr = rng.below(lines) * 64 + rng.below(64);
    const int op = static_cast<int>(rng.below(10));
    if (op < 6) {  // access
      const bool is_write = rng.chance(0.4);
      const auto got = dut.access(addr, is_write);
      const auto want = ref.access(addr, is_write);
      ASSERT_EQ(got.hit, want.hit) << "step " << i;
      ASSERT_EQ(got.writeback_line.has_value(), want.writeback.has_value())
          << "step " << i;
      if (want.writeback) {
        ASSERT_EQ(*got.writeback_line, *want.writeback) << i;
      }
    } else if (op < 9) {  // probe
      ASSERT_EQ(dut.probe(addr), ref.probe(addr)) << "step " << i;
    } else {  // invalidate
      ASSERT_EQ(dut.invalidate(addr), ref.invalidate(addr)) << "step " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheVsReference,
    ::testing::Values(CacheGolden{512, 2, 1}, CacheGolden{512, 2, 2},
                      CacheGolden{4096, 4, 3}, CacheGolden{4096, 1, 4},
                      CacheGolden{16384, 8, 5}, CacheGolden{65536, 4, 6}),
    [](const auto& pi) {
      return "s" + std::to_string(std::get<0>(pi.param)) + "w" +
             std::to_string(std::get<1>(pi.param)) + "x" +
             std::to_string(std::get<2>(pi.param));
    });

// -------------------------------------------------- DRAM protocol fuzz ----

/// Drives a channel with randomly chosen LEGAL commands for many cycles.
/// The device model's internal assertions enforce inter-command timing; this
/// test additionally checks externally observable invariants: data-burst
/// windows never overlap and every returned completion time is in the
/// future.
class ChannelFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChannelFuzz, RandomLegalCommandStreamHoldsInvariants) {
  const dram::Timing t;
  dram::Channel ch(t, 8);
  util::Xoshiro256 rng(GetParam());

  Tick last_data_end = 0;
  Tick last_data_start = 0;
  std::uint64_t issued = 0;
  for (Tick now = 0; now < 30'000; ++now) {
    // Enumerate the legal actions this cycle and pick one at random
    // (sometimes do nothing, to vary phase alignment).
    struct Action {
      int kind;  // 0 ACT, 1 RD, 2 RDA, 3 WR, 4 WRA, 5 PRE
      std::uint32_t bank;
    };
    std::vector<Action> legal;
    for (std::uint32_t b = 0; b < ch.bank_count(); ++b) {
      if (ch.can_activate(b, now)) legal.push_back({0, b});
      if (ch.can_read(b, now)) {
        legal.push_back({1, b});
        legal.push_back({2, b});
      }
      if (ch.can_write(b, now)) {
        legal.push_back({3, b});
        legal.push_back({4, b});
      }
      if (ch.can_precharge(b, now)) legal.push_back({5, b});
    }
    if (legal.empty() || rng.chance(0.3)) continue;
    const Action a = legal[rng.below(legal.size())];
    Tick data_end = 0, data_start = 0;
    switch (a.kind) {
      case 0:
        ch.issue_activate(a.bank, rng.below(1 << 14), now);
        break;
      case 1:
      case 2:
        data_start = now + t.tCL;
        data_end = ch.issue_read(a.bank, now, a.kind == 2);
        break;
      case 3:
      case 4:
        data_start = now + t.tWL;
        data_end = ch.issue_write(a.bank, now, a.kind == 4);
        break;
      case 5:
        ch.issue_precharge(a.bank, now);
        break;
    }
    if (data_end != 0) {
      EXPECT_GT(data_end, now) << "completion not in the future";
      // Bursts must not overlap on the shared data bus.
      EXPECT_GE(data_start, last_data_end) << "data bus overlap at " << now;
      EXPECT_GT(data_start, last_data_start);
      last_data_end = data_end;
      last_data_start = data_start;
    }
    ++issued;
  }
  // The stream must have made real progress (not degenerate).
  EXPECT_GT(issued, 2'000u);
  EXPECT_GT(ch.bursts(), 500u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelFuzz, ::testing::Values(101u, 202u, 303u, 404u));

// ----------------------------------------- bank activity-time invariant ---

TEST(BankGolden, ActiveTimeNeverExceedsWallClock) {
  const dram::Timing t;
  dram::Channel ch(t, 4);
  util::Xoshiro256 rng(999);
  Tick now = 0;
  for (int i = 0; i < 5'000; ++i, ++now) {
    for (std::uint32_t b = 0; b < 4; ++b) {
      if (ch.can_activate(b, now) && rng.chance(0.2)) {
        ch.issue_activate(b, rng.below(1024), now);
        break;
      }
      if (ch.can_read(b, now) && rng.chance(0.5)) {
        ch.issue_read(b, now, rng.chance(0.5));
        break;
      }
      if (ch.can_precharge(b, now) && rng.chance(0.2)) {
        ch.issue_precharge(b, now);
        break;
      }
    }
  }
  // Auto-precharge completion times can exceed `now` by up to
  // tRTP/tWR + tRP; evaluate far enough in the future to be safe.
  const Tick horizon = now + t.tRC();
  for (std::uint32_t b = 0; b < 4; ++b) {
    EXPECT_LE(ch.bank(b).active_ticks(horizon), horizon);
    EXPECT_GE(ch.bank(b).precharge_count() + (ch.bank(b).row_open() ? 1 : 0),
              ch.bank(b).activate_count() > 0 ? 1u : 0u);
  }
}

}  // namespace
}  // namespace memsched
