// Tests for the memsched-lint analyzer (tools/memsched_lint).
//
// The check logic is driven by annotated fixtures under tests/lint_fixtures/:
// each fixture declares the repo-relative path it should be linted as
// ("// lint-as: <path>", first line) and marks every line expected to fire
// with "// expect-lint: <check>[, <check>...]". The harness lexes the
// fixture, harvests declarations, runs every check, and requires the
// diagnostic set to match the annotations exactly — missing *and* spurious
// diagnostics fail. Suppression fixtures carry real violations plus allow()
// comments and therefore expect nothing.
//
// Baseline, lexer, and scoping behavior are covered by direct unit tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint.hpp"

namespace lint = memsched::lint;
namespace fs = std::filesystem;

namespace {

// Line -> checks expected/observed on that line. A multiset so two findings
// of the same check on one line must be annotated twice.
using LineChecks = std::map<int, std::multiset<std::string>>;

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open fixture " << p;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<fs::path> fixture_files() {
  const fs::path dir = MEMSCHED_LINT_FIXTURE_DIR;
  std::vector<fs::path> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".cpp" || entry.path().extension() == ".hpp") {
      out.push_back(entry.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// The "// lint-as: <path>" declaration (must be the fixture's first line).
std::string lint_as(const std::string& src, const fs::path& file) {
  const std::string tag = "// lint-as:";
  const std::size_t pos = src.find(tag);
  EXPECT_EQ(pos, 0u) << file << ": fixture must start with '// lint-as: <path>'";
  const std::size_t eol = src.find('\n', pos);
  std::string path = src.substr(pos + tag.size(), eol - pos - tag.size());
  const auto strip = [](std::string s) {
    const std::size_t a = s.find_first_not_of(" \t\r");
    const std::size_t b = s.find_last_not_of(" \t\r");
    return a == std::string::npos ? std::string() : s.substr(a, b - a + 1);
  };
  return strip(path);
}

/// All "// expect-lint: a, b" annotations, keyed by 1-based line.
LineChecks expectations(const std::string& src) {
  LineChecks out;
  std::istringstream in(src);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string tag = "expect-lint:";
    const std::size_t pos = line.find(tag);
    if (pos == std::string::npos) continue;
    std::string rest = line.substr(pos + tag.size());
    std::string cur;
    rest.push_back(',');
    for (const char c : rest) {
      if (c == ',') {
        if (!cur.empty()) out[lineno].insert(cur);
        cur.clear();
      } else if (c != ' ' && c != '\t' && c != '\r') {
        cur.push_back(c);
      }
    }
  }
  return out;
}

std::string describe(const LineChecks& m) {
  std::ostringstream os;
  for (const auto& [line, checks] : m) {
    os << "  line " << line << ":";
    for (const std::string& c : checks) os << ' ' << c;
    os << '\n';
  }
  return m.empty() ? std::string("  (none)\n") : os.str();
}

LineChecks run_fixture(const std::string& src, const std::string& rel) {
  const std::vector<lint::Token> toks = lint::lex(src);
  const lint::Decls decls = lint::collect_decls(toks);
  const std::vector<lint::Diagnostic> diags =
      lint::run_checks(rel, toks, decls, lint::all_checks());
  LineChecks out;
  for (const lint::Diagnostic& d : diags) out[d.line].insert(d.check);
  return out;
}

TEST(LintFixtures, DiagnosticsMatchAnnotations) {
  const std::vector<fs::path> files = fixture_files();
  ASSERT_FALSE(files.empty()) << "no fixtures found in " << MEMSCHED_LINT_FIXTURE_DIR;
  for (const fs::path& file : files) {
    SCOPED_TRACE(file.filename().string());
    const std::string src = read_file(file);
    const std::string rel = lint_as(src, file);
    ASSERT_FALSE(rel.empty());
    const LineChecks expected = expectations(src);
    const LineChecks actual = run_fixture(src, rel);
    EXPECT_EQ(actual, expected) << "expected diagnostics:\n"
                                << describe(expected) << "actual diagnostics:\n"
                                << describe(actual);
  }
}

// Every check must be proven both ways by the fixture corpus: at least one
// annotated firing and at least one inline suppression of it (allow(<check>)
// or allow(*)). This is what keeps the corpus honest as checks are added.
TEST(LintFixtures, EveryCheckFiresAndIsSuppressedSomewhere) {
  std::string corpus;
  for (const fs::path& file : fixture_files()) corpus += read_file(file);
  const bool has_wildcard = corpus.find("allow(*)") != std::string::npos;
  for (const std::string& check : lint::all_checks()) {
    EXPECT_NE(corpus.find("expect-lint: " + check), std::string::npos)
        << "no fixture proves that '" << check << "' fires";
    EXPECT_TRUE(corpus.find("allow(" + check) != std::string::npos || has_wildcard)
        << "no fixture proves that '" << check << "' can be suppressed";
  }
}

// Fixtures carry real violations, but files outside the lint scope (tests/,
// build trees) must produce nothing no matter their content.
TEST(LintScope, OutOfScopePathsProduceNoDiagnostics) {
  const std::string src = read_file(fs::path(MEMSCHED_LINT_FIXTURE_DIR) /
                                    "det_banned_call.cpp");
  EXPECT_FALSE(run_fixture(src, "src/fixture/det_banned_call.cpp").empty());
  EXPECT_TRUE(run_fixture(src, "tests/det_banned_call.cpp").empty());
  EXPECT_TRUE(run_fixture(src, "build/generated/det_banned_call.cpp").empty());
}

TEST(LintScope, UnknownCheckNameThrows) {
  const std::vector<lint::Token> toks = lint::lex("int x;\n");
  const lint::Decls decls;
  EXPECT_THROW(
      (void)lint::run_checks("src/x.cpp", toks, decls, {"not-a-check"}),
      std::invalid_argument);
}

TEST(LintDecls, MergeUnionsClosures) {
  lint::Decls a;
  a.unordered_vars = {"live_"};
  lint::Decls b;
  b.unordered_vars = {"live_", "seen_"};
  b.clock_aliases = {"Clock"};
  b.uses_check_known = true;
  a.merge(b);
  EXPECT_EQ(a.unordered_vars, (std::vector<std::string>{"live_", "seen_"}));
  EXPECT_EQ(a.clock_aliases, (std::vector<std::string>{"Clock"}));
  EXPECT_TRUE(a.uses_check_known);
}

// ---------------------------------------------------------------------------
// Baseline semantics.

namespace {
lint::Diagnostic diag(const char* check, const char* file, int line) {
  return {check, file, line, 1, "msg"};
}
}  // namespace

TEST(LintBaseline, ExactLineEntryBlocksOnlyThatFinding) {
  auto baseline = lint::load_baseline("det-banned-call src/a.cpp:10\n");
  std::vector<lint::Diagnostic> diags = {diag("det-banned-call", "src/a.cpp", 10),
                                         diag("det-banned-call", "src/a.cpp", 20)};
  const auto fresh = lint::apply_baseline(std::move(diags), baseline);
  // The listed violation is accepted; the *new* one on line 20 still fails
  // the run — a baseline must never grandfather future regressions.
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].line, 20);
  EXPECT_TRUE(baseline[0].used);
}

TEST(LintBaseline, FileWideEntryBlocksAnyLineButNotOtherChecks) {
  auto baseline = lint::load_baseline(
      "# legacy wall-clock reads\n"
      "det-banned-call src/a.cpp  # any line\n");
  std::vector<lint::Diagnostic> diags = {diag("det-banned-call", "src/a.cpp", 10),
                                         diag("det-banned-call", "src/a.cpp", 99),
                                         diag("contract-raw-assert", "src/a.cpp", 10),
                                         diag("det-banned-call", "src/b.cpp", 10)};
  const auto fresh = lint::apply_baseline(std::move(diags), baseline);
  ASSERT_EQ(fresh.size(), 2u);
  EXPECT_EQ(fresh[0].check, "contract-raw-assert");
  EXPECT_EQ(fresh[1].file, "src/b.cpp");
}

TEST(LintBaseline, StaleEntryStaysUnused) {
  auto baseline = lint::load_baseline("det-pointer-key src/gone.cpp:5\n");
  const auto fresh = lint::apply_baseline({}, baseline);
  EXPECT_TRUE(fresh.empty());
  ASSERT_EQ(baseline.size(), 1u);
  EXPECT_FALSE(baseline[0].used);  // main() reports these as stale
}

TEST(LintBaseline, MalformedLinesThrow) {
  EXPECT_THROW((void)lint::load_baseline("det-banned-call\n"), std::invalid_argument);
  EXPECT_THROW((void)lint::load_baseline("a b c\n"), std::invalid_argument);
  EXPECT_TRUE(lint::load_baseline("# only a comment\n\n").empty());
}

// ---------------------------------------------------------------------------
// Lexer behavior the checks lean on.

TEST(LintLexer, TracksLinesAndStripsStringQuotes) {
  const auto toks = lint::lex("int a;\nconst char* s = \"k\\\"ey\";\n");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, lint::TokKind::kIdent);
  EXPECT_EQ(toks[0].line, 1);
  const auto str = std::find_if(toks.begin(), toks.end(), [](const lint::Token& t) {
    return t.kind == lint::TokKind::kString;
  });
  ASSERT_NE(str, toks.end());
  EXPECT_EQ(str->line, 2);
  ASSERT_FALSE(str->text.empty());
  EXPECT_NE(str->text.front(), '"');
}

TEST(LintLexer, RawStringsAndCommentsDoNotConfuseEachOther) {
  const auto toks = lint::lex(
      "auto s = R\"(// not a comment /* either)\";\n"
      "// real comment with rand() inside\n"
      "int x; /* multi\nline */ int y;\n");
  int comments = 0;
  int strings = 0;
  int idents = 0;
  for (const auto& t : toks) {
    if (t.kind == lint::TokKind::kComment) ++comments;
    if (t.kind == lint::TokKind::kString) ++strings;
    if (t.kind == lint::TokKind::kIdent && (t.text == "x" || t.text == "y")) ++idents;
  }
  EXPECT_EQ(comments, 2);
  EXPECT_EQ(strings, 1);
  EXPECT_EQ(idents, 2);
  // rand() inside a comment is not a call: the banned-call check sees only
  // significant tokens.
  const auto diags = lint::run_checks(
      "src/x.cpp", toks, lint::Decls{}, {"det-banned-call"});
  EXPECT_TRUE(diags.empty());
}

TEST(LintLexer, QuotedIncludesAreHarvestedInOrder) {
  const auto toks = lint::lex(
      "#include <vector>\n"
      "#include \"util/config.hpp\"\n"
      "#include \"sched/stfm.hpp\"\n");
  EXPECT_EQ(lint::quoted_includes(toks),
            (std::vector<std::string>{"util/config.hpp", "sched/stfm.hpp"}));
}

}  // namespace
