// Unit tests for src/util: RNG, statistics, fixed-point, bitops, config.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <vector>

#include "util/atomic_file.hpp"
#include "util/bitops.hpp"
#include "util/config.hpp"
#include "util/fixed_point.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace memsched::util {
namespace {

// ---------------------------------------------------------------- RNG -----

TEST(Rng, Deterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 33) + 7}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversRange) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Xoshiro256 rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ForkIndependence) {
  Xoshiro256 parent(17);
  Xoshiro256 a = parent.fork(0);
  Xoshiro256 b = parent.fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, GeometricRunMeanApproximates) {
  Xoshiro256 rng(23);
  // continue_p = 1 - 1/B with B = 8 -> mean run ~ B - 1 successes.
  double total = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) total += geometric_run(rng, 1.0 - 1.0 / 8.0, 1000);
  EXPECT_NEAR(total / trials, 7.0, 0.35);
}

TEST(Rng, GeometricRunHonorsCap) {
  Xoshiro256 rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_LE(geometric_run(rng, 0.99, 5), 5u);
}

// -------------------------------------------------------------- stats -----

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeEqualsCombined) {
  RunningStat a, b, all;
  Xoshiro256 rng(31);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform() * 100.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(10.0, 5);  // [0,50) + overflow
  h.add(0.0);
  h.add(9.9);
  h.add(10.0);
  h.add(49.9);
  h.add(50.0);
  h.add(1e9);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, NegativeClampsToZeroBucket) {
  Histogram h(1.0, 4);
  h.add(-3.0);
  EXPECT_EQ(h.bucket(0), 1u);
}

TEST(Histogram, MergeSumsCounts) {
  Histogram a(1.0, 10), b(1.0, 10);
  a.add(1.5);
  a.add(100.0);  // overflow
  b.add(1.5);
  b.add(7.2);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.bucket(1), 2u);
  EXPECT_EQ(a.bucket(7), 1u);
  EXPECT_EQ(a.overflow(), 1u);
}

TEST(Histogram, QuantileMedian) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(StatsHelpers, MeanAndGeomean) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_NEAR(geomean_of({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(geomean_of({1.0, 0.0}), 0.0);
}

// -------------------------------------------------------- fixed point -----

TEST(FixedPoint, QuantizeEndpoints) {
  EXPECT_EQ(quantize(0.0, 100.0, 10), 0u);
  EXPECT_EQ(quantize(-5.0, 100.0, 10), 0u);
  EXPECT_EQ(quantize(100.0, 100.0, 10), 1023u);
  EXPECT_EQ(quantize(1e9, 100.0, 10), 1023u);
}

TEST(FixedPoint, QuantizePreservesOrder) {
  const double max = 50.0;
  std::uint32_t prev = 0;
  for (double v = 0.0; v <= max; v += 0.5) {
    const std::uint32_t q = quantize(v, max, 10);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(FixedPoint, RoundTripErrorBounded) {
  const double max = 200.0;
  for (double v : {0.1, 1.0, 17.3, 99.9, 150.0, 199.99}) {
    const double back = dequantize(quantize(v, max, 10), max, 10);
    EXPECT_NEAR(back, v, max / 1023.0);
  }
}

// -------------------------------------------------------------- bitops ----

TEST(Bitops, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
}

TEST(Bitops, Ilog2) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(64), 6u);
  EXPECT_EQ(ilog2((1ull << 40) + 5), 40u);
}

TEST(Bitops, BitsAndDeposit) {
  const std::uint64_t x = 0xdeadbeefcafe1234ull;
  EXPECT_EQ(bits(x, 0, 4), 0x4u);
  EXPECT_EQ(bits(x, 8, 8), 0x12u);
  EXPECT_EQ(bits(x, 0, 0), 0u);
  EXPECT_EQ(deposit(0x5, 4, 4), 0x50u);
  EXPECT_EQ(deposit(0xff, 0, 4), 0xfu);  // masked to width
}

TEST(Bitops, BitsDepositRoundTrip) {
  for (unsigned pos : {0u, 3u, 17u}) {
    for (unsigned width : {1u, 5u, 12u}) {
      const std::uint64_t v = 0x2aull & ((1ull << width) - 1);
      EXPECT_EQ(bits(deposit(v, pos, width), pos, width), v);
    }
  }
}

// -------------------------------------------------------------- config ----

TEST(Config, ParseAndTypedGet) {
  Config c;
  EXPECT_FALSE(c.parse_token("insts=5000"));
  EXPECT_FALSE(c.parse_token("ratio=2.5"));
  EXPECT_FALSE(c.parse_token("name=hello"));
  EXPECT_FALSE(c.parse_token("flag=true"));
  EXPECT_EQ(c.get_int("insts", 0), 5000);
  EXPECT_DOUBLE_EQ(c.get_double("ratio", 0.0), 2.5);
  EXPECT_EQ(c.get_string("name", ""), "hello");
  EXPECT_TRUE(c.get_bool("flag", false));
}

TEST(Config, DefaultsWhenMissing) {
  Config c;
  EXPECT_EQ(c.get_int("absent", 7), 7);
  EXPECT_EQ(c.get_uint("absent", 9u), 9u);
  EXPECT_FALSE(c.get_bool("absent", false));
}

TEST(Config, MalformedFallsBackToDefault) {
  Config c;
  c.set("n", "abc");
  EXPECT_EQ(c.get_int("n", 3), 3);
  c.set("d", "1.2.3");
  EXPECT_DOUBLE_EQ(c.get_double("d", 4.5), 4.5);
  c.set("b", "maybe");
  EXPECT_TRUE(c.get_bool("b", true));
}

TEST(Config, RejectsTokensWithoutEquals) {
  Config c;
  EXPECT_TRUE(c.parse_token("no-equals").has_value());
  EXPECT_TRUE(c.parse_token("=value").has_value());
}

TEST(Config, NegativeUintFallsBack) {
  Config c;
  c.set("n", "-4");
  EXPECT_EQ(c.get_uint("n", 11u), 11u);
}

TEST(Config, KeysSorted) {
  Config c;
  c.set("b", "1");
  c.set("a", "2");
  const auto keys = c.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

// ---------------------------------------------------------------- json ----

TEST(Json, ScalarsAndCompactDump) {
  EXPECT_EQ(Json(true).dump(-1), "true");
  EXPECT_EQ(Json(42).dump(-1), "42");
  EXPECT_EQ(Json(2.5).dump(-1), "2.5");
  EXPECT_EQ(Json("hi").dump(-1), "\"hi\"");
  EXPECT_EQ(Json().dump(-1), "null");
  EXPECT_EQ(Json(std::uint64_t{1234567890123}).dump(-1), "1234567890123");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j["b"] = 1;
  j["a"] = 2;
  j["b"] = 3;  // overwrite, position kept
  EXPECT_EQ(j.dump(-1), "{\"b\":3,\"a\":2}");
  EXPECT_EQ(j.size(), 2u);
}

TEST(Json, ArrayAndNesting) {
  Json arr = Json::array();
  arr.push_back(1);
  Json inner = Json::object();
  inner["x"] = false;
  arr.push_back(std::move(inner));
  EXPECT_EQ(arr.dump(-1), "[1,{\"x\":false}]");
  EXPECT_EQ(arr.size(), 2u);
}

TEST(Json, StringEscaping) {
  Json j = Json::object();
  j["k\"ey"] = "line\nbreak\tand \\slash\"";
  EXPECT_EQ(j.dump(-1),
            "{\"k\\\"ey\":\"line\\nbreak\\tand \\\\slash\\\"\"}");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(-1), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(-1), "null");
}

TEST(Json, PrettyPrintIndents) {
  Json j = Json::object();
  j["a"] = 1;
  EXPECT_EQ(j.dump(2), "{\n  \"a\": 1\n}");
}

TEST(Json, NullAutoPromotes) {
  Json j;  // null
  j["k"] = 1;  // becomes object
  EXPECT_TRUE(j.is_object());
  Json a;
  a.push_back(2);
  EXPECT_TRUE(a.is_array());
}

TEST(Json, WriteFileRoundTripsBytes) {
  const std::string path = ::testing::TempDir() + "out.json";
  Json j = Json::object();
  j["v"] = 7;
  j.write_file(path, -1);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const auto n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), "{\"v\":7}\n");
}

TEST(Json, WriteFileThrowsOnBadPath) {
  EXPECT_THROW(Json(1).write_file("/nonexistent/dir/x.json"), std::runtime_error);
}

TEST(Json, ParseRoundTripsDump) {
  Json j = Json::object();
  j["name"] = "2MEM-1/HF-RF";
  j["speedup"] = 3.25;
  j["n"] = std::uint64_t{12345};
  j["flag"] = true;
  j["none"] = Json();
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  j["arr"] = std::move(arr);
  const std::string text = j.dump(-1);
  EXPECT_EQ(Json::parse(text).dump(-1), text);
  // Pretty-printed form parses back to the same document.
  EXPECT_EQ(Json::parse(j.dump(2)).dump(-1), text);
}

TEST(Json, ParseHandlesEscapesAndNesting) {
  const Json j = Json::parse(R"({"s":"a\"b\nc\\d","o":{"x":[null,false,-2.5e1]}})");
  EXPECT_EQ(j.at("s").as_string(), "a\"b\nc\\d");
  EXPECT_EQ(j.at("o").at("x").at(2).as_number(), -25.0);
  EXPECT_EQ(j.find("missing"), nullptr);
  EXPECT_THROW((void)j.at("missing"), std::runtime_error);
}

TEST(Json, ParseReportsOffsetOnGarbage) {
  try {
    Json::parse("{\"a\": tru}");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos) << e.what();
  }
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(Json::parse(""), std::runtime_error);
}

TEST(Json, RawSplicesVerbatim) {
  Json j = Json::object();
  j["result"] = Json::raw(R"({"v": 1.0})");  // note: internal spacing kept
  EXPECT_EQ(j.dump(-1), "{\"result\":{\"v\": 1.0}}");
}

// ---------------------------------------------------- unknown-key guard ----

TEST(Config, CheckKnownAcceptsKnownAndPrefixed) {
  Config c;
  c.set("insts", "100");
  c.set("fault.drop_read", "0.5");
  c.set("trace0", "a.bin");
  EXPECT_FALSE(c.check_known({"insts"}, {"fault.", "trace"}).has_value());
}

TEST(Config, CheckKnownRejectsWithDidYouMean) {
  Config c;
  c.set("inst", "100");  // typo'd "insts"
  const auto err = c.check_known({"insts", "repeats", "seed"});
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("unknown config key 'inst'"), std::string::npos) << *err;
  EXPECT_NE(err->find("did you mean 'insts'"), std::string::npos) << *err;
}

TEST(Config, CheckKnownRejectsFarFromAnything) {
  Config c;
  c.set("zzzzzz", "1");
  const auto err = c.check_known({"insts", "repeats"});
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("unknown config key 'zzzzzz'"), std::string::npos) << *err;
  EXPECT_EQ(err->find("did you mean"), std::string::npos) << *err;
}

TEST(Config, EditDistanceBasics) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("insts", "inst"), 1u);    // deletion
  EXPECT_EQ(edit_distance("seed", "sead"), 1u);     // substitution
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
}

// ---------------------------------------------------------------------------
// Atomic file replacement under concurrent writers.

std::string slurp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(AtomicFile, WritesAndReplaces) {
  const std::string path = testing::TempDir() + "memsched_atomic_basic";
  atomic_write_file(path, "first");
  EXPECT_EQ(slurp_file(path), "first");
  atomic_write_file(path, "second, longer payload");
  EXPECT_EQ(slurp_file(path), "second, longer payload");
  std::remove(path.c_str());
}

TEST(AtomicFile, TmpPathIsUniquePerWrite) {
  const std::string a = atomic_tmp_path("/some/dir/file.json");
  const std::string b = atomic_tmp_path("/some/dir/file.json");
  EXPECT_NE(a, b);  // monotonic counter: successive writes never collide
  EXPECT_EQ(a.rfind("/some/dir/file.json.tmp.", 0), 0u);
  // PID in the suffix: two processes writing the same path never collide.
  EXPECT_NE(a.find("." + std::to_string(::getpid()) + "."), std::string::npos);
}

TEST(AtomicFile, TwoInterleavedWritersNeverPublishTornBytes) {
  // Regression for the fixed `path + ".tmp"` temp name: two processes
  // replacing the same file concurrently would O_TRUNC each other's
  // in-flight temp file, and a rename could publish a torn mix. With
  // writer-unique temp names the final file is always exactly one writer's
  // complete payload.
  const std::string path = testing::TempDir() + "memsched_atomic_race";
  std::remove(path.c_str());
  const std::string a(64 * 1024, 'A');
  const std::string b(64 * 1024, 'B');
  constexpr int kRounds = 50;

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child writer. No gtest in here — report via exit code only.
    try {
      for (int i = 0; i < kRounds; ++i) atomic_write_file(path, b);
    } catch (...) {
      ::_exit(1);
    }
    ::_exit(0);
  }
  for (int i = 0; i < kRounds; ++i) atomic_write_file(path, a);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << "child writer hit an I/O error";

  const std::string got = slurp_file(path);
  ASSERT_EQ(got.size(), a.size());
  EXPECT_TRUE(got == a || got == b) << "published file mixes two writers";

  // Every temp file was consumed by its own rename — no litter.
  std::size_t leftovers = 0;
  for (const auto& e : std::filesystem::directory_iterator(testing::TempDir())) {
    if (e.path().filename().string().rfind("memsched_atomic_race.tmp", 0) == 0)
      ++leftovers;
  }
  EXPECT_EQ(leftovers, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace memsched::util
