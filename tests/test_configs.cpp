// Configuration-space robustness: the simulator must run correctly (and
// deterministically) across the whole supported configuration lattice, and
// must reject inconsistent configurations loudly.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "sched/policies.hpp"
#include "sim/system.hpp"
#include "trace/app_profile.hpp"

namespace memsched::sim {
namespace {

using ConfigPoint = std::tuple<std::uint32_t /*channels*/, std::uint32_t /*banks*/,
                               const char* /*grade*/, int /*interleave*/,
                               int /*page policy*/, bool /*bank_xor*/>;

class ConfigLattice : public ::testing::TestWithParam<ConfigPoint> {};

TEST_P(ConfigLattice, TwoCoreRunCompletesSanely) {
  const auto& [channels, banks, grade, interleave, page, bank_xor] = GetParam();
  SystemConfig cfg;
  cfg.cores = 2;
  cfg.org.channels = channels;
  cfg.org.banks_per_dimm = banks;
  cfg.apply_speed_grade(dram::SpeedGrade::by_name(grade));
  cfg.interleave = static_cast<dram::Interleave>(interleave);
  cfg.controller.page_policy = static_cast<mc::PagePolicy>(page);
  cfg.bank_xor = bank_xor;
  ASSERT_TRUE(cfg.validate().empty()) << cfg.validate();

  std::vector<trace::AppProfile> apps{trace::spec2000_by_name("swim"),
                                      trace::spec2000_by_name("gzip")};
  sched::HitFirstReadFirstScheduler s;
  MultiCoreSystem sys(cfg, apps, s, 11);
  const RunResult r = sys.run(20'000, 5'000);
  EXPECT_FALSE(r.hit_tick_limit);
  for (const auto& c : r.cores) {
    EXPECT_GT(c.ipc, 0.01);
    EXPECT_LT(c.ipc, 4.0);
  }
  EXPECT_GT(r.cores[0].dram_reads, 50u);  // swim streams
  EXPECT_GT(r.avg_read_latency_cpu, 30.0);
}

INSTANTIATE_TEST_SUITE_P(
    Lattice, ConfigLattice,
    ::testing::Values(
        ConfigPoint{1, 4, "DDR2-800", 2, 0, false},
        ConfigPoint{2, 4, "DDR2-800", 2, 0, false},  // Table 1
        ConfigPoint{4, 4, "DDR2-800", 2, 0, false},
        ConfigPoint{2, 8, "DDR2-800", 2, 0, false},
        ConfigPoint{2, 4, "DDR2-400", 2, 0, false},
        ConfigPoint{2, 4, "DDR2-533", 0, 0, false},
        ConfigPoint{2, 4, "DDR3-1600", 2, 0, false},
        ConfigPoint{2, 4, "DDR2-800", 0, 0, true},   // line interleave + XOR
        ConfigPoint{2, 4, "DDR2-800", 1, 1, false},  // page interleave, open page
        ConfigPoint{2, 4, "DDR2-800", 2, 2, true}),  // hybrid, adaptive, XOR
    [](const auto& tpinfo) {
      std::string n = std::string("ch") + std::to_string(std::get<0>(tpinfo.param)) +
                      "b" + std::to_string(std::get<1>(tpinfo.param)) + "_" +
                      std::get<2>(tpinfo.param) + "_il" +
                      std::to_string(std::get<3>(tpinfo.param)) + "pp" +
                      std::to_string(std::get<4>(tpinfo.param)) +
                      (std::get<5>(tpinfo.param) ? "_xor" : "");
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(ConfigRejection, ThrowsOnInvalidSystemConfig) {
  SystemConfig cfg;
  cfg.cores = 2;
  cfg.cpu_ratio = 5;  // mismatched with hierarchy/controller (still 8)
  std::vector<trace::AppProfile> apps{trace::spec2000_by_name("swim"),
                                      trace::spec2000_by_name("gzip")};
  sched::HitFirstReadFirstScheduler s;
  EXPECT_THROW({ MultiCoreSystem sys(cfg, apps, s, 1); }, std::invalid_argument);
}

TEST(ConfigRejection, ValidateCatchesBadOrganization) {
  SystemConfig cfg;
  cfg.org.banks_per_dimm = 3;  // not a power of two
  EXPECT_FALSE(cfg.validate().empty());
  cfg = SystemConfig{};
  cfg.org.capacity_bytes = 1 << 20;  // too small for the organization
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(ConfigRejection, ValidateCatchesBadTiming) {
  SystemConfig cfg;
  cfg.timing.tRAS = 1;  // < tRCD
  EXPECT_FALSE(cfg.validate().empty());
}

TEST(ConfigDeterminism, IdenticalAcrossConfigsRebuilt) {
  for (int rep = 0; rep < 2; ++rep) {
    static double first_ipc = 0.0;
    SystemConfig cfg;
    cfg.cores = 2;
    cfg.bank_xor = true;
    cfg.controller.page_policy = mc::PagePolicy::kAdaptive;
    std::vector<trace::AppProfile> apps{trace::spec2000_by_name("applu"),
                                        trace::spec2000_by_name("mcf")};
    sched::LeastRequestScheduler s;
    MultiCoreSystem sys(cfg, apps, s, 77);
    const RunResult r = sys.run(15'000, 5'000);
    if (rep == 0) {
      first_ipc = r.cores[0].ipc;
    } else {
      EXPECT_DOUBLE_EQ(r.cores[0].ipc, first_ipc);
    }
  }
}

}  // namespace
}  // namespace memsched::sim
