// Unit tests for src/sched: baseline policies, priority semantics, and
// policy-driven service order through a real controller.
#include <gtest/gtest.h>

#include <vector>

#include "core/scheduler_factory.hpp"
#include "dram/dram_system.hpp"
#include "mc/controller.hpp"
#include "sched/policies.hpp"
#include "sched/parbs.hpp"
#include "sched/stfm.hpp"

namespace memsched::sched {
namespace {

QueueSnapshot snapshot(const std::vector<std::uint32_t>& reads,
                       const std::vector<std::uint32_t>& writes) {
  QueueSnapshot s;
  s.core_count = static_cast<std::uint32_t>(reads.size());
  s.pending_reads = reads.data();
  s.pending_writes = writes.data();
  return s;
}

mc::Request request_from(CoreId core) {
  mc::Request r;
  r.core = core;
  return r;
}

TEST(Fcfs, IgnoresEverything) {
  FcfsScheduler s;
  EXPECT_EQ(s.name(), "FCFS");
  EXPECT_FALSE(s.use_hit_first());
  EXPECT_FALSE(s.use_read_first());
  EXPECT_EQ(s.core_priority(0), s.core_priority(3));
}

TEST(FcfsReadFirst, ReadFirstButNoHitFirst) {
  FcfsReadFirstScheduler s;
  EXPECT_TRUE(s.use_read_first());
  EXPECT_FALSE(s.use_hit_first());
}

TEST(HfRf, HitAboveCoreAndNoCoreBias) {
  HitFirstReadFirstScheduler s;
  EXPECT_TRUE(s.use_hit_first());
  EXPECT_TRUE(s.use_read_first());
  EXPECT_TRUE(s.hit_first_above_core());
  EXPECT_FALSE(s.random_core_tie_break());
  EXPECT_EQ(s.core_priority(0), s.core_priority(7));
}

TEST(RoundRobin, RotatesAfterService) {
  RoundRobinScheduler s(4);
  // Initially last_served = 0, so core 1 ranks highest.
  EXPECT_GT(s.core_priority(1), s.core_priority(2));
  EXPECT_GT(s.core_priority(2), s.core_priority(3));
  EXPECT_GT(s.core_priority(3), s.core_priority(0));
  s.on_served(request_from(2));
  EXPECT_GT(s.core_priority(3), s.core_priority(0));
  EXPECT_GT(s.core_priority(0), s.core_priority(1));
  EXPECT_GT(s.core_priority(1), s.core_priority(2));
}

TEST(RoundRobin, ResetRestoresToken) {
  RoundRobinScheduler s(4);
  s.on_served(request_from(3));
  s.reset();
  EXPECT_GT(s.core_priority(1), s.core_priority(0));
}

TEST(LeastRequest, FewestPendingWins) {
  LeastRequestScheduler s;
  const std::vector<std::uint32_t> reads{5, 1, 3, 0};
  const std::vector<std::uint32_t> writes{0, 0, 0, 0};
  s.prepare(snapshot(reads, writes));
  EXPECT_GT(s.core_priority(1), s.core_priority(2));
  EXPECT_GT(s.core_priority(2), s.core_priority(0));
  // A core with nothing pending ranks lowest of all.
  EXPECT_LT(s.core_priority(3), s.core_priority(0));
  EXPECT_TRUE(s.random_core_tie_break());
}

TEST(FixOrder, DescendingAndAscendingFactories) {
  auto desc = FixOrderScheduler::descending(4);
  EXPECT_EQ(desc->name(), "FIX-3210");
  EXPECT_GT(desc->core_priority(3), desc->core_priority(2));
  EXPECT_GT(desc->core_priority(1), desc->core_priority(0));

  auto asc = FixOrderScheduler::ascending(4);
  EXPECT_EQ(asc->name(), "FIX-0123");
  EXPECT_GT(asc->core_priority(0), asc->core_priority(1));
}

TEST(FixOrder, ArbitraryPermutation) {
  FixOrderScheduler s({2, 0, 3, 1});
  EXPECT_EQ(s.name(), "FIX-2031");
  EXPECT_GT(s.core_priority(2), s.core_priority(0));
  EXPECT_GT(s.core_priority(0), s.core_priority(3));
  EXPECT_GT(s.core_priority(3), s.core_priority(1));
}

TEST(ThreadOverHit, ForwardsEverythingButOrdering) {
  auto inner = std::make_unique<LeastRequestScheduler>();
  LeastRequestScheduler& ref = *inner;
  ThreadOverHit wrapped(std::move(inner));
  EXPECT_EQ(wrapped.name(), "LREQ/TOH");
  EXPECT_FALSE(wrapped.hit_first_above_core());
  EXPECT_TRUE(wrapped.random_core_tie_break());
  const std::vector<std::uint32_t> reads{2, 7};
  const std::vector<std::uint32_t> writes{0, 0};
  wrapped.prepare(snapshot(reads, writes));
  EXPECT_EQ(wrapped.core_priority(0), ref.core_priority(0));
}

TEST(FairQueue, EarliestVirtualFinishWins) {
  FairQueueScheduler s(2, 10.0);
  QueueSnapshot snap{};
  snap.now = 100;
  s.prepare(snap);
  // Untouched cores tie at -now.
  EXPECT_EQ(s.core_priority(0), s.core_priority(1));
  mc::Request r0 = request_from(0);
  s.on_served(r0);  // core 0's clock advances by quantum * N = 20
  EXPECT_LT(s.core_priority(0), s.core_priority(1));
  // Serving core 1 once balances the clocks again.
  mc::Request r1 = request_from(1);
  s.on_served(r1);
  EXPECT_EQ(s.core_priority(0), s.core_priority(1));
}

TEST(FairQueue, IdleCoreClockDoesNotLagBehindNow) {
  FairQueueScheduler s(2, 10.0);
  QueueSnapshot snap{};
  snap.now = 0;
  s.prepare(snap);
  mc::Request r0 = request_from(0);
  for (int i = 0; i < 50; ++i) s.on_served(r0);  // core 0 hogs early
  // Much later, core 1 (idle so far) must not have accumulated unbounded
  // credit: its clock snaps to `now`, so core 0's small surplus decides.
  snap.now = 100'000;
  s.prepare(snap);
  EXPECT_GT(s.core_priority(1), s.core_priority(0) - 10.0 * 2 * 51);
  s.on_served(r0);
  EXPECT_LT(s.core_priority(0), s.core_priority(1));
}

TEST(Stfm, StaysOutOfTheWayWhenBalanced) {
  StfmScheduler s({1.0, 1.0}, /*epoch_cpu_cycles=*/1000.0, /*alpha=*/1.10);
  // Both cores slowed equally: 500 insts per 1000-cycle epoch -> IPC 0.5.
  s.on_epoch(0, 500.0, 0.0);
  s.on_epoch(1, 500.0, 0.0);
  QueueSnapshot snap{};
  s.prepare(snap);
  EXPECT_FALSE(s.intervening());
  EXPECT_EQ(s.core_priority(0), s.core_priority(1));
}

TEST(Stfm, PrioritizesMostSlowedThread) {
  StfmScheduler s({1.0, 1.0}, 1000.0, 1.10);
  s.on_epoch(0, 900.0, 0.0);  // slowdown ~1.11
  s.on_epoch(1, 400.0, 0.0);  // slowdown 2.5
  QueueSnapshot snap{};
  s.prepare(snap);
  EXPECT_TRUE(s.intervening());
  EXPECT_GT(s.core_priority(1), s.core_priority(0));
  EXPECT_NEAR(s.slowdown(1), 2.5, 0.01);
}

TEST(Stfm, SlowdownClampedAtOne) {
  StfmScheduler s({0.5}, 1000.0);
  s.on_epoch(0, 900.0, 0.0);  // running faster than "alone" (slice noise)
  EXPECT_DOUBLE_EQ(s.slowdown(0), 1.0);
}

TEST(Stfm, ResetClearsEstimates) {
  StfmScheduler s({1.0, 1.0}, 1000.0);
  s.on_epoch(0, 100.0, 0.0);
  s.on_epoch(1, 900.0, 0.0);
  QueueSnapshot snap{};
  s.prepare(snap);
  ASSERT_TRUE(s.intervening());
  s.reset();
  s.prepare(snap);
  EXPECT_FALSE(s.intervening());
  EXPECT_DOUBLE_EQ(s.slowdown(0), 1.0);
}

TEST(Stfm, EwmaSmoothsEpochNoise) {
  StfmScheduler s({1.0}, 1000.0, 1.10, 0.25);
  s.on_epoch(0, 500.0, 0.0);
  const double sd_initial = s.slowdown(0);
  s.on_epoch(0, 1000.0, 0.0);  // one fast epoch must not erase history
  EXPECT_GT(s.slowdown(0), 1.0);
  EXPECT_LT(s.slowdown(0), sd_initial);
}

TEST(Parbs, FormsBatchFromPendingWork) {
  ParbsScheduler s(2, /*batch_cap=*/3);
  const std::vector<std::uint32_t> reads{5, 1};
  const std::vector<std::uint32_t> writes{0, 0};
  s.prepare(snapshot(reads, writes));
  EXPECT_EQ(s.batches_formed(), 1u);
  EXPECT_EQ(s.quota(0), 3u);  // capped
  EXPECT_EQ(s.quota(1), 1u);
}

TEST(Parbs, ShortestJobFirstWithinBatch) {
  ParbsScheduler s(2, 5);
  const std::vector<std::uint32_t> reads{5, 1};
  const std::vector<std::uint32_t> writes{0, 0};
  s.prepare(snapshot(reads, writes));
  // Core 1 has the smaller batch -> higher rank.
  EXPECT_GT(s.core_priority(1), s.core_priority(0));
}

TEST(Parbs, BatchedOutranksUnbatched) {
  ParbsScheduler s(2, 1);
  const std::vector<std::uint32_t> reads{3, 0};
  const std::vector<std::uint32_t> writes{0, 0};
  s.prepare(snapshot(reads, writes));
  EXPECT_GT(s.core_priority(0), s.core_priority(1));  // core 1 unbatched
}

TEST(Parbs, NewBatchOnlyAfterDrain) {
  ParbsScheduler s(2, 2);
  const std::vector<std::uint32_t> reads{4, 4};
  const std::vector<std::uint32_t> writes{0, 0};
  s.prepare(snapshot(reads, writes));
  ASSERT_EQ(s.batches_formed(), 1u);
  s.prepare(snapshot(reads, writes));  // batch not drained yet
  EXPECT_EQ(s.batches_formed(), 1u);
  // Serve the whole batch.
  for (CoreId c = 0; c < 2; ++c) {
    for (int i = 0; i < 2; ++i) s.on_served(request_from(c));
  }
  s.prepare(snapshot(reads, writes));
  EXPECT_EQ(s.batches_formed(), 2u);
}

TEST(Parbs, WritesDoNotConsumeQuota) {
  ParbsScheduler s(1, 2);
  const std::vector<std::uint32_t> reads{2};
  const std::vector<std::uint32_t> writes{0};
  s.prepare(snapshot(reads, writes));
  mc::Request w = request_from(0);
  w.is_write = true;
  s.on_served(w);
  EXPECT_EQ(s.quota(0), 2u);
  s.on_served(request_from(0));
  EXPECT_EQ(s.quota(0), 1u);
}

// ------------------------------------------- factory ----------------------

TEST(Factory, CreatesEveryKnownScheduler) {
  core::SchedulerArgs args;
  args.core_count = 4;
  args.me = core::MeTable({1.0, 2.0, 3.0, 4.0});
  args.ipc_single = {1.0, 1.5, 2.0, 0.5};
  for (const auto& name : core::known_schedulers()) {
    auto s = core::make_scheduler(name, args);
    ASSERT_NE(s, nullptr) << name;
    // FIX factories report the concrete core order for this core count.
    if (name == "FIX-DESC") {
      EXPECT_EQ(s->name(), "FIX-3210");
    } else if (name == "FIX-ASC") {
      EXPECT_EQ(s->name(), "FIX-0123");
    } else {
      EXPECT_EQ(s->name(), name);
    }
  }
}

TEST(Factory, TohSuffixWraps) {
  core::SchedulerArgs args;
  args.core_count = 2;
  args.me = core::MeTable({1.0, 2.0});
  auto s = core::make_scheduler("ME-LREQ/TOH", args);
  EXPECT_EQ(s->name(), "ME-LREQ/TOH");
  EXPECT_FALSE(s->hit_first_above_core());
}

TEST(Factory, ThrowsOnUnknown) {
  core::SchedulerArgs args;
  args.core_count = 1;
  args.me = core::MeTable({1.0});
  EXPECT_THROW(core::make_scheduler("NOPE", args), std::invalid_argument);
}

// ------------------- policy-driven service order through the engine -------

/// Drives a controller with one scheduler and same-bank requests from
/// different cores; returns the order in which cores' reads completed.
std::vector<CoreId> service_order(Scheduler& sched,
                                  const std::vector<CoreId>& enqueue_order) {
  dram::DramSystem dram(dram::Timing{}, dram::Organization{},
                        dram::Interleave::kHybrid);
  mc::MemoryController mcu(dram, sched, mc::ControllerConfig{}, 4, 1);
  std::vector<CoreId> done;
  mcu.set_read_callback([&](const mc::Request& r, Tick) { done.push_back(r.core); });
  // All requests to the SAME channel and bank, distinct rows: the bank is a
  // strict bottleneck, so completion order == scheduling order.
  std::uint64_t row = 1;
  for (const CoreId c : enqueue_order) {
    EXPECT_TRUE(mcu.enqueue_read(c, dram.address_map().encode({0, 0, row++, 0}), 0));
  }
  Tick now = 0;
  while (!mcu.idle() && now < 100'000) mcu.tick(now++);
  EXPECT_TRUE(mcu.idle());
  return done;
}

TEST(ServiceOrder, HfRfServesByArrival) {
  HitFirstReadFirstScheduler s;
  const auto order = service_order(s, {3, 1, 2, 0});
  EXPECT_EQ(order, (std::vector<CoreId>{3, 1, 2, 0}));
}

TEST(ServiceOrder, FixAscendingServesCoreZeroFirst) {
  auto s = FixOrderScheduler::ascending(4);
  const auto order = service_order(*s, {3, 1, 2, 0});
  EXPECT_EQ(order, (std::vector<CoreId>{0, 1, 2, 3}));
}

TEST(ServiceOrder, FixDescendingServesHighestCoreFirst) {
  auto s = FixOrderScheduler::descending(4);
  const auto order = service_order(*s, {0, 1, 2, 3});
  EXPECT_EQ(order, (std::vector<CoreId>{3, 2, 1, 0}));
}

TEST(ServiceOrder, RoundRobinAlternatesCores) {
  RoundRobinScheduler s(2);
  // Core 0 floods, core 1 has one request in the middle.
  const auto order = service_order(s, {0, 0, 0, 1, 0});
  // Round-robin must not leave core 1 for last.
  ASSERT_EQ(order.size(), 5u);
  bool one_before_last_zero = false;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    if (order[i] == 1) one_before_last_zero = true;
  }
  EXPECT_TRUE(one_before_last_zero);
}

TEST(ServiceOrder, FairQueueAlternatesUnderFlood) {
  // Quantum larger than a transaction's service time so the virtual clocks
  // stay ahead of real time and the share constraint binds.
  FairQueueScheduler s(2, 50.0);
  const auto order = service_order(s, {0, 0, 0, 1, 1, 1});
  // Near-strict alternation once both cores have queued requests.
  ASSERT_EQ(order.size(), 6u);
  int transitions = 0;
  for (std::size_t i = 1; i < order.size(); ++i) transitions += order[i] != order[i - 1];
  EXPECT_GE(transitions, 3);
}

/// Completion index of core 1's single bank-1 request when nine older
/// requests from core 0 pile onto bank 0 of the same channel.
std::size_t bank1_completion_index(Scheduler& sched) {
  dram::DramSystem dram(dram::Timing{}, dram::Organization{},
                        dram::Interleave::kHybrid);
  mc::MemoryController mcu(dram, sched, mc::ControllerConfig{}, 2, 1);
  std::vector<CoreId> done;
  mcu.set_read_callback([&](const mc::Request& r, Tick) { done.push_back(r.core); });
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(mcu.enqueue_read(0, dram.address_map().encode({0, 0, 10 + i, 0}), 0));
  }
  EXPECT_TRUE(mcu.enqueue_read(1, dram.address_map().encode({0, 1, 5, 0}), 0));
  Tick now = 0;
  while (!mcu.idle() && now < 100'000) mcu.tick(now++);
  EXPECT_TRUE(mcu.idle());
  for (std::size_t i = 0; i < done.size(); ++i) {
    if (done[i] == 1) return i;
  }
  return done.size();
}

TEST(ServiceOrder, BoundedWindowDelaysYoungRequestToIdleBank) {
  // The 21st-oldest request targets an idle bank. HF-RF's 8-deep window
  // (over queued requests) hides it until enough older bank-0 requests
  // have departed; the unbounded variant serves it immediately.
  HitFirstReadFirstScheduler windowed;  // window = 8
  HitFirstReadFirstScheduler unbounded(0);
  const std::size_t pos_windowed = bank1_completion_index(windowed);
  const std::size_t pos_unbounded = bank1_completion_index(unbounded);
  EXPECT_LE(pos_unbounded, 1u);
  EXPECT_GE(pos_windowed, 5u);
}

TEST(ServiceOrder, StrictFcfsFullHeadOfLineBlocking) {
  FcfsReadFirstScheduler fcfs;  // window = 1
  // The bank-1 request goes essentially last: it only becomes visible once
  // every older bank-0 request has left the queue (the final one may still
  // be in flight on the slow bank, so allow one position of slack).
  EXPECT_GE(bank1_completion_index(fcfs), 19u);
}

TEST(ServiceOrder, LreqPrefersLightCore) {
  LeastRequestScheduler s;
  // Core 0 has 4 pending, core 1 has 1: core 1 must be served first even
  // though it arrived last.
  const auto order = service_order(s, {0, 0, 0, 0, 1});
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 1u);
}

}  // namespace
}  // namespace memsched::sched
