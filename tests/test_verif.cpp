// Tests for the verification layer (src/verif).
//
// The mutation tests are the heart of this file: each drives one illegal
// command sequence at the ProtocolChecker in record mode and asserts that
// exactly the targeted JEDEC rule fires. A checker that never fires is
// worse than none — these tests are what make the clean-run integration
// checks meaningful.
#include <gtest/gtest.h>

#include "dram/command.hpp"
#include "dram/timing.hpp"
#include "mc/request.hpp"
#include "sched/policies.hpp"
#include "sim/open_loop.hpp"
#include "sim/system.hpp"
#include "trace/generator.hpp"
#include "verif/invariant_auditor.hpp"
#include "verif/lifecycle_checker.hpp"
#include "verif/protocol_checker.hpp"

namespace memsched::verif {
namespace {

using dram::CommandRecord;
using dram::CommandType;

// ----------------------------------------------- protocol checker rig ----

CheckerConfig record_mode() {
  CheckerConfig cfg;
  cfg.abort_on_violation = false;
  return cfg;
}

/// One channel, eight banks, single rank, DDR2-800 5-5-5 defaults.
ProtocolChecker make_checker(std::uint32_t banks_per_rank = 0) {
  return ProtocolChecker(dram::Timing{}, 1, 8, banks_per_rank, record_mode());
}

CommandRecord cmd(CommandType type, std::uint32_t bank, Tick tick,
                  std::uint64_t row = 0) {
  CommandRecord c;
  c.type = type;
  c.channel = 0;
  c.bank = bank;
  c.row = row;
  c.tick = tick;
  return c;
}

// A legal close-page transaction sequence produces no violations; this is
// the baseline the mutations below perturb. DDR2-800: tCL 5, tRCD 5, tRP 5,
// tRAS 18, tWL 4, tWR 6, tWTR 3, tRTW 2, tRTP 3, tRRD 3, tFAW 15, tCCD 2.
TEST(ProtocolChecker, CleanSequencePasses) {
  auto pc = make_checker();
  pc.on_command(cmd(CommandType::kActivate, 0, 0, 17));
  pc.on_command(cmd(CommandType::kRead, 0, 5));
  pc.on_command(cmd(CommandType::kPrecharge, 0, 18));
  pc.on_command(cmd(CommandType::kActivate, 0, 23, 4));
  pc.on_command(cmd(CommandType::kWrite, 0, 28));
  pc.on_command(cmd(CommandType::kPrecharge, 0, 46));  // 28+4+2+6 = 40, tRAS = 46
  EXPECT_EQ(pc.violation_count(), 0u);
  EXPECT_EQ(pc.commands_checked(), 6u);
}

// ------------------------------------------------------ mutation tests ----
// Each test breaks exactly one timing rule and asserts the checker names it.

TEST(ProtocolCheckerMutation, CasTooSoonAfterActivateFirestRCD) {
  auto pc = make_checker();
  pc.on_command(cmd(CommandType::kActivate, 0, 0));
  pc.on_command(cmd(CommandType::kRead, 0, 4));  // tRCD = 5
  EXPECT_EQ(pc.violation_count(), 1u);
  EXPECT_TRUE(pc.saw_rule("tRCD"));
}

TEST(ProtocolCheckerMutation, ActivateTooSoonAfterPrechargeFirestRP) {
  auto pc = make_checker();
  pc.on_command(cmd(CommandType::kActivate, 0, 0));
  pc.on_command(cmd(CommandType::kPrecharge, 0, 30));  // tRAS long since met
  pc.on_command(cmd(CommandType::kActivate, 0, 33));   // needs 30 + tRP(5) = 35
  EXPECT_EQ(pc.violation_count(), 1u);
  EXPECT_TRUE(pc.saw_rule("tRP"));
}

TEST(ProtocolCheckerMutation, EarlyPrechargeFirestRAS) {
  auto pc = make_checker();
  pc.on_command(cmd(CommandType::kActivate, 0, 0));
  pc.on_command(cmd(CommandType::kPrecharge, 0, 10));  // tRAS = 18
  EXPECT_EQ(pc.violation_count(), 1u);
  EXPECT_TRUE(pc.saw_rule("tRAS"));
}

TEST(ProtocolCheckerMutation, BackToBackActivatesFiretRRD) {
  auto pc = make_checker();
  pc.on_command(cmd(CommandType::kActivate, 0, 0));
  pc.on_command(cmd(CommandType::kActivate, 1, 2));  // tRRD = 3
  EXPECT_EQ(pc.violation_count(), 1u);
  EXPECT_TRUE(pc.saw_rule("tRRD"));
}

TEST(ProtocolCheckerMutation, FifthActivateInWindowFirestFAW) {
  auto pc = make_checker();
  // Four ACTs spaced at exactly tRRD: legal, and they fill the FAW window.
  pc.on_command(cmd(CommandType::kActivate, 0, 0));
  pc.on_command(cmd(CommandType::kActivate, 1, 3));
  pc.on_command(cmd(CommandType::kActivate, 2, 6));
  pc.on_command(cmd(CommandType::kActivate, 3, 9));
  EXPECT_EQ(pc.violation_count(), 0u);
  pc.on_command(cmd(CommandType::kActivate, 4, 12));  // needs 0 + tFAW(15)
  EXPECT_EQ(pc.violation_count(), 1u);
  EXPECT_TRUE(pc.saw_rule("tFAW"));
}

TEST(ProtocolCheckerMutation, ReadChasingWriteBurstFirestWTR) {
  auto pc = make_checker();
  pc.on_command(cmd(CommandType::kActivate, 0, 0));
  pc.on_command(cmd(CommandType::kWrite, 0, 5));  // data beats end @ 5+4+2 = 11
  pc.on_command(cmd(CommandType::kRead, 0, 12));  // needs 11 + tWTR(3) = 14
  EXPECT_EQ(pc.violation_count(), 1u);
  EXPECT_TRUE(pc.saw_rule("tWTR"));
}

TEST(ProtocolCheckerMutation, WriteChasingReadBurstFirestRTW) {
  auto pc = make_checker();
  pc.on_command(cmd(CommandType::kActivate, 0, 0));
  pc.on_command(cmd(CommandType::kActivate, 1, 3));
  pc.on_command(cmd(CommandType::kRead, 0, 8));    // read data ends @ 8+5+2 = 15
  pc.on_command(cmd(CommandType::kWrite, 1, 11));  // data @ 15, needs 15+tRTW(2)
  EXPECT_EQ(pc.violation_count(), 1u);
  EXPECT_TRUE(pc.saw_rule("tRTW"));
}

TEST(ProtocolCheckerMutation, PrechargeDuringWriteRecoveryFirestWR) {
  auto pc = make_checker();
  pc.on_command(cmd(CommandType::kActivate, 0, 0));
  pc.on_command(cmd(CommandType::kWrite, 0, 5));
  pc.on_command(cmd(CommandType::kWrite, 0, 7));       // last beat @ 7+4+2 = 13
  pc.on_command(cmd(CommandType::kPrecharge, 0, 18));  // tRAS met; needs 13+tWR(6)
  EXPECT_EQ(pc.violation_count(), 1u);
  EXPECT_TRUE(pc.saw_rule("tWR"));
}

TEST(ProtocolCheckerMutation, PrechargeRightAfterReadFirestRTP) {
  auto pc = make_checker();
  pc.on_command(cmd(CommandType::kActivate, 0, 0));
  pc.on_command(cmd(CommandType::kRead, 0, 16));
  pc.on_command(cmd(CommandType::kPrecharge, 0, 18));  // tRAS met; needs 16+tRTP(3)
  EXPECT_EQ(pc.violation_count(), 1u);
  EXPECT_TRUE(pc.saw_rule("tRTP"));
}

TEST(ProtocolCheckerMutation, BackToBackCasFiretCCD) {
  auto pc = make_checker();
  pc.on_command(cmd(CommandType::kActivate, 0, 0));
  pc.on_command(cmd(CommandType::kRead, 0, 5));
  pc.on_command(cmd(CommandType::kRead, 0, 6));  // tCCD = 2 (also overlaps data)
  EXPECT_TRUE(pc.saw_rule("tCCD"));
  EXPECT_TRUE(pc.saw_rule("data-bus"));
}

TEST(ProtocolCheckerMutation, OverlappingBurstsFireDataBus) {
  auto pc = make_checker();
  pc.on_command(cmd(CommandType::kActivate, 0, 0));
  pc.on_command(cmd(CommandType::kRead, 0, 5));   // data occupies 10..12
  pc.on_command(cmd(CommandType::kWrite, 0, 7));  // write data starts @ 11
  EXPECT_TRUE(pc.saw_rule("data-bus"));
}

TEST(ProtocolCheckerMutation, ActivateToOpenBankFires) {
  auto pc = make_checker();
  pc.on_command(cmd(CommandType::kActivate, 0, 0, 7));
  pc.on_command(cmd(CommandType::kActivate, 0, 30, 9));  // tRC met, row still open
  EXPECT_EQ(pc.violation_count(), 1u);
  EXPECT_TRUE(pc.saw_rule("ACT-open-bank"));
}

TEST(ProtocolCheckerMutation, CasWithNoOpenRowFires) {
  auto pc = make_checker();
  pc.on_command(cmd(CommandType::kRead, 0, 0));
  EXPECT_TRUE(pc.saw_rule("CAS-closed-bank"));
}

TEST(ProtocolCheckerMutation, SharedCommandSlotFires) {
  auto pc = make_checker();
  pc.on_command(cmd(CommandType::kActivate, 0, 5));
  pc.on_command(cmd(CommandType::kActivate, 1, 5));  // one command/channel/tick
  EXPECT_TRUE(pc.saw_rule("command-bus"));
}

TEST(ProtocolCheckerMutation, RankSwitchWithoutGapFirestRTRS) {
  auto pc = make_checker(/*banks_per_rank=*/4);  // banks 0-3 rank 0, 4-7 rank 1
  pc.on_command(cmd(CommandType::kActivate, 0, 0));
  pc.on_command(cmd(CommandType::kActivate, 4, 3));
  pc.on_command(cmd(CommandType::kRead, 0, 8));    // data 13..15
  pc.on_command(cmd(CommandType::kRead, 4, 10));   // data @ 15: legal same-rank,
  EXPECT_EQ(pc.violation_count(), 1u);             // but needs +tRTRS across ranks
  EXPECT_TRUE(pc.saw_rule("tRTRS"));
}

// Auto-precharge shadows the JEDEC internal-precharge start: the next ACT is
// checked against max(tRTP/tWR completion, tRAS) + tRP, not the CAS tick.
TEST(ProtocolCheckerMutation, AutoPrechargeDerivedStartEnforced) {
  auto pc = make_checker();
  pc.on_command(cmd(CommandType::kActivate, 0, 0));
  pc.on_command(cmd(CommandType::kReadAp, 0, 5));     // pre starts @ tRAS = 18
  pc.on_command(cmd(CommandType::kActivate, 0, 22));  // needs 18 + tRP(5) = 23
  EXPECT_TRUE(pc.saw_rule("tRP"));

  auto ok = make_checker();
  ok.on_command(cmd(CommandType::kActivate, 0, 0));
  ok.on_command(cmd(CommandType::kReadAp, 0, 5));
  ok.on_command(cmd(CommandType::kActivate, 0, 23));
  EXPECT_EQ(ok.violation_count(), 0u);
}

TEST(ProtocolCheckerMutation, RefreshWithOpenRowFires) {
  auto pc = make_checker();
  pc.on_command(cmd(CommandType::kActivate, 2, 0));
  pc.on_command(cmd(CommandType::kRefresh, 0, 30));
  EXPECT_TRUE(pc.saw_rule("REF-open-bank"));
}

TEST(ProtocolCheckerMutation, BadCoordinatesFire) {
  auto pc = make_checker();
  pc.on_command(cmd(CommandType::kActivate, 99, 0));
  EXPECT_TRUE(pc.saw_rule("bad-coordinates"));
}

// Abort mode is the default wiring: the first violation must terminate the
// process, naming the rule, so a protocol bug can never produce numbers.
TEST(ProtocolCheckerDeath, AbortModeDiesNamingTheRule) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ProtocolChecker pc(dram::Timing{}, 1, 8, 0, CheckerConfig{});
        pc.on_command(cmd(CommandType::kActivate, 0, 0));
        pc.on_command(cmd(CommandType::kRead, 0, 4));
      },
      "tRCD");
}

// --------------------------------------------- lifecycle checker tests ----

RequestLifecycleChecker::Params small_params() {
  RequestLifecycleChecker::Params p;
  p.core_count = 2;
  p.overhead_ticks = 6;
  p.buffer_entries = 4;
  p.drain_high = 32;
  p.drain_low = 16;
  p.channels = 2;
  p.banks_per_channel = 8;
  return p;
}

mc::Request make_req(RequestId id, CoreId core, bool is_write, Tick enqueue,
                     std::uint32_t channel = 0, std::uint32_t bank = 0) {
  mc::Request r;
  r.id = id;
  r.core = core;
  r.line_addr = id * kLineBytes;
  r.is_write = is_write;
  r.dram.channel = channel;
  r.dram.bank = bank;
  r.enqueue_tick = enqueue;
  r.visible_tick = enqueue + 6;
  return r;
}

TEST(LifecycleChecker, CleanReadLifecyclePasses) {
  RequestLifecycleChecker lc(small_params(), record_mode());
  const auto r = make_req(1, 0, false, 0);
  lc.on_enqueue(r, 0);
  lc.on_schedule(r, mc::RowState::kClosed, 6);
  lc.on_cas(r, 10, 22);
  lc.on_deliver(r, 22, 22);
  EXPECT_EQ(lc.violation_count(), 0u);
  EXPECT_EQ(lc.live_requests(), 0u);
}

TEST(LifecycleCheckerMutation, SecondDeliveryFiresDoubleCompletion) {
  RequestLifecycleChecker lc(small_params(), record_mode());
  const auto r = make_req(1, 0, false, 0);
  lc.on_enqueue(r, 0);
  lc.on_schedule(r, mc::RowState::kClosed, 6);
  lc.on_cas(r, 10, 22);
  lc.on_deliver(r, 22, 22);
  lc.on_deliver(r, 22, 25);
  EXPECT_TRUE(lc.saw_rule("double-completion"));
}

TEST(LifecycleCheckerMutation, CasBeforeScheduleFires) {
  RequestLifecycleChecker lc(small_params(), record_mode());
  const auto r = make_req(1, 0, false, 0);
  lc.on_enqueue(r, 0);
  lc.on_cas(r, 10, 22);
  EXPECT_TRUE(lc.saw_rule("cas-out-of-order"));
}

TEST(LifecycleCheckerMutation, ScheduleBeforeVisibleTickFires) {
  RequestLifecycleChecker lc(small_params(), record_mode());
  const auto r = make_req(1, 0, false, 10);  // visible @ 16
  lc.on_enqueue(r, 10);
  lc.on_schedule(r, mc::RowState::kHit, 12);
  EXPECT_TRUE(lc.saw_rule("overhead-bypass"));
}

TEST(LifecycleCheckerMutation, WrongControllerOverheadFires) {
  RequestLifecycleChecker lc(small_params(), record_mode());
  auto r = make_req(1, 0, false, 10);
  r.visible_tick = 12;  // params say enqueue + 6
  lc.on_enqueue(r, 10);
  EXPECT_TRUE(lc.saw_rule("visible-tick"));
}

TEST(LifecycleCheckerMutation, DoubleBookedBankSlotFires) {
  RequestLifecycleChecker lc(small_params(), record_mode());
  const auto a = make_req(1, 0, false, 0, 0, 3);
  const auto b = make_req(2, 1, false, 0, 0, 3);
  lc.on_enqueue(a, 0);
  lc.on_enqueue(b, 0);
  lc.on_schedule(a, mc::RowState::kClosed, 6);
  lc.on_schedule(b, mc::RowState::kClosed, 7);
  EXPECT_TRUE(lc.saw_rule("slot-conflict"));
}

TEST(LifecycleCheckerMutation, OverfilledBufferFires) {
  RequestLifecycleChecker lc(small_params(), record_mode());  // 4 entries
  for (RequestId id = 1; id <= 5; ++id) {
    lc.on_enqueue(make_req(id, 0, false, 0), 0);
  }
  EXPECT_TRUE(lc.saw_rule("buffer-overflow"));
}

TEST(LifecycleCheckerMutation, DrainHysteresisViolationsFire) {
  RequestLifecycleChecker lc(small_params(), record_mode());
  lc.on_drain(true, 10, 100);  // entered below drain_high = 32
  EXPECT_TRUE(lc.saw_rule("drain-hysteresis"));
  lc.clear_violations();
  lc.on_drain(true, 40, 110);  // entered while already draining
  EXPECT_TRUE(lc.saw_rule("drain-double-enter"));
  lc.clear_violations();
  lc.on_drain(false, 20, 120);  // exited above drain_low = 16
  EXPECT_TRUE(lc.saw_rule("drain-hysteresis"));
}

TEST(LifecycleCheckerMutation, DuplicateIdFires) {
  RequestLifecycleChecker lc(small_params(), record_mode());
  lc.on_enqueue(make_req(7, 0, false, 0), 0);
  lc.on_enqueue(make_req(7, 1, true, 1), 1);
  EXPECT_TRUE(lc.saw_rule("duplicate-id"));
}

// ------------------------------------------------- integration checks ----

std::vector<trace::AppProfile> two_apps() {
  return {trace::spec2000_by_name("swim"), trace::spec2000_by_name("gzip")};
}

// The unmodified simulator must run clean under the full audit: every DRAM
// command re-validated, every request's lifecycle tracked, counters
// cross-checked each epoch, leak check at the end. Abort mode means any
// violation kills this test outright.
TEST(InvariantAuditor, CleanSimulationRunsAuditedWithoutViolations) {
  sim::SystemConfig cfg;
  cfg.cores = 2;
  cfg.audit.enabled = true;
  sched::HitFirstReadFirstScheduler s;
  sim::MultiCoreSystem sys(cfg, two_apps(), s, 7);
  const auto r = sys.run(25'000, 5'000);
  EXPECT_GT(r.ticks, 0u);
  ASSERT_NE(sys.auditor(), nullptr);
  EXPECT_EQ(sys.auditor()->violation_count(), 0u);
#if MEMSCHED_VERIF_ENABLED
  EXPECT_GT(sys.auditor()->protocol().commands_checked(), 1000u);
  EXPECT_GT(sys.auditor()->lifecycle().requests_tracked(), 100u);
#endif
}

TEST(InvariantAuditor, RefreshTrafficAlsoRunsClean) {
  sim::SystemConfig cfg;
  cfg.cores = 2;
  cfg.timing.refresh_enabled = true;
  cfg.audit.enabled = true;
  sched::HitFirstReadFirstScheduler s;
  sim::MultiCoreSystem sys(cfg, two_apps(), s, 11);
  sys.run(20'000, 2'000);
  ASSERT_NE(sys.auditor(), nullptr);
  EXPECT_EQ(sys.auditor()->violation_count(), 0u);
}

TEST(InvariantAuditor, DisabledConfigAttachesNothing) {
  sim::SystemConfig cfg;
  cfg.cores = 2;
  cfg.audit.enabled = false;
  sched::HitFirstReadFirstScheduler s;
  sim::MultiCoreSystem sys(cfg, two_apps(), s, 7);
  EXPECT_EQ(sys.auditor(), nullptr);
}

// Open-loop harness path: the auditor rides along and the leak check runs
// at the end of the drive loop (abort mode — violations kill the test).
TEST(InvariantAuditor, OpenLoopRunsAudited) {
  sim::OpenLoopConfig cfg;
  cfg.cores = 2;
  cfg.warmup_ticks = 1'000;
  cfg.measure_ticks = 8'000;
  cfg.audit.enabled = true;
  sched::HitFirstReadFirstScheduler s;
  const auto r = sim::run_open_loop(cfg, s);
  EXPECT_GT(r.accepted_per_tick, 0.0);
}

}  // namespace
}  // namespace memsched::verif
