// Result-cache robustness tests: crash-safe commit protocol, the corruption
// quarantine matrix (truncation, bit flips, misfiled keys), degraded-mode
// behaviour under injected ENOSPC/EIO/short writes, offline fsck/gc repair,
// retry-backoff determinism, atomic_file error surfacing, and the
// warm-vs-cold byte-parity contract through the sweep orchestrator.
#include <gtest/gtest.h>
#include <sys/file.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/result_cache.hpp"
#include "ckpt/snapshot.hpp"
#include "harness/orchestrator.hpp"
#include "mc/fault_injector.hpp"
#include "util/atomic_file.hpp"
#include "util/backoff.hpp"
#include "util/fs_fault.hpp"
#include "util/json.hpp"

using namespace memsched;
namespace fs = std::filesystem;

namespace {

std::string tmp_dir(const std::string& name) {
  const std::string d = testing::TempDir() + "memsched_rcache_" + name;
  fs::remove_all(d);
  return d;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

cache::ResultCacheConfig quick_cfg(const std::string& dir) {
  cache::ResultCacheConfig cc;
  cc.dir = dir;
  cc.fingerprint = "test-sweep-fp";
  cc.backoff.base_seconds = 0.0;  // unit tests never sleep
  cc.diagnostics = false;         // keep test logs quiet
  return cc;
}

/// Scripted fault hooks: fail one named op with one errno for the first
/// `fail_count` consultations, optionally clamp writes.
struct ScriptedFaults : util::FsFaultHooks {
  std::string fail_name;
  int fail_errno = 0;
  int fail_count = 0;  // -1 = always
  std::size_t clamp = 0;

  std::size_t clamp_write(std::size_t requested) override {
    if (clamp == 0 || requested <= clamp) return requested;
    return clamp;
  }
  int fail_op(const char* op) override {
    if (fail_name != op || fail_count == 0) return 0;
    if (fail_count > 0) --fail_count;
    return fail_errno;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Basic hit/miss/store behaviour and key separation.

TEST(ResultCache, PutGetRoundTripAndStats) {
  cache::ResultCache rc(quick_cfg(tmp_dir("roundtrip")));
  ASSERT_TRUE(rc.enabled());

  std::string payload;
  EXPECT_FALSE(rc.get("pt-0", &payload));
  rc.put("pt-0", "{\"value\":1}");
  ASSERT_TRUE(rc.get("pt-0", &payload));
  EXPECT_EQ(payload, "{\"value\":1}");

  rc.put("pt-0", "{\"value\":2}");  // already present: first store wins
  ASSERT_TRUE(rc.get("pt-0", &payload));
  EXPECT_EQ(payload, "{\"value\":1}");

  EXPECT_EQ(rc.stats().hits, 2u);
  EXPECT_EQ(rc.stats().misses, 1u);
  EXPECT_EQ(rc.stats().stores, 1u);
  EXPECT_EQ(rc.stats().store_skips, 1u);
  EXPECT_EQ(rc.stats().quarantined, 0u);
}

TEST(ResultCache, KeysSeparateFingerprintsAndNames) {
  const std::string dir = tmp_dir("keys");
  cache::ResultCache a(quick_cfg(dir));
  a.put("pt", "from-a");

  cache::ResultCacheConfig other = quick_cfg(dir);
  other.fingerprint = "different-sweep";
  cache::ResultCache b(other);

  std::string payload;
  EXPECT_FALSE(b.get("pt", &payload));   // other fingerprint: other key
  EXPECT_FALSE(a.get("pt-2", &payload)); // other name: other key
  ASSERT_TRUE(a.get("pt", &payload));
  EXPECT_EQ(payload, "from-a");
  EXPECT_NE(a.entry_path("pt"), b.entry_path("pt"));
}

TEST(ResultCache, UnusableDirectoryDisablesInsteadOfThrowing) {
  const std::string file = tmp_dir("notadir");
  spew(file, "occupied");
  cache::ResultCache rc(quick_cfg(file + "/cache"));
  EXPECT_FALSE(rc.enabled());
  std::string payload;
  EXPECT_FALSE(rc.get("pt", &payload));
  rc.put("pt", "x");  // silently ignored
  EXPECT_EQ(rc.stats().stores, 0u);
}

// ---------------------------------------------------------------------------
// Corruption matrix: a damaged entry must never be served — it is
// quarantined and the lookup degrades to an honest miss.

TEST(ResultCache, TruncationAtEveryPrefixQuarantinesAndMisses) {
  const std::string dir = tmp_dir("trunc");
  cache::ResultCache rc(quick_cfg(dir));
  rc.put("pt", "{\"v\":42}");
  const std::string entry = rc.entry_path("pt");
  const std::string intact = slurp(entry);
  ASSERT_GT(intact.size(), 24u);

  const std::size_t cuts[] = {0, 1, 7, 8, 12, 15, 16, intact.size() / 2,
                              intact.size() - 1};
  std::uint64_t quarantined_before = 0;
  for (const std::size_t cut : cuts) {
    spew(entry, intact.substr(0, cut));
    std::string payload;
    EXPECT_FALSE(rc.get("pt", &payload)) << "served a truncated entry, cut=" << cut;
    EXPECT_EQ(rc.stats().quarantined, quarantined_before + 1) << "cut=" << cut;
    quarantined_before = rc.stats().quarantined;
    EXPECT_FALSE(fs::exists(entry)) << "truncated entry left in serving path";
  }
  // The serving path heals: a fresh store works and hits again.
  rc.put("pt", "{\"v\":42}");
  std::string payload;
  ASSERT_TRUE(rc.get("pt", &payload));
  EXPECT_EQ(payload, "{\"v\":42}");
}

TEST(ResultCache, SingleBitFlipsNeverServeWrongBytes) {
  const std::string dir = tmp_dir("bitflip");
  cache::ResultCache rc(quick_cfg(dir));
  rc.put("pt", "{\"v\":\"payload-under-test\"}");
  const std::string entry = rc.entry_path("pt");
  const std::string intact = slurp(entry);

  std::size_t misses = 0;
  for (std::size_t byte = 0; byte < intact.size(); ++byte) {
    std::string bent = intact;
    bent[byte] = static_cast<char>(bent[byte] ^ 0x10);
    spew(entry, bent);
    std::string payload;
    if (rc.get("pt", &payload)) {
      // A flip a validator ignores is tolerable only if the payload is intact.
      EXPECT_EQ(payload, "{\"v\":\"payload-under-test\"}") << "byte=" << byte;
      spew(entry, intact);  // undo for the next position
    } else {
      ++misses;
      spew(entry, intact);  // quarantined: restore the serving copy
    }
  }
  // The frame validates every region (header, key, section CRCs): flips are
  // overwhelmingly caught, and none may ever leak wrong payload bytes.
  EXPECT_GT(misses, intact.size() / 2);
}

TEST(ResultCache, MisfiledEntryIsRejectedByEmbeddedKey) {
  const std::string dir = tmp_dir("misfiled");
  cache::ResultCache rc(quick_cfg(dir));
  rc.put("pt-a", "payload-a");

  // Serve pt-a's bytes under pt-b's filename — a hash collision or a mixed-up
  // restore. The embedded key string must veto it.
  const std::string victim = rc.entry_path("pt-b");
  fs::create_directories(fs::path(victim).parent_path());
  fs::copy_file(rc.entry_path("pt-a"), victim);

  std::string payload;
  EXPECT_FALSE(rc.get("pt-b", &payload));
  EXPECT_EQ(rc.stats().quarantined, 1u);
  EXPECT_FALSE(fs::exists(victim));

  const cache::EntryCheck c = cache::check_entry_file(rc.entry_path("pt-a"));
  EXPECT_TRUE(c.ok);
  EXPECT_EQ(c.point_name, "pt-a");
}

TEST(ResultCache, CheckEntryFileDiagnosesGarbageAndMisfiles) {
  const std::string dir = tmp_dir("checkfile");
  cache::ResultCache rc(quick_cfg(dir));
  rc.put("pt", "p");

  cache::EntryCheck ok = cache::check_entry_file(rc.entry_path("pt"));
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.point_name, "pt");
  EXPECT_GT(ok.bytes, 0u);

  const std::string garbage = dir + "/objects/zz/0123456789abcdef.entry";
  fs::create_directories(dir + "/objects/zz");
  spew(garbage, "this is not a cache entry");
  cache::EntryCheck bad = cache::check_entry_file(garbage);
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("magic"), std::string::npos);

  // Valid frame, wrong filename: stem/key cross-check must fire.
  const std::string moved = fs::path(rc.entry_path("pt")).parent_path().string() +
                            "/00000000deadbeef.entry";
  fs::copy_file(rc.entry_path("pt"), moved);
  cache::EntryCheck misfiled = cache::check_entry_file(moved);
  EXPECT_FALSE(misfiled.ok);
  EXPECT_NE(misfiled.error.find("misfiled"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Crash protocol: stale intents, dead-writer reclamation, live-writer locks.

TEST(ResultCache, StaleIntentReclaimedOnNextPut) {
  const std::string dir = tmp_dir("intent");
  cache::ResultCache rc(quick_cfg(dir));

  // Simulate a writer SIGKILLed mid-commit: intent written, tmp abandoned,
  // no entry. The flock died with the writer, so the next put reclaims.
  const std::string entry = rc.entry_path("pt");
  const std::string shard = fs::path(entry).parent_path().string();
  fs::create_directories(shard);
  spew(rc.intent_path("pt"), "999999 " + entry + "\n");
  const std::string orphan =
      shard + "/" + fs::path(entry).filename().string() + ".tmp.999999.0";
  spew(orphan, "half-written bytes");

  rc.put("pt", "fresh-payload");
  EXPECT_EQ(rc.stats().stale_reclaimed, 1u);
  EXPECT_EQ(rc.stats().stores, 1u);
  EXPECT_FALSE(fs::exists(rc.intent_path("pt")));
  EXPECT_FALSE(fs::exists(orphan)) << "abandoned tmp still in the shard";
  EXPECT_FALSE(cache::scan_cache(dir).quarantined.empty());

  std::string payload;
  ASSERT_TRUE(rc.get("pt", &payload));
  EXPECT_EQ(payload, "fresh-payload");
}

TEST(ResultCache, LiveWriterLockTimesOutToSkippedStore) {
  const std::string dir = tmp_dir("locked");
  cache::ResultCacheConfig cc = quick_cfg(dir);
  cc.lock_timeout_seconds = 0.05;
  cc.backoff.base_seconds = 0.01;
  cache::ResultCache rc(cc);

  const std::string lock = rc.lock_path("pt");
  fs::create_directories(fs::path(lock).parent_path());
  const int fd = ::open(lock.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::flock(fd, LOCK_EX | LOCK_NB), 0);  // pose as a live writer

  rc.put("pt", "payload");
  EXPECT_EQ(rc.stats().lock_timeouts, 1u);
  EXPECT_EQ(rc.stats().stores, 0u);
  EXPECT_FALSE(fs::exists(rc.entry_path("pt")));

  ::close(fd);  // releases the flock
  rc.put("pt", "payload");
  EXPECT_EQ(rc.stats().stores, 1u);
}

// ---------------------------------------------------------------------------
// Degraded mode under injected filesystem faults: every failure is a miss or
// a skipped store, never an exception out of get/put.

TEST(ResultCache, EnospcOnStoreDegradesThenHeals) {
  const std::string dir = tmp_dir("enospc");
  ScriptedFaults faults;
  faults.fail_name = "write";
  faults.fail_errno = ENOSPC;
  faults.fail_count = -1;  // disk stays full

  cache::ResultCache sick(quick_cfg(dir), &faults);
  sick.put("pt", "payload");
  EXPECT_EQ(sick.stats().store_errors, 1u);
  EXPECT_EQ(sick.stats().stores, 0u);
  EXPECT_FALSE(fs::exists(sick.entry_path("pt")));
  EXPECT_FALSE(fs::exists(sick.intent_path("pt"))) << "failed store left a decoy intent";

  cache::ResultCache healthy(quick_cfg(dir));  // space came back
  healthy.put("pt", "payload");
  std::string payload;
  ASSERT_TRUE(healthy.get("pt", &payload));
  EXPECT_EQ(payload, "payload");
}

TEST(ResultCache, TransientEioOnReadRetriesWithinBoundThenHits) {
  const std::string dir = tmp_dir("eio_read");
  cache::ResultCache writer(quick_cfg(dir));
  writer.put("pt", "payload");

  ScriptedFaults faults;
  faults.fail_name = "open";
  faults.fail_errno = EIO;
  faults.fail_count = 2;  // two transient failures, then clean
  cache::ResultCache reader(quick_cfg(dir), &faults);

  std::string payload;
  ASSERT_TRUE(reader.get("pt", &payload));
  EXPECT_EQ(payload, "payload");
  EXPECT_EQ(reader.stats().read_errors, 2u);

  // A persistent failure exhausts the bounded retries and degrades to a miss.
  faults.fail_count = -1;
  EXPECT_FALSE(reader.get("pt", &payload));
  EXPECT_EQ(reader.stats().misses, 1u);
}

TEST(ResultCache, ShortWritesStillCommitCompleteEntries) {
  const std::string dir = tmp_dir("shortwrite");
  ScriptedFaults faults;
  faults.clamp = 3;  // every write(2) lands at most 3 bytes
  cache::ResultCache rc(quick_cfg(dir), &faults);
  const std::string payload_in(300, 'x');
  rc.put("pt", payload_in);
  EXPECT_EQ(rc.stats().stores, 1u);

  cache::ResultCache reader(quick_cfg(dir));
  std::string payload;
  ASSERT_TRUE(reader.get("pt", &payload));
  EXPECT_EQ(payload, payload_in);
}

TEST(ResultCache, SeededBitflipInjectorForcesQuarantine) {
  const std::string dir = tmp_dir("flip_inject");
  cache::ResultCache writer(quick_cfg(dir));
  writer.put("pt", "payload");

  mc::FsFaultConfig fc;
  fc.enabled = true;
  fc.seed = 7;
  fc.bitflip_prob = 1.0;
  mc::FsFaultInjector inject(fc);
  cache::ResultCache reader(quick_cfg(dir), &inject);

  std::string payload;
  EXPECT_FALSE(reader.get("pt", &payload));
  EXPECT_EQ(reader.stats().quarantined, 1u);
  EXPECT_GE(inject.stats().bitflips, 1u);
}

// ---------------------------------------------------------------------------
// Offline repair: scan / fsck / gc.

TEST(CacheMaintenance, FsckQuarantinesCorruptionAndReclaimsDeadWriters) {
  const std::string dir = tmp_dir("fsck");
  cache::ResultCache rc(quick_cfg(dir));
  rc.put("good", "payload");

  const std::string shard = dir + "/objects/ab";
  fs::create_directories(shard);
  spew(shard + "/ab00000000000000.entry", "garbage, not a frame");
  spew(shard + "/ab00000000000000.entry.tmp.4242.0", "half a commit");
  spew(dir + "/intents/ab00000000000000.intent", "4242 dead\n");

  const cache::CacheScan before = cache::scan_cache(dir);
  EXPECT_EQ(before.entries.size(), 2u);
  EXPECT_EQ(before.corrupt, 1u);
  EXPECT_EQ(before.tmp_orphans.size(), 1u);
  EXPECT_EQ(before.intents.size(), 1u);

  // No writer holds ab00000000000000.lock, so everything is reclaimable
  // regardless of age.
  const cache::FsckResult r = cache::fsck_cache(dir, /*lease_seconds=*/300.0);
  EXPECT_EQ(r.entries_quarantined, 1u);
  EXPECT_EQ(r.tmp_quarantined, 1u);
  EXPECT_EQ(r.intents_removed, 1u);

  const cache::CacheScan after = cache::scan_cache(dir);
  EXPECT_EQ(after.entries.size(), 1u);
  EXPECT_EQ(after.corrupt, 0u);
  EXPECT_TRUE(after.tmp_orphans.empty());
  EXPECT_TRUE(after.intents.empty());
  EXPECT_EQ(after.quarantined.size(), 2u);

  std::string payload;
  ASSERT_TRUE(rc.get("good", &payload));  // repair never touches valid entries
}

TEST(CacheMaintenance, FsckSparesALiveWriterWithinItsLease) {
  const std::string dir = tmp_dir("fsck_live");
  cache::ResultCache rc(quick_cfg(dir));

  const std::string shard = dir + "/objects/cd";
  fs::create_directories(shard);
  fs::create_directories(dir + "/intents");
  spew(shard + "/cd00000000000000.entry.tmp.1.0", "in flight");
  spew(dir + "/intents/cd00000000000000.intent", "live\n");

  const int fd =
      ::open((shard + "/cd00000000000000.lock").c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::flock(fd, LOCK_EX | LOCK_NB), 0);  // the writer is alive

  const cache::FsckResult held = cache::fsck_cache(dir, /*lease_seconds=*/300.0);
  EXPECT_EQ(held.tmp_quarantined, 0u);
  EXPECT_EQ(held.intents_removed, 0u);

  // A wedged writer forfeits after the lease even while holding the lock.
  const cache::FsckResult expired = cache::fsck_cache(dir, /*lease_seconds=*/-1.0);
  EXPECT_EQ(expired.tmp_quarantined, 1u);
  EXPECT_EQ(expired.intents_removed, 1u);
  ::close(fd);
}

TEST(CacheMaintenance, GcRemovesOnlyEntriesPastMaxAge) {
  const std::string dir = tmp_dir("gc");
  cache::ResultCache rc(quick_cfg(dir));
  rc.put("a", "1");
  rc.put("b", "2");
  spew(dir + "/quarantine/old.entry.1.0", "parked");

  EXPECT_EQ(cache::gc_cache(dir, /*max_age_seconds=*/3600.0), 0u);
  EXPECT_EQ(cache::scan_cache(dir).entries.size(), 2u);

  EXPECT_EQ(cache::gc_cache(dir, /*max_age_seconds=*/-1.0), 3u);
  const cache::CacheScan after = cache::scan_cache(dir);
  EXPECT_TRUE(after.entries.empty());
  EXPECT_TRUE(after.quarantined.empty());
}

// ---------------------------------------------------------------------------
// FsFaultConfig parsing (the MEMSCHED_CACHE_FSFAULT surface) and injector
// determinism.

TEST(FsFaultConfig, ParsesSpecStringsAndRejectsBadOnes) {
  const mc::FsFaultConfig off = mc::FsFaultConfig::parse(nullptr);
  EXPECT_FALSE(off.enabled);
  EXPECT_FALSE(mc::FsFaultConfig::parse("").enabled);

  const mc::FsFaultConfig c =
      mc::FsFaultConfig::parse("seed=7,short_write=0.5,enospc=0.25,eio=0.1,bitflip=1");
  EXPECT_TRUE(c.enabled);
  EXPECT_EQ(c.seed, 7u);
  EXPECT_DOUBLE_EQ(c.short_write_prob, 0.5);
  EXPECT_DOUBLE_EQ(c.enospc_prob, 0.25);
  EXPECT_DOUBLE_EQ(c.eio_prob, 0.1);
  EXPECT_DOUBLE_EQ(c.bitflip_prob, 1.0);

  EXPECT_THROW((void)mc::FsFaultConfig::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW((void)mc::FsFaultConfig::parse("enospc=2.0"), std::invalid_argument);
  EXPECT_THROW((void)mc::FsFaultConfig::parse("eio=notanumber"), std::invalid_argument);
  EXPECT_THROW((void)mc::FsFaultConfig::parse("seed"), std::invalid_argument);
}

TEST(FsFaultInjector, SameSeedSameDecisionSequence) {
  mc::FsFaultConfig fc;
  fc.enabled = true;
  fc.seed = 99;
  fc.short_write_prob = 0.5;
  fc.enospc_prob = 0.3;
  fc.eio_prob = 0.3;
  fc.bitflip_prob = 0.5;

  const auto run = [&fc] {
    mc::FsFaultInjector inj(fc);
    std::ostringstream log;
    std::uint8_t image[16] = {0};
    for (int i = 0; i < 64; ++i) {
      log << inj.clamp_write(4096) << '/' << inj.fail_op("write") << '/'
          << inj.fail_op("open") << '/';
      inj.corrupt_read(image, sizeof image);
    }
    for (unsigned char b : image) log << static_cast<int>(b) << ',';
    return log.str();
  };
  EXPECT_EQ(run(), run());

  fc.seed = 100;
  mc::FsFaultInjector other(fc);
  std::ostringstream log;
  for (int i = 0; i < 64; ++i) log << other.clamp_write(4096) << '/';
  // Different seed, different decisions (probabilistically certain).
  EXPECT_NE(run().substr(0, log.str().size()), log.str());
}

TEST(FsFaultInjector, ShortWritesAlwaysMakeProgress) {
  mc::FsFaultConfig fc;
  fc.enabled = true;
  fc.seed = 3;
  fc.short_write_prob = 1.0;
  mc::FsFaultInjector inj(fc);
  for (int i = 0; i < 256; ++i) {
    const std::size_t n = inj.clamp_write(2);
    EXPECT_GE(n, 1u);
    EXPECT_LE(n, 2u);
  }
  EXPECT_EQ(inj.clamp_write(1), 1u);  // nothing to shorten
}

// ---------------------------------------------------------------------------
// Retry backoff: the one schedule every harness retry loop shares. Pure
// function of (base, cap, attempt) — exercised here under fake time.

TEST(Backoff, ExponentialScheduleIsDeterministicAndCapped) {
  const util::Backoff b{0.5, 60.0};
  EXPECT_DOUBLE_EQ(b.delay_seconds(1), 0.5);
  EXPECT_DOUBLE_EQ(b.delay_seconds(2), 1.0);
  EXPECT_DOUBLE_EQ(b.delay_seconds(3), 2.0);
  EXPECT_DOUBLE_EQ(b.delay_seconds(7), 32.0);
  EXPECT_DOUBLE_EQ(b.delay_seconds(8), 60.0);   // 64 would overshoot the cap
  EXPECT_DOUBLE_EQ(b.delay_seconds(200), 60.0); // stays capped forever

  const util::Backoff disabled{0.0, 60.0};
  for (std::uint32_t a = 0; a < 10; ++a) EXPECT_DOUBLE_EQ(disabled.delay_seconds(a), 0.0);
}

TEST(Backoff, ReadyAtAdvancesFakeTimeWithoutSleeping) {
  const util::Backoff b{0.25, 60.0};
  const util::MonotonicTime epoch{};  // fake clock: no host-time read at all
  EXPECT_DOUBLE_EQ(util::seconds_between(epoch, b.ready_at(epoch, 1)), 0.25);
  EXPECT_DOUBLE_EQ(util::seconds_between(epoch, b.ready_at(epoch, 3)), 1.0);
  // Deterministic in `now`: shifting the failure instant shifts the deadline
  // by exactly the same amount.
  const util::MonotonicTime later = epoch + util::seconds_to_duration(5.0);
  EXPECT_DOUBLE_EQ(util::seconds_between(b.ready_at(epoch, 2), b.ready_at(later, 2)),
                   5.0);
}

// ---------------------------------------------------------------------------
// atomic_file error surfacing: which op failed, with which errno — the
// classification the cache's degraded modes are built on.

TEST(AtomicFile, ErrorsCarryFailingOpAndErrno) {
  const std::string dir = tmp_dir("atomic_err");
  fs::create_directories(dir);
  const std::string target = dir + "/file.bin";
  spew(target, "previous contents");

  const struct {
    const char* op_name;
    int err;
    util::FileOp op;
  } cases[] = {
      {"open", EACCES, util::FileOp::kOpen},
      {"write", ENOSPC, util::FileOp::kWrite},
      {"fsync", ENOSPC, util::FileOp::kFsync},
      {"close", EIO, util::FileOp::kClose},
      {"rename", EIO, util::FileOp::kRename},
  };
  for (const auto& c : cases) {
    ScriptedFaults faults;
    faults.fail_name = c.op_name;
    faults.fail_errno = c.err;
    faults.fail_count = 1;
    util::ScopedFsFaults armed(&faults);
    try {
      util::atomic_write_file(target, "new contents");
      FAIL() << "no throw for failing op " << c.op_name;
    } catch (const util::AtomicFileError& e) {
      EXPECT_EQ(e.op(), c.op) << c.op_name;
      EXPECT_EQ(e.errno_value(), c.err) << c.op_name;
      EXPECT_NE(std::string(e.what()).find(c.op_name), std::string::npos)
          << "message must name the op: " << e.what();
    }
    // Failure is atomic too: target untouched, no tmp litter.
    EXPECT_EQ(slurp(target), "previous contents") << c.op_name;
    std::size_t tmp_files = 0;
    for (const auto& de : fs::directory_iterator(dir)) {
      if (de.path().filename().string().find(".tmp.") != std::string::npos) ++tmp_files;
    }
    EXPECT_EQ(tmp_files, 0u) << c.op_name;
  }

  util::atomic_write_file(target, "new contents");  // faults gone: succeeds
  EXPECT_EQ(slurp(target), "new contents");
}

TEST(AtomicFile, FsyncAndCloseFailuresAreDistinct) {
  // The regression this pins: collapsing fsync/close failures into one
  // generic error loses the "durability lost" vs "writeback failed"
  // distinction the cache diagnostics rely on.
  EXPECT_STREQ(util::file_op_name(util::FileOp::kFsync), "fsync");
  EXPECT_STREQ(util::file_op_name(util::FileOp::kClose), "close");
  EXPECT_STREQ(util::file_op_name(util::FileOp::kOpen), "open");
  EXPECT_STREQ(util::file_op_name(util::FileOp::kWrite), "write");
  EXPECT_STREQ(util::file_op_name(util::FileOp::kRename), "rename");
}

TEST(AtomicFile, ShortWriteClampLoopsToCompletion) {
  const std::string dir = tmp_dir("atomic_short");
  fs::create_directories(dir);
  ScriptedFaults faults;
  faults.clamp = 5;
  util::ScopedFsFaults armed(&faults);
  const std::string big(4096, 'q');
  util::atomic_write_file(dir + "/big.bin", big);
  EXPECT_EQ(slurp(dir + "/big.bin"), big);
}

// ---------------------------------------------------------------------------
// Orchestrator integration: the byte-parity contract (warm == cold at any
// pool width) and never-fail degradation.

namespace {

harness::PointSpec body_point(const std::string& name, double value) {
  harness::PointSpec p;
  p.name = name;
  p.body = [value] {
    util::Json j = util::Json::object();
    j["value"] = value;
    return j;
  };
  return p;
}

std::vector<harness::PointSpec> four_points() {
  return {body_point("pt-0", 0.5), body_point("pt-1", 1.5), body_point("pt-2", 2.5),
          body_point("pt-3", 3.5)};
}

harness::OrchestratorConfig sweep_cfg(const std::string& tag, const std::string& cache) {
  harness::OrchestratorConfig oc;
  oc.work_dir = tmp_dir("work_" + tag);
  oc.manifest_path = tmp_dir("m_" + tag) + ".manifest";
  std::remove(oc.manifest_path.c_str());  // tmp_dir only clears the dir path
  std::remove((oc.manifest_path + ".timing.json").c_str());
  oc.fingerprint = "cache-parity-sweep";
  oc.cache_dir = cache;
  oc.verbose = false;
  oc.timeout_seconds = 60.0;
  return oc;
}

}  // namespace

TEST(OrchestratorCache, WarmRunsAreByteIdenticalToColdAtAnyWidth) {
  const std::string cache = tmp_dir("parity_store");

  harness::OrchestratorConfig cold_cfg = sweep_cfg("cold", cache);
  harness::Orchestrator cold(cold_cfg);
  const harness::SweepSummary s0 = cold.run(four_points());
  EXPECT_TRUE(s0.complete());
  EXPECT_EQ(s0.cache_hits, 0u);
  ASSERT_NE(cold.result_cache(), nullptr);
  EXPECT_EQ(cold.result_cache()->stats().stores, 4u);
  const std::string cold_manifest = slurp(cold_cfg.manifest_path);
  const std::string cold_report = cold.report().dump(2);

  harness::OrchestratorConfig warm1_cfg = sweep_cfg("warm1", cache);
  harness::Orchestrator warm1(warm1_cfg);
  const harness::SweepSummary s1 = warm1.run(four_points());
  EXPECT_TRUE(s1.complete());
  EXPECT_EQ(s1.cache_hits, 4u);
  EXPECT_EQ(s1.executed, 0u) << "warm run must not fork workers";

  harness::OrchestratorConfig warm4_cfg = sweep_cfg("warm4", cache);
  warm4_cfg.jobs = 4;
  harness::Orchestrator warm4(warm4_cfg);
  const harness::SweepSummary s4 = warm4.run(four_points());
  EXPECT_TRUE(s4.complete());
  EXPECT_EQ(s4.cache_hits, 4u);

  EXPECT_EQ(slurp(warm1_cfg.manifest_path), cold_manifest);
  EXPECT_EQ(slurp(warm4_cfg.manifest_path), cold_manifest);
  EXPECT_EQ(warm1.report().dump(2), cold_report);
  EXPECT_EQ(warm4.report().dump(2), cold_report);
}

TEST(OrchestratorCache, ManifestResumeTakesPrecedenceOverCache) {
  const std::string cache = tmp_dir("resume_store");
  harness::OrchestratorConfig cfg = sweep_cfg("resume", cache);
  harness::Orchestrator first(cfg);
  EXPECT_TRUE(first.run(four_points()).complete());

  // Same manifest still on disk: records replay as `resumed`, not as cache
  // hits — the cache only fills the gap when the manifest is gone.
  harness::Orchestrator again(cfg);
  const harness::SweepSummary s = again.run(four_points());
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.resumed, 4u);
  EXPECT_EQ(s.cache_hits, 0u);
}

TEST(OrchestratorCache, ExecPointsAreNeverCached) {
  const std::string cache = tmp_dir("exec_store");
  harness::PointSpec p;
  p.name = "exec-pt";
  p.argv = {"/bin/sh", "-c", "exit 0"};

  harness::OrchestratorConfig cfg = sweep_cfg("exec", cache);
  harness::Orchestrator orch(cfg);
  EXPECT_EQ(orch.run({p}).ok, 1u);
  ASSERT_NE(orch.result_cache(), nullptr);
  EXPECT_EQ(orch.result_cache()->stats().stores, 0u);

  harness::OrchestratorConfig warm_cfg = sweep_cfg("exec_warm", cache);
  harness::Orchestrator warm(warm_cfg);
  const harness::SweepSummary s = warm.run({p});
  EXPECT_EQ(s.ok, 1u);
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.executed, 1u);  // really re-ran the command
}

TEST(OrchestratorCache, FaultedCacheDegradesToColdSweepNotFailure) {
  const std::string cache = tmp_dir("degraded_store");
  ScriptedFaults faults;
  faults.fail_name = "write";
  faults.fail_errno = ENOSPC;
  faults.fail_count = -1;

  harness::OrchestratorConfig cfg = sweep_cfg("degraded", cache);
  cfg.cache_faults = &faults;
  harness::Orchestrator orch(cfg);
  const harness::SweepSummary s = orch.run(four_points());
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.ok, 4u);
  EXPECT_EQ(s.cache_hits, 0u);
  ASSERT_NE(orch.result_cache(), nullptr);
  EXPECT_EQ(orch.result_cache()->stats().stores, 0u);
  EXPECT_EQ(orch.result_cache()->stats().store_errors, 4u);

  // The manifest writer was outside the blast radius: the sweep checkpointed
  // normally and resumes cleanly.
  harness::Orchestrator resume(cfg);
  const harness::SweepSummary s2 = resume.run(four_points());
  EXPECT_EQ(s2.resumed, 4u);
}
