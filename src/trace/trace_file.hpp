// Trace file I/O — replaying user-supplied traces instead of the synthetic
// generators.
//
// Binary format (little-endian):
//   magic "MST1" | u64 record count | records...
//   record: u8 flags | u64 addr (memory records only)
//     flags bit 0-1: InstClass (0 compute, 1 load, 2 store)
//     flags bit 7:   dep_on_prev
//
// Text format: one record per line —
//   "C"           compute
//   "L <hexaddr>" load          "D <hexaddr>" dependent load
//   "S <hexaddr>" store
// '#' starts a comment; blank lines are skipped.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/inst_stream.hpp"

namespace memsched::trace {

/// Throws std::runtime_error on I/O or format errors.
void write_binary_trace(const std::string& path, const std::vector<InstRecord>& records);
std::vector<InstRecord> read_binary_trace(const std::string& path);

void write_text_trace(const std::string& path, const std::vector<InstRecord>& records);
std::vector<InstRecord> read_text_trace(const std::string& path);

/// Replays a fixed record sequence, wrapping around at the end (streams are
/// infinite by contract). reset() restarts from the beginning.
class ReplayStream final : public InstStream {
 public:
  explicit ReplayStream(std::vector<InstRecord> records);

  InstRecord next() override;
  void reset(std::uint64_t seed) override;

  [[nodiscard]] std::size_t length() const { return records_.size(); }
  [[nodiscard]] std::uint64_t wraps() const { return wraps_; }

  // --- checkpoint/restore (replay cursor) ---
  void save_state(ckpt::Writer& w) const override;
  void load_state(ckpt::Reader& r) override;

 private:
  std::vector<InstRecord> records_;
  std::size_t pos_ = 0;
  std::uint64_t wraps_ = 0;
};

}  // namespace memsched::trace
