#include "trace/inst_stream.hpp"

#include "ckpt/snapshot.hpp"

namespace memsched::trace {

void InstStream::save_state(ckpt::Writer& /*w*/) const {
  throw ckpt::SnapshotError("snapshot: this instruction stream type does not "
                            "support checkpointing");
}

void InstStream::load_state(ckpt::Reader& /*r*/) {
  throw ckpt::SnapshotError("snapshot: this instruction stream type does not "
                            "support checkpointing");
}

}  // namespace memsched::trace
