// Instruction-stream abstraction consumed by the core performance model.
//
// A stream yields one InstRecord per dynamic instruction. Streams are
// infinite: the run-length protocol ("run until the last core commits N
// instructions; early finishers reload and keep running", §4.1) is handled
// by the simulation kernel, which simply keeps pulling.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace memsched::ckpt {
class Writer;
class Reader;
}  // namespace memsched::ckpt

namespace memsched::trace {

enum class InstClass : std::uint8_t {
  kCompute = 0,  ///< non-memory instruction
  kLoad = 1,
  kStore = 2,
};

struct InstRecord {
  InstClass cls = InstClass::kCompute;
  Addr addr = 0;            ///< effective address for loads/stores
  bool dep_on_prev = false; ///< load depends on the previous load (pointer chase)
};

class InstStream {
 public:
  virtual ~InstStream() = default;

  /// Next dynamic instruction.
  virtual InstRecord next() = 0;

  /// Batched form for the functional fast-forward: advance up to
  /// `max_insts` instructions, stopping at (and consuming) the first memory
  /// reference, which is written to `rec`. Returns the instruction count
  /// consumed, including the reference. If no reference occurs, all
  /// `max_insts` are consumed and `rec.cls` is kCompute. The default loops
  /// next(); implementations may override to skip compute runs without a
  /// virtual call per instruction, but must consume the same stream state
  /// (RNG draws, cursors) as the equivalent next() sequence.
  virtual std::uint64_t next_ref(std::uint64_t max_insts, InstRecord& rec) {
    for (std::uint64_t i = 1; i <= max_insts; ++i) {
      rec = next();
      if (rec.cls != InstClass::kCompute) return i;
    }
    rec = InstRecord{};
    return max_insts;
  }

  /// Restart the stream with a new slice seed (SimPoint-slice stand-in:
  /// different seeds model different program slices).
  virtual void reset(std::uint64_t seed) = 0;

  /// Size of the instruction footprint in bytes (for I-fetch modeling);
  /// 0 disables I-fetch modeling for this stream.
  [[nodiscard]] virtual std::uint64_t code_bytes() const { return 0; }

  /// Base address of the code region.
  [[nodiscard]] virtual Addr code_base() const { return 0; }

  /// Checkpoint/restore of the stream's position. The defaults throw
  /// ckpt::SnapshotError: a stream type must opt in explicitly, because a
  /// silently-unsaved stream would desynchronize a resumed run.
  virtual void save_state(ckpt::Writer& w) const;
  virtual void load_state(ckpt::Reader& r);
};

}  // namespace memsched::trace
