// Synthetic application model parameters.
//
// SPEC CPU2000 binaries and reference inputs are not redistributable and
// full-program simulation is out of scope, so each of the paper's 26
// applications is modeled by a parameterised synthetic stream (DESIGN.md §1
// documents the substitution). The parameters control exactly the stream
// properties the memory schedulers react to:
//
//   * ilp_ipc            — issue rate when no memory stall is pending;
//   * mem_ref_per_kinst  — L1D accesses per 1000 instructions;
//   * fresh_lines_per_kinst — new 64 B lines touched per 1000 instructions.
//     With a streamed footprint far larger than the L2 these become L2
//     misses, so this parameter *is* the L2 read MPKI, and together with
//     dirty_fresh_share it pins the app's memory efficiency:
//     ME ≈ 4.883 / (fresh * (1 + dirty_share)) for a 3.2 GHz core and 64 B
//     lines (see DESIGN.md) — values are tuned to the paper's Table 2;
//   * stream phases — the app alternates between *streaming phases* (every
//     memory reference walks one of stream_count concurrent sequential
//     streams, refs_per_line references per 64 B line, burst_lines lines per
//     stream per phase) and quiet gaps over the hot set. Phases sustain
//     MSHR-limited memory-level parallelism and give consecutive lines the
//     spatial locality the Hit-First schemes exploit;
//   * dep_chain_frac     — fraction of miss loads that depend on the
//     previous load (pointer chasing limits MLP, mcf-style);
//   * hot_bytes          — cache-resident working set serving non-miss refs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace memsched::trace {

struct AppProfile {
  std::string name;
  char code = '?';               ///< Table 2 single-letter code
  bool memory_intensive = false; ///< Table 2 class (M vs I)
  double table_me = 0.0;         ///< Table 2 memory-efficiency value

  double ilp_ipc = 2.0;
  double mem_ref_per_kinst = 350.0;
  double store_share = 0.30;          ///< of hot (cache-resident) refs
  double fresh_lines_per_kinst = 0.1; ///< streamed (miss-inducing) line rate
  double dirty_fresh_share = 0.30;    ///< fraction of fresh lines dirtied
  double burst_lines = 8.0;           ///< consecutive lines per stream per phase
  double dep_chain_frac = 0.0;
  std::uint32_t stream_count = 4;     ///< concurrent sequential streams
  std::uint32_t refs_per_line = 8;    ///< within-line references while streaming
                                      ///< (8 = 8-byte-stride FP array walk)
  std::uint64_t hot_bytes = 32 * 1024;
  std::uint64_t footprint_bytes = 64ull << 20;
  std::uint64_t code_bytes = 16 * 1024;

  /// Analytic ME estimate for a 3.2 GHz core with 64 B lines (DESIGN.md);
  /// equals table_me / kTable2MeScale for every catalog entry, i.e. the
  /// catalog preserves Table 2's ME ratios exactly (schedulers only consume
  /// ME relatively) while scaling absolute traffic to realistic levels.
  [[nodiscard]] double predicted_me() const {
    const double mpki_total = fresh_lines_per_kinst * (1.0 + dirty_fresh_share);
    return 4.8828125 / mpki_total;  // 1000 / (3.2 * 64)
  }
};

/// Uniform factor between Table 2 ME values and the catalog's analytic ME
/// (see spec2000.cpp for the rationale).
inline constexpr double kTable2MeScale = 12.0;

/// The 26-application SPEC2000 catalog tuned to the paper's Table 2.
const std::vector<AppProfile>& spec2000_profiles();

/// Lookup by name; throws std::invalid_argument if unknown.
const AppProfile& spec2000_by_name(const std::string& name);

/// Lookup by Table 2 single-letter code; throws if unknown.
const AppProfile& spec2000_by_code(char code);

}  // namespace memsched::trace
