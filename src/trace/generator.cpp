#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>

#include "ckpt/snapshot.hpp"
#include "util/assert.hpp"

namespace memsched::trace {

SyntheticStream::SyntheticStream(const AppProfile& profile, Addr base_addr,
                                 std::uint64_t seed)
    : profile_(profile), rng_(seed) {
  MEMSCHED_ASSERT(profile.mem_ref_per_kinst > 0.0, "profile without memory refs");
  MEMSCHED_ASSERT(profile.stream_count > 0, "profile needs at least one stream");
  MEMSCHED_ASSERT(profile.refs_per_line >= 1, "refs_per_line must be >= 1");

  stream_base_ = base_addr;
  hot_base_ = base_addr + profile.footprint_bytes;
  code_base_ = hot_base_ + profile.hot_bytes;
  footprint_lines_ = std::max<std::uint64_t>(profile.footprint_bytes / kLineBytes, 1);
  hot_lines_ = std::max<std::uint64_t>(profile.hot_bytes / kLineBytes, 1);

  p_ref_ = profile.mem_ref_per_kinst / 1000.0;

  // Long-run accounting: a phase of L = stream_count * burst_lines lines
  // takes R = L * refs_per_line references; the fresh-line rate per
  // reference must equal fresh_lines_per_kinst / mem_ref_per_kinst, so the
  // mean gap G satisfies L / (R + G) = rate, i.e. G = L/rate - R.
  const double rate = profile.fresh_lines_per_kinst / profile.mem_ref_per_kinst;
  const double phase_lines =
      std::max(1.0, static_cast<double>(profile.stream_count) * profile.burst_lines);
  const double phase_refs = phase_lines * profile.refs_per_line;
  if (rate <= 0.0) {
    mean_gap_refs_ = -1.0;  // never stream
  } else {
    mean_gap_refs_ = std::max(0.0, phase_lines / rate - phase_refs);
    MEMSCHED_ASSERT(phase_lines / rate > phase_refs * 0.5,
                    "profile streams denser than its reference rate allows");
  }

  reset(seed);
}

void SyntheticStream::reset(std::uint64_t seed) {
  rng_ = util::Xoshiro256(seed ^ 0x5eed5eedULL);
  in_phase_ = false;
  phase_lines_remaining_ = 0;
  line_refs_remaining_ = 0;
  rotor_ = 0;
  line_dirty_pending_ = false;
  insts_ = 0;
  fresh_lines_ = 0;
  stream_pos_.assign(profile_.stream_count, 0);
  // Scatter the stream cursors across the footprint so different slices
  // (seeds) touch different regions; stagger the first gap so co-scheduled
  // copies of one application do not phase-lock.
  for (auto& pos : stream_pos_) pos = rng_.below(footprint_lines_);
  if (mean_gap_refs_ >= 0.0) {
    gap_refs_remaining_ =
        mean_gap_refs_ > 0.0
            ? rng_.below(static_cast<std::uint64_t>(mean_gap_refs_) + 1)
            : 0;
  } else {
    gap_refs_remaining_ = ~std::uint64_t{0};  // never stream
  }
}

void SyntheticStream::begin_phase() {
  in_phase_ = true;
  // One stream per phase, rotating round-robin: long sequential runs give
  // the in-flight window enough same-row reach for Hit-First to matter,
  // while successive phases (and co-running cores) cover different streams.
  rotor_ = (rotor_ + 1) % profile_.stream_count;
  const double lines =
      static_cast<double>(profile_.stream_count) * profile_.burst_lines;
  // +/- 50% jitter so phases of co-running apps interleave irregularly;
  // rounded (not truncated) so short phases keep the right mean length.
  const double jitter = 0.5 + rng_.uniform();
  phase_lines_remaining_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(lines * jitter)));
  // Occasionally restart a stream somewhere fresh (a new data structure).
  if (rng_.chance(0.125)) {
    stream_pos_[rng_.below(profile_.stream_count)] = rng_.below(footprint_lines_);
  }
}

InstRecord SyntheticStream::stream_ref() {
  if (line_refs_remaining_ == 0) {
    // Next consecutive line of the phase's stream.
    std::uint64_t& pos = stream_pos_[rotor_];
    current_line_ = stream_base_ + pos * kLineBytes;
    pos = (pos + 1) % footprint_lines_;
    ++fresh_lines_;
    line_refs_remaining_ = profile_.refs_per_line;
    line_dirty_pending_ = rng_.chance(profile_.dirty_fresh_share);
    --phase_lines_remaining_;
    if (phase_lines_remaining_ == 0) {
      in_phase_ = false;
      if (mean_gap_refs_ > 0.0) {
        // Geometric-ish gap with the calibrated mean.
        gap_refs_remaining_ = 1 + static_cast<std::uint64_t>(
                                      -std::log(1.0 - rng_.uniform()) * mean_gap_refs_);
      } else {
        gap_refs_remaining_ = 0;
      }
    }

    InstRecord rec;
    rec.addr = current_line_;
    // First touch of the line: the miss-inducing reference. A store-first
    // line models write-allocate streams; loads may carry the pointer-chase
    // dependence.
    if (line_dirty_pending_ && profile_.refs_per_line == 1) {
      rec.cls = InstClass::kStore;
      line_dirty_pending_ = false;
    } else {
      rec.cls = InstClass::kLoad;
      rec.dep_on_prev = rng_.chance(profile_.dep_chain_frac);
    }
    --line_refs_remaining_;
    return rec;
  }

  // Subsequent within-line references (hit under the in-flight fill).
  InstRecord rec;
  const std::uint32_t idx = profile_.refs_per_line - line_refs_remaining_;
  rec.addr = current_line_ + (idx * kLineBytes / profile_.refs_per_line);
  if (line_dirty_pending_ && line_refs_remaining_ == 1) {
    rec.cls = InstClass::kStore;  // dirty the line with its last reference
    line_dirty_pending_ = false;
  } else {
    rec.cls = InstClass::kLoad;
  }
  --line_refs_remaining_;
  return rec;
}

InstRecord SyntheticStream::hot_ref() {
  InstRecord rec;
  rec.addr = hot_base_ + rng_.below(hot_lines_) * kLineBytes +
             (rng_.next() & (kLineBytes - 1));
  rec.cls = rng_.chance(profile_.store_share) ? InstClass::kStore : InstClass::kLoad;
  return rec;
}

InstRecord SyntheticStream::ref_record() {
  if (!in_phase_ && gap_refs_remaining_ == 0 && mean_gap_refs_ >= 0.0) begin_phase();

  if (in_phase_ || line_refs_remaining_ > 0) return stream_ref();

  if (gap_refs_remaining_ != ~std::uint64_t{0}) --gap_refs_remaining_;
  return hot_ref();
}

InstRecord SyntheticStream::next() {
  ++insts_;
  if (!rng_.chance(p_ref_)) return InstRecord{};  // compute instruction
  return ref_record();
}

std::uint64_t SyntheticStream::next_ref(std::uint64_t max_insts, InstRecord& rec) {
  // Identical stream state evolution to max_insts repeated next() calls
  // (one Bernoulli draw per instruction), without the per-instruction
  // virtual dispatch — this is the functional fast-forward's hot loop.
  for (std::uint64_t i = 1; i <= max_insts; ++i) {
    ++insts_;
    if (rng_.chance(p_ref_)) {
      rec = ref_record();
      return i;
    }
  }
  rec = InstRecord{};
  return max_insts;
}

void SyntheticStream::save_state(ckpt::Writer& w) const {
  w.put_rng(rng_);
  w.put_bool(in_phase_);
  w.put_u64(phase_lines_remaining_);
  w.put_u64(gap_refs_remaining_);
  w.put_u32(line_refs_remaining_);
  w.put_u32(rotor_);
  w.put_u64(current_line_);
  w.put_bool(line_dirty_pending_);
  w.put_u64_vec(stream_pos_);
  w.put_u64(insts_);
  w.put_u64(fresh_lines_);
}

void SyntheticStream::load_state(ckpt::Reader& r) {
  r.get_rng(rng_);
  in_phase_ = r.get_bool();
  phase_lines_remaining_ = r.get_u64();
  gap_refs_remaining_ = r.get_u64();
  line_refs_remaining_ = r.get_u32();
  rotor_ = r.get_u32();
  current_line_ = r.get_u64();
  line_dirty_pending_ = r.get_bool();
  const auto pos = r.get_u64_vec();
  if (pos.size() != stream_pos_.size()) {
    throw ckpt::SnapshotError("snapshot: stream cursor count mismatch");
  }
  stream_pos_ = pos;
  insts_ = r.get_u64();
  fresh_lines_ = r.get_u64();
}

}  // namespace memsched::trace
