// Synthetic instruction-stream generator.
//
// Emits an infinite instruction stream realising an AppProfile. The stream
// alternates between two regimes:
//
//   * streaming phases — every memory reference walks one of the profile's
//     stream_count concurrent sequential streams over the large footprint,
//     refs_per_line references per 64 B line (within-line spatial locality),
//     rotating lines round-robin across streams; each stream advances
//     burst_lines consecutive lines per phase. Fresh lines become L2 misses
//     and thus DRAM traffic; the first reference to a line may carry a
//     dependence on the previous miss (dep_chain_frac — pointer chasing),
//     and dirty_fresh_share of lines receive a store.
//   * gaps — references hit the small, cache-resident hot region.
//
// The gap length is drawn so the long-run fresh-line rate matches
// fresh_lines_per_kinst. Deterministic for (profile, base address, seed);
// reset(seed) restarts with a new seed, standing in for a different
// SimPoint slice.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/app_profile.hpp"
#include "trace/inst_stream.hpp"
#include "util/rng.hpp"

namespace memsched::trace {

class SyntheticStream final : public InstStream {
 public:
  /// `base_addr` is the start of this application's private address region;
  /// the generator uses [base, base + footprint + hot + code).
  SyntheticStream(const AppProfile& profile, Addr base_addr, std::uint64_t seed);

  InstRecord next() override;
  std::uint64_t next_ref(std::uint64_t max_insts, InstRecord& rec) override;
  void reset(std::uint64_t seed) override;

  [[nodiscard]] std::uint64_t code_bytes() const override { return profile_.code_bytes; }
  [[nodiscard]] Addr code_base() const override { return code_base_; }

  [[nodiscard]] const AppProfile& profile() const { return profile_; }

  /// Fresh lines emitted so far (for calibration tests).
  [[nodiscard]] std::uint64_t fresh_lines_emitted() const { return fresh_lines_; }
  [[nodiscard]] std::uint64_t insts_emitted() const { return insts_; }

  // --- checkpoint/restore (RNG + phase state; profile/layout are config) ---
  void save_state(ckpt::Writer& w) const override;
  void load_state(ckpt::Reader& r) override;

 private:
  void begin_phase();
  InstRecord ref_record();
  InstRecord stream_ref();
  InstRecord hot_ref();

  AppProfile profile_;
  Addr stream_base_;  ///< streamed footprint region
  Addr hot_base_;     ///< hot region
  Addr code_base_;    ///< code region
  std::uint64_t footprint_lines_;
  std::uint64_t hot_lines_;
  util::Xoshiro256 rng_;

  double p_ref_;          ///< P(instruction is a memory reference)
  double mean_gap_refs_;  ///< mean hot references between phases

  // Phase state.
  bool in_phase_ = false;
  std::uint64_t phase_lines_remaining_ = 0;
  std::uint64_t gap_refs_remaining_ = 0;
  std::uint32_t line_refs_remaining_ = 0;  ///< refs left on the current line
  std::uint32_t rotor_ = 0;                ///< round-robin stream selector
  Addr current_line_ = 0;
  bool line_dirty_pending_ = false;  ///< one of the remaining refs is a store
  std::vector<std::uint64_t> stream_pos_;  ///< line cursor per stream

  std::uint64_t insts_ = 0;
  std::uint64_t fresh_lines_ = 0;
};

}  // namespace memsched::trace
