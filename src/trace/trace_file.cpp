#include "trace/trace_file.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "ckpt/snapshot.hpp"
#include "util/assert.hpp"

namespace memsched::trace {

namespace {

constexpr char kMagic[4] = {'M', 'S', 'T', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_or_throw(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  if (!f) throw std::runtime_error("cannot open trace file: " + path);
  return f;
}

/// Corrupt/truncated input diagnosis: every failure names the file, the byte
/// offset where reading stopped, and what was expected there — enough to
/// inspect the bad spot with xxd instead of guessing.
[[noreturn]] void fail_at(const std::string& path, std::FILE* f,
                          const std::string& reason) {
  const long off = std::ftell(f);
  throw std::runtime_error("corrupt trace '" + path + "' at byte offset " +
                           (off >= 0 ? std::to_string(off) : std::string("?")) + ": " +
                           reason);
}

[[noreturn]] void fail_write(const std::string& path) {
  throw std::runtime_error("trace write failed: " + path);
}

void put_u64(std::FILE* f, std::uint64_t v, const std::string& path) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  if (std::fwrite(buf, 1, 8, f) != 8) fail_write(path);
}

std::uint64_t get_u64(std::FILE* f, const std::string& path, const char* what) {
  unsigned char buf[8];
  const std::size_t got = std::fread(buf, 1, 8, f);
  if (got != 8) {
    fail_at(path, f,
            std::string("truncated ") + what + " (expected 8 bytes, got " +
                std::to_string(got) + ")");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return v;
}

long file_size_of(std::FILE* f) {
  const long pos = std::ftell(f);
  if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0) return -1;
  const long size = std::ftell(f);
  std::fseek(f, pos, SEEK_SET);
  return size;
}

}  // namespace

void write_binary_trace(const std::string& path, const std::vector<InstRecord>& records) {
  FilePtr f = open_or_throw(path, "wb");
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4) fail_write(path);
  put_u64(f.get(), records.size(), path);
  for (const InstRecord& r : records) {
    const auto cls = static_cast<unsigned char>(r.cls);
    const unsigned char flags =
        static_cast<unsigned char>(cls | (r.dep_on_prev ? 0x80 : 0));
    if (std::fputc(flags, f.get()) == EOF) fail_write(path);
    if (r.cls != InstClass::kCompute) put_u64(f.get(), r.addr, path);
  }
}

std::vector<InstRecord> read_binary_trace(const std::string& path) {
  FilePtr f = open_or_throw(path, "rb");
  char magic[4];
  const std::size_t got = std::fread(magic, 1, 4, f.get());
  if (got != 4 || std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("not a memsched binary trace (bad magic): " + path);
  const std::uint64_t count = get_u64(f.get(), path, "record count header");
  // Sanity-check the header against the file size before trusting it with a
  // reserve(): each record is at least 1 byte, so a count beyond the
  // remaining bytes means a corrupt or truncated header, not a huge trace.
  if (const long size = file_size_of(f.get());
      size >= 0 && count > static_cast<std::uint64_t>(size)) {
    fail_at(path, f.get(),
            "record count header claims " + std::to_string(count) +
                " records but the file holds only " + std::to_string(size) + " bytes");
  }
  std::vector<InstRecord> records;
  records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const int flags = std::fgetc(f.get());
    if (flags == EOF) {
      fail_at(path, f.get(),
              "truncated at record " + std::to_string(i) + " of " +
                  std::to_string(count));
    }
    InstRecord r;
    const int cls = flags & 0x3;
    if (cls > 2) {
      fail_at(path, f.get(),
              "record " + std::to_string(i) + " has invalid class bits " +
                  std::to_string(cls));
    }
    r.cls = static_cast<InstClass>(cls);
    r.dep_on_prev = (flags & 0x80) != 0;
    if (r.cls != InstClass::kCompute)
      r.addr = get_u64(f.get(), path, "record address");
    records.push_back(r);
  }
  return records;
}

void write_text_trace(const std::string& path, const std::vector<InstRecord>& records) {
  FilePtr f = open_or_throw(path, "w");
  for (const InstRecord& r : records) {
    switch (r.cls) {
      case InstClass::kCompute:
        std::fprintf(f.get(), "C\n");
        break;
      case InstClass::kLoad:
        std::fprintf(f.get(), "%c %llx\n", r.dep_on_prev ? 'D' : 'L',
                     static_cast<unsigned long long>(r.addr));
        break;
      case InstClass::kStore:
        std::fprintf(f.get(), "S %llx\n", static_cast<unsigned long long>(r.addr));
        break;
    }
  }
  if (std::ferror(f.get())) fail_write(path);
}

std::vector<InstRecord> read_text_trace(const std::string& path) {
  FilePtr f = open_or_throw(path, "r");
  std::vector<InstRecord> records;
  char line[256];
  std::size_t lineno = 0;
  const auto fail_line = [&](const std::string& reason) {
    throw std::runtime_error("corrupt trace '" + path + "' at line " +
                             std::to_string(lineno) + ": " + reason);
  };
  while (std::fgets(line, sizeof line, f.get())) {
    ++lineno;
    char op = 0;
    unsigned long long addr = 0;
    const int n = std::sscanf(line, " %c %llx", &op, &addr);
    if (n < 1 || op == '#') continue;  // blank or comment
    InstRecord r;
    switch (op) {
      case 'C':
        break;
      case 'L':
      case 'D':
        if (n != 2) fail_line("load needs an address");
        r.cls = InstClass::kLoad;
        r.addr = addr;
        r.dep_on_prev = (op == 'D');
        break;
      case 'S':
        if (n != 2) fail_line("store needs an address");
        r.cls = InstClass::kStore;
        r.addr = addr;
        break;
      default:
        fail_line(std::string("unknown op '") + op + "'");
    }
    records.push_back(r);
  }
  if (std::ferror(f.get()))
    throw std::runtime_error("read error on trace '" + path + "' after line " +
                             std::to_string(lineno));
  return records;
}

ReplayStream::ReplayStream(std::vector<InstRecord> records)
    : records_(std::move(records)) {
  MEMSCHED_ASSERT(!records_.empty(), "replay stream needs at least one record");
}

InstRecord ReplayStream::next() {
  const InstRecord r = records_[pos_];
  if (++pos_ == records_.size()) {
    pos_ = 0;
    ++wraps_;
  }
  return r;
}

void ReplayStream::reset(std::uint64_t /*seed*/) {
  pos_ = 0;
  wraps_ = 0;
}

void ReplayStream::save_state(ckpt::Writer& w) const {
  w.put_u64(pos_);
  w.put_u64(wraps_);
}

void ReplayStream::load_state(ckpt::Reader& r) {
  const std::uint64_t pos = r.get_u64();
  if (pos >= records_.size()) {
    throw ckpt::SnapshotError("snapshot: replay cursor out of range");
  }
  pos_ = static_cast<std::size_t>(pos);
  wraps_ = r.get_u64();
}

}  // namespace memsched::trace
