#include "trace/trace_file.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "util/assert.hpp"

namespace memsched::trace {

namespace {

constexpr char kMagic[4] = {'M', 'S', 'T', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_or_throw(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  if (!f) throw std::runtime_error("cannot open trace file: " + path);
  return f;
}

void put_u64(std::FILE* f, std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  if (std::fwrite(buf, 1, 8, f) != 8) throw std::runtime_error("trace write failed");
}

std::uint64_t get_u64(std::FILE* f) {
  unsigned char buf[8];
  if (std::fread(buf, 1, 8, f) != 8) throw std::runtime_error("truncated trace file");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return v;
}

}  // namespace

void write_binary_trace(const std::string& path, const std::vector<InstRecord>& records) {
  FilePtr f = open_or_throw(path, "wb");
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4)
    throw std::runtime_error("trace write failed");
  put_u64(f.get(), records.size());
  for (const InstRecord& r : records) {
    const auto cls = static_cast<unsigned char>(r.cls);
    const unsigned char flags =
        static_cast<unsigned char>(cls | (r.dep_on_prev ? 0x80 : 0));
    if (std::fputc(flags, f.get()) == EOF) throw std::runtime_error("trace write failed");
    if (r.cls != InstClass::kCompute) put_u64(f.get(), r.addr);
  }
}

std::vector<InstRecord> read_binary_trace(const std::string& path) {
  FilePtr f = open_or_throw(path, "rb");
  char magic[4];
  if (std::fread(magic, 1, 4, f.get()) != 4 || std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("not a memsched binary trace: " + path);
  const std::uint64_t count = get_u64(f.get());
  std::vector<InstRecord> records;
  records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const int flags = std::fgetc(f.get());
    if (flags == EOF) throw std::runtime_error("truncated trace file");
    InstRecord r;
    const int cls = flags & 0x3;
    if (cls > 2) throw std::runtime_error("corrupt trace record class");
    r.cls = static_cast<InstClass>(cls);
    r.dep_on_prev = (flags & 0x80) != 0;
    if (r.cls != InstClass::kCompute) r.addr = get_u64(f.get());
    records.push_back(r);
  }
  return records;
}

void write_text_trace(const std::string& path, const std::vector<InstRecord>& records) {
  FilePtr f = open_or_throw(path, "w");
  for (const InstRecord& r : records) {
    switch (r.cls) {
      case InstClass::kCompute:
        std::fprintf(f.get(), "C\n");
        break;
      case InstClass::kLoad:
        std::fprintf(f.get(), "%c %llx\n", r.dep_on_prev ? 'D' : 'L',
                     static_cast<unsigned long long>(r.addr));
        break;
      case InstClass::kStore:
        std::fprintf(f.get(), "S %llx\n", static_cast<unsigned long long>(r.addr));
        break;
    }
  }
}

std::vector<InstRecord> read_text_trace(const std::string& path) {
  FilePtr f = open_or_throw(path, "r");
  std::vector<InstRecord> records;
  char line[256];
  std::size_t lineno = 0;
  while (std::fgets(line, sizeof line, f.get())) {
    ++lineno;
    char op = 0;
    unsigned long long addr = 0;
    const int n = std::sscanf(line, " %c %llx", &op, &addr);
    if (n < 1 || op == '#') continue;  // blank or comment
    InstRecord r;
    switch (op) {
      case 'C':
        break;
      case 'L':
      case 'D':
        if (n != 2) throw std::runtime_error("trace line " + std::to_string(lineno) +
                                             ": load needs an address");
        r.cls = InstClass::kLoad;
        r.addr = addr;
        r.dep_on_prev = (op == 'D');
        break;
      case 'S':
        if (n != 2) throw std::runtime_error("trace line " + std::to_string(lineno) +
                                             ": store needs an address");
        r.cls = InstClass::kStore;
        r.addr = addr;
        break;
      default:
        throw std::runtime_error("trace line " + std::to_string(lineno) +
                                 ": unknown op '" + op + "'");
    }
    records.push_back(r);
  }
  return records;
}

ReplayStream::ReplayStream(std::vector<InstRecord> records)
    : records_(std::move(records)) {
  MEMSCHED_ASSERT(!records_.empty(), "replay stream needs at least one record");
}

InstRecord ReplayStream::next() {
  const InstRecord r = records_[pos_];
  if (++pos_ == records_.size()) {
    pos_ = 0;
    ++wraps_;
  }
  return r;
}

void ReplayStream::reset(std::uint64_t /*seed*/) {
  pos_ = 0;
  wraps_ = 0;
}

}  // namespace memsched::trace
