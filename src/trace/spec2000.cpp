#include "trace/app_profile.hpp"

#include <stdexcept>

namespace memsched::trace {

// ---------------------------------------------------------------------------
// Catalog tuning.
//
// The paper's Table 2 lists each application's memory-efficiency value; the
// schedulers only consume ME *relatively* (priority comparisons are
// scale-invariant), so the catalog preserves Table 2's ratios exactly while
// scaling absolute traffic to realistic SPEC2000-on-4MB-L2 levels:
//
//   MPKI_total(app) = kMeScale * 4.8828125 / table_me
//   fresh_lines     = MPKI_total / (1 + dirty_fresh_share)
//
// which yields measured ME == table_me / kMeScale for every app — the same
// ordering and the same ratios as the paper, with swim ~15 MPKI and
// mcf/applu/lucas ~25-29 MPKI (matching published SPEC2000 measurements)
// so that 4- and 8-core MEM mixes genuinely contend for DRAM bandwidth.
// kMeScale is documented in DESIGN.md.
// ---------------------------------------------------------------------------

namespace {

constexpr double kMeScale = kTable2MeScale;  // see app_profile.hpp

AppProfile make(const char* name, char code, bool mem, double table_me, double ilp_ipc,
                double refs_per_kinst, double dirty_share, double burst, double dep,
                std::uint32_t streams, std::uint32_t refs_per_line,
                std::uint64_t hot_kb, std::uint64_t foot_mb, std::uint64_t code_kb) {
  AppProfile p;
  p.name = name;
  p.code = code;
  p.memory_intensive = mem;
  p.table_me = table_me;
  p.ilp_ipc = ilp_ipc;
  p.mem_ref_per_kinst = refs_per_kinst;
  p.store_share = 0.30;
  p.dirty_fresh_share = dirty_share;
  p.fresh_lines_per_kinst =
      kMeScale * 4.8828125 / (table_me * (1.0 + dirty_share));
  p.burst_lines = burst;
  p.dep_chain_frac = dep;
  p.stream_count = streams;
  p.refs_per_line = refs_per_line;
  p.hot_bytes = hot_kb * 1024;
  p.footprint_bytes = foot_mb << 20;
  p.code_bytes = code_kb * 1024;
  return p;
}

std::vector<AppProfile> build_catalog() {
  std::vector<AppProfile> apps;
  apps.reserve(26);
  // ---------- name  code  cls    ME   ipc  refs dirty burst dep  str rpl hot foot code
  apps.push_back(make("gzip", 'a', false, 192, 2.2, 340, 0.30, 4, 0.05, 2, 4, 32, 32, 16));
  apps.push_back(make("wupwise", 'b', true, 15, 2.0, 330, 0.35, 12, 0.00, 3, 4, 32, 64, 16));
  apps.push_back(make("swim", 'c', true, 2, 1.6, 360, 0.40, 32, 0.00, 4, 4, 32, 128, 8));
  apps.push_back(make("mgrid", 'd', true, 4, 1.8, 370, 0.35, 16, 0.00, 4, 4, 32, 128, 8));
  apps.push_back(make("applu", 'e', true, 1, 1.7, 380, 0.40, 16, 0.00, 3, 4, 32, 128, 16));
  apps.push_back(make("vpr", 'f', true, 27, 1.2, 330, 0.25, 2, 0.50, 2, 2, 48, 64, 32));
  apps.push_back(make("gcc", 'g', true, 22, 1.4, 350, 0.30, 4, 0.30, 4, 2, 64, 64, 128));
  apps.push_back(make("mesa", 'h', false, 78, 2.4, 320, 0.30, 4, 0.05, 2, 2, 32, 32, 32));
  apps.push_back(make("galgel", 'i', true, 8, 2.0, 360, 0.30, 8, 0.00, 4, 4, 32, 64, 16));
  apps.push_back(make("art", 'j', true, 20, 1.3, 340, 0.20, 16, 0.10, 2, 4, 16, 64, 8));
  apps.push_back(make("mcf", 'k', true, 1, 0.9, 360, 0.15, 1, 0.80, 4, 1, 32, 256, 16));
  apps.push_back(make("equake", 'l', true, 2, 1.5, 370, 0.30, 8, 0.10, 4, 4, 32, 128, 16));
  apps.push_back(make("crafty", 'm', false, 222, 2.3, 330, 0.25, 2, 0.10, 2, 2, 64, 32, 64));
  apps.push_back(make("facerec", 'n', true, 40, 2.0, 340, 0.30, 8, 0.00, 2, 4, 32, 64, 16));
  apps.push_back(make("ammp", 'o', false, 280, 1.8, 350, 0.30, 2, 0.20, 2, 2, 48, 32, 32));
  apps.push_back(make("lucas", 'p', true, 1, 1.6, 340, 0.35, 32, 0.00, 2, 4, 16, 128, 8));
  apps.push_back(make("fma3d", 'q', true, 4, 1.7, 360, 0.35, 8, 0.05, 4, 4, 48, 128, 64));
  apps.push_back(make("parser", 'r', false, 38, 1.3, 340, 0.25, 2, 0.40, 2, 2, 48, 64, 32));
  apps.push_back(make("sixtrack", 's', false, 80, 2.5, 330, 0.25, 4, 0.00, 2, 4, 32, 32, 32));
  apps.push_back(make("eon", 't', false, 16276, 2.2, 340, 0.20, 2, 0.05, 1, 2, 24, 32, 32));
  apps.push_back(make("perlbmk", 'u', false, 2923, 2.0, 350, 0.25, 2, 0.10, 1, 2, 32, 32, 64));
  apps.push_back(make("gap", 'v', true, 7, 1.5, 350, 0.30, 4, 0.20, 2, 2, 48, 64, 32));
  apps.push_back(make("vortex", 'w', false, 51, 1.9, 360, 0.30, 4, 0.15, 2, 2, 64, 64, 64));
  apps.push_back(make("bzip2", 'x', false, 216, 2.0, 350, 0.35, 4, 0.05, 2, 4, 64, 32, 16));
  apps.push_back(make("twolf", 'y', false, 951, 1.6, 340, 0.25, 2, 0.40, 2, 2, 48, 32, 32));
  apps.push_back(make("apsi", 'z', false, 36, 1.8, 350, 0.30, 8, 0.00, 4, 4, 32, 64, 32));
  return apps;
}

}  // namespace

const std::vector<AppProfile>& spec2000_profiles() {
  static const std::vector<AppProfile> catalog = build_catalog();
  return catalog;
}

const AppProfile& spec2000_by_name(const std::string& name) {
  for (const AppProfile& p : spec2000_profiles()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("unknown SPEC2000 application: " + name);
}

const AppProfile& spec2000_by_code(char code) {
  for (const AppProfile& p : spec2000_profiles()) {
    if (p.code == code) return p;
  }
  throw std::invalid_argument(std::string("unknown SPEC2000 code: ") + code);
}

}  // namespace memsched::trace
