// Miss Status Holding Register file.
//
// Tracks in-flight line fills below a cache level and merges secondary
// misses to the same line. Waiters are opaque 64-bit tokens: the core model
// packs (core, load tag) into them and is called back when the fill returns.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/types.hpp"

namespace memsched::ckpt {
class Writer;
class Reader;
}  // namespace memsched::ckpt

namespace memsched::cache {

struct MshrEntry {
  Addr line_addr = 0;
  bool valid = false;
  bool dispatched = false;  ///< request accepted by the memory controller
  bool prefetch = false;    ///< allocated by the stream prefetcher
  CoreId requester = kInvalidCore;  ///< core whose miss allocated the entry
  std::vector<std::uint64_t> waiters;
};

class MshrFile {
 public:
  explicit MshrFile(std::uint32_t entries);

  [[nodiscard]] bool full() const { return used_ == entries_.size(); }
  [[nodiscard]] std::uint32_t in_use() const { return used_; }
  [[nodiscard]] std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(entries_.size());
  }

  /// Entry for `line_addr`, or nullptr.
  [[nodiscard]] MshrEntry* find(Addr line_addr);
  [[nodiscard]] const MshrEntry* find(Addr line_addr) const {
    return const_cast<MshrFile*>(this)->find(line_addr);
  }

  /// Allocate a new entry; returns nullptr when full or already present.
  MshrEntry* allocate(Addr line_addr, CoreId requester);

  /// Release the entry for `line_addr`, moving its waiters into `waiters_out`
  /// (appended). Returns false if no such entry exists.
  bool release(Addr line_addr, std::vector<std::uint64_t>& waiters_out);

  /// Entries not yet dispatched to the controller (back-pressure retry set).
  void for_each_undispatched(const std::function<void(MshrEntry&)>& fn);

  /// True when some entry still awaits dispatch (the retry set is non-empty).
  [[nodiscard]] bool any_undispatched() const {
    for (const MshrEntry& e : entries_) {
      if (e.valid && !e.dispatched) return true;
    }
    return false;
  }

  void reset();

  // Statistics.
  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }
  [[nodiscard]] std::uint64_t merges() const { return merges_; }
  void count_merge() { ++merges_; }

  // --- checkpoint/restore ---
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  std::vector<MshrEntry> entries_;
  std::uint32_t used_ = 0;
  std::uint64_t allocations_ = 0;
  std::uint64_t merges_ = 0;
};

}  // namespace memsched::cache
