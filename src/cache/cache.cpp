#include "cache/cache.hpp"

#include "ckpt/snapshot.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"

namespace memsched::cache {

SetAssocCache::SetAssocCache(const CacheConfig& cfg)
    : cfg_(cfg), set_count_(cfg.sets()), line_shift_(util::ilog2(cfg.line_bytes)) {
  MEMSCHED_ASSERT(util::is_pow2(cfg.line_bytes), "line size must be a power of two");
  MEMSCHED_ASSERT(cfg.ways > 0, "cache needs at least one way");
  MEMSCHED_ASSERT(set_count_ > 0 && util::is_pow2(set_count_),
                  "set count must be a nonzero power of two");
  lines_.resize(set_count_ * cfg.ways);
}

std::uint64_t SetAssocCache::set_of(Addr addr) const {
  return (addr >> line_shift_) & (set_count_ - 1);
}

Addr SetAssocCache::tag_of(Addr addr) const {
  return addr >> line_shift_ >> util::ilog2(set_count_);
}

Addr SetAssocCache::line_addr_of(std::uint64_t set, Addr tag) const {
  return ((tag << util::ilog2(set_count_)) | set) << line_shift_;
}

AccessResult SetAssocCache::access(Addr addr, bool is_write) {
  const std::uint64_t set = set_of(addr);
  const Addr tag = tag_of(addr);
  Line* base = &lines_[set * cfg_.ways];

  // Hit path.
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = ++lru_clock_;
      line.dirty |= is_write;
      ++stats_.hits;
      const bool was_pf = line.prefetched;
      line.prefetched = false;
      return {.hit = true, .was_prefetched = was_pf, .writeback_line = std::nullopt};
    }
  }

  // Miss: pick an invalid way or the LRU victim.
  ++stats_.misses;
  Line* victim = &base[0];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& line = base[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru < victim->lru) victim = &line;
  }

  AccessResult result;
  if (victim->valid) {
    ++stats_.evictions;
    if (victim->dirty) {
      ++stats_.writebacks;
      result.writeback_line = line_addr_of(set, victim->tag);
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = is_write;
  victim->prefetched = false;
  victim->lru = ++lru_clock_;
  return result;
}

bool SetAssocCache::try_hit(Addr addr, bool is_write, bool* was_prefetched) {
  const std::uint64_t set = set_of(addr);
  const Addr tag = tag_of(addr);
  Line* base = &lines_[set * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = ++lru_clock_;
      line.dirty |= is_write;
      ++stats_.hits;
      if (was_prefetched != nullptr) *was_prefetched = line.prefetched;
      line.prefetched = false;
      return true;
    }
  }
  return false;
}

void SetAssocCache::mark_prefetched(Addr addr) {
  const std::uint64_t set = set_of(addr);
  const Addr tag = tag_of(addr);
  Line* base = &lines_[set * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].prefetched = true;
      return;
    }
  }
}

bool SetAssocCache::probe(Addr addr) const {
  const std::uint64_t set = set_of(addr);
  const Addr tag = tag_of(addr);
  const Line* base = &lines_[set * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

bool SetAssocCache::invalidate(Addr addr) {
  const std::uint64_t set = set_of(addr);
  const Addr tag = tag_of(addr);
  Line* base = &lines_[set * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.valid = false;
      return line.dirty;
    }
  }
  return false;
}

bool SetAssocCache::warm_touch(Addr addr, bool dirty) {
  const std::uint64_t set = set_of(addr);
  const Addr tag = tag_of(addr);
  Line* base = &lines_[set * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = ++lru_clock_;
      line.dirty |= dirty;
      return true;
    }
  }
  Line* victim = &base[0];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& line = base[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru < victim->lru) victim = &line;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = dirty;
  victim->prefetched = false;
  victim->lru = ++lru_clock_;
  return false;
}

void SetAssocCache::reset() {
  for (Line& line : lines_) line = Line{};
  lru_clock_ = 0;
  stats_ = CacheStats{};
}

void SetAssocCache::save_state(ckpt::Writer& w) const {
  w.put_u64(lines_.size());
  for (const Line& l : lines_) {
    w.put_u64(l.tag);
    w.put_bool(l.valid);
    w.put_bool(l.dirty);
    w.put_bool(l.prefetched);
    w.put_u64(l.lru);
  }
  w.put_u64(lru_clock_);
  w.put_u64(stats_.hits);
  w.put_u64(stats_.misses);
  w.put_u64(stats_.evictions);
  w.put_u64(stats_.writebacks);
}

void SetAssocCache::load_state(ckpt::Reader& r) {
  const std::uint64_t n = r.get_u64();
  if (n != lines_.size()) {
    throw ckpt::SnapshotError("snapshot: cache geometry mismatch");
  }
  for (Line& l : lines_) {
    l.tag = r.get_u64();
    l.valid = r.get_bool();
    l.dirty = r.get_bool();
    l.prefetched = r.get_bool();
    l.lru = r.get_u64();
  }
  lru_clock_ = r.get_u64();
  stats_.hits = r.get_u64();
  stats_.misses = r.get_u64();
  stats_.evictions = r.get_u64();
  stats_.writebacks = r.get_u64();
}

}  // namespace memsched::cache
