// Set-associative write-back, write-allocate cache with LRU replacement.
//
// Timing is handled by the enclosing hierarchy/MSHRs; this class models
// *state* (tags, dirtiness, replacement) and updates it at access time.
// In-flight fills are tracked by the MSHR file, which is the standard
// trace-driven simplification: a missing line is inserted immediately and
// later accesses to it merge in the MSHR instead of re-missing.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/types.hpp"

namespace memsched::ckpt {
class Writer;
class Reader;
}  // namespace memsched::ckpt

namespace memsched::cache {

struct CacheConfig {
  std::uint64_t size_bytes = 64 * 1024;
  std::uint32_t ways = 2;
  std::uint32_t line_bytes = kLineBytes;
  std::uint32_t hit_latency_cpu = 3;  ///< CPU cycles to return a hit
  const char* name = "cache";

  [[nodiscard]] std::uint64_t sets() const {
    return size_bytes / (static_cast<std::uint64_t>(ways) * line_bytes);
  }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;  ///< dirty evictions

  [[nodiscard]] double miss_rate() const {
    const auto total = hits + misses;
    return total ? static_cast<double>(misses) / static_cast<double>(total) : 0.0;
  }
};

/// Result of an access: whether it hit, and the dirty victim line (if any)
/// that must be written back to the next level.
struct AccessResult {
  bool hit = false;
  bool was_prefetched = false;  ///< hit consumed a prefetched line (bit cleared)
  std::optional<Addr> writeback_line;  ///< line address of the dirty victim
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& cfg);

  /// Access (and allocate on miss). `is_write` marks the line dirty.
  AccessResult access(Addr addr, bool is_write);

  /// Tag probe without any state change.
  [[nodiscard]] bool probe(Addr addr) const;

  /// Fused probe+access for the hit fast path: on a hit this is exactly
  /// access() (LRU bump, dirty update, hit counter, prefetch-bit clear,
  /// reported through `was_prefetched` when non-null) with one set lookup
  /// instead of two; on a miss it is exactly probe() — no state or
  /// statistics change, the caller decides whether/when to allocate.
  bool try_hit(Addr addr, bool is_write, bool* was_prefetched = nullptr);

  /// Invalidate a line if present; returns true if it was dirty.
  bool invalidate(Addr addr);

  /// Drop all contents (between runs).
  void reset();

  /// Checkpoint-style warm insertion: allocates `addr`'s line like access()
  /// but updates no statistics and silently drops any victim (no writeback).
  /// Used to pre-warm caches to steady-state occupancy before measurement.
  void warm_insert(Addr addr, bool dirty) { (void)warm_touch(addr, dirty); }

  /// warm_insert that also reports whether the line was already resident —
  /// the functional fast-forward's fused probe+insert (one set scan instead
  /// of two, mirroring try_hit on the detailed path).
  bool warm_touch(Addr addr, bool dirty);

  /// Zero the statistics counters without touching cache contents.
  void reset_stats() { stats_ = CacheStats{}; }

  /// Tag a resident line as prefetched (no-op if absent); the next hit on
  /// it reports was_prefetched and clears the tag.
  void mark_prefetched(Addr addr);

  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }

  // --- checkpoint/restore (tags, dirtiness, LRU, stats) ---
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  struct Line {
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;  ///< brought in by the prefetcher, not yet used
    std::uint64_t lru = 0;    ///< larger = more recently used
  };

  [[nodiscard]] std::uint64_t set_of(Addr addr) const;
  [[nodiscard]] Addr tag_of(Addr addr) const;
  [[nodiscard]] Addr line_addr_of(std::uint64_t set, Addr tag) const;

  CacheConfig cfg_;
  std::uint64_t set_count_;
  unsigned line_shift_;
  std::vector<Line> lines_;  ///< set-major: lines_[set * ways + way]
  std::uint64_t lru_clock_ = 0;
  CacheStats stats_;
};

}  // namespace memsched::cache
