#include "cache/mshr.hpp"

#include "ckpt/snapshot.hpp"
#include "util/assert.hpp"

namespace memsched::cache {

MshrFile::MshrFile(std::uint32_t entries) {
  MEMSCHED_ASSERT(entries > 0, "MSHR file needs at least one entry");
  entries_.resize(entries);
}

MshrEntry* MshrFile::find(Addr line_addr) {
  for (MshrEntry& e : entries_) {
    if (e.valid && e.line_addr == line_addr) return &e;
  }
  return nullptr;
}

MshrEntry* MshrFile::allocate(Addr line_addr, CoreId requester) {
  if (full() || find(line_addr) != nullptr) return nullptr;
  for (MshrEntry& e : entries_) {
    if (!e.valid) {
      e.valid = true;
      e.dispatched = false;
      e.prefetch = false;
      e.line_addr = line_addr;
      e.requester = requester;
      e.waiters.clear();
      ++used_;
      ++allocations_;
      return &e;
    }
  }
  return nullptr;  // unreachable: full() was false
}

bool MshrFile::release(Addr line_addr, std::vector<std::uint64_t>& waiters_out) {
  for (MshrEntry& e : entries_) {
    if (e.valid && e.line_addr == line_addr) {
      waiters_out.insert(waiters_out.end(), e.waiters.begin(), e.waiters.end());
      e.valid = false;
      e.waiters.clear();
      MEMSCHED_ASSERT(used_ > 0, "MSHR accounting underflow");
      --used_;
      return true;
    }
  }
  return false;
}

void MshrFile::for_each_undispatched(const std::function<void(MshrEntry&)>& fn) {
  for (MshrEntry& e : entries_) {
    if (e.valid && !e.dispatched) fn(e);
  }
}

void MshrFile::reset() {
  for (MshrEntry& e : entries_) {
    e.valid = false;
    e.waiters.clear();
  }
  used_ = 0;
  allocations_ = 0;
  merges_ = 0;
}

void MshrFile::save_state(ckpt::Writer& w) const {
  w.put_u64(entries_.size());
  for (const MshrEntry& e : entries_) {
    w.put_u64(e.line_addr);
    w.put_bool(e.valid);
    w.put_bool(e.dispatched);
    w.put_bool(e.prefetch);
    w.put_u32(e.requester);
    w.put_u64_vec(e.waiters);
  }
  w.put_u32(used_);
  w.put_u64(allocations_);
  w.put_u64(merges_);
}

void MshrFile::load_state(ckpt::Reader& r) {
  const std::uint64_t n = r.get_u64();
  if (n != entries_.size()) {
    throw ckpt::SnapshotError("snapshot: MSHR capacity mismatch");
  }
  for (MshrEntry& e : entries_) {
    e.line_addr = r.get_u64();
    e.valid = r.get_bool();
    e.dispatched = r.get_bool();
    e.prefetch = r.get_bool();
    e.requester = r.get_u32();
    e.waiters = r.get_u64_vec();
  }
  used_ = r.get_u32();
  allocations_ = r.get_u64();
  merges_ = r.get_u64();
}

}  // namespace memsched::cache
