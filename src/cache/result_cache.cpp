#include "cache/result_cache.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "ckpt/snapshot.hpp"
#include "util/atomic_file.hpp"
#include "util/wallclock.hpp"

namespace memsched::cache {

namespace fs = std::filesystem;

namespace {

constexpr char kKeySep = '\x1f';

void sleep_seconds(double seconds) {
  if (seconds <= 0.0) return;
  ::usleep(static_cast<useconds_t>(seconds * 1e6));
}

/// Entry payload codec. Writer and reader sides must mirror each other
/// field for field — memsched-lint (cache-entry-framing) checks that this
/// encode/decode pair stays symmetric.
void encode_result_entry(ckpt::Writer& w, const std::string& point_name,
                         const std::string& payload) {
  w.begin_section("result");
  w.put_str(point_name);
  w.put_str(payload);
}

void decode_result_entry(ckpt::Reader& r, std::string& point_name,
                         std::string& payload) {
  r.open_section("result");
  point_name = r.get_str();
  payload = r.get_str();
  r.close_section();
}

/// Reads a whole file through the fault seam: injected open/read errors set
/// errno and fail, injected bit flips land in `out` (and are then caught by
/// the entry's CRCs). ENOENT is the one "error" that is really a miss.
bool read_raw(const std::string& path, std::vector<std::uint8_t>& out,
              int& err_errno) {
  err_errno = 0;
  util::FsFaultHooks* hooks = util::fs_fault_hooks();
  if (hooks != nullptr && (err_errno = hooks->fail_op("open")) != 0) return false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    err_errno = errno;
    return false;
  }
  out.clear();
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.insert(out.end(), buf, buf + n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad || (hooks != nullptr && (err_errno = hooks->fail_op("read")) != 0)) {
    if (err_errno == 0) err_errno = EIO;
    return false;
  }
  if (hooks != nullptr && !out.empty()) hooks->corrupt_read(out.data(), out.size());
  return true;
}

/// Peeks the embedded key string (the ckpt-frame fingerprint field) out of a
/// raw entry image without validating sections — check_entry_file needs the
/// key before it can run the full Reader validation against it.
bool peek_key(const std::vector<std::uint8_t>& raw, std::string& key,
              std::string& error) {
  std::size_t pos = 0;
  const auto take = [&](void* dst, std::size_t n) {
    if (pos + n > raw.size()) return false;
    std::memcpy(dst, raw.data() + pos, n);
    pos += n;
    return true;
  };
  std::uint64_t magic = 0;
  std::uint32_t version = 0, fp_len = 0;
  if (!take(&magic, sizeof magic) || magic != ckpt::kMagic) {
    error = "bad magic (not a cache entry)";
    return false;
  }
  if (!take(&version, sizeof version) || version != ckpt::kVersion) {
    error = "unsupported frame version";
    return false;
  }
  if (!take(&fp_len, sizeof fp_len) || pos + fp_len > raw.size()) {
    error = "truncated key field";
    return false;
  }
  key.assign(reinterpret_cast<const char*>(raw.data() + pos), fp_len);
  return true;
}

/// Unique name for a file parked in quarantine/ (several sweeps may park
/// artifacts with the same basename).
std::string quarantine_name(const std::string& dir, const std::string& victim) {
  static std::atomic<std::uint64_t> counter{0};
  char suffix[48];
  std::snprintf(suffix, sizeof suffix, ".%ld.%llu", static_cast<long>(::getpid()),
                static_cast<unsigned long long>(
                    counter.fetch_add(1, std::memory_order_relaxed)));
  return dir + "/quarantine/" + fs::path(victim).filename().string() + suffix;
}

/// Advisory per-entry writer lock with a bounded, backoff-paced wait. The
/// kernel drops the lock when the holder dies, so a crashed writer can never
/// wedge later sweeps — the bounded wait only matters for *live* writers.
class FlockGuard {
 public:
  FlockGuard(const std::string& path, double timeout_seconds,
             const util::Backoff& backoff) {
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) return;
    const auto start = util::monotonic_now();
    for (std::uint32_t attempt = 1;; ++attempt) {
      if (::flock(fd_, LOCK_EX | LOCK_NB) == 0) {
        locked_ = true;
        return;
      }
      if (errno != EWOULDBLOCK && errno != EINTR) break;
      if (util::seconds_between(start, util::monotonic_now()) >= timeout_seconds) break;
      sleep_seconds(backoff.delay_seconds(attempt));
    }
    ::close(fd_);
    fd_ = -1;
  }
  ~FlockGuard() {
    if (fd_ >= 0) ::close(fd_);  // close releases the flock
  }
  FlockGuard(const FlockGuard&) = delete;
  FlockGuard& operator=(const FlockGuard&) = delete;

  [[nodiscard]] bool locked() const { return locked_; }

 private:
  int fd_ = -1;
  bool locked_ = false;
};

/// True when the entry lock for `lock_path` can be taken right now — i.e.
/// no live writer holds it. Used by fsck to tell a dead writer's leftovers
/// from an in-flight commit.
bool lock_is_free(const std::string& lock_path) {
  const int fd = ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return false;  // cannot tell; err on the safe side
  const bool free = ::flock(fd, LOCK_EX | LOCK_NB) == 0;
  ::close(fd);
  return free;
}

double age_of(const fs::path& p) {
  std::error_code ec;
  const auto mtime = fs::last_write_time(p, ec);
  if (ec) return 0.0;  // vanished or unreadable: treat as young (leave it)
  return util::file_age_seconds(mtime, util::file_now());
}

bool move_to_quarantine(const std::string& dir, const std::string& victim) {
  std::error_code ec;
  fs::create_directories(dir + "/quarantine", ec);
  fs::rename(victim, quarantine_name(dir, victim), ec);
  return !ec;
}

}  // namespace

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex64(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

// ---------------------------------------------------------------------------
// ResultCache

ResultCache::ResultCache(ResultCacheConfig cfg, util::FsFaultHooks* faults)
    : cfg_(std::move(cfg)), faults_(faults) {
  std::error_code ec;
  fs::create_directories(cfg_.dir + "/objects", ec);
  if (!ec) fs::create_directories(cfg_.dir + "/intents", ec);
  if (!ec) fs::create_directories(cfg_.dir + "/quarantine", ec);
  if (ec) {
    diag("cache directory " + cfg_.dir + " unusable (" + ec.message() +
         "); caching disabled for this sweep");
    return;
  }
  enabled_ = true;
}

std::string ResultCache::key_string(const std::string& point_name) const {
  return std::string(kResultCacheSchema) + kKeySep + cfg_.fingerprint + kKeySep +
         point_name;
}

std::string ResultCache::entry_path(const std::string& point_name) const {
  const std::string key = hex64(fnv1a64(key_string(point_name)));
  return cfg_.dir + "/objects/" + key.substr(0, 2) + "/" + key + ".entry";
}

std::string ResultCache::lock_path(const std::string& point_name) const {
  const std::string key = hex64(fnv1a64(key_string(point_name)));
  return cfg_.dir + "/objects/" + key.substr(0, 2) + "/" + key + ".lock";
}

std::string ResultCache::intent_path(const std::string& point_name) const {
  return cfg_.dir + "/intents/" + hex64(fnv1a64(key_string(point_name))) + ".intent";
}

void ResultCache::diag(const std::string& what) const {
  if (!cfg_.diagnostics) return;
  // One grep-able line per degradation, mirroring the MEMSCHED_ERROR record
  // convention: token, then a single human-readable clause.
  std::fprintf(stderr, "MEMSCHED_CACHE_DEGRADED %s\n", what.c_str());
}

void ResultCache::quarantine(const std::string& path, const char* reason) {
  if (move_to_quarantine(cfg_.dir, path)) {
    ++stats_.quarantined;
    diag(std::string("quarantined ") + path + " (" + reason + ")");
  } else {
    // Even the rename failed; drop the file so it cannot be served again.
    std::remove(path.c_str());
    ++stats_.quarantined;
    diag(std::string("removed unquarantinable ") + path + " (" + reason + ")");
  }
}

bool ResultCache::get(const std::string& point_name, std::string* payload) {
  if (!enabled_) return false;
  // Arm this cache's fault source for the duration of the lookup; with no
  // source configured, re-installing the current hooks is a no-op (so hooks
  // a test armed around the whole sweep still apply).
  util::ScopedFsFaults armed(faults_ != nullptr ? faults_ : util::fs_fault_hooks());
  const bool hit = try_get(point_name, payload);
  if (hit) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return hit;
}

bool ResultCache::try_get(const std::string& point_name, std::string* payload) {
  const std::string path = entry_path(point_name);
  const std::string expected_key = key_string(point_name);

  std::vector<std::uint8_t> raw;
  for (std::uint32_t attempt = 1;; ++attempt) {
    int err = 0;
    if (read_raw(path, raw, err)) break;
    if (err == ENOENT) return false;  // plain miss: not an error
    ++stats_.read_errors;
    if (attempt > cfg_.max_retries) {
      diag("read " + path + " failed after " + std::to_string(cfg_.max_retries) +
           " retries (" + std::strerror(err) + "); treating as miss");
      return false;
    }
    sleep_seconds(cfg_.backoff.delay_seconds(attempt));
  }

  try {
    ckpt::Reader r(raw, expected_key);
    std::string stored_name;
    decode_result_entry(r, stored_name, *payload);
    if (stored_name != point_name) {
      // Cannot happen unless the file was forged: the name is part of the
      // key the Reader just validated. Treat as corruption all the same.
      throw ckpt::SnapshotError("entry name does not match its key");
    }
    return true;
  } catch (const ckpt::SnapshotError& e) {
    // Torn by bit rot or carrying the wrong key: move it out of the serving
    // path so every future lookup is an honest miss, then re-simulate.
    quarantine(path, e.what());
    return false;
  }
}

void ResultCache::put(const std::string& point_name, const std::string& payload) {
  if (!enabled_) return;
  util::ScopedFsFaults armed(faults_ != nullptr ? faults_ : util::fs_fault_hooks());
  try_put(point_name, payload);
}

void ResultCache::try_put(const std::string& point_name, const std::string& payload) {
  const std::string entry = entry_path(point_name);
  const std::string intent = intent_path(point_name);

  std::error_code ec;
  fs::create_directories(fs::path(entry).parent_path(), ec);
  if (ec) {
    ++stats_.store_errors;
    diag("cannot create shard dir for " + entry + " (" + ec.message() + ")");
    return;
  }
  if (fs::exists(entry, ec)) {
    ++stats_.store_skips;  // another worker (or a prior run) got here first
    return;
  }

  FlockGuard lock(lock_path(point_name), cfg_.lock_timeout_seconds, cfg_.backoff);
  if (!lock.locked()) {
    ++stats_.lock_timeouts;
    diag("lock on " + entry + " not acquired within " +
         std::to_string(cfg_.lock_timeout_seconds) + " s; skipping store");
    return;
  }
  if (fs::exists(entry, ec)) {  // decided while we waited for the lock
    ++stats_.store_skips;
    return;
  }

  // A leftover intent under OUR exclusive lock can only belong to a dead
  // writer (a live one would still hold the flock). Reclaim: park any tmp
  // file it abandoned, then drop the intent.
  if (fs::exists(intent, ec)) {
    const fs::path shard = fs::path(entry).parent_path();
    const std::string stem = fs::path(entry).filename().string();  // <key>.entry
    for (const auto& de : fs::directory_iterator(shard, ec)) {
      const std::string name = de.path().filename().string();
      if (name.size() > stem.size() && name.compare(0, stem.size(), stem) == 0 &&
          name.compare(stem.size(), 5, ".tmp.") == 0) {
        move_to_quarantine(cfg_.dir, de.path().string());
      }
    }
    fs::remove(intent, ec);
    ++stats_.stale_reclaimed;
    diag("reclaimed stale intent for " + entry + " (dead writer)");
  }

  // Write-ahead intent: from here until the intent is removed again, a crash
  // is detectable — fsck (or the next writer) knows a commit died here.
  try {
    util::atomic_write_file(intent, std::to_string(::getpid()) + " " + entry + "\n");
  } catch (const util::AtomicFileError& e) {
    ++stats_.store_errors;
    diag(std::string("intent write failed (") + util::file_op_name(e.op()) + ": " +
         std::strerror(e.errno_value()) + "); skipping store");
    return;
  }

  ckpt::Writer w;
  encode_result_entry(w, point_name, payload);
  for (std::uint32_t attempt = 1;; ++attempt) {
    try {
      w.save(entry, key_string(point_name));
      break;
    } catch (const util::AtomicFileError& e) {
      if (attempt > cfg_.max_retries) {
        ++stats_.store_errors;
        diag(std::string("store of ") + entry + " failed after " +
             std::to_string(cfg_.max_retries) + " retries (" +
             util::file_op_name(e.op()) + ": " + std::strerror(e.errno_value()) +
             "); sweep continues uncached");
        fs::remove(intent, ec);  // the commit is over; don't leave a decoy
        return;
      }
      sleep_seconds(cfg_.backoff.delay_seconds(attempt));
    }
  }
  fs::remove(intent, ec);  // entry is durable; the intent has done its job
  ++stats_.stores;
}

// ---------------------------------------------------------------------------
// Offline inspection / repair

EntryCheck check_entry_file(const std::string& path) {
  EntryCheck c;
  c.path = path;

  std::vector<std::uint8_t> raw;
  int err = 0;
  if (!read_raw(path, raw, err)) {
    c.error = std::string("unreadable: ") + std::strerror(err);
    return c;
  }
  c.bytes = raw.size();

  std::string key;
  if (!peek_key(raw, key, c.error)) return c;
  if (key.compare(0, std::strlen(kResultCacheSchema), kResultCacheSchema) != 0) {
    c.error = "entry written by a different cache schema";
    return c;
  }
  const std::string stem = fs::path(path).stem().string();
  if (stem != hex64(fnv1a64(key))) {
    c.error = "filename does not match embedded key (misfiled entry)";
    return c;
  }
  try {
    ckpt::Reader r(raw, key);
    std::string payload;
    decode_result_entry(r, c.point_name, payload);
  } catch (const ckpt::SnapshotError& e) {
    c.error = e.what();
    return c;
  }
  c.ok = true;
  return c;
}

CacheScan scan_cache(const std::string& dir) {
  CacheScan scan;
  std::error_code ec;
  for (const auto& de : fs::recursive_directory_iterator(dir + "/objects", ec)) {
    if (!de.is_regular_file(ec)) continue;
    const std::string p = de.path().string();
    const std::string name = de.path().filename().string();
    if (name.size() > 6 && name.compare(name.size() - 6, 6, ".entry") == 0) {
      EntryCheck c = check_entry_file(p);
      scan.entry_bytes += c.bytes;
      if (!c.ok) ++scan.corrupt;
      scan.entries.push_back(std::move(c));
    } else if (name.find(".tmp.") != std::string::npos) {
      scan.tmp_orphans.push_back(p);
    }
  }
  for (const auto& de : fs::directory_iterator(dir + "/intents", ec)) {
    if (de.is_regular_file(ec)) scan.intents.push_back(de.path().string());
  }
  for (const auto& de : fs::directory_iterator(dir + "/quarantine", ec)) {
    if (de.is_regular_file(ec)) scan.quarantined.push_back(de.path().string());
  }
  return scan;
}

namespace {

/// Lock file guarding the artifact at `p` (an entry tmp or an intent): both
/// derive from the entry stem, whose first 16 chars are the key hex.
std::string guarding_lock(const std::string& dir, const fs::path& p) {
  const std::string name = p.filename().string();
  if (name.size() < 16) return {};
  const std::string key = name.substr(0, 16);
  return dir + "/objects/" + key.substr(0, 2) + "/" + key + ".lock";
}

/// Dead-writer test for a leftover artifact: reclaim when its writer's lock
/// is free (the kernel released it at death), or — if the lock cannot be
/// probed or is genuinely held — when the artifact has outlived the lease
/// (a wedged writer forfeits its claim after bounded age).
bool reclaimable(const std::string& dir, const fs::path& p, double lease_seconds) {
  const std::string lock = guarding_lock(dir, p);
  if (!lock.empty() && lock_is_free(lock)) return true;
  return age_of(p) >= lease_seconds;
}

}  // namespace

FsckResult fsck_cache(const std::string& dir, double lease_seconds) {
  FsckResult r;
  const CacheScan scan = scan_cache(dir);
  for (const EntryCheck& c : scan.entries) {
    if (c.ok) continue;
    if (move_to_quarantine(dir, c.path)) ++r.entries_quarantined;
  }
  for (const std::string& tmp : scan.tmp_orphans) {
    if (!reclaimable(dir, tmp, lease_seconds)) continue;
    if (move_to_quarantine(dir, tmp)) ++r.tmp_quarantined;
  }
  std::error_code ec;
  for (const std::string& intent : scan.intents) {
    if (!reclaimable(dir, intent, lease_seconds)) continue;
    fs::remove(intent, ec);
    if (!ec) ++r.intents_removed;
  }
  return r;
}

std::size_t gc_cache(const std::string& dir, double max_age_seconds) {
  std::size_t removed = 0;
  std::error_code ec;
  const CacheScan scan = scan_cache(dir);
  for (const EntryCheck& c : scan.entries) {
    if (age_of(c.path) < max_age_seconds) continue;
    fs::remove(c.path, ec);
    if (!ec) ++removed;
  }
  for (const std::string& q : scan.quarantined) {
    if (age_of(q) < max_age_seconds) continue;
    fs::remove(q, ec);
    if (!ec) ++removed;
  }
  return removed;
}

}  // namespace memsched::cache
