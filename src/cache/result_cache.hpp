// Crash-safe content-addressed result cache for sweep points.
//
// A sweep point's result is a pure function of the sweep fingerprint (seed,
// SystemConfig, run parameters) and the point's name, so a re-run — on this
// machine or after a crash — can skip the forked simulation entirely and
// splice the recorded payload back in. The cache is keyed by
//
//   FNV-1a-64( schema-version \x1f sweep-fingerprint \x1f point-name )
//
// and every entry embeds that full key string in its ckpt-frame fingerprint
// field, so a hash collision or a wrongly-keyed file is detected on read by
// the Reader's fingerprint check, never silently served.
//
// Durability protocol (per entry, under an exclusive per-entry flock):
//
//   1. write  intents/<key>.intent        (write-ahead: "a commit is live")
//   2. write  objects/<aa>/<key>.entry    via atomic_write_file
//                                         (tmp + fsync + rename)
//   3. remove intents/<key>.intent
//
// SIGKILL between any two bytes of that sequence leaves either no entry (the
// intent marks the dead commit; the next writer or fsck reclaims it and
// quarantines any orphaned tmp file) or a complete, CRC-clean entry plus at
// worst a stale intent. A torn or wrongly-keyed entry is impossible by
// construction: rename is the only operation that creates an entry name.
//
// The lock is advisory flock — released by the kernel when a writer dies, so
// a crashed writer never wedges the cache. The lease (lease_seconds) governs
// the artifacts a dead writer leaves behind: an intent or tmp file older
// than the lease whose lock can be taken is reclaimed (tmp quarantined,
// intent dropped).
//
// Failure philosophy: the cache must NEVER fail a sweep. Every I/O problem —
// corruption (quarantined), lock timeout, ENOSPC, EIO — degrades to a cache
// miss (get) or a skipped store (put), with a bounded-backoff retry for
// transient errors and one MEMSCHED_ERROR-style diagnostic line on stderr.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/backoff.hpp"
#include "util/fs_fault.hpp"

namespace memsched::cache {

/// Bumped whenever the entry payload schema changes; old entries then simply
/// miss (their embedded key string no longer matches) and are gc-able.
inline constexpr const char* kResultCacheSchema = "memsched-rcache-v1";

struct ResultCacheConfig {
  std::string dir;          ///< cache root; created on demand
  std::string fingerprint;  ///< sweep identity baked into every key

  double lock_timeout_seconds = 2.0;  ///< bound on waiting for a live writer
  double lease_seconds = 300.0;       ///< age after which a dead writer's
                                      ///< intent/tmp artifacts are reclaimed
  std::uint32_t max_retries = 3;      ///< transient-error retries per op
  util::Backoff backoff{0.05, 1.0};   ///< retry schedule (base, cap seconds)
  bool diagnostics = true;            ///< degraded-mode lines on stderr
};

struct ResultCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t store_skips = 0;    ///< entry already present
  std::uint64_t store_errors = 0;   ///< put degraded (ENOSPC, EIO, ...)
  std::uint64_t read_errors = 0;    ///< get degraded on I/O error
  std::uint64_t quarantined = 0;    ///< corrupt entries moved aside by get
  std::uint64_t lock_timeouts = 0;  ///< bounded lock wait expired
  std::uint64_t stale_reclaimed = 0;  ///< dead-writer intents reclaimed
};

/// One sweep's handle on the cache directory. Degrades to a disabled no-op
/// handle (never throws out of get/put) if the directory cannot be created.
class ResultCache {
 public:
  /// `faults`, when non-null, is armed (thread-locally) around every
  /// filesystem operation the cache performs — and only those — so chaos
  /// runs stress the cache without poisoning the manifest writer.
  explicit ResultCache(ResultCacheConfig cfg, util::FsFaultHooks* faults = nullptr);

  /// False when construction hit an unusable directory; get/put are no-ops.
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Cache lookup. True = hit, `*payload` holds the verbatim recorded JSON.
  /// Corrupt entries are quarantined and read as a miss; I/O errors retry on
  /// the backoff schedule and then degrade to a miss.
  [[nodiscard]] bool get(const std::string& point_name, std::string* payload);

  /// Stores one ok point's payload. Quietly skips when the entry already
  /// exists, the lock cannot be taken within the bound, or I/O fails after
  /// bounded retries — a skipped store only costs a future re-simulation.
  void put(const std::string& point_name, const std::string& payload);

  [[nodiscard]] const ResultCacheStats& stats() const { return stats_; }
  [[nodiscard]] const ResultCacheConfig& config() const { return cfg_; }

  /// The embedded key string for a point ("<schema>\x1f<fp>\x1f<name>").
  [[nodiscard]] std::string key_string(const std::string& point_name) const;
  /// objects/<aa>/<key16>.entry path for a point. Exposed for tests/tools.
  [[nodiscard]] std::string entry_path(const std::string& point_name) const;
  [[nodiscard]] std::string lock_path(const std::string& point_name) const;
  [[nodiscard]] std::string intent_path(const std::string& point_name) const;

 private:
  bool try_get(const std::string& point_name, std::string* payload);
  void try_put(const std::string& point_name, const std::string& payload);
  void quarantine(const std::string& path, const char* reason);
  void diag(const std::string& what) const;

  ResultCacheConfig cfg_;
  util::FsFaultHooks* faults_ = nullptr;
  ResultCacheStats stats_;
  bool enabled_ = false;
};

/// FNV-1a 64-bit — the content address. Stable, dependency-free, and only
/// a bucket name: true key identity is the embedded string checked on read.
[[nodiscard]] std::uint64_t fnv1a64(const std::string& s);

/// 16-hex-digit lowercase form of `h` (entry/lock/intent file stem).
[[nodiscard]] std::string hex64(std::uint64_t h);

// ---------------------------------------------------------------------------
// Offline inspection / repair (memsched_cachectl, tests). These take only a
// directory — entry validity is self-contained (embedded key string, CRCs).

/// Structural verdict on one entry file.
struct EntryCheck {
  std::string path;
  std::string point_name;  ///< decoded from the entry (valid entries only)
  std::uint64_t bytes = 0;
  bool ok = false;
  std::string error;  ///< parse/CRC/key-mismatch diagnosis when !ok
};

/// Full scan of a cache directory.
struct CacheScan {
  std::vector<EntryCheck> entries;
  std::vector<std::string> intents;      ///< live or stale intent files
  std::vector<std::string> tmp_orphans;  ///< *.tmp.* files under objects/
  std::vector<std::string> quarantined;  ///< files parked in quarantine/
  std::uint64_t entry_bytes = 0;
  std::size_t corrupt = 0;
};

/// Validates one entry file end to end: frame parse, section CRCs, schema
/// version, and filename-matches-embedded-key. Never throws.
[[nodiscard]] EntryCheck check_entry_file(const std::string& path);

/// Walks the directory and validates every entry. Never throws; an
/// unreadable directory yields an empty scan.
[[nodiscard]] CacheScan scan_cache(const std::string& dir);

struct FsckResult {
  std::size_t entries_quarantined = 0;
  std::size_t tmp_quarantined = 0;
  std::size_t intents_removed = 0;
};

/// Repairs the directory: corrupt entries → quarantine/; orphaned tmp files
/// and intents older than `lease_seconds` (their writers are dead — a live
/// writer holds the entry flock, which fsck tests) → quarantine/ / removed.
FsckResult fsck_cache(const std::string& dir, double lease_seconds);

/// Deletes entries and quarantined files older than `max_age_seconds`.
/// Returns the number of files removed.
std::size_t gc_cache(const std::string& dir, double max_age_seconds);

}  // namespace memsched::cache
