// Cache hierarchy: per-core L1I/L1D, shared L2, L2 MSHRs, writeback queue.
//
// Reproduces Table 1: 64 KB 2-way L1I/L1D per core (1-cycle inst, 3-cycle
// data hit), one shared 4 MB 4-way L2 with 15-cycle hit latency, MSHRs of
// 8 (inst) / 32 (data) / 64 (L2). State updates happen at access time; the
// L2 MSHR file tracks in-flight DRAM fills and merges secondary misses.
// Write-back, write-allocate at both levels; dirty L2 victims go to the
// memory controller through a writeback queue drained once per bus cycle.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "cache/cache.hpp"
#include "cache/mshr.hpp"
#include "cache/prefetcher.hpp"
#include "mc/controller.hpp"
#include "util/types.hpp"

namespace memsched::ckpt {
class Writer;
class Reader;
}  // namespace memsched::ckpt

namespace memsched::cache {

/// Per-core region description for checkpoint-style cache warming: the
/// hierarchy is pre-filled to steady-state occupancy (L2 full of footprint
/// lines at the app's dirty rate, L1s holding the hot/code sets) so short
/// measured runs start from the state a long-running program would have.
struct WarmSpec {
  Addr footprint_base = 0;
  std::uint64_t footprint_bytes = 0;
  double dirty_share = 0.0;  ///< probability a prefilled footprint line is dirty
  Addr hot_base = 0;
  std::uint64_t hot_bytes = 0;
  double hot_dirty_share = 0.0;
  Addr code_base = 0;
  std::uint64_t code_bytes = 0;
};

struct HierarchyConfig {
  CacheConfig l1i{.size_bytes = 64 * 1024, .ways = 2, .hit_latency_cpu = 1, .name = "L1I"};
  CacheConfig l1d{.size_bytes = 64 * 1024, .ways = 2, .hit_latency_cpu = 3, .name = "L1D"};
  CacheConfig l2{.size_bytes = 4ull * 1024 * 1024, .ways = 4, .hit_latency_cpu = 15, .name = "L2"};
  std::uint32_t l2_mshr_entries = 64;
  std::uint32_t cpu_ratio = 8;        ///< CPU cycles per bus tick
  std::uint32_t fill_return_cpu = 3;  ///< L2->L1->core return path on a DRAM fill
  PrefetchConfig prefetch{};          ///< L2 stream prefetcher (off by default)
};

/// Where a load/ifetch was satisfied, or why it could not proceed.
enum class AccessOutcome {
  kHitL1,   ///< done_cpu set
  kHitL2,   ///< done_cpu set
  kMiss,    ///< fill in flight; waiter token will be called back
  kRetry,   ///< L2 MSHR full — retry next cycle (back-pressure)
};

struct AccessReply {
  AccessOutcome outcome = AccessOutcome::kHitL1;
  CpuCycle done_cpu = 0;  ///< valid for kHitL1/kHitL2
};

class CacheHierarchy {
 public:
  /// Called when a DRAM fill completes, once per waiter registered on the
  /// line. `done_cpu` is the cycle the data reaches the core.
  using FillCallback = std::function<void(std::uint64_t waiter_token, CpuCycle done_cpu)>;

  CacheHierarchy(const HierarchyConfig& cfg, std::uint32_t core_count,
                 mc::MemoryController& controller);

  void set_fill_callback(FillCallback cb) { fill_cb_ = std::move(cb); }

  /// Data load by `core`. On kMiss the waiter token is remembered and the
  /// fill callback fires when the line returns.
  AccessReply load(CoreId core, Addr addr, CpuCycle now_cpu, std::uint64_t waiter_token);

  /// Data store (write-allocate). Returns false when back-pressured — retry
  /// next cycle. If the store misses and `waiter_token` is given, the fill
  /// callback fires when the line arrives (used by the core model to retire
  /// store-queue entries); L1-hit stores never call back.
  bool store(CoreId core, Addr addr, std::uint64_t waiter_token = kNoWaiterToken);

  /// Public sentinel for "no completion callback wanted".
  static constexpr std::uint64_t kNoWaiterToken = ~std::uint64_t{0};

  /// Instruction fetch by `core` (same protocol as load).
  AccessReply ifetch(CoreId core, Addr addr, CpuCycle now_cpu, std::uint64_t waiter_token);

  /// Functional (timing-free) access for the sampled engine's fast-forward:
  /// keeps tag/LRU/dirty state warm without MSHRs, DRAM traffic, statistics
  /// or writebacks — an L1 miss touches L2, a miss at either level allocates
  /// via warm_insert (victims dropped). Must not be called while a fill for
  /// the line is in flight; the sampled engine drains the system first.
  void functional_touch(CoreId core, Addr addr, bool is_write, bool is_ifetch);

  /// Once per bus cycle: dispatch pending MSHR fills and drain writebacks
  /// into the memory controller (both are back-pressured by its buffer).
  void tick(Tick now);

  /// Earliest tick > now at which tick() could do anything: now + 1 while
  /// undispatched MSHR entries or queued writebacks retry against the
  /// controller each cycle, kNeverTick otherwise (dispatched fills complete
  /// through the controller's completion path, not through tick()).
  [[nodiscard]] Tick next_activity_tick(Tick now) const {
    return l2_mshr_.any_undispatched() || !writeback_q_.empty() ? now + 1 : kNeverTick;
  }

  /// Number of L2-MSHR fills currently in flight.
  [[nodiscard]] std::uint32_t fills_in_flight() const { return l2_mshr_.in_use(); }
  [[nodiscard]] std::size_t writeback_queue_depth() const { return writeback_q_.size(); }
  [[nodiscard]] bool idle() const { return l2_mshr_.in_use() == 0 && writeback_q_.empty(); }

  [[nodiscard]] const StreamPrefetcher& prefetcher() const { return prefetcher_; }
  [[nodiscard]] std::uint64_t prefetches_issued() const { return pf_issued_; }
  [[nodiscard]] std::uint64_t prefetches_useful() const { return pf_useful_; }

  [[nodiscard]] const SetAssocCache& l1i(CoreId core) const { return l1i_[core]; }
  [[nodiscard]] const SetAssocCache& l1d(CoreId core) const { return l1d_[core]; }
  [[nodiscard]] const SetAssocCache& l2() const { return l2_; }
  [[nodiscard]] const MshrFile& l2_mshr() const { return l2_mshr_; }

  void reset();

  /// Pre-warm the hierarchy per the specs (one per core); see WarmSpec.
  void warm(const std::vector<WarmSpec>& specs, std::uint64_t seed);

  /// Zero all statistics (cache hit/miss counters) without touching state.
  void reset_stats();

  // --- checkpoint/restore (caches, MSHRs, prefetcher, writeback queue) ---
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  /// Shared L2 leg of a miss from either L1. Returns the reply; registers
  /// `waiter_token` when a DRAM fill is needed (unless it is kNoWaiterToken).
  AccessReply l2_access(CoreId core, Addr line, bool is_write, CpuCycle now_cpu,
                        std::uint64_t waiter_token);

  /// Insert a (dirty) L1 victim into L2; dirty L2 victims join writeback_q_.
  void l2_insert_writeback(CoreId core, Addr victim_line);

  /// Train the stream prefetcher on a demand L2 miss and allocate
  /// MSHR-tracked prefetch fills for its predictions.
  void issue_prefetches(CoreId core, Addr miss_line);

  void on_dram_fill(const mc::Request& req, Tick done_tick);

  HierarchyConfig cfg_;
  mc::MemoryController& controller_;
  std::vector<SetAssocCache> l1i_;
  std::vector<SetAssocCache> l1d_;
  SetAssocCache l2_;
  MshrFile l2_mshr_;
  StreamPrefetcher prefetcher_;
  std::uint64_t pf_issued_ = 0;
  std::uint64_t pf_useful_ = 0;
  std::deque<std::pair<CoreId, Addr>> writeback_q_;
  FillCallback fill_cb_;
  std::vector<std::uint64_t> scratch_waiters_;
  std::uint64_t wb_enqueued_ = 0;
};

}  // namespace memsched::cache
