#include "cache/hierarchy.hpp"

#include "ckpt/snapshot.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace memsched::cache {

CacheHierarchy::CacheHierarchy(const HierarchyConfig& cfg, std::uint32_t core_count,
                               mc::MemoryController& controller)
    : cfg_(cfg),
      controller_(controller),
      l2_(cfg.l2),
      l2_mshr_(cfg.l2_mshr_entries),
      prefetcher_(cfg.prefetch, core_count) {
  MEMSCHED_ASSERT(core_count > 0, "hierarchy needs at least one core");
  l1i_.reserve(core_count);
  l1d_.reserve(core_count);
  for (std::uint32_t c = 0; c < core_count; ++c) {
    l1i_.emplace_back(cfg.l1i);
    l1d_.emplace_back(cfg.l1d);
  }
  controller_.set_read_callback(
      [this](const mc::Request& req, Tick done) { on_dram_fill(req, done); });
}

AccessReply CacheHierarchy::l2_access(CoreId core, Addr line, bool is_write,
                                      CpuCycle now_cpu, std::uint64_t waiter_token) {
  // A fill already in flight for this line? Merge into its MSHR entry.
  if (MshrEntry* entry = l2_mshr_.find(line)) {
    if (entry->prefetch) {
      // A demand access caught up with an in-flight prefetch: count it
      // useful and hand the entry over to demand accounting.
      entry->prefetch = false;
      ++pf_useful_;
    }
    if (waiter_token != kNoWaiterToken) entry->waiters.push_back(waiter_token);
    l2_mshr_.count_merge();
    return {.outcome = AccessOutcome::kMiss, .done_cpu = 0};
  }

  bool was_pf = false;
  if (l2_.try_hit(line, is_write, &was_pf)) {
    pf_useful_ += was_pf;
    return {.outcome = AccessOutcome::kHitL2,
            .done_cpu = now_cpu + l2_.config().hit_latency_cpu};
  }

  // True L2 miss: needs an MSHR entry to track the DRAM fill. Check the
  // resource *before* mutating any cache state so a kRetry is side-effect
  // free.
  if (l2_mshr_.full()) return {.outcome = AccessOutcome::kRetry, .done_cpu = 0};

  const AccessResult r = l2_.access(line, is_write);
  if (r.writeback_line) {
    writeback_q_.emplace_back(core, *r.writeback_line);
    ++wb_enqueued_;
  }
  MshrEntry* entry = l2_mshr_.allocate(line, core);
  MEMSCHED_ASSERT(entry != nullptr, "MSHR allocation failed despite capacity check");
  if (waiter_token != kNoWaiterToken) entry->waiters.push_back(waiter_token);
  issue_prefetches(core, line);
  return {.outcome = AccessOutcome::kMiss, .done_cpu = 0};
}

void CacheHierarchy::issue_prefetches(CoreId core, Addr miss_line) {
  if (!cfg_.prefetch.enabled) return;
  for (const Addr target : prefetcher_.train(core, miss_line)) {
    if (l2_mshr_.full()) break;
    if (l2_.probe(target) || l2_mshr_.find(target) != nullptr) continue;
    // Fill-at-access convention: the line enters L2 now, tagged prefetched;
    // the MSHR entry carries the fill until data actually arrives.
    const AccessResult r = l2_.access(target, false);
    if (r.writeback_line) {
      writeback_q_.emplace_back(core, *r.writeback_line);
      ++wb_enqueued_;
    }
    l2_.mark_prefetched(target);
    MshrEntry* entry = l2_mshr_.allocate(target, core);
    MEMSCHED_ASSERT(entry != nullptr, "prefetch MSHR allocation failed");
    entry->prefetch = true;
    ++pf_issued_;
  }
}

AccessReply CacheHierarchy::load(CoreId core, Addr addr, CpuCycle now_cpu,
                                 std::uint64_t waiter_token) {
  const Addr line = line_base(addr);
  SetAssocCache& l1 = l1d_[core];
  if (l1.try_hit(line, false)) {
    return {.outcome = AccessOutcome::kHitL1,
            .done_cpu = now_cpu + l1.config().hit_latency_cpu};
  }
  const AccessReply reply = l2_access(core, line, false, now_cpu, waiter_token);
  if (reply.outcome == AccessOutcome::kRetry) return reply;
  // Commit the L1 fill; a dirty L1 victim is written back into L2.
  const AccessResult r1 = l1.access(line, false);
  if (r1.writeback_line) l2_insert_writeback(core, *r1.writeback_line);
  return reply;
}

bool CacheHierarchy::store(CoreId core, Addr addr, std::uint64_t waiter_token) {
  const Addr line = line_base(addr);
  SetAssocCache& l1 = l1d_[core];
  if (l1.try_hit(line, true)) return true;
  // Write-allocate: the line is fetched from below like a load; the store
  // queue holds the entry until the fill returns (waiter_token, if any).
  const AccessReply reply = l2_access(core, line, false, 0, waiter_token);
  if (reply.outcome == AccessOutcome::kRetry) return false;
  const AccessResult r1 = l1.access(line, true);
  if (r1.writeback_line) l2_insert_writeback(core, *r1.writeback_line);
  return true;
}

AccessReply CacheHierarchy::ifetch(CoreId core, Addr addr, CpuCycle now_cpu,
                                   std::uint64_t waiter_token) {
  const Addr line = line_base(addr);
  SetAssocCache& l1 = l1i_[core];
  if (l1.try_hit(line, false)) {
    return {.outcome = AccessOutcome::kHitL1,
            .done_cpu = now_cpu + l1.config().hit_latency_cpu};
  }
  const AccessReply reply = l2_access(core, line, false, now_cpu, waiter_token);
  if (reply.outcome == AccessOutcome::kRetry) return reply;
  l1.access(line, false);  // instruction lines are never dirty
  return reply;
}

void CacheHierarchy::functional_touch(CoreId core, Addr addr, bool is_write,
                                      bool is_ifetch) {
  const Addr line = line_base(addr);
  SetAssocCache& l1 = is_ifetch ? l1i_[core] : l1d_[core];
  if (!l1.warm_touch(line, is_write)) {
    // Would miss to L2: keep its recency/contents warm the same way. Victims
    // are dropped at both levels (warm path), which slightly under-states
    // L2 dirtiness across a fast-forward — the per-interval detailed warmup
    // re-establishes the write-back pipeline before anything is measured.
    l2_.warm_insert(line, /*dirty=*/false);
  }
}

void CacheHierarchy::l2_insert_writeback(CoreId core, Addr victim_line) {
  // Dirty L1 victim lands in L2 (allocating if it has since been evicted —
  // non-inclusive hierarchy); a dirty L2 victim continues to DRAM.
  const AccessResult r = l2_.access(victim_line, true);
  if (r.writeback_line) {
    writeback_q_.emplace_back(core, *r.writeback_line);
    ++wb_enqueued_;
  }
}

void CacheHierarchy::tick(Tick now) {
  // Dispatch MSHR fills the controller previously back-pressured.
  l2_mshr_.for_each_undispatched([&](MshrEntry& e) {
    if (controller_.enqueue_read(e.requester, e.line_addr, now, e.prefetch))
      e.dispatched = true;
  });
  // Drain writebacks while the controller accepts them.
  while (!writeback_q_.empty()) {
    const auto& [core, line] = writeback_q_.front();
    if (!controller_.enqueue_write(core, line, now)) break;
    writeback_q_.pop_front();
  }
}

void CacheHierarchy::on_dram_fill(const mc::Request& req, Tick done_tick) {
  scratch_waiters_.clear();
  if (!l2_mshr_.release(req.line_addr, scratch_waiters_)) {
    // A read the hierarchy never tracked (e.g. issued directly by a test
    // driving the controller); nothing to wake.
    return;
  }
  const CpuCycle done_cpu = done_tick * cfg_.cpu_ratio + cfg_.fill_return_cpu;
  if (fill_cb_) {
    for (const std::uint64_t token : scratch_waiters_) fill_cb_(token, done_cpu);
  }
}

void CacheHierarchy::warm(const std::vector<WarmSpec>& specs, std::uint64_t seed) {
  MEMSCHED_ASSERT(specs.size() == l1d_.size(), "one WarmSpec per core");
  util::Xoshiro256 rng(seed ^ 0x5aa5c0deULL);

  // Phase 1: fill the shared L2 with random footprint lines, round-robin
  // across cores so each gets a proportional share. 3x the line count gives
  // LRU enough churn to populate every way of every set.
  const std::uint64_t l2_lines = cfg_.l2.size_bytes / kLineBytes;
  const auto cores = static_cast<std::uint32_t>(specs.size());
  for (std::uint64_t i = 0; i < 3 * l2_lines; ++i) {
    const WarmSpec& w = specs[i % cores];
    if (w.footprint_bytes < kLineBytes) continue;
    const std::uint64_t lines = w.footprint_bytes / kLineBytes;
    const Addr line = w.footprint_base + rng.below(lines) * kLineBytes;
    l2_.warm_insert(line, rng.chance(w.dirty_share));
  }

  // Phase 2: per-core hot and code sets, most-recently-used, into both
  // levels (so they survive phase-1 churn and L1 misses on them hit L2).
  for (std::uint32_t c = 0; c < cores; ++c) {
    const WarmSpec& w = specs[c];
    for (std::uint64_t off = 0; off + kLineBytes <= w.hot_bytes; off += kLineBytes) {
      const Addr line = w.hot_base + off;
      const bool dirty = rng.chance(w.hot_dirty_share);
      l2_.warm_insert(line, false);
      l1d_[c].warm_insert(line, dirty);
    }
    for (std::uint64_t off = 0; off + kLineBytes <= w.code_bytes; off += kLineBytes) {
      const Addr line = w.code_base + off;
      l2_.warm_insert(line, false);
      l1i_[c].warm_insert(line, false);
    }
  }
}

void CacheHierarchy::reset_stats() {
  for (auto& c : l1i_) c.reset_stats();
  for (auto& c : l1d_) c.reset_stats();
  l2_.reset_stats();
}

void CacheHierarchy::reset() {
  prefetcher_.reset();
  pf_issued_ = 0;
  pf_useful_ = 0;
  for (auto& c : l1i_) c.reset();
  for (auto& c : l1d_) c.reset();
  l2_.reset();
  l2_mshr_.reset();
  writeback_q_.clear();
  wb_enqueued_ = 0;
}

void CacheHierarchy::save_state(ckpt::Writer& w) const {
  w.put_u64(l1i_.size());
  for (const SetAssocCache& c : l1i_) c.save_state(w);
  for (const SetAssocCache& c : l1d_) c.save_state(w);
  l2_.save_state(w);
  l2_mshr_.save_state(w);
  prefetcher_.save_state(w);
  w.put_u64(pf_issued_);
  w.put_u64(pf_useful_);
  w.put_u64(writeback_q_.size());
  for (const auto& [core, line] : writeback_q_) {
    w.put_u32(core);
    w.put_u64(line);
  }
  w.put_u64(wb_enqueued_);
}

void CacheHierarchy::load_state(ckpt::Reader& r) {
  const std::uint64_t ncores = r.get_u64();
  if (ncores != l1i_.size()) {
    throw ckpt::SnapshotError("snapshot: hierarchy core count mismatch");
  }
  for (SetAssocCache& c : l1i_) c.load_state(r);
  for (SetAssocCache& c : l1d_) c.load_state(r);
  l2_.load_state(r);
  l2_mshr_.load_state(r);
  prefetcher_.load_state(r);
  pf_issued_ = r.get_u64();
  pf_useful_ = r.get_u64();
  writeback_q_.clear();
  const std::uint64_t nwb = r.get_u64();
  for (std::uint64_t i = 0; i < nwb; ++i) {
    const CoreId core = r.get_u32();
    const Addr line = r.get_u64();
    writeback_q_.emplace_back(core, line);
  }
  wb_enqueued_ = r.get_u64();
}

}  // namespace memsched::cache
