// Sequential stream prefetcher at the L2 (extension; the paper's system
// has none, so it defaults off).
//
// Classic next-N-lines design: a small per-core table tracks recent miss
// streams; a miss that extends a tracked stream (last line + 1) raises its
// confidence and, once confident, emits prefetch candidates for the next
// `degree` lines. Prefetch requests travel the normal L2-MSHR -> memory
// controller path but are tagged so the scheduler serves them strictly
// after demand reads.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace memsched::ckpt {
class Writer;
class Reader;
}  // namespace memsched::ckpt

namespace memsched::cache {

struct PrefetchConfig {
  bool enabled = false;
  std::uint32_t degree = 2;         ///< lines prefetched ahead per trigger
  std::uint32_t table_entries = 8;  ///< tracked streams per core
  std::uint32_t min_confidence = 1; ///< consecutive hits before issuing
};

class StreamPrefetcher {
 public:
  StreamPrefetcher(const PrefetchConfig& cfg, std::uint32_t core_count);

  /// Observe a demand L2 miss; returns the line addresses to prefetch
  /// (empty when disabled or the stream is not yet confident).
  std::vector<Addr> train(CoreId core, Addr miss_line);

  void reset();

  [[nodiscard]] const PrefetchConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t triggers() const { return triggers_; }

  // --- checkpoint/restore ---
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  struct StreamEntry {
    Addr next_line = 0;   ///< expected next miss
    std::uint32_t confidence = 0;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  PrefetchConfig cfg_;
  std::vector<std::vector<StreamEntry>> table_;  ///< [core][entry]
  std::uint64_t lru_clock_ = 0;
  std::uint64_t triggers_ = 0;
};

}  // namespace memsched::cache
