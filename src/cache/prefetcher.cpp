#include "cache/prefetcher.hpp"

#include "util/assert.hpp"

namespace memsched::cache {

StreamPrefetcher::StreamPrefetcher(const PrefetchConfig& cfg, std::uint32_t core_count)
    : cfg_(cfg) {
  MEMSCHED_ASSERT(cfg.table_entries > 0, "prefetcher needs at least one entry");
  table_.resize(core_count);
  for (auto& t : table_) t.resize(cfg.table_entries);
}

std::vector<Addr> StreamPrefetcher::train(CoreId core, Addr miss_line) {
  std::vector<Addr> out;
  if (!cfg_.enabled) return out;
  MEMSCHED_ASSERT(core < table_.size(), "train from unknown core");
  auto& streams = table_[core];

  // Does this miss extend a tracked stream?
  for (StreamEntry& e : streams) {
    if (!e.valid || e.next_line != miss_line) continue;
    e.lru = ++lru_clock_;
    e.next_line = miss_line + kLineBytes;
    if (++e.confidence >= cfg_.min_confidence) {
      ++triggers_;
      out.reserve(cfg_.degree);
      for (std::uint32_t d = 1; d <= cfg_.degree; ++d) {
        out.push_back(miss_line + static_cast<Addr>(d) * kLineBytes);
      }
    }
    return out;
  }

  // New stream: allocate (LRU victim), expecting the next sequential line.
  StreamEntry* victim = &streams[0];
  for (StreamEntry& e : streams) {
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (e.lru < victim->lru) victim = &e;
  }
  victim->valid = true;
  victim->next_line = miss_line + kLineBytes;
  victim->confidence = 0;
  victim->lru = ++lru_clock_;
  return out;
}

void StreamPrefetcher::reset() {
  for (auto& t : table_) {
    for (StreamEntry& e : t) e = StreamEntry{};
  }
  lru_clock_ = 0;
  triggers_ = 0;
}

}  // namespace memsched::cache
