#include "cache/prefetcher.hpp"

#include "ckpt/snapshot.hpp"
#include "util/assert.hpp"

namespace memsched::cache {

StreamPrefetcher::StreamPrefetcher(const PrefetchConfig& cfg, std::uint32_t core_count)
    : cfg_(cfg) {
  MEMSCHED_ASSERT(cfg.table_entries > 0, "prefetcher needs at least one entry");
  table_.resize(core_count);
  for (auto& t : table_) t.resize(cfg.table_entries);
}

std::vector<Addr> StreamPrefetcher::train(CoreId core, Addr miss_line) {
  std::vector<Addr> out;
  if (!cfg_.enabled) return out;
  MEMSCHED_ASSERT(core < table_.size(), "train from unknown core");
  auto& streams = table_[core];

  // Does this miss extend a tracked stream?
  for (StreamEntry& e : streams) {
    if (!e.valid || e.next_line != miss_line) continue;
    e.lru = ++lru_clock_;
    e.next_line = miss_line + kLineBytes;
    if (++e.confidence >= cfg_.min_confidence) {
      ++triggers_;
      out.reserve(cfg_.degree);
      for (std::uint32_t d = 1; d <= cfg_.degree; ++d) {
        out.push_back(miss_line + static_cast<Addr>(d) * kLineBytes);
      }
    }
    return out;
  }

  // New stream: allocate (LRU victim), expecting the next sequential line.
  StreamEntry* victim = &streams[0];
  for (StreamEntry& e : streams) {
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (e.lru < victim->lru) victim = &e;
  }
  victim->valid = true;
  victim->next_line = miss_line + kLineBytes;
  victim->confidence = 0;
  victim->lru = ++lru_clock_;
  return out;
}

void StreamPrefetcher::reset() {
  for (auto& t : table_) {
    for (StreamEntry& e : t) e = StreamEntry{};
  }
  lru_clock_ = 0;
  triggers_ = 0;
}

void StreamPrefetcher::save_state(ckpt::Writer& w) const {
  w.put_u64(table_.size());
  for (const auto& per_core : table_) {
    w.put_u64(per_core.size());
    for (const StreamEntry& e : per_core) {
      w.put_u64(e.next_line);
      w.put_u32(e.confidence);
      w.put_u64(e.lru);
      w.put_bool(e.valid);
    }
  }
  w.put_u64(lru_clock_);
  w.put_u64(triggers_);
}

void StreamPrefetcher::load_state(ckpt::Reader& r) {
  const std::uint64_t ncores = r.get_u64();
  if (ncores != table_.size()) {
    throw ckpt::SnapshotError("snapshot: prefetcher table mismatch");
  }
  for (auto& per_core : table_) {
    const std::uint64_t nent = r.get_u64();
    if (nent != per_core.size()) {
      throw ckpt::SnapshotError("snapshot: prefetcher table mismatch");
    }
    for (StreamEntry& e : per_core) {
      e.next_line = r.get_u64();
      e.confidence = r.get_u32();
      e.lru = r.get_u64();
      e.valid = r.get_bool();
    }
  }
  lru_clock_ = r.get_u64();
  triggers_ = r.get_u64();
}

}  // namespace memsched::cache
