// Thread-parallel job runner for the benchmark harnesses.
//
// Each simulation run is strictly single-threaded (cycle-level simulators
// carry far too much shared state per cycle to parallelise internally), but
// independent (workload, scheme) runs parallelise perfectly. This is a
// minimal work-stealing-free pool: an atomic index hands out job numbers.
#pragma once

#include <cstddef>
#include <functional>

namespace memsched::sim {

/// Number of worker threads to use by default (hardware concurrency,
/// at least 1).
unsigned default_thread_count();

/// Invokes fn(0) .. fn(n-1) across `threads` workers. fn must be safe to
/// call concurrently for distinct indices. Exceptions from fn propagate
/// (first one wins) after all workers have stopped.
void parallel_for(std::size_t n, unsigned threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace memsched::sim
