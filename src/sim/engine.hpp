// Simulation engine selection.
//
// The simulator has two time-advancement strategies that produce
// byte-identical results:
//
//   * kCycle — the reference oracle: every bus tick is visited and every
//     component's tick() runs, whether or not anything can happen. Simple,
//     obviously correct, slow when the system is idle.
//   * kSkip — next-event fast-forward: after a visited tick, each component
//     reports the earliest tick at which its state can change
//     (next_activity_tick) and the kernel jumps straight there. Skipped
//     ticks are provably no-ops, so statistics, latencies, power and even
//     RNG streams match the oracle bit for bit; tests/test_engine_equiv.cpp
//     enforces this differentially.
//
// The skip engine never jumps past a watchdog poll boundary or an epoch
// boundary, so watchdogs and scheduler on_epoch feeds fire at exactly the
// same ticks as under the oracle.
//
// A third strategy trades exactness for wall clock:
//
//   * kSampled — SMARTS-style interval sampling: only K short measurement
//     intervals (each preceded by a detailed warmup) are simulated in
//     detail; between them the instruction streams are fast-forwarded
//     functionally (caches stay warm, no timing). Results are *estimates*:
//     each headline metric is reported as a per-interval mean with a 95%
//     Student-t confidence interval (RunResult::sampling), and the
//     differential suite (tests/test_sampled_equiv.cpp) measures the actual
//     error against the exact engines. See docs/performance.md.
#pragma once

#include <stdexcept>
#include <string>

namespace memsched::sim {

enum class Engine {
  kCycle,    ///< per-cycle reference oracle
  kSkip,     ///< next-event fast-forward (default)
  kSampled,  ///< statistical interval sampling (approximate, with CIs)
};

[[nodiscard]] inline const char* engine_name(Engine e) {
  switch (e) {
    case Engine::kCycle: return "cycle";
    case Engine::kSkip: return "skip";
    case Engine::kSampled: return "sampled";
  }
  return "?";
}

/// Parses "cycle" / "skip" / "sampled"; throws std::invalid_argument otherwise.
[[nodiscard]] inline Engine engine_from_string(const std::string& s) {
  if (s == "cycle") return Engine::kCycle;
  if (s == "skip") return Engine::kSkip;
  if (s == "sampled") return Engine::kSampled;
  throw std::invalid_argument("unknown engine '" + s +
                              "' (expected cycle|skip|sampled)");
}

}  // namespace memsched::sim
