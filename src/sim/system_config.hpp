// Whole-system configuration. Defaults reproduce the paper's Table 1.
#pragma once

#include <cstdint>
#include <string>

#include "cache/hierarchy.hpp"
#include "cpu/core_model.hpp"
#include "dram/address_map.hpp"
#include "dram/power.hpp"
#include "dram/timing.hpp"
#include "mc/controller.hpp"
#include "mc/fault_injector.hpp"
#include "sim/engine.hpp"
#include "util/types.hpp"
#include "verif/invariant_auditor.hpp"

namespace memsched::sim {

/// Parameters of the sampled engine (Engine::kSampled); ignored otherwise.
/// The run's instruction budget is split into `intervals` equal chunks per
/// core; of each chunk only `warmup_insts + interval_insts` are simulated in
/// detail (the warmup re-establishes queue/MSHR/ROB state after the
/// functional fast-forward, then the interval is measured) and the remainder
/// is fast-forwarded functionally with caches kept warm.
struct SamplingConfig {
  // Defaults match the configuration validated by bench/sampled_error_speedup
  // (errors within the stated 95% CIs on the fig2 grid): the measured window
  // must be long enough for the controller queue to regain steady-state
  // depth after each drain, or read latency and row-hit rate are
  // systematically underestimated. At targets below K*(warmup+measure) the
  // run degenerates gracefully to detailed-only execution.
  std::uint32_t intervals = 10;           ///< K — number of measured intervals
  std::uint64_t interval_insts = 20'000;  ///< measured instructions per interval
  std::uint64_t warmup_insts = 10'000;    ///< detailed warmup before each interval

  [[nodiscard]] std::string validate() const {
    if (intervals < 2) return "sampling.intervals must be >= 2 (CIs need variance)";
    if (interval_insts == 0) return "sampling.interval_insts must be nonzero";
    return {};
  }
};

struct SystemConfig {
  std::uint32_t cores = 4;       ///< Table 1: 1/2/4/8 cores
  double cpu_ghz = 3.2;
  std::uint32_t cpu_ratio = 8;   ///< 3.2 GHz CPU / 400 MHz bus

  /// Time-advancement strategy. Results are byte-identical either way (see
  /// sim/engine.hpp and docs/performance.md); kSkip fast-forwards through
  /// provably idle spans, kCycle is the per-tick oracle the differential
  /// tests compare against.
  Engine engine = Engine::kSkip;

  /// Interval-sampling parameters, used only when engine == kSampled.
  SamplingConfig sampling{};

  cpu::CoreConfig core{};
  cache::HierarchyConfig hierarchy{};
  mc::ControllerConfig controller{};
  dram::Timing timing{};
  dram::Organization org{};
  dram::Interleave interleave = dram::Interleave::kHybrid;
  bool bank_xor = false;  ///< permutation-based bank indexing (see AddressMap)
  dram::PowerConfig power{};

  /// Private physical region per core; footprint + hot + code must fit.
  std::uint64_t region_bytes_per_core = 512ull << 20;

  /// Pre-warm caches to steady-state occupancy at construction (see
  /// cache::WarmSpec). Without it, short runs measure cold-cache warmup
  /// instead of steady state.
  bool warm_caches = true;

  /// Epoch (in bus ticks) between on_epoch() profiling feeds to the
  /// scheduler — used by the online-ME extension (~10 us by default).
  Tick epoch_ticks = 4096;

  /// Invariant audit layer (src/verif): protocol + lifecycle checkers.
  /// Defaults off for benches (opt in with verify=1 / MEMSCHED_VERIFY=1);
  /// the test suite switches it on for every run.
  verif::AuditConfig audit{};

  /// Forward-progress watchdog: if no core commits an instruction for this
  /// many bus ticks, the run throws sim::LivelockError with a controller
  /// state dump instead of spinning to max_ticks. Legitimate memory stalls
  /// are hundreds of ticks; the default window is four orders of magnitude
  /// above that, so it never fires on a healthy run. 0 disables.
  Tick progress_window_ticks = 2'000'000;

  /// Fault injection (chaos testing). Off by default; when disabled no
  /// injector is constructed and the request path is bit-identical to a
  /// build without the hooks.
  mc::FaultConfig fault{};

  [[nodiscard]] double cpu_hz() const { return cpu_ghz * 1e9; }
  [[nodiscard]] double bus_hz() const { return cpu_hz() / cpu_ratio; }

  /// Switch the memory device to another speed grade: installs its timing
  /// and re-derives every clock-domain-dependent parameter (cpu_ratio in
  /// the hierarchy/controller, the controller's 15 ns overhead).
  void apply_speed_grade(const dram::SpeedGrade& grade);

  /// Consistency check; returns an error message or empty string.
  [[nodiscard]] std::string validate() const;

  /// Canonical key=value rendering of every result-affecting field (engine
  /// included — cycle and skip produce identical results, but a snapshot's
  /// visited-tick counter differs, so cross-engine resume must invalidate).
  /// Mixed into snapshot fingerprints; the audit block is deliberately
  /// excluded (verification-only, and checkpointing requires audit off).
  [[nodiscard]] std::string fingerprint() const;
};

}  // namespace memsched::sim
