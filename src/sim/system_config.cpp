#include "sim/system_config.hpp"

namespace memsched::sim {

void SystemConfig::apply_speed_grade(const dram::SpeedGrade& grade) {
  timing = grade.timing;
  cpu_ratio = grade.cpu_ratio;
  hierarchy.cpu_ratio = grade.cpu_ratio;
  controller.cpu_ratio = grade.cpu_ratio;
  controller.overhead_ticks = grade.overhead_ticks;
}

std::string SystemConfig::validate() const {
  if (cores == 0 || cores > 64) return "core count must be in [1, 64]";
  if (cpu_ratio == 0) return "cpu_ratio must be nonzero";
  if (auto err = timing.validate(); !err.empty()) return err;
  if (auto err = org.validate(); !err.empty()) return err;
  if (static_cast<std::uint64_t>(cores) * region_bytes_per_core > org.capacity_bytes)
    return "per-core regions exceed DRAM capacity";
  if (hierarchy.cpu_ratio != cpu_ratio || controller.cpu_ratio != cpu_ratio)
    return "cpu_ratio mismatch between hierarchy/controller and system";
  if (epoch_ticks == 0) return "epoch_ticks must be nonzero";
  if (auto err = fault.validate(); !err.empty()) return err;
  return {};
}

}  // namespace memsched::sim
