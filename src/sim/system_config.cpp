#include "sim/system_config.hpp"

#include <sstream>

namespace memsched::sim {

void SystemConfig::apply_speed_grade(const dram::SpeedGrade& grade) {
  timing = grade.timing;
  cpu_ratio = grade.cpu_ratio;
  hierarchy.cpu_ratio = grade.cpu_ratio;
  controller.cpu_ratio = grade.cpu_ratio;
  controller.overhead_ticks = grade.overhead_ticks;
}

std::string SystemConfig::validate() const {
  if (cores == 0 || cores > 64) return "core count must be in [1, 64]";
  if (cpu_ratio == 0) return "cpu_ratio must be nonzero";
  if (auto err = timing.validate(); !err.empty()) return err;
  if (auto err = org.validate(); !err.empty()) return err;
  if (static_cast<std::uint64_t>(cores) * region_bytes_per_core > org.capacity_bytes)
    return "per-core regions exceed DRAM capacity";
  if (hierarchy.cpu_ratio != cpu_ratio || controller.cpu_ratio != cpu_ratio)
    return "cpu_ratio mismatch between hierarchy/controller and system";
  if (epoch_ticks == 0) return "epoch_ticks must be nonzero";
  if (auto err = fault.validate(); !err.empty()) return err;
  if (engine == Engine::kSampled) {
    if (auto err = sampling.validate(); !err.empty()) return err;
    if (fault.enabled)
      return "engine=sampled is incompatible with fault injection: functional "
             "fast-forward skips the faulted request path, so the estimates "
             "would be meaningless";
  }
  return {};
}

std::string SystemConfig::fingerprint() const {
  std::ostringstream os;
  os.precision(17);  // doubles render losslessly
  os << "cores=" << cores << ";cpu_ghz=" << cpu_ghz << ";cpu_ratio=" << cpu_ratio
     << ";engine=" << engine_name(engine);
  os << ";core=" << core.issue_width << ',' << core.rob_entries << ','
     << core.lq_entries << ',' << core.sq_entries << ',' << core.l1d_mshr << ','
     << core.l1i_mshr << ',' << (core.model_ifetch ? 1 : 0) << ','
     << core.insts_per_fetch_line;
  const auto cache_fp = [&os](const char* key, const cache::CacheConfig& c) {
    os << ';' << key << '=' << c.size_bytes << ',' << c.ways << ',' << c.line_bytes
       << ',' << c.hit_latency_cpu;
  };
  cache_fp("l1i", hierarchy.l1i);
  cache_fp("l1d", hierarchy.l1d);
  cache_fp("l2", hierarchy.l2);
  os << ";hier=" << hierarchy.l2_mshr_entries << ',' << hierarchy.cpu_ratio << ','
     << hierarchy.fill_return_cpu;
  os << ";pf=" << (hierarchy.prefetch.enabled ? 1 : 0) << ','
     << hierarchy.prefetch.degree << ',' << hierarchy.prefetch.table_entries << ','
     << hierarchy.prefetch.min_confidence;
  os << ";mc=" << controller.buffer_entries << ',' << controller.overhead_ticks << ','
     << controller.drain_high << ',' << controller.drain_low << ','
     << controller.cpu_ratio << ',' << (controller.forward_writes ? 1 : 0) << ','
     << (controller.combine_writes ? 1 : 0) << ','
     << static_cast<int>(controller.page_policy);
  os << ";timing=" << timing.tCL << ',' << timing.tRCD << ',' << timing.tRP << ','
     << timing.tRAS << ',' << timing.tWL << ',' << timing.tWR << ',' << timing.tWTR
     << ',' << timing.tRTW << ',' << timing.tRTP << ',' << timing.tRRD << ','
     << timing.tFAW << ',' << timing.tCCD << ',' << timing.tRTRS << ','
     << timing.burst_cycles << ',' << (timing.refresh_enabled ? 1 : 0) << ','
     << timing.tREFI << ',' << timing.tRFC;
  os << ";org=" << org.channels << ',' << org.dimms_per_channel << ','
     << org.banks_per_dimm << ',' << org.row_bytes << ',' << org.capacity_bytes;
  os << ";map=" << static_cast<int>(interleave) << ',' << (bank_xor ? 1 : 0);
  os << ";power=" << power.vdd << ',' << power.idd0 << ',' << power.idd2n << ','
     << power.idd3n << ',' << power.idd4r << ',' << power.idd4w << ',' << power.idd5
     << ',' << power.devices_per_rank << ',' << power.ranks_per_channel;
  os << ";region=" << region_bytes_per_core << ";warm=" << (warm_caches ? 1 : 0)
     << ";epoch=" << epoch_ticks << ";watchdog=" << progress_window_ticks;
  // Appended only for the sampled engine so every exact-engine fingerprint
  // (and thus every existing snapshot) is byte-identical to before.
  if (engine == Engine::kSampled) {
    os << ";sampling=" << sampling.intervals << ',' << sampling.interval_insts
       << ',' << sampling.warmup_insts;
  }
  os << ";fault=" << (fault.enabled ? 1 : 0) << ',' << fault.seed << ','
     << fault.drop_read_prob << ',' << fault.drop_write_prob << ',' << fault.dup_prob
     << ',' << fault.delay_prob << ',' << fault.delay_ticks_max << ','
     << fault.stall_prob << ',' << fault.stall_ticks;
  return os.str();
}

}  // namespace memsched::sim
