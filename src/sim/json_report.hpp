// JSON serialization of experiment results — machine-readable records of
// everything a run measured, for downstream analysis/plotting.
#pragma once

#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "util/json.hpp"

namespace memsched::sim {

/// Full detail of one simulation run (per-core results, controller stats,
/// DRAM energy).
util::Json to_json(const RunResult& result);

/// One workload x scheme evaluation (metrics + per-core vectors + the last
/// slice's raw run).
util::Json to_json(const WorkloadRun& run);

/// The effective system configuration (the bench-header facts, structured).
util::Json to_json(const SystemConfig& config);

}  // namespace memsched::sim
