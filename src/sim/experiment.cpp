#include "sim/experiment.hpp"

#include <algorithm>
#include <cstdio>

#include "core/scheduler_factory.hpp"
#include "sched/policies.hpp"
#include "sim/watchdog.hpp"
#include "util/assert.hpp"
#include "util/json.hpp"

namespace memsched::sim {

namespace {

/// Structured stderr diagnostic for a rejected snapshot: the run still
/// completes (from cycle zero), but the fallback is observable — the sweep
/// orchestrator and CI harvest MEMSCHED_ERROR lines.
void report_snapshot_fallback(const std::string& context, const ckpt::ResumeInfo& info) {
  if (!info.attempted || info.resumed) return;
  util::Json line = util::Json::object();
  line["binary"] = "experiment";
  line["category"] = "snapshot_fallback";
  line["context"] = context;
  line["what"] = info.error;
  std::fprintf(stderr, "MEMSCHED_ERROR %s\n", line.dump(-1).c_str());
  std::fflush(stderr);
}

}  // namespace

Experiment::Experiment(ExperimentConfig cfg) : cfg_(std::move(cfg)) {}

ckpt::CheckpointPolicy Experiment::policy_for(const std::string& context,
                                              ckpt::ResumeInfo* info) const {
  ckpt::CheckpointPolicy p;
  // Degrade to off under audit: the auditor's shadow state is not
  // serialized, and MultiCoreSystem::run rejects the combination outright.
  if (cfg_.ckpt_dir.empty() || cfg_.base.audit.enabled) return p;
  std::string stem = context;
  for (char& ch : stem) {
    if (ch == '/' || ch == ' ') ch = '_';
  }
  p.path = cfg_.ckpt_dir + "/" + stem + ".ckpt";
  p.interval_ticks = cfg_.ckpt_interval;
  p.stop = cfg_.ckpt_stop;
  p.context = context;
  p.resume_info = info;
  return p;
}

SystemConfig Experiment::config_for(std::uint32_t cores) const {
  SystemConfig sc = cfg_.base;
  sc.cores = cores;
  return sc;
}

const core::MeProfile& Experiment::profile(const std::string& app_name) {
  std::lock_guard lock(mu_);
  if (const auto it = profiles_.find(app_name); it != profiles_.end())
    return it->second;

  const trace::AppProfile& app = trace::spec2000_by_name(app_name);
  sched::HitFirstReadFirstScheduler sched;
  MultiCoreSystem sys(config_for(1), {app}, sched, cfg_.profile_seed);
  const std::string ctx = "profile-" + app_name;
  ckpt::ResumeInfo info;
  const RunResult r =
      sys.run(cfg_.profile_insts, cfg_.warmup_insts, cfg_.max_ticks, policy_for(ctx, &info));
  report_snapshot_fallback(ctx, info);
  if (r.hit_tick_limit) {
    throw CycleBudgetError("profiling run for '" + app_name + "' hit the " +
                               std::to_string(cfg_.max_ticks) + "-tick budget",
                           cfg_.max_ticks);
  }
  auto [it, _] = profiles_.emplace(
      app_name,
      core::MeProfile::from_measurement(app_name, r.cores[0].ipc, r.bandwidth_gbs));
  return it->second;
}

double Experiment::single_ipc(const std::string& app_name, std::uint64_t seed) {
  std::lock_guard lock(mu_);
  const auto key = std::make_pair(app_name, seed);
  if (const auto it = single_ipc_.find(key); it != single_ipc_.end())
    return it->second;

  const trace::AppProfile& app = trace::spec2000_by_name(app_name);
  sched::HitFirstReadFirstScheduler sched;
  MultiCoreSystem sys(config_for(1), {app}, sched, seed);
  const std::string ctx = "single-" + app_name + "-" + std::to_string(seed);
  ckpt::ResumeInfo info;
  const RunResult r =
      sys.run(cfg_.eval_insts, cfg_.warmup_insts, cfg_.max_ticks, policy_for(ctx, &info));
  report_snapshot_fallback(ctx, info);
  if (r.hit_tick_limit) {
    throw CycleBudgetError("single-core reference for '" + app_name + "' hit the " +
                               std::to_string(cfg_.max_ticks) + "-tick budget",
                           cfg_.max_ticks);
  }
  single_ipc_[key] = r.cores[0].ipc;
  return single_ipc_[key];
}

core::MeTable Experiment::me_table_for(const Workload& w) {
  std::vector<double> me;
  me.reserve(w.cores());
  for (const trace::AppProfile& app : w.apps())
    me.push_back(profile(app.name).memory_efficiency);
  return core::MeTable(std::move(me));
}

WorkloadRun Experiment::run(const Workload& w, const std::string& scheme_name) {
  const auto apps = w.apps();
  const std::uint32_t n = w.cores();
  const std::uint32_t repeats = std::max(1u, cfg_.eval_repeats);

  core::SchedulerArgs args;
  args.core_count = n;
  args.me = me_table_for(w);
  args.cpu_hz = cfg_.base.cpu_hz();
  args.table_bits = cfg_.table_bits;
  args.epoch_cpu_cycles =
      static_cast<double>(cfg_.base.epoch_ticks) * cfg_.base.cpu_ratio;
  args.ipc_single.reserve(n);
  for (const trace::AppProfile& app : apps)
    args.ipc_single.push_back(single_ipc(app.name, cfg_.eval_seed));

  WorkloadRun out;
  out.workload = w.name;
  out.ipc_multi.assign(n, 0.0);
  out.ipc_single.assign(n, 0.0);
  out.core_read_latency_cpu.assign(n, 0.0);

  for (std::uint32_t rep = 0; rep < repeats; ++rep) {
    const std::uint64_t seed = cfg_.eval_seed + rep * 0x9e3779b9ULL;
    // A fresh scheduler per slice: stateful schemes (RR token, online ME)
    // must not carry state across independent slices.
    sched::SchedulerPtr scheduler = core::make_scheduler(scheme_name, args);
    out.scheme = scheduler->name();

    MultiCoreSystem sys(config_for(n), apps, *scheduler, seed);
    const std::string ctx =
        "eval-" + w.name + "-" + scheme_name + "-rep" + std::to_string(rep);
    ckpt::ResumeInfo info;
    RunResult r =
        sys.run(cfg_.eval_insts, cfg_.warmup_insts, cfg_.max_ticks, policy_for(ctx, &info));
    report_snapshot_fallback(ctx, info);
    if (r.hit_tick_limit) {
      throw CycleBudgetError("evaluation run " + w.name + "/" + scheme_name +
                                 " (slice " + std::to_string(rep) + ") hit the " +
                                 std::to_string(cfg_.max_ticks) + "-tick budget",
                             cfg_.max_ticks);
    }

    std::vector<double> ipc_multi(n), ipc_single(n);
    for (std::uint32_t c = 0; c < n; ++c) {
      ipc_multi[c] = r.cores[c].ipc;
      ipc_single[c] = single_ipc(apps[c].name, seed);
      out.ipc_multi[c] += ipc_multi[c];
      out.ipc_single[c] += ipc_single[c];
      out.core_read_latency_cpu[c] += r.cores[c].avg_read_latency_cpu;
    }
    out.smt_speedup += smt_speedup(ipc_multi, ipc_single);
    out.unfairness += unfairness(ipc_multi, ipc_single);
    out.avg_read_latency_cpu += r.avg_read_latency_cpu;
    out.row_hit_rate += r.row_hit_rate;
    out.bus_utilization += r.data_bus_utilization;
    if (rep + 1 == repeats) out.raw = std::move(r);
  }

  const double inv = 1.0 / repeats;
  out.smt_speedup *= inv;
  out.unfairness *= inv;
  out.avg_read_latency_cpu *= inv;
  out.row_hit_rate *= inv;
  out.bus_utilization *= inv;
  for (std::uint32_t c = 0; c < n; ++c) {
    out.ipc_multi[c] *= inv;
    out.ipc_single[c] *= inv;
    out.core_read_latency_cpu[c] *= inv;
  }
  return out;
}

}  // namespace memsched::sim
