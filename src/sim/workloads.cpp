#include "sim/workloads.hpp"

#include <stdexcept>

namespace memsched::sim {

std::vector<trace::AppProfile> Workload::apps() const {
  std::vector<trace::AppProfile> out;
  out.reserve(codes.size());
  for (const char c : codes) out.push_back(trace::spec2000_by_code(c));
  return out;
}

namespace {

std::vector<Workload> build_table3() {
  // Two of the paper's 8-core code strings are corrupted in the available
  // text ("8MEM-6 bygicipa" contains ILP codes in a MEM group, "8MIX-6
  // stywayfk" duplicates 'y'); they are repaired with the minimal edits that
  // restore the group invariants (documented in EXPERIMENTS.md):
  //   8MEM-6: bygicipa -> bvgicipq   (y->v, a->q; all-MEM)
  //   8MIX-6: stywayfk -> stywavfk   (second y->v)
  return {
      // 2-core
      {"2MEM-1", "bc", true},       {"2MEM-2", "de", true},
      {"2MEM-3", "fj", true},       {"2MEM-4", "kl", true},
      {"2MEM-5", "np", true},       {"2MEM-6", "qv", true},
      {"2MIX-1", "ab", false},      {"2MIX-2", "cr", false},
      {"2MIX-3", "hd", false},      {"2MIX-4", "ez", false},
      {"2MIX-5", "mf", false},      {"2MIX-6", "oj", false},
      // 4-core
      {"4MEM-1", "bcde", true},     {"4MEM-2", "fgij", true},
      {"4MEM-3", "npqv", true},     {"4MEM-4", "bdkl", true},
      {"4MEM-5", "qvce", true},     {"4MEM-6", "cjkq", true},
      {"4MIX-1", "arbc", false},    {"4MIX-2", "hzde", false},
      {"4MIX-3", "mofj", false},    {"4MIX-4", "stkl", false},
      {"4MIX-5", "uxnp", false},    {"4MIX-6", "ywqv", false},
      // 8-core
      {"8MEM-1", "bcdefjkl", true}, {"8MEM-2", "npqvbdfv", true},
      {"8MEM-3", "gicecjkq", true}, {"8MEM-4", "bcdenpqv", true},
      {"8MEM-5", "qvcefjkl", true}, {"8MEM-6", "bvgicipq", true},
      {"8MIX-1", "arhzbcde", false}, {"8MIX-2", "mostfjkl", false},
      {"8MIX-3", "uxywnpqv", false}, {"8MIX-4", "armobcfj", false},
      {"8MIX-5", "uxhznpde", false}, {"8MIX-6", "stywavfk", false},
  };
}

}  // namespace

const std::vector<Workload>& table3_workloads() {
  static const std::vector<Workload> all = build_table3();
  return all;
}

std::vector<Workload> table3_workloads(std::uint32_t cores, const std::string& type) {
  std::vector<Workload> out;
  for (const Workload& w : table3_workloads()) {
    if (w.cores() != cores) continue;
    if (type == "MEM" && !w.memory_intensive) continue;
    if (type == "MIX" && w.memory_intensive) continue;
    out.push_back(w);
  }
  return out;
}

Workload make_workload(std::string name, std::string codes) {
  if (codes.empty()) throw std::invalid_argument("workload needs at least one code");
  Workload w;
  w.name = std::move(name);
  w.codes = std::move(codes);
  bool all_mem = true;
  for (const char c : w.codes) {
    all_mem &= trace::spec2000_by_code(c).memory_intensive;  // throws if unknown
  }
  w.memory_intensive = all_mem;
  return w;
}

Workload resolve_workload(const std::string& spec) {
  constexpr const char* kPrefix = "codes:";
  if (spec.rfind(kPrefix, 0) == 0) {
    const std::string codes = spec.substr(6);
    return make_workload("custom-" + codes, codes);
  }
  return workload_by_name(spec);
}

const Workload& workload_by_name(const std::string& name) {
  for (const Workload& w : table3_workloads()) {
    if (w.name == name) return w;
  }
  throw std::invalid_argument("unknown workload: " + name);
}

}  // namespace memsched::sim
