#include "sim/watchdog.hpp"

#include "ckpt/snapshot.hpp"
#include "mc/controller.hpp"
#include "sched/scheduler.hpp"

namespace memsched::sim {

LivelockError::LivelockError(const std::string& what, Tick tick, std::string dump)
    : std::runtime_error(what + "\n" + dump), tick_(tick), dump_(std::move(dump)) {}

CycleBudgetError::CycleBudgetError(const std::string& what, Tick budget)
    : std::runtime_error(what), budget_(budget) {}

void ProgressWatchdog::raise(const std::string& context, const mc::MemoryController& mc,
                             const sched::Scheduler& scheduler, Tick now) const {
  const std::string what =
      "livelock: " + context + " made no forward progress for " +
      std::to_string(window_) + " bus ticks (stalled since tick " +
      std::to_string(last_move_tick_) + ", scheduler " + scheduler.name() + ")";
  throw LivelockError(what, now, mc.dump_state(now));
}

void ProgressWatchdog::save_state(ckpt::Writer& w) const {
  w.put_u64(last_move_tick_);
  w.put_u64(last_progress_);
}

void ProgressWatchdog::load_state(ckpt::Reader& r) {
  last_move_tick_ = r.get_u64();
  last_progress_ = r.get_u64();
}

}  // namespace memsched::sim
