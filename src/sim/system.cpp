#include "sim/system.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ckpt/snapshot.hpp"
#include "sim/watchdog.hpp"
#include "trace/generator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace memsched::sim {

MultiCoreSystem::MultiCoreSystem(const SystemConfig& config,
                                 const std::vector<trace::AppProfile>& apps,
                                 sched::Scheduler& scheduler, std::uint64_t seed)
    : config_(config) {
  MEMSCHED_ASSERT(apps.size() == config.cores, "one application per core required");
  if (const auto err = config.validate(); !err.empty())
    throw std::invalid_argument("invalid SystemConfig: " + err);

  util::Xoshiro256 seeder(seed);
  std::vector<double> dispatch;
  dispatch.reserve(apps.size());
  for (std::uint32_t c = 0; c < config.cores; ++c) {
    const trace::AppProfile& app = apps[c];
    const std::uint64_t region_need =
        app.footprint_bytes + app.hot_bytes + app.code_bytes;
    MEMSCHED_ASSERT(region_need <= config.region_bytes_per_core,
                    "application footprint exceeds per-core region");
    const Addr base = static_cast<Addr>(c) * config.region_bytes_per_core;
    streams_.push_back(
        std::make_unique<trace::SyntheticStream>(app, base, seeder.fork(c).next()));
    dispatch.push_back(app.ilp_ipc);
  }
  wire(scheduler, dispatch, seed);

  if (config.warm_caches) {
    std::vector<cache::WarmSpec> specs;
    specs.reserve(apps.size());
    for (std::uint32_t c = 0; c < config.cores; ++c) {
      const trace::AppProfile& app = apps[c];
      const Addr base = static_cast<Addr>(c) * config.region_bytes_per_core;
      cache::WarmSpec ws;
      ws.footprint_base = base;
      ws.footprint_bytes = app.footprint_bytes;
      ws.dirty_share = app.dirty_fresh_share;
      ws.hot_base = base + app.footprint_bytes;
      ws.hot_bytes = app.hot_bytes;
      ws.hot_dirty_share = app.store_share;
      ws.code_base = ws.hot_base + app.hot_bytes;
      ws.code_bytes = app.code_bytes;
      specs.push_back(ws);
    }
    hierarchy_->warm(specs, seed);
  }
}

MultiCoreSystem::MultiCoreSystem(const SystemConfig& config,
                                 std::vector<std::unique_ptr<trace::InstStream>> streams,
                                 const std::vector<double>& dispatch_ipc,
                                 sched::Scheduler& scheduler, std::uint64_t seed)
    : config_(config), streams_(std::move(streams)) {
  MEMSCHED_ASSERT(streams_.size() == config.cores, "one stream per core required");
  MEMSCHED_ASSERT(dispatch_ipc.size() == config.cores, "one dispatch rate per core");
  if (const auto err = config.validate(); !err.empty())
    throw std::invalid_argument("invalid SystemConfig: " + err);
  wire(scheduler, dispatch_ipc, seed);
}

void MultiCoreSystem::wire(sched::Scheduler& scheduler,
                           const std::vector<double>& dispatch_ipc, std::uint64_t seed) {
  scheduler_ = &scheduler;
  seed_ = seed;
  dispatch_ipc_ = dispatch_ipc;
  dram_ = std::make_unique<dram::DramSystem>(config_.timing, config_.org,
                                             config_.interleave, config_.bank_xor);
  controller_ = std::make_unique<mc::MemoryController>(
      *dram_, scheduler, config_.controller, config_.cores, seed ^ 0xc011ec70ULL);
  hierarchy_ = std::make_unique<cache::CacheHierarchy>(config_.hierarchy, config_.cores,
                                                       *controller_);
  if (config_.audit.enabled) {
    auditor_ =
        std::make_unique<verif::InvariantAuditor>(*dram_, *controller_, config_.audit);
  }
  if (config_.fault.enabled) {
    fault_ = std::make_unique<mc::FaultInjector>(config_.fault);
    controller_->set_fault_injector(fault_.get());
  }
  for (std::uint32_t c = 0; c < config_.cores; ++c) {
    cores_.push_back(std::make_unique<cpu::CoreModel>(c, config_.core, dispatch_ipc[c],
                                                      *streams_[c], *hierarchy_));
  }
  hierarchy_->set_fill_callback([this](std::uint64_t token, CpuCycle done_cpu) {
    const CoreId core = cpu::CoreModel::token_core(token);
    MEMSCHED_ASSERT(core < cores_.size(), "fill token for unknown core");
    cores_[core]->on_fill(token, done_cpu);
  });
}

std::string MultiCoreSystem::run_fingerprint(std::uint64_t target_insts,
                                             std::uint64_t warmup_insts, Tick max_ticks,
                                             const std::string& context) const {
  std::ostringstream os;
  os.precision(17);
  os << config_.fingerprint() << "|sched=" << scheduler_->name() << "|seed=" << seed_
     << "|ipc=";
  for (std::size_t i = 0; i < dispatch_ipc_.size(); ++i) {
    if (i) os << ',';
    os << dispatch_ipc_[i];
  }
  os << "|target=" << target_insts << "|warmup=" << warmup_insts
     << "|max_ticks=" << max_ticks << "|ctx=" << context;
  return os.str();
}

RunResult MultiCoreSystem::run(std::uint64_t target_insts, std::uint64_t warmup_insts,
                               Tick max_ticks, const ckpt::CheckpointPolicy& policy) {
  MEMSCHED_ASSERT(target_insts > 0, "target instruction count must be positive");
  if (config_.engine == Engine::kSampled)
    return run_sampled(target_insts, warmup_insts, max_ticks, policy);
  const std::uint32_t n = config_.cores;
  if (policy.enabled() && auditor_) {
    throw std::invalid_argument(
        "checkpointing requires audit off: the auditor's shadow state is not "
        "serialized, so a resumed run could not keep verifying (disable one)");
  }

  std::vector<std::uint64_t> goal(n, 0);     ///< committed count that ends the phase
  std::vector<CpuCycle> base_cycle(n, 0);    ///< measurement start per core
  std::vector<CpuCycle> finish_cycle(n, 0);
  std::vector<bool> done(n, false);
  std::uint32_t done_count = 0;

  // Per-core counters at the previous epoch boundary, for on_epoch.
  std::vector<std::uint64_t> epoch_insts(n, 0);
  std::vector<std::uint64_t> epoch_bytes(n, 0);
  Tick next_epoch = config_.epoch_ticks;

  bool measuring = warmup_insts == 0;
  for (std::uint32_t c = 0; c < n; ++c) {
    goal[c] = cores_[c]->committed() + (measuring ? target_insts : warmup_insts);
  }

  auto begin_measurement = [&] {
    measuring = true;
    controller_->reset_stats();
    hierarchy_->reset_stats();
    for (std::uint32_t c = 0; c < n; ++c) {
      cores_[c]->reset_stats();
      base_cycle[c] = cores_[c]->cycle();
      goal[c] = cores_[c]->committed() + target_insts;
      done[c] = false;
    }
    done_count = 0;
  };

  // One forward-progress watchdog per core: a single starved core must be
  // caught even while its neighbours keep committing. Polled sparsely — the
  // counters are monotonic, so coarse sampling only delays detection by at
  // most one poll interval. The skip engine never jumps over a poll
  // boundary, so both engines poll at the same ticks with the same state.
  constexpr Tick kWatchdogPollMask = 1023;
  std::vector<ProgressWatchdog> watchdogs(n, ProgressWatchdog(config_.progress_window_ticks));

  Tick t = 0;
  Tick t_measure_start = 0;
  Tick visited = 0;
  bool finished = false;  ///< loop ran to completion (restored or live)

  // --- checkpoint plumbing -------------------------------------------------
  // A snapshot is taken at the top of a loop iteration, before tick t is
  // processed: every component is self-consistent and the resumed run
  // re-enters the loop at the same t, replaying the exact tick stream (and
  // RNG draws) of the uninterrupted run. The post-loop snapshot sets
  // `finished`; resuming it skips the loop and recomputes the RunResult from
  // the restored state, which is deterministic — so a killed-and-resumed run
  // produces a byte-identical report.
  const std::string fp = policy.enabled()
                             ? run_fingerprint(target_insts, warmup_insts, max_ticks,
                                               policy.context)
                             : std::string{};

  auto save_snapshot = [&] {
    ckpt::Writer w;
    w.begin_section("loop");
    w.put_bool(finished);
    w.put_u64(t);
    w.put_u64(visited);
    w.put_u64(t_measure_start);
    w.put_bool(measuring);
    w.put_u32(done_count);
    w.put_u64(next_epoch);
    w.put_u64_vec(goal);
    w.put_u64_vec(base_cycle);
    w.put_u64_vec(finish_cycle);
    for (std::uint32_t c = 0; c < n; ++c) w.put_bool(done[c]);
    w.put_u64_vec(epoch_insts);
    w.put_u64_vec(epoch_bytes);
    w.begin_section("sched");
    scheduler_->save_state(w);
    w.begin_section("cores");
    for (std::uint32_t c = 0; c < n; ++c) {
      cores_[c]->save_state(w);
      streams_[c]->save_state(w);
    }
    w.begin_section("cache");
    hierarchy_->save_state(w);
    w.begin_section("mc");
    controller_->save_state(w);
    w.begin_section("dram");
    dram_->save_state(w);
    if (fault_) {
      w.begin_section("fault");
      fault_->save_state(w);
    }
    w.begin_section("watchdogs");
    for (std::uint32_t c = 0; c < n; ++c) watchdogs[c].save_state(w);
    w.save(policy.path, fp);
  };

  if (policy.enabled() && policy.resume &&
      std::ifstream(policy.path, std::ios::binary).good()) {
    if (policy.resume_info) *policy.resume_info = {};
    bool mutated = false;  // components touched: a failure now is NOT recoverable
    try {
      ckpt::Reader r(policy.path, fp);
      r.open_section("loop");
      const bool was_finished = r.get_bool();
      const Tick r_t = r.get_u64();
      const Tick r_visited = r.get_u64();
      const Tick r_tms = r.get_u64();
      const bool r_measuring = r.get_bool();
      const std::uint32_t r_done_count = r.get_u32();
      const Tick r_next_epoch = r.get_u64();
      const auto r_goal = r.get_u64_vec();
      const auto r_base = r.get_u64_vec();
      const auto r_finish = r.get_u64_vec();
      if (r_goal.size() != n || r_base.size() != n || r_finish.size() != n) {
        throw ckpt::SnapshotError("snapshot: loop-section core count mismatch");
      }
      std::vector<bool> r_done(n, false);
      for (std::uint32_t c = 0; c < n; ++c) r_done[c] = r.get_bool();
      auto r_epoch_insts = r.get_u64_vec();
      auto r_epoch_bytes = r.get_u64_vec();
      if (r_epoch_insts.size() != n || r_epoch_bytes.size() != n) {
        throw ckpt::SnapshotError("snapshot: loop-section core count mismatch");
      }
      r.close_section();
      mutated = true;
      r.open_section("sched");
      scheduler_->load_state(r);
      r.close_section();
      r.open_section("cores");
      for (std::uint32_t c = 0; c < n; ++c) {
        cores_[c]->load_state(r);
        streams_[c]->load_state(r);
      }
      r.close_section();
      r.open_section("cache");
      hierarchy_->load_state(r);
      r.close_section();
      r.open_section("mc");
      controller_->load_state(r);
      r.close_section();
      r.open_section("dram");
      dram_->load_state(r);
      r.close_section();
      if (fault_) {
        r.open_section("fault");
        fault_->load_state(r);
        r.close_section();
      }
      r.open_section("watchdogs");
      for (std::uint32_t c = 0; c < n; ++c) watchdogs[c].load_state(r);
      r.close_section();
      finished = was_finished;
      t = r_t;
      visited = r_visited;
      t_measure_start = r_tms;
      measuring = r_measuring;
      done_count = r_done_count;
      next_epoch = r_next_epoch;
      goal = r_goal;
      base_cycle = r_base;
      finish_cycle = r_finish;
      done = r_done;
      epoch_insts = std::move(r_epoch_insts);
      epoch_bytes = std::move(r_epoch_bytes);
      if (policy.resume_info) {
        policy.resume_info->attempted = true;
        policy.resume_info->resumed = true;
      }
    } catch (const ckpt::SnapshotError& e) {
      if (mutated) throw;  // half-restored state cannot fall back cleanly
      if (policy.resume_info) {
        policy.resume_info->attempted = true;
        policy.resume_info->resumed = false;
        policy.resume_info->error = e.what();
      }
    }
  }

  Tick next_ckpt = kNeverTick;
  if (policy.enabled() && policy.interval_ticks != 0) {
    next_ckpt = (t / policy.interval_ticks + 1) * policy.interval_ticks;
  }

  while (!finished && t < max_ticks) {
    if (policy.enabled()) {
      const bool stop_now = (policy.stop != nullptr && *policy.stop != 0) ||
                            (policy.stop_at_tick != 0 && t >= policy.stop_at_tick);
      if (stop_now) {
        if (policy.save_on_stop) save_snapshot();
        throw ckpt::CheckpointStop(policy.path);
      }
      if (t >= next_ckpt) {
        save_snapshot();
        next_ckpt = (t / policy.interval_ticks + 1) * policy.interval_ticks;
      }
    }
    ++visited;
    hierarchy_->tick(t);
    controller_->tick(t);
    const CpuCycle window_end = (t + 1) * config_.cpu_ratio;
    for (std::uint32_t c = 0; c < n; ++c) {
      cores_[c]->step_to(window_end);
      if (!done[c] && cores_[c]->committed() >= goal[c]) {
        done[c] = true;
        finish_cycle[c] = cores_[c]->cycle();
        ++done_count;
      }
    }
    if ((t & kWatchdogPollMask) == 0 && watchdogs[0].enabled()) {
      for (std::uint32_t c = 0; c < n; ++c) {
        // Early finishers keep running but owe no further progress; their
        // lane resets instead of arming.
        if (watchdogs[c].poll(t, cores_[c]->committed(), !done[c])) {
          watchdogs[c].raise("core " + std::to_string(c) + " (closed-loop run, " +
                                 (measuring ? "measurement" : "warmup") + " phase)",
                             *controller_, *scheduler_, t);
        }
      }
    }
    if (t >= next_epoch) {
      next_epoch += config_.epoch_ticks;
      if (auditor_) auditor_->cross_check(t);
      const auto& cs = controller_->stats();
      for (std::uint32_t c = 0; c < n; ++c) {
        const std::uint64_t insts = cores_[c]->committed();
        const std::uint64_t bytes = (cs.core_reads[c] + cs.core_writes[c]) * kLineBytes;
        scheduler_->on_epoch(c, static_cast<double>(insts - epoch_insts[c]),
                             static_cast<double>(bytes - epoch_bytes[c]));
        epoch_insts[c] = insts;
        epoch_bytes[c] = bytes;
      }
    }
    if (done_count == n) {
      if (measuring) {
        ++t;
        break;
      }
      begin_measurement();
      t_measure_start = t + 1;
      // Epoch traffic counters restart with the stats reset.
      for (std::uint32_t c = 0; c < n; ++c) {
        epoch_insts[c] = cores_[c]->committed();
        epoch_bytes[c] = 0;
      }
    }
    if (config_.engine == Engine::kCycle) {
      ++t;
      continue;
    }
    // Next-event fast-forward: every tick in (t, jump) is a provable no-op
    // for the hierarchy, the controller and every core, and the jump never
    // crosses a watchdog poll or epoch boundary — so visited ticks, and
    // therefore all statistics and RNG draws, match the cycle oracle.
    // Cheapest sources first, and stop as soon as t + 1 is inevitable — the
    // jump can never land before t + 1, so further scanning buys nothing.
    Tick jump = kNeverTick;
    for (std::uint32_t c = 0; c < n; ++c) {
      const CpuCycle wake = cores_[c]->next_activity_cycle();
      if (wake != cpu::CoreModel::kIdle)
        jump = std::min(jump, std::max(wake / config_.cpu_ratio, t + 1));
    }
    if (jump > t + 1) jump = std::min(jump, hierarchy_->next_activity_tick(t));
    if (jump > t + 1) jump = std::min(jump, controller_->next_activity_tick(t));
    jump = std::min(jump, next_epoch);
    if (watchdogs[0].enabled())
      jump = std::min(jump, (t | kWatchdogPollMask) + 1);  // next poll boundary
    t = std::min(std::max(jump, t + 1), max_ticks);
  }

  if (!finished && policy.enabled()) {
    // Park the completed state: a later invocation (e.g. an orchestrator
    // retry of an already-finished point) resumes it and recomputes the
    // identical result without re-simulating.
    finished = true;
    save_snapshot();
  }

  if (auditor_) auditor_->finalize(t);

  RunResult result;
  result.ticks = t;
  result.visited_ticks = visited;
  result.hit_tick_limit = done_count < n || !measuring;
  result.controller_stats = controller_->stats();
  result.avg_read_latency_cpu = result.controller_stats.read_latency_cpu.mean();
  result.row_hit_rate = result.controller_stats.row_hit_rate();
  result.data_bus_utilization = dram_->data_bus_utilization(t);

  std::uint64_t total_bytes = 0;
  result.cores.resize(n);
  for (std::uint32_t c = 0; c < n; ++c) {
    CoreResult& cr = result.cores[c];
    cr.committed = cores_[c]->committed();
    const CpuCycle end_cycle = done[c] && measuring ? finish_cycle[c] : cores_[c]->cycle();
    const CpuCycle cycles = end_cycle > base_cycle[c] ? end_cycle - base_cycle[c] : 1;
    cr.finish_cycle = end_cycle;
    cr.ipc = static_cast<double>(target_insts) / static_cast<double>(cycles);
    cr.avg_read_latency_cpu = result.controller_stats.core_read_latency_cpu[c].mean();
    cr.dram_reads = result.controller_stats.core_reads[c];
    cr.dram_writes = result.controller_stats.core_writes[c];
    cr.core_stats = cores_[c]->stats();
    total_bytes += (cr.dram_reads + cr.dram_writes) * kLineBytes;
  }
  const Tick measure_ticks = t > t_measure_start ? t - t_measure_start : 1;
  const double seconds = static_cast<double>(measure_ticks) / config_.bus_hz();
  result.bandwidth_gbs = static_cast<double>(total_bytes) / seconds / 1e9;

  const dram::PowerModel power(config_.power, config_.timing, config_.bus_hz());
  result.dram_energy = power.energy_of(*dram_, t);
  result.dram_power_watts =
      result.dram_energy.average_power(static_cast<double>(t) / config_.bus_hz());
  return result;
}

namespace {

/// Two-sided 97.5% Student-t quantile (=> 95% CI half-width multiplier) for
/// `df` degrees of freedom; the normal 1.96 beyond the tabulated range.
double student_t_975(std::size_t df) {
  static constexpr double kT[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  return df <= 30 ? kT[df - 1] : 1.96;
}

MetricEstimate estimate(const std::vector<double>& samples) {
  MetricEstimate e;
  const std::size_t k = samples.size();
  if (k == 0) return e;
  double sum = 0.0;
  for (const double s : samples) sum += s;
  e.mean = sum / static_cast<double>(k);
  if (k < 2) return e;
  double ss = 0.0;
  for (const double s : samples) ss += (s - e.mean) * (s - e.mean);
  const double var = ss / static_cast<double>(k - 1);
  e.ci95 = student_t_975(k - 1) * std::sqrt(var / static_cast<double>(k));
  return e;
}

}  // namespace

RunResult MultiCoreSystem::run_sampled(std::uint64_t target_insts,
                                       std::uint64_t warmup_insts, Tick max_ticks,
                                       const ckpt::CheckpointPolicy& policy) {
  if (policy.enabled()) {
    throw std::invalid_argument(
        "engine=sampled does not support checkpointing: the sampler's interval "
        "position is not part of the snapshot format (use engine=skip)");
  }
  const std::uint32_t n = config_.cores;
  const SamplingConfig& sc = config_.sampling;
  const std::uint32_t intervals = sc.intervals;
  const std::uint64_t warm = sc.warmup_insts;
  const std::uint64_t meas = sc.interval_insts;
  // Each interval owns an equal share of the instruction budget; whatever
  // its detailed warmup+measurement does not cover is functionally
  // fast-forwarded after the drain. A budget smaller than the detailed
  // portion degenerates gracefully (ff == 0: detailed-only, still sampled).
  const std::uint64_t stride = std::max<std::uint64_t>(target_insts / intervals, warm + meas);
  const std::uint64_t ff = stride - (warm + meas);

  std::vector<std::uint64_t> goal(n, 0);
  std::vector<CpuCycle> finish_cycle(n, 0);
  std::vector<bool> done(n, false);
  std::uint32_t done_count = 0;
  bool expect_progress = true;  ///< false while draining (cores paused)

  std::vector<std::uint64_t> epoch_insts(n, 0);
  std::vector<std::uint64_t> epoch_bytes(n, 0);
  Tick next_epoch = config_.epoch_ticks;
  constexpr Tick kWatchdogPollMask = 1023;
  std::vector<ProgressWatchdog> watchdogs(n, ProgressWatchdog(config_.progress_window_ticks));

  Tick t = 0;
  Tick visited = 0;

  // Cumulative data-bus busy ticks, recoverable from the utilization ratio.
  auto busy_ticks = [&]() -> double {
    return t == 0 ? 0.0 : dram_->data_bus_utilization(t) * static_cast<double>(t);
  };

  // One simulated bus tick plus the cycle-skip jump — the same stepping,
  // epoch and watchdog protocol as run(), without checkpoint plumbing.
  auto tick_once = [&] {
    ++visited;
    hierarchy_->tick(t);
    controller_->tick(t);
    const CpuCycle window_end = (t + 1) * config_.cpu_ratio;
    for (std::uint32_t c = 0; c < n; ++c) {
      cores_[c]->step_to(window_end);
      if (!done[c] && cores_[c]->committed() >= goal[c]) {
        done[c] = true;
        finish_cycle[c] = cores_[c]->cycle();
        ++done_count;
      }
    }
    if ((t & kWatchdogPollMask) == 0 && watchdogs[0].enabled()) {
      for (std::uint32_t c = 0; c < n; ++c) {
        if (watchdogs[c].poll(t, cores_[c]->committed(), expect_progress && !done[c])) {
          watchdogs[c].raise("core " + std::to_string(c) + " (sampled run)",
                             *controller_, *scheduler_, t);
        }
      }
    }
    if (t >= next_epoch) {
      next_epoch += config_.epoch_ticks;
      if (auditor_) auditor_->cross_check(t);
      const auto& cs = controller_->stats();
      for (std::uint32_t c = 0; c < n; ++c) {
        const std::uint64_t insts = cores_[c]->committed();
        const std::uint64_t bytes = (cs.core_reads[c] + cs.core_writes[c]) * kLineBytes;
        scheduler_->on_epoch(c, static_cast<double>(insts - epoch_insts[c]),
                             static_cast<double>(bytes - epoch_bytes[c]));
        epoch_insts[c] = insts;
        epoch_bytes[c] = bytes;
      }
    }
    Tick jump = kNeverTick;
    for (std::uint32_t c = 0; c < n; ++c) {
      const CpuCycle wake = cores_[c]->next_activity_cycle();
      if (wake != cpu::CoreModel::kIdle)
        jump = std::min(jump, std::max(wake / config_.cpu_ratio, t + 1));
    }
    if (jump > t + 1) jump = std::min(jump, hierarchy_->next_activity_tick(t));
    if (jump > t + 1) jump = std::min(jump, controller_->next_activity_tick(t));
    jump = std::min(jump, next_epoch);
    if (watchdogs[0].enabled()) jump = std::min(jump, (t | kWatchdogPollMask) + 1);
    t = std::min(std::max(jump, t + 1), max_ticks);
  };

  // Detailed execution until every core commits `insts` more instructions.
  auto run_detailed = [&](std::uint64_t insts) -> bool {
    for (std::uint32_t c = 0; c < n; ++c) {
      goal[c] = cores_[c]->committed() + insts;
      done[c] = false;
    }
    done_count = 0;
    expect_progress = true;
    while (done_count < n) {
      if (t >= max_ticks) return false;
      tick_once();
    }
    return true;
  };

  // Pause the cores and tick until nothing is in flight anywhere the
  // functional fast-forward could race: outstanding loads, store-queue and
  // frontend fills, L2 MSHRs and queued writebacks. Writes already inside
  // the memory controller are ordinary pre-gap traffic and may stay queued;
  // the next interval's detailed warmup absorbs them.
  auto drain = [&]() -> bool {
    for (auto& core : cores_) core->set_paused(true);
    expect_progress = false;
    auto quiescent = [&] {
      if (!hierarchy_->idle()) return false;
      for (const auto& core : cores_)
        if (!core->quiescent()) return false;
      return true;
    };
    bool ok = true;
    while (!quiescent()) {
      if (t >= max_ticks) {
        ok = false;
        break;
      }
      tick_once();
    }
    for (auto& core : cores_) core->set_paused(false);
    return ok;
  };

  // The caller-level warmup is purely functional: it exists to touch caches
  // at scale, and each interval re-warms queue/pipeline state in detail.
  if (warmup_insts > 0) {
    for (auto& core : cores_) core->functional_advance(warmup_insts);
  }

  std::vector<std::vector<double>> core_ipc_samples(n);
  std::vector<double> ipc_samples, lat_samples, rhr_samples, bw_samples,
      util_samples, ratio_samples;
  std::vector<CpuCycle> base_cycle(n, 0);
  std::uint64_t measured_insts = 0;
  std::uint64_t skipped_insts = warmup_insts;
  bool hit_limit = false;

  for (std::uint32_t k = 0; k < intervals; ++k) {
    if (!run_detailed(warm)) {
      hit_limit = true;
      break;
    }
    controller_->reset_stats();
    hierarchy_->reset_stats();
    for (std::uint32_t c = 0; c < n; ++c) {
      cores_[c]->reset_stats();
      base_cycle[c] = cores_[c]->cycle();
      epoch_insts[c] = cores_[c]->committed();
      epoch_bytes[c] = 0;
    }
    const Tick t_start = t;
    const double busy_start = busy_ticks();
    if (!run_detailed(meas)) {
      hit_limit = true;
      break;
    }
    double ipc_sum = 0.0, ipc_min = 0.0, ipc_max = 0.0;
    for (std::uint32_t c = 0; c < n; ++c) {
      const CpuCycle cycles =
          finish_cycle[c] > base_cycle[c] ? finish_cycle[c] - base_cycle[c] : 1;
      const double ipc = static_cast<double>(meas) / static_cast<double>(cycles);
      core_ipc_samples[c].push_back(ipc);
      ipc_sum += ipc;
      ipc_min = c == 0 ? ipc : std::min(ipc_min, ipc);
      ipc_max = c == 0 ? ipc : std::max(ipc_max, ipc);
    }
    ipc_samples.push_back(ipc_sum);
    ratio_samples.push_back(ipc_min > 0.0 ? ipc_max / ipc_min : 1.0);
    const auto& cs = controller_->stats();
    lat_samples.push_back(cs.read_latency_cpu.mean());
    rhr_samples.push_back(cs.row_hit_rate());
    std::uint64_t bytes = 0;
    for (std::uint32_t c = 0; c < n; ++c)
      bytes += (cs.core_reads[c] + cs.core_writes[c]) * kLineBytes;
    const Tick dt = t > t_start ? t - t_start : 1;
    bw_samples.push_back(static_cast<double>(bytes) /
                         (static_cast<double>(dt) / config_.bus_hz()) / 1e9);
    util_samples.push_back((busy_ticks() - busy_start) / static_cast<double>(dt));
    measured_insts += meas;

    if (!drain()) {
      hit_limit = true;
      break;
    }
    if (k + 1 < intervals && ff > 0) {
      for (auto& core : cores_) core->functional_advance(ff);
      skipped_insts += ff;
    }
  }

  if (auditor_) auditor_->finalize(t);

  RunResult result;
  result.ticks = t;             // detailed (simulated) ticks only
  result.visited_ticks = visited;
  result.hit_tick_limit = hit_limit;
  result.controller_stats = controller_->stats();  // final interval's window

  result.sampling.enabled = true;
  result.sampling.intervals_measured = static_cast<std::uint32_t>(lat_samples.size());
  result.sampling.measured_insts_per_core = measured_insts;
  result.sampling.skipped_insts_per_core = skipped_insts;
  result.sampling.total_ipc = estimate(ipc_samples);
  result.sampling.read_latency_cpu = estimate(lat_samples);
  result.sampling.row_hit_rate = estimate(rhr_samples);
  result.sampling.bandwidth_gbs = estimate(bw_samples);
  result.sampling.bus_utilization = estimate(util_samples);
  result.sampling.ipc_ratio = estimate(ratio_samples);
  result.sampling.core_ipc.resize(n);

  result.avg_read_latency_cpu = result.sampling.read_latency_cpu.mean;
  result.row_hit_rate = result.sampling.row_hit_rate.mean;
  result.data_bus_utilization = result.sampling.bus_utilization.mean;
  result.bandwidth_gbs = result.sampling.bandwidth_gbs.mean;

  result.cores.resize(n);
  for (std::uint32_t c = 0; c < n; ++c) {
    result.sampling.core_ipc[c] = estimate(core_ipc_samples[c]);
    CoreResult& cr = result.cores[c];
    cr.committed = cores_[c]->committed();
    cr.finish_cycle = cores_[c]->cycle();
    cr.ipc = result.sampling.core_ipc[c].mean;
    cr.avg_read_latency_cpu = result.controller_stats.core_read_latency_cpu[c].mean();
    cr.dram_reads = result.controller_stats.core_reads[c];
    cr.dram_writes = result.controller_stats.core_writes[c];
    cr.core_stats = cores_[c]->stats();
  }

  const dram::PowerModel power(config_.power, config_.timing, config_.bus_hz());
  result.dram_energy = power.energy_of(*dram_, t);
  result.dram_power_watts = result.dram_energy.average_power(
      std::max<double>(static_cast<double>(t), 1.0) / config_.bus_hz());
  return result;
}

}  // namespace memsched::sim
