// Forward-progress watchdog and structured simulation-guard errors.
//
// A cycle-level simulator's worst failure mode is the silent spin: a bug (or
// an injected fault) wedges the memory system, no request ever retires, and
// the run burns wall-clock forever with nothing to show. The watchdog turns
// that into a *diagnosable* error: if a progress counter stops moving for a
// full window while work is pending, the run throws LivelockError carrying
// the controller's queue/scheduler state dump. CycleBudgetError is the
// bounded-cousin: the run consumed its max_ticks budget before reaching its
// instruction target.
//
// Both errors are part of the harness contract — bench binaries map them to
// distinct exit codes so the sweep orchestrator can tell "livelock" from
// "budget too small" from "bad config" without parsing free-form text.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/types.hpp"

namespace memsched::mc {
class MemoryController;
}
namespace memsched::sched {
class Scheduler;
}
namespace memsched::ckpt {
class Writer;
class Reader;
}  // namespace memsched::ckpt

namespace memsched::sim {

/// No instruction committed and no request retired for a full watchdog
/// window while work was pending. what() includes the state dump.
class LivelockError : public std::runtime_error {
 public:
  LivelockError(const std::string& what, Tick tick, std::string dump);

  [[nodiscard]] Tick tick() const { return tick_; }
  [[nodiscard]] const std::string& state_dump() const { return dump_; }

 private:
  Tick tick_;
  std::string dump_;
};

/// The run consumed its max_ticks cycle budget before finishing.
class CycleBudgetError : public std::runtime_error {
 public:
  CycleBudgetError(const std::string& what, Tick budget);

  [[nodiscard]] Tick budget() const { return budget_; }

 private:
  Tick budget_;
};

/// Tracks one monotonic progress counter. poll() returns true once the
/// counter has not advanced for `window` ticks while work stayed pending;
/// the caller then raise()s with whatever context it has.
class ProgressWatchdog {
 public:
  /// `window` = bus ticks without progress that count as a livelock;
  /// 0 disables the watchdog (poll always returns false).
  explicit ProgressWatchdog(Tick window) : window_(window) {}

  [[nodiscard]] bool enabled() const { return window_ != 0; }
  [[nodiscard]] Tick window() const { return window_; }
  [[nodiscard]] Tick stalled_since() const { return last_move_tick_; }

  bool poll(Tick now, std::uint64_t progress, bool work_pending) {
    if (!enabled()) return false;
    if (!work_pending || progress != last_progress_) {
      last_progress_ = progress;
      last_move_tick_ = now;
      return false;
    }
    return now - last_move_tick_ >= window_;
  }

  /// Throws LivelockError with the controller state dump appended.
  [[noreturn]] void raise(const std::string& context, const mc::MemoryController& mc,
                          const sched::Scheduler& scheduler, Tick now) const;

  // --- checkpoint/restore (progress cursor, so a resumed run's livelock
  // window is measured exactly as the uninterrupted run would) ---
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  Tick window_;
  Tick last_move_tick_ = 0;
  std::uint64_t last_progress_ = ~std::uint64_t{0};  ///< first poll always records
};

}  // namespace memsched::sim
