// MultiCoreSystem: assembles cores + caches + controller + DRAM and runs the
// paper's measurement protocol.
//
// Protocol (§4.1): the run stops when the *last* core commits the target
// instruction count; cores that finish earlier keep executing (keep
// generating memory traffic) but their statistics are frozen at the target.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/hierarchy.hpp"
#include "ckpt/policy.hpp"
#include "cpu/core_model.hpp"
#include "dram/dram_system.hpp"
#include "mc/controller.hpp"
#include "sched/scheduler.hpp"
#include "sim/system_config.hpp"
#include "trace/app_profile.hpp"
#include "trace/inst_stream.hpp"

namespace memsched::sim {

struct CoreResult {
  std::uint64_t committed = 0;     ///< at run end (>= target)
  CpuCycle finish_cycle = 0;       ///< CPU cycle the target was reached
  double ipc = 0.0;                ///< target / finish_cycle
  double avg_read_latency_cpu = 0.0;  ///< controller-level, CPU cycles
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
  cpu::CoreRunStats core_stats{};
};

/// A point estimate from the sampled engine: the mean across measurement
/// intervals with the half-width of its 95% confidence interval (Student-t,
/// K-1 degrees of freedom over K intervals).
struct MetricEstimate {
  double mean = 0.0;
  double ci95 = 0.0;  ///< half-width; [mean - ci95, mean + ci95] covers 95%
};

/// Sampled-engine metadata attached to RunResult (enabled == false and all
/// zeros for the exact engines, and never serialized for them).
struct SamplingStats {
  bool enabled = false;
  std::uint32_t intervals_measured = 0;      ///< intervals that completed
  std::uint64_t measured_insts_per_core = 0; ///< detailed, statistics-bearing
  std::uint64_t skipped_insts_per_core = 0;  ///< functionally fast-forwarded
  MetricEstimate total_ipc;
  MetricEstimate read_latency_cpu;
  MetricEstimate row_hit_rate;
  MetricEstimate bandwidth_gbs;
  MetricEstimate bus_utilization;
  /// Per-interval max/min core-IPC ratio — the run-local fairness proxy
  /// (full unfairness needs alone-run baselines, experiment layer's job).
  MetricEstimate ipc_ratio;
  std::vector<MetricEstimate> core_ipc;
};

struct RunResult {
  std::vector<CoreResult> cores;
  Tick ticks = 0;                    ///< bus cycles simulated
  /// Ticks actually visited by the engine (== ticks under kCycle, fewer
  /// under kSkip). Engine metadata — deliberately NOT serialized, so both
  /// engines produce byte-identical JSON records.
  Tick visited_ticks = 0;
  double avg_read_latency_cpu = 0.0; ///< all cores
  double row_hit_rate = 0.0;
  double data_bus_utilization = 0.0;
  double bandwidth_gbs = 0.0;        ///< DRAM traffic over the whole run
  bool hit_tick_limit = false;
  mc::ControllerStats controller_stats{};  ///< full snapshot

  /// DRAM energy over the entire simulation (warmup included — device
  /// counters are cumulative) and the corresponding average power. Under
  /// engine=sampled these cover the detailed ticks only.
  dram::EnergyBreakdown dram_energy{};
  double dram_power_watts = 0.0;

  /// Sampled-engine estimates; sampling.enabled == false for exact engines.
  /// When enabled, the headline scalar fields above carry the estimate means
  /// and controller_stats covers only the final measurement interval.
  SamplingStats sampling{};

  [[nodiscard]] double total_ipc() const {
    double s = 0.0;
    for (const auto& c : cores) s += c.ipc;
    return s;
  }
};

class MultiCoreSystem {
 public:
  /// Builds a system running the given synthetic applications (one per
  /// core, apps.size() == config.cores).
  MultiCoreSystem(const SystemConfig& config, const std::vector<trace::AppProfile>& apps,
                  sched::Scheduler& scheduler, std::uint64_t seed);

  /// Builds a system over caller-supplied instruction streams (trace replay,
  /// custom generators). `dispatch_ipc[i]` is core i's inherent issue rate.
  MultiCoreSystem(const SystemConfig& config,
                  std::vector<std::unique_ptr<trace::InstStream>> streams,
                  const std::vector<double>& dispatch_ipc, sched::Scheduler& scheduler,
                  std::uint64_t seed);

  /// Runs the paper's measurement protocol:
  ///   1. warmup — every core commits `warmup_insts` (queues/MSHRs/LRU and
  ///      the pre-warmed caches settle); all statistics are then reset;
  ///   2. measurement — until every core commits `target_insts` more; a
  ///      core's IPC is measured over exactly its target instructions, and
  ///      early finishers keep running (§4.1).
  /// `max_ticks` bounds the total run (RunResult::hit_tick_limit reports it).
  ///
  /// `policy` (optional) enables checkpoint/restore: the loop saves periodic
  /// snapshots of the complete system state, attempts to resume from
  /// `policy.path` on entry, and parks its state + throws ckpt::CheckpointStop
  /// when the cooperative stop flag fires. A resumed run replays the exact
  /// tick stream of the uninterrupted run — the final RunResult (and any JSON
  /// serialization of it) is byte-identical. Checkpointing is rejected while
  /// the invariant auditor is attached (its shadow state is not serialized,
  /// so a resumed run could not keep verifying).
  RunResult run(std::uint64_t target_insts, std::uint64_t warmup_insts = 20'000,
                Tick max_ticks = ~Tick{0} >> 1,
                const ckpt::CheckpointPolicy& policy = {});

  [[nodiscard]] const mc::MemoryController& controller() const { return *controller_; }
  [[nodiscard]] const cache::CacheHierarchy& hierarchy() const { return *hierarchy_; }
  [[nodiscard]] const dram::DramSystem& dram() const { return *dram_; }
  [[nodiscard]] const cpu::CoreModel& core(CoreId i) const { return *cores_[i]; }
  [[nodiscard]] const SystemConfig& config() const { return config_; }

  /// The attached invariant auditor, or nullptr when config().audit is off.
  [[nodiscard]] verif::InvariantAuditor* auditor() { return auditor_.get(); }
  [[nodiscard]] const verif::InvariantAuditor* auditor() const { return auditor_.get(); }

  /// The attached fault injector, or nullptr when config().fault is off.
  [[nodiscard]] const mc::FaultInjector* fault_injector() const { return fault_.get(); }

 private:
  void wire(sched::Scheduler& scheduler, const std::vector<double>& dispatch_ipc,
            std::uint64_t seed);

  /// SMARTS-style interval sampling (engine == kSampled): K short detailed
  /// measurement intervals separated by functional fast-forward, each
  /// preceded by a detailed warmup and followed by a drain to quiescence.
  /// Per-metric means and 95% CIs land in RunResult::sampling.
  RunResult run_sampled(std::uint64_t target_insts, std::uint64_t warmup_insts,
                        Tick max_ticks, const ckpt::CheckpointPolicy& policy);

  /// Snapshot fingerprint for one run() invocation: config + scheduler +
  /// seed + dispatch rates + run parameters + policy context.
  [[nodiscard]] std::string run_fingerprint(std::uint64_t target_insts,
                                            std::uint64_t warmup_insts, Tick max_ticks,
                                            const std::string& context) const;

  SystemConfig config_;
  std::vector<std::unique_ptr<trace::InstStream>> streams_;
  std::unique_ptr<dram::DramSystem> dram_;
  std::unique_ptr<mc::MemoryController> controller_;
  std::unique_ptr<cache::CacheHierarchy> hierarchy_;
  std::vector<std::unique_ptr<cpu::CoreModel>> cores_;
  std::unique_ptr<verif::InvariantAuditor> auditor_;
  std::unique_ptr<mc::FaultInjector> fault_;
  sched::Scheduler* scheduler_ = nullptr;
  std::uint64_t seed_ = 0;              ///< for the snapshot fingerprint
  std::vector<double> dispatch_ipc_;    ///< ditto
};

}  // namespace memsched::sim
