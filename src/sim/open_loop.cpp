#include "sim/open_loop.hpp"

#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "dram/dram_system.hpp"
#include "mc/fault_injector.hpp"
#include "sim/system_config.hpp"
#include "sim/watchdog.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace memsched::sim {

namespace {

// Snapshot fingerprint for one open-loop run. Reuses SystemConfig's
// canonical rendering for the shared device/controller blocks so new timing
// or fault knobs can never silently drop out of the open-loop fingerprint.
std::string open_loop_fingerprint(const OpenLoopConfig& cfg,
                                  const sched::Scheduler& scheduler,
                                  const std::string& context) {
  SystemConfig shared;
  shared.engine = cfg.engine;
  shared.cores = cfg.cores;
  shared.timing = cfg.timing;
  shared.org = cfg.org;
  shared.interleave = cfg.interleave;
  shared.controller = cfg.controller;
  shared.fault = cfg.fault;
  shared.progress_window_ticks = cfg.progress_window_ticks;
  std::ostringstream os;
  os.precision(17);
  os << "openloop|" << shared.fingerprint() << "|sched=" << scheduler.name()
     << "|inject=" << cfg.inject_per_tick << "|wr=" << cfg.write_share
     << "|run=" << cfg.seq_run_lines << "|fp_lines=" << cfg.footprint_lines
     << "|warmup=" << cfg.warmup_ticks << "|measure=" << cfg.measure_ticks
     << "|seed=" << cfg.seed << "|ctx=" << context;
  return os.str();
}

}  // namespace

OpenLoopResult run_open_loop(const OpenLoopConfig& cfg, sched::Scheduler& scheduler) {
  return run_open_loop(cfg, scheduler, ckpt::CheckpointPolicy{});
}

OpenLoopResult run_open_loop(const OpenLoopConfig& cfg, sched::Scheduler& scheduler,
                             const ckpt::CheckpointPolicy& policy) {
  MEMSCHED_ASSERT(cfg.cores > 0, "open loop needs at least one core");
  MEMSCHED_ASSERT(cfg.inject_per_tick > 0.0, "offered load must be positive");
  if (cfg.engine == Engine::kSampled) {
    throw std::invalid_argument(
        "engine=sampled applies to closed-loop core-driven runs only: the "
        "open loop has no instruction stream to fast-forward (use skip)");
  }
  if (policy.enabled() && cfg.audit.enabled) {
    throw std::invalid_argument(
        "checkpointing requires audit off: the auditor's shadow state is not "
        "serialized, so a resumed run could not keep verifying (disable one)");
  }

  dram::DramSystem dram(cfg.timing, cfg.org, cfg.interleave);
  scheduler.reset();
  mc::MemoryController mcu(dram, scheduler, cfg.controller, cfg.cores, cfg.seed);
  std::unique_ptr<verif::InvariantAuditor> auditor;
  if (cfg.audit.enabled) {
    auditor = std::make_unique<verif::InvariantAuditor>(dram, mcu, cfg.audit);
  }
  std::unique_ptr<mc::FaultInjector> fault;
  if (cfg.fault.enabled) {
    fault = std::make_unique<mc::FaultInjector>(cfg.fault);
    mcu.set_fault_injector(fault.get());
  }
  ProgressWatchdog watchdog(cfg.progress_window_ticks);

  util::Xoshiro256 rng(cfg.seed ^ 0x0be9100bULL);
  // Per-core sequential stream cursors with geometric run lengths, giving
  // the same row-locality texture the closed-loop system produces.
  std::vector<std::uint64_t> cursor(cfg.cores);
  std::vector<std::uint32_t> run_left(cfg.cores, 0);
  for (auto& c : cursor) c = rng.below(cfg.footprint_lines);

  std::uint64_t offered = 0, accepted = 0;
  double carry = 0.0;
  bool measuring = false;
  Tick measure_start = 0;

  const Tick total = cfg.warmup_ticks + cfg.measure_ticks;
  Tick now = 0;
  bool finished = false;

  // Same checkpoint protocol as MultiCoreSystem::run: snapshot at the top of
  // an iteration (state self-consistent, resume replays the same tick/RNG
  // stream), `finished` snapshot after the loop for idempotent re-invocation.
  const std::string fp =
      policy.enabled() ? open_loop_fingerprint(cfg, scheduler, policy.context)
                       : std::string{};

  auto save_snapshot = [&] {
    ckpt::Writer w;
    w.begin_section("loop");
    w.put_bool(finished);
    w.put_u64(now);
    w.put_u64(offered);
    w.put_u64(accepted);
    w.put_f64(carry);
    w.put_bool(measuring);
    w.put_u64(measure_start);
    w.put_rng(rng);
    w.put_u64_vec(cursor);
    for (const std::uint32_t rl : run_left) w.put_u32(rl);
    w.begin_section("sched");
    scheduler.save_state(w);
    w.begin_section("mc");
    mcu.save_state(w);
    w.begin_section("dram");
    dram.save_state(w);
    if (fault) {
      w.begin_section("fault");
      fault->save_state(w);
    }
    w.begin_section("watchdog");
    watchdog.save_state(w);
    w.save(policy.path, fp);
  };

  if (policy.enabled() && policy.resume &&
      std::ifstream(policy.path, std::ios::binary).good()) {
    if (policy.resume_info) *policy.resume_info = {};
    bool mutated = false;  // components touched: a failure now is NOT recoverable
    try {
      ckpt::Reader r(policy.path, fp);
      r.open_section("loop");
      const bool was_finished = r.get_bool();
      const Tick r_now = r.get_u64();
      const std::uint64_t r_offered = r.get_u64();
      const std::uint64_t r_accepted = r.get_u64();
      const double r_carry = r.get_f64();
      const bool r_measuring = r.get_bool();
      const Tick r_measure_start = r.get_u64();
      util::Xoshiro256 r_rng(0);
      r.get_rng(r_rng);
      const auto r_cursor = r.get_u64_vec();
      if (r_cursor.size() != cfg.cores) {
        throw ckpt::SnapshotError("snapshot: open-loop core count mismatch");
      }
      std::vector<std::uint32_t> r_run_left(cfg.cores, 0);
      for (auto& rl : r_run_left) rl = r.get_u32();
      r.close_section();
      mutated = true;
      r.open_section("sched");
      scheduler.load_state(r);
      r.close_section();
      r.open_section("mc");
      mcu.load_state(r);
      r.close_section();
      r.open_section("dram");
      dram.load_state(r);
      r.close_section();
      if (fault) {
        r.open_section("fault");
        fault->load_state(r);
        r.close_section();
      }
      r.open_section("watchdog");
      watchdog.load_state(r);
      r.close_section();
      finished = was_finished;
      now = r_now;
      offered = r_offered;
      accepted = r_accepted;
      carry = r_carry;
      measuring = r_measuring;
      measure_start = r_measure_start;
      rng = r_rng;
      cursor = r_cursor;
      run_left = r_run_left;
      if (policy.resume_info) {
        policy.resume_info->attempted = true;
        policy.resume_info->resumed = true;
      }
    } catch (const ckpt::SnapshotError& e) {
      if (mutated) throw;  // half-restored state cannot fall back cleanly
      if (policy.resume_info) {
        policy.resume_info->attempted = true;
        policy.resume_info->resumed = false;
        policy.resume_info->error = e.what();
      }
    }
  }

  Tick next_ckpt = kNeverTick;
  if (policy.enabled() && policy.interval_ticks != 0) {
    next_ckpt = (now / policy.interval_ticks + 1) * policy.interval_ticks;
  }

  while (!finished && now < total) {
    if (policy.enabled()) {
      const bool stop_now = (policy.stop != nullptr && *policy.stop != 0) ||
                            (policy.stop_at_tick != 0 && now >= policy.stop_at_tick);
      if (stop_now) {
        if (policy.save_on_stop) save_snapshot();
        throw ckpt::CheckpointStop(policy.path);
      }
      if (now >= next_ckpt) {
        save_snapshot();
        next_ckpt = (now / policy.interval_ticks + 1) * policy.interval_ticks;
      }
    }
    if (!measuring && now >= cfg.warmup_ticks) {
      measuring = true;
      measure_start = now;
      mcu.reset_stats();
      offered = accepted = 0;
    }
    carry += cfg.inject_per_tick;
    while (carry >= 1.0) {
      carry -= 1.0;
      ++offered;
      const auto core = static_cast<CoreId>(rng.below(cfg.cores));
      if (run_left[core] == 0) {
        cursor[core] = rng.below(cfg.footprint_lines);
        run_left[core] = 1 + util::geometric_run(
                                 rng, 1.0 - 1.0 / cfg.seq_run_lines, 256);
      }
      --run_left[core];
      const Addr addr =
          (static_cast<Addr>(core) * cfg.footprint_lines + cursor[core]) * kLineBytes;
      cursor[core] = (cursor[core] + 1) % cfg.footprint_lines;
      const bool ok = rng.chance(cfg.write_share) ? mcu.enqueue_write(core, addr, now)
                                                  : mcu.enqueue_read(core, addr, now);
      accepted += ok;
    }
    mcu.tick(now);
    if ((now & 1023) == 0 &&
        watchdog.poll(now, mcu.served_total(), !mcu.idle())) {
      watchdog.raise("open-loop run", mcu, scheduler, now);
    }
    if (cfg.engine == Engine::kSkip) {
      // Fast-forward over ticks where the controller provably does nothing
      // and no injection fires. The accumulator still advances one add per
      // skipped tick (same float op sequence as unit stepping), and the loop
      // stops just before the add that would cross 1.0, at the warmup
      // boundary, at the next poll boundary, and at the controller's next
      // event — so visited ticks and RNG draws match the cycle oracle.
      if (carry + cfg.inject_per_tick < 1.0) {
        Tick limit = std::min(mcu.next_activity_tick(now), total);
        if (!measuring) limit = std::min(limit, cfg.warmup_ticks);
        if (watchdog.enabled()) limit = std::min(limit, (now | 1023) + 1);
        while (now + 1 < limit && carry + cfg.inject_per_tick < 1.0) {
          carry += cfg.inject_per_tick;
          ++now;
        }
      }
    }
    ++now;
  }

  if (!finished && policy.enabled()) {
    finished = true;
    save_snapshot();
  }

  if (auditor) auditor->finalize(total);

  OpenLoopResult r;
  const double mt = static_cast<double>(cfg.measure_ticks);
  r.offered_per_tick = static_cast<double>(offered) / mt;
  r.accepted_per_tick = static_cast<double>(accepted) / mt;
  r.rejected_share =
      offered ? 1.0 - static_cast<double>(accepted) / static_cast<double>(offered) : 0.0;
  const auto& st = mcu.stats();
  const double ratio = cfg.controller.cpu_ratio;
  r.avg_read_latency_ticks = st.read_latency_cpu.mean() / ratio;
  r.p50_ticks = st.read_latency_hist.quantile(0.5) / ratio;
  r.p90_ticks = st.read_latency_hist.quantile(0.9) / ratio;
  r.p99_ticks = st.read_latency_hist.quantile(0.99) / ratio;
  r.row_hit_rate = st.row_hit_rate();
  const Tick elapsed = total - measure_start;
  // Utilization counts since construction; subtract nothing — warmup skew is
  // negligible at these lengths, and the value is informational.
  r.data_bus_utilization = dram.data_bus_utilization(total) *
                           static_cast<double>(total) / static_cast<double>(elapsed);
  return r;
}

}  // namespace memsched::sim
