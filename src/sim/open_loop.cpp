#include "sim/open_loop.hpp"

#include <memory>
#include <vector>

#include "dram/dram_system.hpp"
#include "mc/fault_injector.hpp"
#include "sim/watchdog.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace memsched::sim {

OpenLoopResult run_open_loop(const OpenLoopConfig& cfg, sched::Scheduler& scheduler) {
  MEMSCHED_ASSERT(cfg.cores > 0, "open loop needs at least one core");
  MEMSCHED_ASSERT(cfg.inject_per_tick > 0.0, "offered load must be positive");

  dram::DramSystem dram(cfg.timing, cfg.org, cfg.interleave);
  scheduler.reset();
  mc::MemoryController mcu(dram, scheduler, cfg.controller, cfg.cores, cfg.seed);
  std::unique_ptr<verif::InvariantAuditor> auditor;
  if (cfg.audit.enabled) {
    auditor = std::make_unique<verif::InvariantAuditor>(dram, mcu, cfg.audit);
  }
  std::unique_ptr<mc::FaultInjector> fault;
  if (cfg.fault.enabled) {
    fault = std::make_unique<mc::FaultInjector>(cfg.fault);
    mcu.set_fault_injector(fault.get());
  }
  ProgressWatchdog watchdog(cfg.progress_window_ticks);

  util::Xoshiro256 rng(cfg.seed ^ 0x0be9100bULL);
  // Per-core sequential stream cursors with geometric run lengths, giving
  // the same row-locality texture the closed-loop system produces.
  std::vector<std::uint64_t> cursor(cfg.cores);
  std::vector<std::uint32_t> run_left(cfg.cores, 0);
  for (auto& c : cursor) c = rng.below(cfg.footprint_lines);

  std::uint64_t offered = 0, accepted = 0;
  double carry = 0.0;
  bool measuring = false;
  Tick measure_start = 0;

  const Tick total = cfg.warmup_ticks + cfg.measure_ticks;
  for (Tick now = 0; now < total; ++now) {
    if (!measuring && now >= cfg.warmup_ticks) {
      measuring = true;
      measure_start = now;
      mcu.reset_stats();
      offered = accepted = 0;
    }
    carry += cfg.inject_per_tick;
    while (carry >= 1.0) {
      carry -= 1.0;
      ++offered;
      const auto core = static_cast<CoreId>(rng.below(cfg.cores));
      if (run_left[core] == 0) {
        cursor[core] = rng.below(cfg.footprint_lines);
        run_left[core] = 1 + util::geometric_run(
                                 rng, 1.0 - 1.0 / cfg.seq_run_lines, 256);
      }
      --run_left[core];
      const Addr addr =
          (static_cast<Addr>(core) * cfg.footprint_lines + cursor[core]) * kLineBytes;
      cursor[core] = (cursor[core] + 1) % cfg.footprint_lines;
      const bool ok = rng.chance(cfg.write_share) ? mcu.enqueue_write(core, addr, now)
                                                  : mcu.enqueue_read(core, addr, now);
      accepted += ok;
    }
    mcu.tick(now);
    if ((now & 1023) == 0 &&
        watchdog.poll(now, mcu.served_total(), !mcu.idle())) {
      watchdog.raise("open-loop run", mcu, scheduler, now);
    }
    if (cfg.engine != Engine::kSkip) continue;
    // Fast-forward over ticks where the controller provably does nothing
    // and no injection fires. The accumulator still advances one add per
    // skipped tick (same float op sequence as unit stepping), and the loop
    // stops just before the add that would cross 1.0, at the warmup
    // boundary, at the next poll boundary, and at the controller's next
    // event — so visited ticks and RNG draws match the cycle oracle.
    if (carry + cfg.inject_per_tick >= 1.0) continue;  // injecting next tick
    Tick limit = std::min(mcu.next_activity_tick(now), total);
    if (!measuring) limit = std::min(limit, cfg.warmup_ticks);
    if (watchdog.enabled()) limit = std::min(limit, (now | 1023) + 1);
    while (now + 1 < limit && carry + cfg.inject_per_tick < 1.0) {
      carry += cfg.inject_per_tick;
      ++now;
    }
  }
  if (auditor) auditor->finalize(total);

  OpenLoopResult r;
  const double mt = static_cast<double>(cfg.measure_ticks);
  r.offered_per_tick = static_cast<double>(offered) / mt;
  r.accepted_per_tick = static_cast<double>(accepted) / mt;
  r.rejected_share =
      offered ? 1.0 - static_cast<double>(accepted) / static_cast<double>(offered) : 0.0;
  const auto& st = mcu.stats();
  const double ratio = cfg.controller.cpu_ratio;
  r.avg_read_latency_ticks = st.read_latency_cpu.mean() / ratio;
  r.p50_ticks = st.read_latency_hist.quantile(0.5) / ratio;
  r.p90_ticks = st.read_latency_hist.quantile(0.9) / ratio;
  r.p99_ticks = st.read_latency_hist.quantile(0.99) / ratio;
  r.row_hit_rate = st.row_hit_rate();
  const Tick elapsed = total - measure_start;
  // Utilization counts since construction; subtract nothing — warmup skew is
  // negligible at these lengths, and the value is informational.
  r.data_bus_utilization = dram.data_bus_utilization(total) *
                           static_cast<double>(total) / static_cast<double>(elapsed);
  return r;
}

}  // namespace memsched::sim
