// Open-loop controller tester: drives a MemoryController directly with a
// synthetic arrival process — no cores, no caches — to measure classic
// queueing behaviour (latency-vs-load curves, saturation points) per
// scheduling policy. Used by bench/latency_curves and the queueing tests.
#pragma once

#include <cstdint>

#include "ckpt/policy.hpp"
#include "mc/controller.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"
#include "verif/invariant_auditor.hpp"

namespace memsched::sim {

struct OpenLoopConfig {
  /// Time-advancement strategy; byte-identical results either way (the skip
  /// engine advances the injection accumulator per skipped tick and stops at
  /// every injection, poll boundary and controller event).
  Engine engine = Engine::kSkip;

  std::uint32_t cores = 4;
  double inject_per_tick = 0.2;  ///< aggregate offered load, requests/tick
  double write_share = 0.3;
  double seq_run_lines = 16.0;   ///< mean consecutive lines per core stream
  std::uint64_t footprint_lines = 1 << 22;  ///< per-core address range
  Tick warmup_ticks = 5'000;
  Tick measure_ticks = 40'000;
  std::uint64_t seed = 1;

  dram::Timing timing{};
  dram::Organization org{};
  dram::Interleave interleave = dram::Interleave::kHybrid;
  mc::ControllerConfig controller{};
  verif::AuditConfig audit{};  ///< same opt-in as the closed-loop system

  /// Forward-progress watchdog: no request retired for this many ticks with
  /// work queued raises sim::LivelockError. 0 disables.
  Tick progress_window_ticks = 200'000;

  /// Fault injection (chaos testing); off = bit-identical request path.
  mc::FaultConfig fault{};
};

struct OpenLoopResult {
  double offered_per_tick = 0.0;
  double accepted_per_tick = 0.0;  ///< < offered when the buffer rejects
  double rejected_share = 0.0;
  double avg_read_latency_ticks = 0.0;
  double p50_ticks = 0.0;
  double p90_ticks = 0.0;
  double p99_ticks = 0.0;
  double row_hit_rate = 0.0;
  double data_bus_utilization = 0.0;

  /// Offered load exceeded what the system could drain.
  [[nodiscard]] bool saturated() const { return rejected_share > 0.01; }
};

/// Runs the open-loop experiment; the scheduler is reset() first.
OpenLoopResult run_open_loop(const OpenLoopConfig& cfg, sched::Scheduler& scheduler);

/// Checkpoint-aware variant: same contract as MultiCoreSystem::run — resume
/// from `policy.path` when a valid snapshot exists, periodic saves, stop-flag
/// park via ckpt::CheckpointStop; a resumed run's result is byte-identical
/// to an uninterrupted one. Rejected while the auditor is enabled.
OpenLoopResult run_open_loop(const OpenLoopConfig& cfg, sched::Scheduler& scheduler,
                             const ckpt::CheckpointPolicy& policy);

}  // namespace memsched::sim
