#include "sim/metrics.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace memsched::sim {

double smt_speedup(const std::vector<double>& ipc_multi,
                   const std::vector<double>& ipc_single) {
  MEMSCHED_ASSERT(ipc_multi.size() == ipc_single.size(), "metric size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < ipc_multi.size(); ++i) {
    MEMSCHED_ASSERT(ipc_single[i] > 0.0, "zero single-core IPC");
    s += ipc_multi[i] / ipc_single[i];
  }
  return s;
}

std::vector<double> slowdowns(const std::vector<double>& ipc_multi,
                              const std::vector<double>& ipc_single) {
  MEMSCHED_ASSERT(ipc_multi.size() == ipc_single.size(), "metric size mismatch");
  std::vector<double> out(ipc_multi.size());
  for (std::size_t i = 0; i < ipc_multi.size(); ++i) {
    MEMSCHED_ASSERT(ipc_multi[i] > 0.0, "zero multi-core IPC");
    out[i] = ipc_single[i] / ipc_multi[i];
  }
  return out;
}

double unfairness(const std::vector<double>& ipc_multi,
                  const std::vector<double>& ipc_single) {
  const auto sd = slowdowns(ipc_multi, ipc_single);
  const auto [mn, mx] = std::minmax_element(sd.begin(), sd.end());
  MEMSCHED_ASSERT(*mn > 0.0, "non-positive slowdown");
  return *mx / *mn;
}

}  // namespace memsched::sim
