// The paper's Table 3 workload mixes.
//
// Each workload is a string of Table-2 application codes, one per core:
// e.g. 4MIX-2 = "hzde" = mesa, apsi, mgrid, applu.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/app_profile.hpp"

namespace memsched::sim {

struct Workload {
  std::string name;   ///< e.g. "4MEM-1"
  std::string codes;  ///< Table-2 codes, one per core
  bool memory_intensive = false;  ///< MEM vs MIX group

  [[nodiscard]] std::uint32_t cores() const {
    return static_cast<std::uint32_t>(codes.size());
  }
  /// Resolve codes to application profiles (one per core).
  [[nodiscard]] std::vector<trace::AppProfile> apps() const;
};

/// All 36 mixes of Table 3, in table order.
const std::vector<Workload>& table3_workloads();

/// Mixes with the given core count; `type` is "MEM", "MIX" or "ALL".
std::vector<Workload> table3_workloads(std::uint32_t cores, const std::string& type);

/// Lookup by name (e.g. "4MEM-1"); throws std::invalid_argument if unknown.
const Workload& workload_by_name(const std::string& name);

/// Build a custom workload from Table-2 application codes (one per core),
/// e.g. make_workload("my-mix", "bcde"). Throws on unknown codes.
Workload make_workload(std::string name, std::string codes);

/// Resolve either a Table-3 name ("4MEM-1") or a "codes:bcde" custom spec.
Workload resolve_workload(const std::string& spec);

}  // namespace memsched::sim
