// Evaluation metrics (paper §4.1 and §5.3).
#pragma once

#include <vector>

namespace memsched::sim {

/// SMT speedup [Snavely et al.]: sum over cores of
/// IPC_multi[i] / IPC_single[i], where IPC_single is the same application on
/// the single-core system with the same evaluation slice. Guards against
/// policies that simply starve everyone but the highest-ILP program.
double smt_speedup(const std::vector<double>& ipc_multi,
                   const std::vector<double>& ipc_single);

/// Per-core slowdown: IPC_single[i] / IPC_multi[i] (>= 1 under contention).
std::vector<double> slowdowns(const std::vector<double>& ipc_multi,
                              const std::vector<double>& ipc_single);

/// Unfairness [Gabor et al., Mutlu & Moscibroda]: max slowdown / min
/// slowdown among the concurrent applications. 1.0 is perfectly fair.
double unfairness(const std::vector<double>& ipc_multi,
                  const std::vector<double>& ipc_single);

}  // namespace memsched::sim
