#include "sim/runner.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace memsched::sim {

unsigned default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_for(std::size_t n, unsigned threads,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  const unsigned count = static_cast<unsigned>(std::min<std::size_t>(threads, n));
  pool.reserve(count);
  for (unsigned t = 0; t < count; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace memsched::sim
