// Experiment drivers: the paper's two-phase methodology as a library.
//
// Phase 1 (profiling, §3.1/Table 2): run each application alone on the
// single-core system with a *profiling* slice (seed) and measure
// IPC_single and BW_single -> ME via Equation 1.
//
// Phase 2 (evaluation, §4.1): run a Table-3 workload on the N-core system
// with an *evaluation* slice under a given scheduling scheme; compare per-
// core IPCs against single-core references (same evaluation slice length)
// to compute SMT speedup and unfairness.
#pragma once

#include <csignal>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/memory_efficiency.hpp"
#include "sim/metrics.hpp"
#include "sim/system.hpp"
#include "sim/workloads.hpp"

namespace memsched::sim {

struct ExperimentConfig {
  SystemConfig base;  ///< cores field is overridden per run

  /// Scaled-down slice lengths (the paper uses 10M profiling / 100M
  /// evaluation instructions; synthetic streams are stationary and converge
  /// much faster — see DESIGN.md).
  std::uint64_t profile_insts = 1'000'000;
  std::uint64_t eval_insts = 300'000;
  std::uint64_t warmup_insts = 20'000;  ///< pipeline/queue settling before stats reset

  /// Distinct seeds stand in for the paper's distinct SimPoint selections
  /// for profiling vs. evaluation ("we use different simpoints for profiling
  /// and performance comparison").
  std::uint64_t profile_seed = 1001;
  std::uint64_t eval_seed = 2002;

  /// Evaluation slices averaged per (workload, scheme). The paper runs one
  /// 100M-instruction slice; our slices are shorter, so averaging a few
  /// independent ones recovers comparable statistical weight.
  std::uint32_t eval_repeats = 3;

  /// Priority-table entry width handed to ME-LREQ-HW (ablation knob).
  unsigned table_bits = 10;

  Tick max_ticks = Tick{1} << 40;

  /// Checkpoint/restore (docs/robustness.md). When `ckpt_dir` is non-empty,
  /// every sub-run (profiling, single-core reference, evaluation slice)
  /// saves periodic snapshots under it and resumes from a valid one — a
  /// killed-and-restarted experiment reproduces byte-identical results.
  /// Silently degraded to OFF while the invariant auditor is enabled (the
  /// auditor's shadow state is not serialized). `ckpt_stop` is the
  /// cooperative stop flag (typically ckpt::stop_flag()): when it fires the
  /// active sub-run parks its state and throws ckpt::CheckpointStop.
  std::string ckpt_dir;
  Tick ckpt_interval = 1'000'000;
  const volatile std::sig_atomic_t* ckpt_stop = nullptr;
};

/// One workload x scheme evaluation, averaged over eval_repeats slices.
struct WorkloadRun {
  std::string workload;
  std::string scheme;
  double smt_speedup = 0.0;
  double unfairness = 0.0;
  double avg_read_latency_cpu = 0.0;           ///< all cores, CPU cycles
  std::vector<double> core_read_latency_cpu;   ///< per core
  std::vector<double> ipc_multi;               ///< per core (mean over slices)
  std::vector<double> ipc_single;              ///< matching references
  double row_hit_rate = 0.0;
  double bus_utilization = 0.0;
  RunResult raw;  ///< full detail of the last slice
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig cfg);

  /// Profiled ME for one application (cached across calls).
  const core::MeProfile& profile(const std::string& app_name);

  /// Single-core IPC reference for one evaluation slice seed (cached).
  double single_ipc(const std::string& app_name, std::uint64_t seed);
  double single_ipc(const std::string& app_name) {
    return single_ipc(app_name, cfg_.eval_seed);
  }

  /// Profiled ME table for a workload (one entry per core).
  core::MeTable me_table_for(const Workload& w);

  /// Full evaluation of `w` under scheme `scheme_name` (factory names).
  WorkloadRun run(const Workload& w, const std::string& scheme_name);

  /// System configuration with the core count overridden.
  [[nodiscard]] SystemConfig config_for(std::uint32_t cores) const;

  [[nodiscard]] const ExperimentConfig& config() const { return cfg_; }

 private:
  /// Checkpoint policy for one named sub-run; inert when ckpt_dir is empty
  /// or the auditor is enabled. `context` becomes both the snapshot file
  /// stem and part of the fingerprint, so snapshots from different sub-runs
  /// can never be confused.
  [[nodiscard]] ckpt::CheckpointPolicy policy_for(const std::string& context,
                                                  ckpt::ResumeInfo* info) const;

  ExperimentConfig cfg_;
  std::mutex mu_;
  std::map<std::string, core::MeProfile> profiles_;
  std::map<std::pair<std::string, std::uint64_t>, double> single_ipc_;
};

}  // namespace memsched::sim
