#include "sim/json_report.hpp"

namespace memsched::sim {

namespace {

util::Json vec_to_json(const std::vector<double>& xs) {
  util::Json a = util::Json::array();
  for (const double x : xs) a.push_back(x);
  return a;
}

}  // namespace

util::Json to_json(const RunResult& r) {
  util::Json j = util::Json::object();
  j["ticks"] = r.ticks;
  j["hit_tick_limit"] = r.hit_tick_limit;
  j["avg_read_latency_cpu"] = r.avg_read_latency_cpu;
  j["row_hit_rate"] = r.row_hit_rate;
  j["data_bus_utilization"] = r.data_bus_utilization;
  j["bandwidth_gbs"] = r.bandwidth_gbs;
  j["dram_power_watts"] = r.dram_power_watts;

  util::Json energy = util::Json::object();
  energy["activate_j"] = r.dram_energy.activate;
  energy["read_j"] = r.dram_energy.read;
  energy["write_j"] = r.dram_energy.write;
  energy["refresh_j"] = r.dram_energy.refresh;
  energy["background_j"] = r.dram_energy.background;
  energy["total_j"] = r.dram_energy.total();
  j["dram_energy"] = std::move(energy);

  util::Json mc = util::Json::object();
  mc["reads_served"] = r.controller_stats.reads_served;
  mc["writes_served"] = r.controller_stats.writes_served;
  mc["read_forwards"] = r.controller_stats.read_forwards;
  mc["write_merges"] = r.controller_stats.write_merges;
  mc["row_hits"] = r.controller_stats.row_hits;
  mc["row_closed"] = r.controller_stats.row_closed;
  mc["row_conflicts"] = r.controller_stats.row_conflicts;
  mc["drain_entries"] = r.controller_stats.drain_entries;
  j["controller"] = std::move(mc);

  util::Json cores = util::Json::array();
  for (const CoreResult& c : r.cores) {
    util::Json cj = util::Json::object();
    cj["committed"] = c.committed;
    cj["ipc"] = c.ipc;
    cj["avg_read_latency_cpu"] = c.avg_read_latency_cpu;
    cj["dram_reads"] = c.dram_reads;
    cj["dram_writes"] = c.dram_writes;
    cj["stall_rob"] = c.core_stats.stall_rob;
    cj["stall_dep"] = c.core_stats.stall_dep;
    cj["stall_mshr"] = c.core_stats.stall_mshr;
    cores.push_back(std::move(cj));
  }
  j["cores"] = std::move(cores);

  // Sampled-engine estimates only; exact-engine reports stay byte-identical
  // to every report written before sampling existed.
  if (r.sampling.enabled) {
    const auto est_to_json = [](const MetricEstimate& e) {
      util::Json ej = util::Json::object();
      ej["mean"] = e.mean;
      ej["ci95"] = e.ci95;
      return ej;
    };
    util::Json s = util::Json::object();
    s["intervals_measured"] = r.sampling.intervals_measured;
    s["measured_insts_per_core"] = r.sampling.measured_insts_per_core;
    s["skipped_insts_per_core"] = r.sampling.skipped_insts_per_core;
    s["total_ipc"] = est_to_json(r.sampling.total_ipc);
    s["read_latency_cpu"] = est_to_json(r.sampling.read_latency_cpu);
    s["row_hit_rate"] = est_to_json(r.sampling.row_hit_rate);
    s["bandwidth_gbs"] = est_to_json(r.sampling.bandwidth_gbs);
    s["bus_utilization"] = est_to_json(r.sampling.bus_utilization);
    s["ipc_ratio"] = est_to_json(r.sampling.ipc_ratio);
    util::Json per_core = util::Json::array();
    for (const MetricEstimate& e : r.sampling.core_ipc) per_core.push_back(est_to_json(e));
    s["core_ipc"] = std::move(per_core);
    j["sampling"] = std::move(s);
  }
  return j;
}

util::Json to_json(const WorkloadRun& run) {
  util::Json j = util::Json::object();
  j["workload"] = run.workload;
  j["scheme"] = run.scheme;
  j["smt_speedup"] = run.smt_speedup;
  j["unfairness"] = run.unfairness;
  j["avg_read_latency_cpu"] = run.avg_read_latency_cpu;
  j["row_hit_rate"] = run.row_hit_rate;
  j["bus_utilization"] = run.bus_utilization;
  j["ipc_multi"] = vec_to_json(run.ipc_multi);
  j["ipc_single"] = vec_to_json(run.ipc_single);
  j["core_read_latency_cpu"] = vec_to_json(run.core_read_latency_cpu);
  j["last_slice"] = to_json(run.raw);
  return j;
}

util::Json to_json(const SystemConfig& config) {
  util::Json j = util::Json::object();
  j["cores"] = config.cores;
  j["cpu_ghz"] = config.cpu_ghz;
  j["cpu_ratio"] = config.cpu_ratio;
  j["engine"] = engine_name(config.engine);
  j["channels"] = config.org.channels;
  j["banks_per_channel"] = config.org.banks_per_channel();
  j["interleave"] = dram::AddressMap::scheme_name(config.interleave);
  j["bank_xor"] = config.bank_xor;
  j["buffer_entries"] = config.controller.buffer_entries;
  j["drain_high"] = config.controller.drain_high;
  j["drain_low"] = config.controller.drain_low;
  switch (config.controller.page_policy) {
    case mc::PagePolicy::kClosePage: j["page_policy"] = "close"; break;
    case mc::PagePolicy::kOpenPage: j["page_policy"] = "open"; break;
    case mc::PagePolicy::kAdaptive: j["page_policy"] = "adaptive"; break;
  }
  j["tCL"] = config.timing.tCL;
  j["tRCD"] = config.timing.tRCD;
  j["tRP"] = config.timing.tRP;
  j["refresh_enabled"] = config.timing.refresh_enabled;
  j["l2_bytes"] = config.hierarchy.l2.size_bytes;
  j["warm_caches"] = config.warm_caches;
  return j;
}

}  // namespace memsched::sim
