// Out-of-order core performance model.
//
// Trace-driven occupancy model of the paper's Table-1 core (4-issue,
// 196-entry ROB, 32-entry LQ/SQ, 16-stage pipeline at 3.2 GHz). The model
// captures what the memory system sees and feels:
//
//   * dispatch proceeds at the application's inherent ILP rate (dispatch_ipc)
//     up to issue_width, while the ROB has room;
//   * loads issue into the cache hierarchy; L1 hits complete immediately,
//     deeper hits/misses occupy the load queue / L1D MSHRs and block in-order
//     commit when they reach the ROB head — multiple independent misses
//     inside the ROB window overlap (memory-level parallelism), while
//     dependent (pointer-chasing) loads serialize;
//   * stores retire into the hierarchy without stalling commit (store queue
//     semantics), back-pressured only by L2-MSHR availability;
//   * optional I-fetch modeling: one line fetch per 16 instructions; an
//     L1I miss stalls the frontend until the line returns.
//
// The model is stepped in CPU-cycle windows by the simulation kernel
// (cpu_ratio cycles per memory-bus tick) and fast-forwards through cycles
// where both commit and issue are provably blocked.
#pragma once

#include <cstdint>
#include <deque>

#include "cache/hierarchy.hpp"
#include "trace/inst_stream.hpp"
#include "util/types.hpp"

namespace memsched::ckpt {
class Writer;
class Reader;
}  // namespace memsched::ckpt

namespace memsched::cpu {

struct CoreConfig {
  std::uint32_t issue_width = 4;
  std::uint32_t rob_entries = 196;
  std::uint32_t lq_entries = 32;
  std::uint32_t sq_entries = 32;
  std::uint32_t l1d_mshr = 32;  ///< max outstanding L1D misses (Table 1)
  std::uint32_t l1i_mshr = 8;
  bool model_ifetch = true;
  std::uint32_t insts_per_fetch_line = 16;  ///< 64 B line / 4 B instructions
};

struct CoreRunStats {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t l1d_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t dram_loads = 0;
  std::uint64_t stall_rob = 0;       ///< cycles issue blocked: ROB full
  std::uint64_t stall_dep = 0;       ///< dependent load waiting
  std::uint64_t stall_mshr = 0;      ///< LQ / L1D MSHR full
  std::uint64_t stall_sq = 0;        ///< store queue full
  std::uint64_t stall_backpressure = 0;  ///< L2 MSHR / controller retry
  std::uint64_t stall_frontend = 0;  ///< I-fetch miss
};

class CoreModel {
 public:
  CoreModel(CoreId id, const CoreConfig& cfg, double dispatch_ipc,
            trace::InstStream& stream, cache::CacheHierarchy& hierarchy);

  /// Advance the core to absolute CPU cycle `target_cpu` (exclusive).
  void step_to(CpuCycle target_cpu);

  /// Fill delivery for a waiter token this core registered.
  void on_fill(std::uint64_t token, CpuCycle done_cpu);

  /// Sentinel for next_activity_cycle(): progress needs an external fill.
  static constexpr CpuCycle kIdle = ~CpuCycle{0};

  /// Earliest CPU cycle at which this core can make progress on its own:
  /// the last stepping-window end while the core was actively issuing or
  /// committing, the earliest known completion / frontend-ready cycle while
  /// blocked, or kIdle when only an external fill can unblock it. May be
  /// conservatively early, never late; refreshed by step_to and on_fill.
  [[nodiscard]] CpuCycle next_activity_cycle() const { return self_wake_; }

  [[nodiscard]] CoreId id() const { return id_; }
  [[nodiscard]] std::uint64_t committed() const { return commit_num_; }
  [[nodiscard]] CpuCycle cycle() const { return cycle_; }
  [[nodiscard]] std::uint32_t outstanding_misses() const {
    return static_cast<std::uint32_t>(outstanding_.size());
  }
  [[nodiscard]] std::uint32_t outstanding_stores() const { return store_q_used_; }
  [[nodiscard]] const CoreRunStats& stats() const { return stats_; }

  /// Zero the stall/access counters (pipeline state untouched).
  void reset_stats() { stats_ = CoreRunStats{}; }

  // --- sampled-engine support -------------------------------------------
  /// A paused core retires and commits what is already in flight but
  /// fetches/dispatches nothing — used to drain the system to a quiescent
  /// point before a functional fast-forward. Not checkpointed: pause is a
  /// transient run_sampled-internal state.
  void set_paused(bool paused) { paused_ = paused; }
  [[nodiscard]] bool paused() const { return paused_; }

  /// True when nothing is in flight in this core: every issued instruction
  /// committed, no outstanding loads or store-queue fills, frontend not
  /// waiting on a miss.
  [[nodiscard]] bool quiescent() const {
    return outstanding_.empty() && commit_num_ == issue_num_ &&
           store_q_used_ == 0 && frontend_ready_ != kPending;
  }

  /// Functionally execute the next `n` trace instructions: the stream and
  /// the issue/commit counters advance and the cache hierarchy stays warm
  /// via timing-free touches, but no cycles pass and no statistics accrue.
  /// Requires quiescent() (fills in flight would race the skipped stream).
  void functional_advance(std::uint64_t n);

  /// Pack/unpack waiter tokens: the simulation kernel routes fills by core.
  /// Bit 63 marks I-fetch tokens, bit 62 store-queue tokens.
  static std::uint64_t make_token(CoreId core, std::uint64_t seq, bool ifetch,
                                  bool store = false) {
    return (static_cast<std::uint64_t>(ifetch) << 63) |
           (static_cast<std::uint64_t>(store) << 62) |
           (static_cast<std::uint64_t>(core) << 48) | (seq & 0xffffffffffffULL);
  }
  static CoreId token_core(std::uint64_t token) {
    return static_cast<CoreId>((token >> 48) & 0x3fff);
  }

  /// Checkpoint/restore: pipeline occupancy, outstanding loads, frontend
  /// state, dispatch budget and stall counters. The instruction stream is
  /// saved separately by the caller (the system snapshot).
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  static constexpr CpuCycle kPending = ~CpuCycle{0};

  struct OutstandingLoad {
    std::uint64_t inst_num;  ///< position in program order
    CpuCycle done;           ///< kPending until the fill arrives
    std::uint64_t token;
  };

  /// Why the last failed issue attempt was blocked — which stall counter a
  /// fast-forwarded span belongs to.
  enum class StallKind : std::uint8_t {
    kNone, kRob, kDep, kMshr, kSq, kBackpressure, kFrontend
  };

  /// Try to issue one instruction; returns false when blocked this cycle
  /// (side-effect free on failure, and records the reason in last_stall_).
  bool try_issue_one();
  void do_ifetch_accounting();
  [[nodiscard]] bool last_load_complete() const;

  /// Per-cycle accounting for `span` fast-forwarded blocked cycles: each
  /// would have bumped the last_stall_ counter once and (for issue-path
  /// stalls) accrued dispatch budget, exactly as unit stepping does — so
  /// stall counters and budget are invariant under window partitioning.
  void account_stall_span(CpuCycle span);

  CoreId id_;
  CoreConfig cfg_;
  double dispatch_ipc_;
  trace::InstStream& stream_;
  cache::CacheHierarchy& hierarchy_;

  CpuCycle cycle_ = 0;
  bool paused_ = false;           ///< see set_paused()
  std::uint64_t issue_num_ = 0;   ///< instructions dispatched
  std::uint64_t commit_num_ = 0;  ///< instructions committed (in order)
  double budget_ = 0.0;
  StallKind last_stall_ = StallKind::kNone;
  CpuCycle self_wake_ = 0;  ///< see next_activity_cycle()

  std::deque<OutstandingLoad> outstanding_;  ///< issue-order, L1-missing loads
  std::uint64_t next_token_seq_ = 0;

  bool have_pending_rec_ = false;
  trace::InstRecord pending_rec_{};

  std::uint64_t last_load_token_ = 0;
  bool last_load_tracked_ = false;  ///< last load is (or was) in outstanding_

  std::uint32_t store_q_used_ = 0;  ///< store-miss entries awaiting their fill

  // Frontend state.
  std::uint32_t insts_to_next_line_;
  Addr code_pos_ = 0;
  CpuCycle frontend_ready_ = 0;  ///< issue allowed from this cycle; kPending while miss in flight
  std::uint64_t frontend_token_ = 0;

  CoreRunStats stats_;
};

}  // namespace memsched::cpu
