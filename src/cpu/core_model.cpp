#include "cpu/core_model.hpp"

#include <algorithm>

#include "ckpt/snapshot.hpp"
#include "util/assert.hpp"

namespace memsched::cpu {

using cache::AccessOutcome;

CoreModel::CoreModel(CoreId id, const CoreConfig& cfg, double dispatch_ipc,
                     trace::InstStream& stream, cache::CacheHierarchy& hierarchy)
    : id_(id),
      cfg_(cfg),
      dispatch_ipc_(dispatch_ipc),
      stream_(stream),
      hierarchy_(hierarchy),
      insts_to_next_line_(cfg.insts_per_fetch_line) {
  MEMSCHED_ASSERT(dispatch_ipc > 0.0, "dispatch IPC must be positive");
  MEMSCHED_ASSERT(cfg.issue_width > 0 && cfg.rob_entries > 0, "invalid core config");
}

bool CoreModel::last_load_complete() const {
  if (!last_load_tracked_) return true;  // it was an L1 hit (or none yet)
  for (const OutstandingLoad& o : outstanding_) {
    if (o.token == last_load_token_)
      return o.done != kPending && o.done <= cycle_;
  }
  return true;  // already retired from the list
}

void CoreModel::do_ifetch_accounting() {
  if (!cfg_.model_ifetch || stream_.code_bytes() == 0) return;
  if (--insts_to_next_line_ > 0) return;
  insts_to_next_line_ = cfg_.insts_per_fetch_line;
  const Addr addr = stream_.code_base() + code_pos_;
  code_pos_ = (code_pos_ + kLineBytes) % stream_.code_bytes();
  const std::uint64_t token = make_token(id_, next_token_seq_++, /*ifetch=*/true);
  const cache::AccessReply reply = hierarchy_.ifetch(id_, addr, cycle_, token);
  switch (reply.outcome) {
    case AccessOutcome::kHitL1:
      break;  // pipelined fetch, no stall
    case AccessOutcome::kHitL2:
      frontend_ready_ = reply.done_cpu;
      break;
    case AccessOutcome::kMiss:
      frontend_ready_ = kPending;
      frontend_token_ = token;
      break;
    case AccessOutcome::kRetry:
      // Treat as a short fixed stall and refetch the same line next time.
      frontend_ready_ = cycle_ + 4;
      insts_to_next_line_ = 1;
      code_pos_ = (code_pos_ + stream_.code_bytes() - kLineBytes) % stream_.code_bytes();
      break;
  }
}

bool CoreModel::try_issue_one() {
  // ROB occupancy limit.
  if (issue_num_ - commit_num_ >= cfg_.rob_entries) {
    ++stats_.stall_rob;
    last_stall_ = StallKind::kRob;
    return false;
  }
  if (!have_pending_rec_) {
    pending_rec_ = stream_.next();
    have_pending_rec_ = true;
  }
  const trace::InstRecord& rec = pending_rec_;

  switch (rec.cls) {
    case trace::InstClass::kCompute:
      break;  // always issuable

    case trace::InstClass::kLoad: {
      if (rec.dep_on_prev && !last_load_complete()) {
        ++stats_.stall_dep;
        last_stall_ = StallKind::kDep;
        return false;
      }
      const auto limit = std::min(cfg_.lq_entries, cfg_.l1d_mshr);
      if (outstanding_.size() >= limit) {
        ++stats_.stall_mshr;
        last_stall_ = StallKind::kMshr;
        return false;
      }
      // The token sequence number is consumed only when the access goes
      // through: a back-pressured attempt is repeated a different number of
      // times under different stepping windows, and must stay a pure no-op.
      const std::uint64_t token = make_token(id_, next_token_seq_, /*ifetch=*/false);
      const cache::AccessReply reply = hierarchy_.load(id_, rec.addr, cycle_, token);
      switch (reply.outcome) {
        case AccessOutcome::kRetry:
          ++stats_.stall_backpressure;
          last_stall_ = StallKind::kBackpressure;
          return false;
        case AccessOutcome::kHitL1:
          // Completes within the pipeline; never blocks commit in practice.
          ++stats_.l1d_hits;
          last_load_tracked_ = false;
          break;
        case AccessOutcome::kHitL2:
          ++stats_.l2_hits;
          outstanding_.push_back({issue_num_, reply.done_cpu, token});
          last_load_token_ = token;
          last_load_tracked_ = true;
          break;
        case AccessOutcome::kMiss:
          ++stats_.dram_loads;
          outstanding_.push_back({issue_num_, kPending, token});
          last_load_token_ = token;
          last_load_tracked_ = true;
          break;
      }
      ++next_token_seq_;
      ++stats_.loads;
      break;
    }

    case trace::InstClass::kStore: {
      if (store_q_used_ >= cfg_.sq_entries) {
        ++stats_.stall_sq;
        last_stall_ = StallKind::kSq;
        return false;
      }
      // An L1 hit retires instantly; a miss occupies a store-queue entry
      // until its fill returns (tracked via a bit-62 token).
      const Addr line = line_base(rec.addr);
      const bool will_miss = !hierarchy_.l1d(id_).probe(line);
      const std::uint64_t token =
          will_miss ? make_token(id_, next_token_seq_, false, /*store=*/true)
                    : cache::CacheHierarchy::kNoWaiterToken;
      if (!hierarchy_.store(id_, rec.addr, token)) {
        ++stats_.stall_backpressure;
        last_stall_ = StallKind::kBackpressure;
        return false;
      }
      if (will_miss) ++next_token_seq_;
      if (will_miss && hierarchy_.l2_mshr().find(line) != nullptr) {
        // The fill is genuinely in flight and our token is registered.
        ++store_q_used_;
      }
      ++stats_.stores;
      break;
    }
  }

  have_pending_rec_ = false;
  ++issue_num_;
  do_ifetch_accounting();
  return true;
}

void CoreModel::account_stall_span(CpuCycle span) {
  if (span == 0 || last_stall_ == StallKind::kNone) return;
  switch (last_stall_) {
    case StallKind::kRob: stats_.stall_rob += span; break;
    case StallKind::kDep: stats_.stall_dep += span; break;
    case StallKind::kMshr: stats_.stall_mshr += span; break;
    case StallKind::kSq: stats_.stall_sq += span; break;
    case StallKind::kBackpressure: stats_.stall_backpressure += span; break;
    case StallKind::kFrontend: stats_.stall_frontend += span; break;
    case StallKind::kNone: break;
  }
  if (last_stall_ == StallKind::kFrontend) return;
  // Replicate the per-cycle accrual `budget_ = min(budget_ + ipc, width)`
  // for each skipped cycle — the cap is a fixed point, so stop there. The
  // add-per-cycle loop (not one fused multiply) keeps the floating-point
  // value bit-identical to unit stepping.
  const auto width = static_cast<double>(cfg_.issue_width);
  for (CpuCycle i = 0; i < span; ++i) {
    const double next = budget_ + dispatch_ipc_;
    if (next >= width) {
      budget_ = width;
      break;
    }
    budget_ = next;
  }
}

void CoreModel::step_to(CpuCycle target_cpu) {
  self_wake_ = target_cpu;  // active unless the window ends provably blocked
  if (paused_) {
    // Drain mode: retire and commit what is in flight, fetch and dispatch
    // nothing, accrue no stall statistics (the next interval's warmup+reset
    // would wipe them anyway, but keeping them clean avoids surprises).
    while (cycle_ < target_cpu) {
      while (!outstanding_.empty() && outstanding_.front().done != kPending &&
             outstanding_.front().done <= cycle_) {
        outstanding_.pop_front();
      }
      const std::uint64_t commit_limit =
          outstanding_.empty() ? issue_num_ : outstanding_.front().inst_num;
      commit_num_ = std::min(commit_num_ + cfg_.issue_width, commit_limit);
      ++cycle_;
      if (outstanding_.empty() && commit_num_ == issue_num_) {
        cycle_ = target_cpu;  // fully drained — nothing left to advance
        self_wake_ = kIdle;
      }
    }
    return;
  }
  while (cycle_ < target_cpu) {
    // Retire loads whose data has arrived (front of the program-order list).
    while (!outstanding_.empty() && outstanding_.front().done != kPending &&
           outstanding_.front().done <= cycle_) {
      outstanding_.pop_front();
    }

    // In-order commit up to the oldest incomplete load, at most issue_width
    // per cycle.
    const std::uint64_t commit_limit =
        outstanding_.empty() ? issue_num_ : outstanding_.front().inst_num;
    commit_num_ = std::min(commit_num_ + cfg_.issue_width, commit_limit);

    // Dispatch.
    bool issue_blocked = false;
    if (frontend_ready_ == kPending || frontend_ready_ > cycle_) {
      ++stats_.stall_frontend;
      last_stall_ = StallKind::kFrontend;
      issue_blocked = true;
    } else {
      budget_ = std::min(budget_ + dispatch_ipc_, static_cast<double>(cfg_.issue_width));
      while (budget_ >= 1.0) {
        if (!try_issue_one()) {
          issue_blocked = true;
          break;
        }
        budget_ -= 1.0;
        if (frontend_ready_ == kPending || frontend_ready_ > cycle_) break;
      }
    }

    ++cycle_;

    // Fast-forward: if commit is blocked on an incomplete load AND issue is
    // blocked, nothing changes until the next known completion (or the end
    // of this stepping window — fills arrive only at tick boundaries). The
    // skipped cycles still owe their per-cycle stall/budget accounting.
    const bool commit_blocked =
        !outstanding_.empty() && commit_num_ == outstanding_.front().inst_num;
    if (issue_blocked && commit_blocked) {
      CpuCycle next_event = kIdle;
      // A stale completion (done <= cycle_) can unblock a dependence next
      // cycle, so it pins next_event at/below cycle_ and forbids the jump.
      for (const OutstandingLoad& o : outstanding_) {
        if (o.done != kPending) next_event = std::min(next_event, o.done);
      }
      if (frontend_ready_ != kPending && frontend_ready_ > cycle_)
        next_event = std::min(next_event, frontend_ready_);
      if (next_event > cycle_) {
        const CpuCycle to = std::min(next_event, target_cpu);
        account_stall_span(to - cycle_);
        cycle_ = to;
      }
      // Blocked through the window end: the stepping kernel may sleep until
      // the next known event (or an external fill) instead of re-stepping.
      if (next_event > target_cpu) self_wake_ = next_event;
    }
  }
}

void CoreModel::functional_advance(std::uint64_t n) {
  MEMSCHED_ASSERT(quiescent(), "functional_advance requires a drained core");
  // Consecutive references to one line collapse into a single warm touch:
  // with no intervening access to the same cache, repeats change neither
  // residency nor relative LRU order — only the dirty bit can still be
  // strengthened by a later store. Span-scoped, so detailed intervals in
  // between can never invalidate the memo.
  Addr last_line = ~Addr{0};
  bool last_dirty = false;
  const bool ifetch = cfg_.model_ifetch && stream_.code_bytes() != 0;
  std::uint64_t remaining = n;
  while (remaining > 0) {
    trace::InstRecord rec;
    std::uint64_t consumed;
    if (have_pending_rec_) {
      rec = pending_rec_;
      have_pending_rec_ = false;
      consumed = 1;
    } else {
      // Batched: the stream skips the whole compute run in one call.
      consumed = stream_.next_ref(remaining, rec);
    }
    remaining -= consumed;
    if (rec.cls != trace::InstClass::kCompute) {
      const bool is_write = rec.cls == trace::InstClass::kStore;
      const Addr line = rec.addr & ~static_cast<Addr>(kLineBytes - 1);
      if (line != last_line) {
        hierarchy_.functional_touch(id_, rec.addr, is_write, /*is_ifetch=*/false);
        last_line = line;
        last_dirty = is_write;
      } else if (is_write && !last_dirty) {
        hierarchy_.functional_touch(id_, rec.addr, /*is_write=*/true, /*is_ifetch=*/false);
        last_dirty = true;
      }
    }
    // Keep the I-fetch line position in step with the instruction count so
    // detailed execution resumes fetching from the right code address: one
    // code-line touch per countdown expiry across the consumed span (the
    // touches land after the span's data touch, which only perturbs L2
    // recency interleaving between the independent L1I/L1D streams).
    if (ifetch) {
      std::uint64_t span = consumed;
      while (span >= insts_to_next_line_) {
        span -= insts_to_next_line_;
        insts_to_next_line_ = cfg_.insts_per_fetch_line;
        const Addr addr = stream_.code_base() + code_pos_;
        code_pos_ = (code_pos_ + kLineBytes) % stream_.code_bytes();
        hierarchy_.functional_touch(id_, addr, /*is_write=*/false, /*is_ifetch=*/true);
      }
      insts_to_next_line_ -= static_cast<std::uint32_t>(span);
    }
  }
  issue_num_ += n;
  commit_num_ += n;
  last_load_tracked_ = false;  // nothing in flight to depend on
}

void CoreModel::on_fill(std::uint64_t token, CpuCycle done_cpu) {
  if (token >> 63) {
    // Frontend fill.
    if (frontend_ready_ == kPending && token == frontend_token_) {
      frontend_ready_ = std::max(done_cpu, cycle_);
      self_wake_ = std::min(self_wake_, frontend_ready_);
    }
    return;
  }
  if ((token >> 62) & 1) {
    // Store-queue entry retires with its fill; a stalled store could issue
    // right away.
    MEMSCHED_ASSERT(store_q_used_ > 0, "store queue accounting underflow");
    --store_q_used_;
    self_wake_ = std::min(self_wake_, cycle_);
    return;
  }
  for (OutstandingLoad& o : outstanding_) {
    if (o.token == token) {
      MEMSCHED_ASSERT(o.done == kPending, "double fill for one load");
      o.done = std::max(done_cpu, cycle_);
      self_wake_ = std::min(self_wake_, o.done);
      return;
    }
  }
  // Token not found: the load was an MSHR merge whose entry the core never
  // tracked? Cannot happen — every kMiss reply records a token. Abort.
  MEMSCHED_ASSERT(false, "fill for unknown load token");
}

void CoreModel::save_state(ckpt::Writer& w) const {
  w.put_u64(cycle_);
  w.put_u64(issue_num_);
  w.put_u64(commit_num_);
  w.put_f64(budget_);
  w.put_u8(static_cast<std::uint8_t>(last_stall_));
  w.put_u64(self_wake_);
  w.put_u64(outstanding_.size());
  for (const OutstandingLoad& l : outstanding_) {
    w.put_u64(l.inst_num);
    w.put_u64(l.done);
    w.put_u64(l.token);
  }
  w.put_u64(next_token_seq_);
  w.put_bool(have_pending_rec_);
  w.put_u8(static_cast<std::uint8_t>(pending_rec_.cls));
  w.put_u64(pending_rec_.addr);
  w.put_bool(pending_rec_.dep_on_prev);
  w.put_u64(last_load_token_);
  w.put_bool(last_load_tracked_);
  w.put_u32(store_q_used_);
  w.put_u32(insts_to_next_line_);
  w.put_u64(code_pos_);
  w.put_u64(frontend_ready_);
  w.put_u64(frontend_token_);
  w.put_u64(stats_.loads);
  w.put_u64(stats_.stores);
  w.put_u64(stats_.l1d_hits);
  w.put_u64(stats_.l2_hits);
  w.put_u64(stats_.dram_loads);
  w.put_u64(stats_.stall_rob);
  w.put_u64(stats_.stall_dep);
  w.put_u64(stats_.stall_mshr);
  w.put_u64(stats_.stall_sq);
  w.put_u64(stats_.stall_backpressure);
  w.put_u64(stats_.stall_frontend);
}

void CoreModel::load_state(ckpt::Reader& r) {
  cycle_ = r.get_u64();
  issue_num_ = r.get_u64();
  commit_num_ = r.get_u64();
  budget_ = r.get_f64();
  last_stall_ = static_cast<StallKind>(r.get_u8());
  self_wake_ = r.get_u64();
  outstanding_.clear();
  const std::uint64_t nout = r.get_u64();
  for (std::uint64_t i = 0; i < nout; ++i) {
    OutstandingLoad l{};
    l.inst_num = r.get_u64();
    l.done = r.get_u64();
    l.token = r.get_u64();
    outstanding_.push_back(l);
  }
  next_token_seq_ = r.get_u64();
  have_pending_rec_ = r.get_bool();
  pending_rec_.cls = static_cast<trace::InstClass>(r.get_u8());
  pending_rec_.addr = r.get_u64();
  pending_rec_.dep_on_prev = r.get_bool();
  last_load_token_ = r.get_u64();
  last_load_tracked_ = r.get_bool();
  store_q_used_ = r.get_u32();
  insts_to_next_line_ = r.get_u32();
  code_pos_ = r.get_u64();
  frontend_ready_ = r.get_u64();
  frontend_token_ = r.get_u64();
  stats_.loads = r.get_u64();
  stats_.stores = r.get_u64();
  stats_.l1d_hits = r.get_u64();
  stats_.l2_hits = r.get_u64();
  stats_.dram_loads = r.get_u64();
  stats_.stall_rob = r.get_u64();
  stats_.stall_dep = r.get_u64();
  stats_.stall_mshr = r.get_u64();
  stats_.stall_sq = r.get_u64();
  stats_.stall_backpressure = r.get_u64();
  stats_.stall_frontend = r.get_u64();
}

}  // namespace memsched::cpu
