#include "util/fs_fault.hpp"

namespace memsched::util {

namespace {
thread_local FsFaultHooks* g_hooks = nullptr;
}  // namespace

FsFaultHooks* fs_fault_hooks() { return g_hooks; }

FsFaultHooks* set_fs_fault_hooks(FsFaultHooks* hooks) {
  FsFaultHooks* prev = g_hooks;
  g_hooks = hooks;
  return prev;
}

}  // namespace memsched::util
