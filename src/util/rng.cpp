#include "util/rng.hpp"

#include <bit>

namespace memsched::util {

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Bitmask rejection sampling: unbiased, expected < 2 draws per call.
  const unsigned bits = 64u - static_cast<unsigned>(std::countl_zero(bound - 1));
  const std::uint64_t mask =
      (bits >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
  for (;;) {
    const std::uint64_t v = next() & mask;
    if (v < bound) return v;
  }
}

Xoshiro256 Xoshiro256::fork(std::uint64_t stream) {
  SplitMix64 sm(next() ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  return Xoshiro256(sm.next());
}

std::uint32_t geometric_run(Xoshiro256& rng, double continue_p, std::uint32_t cap) {
  std::uint32_t n = 0;
  while (n < cap && rng.chance(continue_p)) ++n;
  return n;
}

}  // namespace memsched::util
