// Unsigned fixed-point helpers for the hardware priority-table model.
//
// The paper's Figure-1 implementation stores "10-bit priority information"
// per table entry: ME[i]/p values pre-computed by software, scaled and
// quantised so the memory controller compares plain integers instead of
// performing divisions. These helpers model that scaling step.
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace memsched::util {

/// Quantise `value` onto `bits`-wide unsigned integers such that
/// `max_value` maps to the largest representable code. Values above
/// `max_value` saturate; values <= 0 map to 0.
///
/// This mirrors what the OS does when filling the workload priority tables:
/// it knows the largest priority any entry will hold and scales the whole
/// table by one common factor so relative order is preserved.
inline std::uint32_t quantize(double value, double max_value, unsigned bits) {
  MEMSCHED_ASSERT(bits >= 1 && bits <= 31, "quantize: bits out of range");
  MEMSCHED_ASSERT(max_value > 0.0, "quantize: max_value must be positive");
  const auto max_code = static_cast<std::uint32_t>((1u << bits) - 1);
  if (value <= 0.0) return 0;
  if (value >= max_value) return max_code;
  const double scaled = value / max_value * static_cast<double>(max_code);
  // Round to nearest; +0.5 is safe because scaled < max_code here.
  return static_cast<std::uint32_t>(scaled + 0.5);
}

/// Inverse of quantize (midpoint of the code's value range) — only used by
/// tests to bound quantisation error.
inline double dequantize(std::uint32_t code, double max_value, unsigned bits) {
  const auto max_code = static_cast<std::uint32_t>((1u << bits) - 1);
  return static_cast<double>(code) / static_cast<double>(max_code) * max_value;
}

}  // namespace memsched::util
