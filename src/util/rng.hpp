// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the simulator (synthetic address streams,
// scheduler tie-breaking, workload slice selection) draws from a seeded
// xoshiro256** instance so a (seed, config) pair reproduces bit-identically.
// std::mt19937_64 is avoided: its 2.5 KB state hurts cache behaviour when a
// generator lives inside every core model.
#pragma once

#include <cstdint>

namespace memsched::util {

/// SplitMix64: used to expand a single 64-bit seed into full generator state
/// and to derive independent child seeds (seed sequencing).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
///
/// The draw methods are defined inline: a draw sits on the per-instruction
/// hot path of both the synthetic stream generator and the functional
/// fast-forward, where an out-of-line call per Bernoulli costs more than
/// the generator itself.
class Xoshiro256 {
 public:
  /// Seeds the four state words via SplitMix64 as the authors recommend.
  explicit Xoshiro256(std::uint64_t seed = 0x243f6a8885a308d3ULL);

  /// Next raw 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (bitmask rejection).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 high bits -> double in [0,1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Derive an independent child generator; `stream` distinguishes children
  /// of the same parent deterministically.
  Xoshiro256 fork(std::uint64_t stream);

  /// Raw state access for checkpoint/restore. A restored generator continues
  /// the exact output sequence of the saved one.
  struct State {
    std::uint64_t s[4];
  };
  [[nodiscard]] State state() const { return {{s_[0], s_[1], s_[2], s_[3]}}; }
  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Geometric-like run length: number of successes before failure, capped.
/// Used for spatial-locality run lengths in the synthetic stream generators.
std::uint32_t geometric_run(Xoshiro256& rng, double continue_p, std::uint32_t cap);

}  // namespace memsched::util
