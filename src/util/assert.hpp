// Lightweight always-on assertion macro.
//
// Simulator invariants (queue conservation, timing monotonicity, ...) are
// cheap relative to the work per cycle, so they stay enabled in release
// builds; a violated invariant means the simulation results are garbage and
// must abort rather than silently produce numbers.
#pragma once

#include <cstdio>
#include <cstdlib>

#define MEMSCHED_ASSERT(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "memsched: assertion failed at %s:%d: %s — %s\n", \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (false)
