// Lightweight always-on assertion macros.
//
// Simulator invariants (queue conservation, timing monotonicity, ...) are
// cheap relative to the work per cycle, so they stay enabled in release
// builds; a violated invariant means the simulation results are garbage and
// must abort rather than silently produce numbers.
//
// MEMSCHED_ASSERT(cond, msg)          — fixed message.
// MEMSCHED_ASSERTF(cond, fmt, ...)    — printf-style message; use it wherever
//   the diagnostic needs operands (cycle numbers, bank indices, request ids):
//   a bare "illegal ACT" is useless in a trace of millions of commands.
#pragma once

#include <cstdio>
#include <cstdlib>

#define MEMSCHED_ASSERT(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "memsched: assertion failed at %s:%d: %s — %s\n", \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#define MEMSCHED_ASSERTF(cond, fmt, ...)                                    \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr,                                                  \
                   "memsched: assertion failed at %s:%d: %s — " fmt "\n",   \
                   __FILE__, __LINE__, #cond __VA_OPT__(, ) __VA_ARGS__);   \
      std::abort();                                                         \
    }                                                                       \
  } while (false)
