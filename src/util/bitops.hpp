// Bit-field extraction helpers for physical-address decomposition.
#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace memsched::util {

/// True if x is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Floor log2; requires x != 0.
constexpr unsigned ilog2(std::uint64_t x) {
  unsigned r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// Extract `width` bits of `x` starting at bit `pos` (LSB = 0).
constexpr std::uint64_t bits(std::uint64_t x, unsigned pos, unsigned width) {
  if (width == 0) return 0;
  if (width >= 64) return x >> pos;
  return (x >> pos) & ((std::uint64_t{1} << width) - 1);
}

/// Deposit `value` into bits [pos, pos+width) of a zeroed word.
constexpr std::uint64_t deposit(std::uint64_t value, unsigned pos, unsigned width) {
  if (width == 0) return 0;
  const std::uint64_t mask = (width >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  return (value & mask) << pos;
}

}  // namespace memsched::util
