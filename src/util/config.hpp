// Key=value configuration store.
//
// The bench harnesses and examples accept overrides like
//   fig2_smt_speedup insts=500000 cores=4 seed=7
// This parser holds string values with typed, checked accessors. It is not a
// general CLI library — positional flags are out of scope on purpose.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace memsched::util {

class Config {
 public:
  Config() = default;

  /// Parse "key=value" tokens; tokens without '=' raise an error string.
  /// Returns empty optional on success, else a human-readable error.
  std::optional<std::string> parse_args(int argc, const char* const* argv);

  /// Parse a single "key=value" token.
  std::optional<std::string> parse_token(std::string_view token);

  void set(std::string key, std::string value);
  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters with defaults; malformed values fall back to the default
  /// and log a warning (benches should not die on a typo'd override).
  [[nodiscard]] std::string get_string(const std::string& key, std::string def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t def) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& key, std::uint64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  /// All keys in insertion-independent (sorted) order — for echoing the
  /// effective configuration at the top of bench output.
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Reject unknown keys: every stored key must appear in `known` or start
  /// with one of `prefixes` (for families like "trace0", "fault.drop").
  /// Returns a human-readable error naming the offending key — with a
  /// did-you-mean suggestion when a known key is within edit distance — or
  /// an empty optional when everything checks out. A misspelled key must
  /// fail the run, not silently fall back to the default and measure the
  /// wrong experiment.
  [[nodiscard]] std::optional<std::string> check_known(
      const std::vector<std::string_view>& known,
      const std::vector<std::string_view>& prefixes = {}) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Levenshtein edit distance (insert/delete/substitute, unit costs) — the
/// metric behind Config::check_known's did-you-mean suggestions.
[[nodiscard]] std::size_t edit_distance(std::string_view a, std::string_view b);

/// Boolean process-environment switch with the same truthy/falsy vocabulary
/// as Config::get_bool ("1"/"true"/"yes"/"on", ...). Unset or malformed
/// values yield `def`. Used for harness-wide toggles that must reach every
/// binary without threading CLI flags (e.g. MEMSCHED_VERIFY=1 turns the
/// invariant audit layer on for a whole ctest / bench-smoke run).
[[nodiscard]] bool env_flag(const char* name, bool def);

}  // namespace memsched::util
