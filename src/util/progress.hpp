// Single-line live progress ticker for long-running harness loops.
//
// Renders "done/total (f failed) | r/w workers | ETA 42s" on stderr with a
// carriage return, rate-limited so a tight poll loop costs nothing. Only
// active when stderr is a terminal — in CI logs and redirected runs the
// ticker is silent and ordinary per-event lines remain the record. Call
// clear() before printing a normal log line so the two never interleave on
// one row, and finish() once at the end to erase the ticker for good.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/wallclock.hpp"

namespace memsched::util {

class ProgressTicker {
 public:
  /// `enabled` is typically `verbose && isatty(STDERR_FILENO)`.
  explicit ProgressTicker(bool enabled);

  struct State {
    std::size_t done = 0;     ///< points finished (ok + failed), incl. resumed
    std::size_t failed = 0;   ///< recorded failures so far
    std::size_t running = 0;  ///< live workers
    std::size_t total = 0;    ///< sweep size
    std::uint32_t jobs = 1;   ///< pool width (occupancy denominator)
    double eta_seconds = -1.0;  ///< < 0 = unknown, omitted from the line
  };

  /// Redraws the line if enabled and at least the refresh interval has
  /// passed since the last draw (forced when counts changed).
  void update(const State& s);

  /// Erases the ticker line so a regular stderr line can be printed.
  void clear();

  /// Erases the line and stops drawing.
  void finish();

 private:
  void draw(const State& s);

  bool enabled_;
  bool drawn_ = false;
  State last_{};
  MonotonicTime last_draw_{};
};

}  // namespace memsched::util
