// Minimal leveled logger.
//
// The hot simulation loop must stay allocation- and branch-cheap, so log
// statements below the active level cost one integer compare. Output goes to
// stderr; the simulator's *results* are always returned as data, never
// scraped from logs.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace memsched::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

/// Global log level (default kWarn). Not thread-safe to mutate mid-run;
/// set it once in main().
LogLevel log_level();
void set_log_level(LogLevel level);

/// printf-style logging; evaluated only if `level` is enabled.
void log_at(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace memsched::util

#define MEMSCHED_LOG(level, ...)                                  \
  do {                                                            \
    if (static_cast<int>(level) <=                                \
        static_cast<int>(::memsched::util::log_level()))          \
      ::memsched::util::log_at(level, __VA_ARGS__);               \
  } while (false)

#define LOG_ERROR(...) MEMSCHED_LOG(::memsched::util::LogLevel::kError, __VA_ARGS__)
#define LOG_WARN(...) MEMSCHED_LOG(::memsched::util::LogLevel::kWarn, __VA_ARGS__)
#define LOG_INFO(...) MEMSCHED_LOG(::memsched::util::LogLevel::kInfo, __VA_ARGS__)
#define LOG_DEBUG(...) MEMSCHED_LOG(::memsched::util::LogLevel::kDebug, __VA_ARGS__)
