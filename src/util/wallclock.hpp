// Blessed wall-clock access for the harness layer.
//
// Simulated behaviour must never depend on host time — the byte-identical
// report/resume contracts (docs/robustness.md) hinge on it. Real time is
// still legitimately needed *around* the simulation: watchdog deadlines,
// retry backoff, ETA tickers, wall-clock columns in timing sidecars. All of
// that goes through this header, and memsched-lint (det-banned-call) bans
// raw std::chrono `*_clock::now()` everywhere else, so any host-time read
// that could leak into simulated state shows up in review as either a call
// into this file or an explicit suppression.
//
// Keep this wrapper thin and *obviously* side-effect free: it must never
// feed a value into Request/DRAM/scheduler state.
#pragma once

#include <chrono>
#include <filesystem>

namespace memsched::util {

/// The one clock the harness uses: monotonic, immune to NTP steps.
using MonotonicClock = std::chrono::steady_clock;
using MonotonicTime = MonotonicClock::time_point;
using MonotonicDuration = MonotonicClock::duration;

/// The blessed "what time is it" — grep for callers to audit every
/// wall-clock read in the tree.
[[nodiscard]] inline MonotonicTime monotonic_now() { return MonotonicClock::now(); }

[[nodiscard]] inline double ms_between(MonotonicTime start, MonotonicTime end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

[[nodiscard]] inline double seconds_between(MonotonicTime start, MonotonicTime end) {
  return std::chrono::duration<double>(end - start).count();
}

[[nodiscard]] inline MonotonicDuration seconds_to_duration(double seconds) {
  return std::chrono::duration_cast<MonotonicDuration>(
      std::chrono::duration<double>(seconds));
}

/// Blessed filesystem-clock read, for comparing against file mtimes (lease /
/// stale-artifact age in the result cache). Same rule as monotonic_now():
/// never feeds simulated state, only maintenance decisions around it.
[[nodiscard]] inline std::filesystem::file_time_type file_now() {
  return std::filesystem::file_time_type::clock::now();
}

/// Age in seconds of a file timestamp relative to `now` (negative if the
/// file is from the future, e.g. clock skew — callers treat that as young).
[[nodiscard]] inline double file_age_seconds(std::filesystem::file_time_type mtime,
                                             std::filesystem::file_time_type now) {
  return std::chrono::duration<double>(now - mtime).count();
}

}  // namespace memsched::util
