// Thin RAII wrapper around AF_UNIX stream sockets.
//
// The serve subsystem talks to its clients over a Unix-domain socket; this
// header keeps the raw syscall handling (socket/bind/listen/accept/connect,
// EINTR-safe exact reads and writes, CLOEXEC hygiene) in util so the daemon
// and the client tool share one audited implementation and src/serve stays
// free of errno plumbing. Deliberately low-level: framing, CRCs and message
// vocabulary live a layer up (src/serve/wire.*) — util must not depend on
// ckpt's crc32.
//
// All functions are synchronous and return -1/false with errno set on
// failure; nothing here throws. Callers that need bounded waits poll the fd
// themselves (the daemon's event loop) or retry on a util::Backoff schedule
// (the client).
#pragma once

#include <cstddef>
#include <string>

namespace memsched::util {

/// Owning fd handle: closes on destruction, move-only. An fd of -1 means
/// "empty" (moved-from or failed).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Releases ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

/// Binds and listens on a Unix-domain stream socket at `path` (an existing
/// socket file is unlinked first — the daemon owns its socket path).
/// Returns an invalid Fd with errno set on failure, including
/// ENAMETOOLONG when `path` exceeds sockaddr_un::sun_path.
[[nodiscard]] Fd unix_listen(const std::string& path, int backlog = 16);

/// Accepts one pending connection (CLOEXEC); invalid Fd + errno on failure.
[[nodiscard]] Fd unix_accept(int listen_fd);

/// Connects to the Unix-domain socket at `path`; invalid Fd + errno on
/// failure (ENOENT / ECONNREFUSED when no daemon is listening).
[[nodiscard]] Fd unix_connect(const std::string& path);

/// Writes exactly `size` bytes, looping over short writes and EINTR.
[[nodiscard]] bool write_all(int fd, const void* data, std::size_t size);

/// Reads exactly `size` bytes, looping over short reads and EINTR. False on
/// EOF or error (errno 0 on clean EOF).
[[nodiscard]] bool read_exact(int fd, void* data, std::size_t size);

}  // namespace memsched::util
