// Atomic, durable file replacement.
//
// Crash-safe persistence primitive shared by the sweep manifest and the
// simulator snapshot writer: the payload is written to a writer-unique temp
// name (`path + ".tmp.<pid>.<seq>"`), fsync()ed so the bytes are on stable
// storage, then rename()d over `path`. A crash at any instant leaves either
// the previous complete file or the new complete file — never a torn mix —
// which is what lets a killed sweep or simulation trust whatever checkpoint
// it finds on restart. The unique temp name makes concurrent writers safe:
// parallel sweep workers sharing a directory can never clobber each other's
// in-flight temp file, and the last rename wins with a complete payload.
#pragma once

#include <cstddef>
#include <string>

namespace memsched::util {

/// Atomically replaces `path` with `size` bytes from `data` (unique tmp +
/// fsync + rename). Throws std::runtime_error on any I/O failure; on failure
/// the previous contents of `path`, if any, are untouched.
void atomic_write_file(const std::string& path, const void* data, std::size_t size);

/// String convenience overload.
void atomic_write_file(const std::string& path, const std::string& data);

/// The writer-unique temp name the next atomic_write_file would use for
/// `path` (PID + monotonic counter suffix). Exposed for tests.
[[nodiscard]] std::string atomic_tmp_path(const std::string& path);

}  // namespace memsched::util
