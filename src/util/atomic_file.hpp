// Atomic, durable file replacement.
//
// Crash-safe persistence primitive shared by the sweep manifest and the
// simulator snapshot writer: the payload is written to `path + ".tmp"`,
// fsync()ed so the bytes are on stable storage, then rename()d over `path`.
// A crash at any instant leaves either the previous complete file or the new
// complete file — never a torn mix — which is what lets a killed sweep or
// simulation trust whatever checkpoint it finds on restart.
#pragma once

#include <cstddef>
#include <string>

namespace memsched::util {

/// Atomically replaces `path` with `size` bytes from `data` (tmp + fsync +
/// rename). Throws std::runtime_error on any I/O failure; on failure the
/// previous contents of `path`, if any, are untouched.
void atomic_write_file(const std::string& path, const void* data, std::size_t size);

/// String convenience overload.
void atomic_write_file(const std::string& path, const std::string& data);

}  // namespace memsched::util
