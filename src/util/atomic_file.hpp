// Atomic, durable file replacement.
//
// Crash-safe persistence primitive shared by the sweep manifest, the
// simulator snapshot writer, and the result cache: the payload is written to
// a writer-unique temp name (`path + ".tmp.<pid>.<seq>"`), fsync()ed so the
// bytes are on stable storage, then rename()d over `path`. A crash at any
// instant leaves either the previous complete file or the new complete file
// — never a torn mix — which is what lets a killed sweep or simulation trust
// whatever checkpoint it finds on restart. The unique temp name makes
// concurrent writers safe: parallel sweep workers sharing a directory can
// never clobber each other's in-flight temp file, and the last rename wins
// with a complete payload.
//
// Failures surface as AtomicFileError carrying WHICH operation failed and
// the errno: an fsync ENOSPC (durability lost, payload may be gone) and a
// close EIO (writeback failed behind our back) are different failures from a
// plain write error, and callers that degrade gracefully (the result cache)
// classify on them. All operations consult util::fs_fault_hooks() so the
// ENOSPC/EIO/short-write paths are unit-testable without filling a disk.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace memsched::util {

/// Which syscall of the write-temp/fsync/close/rename sequence failed.
enum class FileOp { kOpen, kWrite, kFsync, kClose, kRename };

/// Name of a FileOp ("open", "write", "fsync", "close", "rename").
[[nodiscard]] const char* file_op_name(FileOp op);

/// An atomic_write_file failure: carries the failing operation and errno so
/// callers can tell "no space while making bytes durable" from "cannot even
/// create the temp file" instead of parsing a collapsed message string.
class AtomicFileError : public std::runtime_error {
 public:
  AtomicFileError(FileOp op, int errno_value, const std::string& path);

  [[nodiscard]] FileOp op() const { return op_; }
  [[nodiscard]] int errno_value() const { return errno_; }

 private:
  FileOp op_;
  int errno_;
};

/// Atomically replaces `path` with `size` bytes from `data` (unique tmp +
/// fsync + rename). Throws AtomicFileError on any I/O failure; on failure
/// the previous contents of `path`, if any, are untouched and the temp file
/// is removed.
void atomic_write_file(const std::string& path, const void* data, std::size_t size);

/// String convenience overload.
void atomic_write_file(const std::string& path, const std::string& data);

/// The writer-unique temp name the next atomic_write_file would use for
/// `path` (PID + monotonic counter suffix). Exposed for tests.
[[nodiscard]] std::string atomic_tmp_path(const std::string& path);

}  // namespace memsched::util
