// Fundamental scalar types shared across all memsched modules.
#pragma once

#include <cstdint>
#include <limits>

namespace memsched {

/// Physical byte address.
using Addr = std::uint64_t;

/// Simulation time in memory-bus cycles (the global clock domain; DDR2-800
/// command clock, 400 MHz). One Tick == `SystemConfig::cpu_clock_ratio` CPU
/// cycles (8 by default: 3.2 GHz / 400 MHz).
using Tick = std::uint64_t;

/// Time in CPU cycles (3.2 GHz domain). Used for latency statistics so they
/// are comparable with the paper's numbers.
using CpuCycle = std::uint64_t;

/// Identity of a processor core (0-based). The paper calls this "core i".
using CoreId = std::uint32_t;

/// Monotonically increasing identifier of a memory request.
using RequestId = std::uint64_t;

/// Sentinel for "no tick scheduled".
inline constexpr Tick kNeverTick = std::numeric_limits<Tick>::max();

/// Sentinel for invalid core.
inline constexpr CoreId kInvalidCore = std::numeric_limits<CoreId>::max();

/// Cache-line size used throughout (Table 1: 64-byte lines at every level).
inline constexpr std::uint32_t kLineBytes = 64;

/// log2(kLineBytes).
inline constexpr std::uint32_t kLineShift = 6;

/// Round an address down to its cache-line base.
constexpr Addr line_base(Addr a) { return a & ~static_cast<Addr>(kLineBytes - 1); }

}  // namespace memsched
