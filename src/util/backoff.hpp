// Deterministic, capped exponential retry backoff.
//
// Every retry loop in the harness (failed sweep points, cache I/O, lock
// acquisition) computes its delays through this one schedule so the timing
// behaviour is a pure function of (base, cap, attempt): testable with fake
// clocks, identical across runs, and — critically — bounded. An uncapped
// exponential turns a persistent fault into an unbounded sleep; the cap
// turns it into a bounded, predictable retry budget.
//
// The schedule: delay(attempt) = min(base * 2^(attempt-1), cap), attempt
// counting from 1. base <= 0 disables sleeping entirely (delay 0 for every
// attempt), which is what unit tests use.
#pragma once

#include <cstdint>

#include "util/wallclock.hpp"

namespace memsched::util {

struct Backoff {
  double base_seconds = 0.0;
  double cap_seconds = 60.0;

  /// Delay before retry number `attempt` (1-based: the sleep after the
  /// attempt-th failure). Pure — no clock reads, no state.
  [[nodiscard]] double delay_seconds(std::uint32_t attempt) const {
    if (base_seconds <= 0.0 || attempt == 0) return 0.0;
    double d = base_seconds;
    for (std::uint32_t i = 1; i < attempt; ++i) {
      d *= 2.0;
      if (d >= cap_seconds) return cap_seconds;
    }
    return d < cap_seconds ? d : cap_seconds;
  }

  /// The instant retry `attempt` becomes eligible, given the failure
  /// happened at `now`. Deterministic in `now`: feeding fake time points
  /// yields the full schedule without sleeping.
  [[nodiscard]] MonotonicTime ready_at(MonotonicTime now, std::uint32_t attempt) const {
    return now + seconds_to_duration(delay_seconds(attempt));
  }
};

}  // namespace memsched::util
