#include "util/unix_socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace memsched::util {

namespace {

/// Fills a sockaddr_un for `path`; false + ENAMETOOLONG when it cannot fit.
bool fill_addr(const std::string& path, sockaddr_un& addr) {
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    errno = ENAMETOOLONG;
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

int cloexec_socket() {
  return ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Fd unix_listen(const std::string& path, int backlog) {
  sockaddr_un addr{};
  if (!fill_addr(path, addr)) return Fd{};
  Fd fd(cloexec_socket());
  if (!fd.valid()) return Fd{};
  // The daemon owns its socket path: a leftover file from a dead instance
  // would otherwise make bind fail with EADDRINUSE forever.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0)
    return Fd{};
  if (::listen(fd.get(), backlog) != 0) return Fd{};
  return fd;
}

Fd unix_accept(int listen_fd) {
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) return Fd(fd);
    if (errno != EINTR) return Fd{};
  }
}

Fd unix_connect(const std::string& path) {
  sockaddr_un addr{};
  if (!fill_addr(path, addr)) return Fd{};
  Fd fd(cloexec_socket());
  if (!fd.valid()) return Fd{};
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0)
      return fd;
    if (errno != EINTR) return Fd{};
  }
}

bool write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_exact(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::read(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      errno = 0;  // clean EOF mid-message
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace memsched::util
