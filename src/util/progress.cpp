#include "util/progress.hpp"

#include <chrono>
#include <cstdio>

namespace memsched::util {

namespace {

constexpr auto kRefresh = std::chrono::milliseconds(200);

}  // namespace

ProgressTicker::ProgressTicker(bool enabled) : enabled_(enabled) {}

void ProgressTicker::update(const State& s) {
  if (!enabled_) return;
  const auto now = monotonic_now();
  const bool counts_changed = s.done != last_.done || s.failed != last_.failed ||
                              s.running != last_.running;
  if (drawn_ && !counts_changed && now - last_draw_ < kRefresh) return;
  last_ = s;
  last_draw_ = now;
  draw(s);
}

void ProgressTicker::draw(const State& s) {
  char eta[32] = "";
  if (s.eta_seconds >= 0.0) {
    if (s.eta_seconds >= 90.0) {
      std::snprintf(eta, sizeof eta, " | ETA %.1f min", s.eta_seconds / 60.0);
    } else {
      std::snprintf(eta, sizeof eta, " | ETA %.0f s", s.eta_seconds);
    }
  }
  char failed[32] = "";
  if (s.failed > 0) std::snprintf(failed, sizeof failed, " (%zu failed)", s.failed);
  // \r redraw + \033[K erase-to-end so a shrinking line leaves no residue.
  std::fprintf(stderr, "\r[sweep] %zu/%zu done%s | %zu/%u workers%s\033[K", s.done,
               s.total, failed, s.running, s.jobs, eta);
  std::fflush(stderr);
  drawn_ = true;
}

void ProgressTicker::clear() {
  if (!enabled_ || !drawn_) return;
  std::fprintf(stderr, "\r\033[K");
  std::fflush(stderr);
  drawn_ = false;
}

void ProgressTicker::finish() {
  clear();
  enabled_ = false;
}

}  // namespace memsched::util
