#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace memsched::util {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStat::reset() { *this = RunningStat{}; }

double RunningStat::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double bucket_width, std::size_t bucket_count)
    : width_(bucket_width), buckets_(bucket_count, 0) {
  MEMSCHED_ASSERT(bucket_width > 0.0, "histogram bucket width must be positive");
  MEMSCHED_ASSERT(bucket_count > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) {
  ++total_;
  if (x < 0.0) x = 0.0;
  const auto idx = static_cast<std::size_t>(x / width_);
  if (idx >= buckets_.size()) {
    ++overflow_;
  } else {
    ++buckets_[idx];
  }
}

void Histogram::merge(const Histogram& other) {
  MEMSCHED_ASSERT(width_ == other.width_ && buckets_.size() == other.buckets_.size(),
                  "histogram merge geometry mismatch");
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  overflow_ += other.overflow_;
  total_ += other.total_;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  overflow_ = 0;
  total_ = 0;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double b = static_cast<double>(buckets_[i]);
    if (cum + b >= target && b > 0.0) {
      const double frac = (target - cum) / b;
      return (static_cast<double>(i) + frac) * width_;
    }
    cum += b;
  }
  return static_cast<double>(buckets_.size()) * width_;  // in overflow
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double x : xs) {
    if (x <= 0.0) return 0.0;
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

std::string fmt(double x, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, x);
  return buf;
}

}  // namespace memsched::util
