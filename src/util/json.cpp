#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/assert.hpp"

namespace memsched::util {

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  MEMSCHED_ASSERT(kind_ == Kind::kObject, "operator[] on non-object JSON value");
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(key, Json{});
  return members_.back().second;
}

void Json::push_back(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  MEMSCHED_ASSERT(kind_ == Kind::kArray, "push_back on non-array JSON value");
  elements_.push_back(std::move(value));
}

std::size_t Json::size() const {
  switch (kind_) {
    case Kind::kObject: return members_.size();
    case Kind::kArray: return elements_.size();
    default: return 0;
  }
}

void Json::escape_to(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d), ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber: {
      if (!std::isfinite(num_)) {
        out += "null";  // JSON has no Inf/NaN
        break;
      }
      char buf[64];
      // Integral values print without a fraction.
      if (num_ == std::floor(num_) && std::abs(num_) < 1e15) {
        std::snprintf(buf, sizeof buf, "%.0f", num_);
      } else {
        std::snprintf(buf, sizeof buf, "%.10g", num_);
      }
      out += buf;
      break;
    }
    case Kind::kString:
      escape_to(out, str_);
      break;
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        escape_to(out, k);
        out += indent < 0 ? ":" : ": ";
        v.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      out += '}';
      break;
    }
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Json& v : elements_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      if (!elements_.empty()) newline(depth);
      out += ']';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::write_file(const std::string& path, int indent) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("cannot open JSON output: " + path);
  const std::string s = dump(indent);
  const bool ok = std::fwrite(s.data(), 1, s.size(), f) == s.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok) throw std::runtime_error("JSON write failed: " + path);
}

}  // namespace memsched::util
