#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "util/assert.hpp"

namespace memsched::util {

namespace {

/// Recursive-descent parser over the dialect dump() emits. Tracks the byte
/// offset for error messages — a corrupt manifest must say *where*.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at offset " + std::to_string(pos_) +
                             ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', got '" + peek() + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // The emitter only produces \u for control characters; decode the
          // basic plane as UTF-8 and reject surrogates (never emitted).
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escape unsupported");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail(std::string("unknown escape '\\") + esc + "'");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) throw std::runtime_error("JSON value is not a boolean");
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("JSON value is not a number");
  return num_;
}

std::uint64_t Json::as_uint() const {
  const double v = as_number();
  if (v < 0.0) throw std::runtime_error("JSON number is negative");
  return static_cast<std::uint64_t>(v);
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) throw std::runtime_error("JSON value is not a string");
  return str_;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (v == nullptr) throw std::runtime_error("JSON object has no member '" + key + "'");
  return *v;
}

const Json& Json::at(std::size_t index) const {
  if (kind_ != Kind::kArray) throw std::runtime_error("JSON value is not an array");
  if (index >= elements_.size()) throw std::runtime_error("JSON array index out of range");
  return elements_[index];
}

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  MEMSCHED_ASSERT(kind_ == Kind::kObject, "operator[] on non-object JSON value");
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(key, Json{});
  return members_.back().second;
}

void Json::push_back(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  MEMSCHED_ASSERT(kind_ == Kind::kArray, "push_back on non-array JSON value");
  elements_.push_back(std::move(value));
}

std::size_t Json::size() const {
  switch (kind_) {
    case Kind::kObject: return members_.size();
    case Kind::kArray: return elements_.size();
    default: return 0;
  }
}

void Json::escape_to(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d), ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber: {
      if (!std::isfinite(num_)) {
        out += "null";  // JSON has no Inf/NaN
        break;
      }
      char buf[64];
      // Integral values print without a fraction.
      if (num_ == std::floor(num_) && std::abs(num_) < 1e15) {
        std::snprintf(buf, sizeof buf, "%.0f", num_);
      } else {
        std::snprintf(buf, sizeof buf, "%.10g", num_);
      }
      out += buf;
      break;
    }
    case Kind::kString:
      escape_to(out, str_);
      break;
    case Kind::kRaw:
      out += str_;  // pre-serialized payload, spliced verbatim
      break;
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        escape_to(out, k);
        out += indent < 0 ? ":" : ": ";
        v.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      out += '}';
      break;
    }
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Json& v : elements_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      if (!elements_.empty()) newline(depth);
      out += ']';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::write_file(const std::string& path, int indent) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("cannot open JSON output: " + path);
  const std::string s = dump(indent);
  const bool ok = std::fwrite(s.data(), 1, s.size(), f) == s.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok) throw std::runtime_error("JSON write failed: " + path);
}

}  // namespace memsched::util
