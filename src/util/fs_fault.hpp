// Filesystem fault-injection seam for chaos-testing the persistence layer.
//
// The robustness code (util::atomic_file, the result cache) consults a
// thread-local hook object before touching the filesystem: the hook can
// shorten a write (exercising partial-write loops), fail an operation with a
// chosen errno (ENOSPC, EIO), or flip bits in bytes just read from disk
// (exercising CRC validation and quarantine paths). No hook installed — the
// default — means zero behaviour change; the checks are a null-pointer test
// on a thread-local, so the production cost is negligible.
//
// The hook is deliberately THREAD-LOCAL and RAII-scoped (ScopedFsFaults):
// faults must be confined to the code path under test. A process-global hook
// would poison unrelated writers — the sweep manifest, timing sidecars — and
// turn "the cache degrades gracefully" into "the sweep loses its checkpoint".
// The deterministic decision engine lives in mc::FsFaultInjector; this header
// only defines the seam so util stays at the bottom of the layering.
#pragma once

#include <cstddef>

namespace memsched::util {

/// Hook interface consulted by fault-aware filesystem code. The default
/// implementations are no-ops, so a hook only overrides what it perturbs.
class FsFaultHooks {
 public:
  virtual ~FsFaultHooks() = default;

  /// Upper bound for the byte count of one write(2) call. Returning less
  /// than `requested` forces a short write; implementations must return at
  /// least 1 so retry loops still make progress.
  [[nodiscard]] virtual std::size_t clamp_write(std::size_t requested) {
    return requested;
  }

  /// Errno to fail the named operation with ("open", "write", "fsync",
  /// "close", "rename"), or 0 to let it through.
  [[nodiscard]] virtual int fail_op(const char* op) {
    (void)op;
    return 0;
  }

  /// Mutates `n` bytes just read from disk (bit flips). Called by readers
  /// that validate content (the result cache), never by readers that would
  /// turn a flipped bit into UB.
  virtual void corrupt_read(void* data, std::size_t n) {
    (void)data;
    (void)n;
  }
};

/// The hooks installed for the current thread, or nullptr (the default).
[[nodiscard]] FsFaultHooks* fs_fault_hooks();

/// Installs `hooks` for the current thread, returning the previous value so
/// callers can restore it. Prefer ScopedFsFaults.
FsFaultHooks* set_fs_fault_hooks(FsFaultHooks* hooks);

/// RAII installer: hooks active inside the scope, previous hooks restored on
/// exit. Used by the result cache to arm faults around its own I/O only.
class ScopedFsFaults {
 public:
  explicit ScopedFsFaults(FsFaultHooks* hooks) : prev_(set_fs_fault_hooks(hooks)) {}
  ~ScopedFsFaults() { set_fs_fault_hooks(prev_); }
  ScopedFsFaults(const ScopedFsFaults&) = delete;
  ScopedFsFaults& operator=(const ScopedFsFaults&) = delete;

 private:
  FsFaultHooks* prev_;
};

}  // namespace memsched::util
