#include "util/config.hpp"

#include <cstdlib>

#include "util/log.hpp"

namespace memsched::util {

std::optional<std::string> Config::parse_args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    if (auto err = parse_token(argv[i])) return err;
  }
  return std::nullopt;
}

std::optional<std::string> Config::parse_token(std::string_view token) {
  const auto eq = token.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return "expected key=value, got '" + std::string(token) + "'";
  }
  set(std::string(token.substr(0, eq)), std::string(token.substr(eq + 1)));
  return std::nullopt;
}

void Config::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

bool Config::has(const std::string& key) const { return values_.count(key) != 0; }

std::string Config::get_string(const std::string& key, std::string def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::move(def) : it->second;
}

std::int64_t Config::get_int(const std::string& key, std::int64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 0);
  if (end == it->second.c_str() || *end != '\0') {
    LOG_WARN("config: '%s=%s' is not an integer; using default %lld", key.c_str(),
             it->second.c_str(), static_cast<long long>(def));
    return def;
  }
  return v;
}

std::uint64_t Config::get_uint(const std::string& key, std::uint64_t def) const {
  const auto v = get_int(key, static_cast<std::int64_t>(def));
  if (v < 0) {
    LOG_WARN("config: '%s' must be non-negative; using default", key.c_str());
    return def;
  }
  return static_cast<std::uint64_t>(v);
}

double Config::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    LOG_WARN("config: '%s=%s' is not a number; using default %g", key.c_str(),
             it->second.c_str(), def);
    return def;
  }
  return v;
}

bool Config::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& s = it->second;
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  LOG_WARN("config: '%s=%s' is not a boolean; using default %d", key.c_str(), s.c_str(), def);
  return def;
}

bool env_flag(const char* name, bool def) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return def;
  const std::string s(raw);
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  LOG_WARN("config: environment %s=%s is not a boolean; using default %d", name,
           s.c_str(), def);
  return def;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace memsched::util
