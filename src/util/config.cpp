#include "util/config.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/log.hpp"

namespace memsched::util {

std::optional<std::string> Config::parse_args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    if (auto err = parse_token(argv[i])) return err;
  }
  return std::nullopt;
}

std::optional<std::string> Config::parse_token(std::string_view token) {
  const auto eq = token.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return "expected key=value, got '" + std::string(token) + "'";
  }
  set(std::string(token.substr(0, eq)), std::string(token.substr(eq + 1)));
  return std::nullopt;
}

void Config::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

bool Config::has(const std::string& key) const { return values_.count(key) != 0; }

std::string Config::get_string(const std::string& key, std::string def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::move(def) : it->second;
}

std::int64_t Config::get_int(const std::string& key, std::int64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 0);
  if (end == it->second.c_str() || *end != '\0') {
    LOG_WARN("config: '%s=%s' is not an integer; using default %lld", key.c_str(),
             it->second.c_str(), static_cast<long long>(def));
    return def;
  }
  return v;
}

std::uint64_t Config::get_uint(const std::string& key, std::uint64_t def) const {
  const auto v = get_int(key, static_cast<std::int64_t>(def));
  if (v < 0) {
    LOG_WARN("config: '%s' must be non-negative; using default", key.c_str());
    return def;
  }
  return static_cast<std::uint64_t>(v);
}

double Config::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    LOG_WARN("config: '%s=%s' is not a number; using default %g", key.c_str(),
             it->second.c_str(), def);
    return def;
  }
  return v;
}

bool Config::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& s = it->second;
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  LOG_WARN("config: '%s=%s' is not a boolean; using default %d", key.c_str(), s.c_str(), def);
  return def;
}

bool env_flag(const char* name, bool def) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return def;
  const std::string s(raw);
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  LOG_WARN("config: environment %s=%s is not a boolean; using default %d", name,
           s.c_str(), def);
  return def;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  // Two-row dynamic program; key names are short, so O(|a|*|b|) is nothing.
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

std::optional<std::string> Config::check_known(
    const std::vector<std::string_view>& known,
    const std::vector<std::string_view>& prefixes) const {
  for (const auto& [key, _] : values_) {
    bool ok = false;
    for (const std::string_view k : known) ok = ok || key == k;
    for (const std::string_view p : prefixes)
      ok = ok || (key.size() > p.size() && key.compare(0, p.size(), p) == 0);
    if (ok) continue;

    std::string_view best;
    std::size_t best_dist = std::string::npos;
    for (const std::string_view k : known) {
      const std::size_t d = edit_distance(key, k);
      if (d < best_dist) {
        best_dist = d;
        best = k;
      }
    }
    std::string err = "unknown config key '" + key + "'";
    // Suggest only close matches — a suggestion for a wildly different key
    // is worse than none.
    if (best_dist != std::string::npos && best_dist <= std::max<std::size_t>(2, key.size() / 3)) {
      err += " (did you mean '" + std::string(best) + "'?)";
    }
    return err;
  }
  return std::nullopt;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace memsched::util
