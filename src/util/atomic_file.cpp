#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace memsched::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("atomic_write_file: " + what + " " + path + ": " +
                           std::strerror(errno));
}

}  // namespace

void atomic_write_file(const std::string& path, const void* data, std::size_t size) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot create", tmp);

  const char* p = static_cast<const char*>(data);
  std::size_t left = size;
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(tmp.c_str());
      fail("write error on", tmp);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  // The rename only commits bytes that are already durable; without the
  // fsync a power cut could publish a complete-looking but empty file.
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    fail("fsync error on", tmp);
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    fail("close error on", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("cannot rename over", path);
  }
}

void atomic_write_file(const std::string& path, const std::string& data) {
  atomic_write_file(path, data.data(), data.size());
}

}  // namespace memsched::util
