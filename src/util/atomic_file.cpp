#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace memsched::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("atomic_write_file: " + what + " " + path + ": " +
                           std::strerror(errno));
}

}  // namespace

std::string atomic_tmp_path(const std::string& path) {
  // The temp name must be unique per writer: with a fixed "path + .tmp" two
  // processes (or threads) replacing the same file concurrently would
  // O_TRUNC each other's in-flight bytes and one rename could publish the
  // other's half-written payload. PID makes it unique across processes, the
  // counter across threads and successive writes racing a slow rename.
  static std::atomic<std::uint64_t> counter{0};
  char suffix[48];
  std::snprintf(suffix, sizeof suffix, ".tmp.%ld.%llu",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(
                    counter.fetch_add(1, std::memory_order_relaxed)));
  return path + suffix;
}

void atomic_write_file(const std::string& path, const void* data, std::size_t size) {
  const std::string tmp = atomic_tmp_path(path);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot create", tmp);

  const char* p = static_cast<const char*>(data);
  std::size_t left = size;
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(tmp.c_str());
      fail("write error on", tmp);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  // The rename only commits bytes that are already durable; without the
  // fsync a power cut could publish a complete-looking but empty file.
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    fail("fsync error on", tmp);
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    fail("close error on", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("cannot rename over", path);
  }
}

void atomic_write_file(const std::string& path, const std::string& data) {
  atomic_write_file(path, data.data(), data.size());
}

}  // namespace memsched::util
