#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>

#include "util/fs_fault.hpp"

namespace memsched::util {

namespace {

/// Injected-errno check for one operation; 0 = proceed for real.
int injected_errno(const char* op) {
  FsFaultHooks* hooks = fs_fault_hooks();
  return hooks != nullptr ? hooks->fail_op(op) : 0;
}

[[noreturn]] void fail(FileOp op, const std::string& path) {
  throw AtomicFileError(op, errno, path);
}

}  // namespace

const char* file_op_name(FileOp op) {
  switch (op) {
    case FileOp::kOpen: return "open";
    case FileOp::kWrite: return "write";
    case FileOp::kFsync: return "fsync";
    case FileOp::kClose: return "close";
    case FileOp::kRename: return "rename";
  }
  return "?";
}

AtomicFileError::AtomicFileError(FileOp op, int errno_value, const std::string& path)
    : std::runtime_error(std::string("atomic_write_file: ") + file_op_name(op) +
                         " failed on " + path + ": " + std::strerror(errno_value)),
      op_(op),
      errno_(errno_value) {}

std::string atomic_tmp_path(const std::string& path) {
  // The temp name must be unique per writer: with a fixed "path + .tmp" two
  // processes (or threads) replacing the same file concurrently would
  // O_TRUNC each other's in-flight bytes and one rename could publish the
  // other's half-written payload. PID makes it unique across processes, the
  // counter across threads and successive writes racing a slow rename.
  static std::atomic<std::uint64_t> counter{0};
  char suffix[48];
  std::snprintf(suffix, sizeof suffix, ".tmp.%ld.%llu",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(
                    counter.fetch_add(1, std::memory_order_relaxed)));
  return path + suffix;
}

void atomic_write_file(const std::string& path, const void* data, std::size_t size) {
  const std::string tmp = atomic_tmp_path(path);
  if ((errno = injected_errno("open")) != 0) fail(FileOp::kOpen, tmp);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail(FileOp::kOpen, tmp);

  FsFaultHooks* hooks = fs_fault_hooks();
  const char* p = static_cast<const char*>(data);
  std::size_t left = size;
  while (left > 0) {
    // A shortened chunk exercises the same retry path a real partial write
    // takes; an injected errno exercises the error path.
    std::size_t chunk = left;
    if (hooks != nullptr) {
      if ((errno = hooks->fail_op("write")) != 0) {
        ::close(fd);
        std::remove(tmp.c_str());
        fail(FileOp::kWrite, tmp);
      }
      chunk = hooks->clamp_write(left);
      if (chunk == 0 || chunk > left) chunk = left;
    }
    const ssize_t n = ::write(fd, p, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(tmp.c_str());
      fail(FileOp::kWrite, tmp);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  // The rename only commits bytes that are already durable; without the
  // fsync a power cut could publish a complete-looking but empty file.
  if ((errno = injected_errno("fsync")) != 0 || ::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    fail(FileOp::kFsync, tmp);
  }
  if ((errno = injected_errno("close")) != 0 || ::close(fd) != 0) {
    std::remove(tmp.c_str());
    fail(FileOp::kClose, tmp);
  }
  if ((errno = injected_errno("rename")) != 0 ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail(FileOp::kRename, path);
  }
}

void atomic_write_file(const std::string& path, const std::string& data) {
  atomic_write_file(path, data.data(), data.size());
}

}  // namespace memsched::util
