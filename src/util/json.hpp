// Minimal JSON document builder and reader.
//
// Purpose-built for machine-readable experiment records: supports objects,
// arrays, strings (escaped), finite numbers and booleans — nothing else.
// parse() exists for the sweep harness, which must re-read its own
// checkpoint manifests on resume; it accepts exactly the dialect dump()
// emits (plus arbitrary whitespace) and throws on anything malformed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string_view>
#include <type_traits>
#include <string>
#include <vector>

namespace memsched::util {

class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT(google-explicit-constructor)
  /// Any non-bool arithmetic type maps onto a JSON number.
  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  Json(T v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}  // NOLINT
  Json(const char* s) : kind_(Kind::kString), str_(s) {}             // NOLINT
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT

  /// Object factory.
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  /// Array factory.
  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  /// Verbatim splice: `text` is emitted as-is by dump(). Lets the sweep
  /// harness copy an already-serialized payload into a report without a
  /// parse/re-emit round trip (guaranteeing byte-identical output).
  static Json raw(std::string text) {
    Json j;
    j.kind_ = Kind::kRaw;
    j.str_ = std::move(text);
    return j;
  }

  /// Parse a complete JSON document; throws std::runtime_error with the
  /// byte offset on malformed input or trailing garbage.
  static Json parse(std::string_view text);

  /// Object member access (creates the member; converts null to object).
  Json& operator[](const std::string& key);

  /// Array append (converts null to array).
  void push_back(Json value);

  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] std::size_t size() const;

  /// Read accessors. as_*() throw std::runtime_error on a kind mismatch so
  /// a malformed manifest fails loudly instead of yielding zeros.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::uint64_t as_uint() const;  ///< number, checked >= 0
  [[nodiscard]] const std::string& as_string() const;

  /// Object lookup: find() returns nullptr when absent; at() throws.
  [[nodiscard]] const Json* find(const std::string& key) const;
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] const Json& at(std::size_t index) const;  ///< array element

  /// Ordered element/member views (empty for scalar kinds).
  [[nodiscard]] const std::vector<Json>& elements() const { return elements_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Serialize; `indent` < 0 gives compact output, otherwise pretty-printed
  /// with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Write dump() to a file; throws std::runtime_error on I/O failure.
  void write_file(const std::string& path, int indent = 2) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray, kRaw };

  void dump_to(std::string& out, int indent, int depth) const;
  static void escape_to(std::string& out, const std::string& s);

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // Insertion-ordered object members.
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> elements_;
};

}  // namespace memsched::util
