// Minimal JSON document builder.
//
// Purpose-built for machine-readable experiment records: supports objects,
// arrays, strings (escaped), finite numbers and booleans — nothing else.
// Not a parser; memsched emits JSON, it never consumes it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <type_traits>
#include <string>
#include <vector>

namespace memsched::util {

class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT(google-explicit-constructor)
  /// Any non-bool arithmetic type maps onto a JSON number.
  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  Json(T v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}  // NOLINT
  Json(const char* s) : kind_(Kind::kString), str_(s) {}             // NOLINT
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT

  /// Object factory.
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  /// Array factory.
  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  /// Object member access (creates the member; converts null to object).
  Json& operator[](const std::string& key);

  /// Array append (converts null to array).
  void push_back(Json value);

  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] std::size_t size() const;

  /// Serialize; `indent` < 0 gives compact output, otherwise pretty-printed
  /// with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Write dump() to a file; throws std::runtime_error on I/O failure.
  void write_file(const std::string& path, int indent = 2) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  void dump_to(std::string& out, int indent, int depth) const;
  static void escape_to(std::string& out, const std::string& s);

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // Insertion-ordered object members.
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> elements_;
};

}  // namespace memsched::util
