// Streaming statistics utilities used by every stats-collecting module.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace memsched::util {

/// Single-pass running statistics (Welford). Constant memory; numerically
/// stable for the billions of latency samples a long simulation produces.
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Raw-field access for checkpoint/restore. `raw_min`/`raw_max` bypass the
  /// n==0 masking in min()/max() so an empty stat round-trips exactly.
  [[nodiscard]] double raw_mean() const { return mean_; }
  [[nodiscard]] double raw_m2() const { return m2_; }
  [[nodiscard]] double raw_min() const { return min_; }
  [[nodiscard]] double raw_max() const { return max_; }
  void restore(std::uint64_t n, double mean, double m2, double mn, double mx,
               double sum) {
    n_ = n;
    mean_ = mean;
    m2_ = m2;
    min_ = mn;
    max_ = mx;
    sum_ = sum;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-width-bucket histogram with overflow bucket; used for latency
/// distributions (e.g. read latency CDFs behind Figure 4).
class Histogram {
 public:
  /// Buckets: [0,w), [w,2w), ..., [(n-1)w, nw), plus one overflow bucket.
  Histogram(double bucket_width, std::size_t bucket_count);

  void add(double x);
  void reset();

  /// Merge another histogram of identical geometry (width and bucket count).
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] double bucket_width() const { return width_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }

  /// Value below which fraction q of samples fall (linear interpolation
  /// within a bucket). q in [0,1].
  [[nodiscard]] double quantile(double q) const;

  /// Checkpoint/restore: geometry (width, bucket count) is construction-time
  /// config and must already match; only the sample counts are restored.
  void restore(const std::vector<std::uint64_t>& buckets, std::uint64_t overflow,
               std::uint64_t total) {
    buckets_ = buckets;
    overflow_ = overflow;
    total_ = total;
  }

 private:
  double width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Arithmetic mean of a vector (0 for empty input).
double mean_of(const std::vector<double>& xs);

/// Geometric mean (0 if any element <= 0 or empty).
double geomean_of(const std::vector<double>& xs);

/// Format a double with fixed precision — tiny convenience for report tables.
std::string fmt(double x, int precision = 3);

}  // namespace memsched::util
