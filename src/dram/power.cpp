#include "dram/power.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace memsched::dram {

PowerModel::PowerModel(const PowerConfig& cfg, const Timing& timing, double bus_hz)
    : cfg_(cfg), timing_(timing), tick_seconds_(1.0 / bus_hz) {
  MEMSCHED_ASSERT(bus_hz > 0.0, "bus frequency must be positive");
  const double devs = cfg.devices_per_channel();
  const double v = cfg.vdd;

  // One ACT-PRE cycle draws IDD0 for tRC; the background current the device
  // would draw anyway (IDD3N for tRAS, IDD2N for tRP) is charged to the
  // background term, so subtract it here (Micron power-calculator form).
  const double t_ras = timing.tRAS * tick_seconds_;
  const double t_rp = timing.tRP * tick_seconds_;
  const double t_rc = t_ras + t_rp;
  e_act_ = std::max(0.0, cfg.idd0 * t_rc - cfg.idd3n * t_ras - cfg.idd2n * t_rp) *
           v * devs;

  const double t_burst = timing.burst_cycles * tick_seconds_;
  e_read_ = (cfg.idd4r - cfg.idd3n) * v * t_burst * devs;
  e_write_ = (cfg.idd4w - cfg.idd3n) * v * t_burst * devs;
  e_refresh_ = (cfg.idd5 - cfg.idd2n) * v * (timing.tRFC * tick_seconds_) * devs;

  p_active_ = cfg.idd3n * v * devs;
  p_idle_ = cfg.idd2n * v * devs;
}

EnergyBreakdown PowerModel::energy_of(const DramSystem& dram, Tick elapsed) const {
  EnergyBreakdown e;
  for (std::uint32_t c = 0; c < dram.channel_count(); ++c) {
    const Channel& ch = dram.channel(c);
    std::uint64_t acts = 0;
    Tick active = 0;
    for (std::uint32_t b = 0; b < ch.bank_count(); ++b) {
      acts += ch.bank(b).activate_count();
      active += ch.bank(b).active_ticks(elapsed);
    }
    e.activate += static_cast<double>(acts) * e_act_;
    // Data-bus busy cycles split between reads and writes are not tracked
    // separately at channel level; attribute by burst counts via the
    // read/write ratio of data cycles (equal burst lengths make the split
    // exact at transaction granularity).
    // Channel keeps total bursts; the controller's read/write counts are
    // not visible here, so charge the mean of read/write burst energy —
    // they differ by < 3% on DDR2.
    const double e_burst = 0.5 * (e_read_ + e_write_);
    e.read += static_cast<double>(ch.bursts()) * e_burst * 0.5;
    e.write += static_cast<double>(ch.bursts()) * e_burst * 0.5;
    // Background: per-bank active residency at IDD3N-share, the rest idle.
    // IDD3N/IDD2N are device currents with >= 1 bank open, not per bank;
    // approximate "any bank open" residency by the max per-bank residency
    // bound: min(sum of bank active ticks, elapsed).
    const Tick any_active = std::min<Tick>(active, elapsed);
    e.background += p_active_ * static_cast<double>(any_active) * tick_seconds_ +
                    p_idle_ * static_cast<double>(elapsed - any_active) * tick_seconds_;
  }
  if (timing_.refresh_enabled && timing_.tREFI > 0) {
    const double refreshes = static_cast<double>(elapsed) / timing_.tREFI;
    e.refresh = refreshes * e_refresh_ * dram.channel_count();
  }
  return e;
}

}  // namespace memsched::dram
