// DDR2 timing and organization parameters.
//
// Defaults reproduce Table 1 of the paper: DDR2-800 (400 MHz command clock,
// 800 MT/s data rate), 5-5-5 (tCL-tRCD-tRP, 12.5 ns each), two logic
// channels of 16-byte width (two ganged 8-byte physical channels), two DIMMs
// per physical channel and four banks per DIMM. A ganged physical-channel
// pair operates in lockstep, so the model treats each logic channel as one
// 16-byte-wide channel with dimms*banks independent banks.
//
// All timing values are in memory-bus cycles (2.5 ns at 400 MHz).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace memsched::dram {

struct Timing {
  // Core 5-5-5 parameters (Table 1: 12.5 ns each at 400 MHz).
  std::uint32_t tCL = 5;   ///< column access strobe latency (read)
  std::uint32_t tRCD = 5;  ///< row-to-column (activate to CAS)
  std::uint32_t tRP = 5;   ///< precharge period

  // Derived/secondary DDR2-800 parameters (JEDEC-typical values; the paper
  // only specifies 5-5-5, these fill in the rest of the state machine).
  std::uint32_t tRAS = 18;  ///< activate to precharge (45 ns)
  std::uint32_t tWL = 4;    ///< write latency = tCL - 1 on DDR2
  std::uint32_t tWR = 6;    ///< write recovery before precharge (15 ns)
  std::uint32_t tWTR = 3;   ///< write-to-read turnaround (7.5 ns)
  std::uint32_t tRTW = 2;   ///< read-to-write data-bus turnaround
  std::uint32_t tRTP = 3;   ///< read-to-precharge (7.5 ns)
  std::uint32_t tRRD = 3;   ///< activate-to-activate, different banks (7.5 ns)
  std::uint32_t tFAW = 15;  ///< four-activate window (37.5 ns)
  std::uint32_t tCCD = 2;   ///< CAS-to-CAS minimum spacing
  std::uint32_t tRTRS = 1;  ///< rank-to-rank data-bus switch gap

  // Burst: a 64 B line over a 16 B-wide logic channel at 800 MT/s is four
  // beats = two command-clock cycles of data-bus occupancy.
  std::uint32_t burst_cycles = 2;

  // Refresh (off by default — the paper does not model it; see DESIGN.md).
  bool refresh_enabled = false;
  std::uint32_t tREFI = 3120;  ///< refresh interval (7.8 us)
  std::uint32_t tRFC = 51;     ///< refresh cycle time (127.5 ns)

  /// activate-to-activate on the same bank.
  [[nodiscard]] std::uint32_t tRC() const { return tRAS + tRP; }

  /// Minimum possible read latency in bus cycles: ACT + CAS + burst
  /// (row-closed bank, empty system). Useful as a lower bound in tests.
  [[nodiscard]] std::uint32_t min_read_cycles() const { return tRCD + tCL + burst_cycles; }

  /// Validates internal consistency; returns an error message or empty.
  [[nodiscard]] std::string validate() const;
};

/// A named device speed grade: timing in bus cycles plus the clock the
/// cycles are counted in (expressed as CPU cycles per bus tick for the
/// paper's 3.2 GHz cores). Table 1's part is DDR2-800; the others support
/// sensitivity studies across the DDR2 family and an early-DDR3 point.
struct SpeedGrade {
  const char* name;
  Timing timing;
  std::uint32_t cpu_ratio;      ///< 3.2 GHz CPU cycles per bus tick
  std::uint32_t overhead_ticks; ///< the controller's 15 ns in bus ticks

  /// DDR2-400 3-3-3 (200 MHz bus).
  static SpeedGrade ddr2_400();
  /// DDR2-533 4-4-4 (266.7 MHz bus).
  static SpeedGrade ddr2_533();
  /// DDR2-800 5-5-5 (400 MHz bus) — the paper's Table-1 device.
  static SpeedGrade ddr2_800();
  /// DDR3-1600 11-11-11 (800 MHz bus).
  static SpeedGrade ddr3_1600();

  /// All grades above, slowest first.
  static const std::vector<SpeedGrade>& all();

  /// Lookup by name ("DDR2-800", ...); throws std::invalid_argument.
  static const SpeedGrade& by_name(const std::string& name);
};

struct Organization {
  std::uint32_t channels = 2;        ///< logic channels (16 B wide each)
  std::uint32_t dimms_per_channel = 2;
  std::uint32_t banks_per_dimm = 4;
  std::uint64_t row_bytes = 8192;    ///< row-buffer coverage per (ganged) bank
  std::uint64_t capacity_bytes = std::uint64_t{4} << 30;  ///< total, for row count

  [[nodiscard]] std::uint32_t banks_per_channel() const {
    return dimms_per_channel * banks_per_dimm;
  }
  [[nodiscard]] std::uint32_t total_banks() const {
    return channels * banks_per_channel();
  }
  [[nodiscard]] std::uint64_t lines_per_row() const { return row_bytes / kLineBytes; }
  [[nodiscard]] std::uint64_t rows_per_bank() const {
    return capacity_bytes / (static_cast<std::uint64_t>(total_banks()) * row_bytes);
  }

  /// Peak data bandwidth in GB/s across all channels:
  /// channels * 16 B * 800 MT/s = 12.8 GB/s per logic channel (Table 1).
  [[nodiscard]] double peak_bandwidth_gbs(double bus_mhz = 400.0) const {
    return static_cast<double>(channels) * 16.0 * (2.0 * bus_mhz * 1e6) / 1e9;
  }

  [[nodiscard]] std::string validate() const;
};

}  // namespace memsched::dram
