#include "dram/timing.hpp"

#include <stdexcept>

#include "util/bitops.hpp"

namespace memsched::dram {

namespace {

Timing make_timing(std::uint32_t cl, std::uint32_t rcd, std::uint32_t rp,
                   std::uint32_t ras, std::uint32_t wl, std::uint32_t wr,
                   std::uint32_t wtr, std::uint32_t rtw, std::uint32_t rtp,
                   std::uint32_t rrd, std::uint32_t faw, std::uint32_t ccd,
                   std::uint32_t refi, std::uint32_t rfc) {
  Timing t;
  t.tCL = cl;
  t.tRCD = rcd;
  t.tRP = rp;
  t.tRAS = ras;
  t.tWL = wl;
  t.tWR = wr;
  t.tWTR = wtr;
  t.tRTW = rtw;
  t.tRTP = rtp;
  t.tRRD = rrd;
  t.tFAW = faw;
  t.tCCD = ccd;
  t.tREFI = refi;
  t.tRFC = rfc;
  return t;
}

}  // namespace

SpeedGrade SpeedGrade::ddr2_400() {
  // 200 MHz bus, 5 ns cycles: 3-3-3, tRAS 45 ns, tFAW 40 ns, tRFC 130 ns.
  return {"DDR2-400",
          make_timing(3, 3, 3, 9, 2, 3, 2, 2, 2, 2, 8, 2, 1560, 26),
          /*cpu_ratio=*/16, /*overhead_ticks=*/3};
}

SpeedGrade SpeedGrade::ddr2_533() {
  // 266.7 MHz bus, 3.75 ns cycles: 4-4-4.
  return {"DDR2-533",
          make_timing(4, 4, 4, 12, 3, 4, 2, 2, 2, 2, 10, 2, 2080, 34),
          /*cpu_ratio=*/12, /*overhead_ticks=*/4};
}

SpeedGrade SpeedGrade::ddr2_800() {
  // Table 1's device: the Timing defaults.
  return {"DDR2-800", Timing{}, /*cpu_ratio=*/8, /*overhead_ticks=*/6};
}

SpeedGrade SpeedGrade::ddr3_1600() {
  // 800 MHz bus, 1.25 ns cycles: 11-11-11, tRAS 35 ns, tFAW 30 ns.
  return {"DDR3-1600",
          make_timing(11, 11, 11, 28, 8, 12, 6, 4, 6, 5, 24, 4, 6240, 128),
          /*cpu_ratio=*/4, /*overhead_ticks=*/12};
}

const std::vector<SpeedGrade>& SpeedGrade::all() {
  static const std::vector<SpeedGrade> grades = {ddr2_400(), ddr2_533(), ddr2_800(),
                                                 ddr3_1600()};
  return grades;
}

const SpeedGrade& SpeedGrade::by_name(const std::string& name) {
  for (const SpeedGrade& g : all()) {
    if (name == g.name) return g;
  }
  throw std::invalid_argument("unknown speed grade: " + name);
}

std::string Timing::validate() const {
  if (tCL == 0 || tRCD == 0 || tRP == 0) return "tCL/tRCD/tRP must be nonzero";
  if (tWL >= tCL + 1) return "DDR2 requires tWL <= tCL";
  if (tRAS < tRCD) return "tRAS must cover at least tRCD";
  if (burst_cycles == 0) return "burst_cycles must be nonzero";
  if (tFAW < tRRD) return "tFAW must be at least tRRD";
  if (refresh_enabled && tREFI <= tRFC) return "tREFI must exceed tRFC";
  return {};
}

std::string Organization::validate() const {
  using util::is_pow2;
  if (channels == 0 || dimms_per_channel == 0 || banks_per_dimm == 0)
    return "organization dimensions must be nonzero";
  if (!is_pow2(channels) || !is_pow2(dimms_per_channel) || !is_pow2(banks_per_dimm))
    return "organization dimensions must be powers of two";
  if (!is_pow2(row_bytes) || row_bytes < kLineBytes)
    return "row_bytes must be a power of two >= line size";
  if (!is_pow2(capacity_bytes)) return "capacity must be a power of two";
  if (rows_per_bank() == 0) return "capacity too small for organization";
  return {};
}

}  // namespace memsched::dram
