// Physical-address to DRAM-coordinate mapping.
//
// The paper evaluates close-page mode with *cache-line interleaving*
// (§4.1): consecutive 64 B lines rotate across channels, then banks, so
// independent requests spread over all banks and the row buffer is exploited
// only by concurrent same-row requests (which is exactly what the Hit-First
// component of every scheduler looks for). Page interleaving (consecutive
// lines fill a row before moving on) is also provided for the ablation
// bench and for users studying open-page controllers.
#pragma once

#include <cstdint>
#include <string>

#include "dram/timing.hpp"
#include "util/types.hpp"

namespace memsched::dram {

/// Decoded DRAM coordinates of one cache-line-sized access.
struct DramAddress {
  std::uint32_t channel = 0;  ///< logic channel
  std::uint32_t bank = 0;     ///< flattened (dimm, bank) within the channel
  std::uint64_t row = 0;
  std::uint64_t col_line = 0;  ///< line index within the row

  bool operator==(const DramAddress&) const = default;
};

enum class Interleave {
  kLineInterleave,  ///< line bits -> channel, bank, column, row (banks fastest)
  kPageInterleave,  ///< open-page style: line bits -> column, channel, bank, row
  kHybrid,          ///< paper default: line bits -> channel, column, bank, row —
                    ///< consecutive lines alternate channels but stay within one
                    ///< row per bank, so sequential streams expose deep same-row
                    ///< runs for the Hit-First component to exploit
};

/// Converts between physical addresses and DRAM coordinates. All address
/// bits above the modeled capacity wrap (addresses are taken modulo
/// capacity); the synthetic generators keep footprints within capacity.
class AddressMap {
 public:
  /// `bank_xor` enables permutation-based bank indexing (Zhang et al.,
  /// MICRO 2000): the bank index is XORed with the low row bits, spreading
  /// same-bank conflicts of strided/power-of-two access patterns across
  /// all banks while keeping the mapping a bijection.
  AddressMap(const Organization& org, Interleave scheme, bool bank_xor = false);

  [[nodiscard]] DramAddress decode(Addr addr) const;
  [[nodiscard]] Addr encode(const DramAddress& da) const;

  [[nodiscard]] Interleave scheme() const { return scheme_; }
  [[nodiscard]] bool bank_xor() const { return bank_xor_; }
  [[nodiscard]] const Organization& organization() const { return org_; }

  static std::string scheme_name(Interleave scheme);

 private:
  Organization org_;
  Interleave scheme_;
  bool bank_xor_;
  unsigned channel_bits_;
  unsigned bank_bits_;
  unsigned col_bits_;   ///< line-index-within-row bits
  unsigned row_bits_;
};

}  // namespace memsched::dram
