#include "dram/channel.hpp"

#include <algorithm>

#include "ckpt/snapshot.hpp"
#include "util/assert.hpp"

namespace memsched::dram {

Channel::Channel(const Timing& timing, std::uint32_t bank_count,
                 std::uint32_t banks_per_rank)
    : timing_(&timing), banks_per_rank_(banks_per_rank) {
  MEMSCHED_ASSERT(bank_count > 0, "channel needs at least one bank");
  MEMSCHED_ASSERT(banks_per_rank == 0 || bank_count % banks_per_rank == 0,
                  "banks must divide evenly into ranks");
  banks_.reserve(bank_count);
  for (std::uint32_t i = 0; i < bank_count; ++i) banks_.emplace_back(timing);
}

void Channel::consume_command_slot(Tick now) {
  MEMSCHED_ASSERTF(command_bus_free(now), "command bus conflict: ch%u tick %llu",
                   channel_id_, static_cast<unsigned long long>(now));
  cmd_issued_ = true;
  last_cmd_tick_ = now;
  ++commands_;
}

bool Channel::can_activate(std::uint32_t bank, Tick now) const {
  if (!command_bus_free(now)) return false;
  if (!banks_[bank].can_activate(now)) return false;
  if (any_act_ && now < last_act_tick_ + timing_->tRRD) return false;
  // tFAW: at most four activates in any tFAW window -> the fifth ACT must
  // wait until the oldest of the last four ages out.
  if (act_window_fill_ >= 4 && now < act_window_[act_window_pos_] + timing_->tFAW)
    return false;
  return true;
}

bool Channel::can_read(std::uint32_t bank, Tick now) const {
  if (!command_bus_free(now)) return false;
  if (!banks_[bank].can_cas(now)) return false;
  if (any_cas_ && now < last_cas_tick_ + timing_->tCCD) return false;
  // Rank-to-rank switch: the new burst must trail the previous one by tRTRS
  // when it comes from a different rank sharing the data bus.
  if (any_cas_ && banks_per_rank_ != 0 &&
      bank / banks_per_rank_ != last_cas_rank_ &&
      now + timing_->tCL < data_busy_until_ + timing_->tRTRS)
    return false;
  // Write-to-read turnaround: read CAS waits tWTR after the last write beat.
  if (now < write_data_end_ + timing_->tWTR && write_data_end_ != 0) return false;
  // Data bus must be free for the whole burst.
  if (now + timing_->tCL < data_busy_until_) return false;
  return true;
}

bool Channel::can_write(std::uint32_t bank, Tick now) const {
  if (!command_bus_free(now)) return false;
  if (!banks_[bank].can_cas(now)) return false;
  if (any_cas_ && now < last_cas_tick_ + timing_->tCCD) return false;
  if (any_cas_ && banks_per_rank_ != 0 &&
      bank / banks_per_rank_ != last_cas_rank_ &&
      now + timing_->tWL < data_busy_until_ + timing_->tRTRS)
    return false;
  // Read-to-write turnaround on the data bus.
  if (read_data_end_ != 0 && now + timing_->tWL < read_data_end_ + timing_->tRTW)
    return false;
  if (now + timing_->tWL < data_busy_until_) return false;
  return true;
}

bool Channel::can_precharge(std::uint32_t bank, Tick now) const {
  return command_bus_free(now) && banks_[bank].can_precharge(now);
}

bool Channel::can_refresh(Tick now) const {
  if (!command_bus_free(now)) return false;
  for (const Bank& b : banks_) {
    if (b.row_open() || now < b.earliest_activate()) return false;
  }
  return true;
}

namespace {
/// Earliest tick satisfying `now + lead >= end` without unsigned underflow.
constexpr Tick after_lead(Tick end, Tick lead) { return end > lead ? end - lead : 0; }
}  // namespace

Tick Channel::next_activate_tick(std::uint32_t bank, Tick now) const {
  const Bank& b = banks_[bank];
  Tick t = b.next_activate_tick(now);
  if (t == kNeverTick) return kNeverTick;
  t = std::max(t, next_command_bus_tick(now));
  if (any_act_) t = std::max(t, last_act_tick_ + timing_->tRRD);
  if (act_window_fill_ >= 4) t = std::max(t, act_window_[act_window_pos_] + timing_->tFAW);
  return t;
}

Tick Channel::next_read_tick(std::uint32_t bank, Tick now) const {
  const Bank& b = banks_[bank];
  Tick t = b.next_cas_tick(now);
  if (t == kNeverTick) return kNeverTick;
  t = std::max(t, next_command_bus_tick(now));
  if (any_cas_) t = std::max(t, last_cas_tick_ + timing_->tCCD);
  if (any_cas_ && banks_per_rank_ != 0 && bank / banks_per_rank_ != last_cas_rank_)
    t = std::max(t, after_lead(data_busy_until_ + timing_->tRTRS, timing_->tCL));
  if (write_data_end_ != 0) t = std::max(t, write_data_end_ + timing_->tWTR);
  t = std::max(t, after_lead(data_busy_until_, timing_->tCL));
  return t;
}

Tick Channel::next_write_tick(std::uint32_t bank, Tick now) const {
  const Bank& b = banks_[bank];
  Tick t = b.next_cas_tick(now);
  if (t == kNeverTick) return kNeverTick;
  t = std::max(t, next_command_bus_tick(now));
  if (any_cas_) t = std::max(t, last_cas_tick_ + timing_->tCCD);
  if (any_cas_ && banks_per_rank_ != 0 && bank / banks_per_rank_ != last_cas_rank_)
    t = std::max(t, after_lead(data_busy_until_ + timing_->tRTRS, timing_->tWL));
  if (read_data_end_ != 0)
    t = std::max(t, after_lead(read_data_end_ + timing_->tRTW, timing_->tWL));
  t = std::max(t, after_lead(data_busy_until_, timing_->tWL));
  return t;
}

Tick Channel::next_precharge_tick(std::uint32_t bank, Tick now) const {
  const Tick t = banks_[bank].next_precharge_tick(now);
  if (t == kNeverTick) return kNeverTick;
  return std::max(t, next_command_bus_tick(now));
}

void Channel::issue_activate(std::uint32_t bank, std::uint64_t row, Tick now) {
  MEMSCHED_ASSERTF(can_activate(bank, now),
                   "illegal ACT: ch%u bank %u row %llu tick %llu", channel_id_,
                   bank, static_cast<unsigned long long>(row),
                   static_cast<unsigned long long>(now));
  consume_command_slot(now);
  notify(CommandType::kActivate, bank, row, now);
  banks_[bank].issue_activate(now, row);
  last_act_tick_ = now;
  any_act_ = true;
  act_window_[act_window_pos_] = now;
  act_window_pos_ = (act_window_pos_ + 1) % 4;
  if (act_window_fill_ < 4) ++act_window_fill_;
}

void Channel::issue_precharge(std::uint32_t bank, Tick now) {
  MEMSCHED_ASSERTF(can_precharge(bank, now), "illegal PRE: ch%u bank %u tick %llu",
                   channel_id_, bank, static_cast<unsigned long long>(now));
  consume_command_slot(now);
  notify(CommandType::kPrecharge, bank, 0, now);
  banks_[bank].issue_precharge(now);
}

Tick Channel::issue_read(std::uint32_t bank, Tick now, bool auto_precharge) {
  MEMSCHED_ASSERTF(can_read(bank, now), "illegal READ: ch%u bank %u tick %llu",
                   channel_id_, bank, static_cast<unsigned long long>(now));
  consume_command_slot(now);
  notify(auto_precharge ? CommandType::kReadAp : CommandType::kRead, bank, 0, now);
  banks_[bank].issue_read(now, auto_precharge);
  last_cas_tick_ = now;
  any_cas_ = true;
  if (banks_per_rank_ != 0) last_cas_rank_ = bank / banks_per_rank_;
  const Tick data_start = now + timing_->tCL;
  const Tick data_end = data_start + timing_->burst_cycles;
  data_busy_until_ = data_end;
  read_data_end_ = data_end;
  data_busy_cycles_ += timing_->burst_cycles;
  ++bursts_;
  return data_end;
}

Tick Channel::issue_write(std::uint32_t bank, Tick now, bool auto_precharge) {
  MEMSCHED_ASSERTF(can_write(bank, now), "illegal WRITE: ch%u bank %u tick %llu",
                   channel_id_, bank, static_cast<unsigned long long>(now));
  consume_command_slot(now);
  notify(auto_precharge ? CommandType::kWriteAp : CommandType::kWrite, bank, 0, now);
  banks_[bank].issue_write(now, auto_precharge);
  last_cas_tick_ = now;
  any_cas_ = true;
  if (banks_per_rank_ != 0) last_cas_rank_ = bank / banks_per_rank_;
  const Tick data_start = now + timing_->tWL;
  const Tick data_end = data_start + timing_->burst_cycles;
  data_busy_until_ = data_end;
  write_data_end_ = data_end;
  data_busy_cycles_ += timing_->burst_cycles;
  ++bursts_;
  return data_end;
}

void Channel::issue_refresh(Tick now) {
  MEMSCHED_ASSERTF(can_refresh(now), "illegal REF: ch%u tick %llu", channel_id_,
                   static_cast<unsigned long long>(now));
  consume_command_slot(now);
  notify(CommandType::kRefresh, 0, 0, now);
  for (Bank& b : banks_) b.issue_refresh(now);
}

void Channel::save_state(ckpt::Writer& w) const {
  for (const Bank& b : banks_) b.save_state(w);
  w.put_bool(cmd_issued_);
  w.put_u64(last_cmd_tick_);
  w.put_u64(data_busy_until_);
  w.put_u64(read_data_end_);
  w.put_u64(write_data_end_);
  w.put_u64(last_cas_tick_);
  w.put_bool(any_cas_);
  w.put_u32(last_cas_rank_);
  w.put_u64(last_act_tick_);
  w.put_bool(any_act_);
  for (Tick t : act_window_) w.put_u64(t);
  w.put_u32(act_window_pos_);
  w.put_u32(act_window_fill_);
  w.put_u64(commands_);
  w.put_u64(data_busy_cycles_);
  w.put_u64(bursts_);
}

void Channel::load_state(ckpt::Reader& r) {
  for (Bank& b : banks_) b.load_state(r);
  cmd_issued_ = r.get_bool();
  last_cmd_tick_ = r.get_u64();
  data_busy_until_ = r.get_u64();
  read_data_end_ = r.get_u64();
  write_data_end_ = r.get_u64();
  last_cas_tick_ = r.get_u64();
  any_cas_ = r.get_bool();
  last_cas_rank_ = r.get_u32();
  last_act_tick_ = r.get_u64();
  any_act_ = r.get_bool();
  for (Tick& t : act_window_) t = r.get_u64();
  act_window_pos_ = r.get_u32();
  act_window_fill_ = r.get_u32();
  commands_ = r.get_u64();
  data_busy_cycles_ = r.get_u64();
  bursts_ = r.get_u64();
}

}  // namespace memsched::dram
