// DDR2 power model (Micron "DDR2 power calculator" methodology).
//
// Energy is computed from event counts and state-residency times that the
// device model already tracks:
//
//   * activate/precharge energy per ACT — the IDD0 cycle current minus the
//     background current the device would have drawn anyway;
//   * read/write burst energy — (IDD4R/W − IDD3N) during data transfer;
//   * refresh energy — (IDD5 − IDD2N) for tRFC per refresh;
//   * background power — IDD3N while any row is open, IDD2N otherwise
//     (no power-down modes: the paper's controller never idles long
//     enough for them to matter, and DDR2 CKE management is out of scope).
//
// All currents are per device; a logic channel is a ganged pair of x64
// ranks, i.e. `devices` x8 chips share every access. Defaults are
// Micron 1 Gb DDR2-800 (MT47H128M8) data-sheet values.
#pragma once

#include <cstdint>

#include "dram/dram_system.hpp"
#include "dram/timing.hpp"
#include "util/types.hpp"

namespace memsched::dram {

struct PowerConfig {
  double vdd = 1.8;        ///< volts
  double idd0 = 0.085;     ///< amps: one ACT-PRE cycle average
  double idd2n = 0.045;    ///< precharge standby
  double idd3n = 0.060;    ///< active standby
  double idd4r = 0.185;    ///< read burst
  double idd4w = 0.190;    ///< write burst
  double idd5 = 0.215;     ///< refresh
  std::uint32_t devices_per_rank = 8;  ///< x8 chips forming a 64-bit rank
  std::uint32_t ranks_per_channel = 2; ///< ganged physical-channel pair

  [[nodiscard]] std::uint32_t devices_per_channel() const {
    return devices_per_rank * ranks_per_channel;
  }
};

/// Energy breakdown in joules, plus derived figures.
struct EnergyBreakdown {
  double activate = 0.0;
  double read = 0.0;
  double write = 0.0;
  double refresh = 0.0;
  double background = 0.0;

  [[nodiscard]] double total() const {
    return activate + read + write + refresh + background;
  }
  /// Average power in watts over `seconds`.
  [[nodiscard]] double average_power(double seconds) const {
    return seconds > 0.0 ? total() / seconds : 0.0;
  }
};

/// Computes the energy a DramSystem consumed over `elapsed` bus ticks.
///
/// Stateless: call at any point (e.g. after RunResult) with the same
/// DramSystem the run used. `bus_hz` converts ticks to seconds.
class PowerModel {
 public:
  PowerModel(const PowerConfig& cfg, const Timing& timing, double bus_hz);

  [[nodiscard]] EnergyBreakdown energy_of(const DramSystem& dram, Tick elapsed) const;

  /// Per-event energies (joules), for tests and reports.
  [[nodiscard]] double activate_energy() const { return e_act_; }
  [[nodiscard]] double read_burst_energy() const { return e_read_; }
  [[nodiscard]] double write_burst_energy() const { return e_write_; }
  [[nodiscard]] double refresh_energy() const { return e_refresh_; }

  [[nodiscard]] const PowerConfig& config() const { return cfg_; }

 private:
  PowerConfig cfg_;
  Timing timing_;
  double tick_seconds_;
  double e_act_;      ///< per ACT-PRE pair, whole channel
  double e_read_;     ///< per read burst
  double e_write_;    ///< per write burst
  double e_refresh_;  ///< per all-bank refresh
  double p_active_;   ///< background watts while a bank is active
  double p_idle_;     ///< background watts while all banks precharged
};

}  // namespace memsched::dram
