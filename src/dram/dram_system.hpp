// DramSystem: the complete DDR2 memory-device model.
//
// Owns the timing/organization parameters, the address map and all logic
// channels. The memory controller (src/mc) drives it command by command;
// DramSystem itself has no scheduling policy.
#pragma once

#include <memory>
#include <vector>

#include "dram/address_map.hpp"
#include "dram/channel.hpp"
#include "dram/timing.hpp"

namespace memsched::dram {

class DramSystem {
 public:
  DramSystem(const Timing& timing, const Organization& org, Interleave scheme,
             bool bank_xor = false);

  [[nodiscard]] const Timing& timing() const { return timing_; }
  [[nodiscard]] const Organization& organization() const { return org_; }
  [[nodiscard]] const AddressMap& address_map() const { return map_; }

  [[nodiscard]] std::uint32_t channel_count() const {
    return static_cast<std::uint32_t>(channels_.size());
  }
  [[nodiscard]] Channel& channel(std::uint32_t i) { return channels_[i]; }
  [[nodiscard]] const Channel& channel(std::uint32_t i) const { return channels_[i]; }

  /// Aggregate data-bus utilization over all channels in [0,1], given the
  /// total elapsed ticks.
  [[nodiscard]] double data_bus_utilization(Tick elapsed) const;

  /// Total data bursts transferred (reads + writes), all channels.
  [[nodiscard]] std::uint64_t total_bursts() const;

  /// Attach one observer to every channel's command stream (nullptr
  /// detaches). Channels report with their index as CommandRecord::channel.
  void set_command_observer(CommandObserver* observer);

  // --- checkpoint/restore (all channels and banks) ---
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  Timing timing_;
  Organization org_;
  AddressMap map_;
  std::vector<Channel> channels_;
};

}  // namespace memsched::dram
