#include "dram/bank.hpp"

#include <algorithm>

#include "ckpt/snapshot.hpp"
#include "util/assert.hpp"

namespace memsched::dram {

void Bank::issue_activate(Tick now, std::uint64_t row) {
  MEMSCHED_ASSERTF(can_activate(now),
                   "ACT issued while illegal: row %llu tick %llu (open=%d, "
                   "earliest ACT %llu)",
                   static_cast<unsigned long long>(row),
                   static_cast<unsigned long long>(now), row_open_ ? 1 : 0,
                   static_cast<unsigned long long>(earliest_act_));
  row_open_ = true;
  open_row_ = row;
  act_tick_ = now;
  earliest_cas_ = now + timing_->tRCD;
  earliest_pre_ = std::max(earliest_pre_, now + timing_->tRAS);
  earliest_act_ = now + timing_->tRC();
  ++activates_;
}

void Bank::issue_precharge(Tick now) {
  MEMSCHED_ASSERTF(can_precharge(now),
                   "PRE issued while illegal: tick %llu (open=%d, earliest PRE %llu)",
                   static_cast<unsigned long long>(now), row_open_ ? 1 : 0,
                   static_cast<unsigned long long>(earliest_pre_));
  row_open_ = false;
  active_ticks_ += now - act_tick_;
  earliest_act_ = std::max(earliest_act_, now + timing_->tRP);
  ++precharges_;
}

void Bank::issue_read(Tick now, bool auto_precharge) {
  MEMSCHED_ASSERTF(can_cas(now),
                   "READ issued while illegal: tick %llu (open=%d, earliest CAS %llu)",
                   static_cast<unsigned long long>(now), row_open_ ? 1 : 0,
                   static_cast<unsigned long long>(earliest_cas_));
  // Read-to-precharge: PRE may not issue before now + tRTP.
  earliest_pre_ = std::max(earliest_pre_, now + timing_->tRTP);
  if (auto_precharge) {
    // Internal precharge begins once both tRTP (from this CAS) and tRAS
    // (from the ACT) are satisfied.
    const Tick pre_start = std::max(now + timing_->tRTP, act_tick_ + timing_->tRAS);
    row_open_ = false;
    active_ticks_ += pre_start - act_tick_;
    earliest_act_ = std::max(act_tick_ + timing_->tRC(), pre_start + timing_->tRP);
    ++precharges_;
  }
}

void Bank::issue_write(Tick now, bool auto_precharge) {
  MEMSCHED_ASSERTF(can_cas(now),
                   "WRITE issued while illegal: tick %llu (open=%d, earliest CAS %llu)",
                   static_cast<unsigned long long>(now), row_open_ ? 1 : 0,
                   static_cast<unsigned long long>(earliest_cas_));
  // Write recovery: PRE only after the last data beat + tWR.
  const Tick write_done = now + timing_->tWL + timing_->burst_cycles + timing_->tWR;
  earliest_pre_ = std::max(earliest_pre_, write_done);
  if (auto_precharge) {
    const Tick pre_start = std::max(write_done, act_tick_ + timing_->tRAS);
    row_open_ = false;
    active_ticks_ += pre_start - act_tick_;
    earliest_act_ = std::max(act_tick_ + timing_->tRC(), pre_start + timing_->tRP);
    ++precharges_;
  }
}

void Bank::save_state(ckpt::Writer& w) const {
  w.put_bool(row_open_);
  w.put_u64(open_row_);
  w.put_u64(act_tick_);
  w.put_u64(earliest_act_);
  w.put_u64(earliest_cas_);
  w.put_u64(earliest_pre_);
  w.put_u64(activates_);
  w.put_u64(precharges_);
  w.put_u64(active_ticks_);
}

void Bank::load_state(ckpt::Reader& r) {
  row_open_ = r.get_bool();
  open_row_ = r.get_u64();
  act_tick_ = r.get_u64();
  earliest_act_ = r.get_u64();
  earliest_cas_ = r.get_u64();
  earliest_pre_ = r.get_u64();
  activates_ = r.get_u64();
  precharges_ = r.get_u64();
  active_ticks_ = r.get_u64();
}

void Bank::issue_refresh(Tick now) {
  MEMSCHED_ASSERT(!row_open_, "REF issued with a row open");
  MEMSCHED_ASSERT(now >= earliest_act_, "REF issued while bank busy");
  earliest_act_ = now + timing_->tRFC;
}

}  // namespace memsched::dram
