// DRAM command vocabulary and the command-stream observation hook.
#pragma once

#include <cstdint>

#include "util/types.hpp"

// The verification hook surface compiles out entirely when the build sets
// MEMSCHED_VERIF_ENABLED=0 (CMake option MEMSCHED_VERIF=OFF): issue paths
// then contain no observer branch at all. Default is on — the residual cost
// with no observer attached is one predicted-not-taken null check.
#ifndef MEMSCHED_VERIF_ENABLED
#define MEMSCHED_VERIF_ENABLED 1
#endif

namespace memsched::dram {

enum class CommandType {
  kActivate,    ///< open a row into the bank's row buffer
  kPrecharge,   ///< close the open row
  kRead,        ///< column read, row stays open
  kReadAp,      ///< column read with auto-precharge (close-page mode)
  kWrite,       ///< column write, row stays open
  kWriteAp,     ///< column write with auto-precharge
  kRefresh,     ///< all-bank refresh (optional modeling)
};

constexpr const char* command_name(CommandType c) {
  switch (c) {
    case CommandType::kActivate: return "ACT";
    case CommandType::kPrecharge: return "PRE";
    case CommandType::kRead: return "RD";
    case CommandType::kReadAp: return "RDA";
    case CommandType::kWrite: return "WR";
    case CommandType::kWriteAp: return "WRA";
    case CommandType::kRefresh: return "REF";
  }
  return "?";
}

/// One command as it appeared on a channel's command bus. `row` is only
/// meaningful for kActivate; `bank` is unused for kRefresh (all banks).
struct CommandRecord {
  CommandType type = CommandType::kActivate;
  std::uint32_t channel = 0;
  std::uint32_t bank = 0;
  std::uint64_t row = 0;
  Tick tick = 0;
};

/// Observes every command a Channel issues, in issue order. Implemented by
/// verif::ProtocolChecker; the device model itself never depends on the
/// checker, only on this interface.
class CommandObserver {
 public:
  virtual ~CommandObserver() = default;
  virtual void on_command(const CommandRecord& cmd) = 0;
};

}  // namespace memsched::dram
