// DRAM command vocabulary.
#pragma once

namespace memsched::dram {

enum class CommandType {
  kActivate,    ///< open a row into the bank's row buffer
  kPrecharge,   ///< close the open row
  kRead,        ///< column read, row stays open
  kReadAp,      ///< column read with auto-precharge (close-page mode)
  kWrite,       ///< column write, row stays open
  kWriteAp,     ///< column write with auto-precharge
  kRefresh,     ///< all-bank refresh (optional modeling)
};

constexpr const char* command_name(CommandType c) {
  switch (c) {
    case CommandType::kActivate: return "ACT";
    case CommandType::kPrecharge: return "PRE";
    case CommandType::kRead: return "RD";
    case CommandType::kReadAp: return "RDA";
    case CommandType::kWrite: return "WR";
    case CommandType::kWriteAp: return "WRA";
    case CommandType::kRefresh: return "REF";
  }
  return "?";
}

}  // namespace memsched::dram
