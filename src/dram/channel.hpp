// Logic-channel model: banks plus shared command/data bus arbitration.
//
// A logic channel (two ganged 8-byte physical channels, Table 1) issues at
// most one command per bus cycle, carries one data burst at a time on its
// 16-byte data bus, and enforces the cross-bank constraints: tRRD and tFAW
// between activates, tCCD between column accesses, and tWTR/tRTW bus
// turnaround between reads and writes.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "dram/bank.hpp"
#include "dram/command.hpp"
#include "dram/timing.hpp"
#include "util/types.hpp"

namespace memsched::ckpt {
class Writer;
class Reader;
}  // namespace memsched::ckpt

namespace memsched::dram {

class Channel {
 public:
  /// `banks_per_rank` = 0 treats the whole channel as one rank (no
  /// rank-switch penalty); otherwise bank i belongs to rank i/banks_per_rank
  /// and consecutive column accesses to different ranks pay tRTRS on the
  /// shared data bus.
  Channel(const Timing& timing, std::uint32_t bank_count,
          std::uint32_t banks_per_rank = 0);

  [[nodiscard]] std::uint32_t bank_count() const {
    return static_cast<std::uint32_t>(banks_.size());
  }
  [[nodiscard]] Bank& bank(std::uint32_t i) { return banks_[i]; }
  [[nodiscard]] const Bank& bank(std::uint32_t i) const { return banks_[i]; }

  /// One command slot per bus cycle.
  [[nodiscard]] bool command_bus_free(Tick now) const { return now > last_cmd_tick_ || !cmd_issued_; }

  /// Earliest tick >= now with a free command-bus slot.
  [[nodiscard]] Tick next_command_bus_tick(Tick now) const {
    return cmd_issued_ ? std::max(now, last_cmd_tick_ + 1) : now;
  }

  // --- combined legality (bank-local + channel-level constraints) ---
  [[nodiscard]] bool can_activate(std::uint32_t bank, Tick now) const;
  [[nodiscard]] bool can_read(std::uint32_t bank, Tick now) const;
  [[nodiscard]] bool can_write(std::uint32_t bank, Tick now) const;
  [[nodiscard]] bool can_precharge(std::uint32_t bank, Tick now) const;
  [[nodiscard]] bool can_refresh(Tick now) const;

  // --- next-event queries (fast-forward engine) ---
  // Exact mirror of the can_* predicates: every constraint is a monotone
  // "now >= threshold" form, so the earliest legal tick is the max of the
  // thresholds. Returns the smallest T >= now with can_*(bank, T) true
  // assuming no intervening command, or kNeverTick when only another
  // command can make it legal (wrong row state).
  // tests/test_engine_equiv.cpp checks these against brute force.
  [[nodiscard]] Tick next_activate_tick(std::uint32_t bank, Tick now) const;
  [[nodiscard]] Tick next_read_tick(std::uint32_t bank, Tick now) const;
  [[nodiscard]] Tick next_write_tick(std::uint32_t bank, Tick now) const;
  [[nodiscard]] Tick next_precharge_tick(std::uint32_t bank, Tick now) const;

  // --- issue; each consumes the command-bus slot at `now` ---
  void issue_activate(std::uint32_t bank, std::uint64_t row, Tick now);
  void issue_precharge(std::uint32_t bank, Tick now);
  /// Returns the tick at which the last data beat arrives (read completion).
  Tick issue_read(std::uint32_t bank, Tick now, bool auto_precharge);
  /// Returns the tick at which the last data beat is written.
  Tick issue_write(std::uint32_t bank, Tick now, bool auto_precharge);
  void issue_refresh(Tick now);

  // --- statistics ---
  [[nodiscard]] std::uint64_t command_count() const { return commands_; }
  [[nodiscard]] std::uint64_t data_busy_cycles() const { return data_busy_cycles_; }
  [[nodiscard]] std::uint64_t bursts() const { return bursts_; }

  /// Attach a command-stream observer (nullptr detaches). `channel_id` is
  /// echoed in every CommandRecord so one observer can shadow all channels.
  void set_observer(CommandObserver* observer, std::uint32_t channel_id) {
    observer_ = observer;
    channel_id_ = channel_id;
  }

  // --- checkpoint/restore (banks included) ---
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  void consume_command_slot(Tick now);

  void notify(CommandType type, std::uint32_t bank, std::uint64_t row, Tick now) {
#if MEMSCHED_VERIF_ENABLED
    if (observer_ != nullptr)
      observer_->on_command(CommandRecord{type, channel_id_, bank, row, now});
#else
    (void)type; (void)bank; (void)row; (void)now;
#endif
  }

  const Timing* timing_;
  std::vector<Bank> banks_;

  bool cmd_issued_ = false;
  Tick last_cmd_tick_ = 0;

  Tick data_busy_until_ = 0;   ///< first free data-bus tick
  Tick read_data_end_ = 0;     ///< end of the most recent read burst
  Tick write_data_end_ = 0;    ///< end of the most recent write burst
  Tick last_cas_tick_ = 0;     ///< for tCCD
  bool any_cas_ = false;
  std::uint32_t banks_per_rank_ = 0;
  std::uint32_t last_cas_rank_ = 0;

  Tick last_act_tick_ = 0;     ///< for tRRD
  bool any_act_ = false;
  std::array<Tick, 4> act_window_{};  ///< ring of last four ACTs, for tFAW
  std::uint32_t act_window_pos_ = 0;
  std::uint32_t act_window_fill_ = 0;

  std::uint64_t commands_ = 0;
  std::uint64_t data_busy_cycles_ = 0;
  std::uint64_t bursts_ = 0;

  CommandObserver* observer_ = nullptr;
  std::uint32_t channel_id_ = 0;
};

}  // namespace memsched::dram
