#include "dram/address_map.hpp"

#include "util/assert.hpp"
#include "util/bitops.hpp"

namespace memsched::dram {

using util::bits;
using util::deposit;
using util::ilog2;

AddressMap::AddressMap(const Organization& org, Interleave scheme, bool bank_xor)
    : org_(org), scheme_(scheme), bank_xor_(bank_xor) {
  MEMSCHED_ASSERT(org.validate().empty(), "invalid DRAM organization");
  channel_bits_ = ilog2(org.channels);
  bank_bits_ = ilog2(org.banks_per_channel());
  col_bits_ = ilog2(org.lines_per_row());
  row_bits_ = ilog2(org.rows_per_bank());
}

DramAddress AddressMap::decode(Addr addr) const {
  const std::uint64_t line = addr >> kLineShift;
  DramAddress da;
  unsigned pos = 0;
  switch (scheme_) {
    case Interleave::kLineInterleave:
      // LSB -> MSB: channel | bank | column | row. Consecutive lines rotate
      // channels then banks; lines 1*(channels*banks) apart share a row.
      da.channel = static_cast<std::uint32_t>(bits(line, pos, channel_bits_));
      pos += channel_bits_;
      da.bank = static_cast<std::uint32_t>(bits(line, pos, bank_bits_));
      pos += bank_bits_;
      da.col_line = bits(line, pos, col_bits_);
      pos += col_bits_;
      da.row = bits(line, pos, row_bits_);
      break;
    case Interleave::kPageInterleave:
      // LSB -> MSB: column | channel | bank | row. Consecutive lines fill a
      // whole row before moving to the next channel/bank.
      da.col_line = bits(line, pos, col_bits_);
      pos += col_bits_;
      da.channel = static_cast<std::uint32_t>(bits(line, pos, channel_bits_));
      pos += channel_bits_;
      da.bank = static_cast<std::uint32_t>(bits(line, pos, bank_bits_));
      pos += bank_bits_;
      da.row = bits(line, pos, row_bits_);
      break;
    case Interleave::kHybrid:
      // LSB -> MSB: channel | column | bank | row. Lines alternate channels;
      // within a channel, a sequential run stays in one bank's row.
      da.channel = static_cast<std::uint32_t>(bits(line, pos, channel_bits_));
      pos += channel_bits_;
      da.col_line = bits(line, pos, col_bits_);
      pos += col_bits_;
      da.bank = static_cast<std::uint32_t>(bits(line, pos, bank_bits_));
      pos += bank_bits_;
      da.row = bits(line, pos, row_bits_);
      break;
  }
  if (bank_xor_ && bank_bits_ > 0) {
    // Permutation-based interleaving: XOR with the low row bits is an
    // involution, so encode() simply applies the same transform.
    da.bank ^= static_cast<std::uint32_t>(da.row & ((1u << bank_bits_) - 1));
  }
  return da;
}

Addr AddressMap::encode(const DramAddress& da_in) const {
  DramAddress da = da_in;
  if (bank_xor_ && bank_bits_ > 0) {
    da.bank ^= static_cast<std::uint32_t>(da.row & ((1u << bank_bits_) - 1));
  }
  std::uint64_t line = 0;
  unsigned pos = 0;
  switch (scheme_) {
    case Interleave::kLineInterleave:
      line |= deposit(da.channel, pos, channel_bits_);
      pos += channel_bits_;
      line |= deposit(da.bank, pos, bank_bits_);
      pos += bank_bits_;
      line |= deposit(da.col_line, pos, col_bits_);
      pos += col_bits_;
      line |= deposit(da.row, pos, row_bits_);
      break;
    case Interleave::kPageInterleave:
      line |= deposit(da.col_line, pos, col_bits_);
      pos += col_bits_;
      line |= deposit(da.channel, pos, channel_bits_);
      pos += channel_bits_;
      line |= deposit(da.bank, pos, bank_bits_);
      pos += bank_bits_;
      line |= deposit(da.row, pos, row_bits_);
      break;
    case Interleave::kHybrid:
      line |= deposit(da.channel, pos, channel_bits_);
      pos += channel_bits_;
      line |= deposit(da.col_line, pos, col_bits_);
      pos += col_bits_;
      line |= deposit(da.bank, pos, bank_bits_);
      pos += bank_bits_;
      line |= deposit(da.row, pos, row_bits_);
      break;
  }
  return line << kLineShift;
}

std::string AddressMap::scheme_name(Interleave scheme) {
  switch (scheme) {
    case Interleave::kLineInterleave: return "line-interleave";
    case Interleave::kPageInterleave: return "page-interleave";
    case Interleave::kHybrid: return "hybrid-interleave";
  }
  return "?";
}

}  // namespace memsched::dram
