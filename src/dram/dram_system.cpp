#include "dram/dram_system.hpp"

#include "ckpt/snapshot.hpp"
#include "util/assert.hpp"

namespace memsched::dram {

DramSystem::DramSystem(const Timing& timing, const Organization& org, Interleave scheme,
                       bool bank_xor)
    : timing_(timing), org_(org), map_(org, scheme, bank_xor) {
  MEMSCHED_ASSERT(timing.validate().empty(), "invalid DRAM timing");
  channels_.reserve(org.channels);
  for (std::uint32_t c = 0; c < org.channels; ++c) {
    // Each DIMM is one rank on the shared data bus (Table 1: 2 DIMMs per
    // physical channel): crossing DIMMs between bursts pays tRTRS.
    channels_.emplace_back(timing_, org.banks_per_channel(), org.banks_per_dimm);
  }
}

double DramSystem::data_bus_utilization(Tick elapsed) const {
  if (elapsed == 0) return 0.0;
  std::uint64_t busy = 0;
  for (const Channel& c : channels_) busy += c.data_busy_cycles();
  return static_cast<double>(busy) /
         (static_cast<double>(elapsed) * static_cast<double>(channels_.size()));
}

std::uint64_t DramSystem::total_bursts() const {
  std::uint64_t n = 0;
  for (const Channel& c : channels_) n += c.bursts();
  return n;
}

void DramSystem::save_state(ckpt::Writer& w) const {
  for (const Channel& c : channels_) c.save_state(w);
}

void DramSystem::load_state(ckpt::Reader& r) {
  for (Channel& c : channels_) c.load_state(r);
}

void DramSystem::set_command_observer(CommandObserver* observer) {
  for (std::uint32_t c = 0; c < channels_.size(); ++c) {
    channels_[c].set_observer(observer, c);
  }
}

}  // namespace memsched::dram
