// Per-bank DRAM state machine.
//
// A bank tracks its open row plus a set of "earliest legal tick" registers
// that encode the inter-command timing constraints (tRCD, tRAS, tRP, tRC,
// tWR, tRTP). Bus-level constraints (command bus, data bus, tRRD, tFAW,
// tCCD, turnaround) live in Channel, which owns the banks.
#pragma once

#include <algorithm>
#include <cstdint>

#include "dram/timing.hpp"
#include "util/types.hpp"

namespace memsched::ckpt {
class Writer;
class Reader;
}  // namespace memsched::ckpt

namespace memsched::dram {

class Bank {
 public:
  explicit Bank(const Timing& t) : timing_(&t) {}

  [[nodiscard]] bool row_open() const { return row_open_; }
  [[nodiscard]] std::uint64_t open_row() const { return open_row_; }

  // --- legality checks (bank-local constraints only) ---
  [[nodiscard]] bool can_activate(Tick now) const {
    return !row_open_ && now >= earliest_act_;
  }
  [[nodiscard]] bool can_cas(Tick now) const {  // read or write column access
    return row_open_ && now >= earliest_cas_;
  }
  [[nodiscard]] bool can_precharge(Tick now) const {
    return row_open_ && now >= earliest_pre_;
  }

  /// First tick at which an ACT could legally issue (bank-local view).
  [[nodiscard]] Tick earliest_activate() const { return earliest_act_; }
  [[nodiscard]] Tick earliest_cas() const { return earliest_cas_; }
  [[nodiscard]] Tick earliest_precharge() const { return earliest_pre_; }

  // --- next-event queries (fast-forward engine) ---
  // Earliest tick >= now at which the command becomes legal under the
  // bank-local constraints, assuming no intervening command, or kNeverTick
  // when the row state forbids it outright (an ACT needs the row closed, a
  // CAS/PRE needs it open — only another command can change that).
  [[nodiscard]] Tick next_activate_tick(Tick now) const {
    return row_open_ ? kNeverTick : std::max(now, earliest_act_);
  }
  [[nodiscard]] Tick next_cas_tick(Tick now) const {
    return row_open_ ? std::max(now, earliest_cas_) : kNeverTick;
  }
  [[nodiscard]] Tick next_precharge_tick(Tick now) const {
    return row_open_ ? std::max(now, earliest_pre_) : kNeverTick;
  }

  // --- command issue (callers must have checked legality) ---
  void issue_activate(Tick now, std::uint64_t row);
  void issue_precharge(Tick now);

  /// Column read at `now`; if `auto_precharge`, the row closes once tRTP and
  /// tRAS allow and the bank becomes activatable after tRP.
  void issue_read(Tick now, bool auto_precharge);

  /// Column write at `now`; analogous, with tWR write recovery.
  void issue_write(Tick now, bool auto_precharge);

  /// Refresh occupies the bank until now + tRFC (row must be closed).
  void issue_refresh(Tick now);

  // --- statistics ---
  [[nodiscard]] std::uint64_t activate_count() const { return activates_; }
  [[nodiscard]] std::uint64_t precharge_count() const { return precharges_; }

  /// Ticks this bank has spent with a row open (completed ACT->PRE
  /// intervals only; pass `now` to include the current open interval).
  [[nodiscard]] Tick active_ticks(Tick now) const {
    return active_ticks_ + (row_open_ ? now - act_tick_ : 0);
  }

  // --- checkpoint/restore ---
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  const Timing* timing_;
  bool row_open_ = false;
  std::uint64_t open_row_ = 0;
  Tick act_tick_ = 0;        ///< when the current row was activated
  Tick earliest_act_ = 0;
  Tick earliest_cas_ = 0;
  Tick earliest_pre_ = 0;
  std::uint64_t activates_ = 0;
  std::uint64_t precharges_ = 0;
  Tick active_ticks_ = 0;
};

}  // namespace memsched::dram
