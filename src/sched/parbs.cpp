#include "sched/parbs.hpp"

#include <algorithm>

#include "ckpt/snapshot.hpp"
#include "util/assert.hpp"

namespace memsched::sched {

ParbsScheduler::ParbsScheduler(std::uint32_t core_count, std::uint32_t batch_cap)
    : batch_cap_(batch_cap), quota_(core_count, 0), batch_size_(core_count, 0) {
  MEMSCHED_ASSERT(core_count > 0, "PAR-BS needs at least one core");
  MEMSCHED_ASSERT(batch_cap > 0, "batch cap must be positive");
}

void ParbsScheduler::prepare(const QueueSnapshot& snap) {
  // Form a new batch once the current one has drained and work is waiting.
  bool drained = true;
  for (const std::uint32_t q : quota_) drained &= (q == 0);
  if (!drained) return;
  bool any = false;
  for (CoreId c = 0; c < snap.core_count; ++c) any |= snap.pending_reads[c] > 0;
  if (!any) return;
  for (CoreId c = 0; c < snap.core_count; ++c) {
    quota_[c] = std::min(batch_cap_, snap.pending_reads[c]);
    batch_size_[c] = quota_[c];
  }
  ++batches_;
}

double ParbsScheduler::core_priority(CoreId core) const {
  // Batched requests strictly above unbatched; within the batch,
  // shortest-job-first by the core's batch size.
  if (quota_[core] > 0) {
    return 1000.0 - static_cast<double>(batch_size_[core]);
  }
  return -static_cast<double>(batch_cap_);  // unbatched: uniform low rank
}

void ParbsScheduler::on_served(const mc::Request& req) {
  if (!req.is_write && quota_[req.core] > 0) --quota_[req.core];
}

void ParbsScheduler::reset() {
  std::fill(quota_.begin(), quota_.end(), 0);
  std::fill(batch_size_.begin(), batch_size_.end(), 0);
  batches_ = 0;
}

void ParbsScheduler::save_state(ckpt::Writer& w) const {
  w.put_u64(quota_.size());
  for (std::size_t i = 0; i < quota_.size(); ++i) {
    w.put_u32(quota_[i]);
    w.put_u32(batch_size_[i]);
  }
  w.put_u64(batches_);
}

void ParbsScheduler::load_state(ckpt::Reader& r) {
  const std::uint64_t n = r.get_u64();
  if (n != quota_.size()) {
    throw ckpt::SnapshotError("snapshot: PAR-BS core count mismatch");
  }
  for (std::size_t i = 0; i < quota_.size(); ++i) {
    quota_[i] = r.get_u32();
    batch_size_[i] = r.get_u32();
  }
  batches_ = r.get_u64();
}

}  // namespace memsched::sched
