// Scheduler policy interface.
//
// The memory controller (mc::MemoryController) owns the machinery — queues,
// per-core counters, write-drain hysteresis, eligibility (is the target bank
// free? has the controller-overhead pipeline delay elapsed?) and the DRAM
// command engine. A Scheduler only *ranks*: given the per-core queue
// snapshot it assigns each core a priority, and the controller serves, among
// eligible requests, the one that wins the lexicographic key
//
//     ( read-vs-write per drain mode          — controller, §4.1
//     , [row hit                               — iff hit_first_above_core()]
//     , core priority                          — this interface
//     , row hit                                — iff !hit_first_above_core()
//     , arrival order                          — oldest first
//     , random tie-break                       — §3.2 "a tie ... broken by a
//                                                random selection" )
//
// Every scheme in the paper is one small subclass; see src/sched/policies.hpp
// (baselines) and src/core (the paper's contribution).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mc/request.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace memsched::ckpt {
class Writer;
class Reader;
}  // namespace memsched::ckpt

namespace memsched::sched {

/// Controller state a policy may consult when ranking cores. Counts cover
/// *queued* requests only (in-flight transactions have left the queues,
/// matching the paper's "pending request" counters in Figure 1).
///
/// The interval fields below are live only for epoch-aware schemes (those
/// returning epoch_ticks() != 0): the controller then maintains per-core
/// statistics over the current interval and resets them at every epoch
/// boundary, right after the on_epoch(Tick, QueueSnapshot) callback. For
/// epoch-less schemes interval_served/interval_arrivals point at all-zero
/// arrays and the streak fields stay at their defaults — the bookkeeping is
/// switched off so the paper schemes pay nothing for it.
struct QueueSnapshot {
  Tick now = 0;
  std::uint32_t core_count = 0;
  const std::uint32_t* pending_reads = nullptr;   ///< per core, size core_count
  const std::uint32_t* pending_writes = nullptr;  ///< per core, size core_count
  bool drain_mode = false;

  // --- epoch/interval machinery (epoch-aware schemes only) ---
  Tick epoch_len = 0;          ///< scheduler's epoch_ticks(); 0 = disabled
  Tick epoch_start = 0;        ///< first tick of the current interval
  std::uint64_t epoch_index = 0;  ///< intervals completed before this one
  /// Transactions started per core since the interval began (bandwidth
  /// pressure; TCM's cluster partition input).
  const std::uint32_t* interval_served = nullptr;
  /// Requests accepted into the queues per core since the interval began
  /// (memory intensity / latency-sensitivity proxy).
  const std::uint32_t* interval_arrivals = nullptr;
  /// Longest *current* run of consecutive serves: streak_core has been
  /// served streak_len times in a row (BLISS's blacklisting trigger).
  /// kInvalidCore / 0 until the first serve of an interval.
  CoreId streak_core = kInvalidCore;
  std::uint32_t streak_len = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Stable identifier used in reports (e.g. "ME-LREQ").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once per scheduling round before core_priority() queries.
  virtual void prepare(const QueueSnapshot& snap) { (void)snap; }

  /// Rank of `core`'s requests this round; higher wins. Must be a pure
  /// function of prepare()'s snapshot (the controller may call it multiple
  /// times per round).
  [[nodiscard]] virtual double core_priority(CoreId core) const = 0;

  /// If true (default), a row-buffer hit beats core priority — the §4.1
  /// command-engine behaviour shared by every scheme ("memory commands are
  /// issued according to the hit-first policy"), which preserves the row
  /// locality that close-page systems depend on; thread priority then
  /// differentiates among the expensive row misses. If false, core priority
  /// dominates outright (the literal Figure-1 reading: pick the thread,
  /// then its first request) — selectable for the ablation study.
  [[nodiscard]] virtual bool hit_first_above_core() const { return true; }

  /// Disable the row-hit key entirely (naive FCFS).
  [[nodiscard]] virtual bool use_hit_first() const { return true; }

  /// If false the controller mixes reads and writes in one arrival order
  /// instead of read-bypass-write (naive FCFS; everything else keeps §4.1
  /// read-first behaviour).
  [[nodiscard]] virtual bool use_read_first() const { return true; }

  /// Scheduling-window depth for row misses: the scheme may only choose
  /// among the `window` oldest visible requests of a channel (row hits are
  /// always fair game — the engine's hit-first rule). 0 means unbounded.
  ///
  /// This models how far a conventional arrival-ordered scheduler looks
  /// past a blocked head-of-queue request. The paper's naive FCFS (§2,
  /// "serves memory requests according to their arriving order") is
  /// window = 1 (full head-of-line blocking); its HF-RF baseline uses a
  /// small window; the thread-aware schemes are unbounded by construction —
  /// the Figure-1 hardware indexes requests *per thread*, so a blocked
  /// thread never hides another thread's ready request. The gap between
  /// windowed and unbounded scheduling is precisely the bank-level
  /// parallelism the paper's schemes recover (cf. Rixner et al. [14]).
  [[nodiscard]] virtual std::uint32_t sched_window() const { return 0; }

  /// How equal core priorities are resolved. Thread-aware schemes follow
  /// §3.2 ("a tie of equal priority may be broken by a random selection");
  /// pure request-order schemes (FCFS, HF-RF) fall through to arrival age.
  [[nodiscard]] virtual bool random_core_tie_break() const { return false; }

  /// Notification that `req` was chosen (round-robin advances its token).
  virtual void on_served(const mc::Request& req) { (void)req; }

  /// Periodic runtime-profiling feed from the simulation kernel: committed
  /// instructions and DRAM bytes transferred by `core` since the previous
  /// epoch. Ignored by all paper schemes (they use off-line profiles); the
  /// online-ME extension (paper §7 future work) estimates ME from it.
  virtual void on_epoch(CoreId core, double committed_insts, double dram_bytes) {
    (void)core;
    (void)committed_insts;
    (void)dram_bytes;
  }

  /// Interval length in bus ticks for the controller-driven quantum callback
  /// below. 0 (default) disables the controller's interval bookkeeping
  /// entirely — the scheme never sees on_epoch(Tick, ...) and the snapshot's
  /// interval fields stay inert.
  [[nodiscard]] virtual Tick epoch_ticks() const { return 0; }

  /// Quantum callback: the controller invokes this exactly once per elapsed
  /// epoch_ticks() interval, in order, with `boundary` = the interval's end
  /// tick (a multiple of epoch_ticks()). `snap` carries the per-core
  /// interval statistics of the interval that just ended; the controller
  /// clears them immediately after this returns. Boundaries are processed
  /// lazily — the callback runs at the first controller activity at or after
  /// the boundary — so implementations must derive state from `boundary` and
  /// `snap` only, never from wall-progress outside them; that is what keeps
  /// the cycle and skip engines byte-identical.
  virtual void on_epoch(Tick boundary, const QueueSnapshot& snap) {
    (void)boundary;
    (void)snap;
  }

  /// Reset any internal state between runs.
  virtual void reset() {}

  /// Checkpoint/restore of policy-internal state. Defaults are no-ops —
  /// correct for the stateless schemes (FCFS family, LREQ, ME variants read
  /// the live queue snapshot each round); stateful schemes (round-robin
  /// token, virtual finish times, STFM/PAR-BS/online-ME accumulators)
  /// override both.
  virtual void save_state(ckpt::Writer& w) const { (void)w; }
  virtual void load_state(ckpt::Reader& r) { (void)r; }
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

}  // namespace memsched::sched
