#include "sched/cads.hpp"

#include <algorithm>

#include "ckpt/snapshot.hpp"
#include "util/assert.hpp"

namespace memsched::sched {

CadsScheduler::CadsScheduler(std::uint32_t core_count, Tick interval_ticks,
                             double alpha)
    : interval_(interval_ticks), alpha_(alpha), score_(core_count, 0.0) {
  MEMSCHED_ASSERT(core_count > 0, "CADS needs at least one core");
  MEMSCHED_ASSERT(interval_ticks > 0, "CADS interval must be positive");
  MEMSCHED_ASSERT(alpha > 0.0 && alpha <= 1.0, "CADS alpha must be in (0, 1]");
}

void CadsScheduler::on_epoch(Tick boundary, const QueueSnapshot& snap) {
  (void)boundary;
  for (CoreId c = 0; c < snap.core_count; ++c) {
    score_[c] = (1.0 - alpha_) * score_[c] +
                alpha_ * static_cast<double>(snap.interval_served[c]);
  }
}

void CadsScheduler::reset() { std::fill(score_.begin(), score_.end(), 0.0); }

void CadsScheduler::save_state(ckpt::Writer& w) const {
  w.put_u64(score_.size());
  for (const double s : score_) w.put_f64(s);
}

void CadsScheduler::load_state(ckpt::Reader& r) {
  const std::uint64_t n = r.get_u64();
  if (n != score_.size()) {
    throw ckpt::SnapshotError("snapshot: CADS core count mismatch");
  }
  for (double& s : score_) s = r.get_f64();
}

}  // namespace memsched::sched
