// CADS — core-aware dynamic scheduling (after the core-aware dynamic
// scheduler of PAPERS.md; also in the spirit of ATLAS's long-term attained
// service ranking). Where BLISS reacts to streaks and TCM re-partitions per
// quantum, CADS keeps a smooth per-core *pressure score* — an exponentially
// weighted moving average of each core's served transactions per interval —
// and ranks cores inversely to it: the less service a core has attained
// recently, the higher it ranks. A bandwidth hog's score grows every
// interval it keeps hogging, so its priority decays monotonically (the
// property tests pin this), while a latency-sensitive core that issues a
// burst after idling is served first.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/scheduler.hpp"

namespace memsched::sched {

class CadsScheduler final : public Scheduler {
 public:
  /// Defaults: 2000-bus-tick adaptation interval, EWMA weight 0.25 for the
  /// newest interval — a ~4-interval memory, long enough to ride out bursts
  /// and short enough to track phase changes within a measurement slice.
  static constexpr Tick kDefaultIntervalTicks = 2000;

  explicit CadsScheduler(std::uint32_t core_count,
                         Tick interval_ticks = kDefaultIntervalTicks,
                         double alpha = 0.25);

  [[nodiscard]] std::string name() const override { return "CADS"; }

  [[nodiscard]] double core_priority(CoreId core) const override {
    // Inverse attained service: higher recent bandwidth -> lower rank.
    return -score_[core];
  }
  [[nodiscard]] bool random_core_tie_break() const override { return true; }
  [[nodiscard]] Tick epoch_ticks() const override { return interval_; }
  void on_epoch(Tick boundary, const QueueSnapshot& snap) override;
  void reset() override;

  /// EWMA attained-service score of `core` (tests/diagnostics).
  [[nodiscard]] double score(CoreId core) const { return score_[core]; }

  void save_state(ckpt::Writer& w) const override;
  void load_state(ckpt::Reader& r) override;

 private:
  Tick interval_;
  double alpha_;
  std::vector<double> score_;  ///< per core EWMA of interval_served
};

}  // namespace memsched::sched
