// TCM — Thread Cluster Memory scheduling (Kim, Papamichael, Mutlu &
// Harchol-Balter, MICRO 2010; see SNIPPETS.md Snippet 1's `tcm_*`
// machinery). Threads are partitioned every quantum into a
// *latency-sensitive* cluster (light memory users, prioritised outright —
// they barely cost bandwidth but stall hard) and a *bandwidth-sensitive*
// cluster (heavy users, fair-shared among themselves).
//
// Reproduced mechanism, per quantum (epoch_ticks()):
//   * sort cores by interval bandwidth use (QueueSnapshot::interval_served,
//     lightest first; core id breaks ties for determinism);
//   * greedily place cores into the latency cluster while their cumulative
//     served share stays <= ClusterThresh (paper default 2/10) of the total;
//   * latency cluster: ranked by interval_arrivals ascending — the fewer
//     requests a core injects the higher it ranks (MPKI proxy; TCM ranks by
//     MPKI, which this model does not measure per-core at the controller);
//   * bandwidth cluster: rank order *rotates* once per quantum ("insertion
//     shuffle" stand-in). TCM's periodic shuffling randomises ranks to
//     spread interference; a deterministic rotation keeps the
//     fairness-spreading effect while preserving the repo's run-to-run
//     determinism and engine-equivalence contracts (documented deviation).
//
// Every core is always in exactly one cluster — the partition is a disjoint
// cover, which the property tests assert.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/scheduler.hpp"

namespace memsched::sched {

class TcmScheduler final : public Scheduler {
 public:
  /// Defaults: 2500-bus-tick quantum (TCM re-clusters every 1M CPU cycles;
  /// scaled down to this model's sub-ms runs while keeping many serves per
  /// quantum) and ClusterThresh = 0.2 (paper default 2/10).
  static constexpr Tick kDefaultQuantumTicks = 2500;

  explicit TcmScheduler(std::uint32_t core_count,
                        Tick quantum_ticks = kDefaultQuantumTicks,
                        double cluster_thresh = 0.2);

  [[nodiscard]] std::string name() const override { return "TCM"; }

  [[nodiscard]] double core_priority(CoreId core) const override {
    return priority_[core];
  }
  [[nodiscard]] bool random_core_tie_break() const override { return true; }
  [[nodiscard]] Tick epoch_ticks() const override { return quantum_; }
  void on_epoch(Tick boundary, const QueueSnapshot& snap) override;
  void reset() override;

  /// Cluster membership after the last on_epoch (tests/diagnostics). Before
  /// the first quantum both clusters are empty and all priorities are equal.
  [[nodiscard]] const std::vector<CoreId>& latency_cluster() const {
    return latency_cluster_;
  }
  [[nodiscard]] const std::vector<CoreId>& bandwidth_cluster() const {
    return bandwidth_cluster_;
  }
  [[nodiscard]] std::uint64_t quanta() const { return quanta_; }

  void save_state(ckpt::Writer& w) const override;
  void load_state(ckpt::Reader& r) override;

 private:
  std::uint32_t core_count_;
  Tick quantum_;
  double cluster_thresh_;
  std::vector<double> priority_;          ///< per core; rebuilt each quantum
  std::vector<CoreId> latency_cluster_;   ///< lightest cores, highest ranks
  std::vector<CoreId> bandwidth_cluster_; ///< heavy cores, rotated ranks
  std::uint64_t quanta_ = 0;              ///< completed quanta (shuffle phase)
};

}  // namespace memsched::sched
