#include "sched/tcm.hpp"

#include <algorithm>
#include <numeric>

#include "ckpt/snapshot.hpp"
#include "util/assert.hpp"

namespace memsched::sched {

TcmScheduler::TcmScheduler(std::uint32_t core_count, Tick quantum_ticks,
                           double cluster_thresh)
    : core_count_(core_count),
      quantum_(quantum_ticks),
      cluster_thresh_(cluster_thresh),
      priority_(core_count, 0.0) {
  MEMSCHED_ASSERT(core_count > 0, "TCM needs at least one core");
  MEMSCHED_ASSERT(quantum_ticks > 0, "TCM quantum must be positive");
  MEMSCHED_ASSERT(cluster_thresh > 0.0 && cluster_thresh < 1.0,
                  "TCM cluster threshold must be in (0, 1)");
  latency_cluster_.reserve(core_count);
  bandwidth_cluster_.reserve(core_count);
}

void TcmScheduler::on_epoch(Tick boundary, const QueueSnapshot& snap) {
  (void)boundary;
  // Lightest-first order by interval bandwidth use; core id breaks ties so
  // the partition is a pure function of the interval statistics.
  std::vector<CoreId> order(core_count_);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](CoreId a, CoreId b) {
    if (snap.interval_served[a] != snap.interval_served[b]) {
      return snap.interval_served[a] < snap.interval_served[b];
    }
    return a < b;
  });
  std::uint64_t total = 0;
  for (CoreId c = 0; c < core_count_; ++c) total += snap.interval_served[c];

  // Greedy latency cluster: lightest cores while the cumulative share stays
  // within ClusterThresh of the total. An idle quantum (total == 0) puts
  // every core into the latency cluster — all shares are vacuously within
  // the cap — which is harmless: no requests means no ranking decisions.
  latency_cluster_.clear();
  bandwidth_cluster_.clear();
  const double cap = cluster_thresh_ * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (const CoreId c : order) {
    cum += snap.interval_served[c];
    if (static_cast<double>(cum) <= cap || total == 0) {
      latency_cluster_.push_back(c);
    } else {
      bandwidth_cluster_.push_back(c);
    }
  }

  // Latency cluster outranks the bandwidth cluster outright; within it, the
  // fewest interval arrivals win (memory-intensity proxy for TCM's MPKI
  // rank). Band gap of 1000 keeps the clusters strictly ordered.
  std::sort(latency_cluster_.begin(), latency_cluster_.end(),
            [&](CoreId a, CoreId b) {
              if (snap.interval_arrivals[a] != snap.interval_arrivals[b]) {
                return snap.interval_arrivals[a] < snap.interval_arrivals[b];
              }
              return a < b;
            });
  std::fill(priority_.begin(), priority_.end(), 0.0);
  for (std::size_t i = 0; i < latency_cluster_.size(); ++i) {
    priority_[latency_cluster_[i]] = 2000.0 - static_cast<double>(i);
  }
  // Bandwidth cluster: deterministic rotation of the rank order, one step
  // per quantum — the determinism-preserving stand-in for TCM's random
  // insertion shuffle (see header).
  const std::size_t n = bandwidth_cluster_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t rank = (i + static_cast<std::size_t>(quanta_ % n)) % n;
    priority_[bandwidth_cluster_[i]] = 1000.0 - static_cast<double>(rank);
  }
  ++quanta_;
}

void TcmScheduler::reset() {
  std::fill(priority_.begin(), priority_.end(), 0.0);
  latency_cluster_.clear();
  bandwidth_cluster_.clear();
  quanta_ = 0;
}

void TcmScheduler::save_state(ckpt::Writer& w) const {
  w.put_u64(priority_.size());
  for (const double p : priority_) w.put_f64(p);
  w.put_u64(latency_cluster_.size());
  for (const CoreId c : latency_cluster_) w.put_u32(c);
  w.put_u64(bandwidth_cluster_.size());
  for (const CoreId c : bandwidth_cluster_) w.put_u32(c);
  w.put_u64(quanta_);
}

void TcmScheduler::load_state(ckpt::Reader& r) {
  const std::uint64_t n = r.get_u64();
  if (n != priority_.size()) {
    throw ckpt::SnapshotError("snapshot: TCM core count mismatch");
  }
  for (double& p : priority_) p = r.get_f64();
  const std::uint64_t nlat = r.get_u64();
  if (nlat > core_count_) {
    throw ckpt::SnapshotError("snapshot: TCM latency cluster oversized");
  }
  latency_cluster_.resize(nlat);
  for (CoreId& c : latency_cluster_) c = r.get_u32();
  const std::uint64_t nbw = r.get_u64();
  if (nbw > core_count_) {
    throw ckpt::SnapshotError("snapshot: TCM bandwidth cluster oversized");
  }
  bandwidth_cluster_.resize(nbw);
  for (CoreId& c : bandwidth_cluster_) c = r.get_u32();
  quanta_ = r.get_u64();
}

}  // namespace memsched::sched
