#include "sched/bliss.hpp"

#include <algorithm>

#include "ckpt/snapshot.hpp"
#include "util/assert.hpp"

namespace memsched::sched {

BlissScheduler::BlissScheduler(std::uint32_t core_count, std::uint32_t streak_threshold,
                               Tick clearing_interval)
    : streak_threshold_(streak_threshold),
      clearing_interval_(clearing_interval),
      blacklist_(core_count, 0) {
  MEMSCHED_ASSERT(core_count > 0, "BLISS needs at least one core");
  MEMSCHED_ASSERT(streak_threshold > 0, "BLISS streak threshold must be positive");
  MEMSCHED_ASSERT(clearing_interval > 0, "BLISS clearing interval must be positive");
}

void BlissScheduler::prepare(const QueueSnapshot& snap) {
  // The controller's interval machinery tracks the live consecutive-serve
  // streak; crossing the threshold blacklists the streaking core until the
  // next clearing interval. Idempotent, so the extra prepare() calls of the
  // per-tick (cycle) engine change nothing vs the skip engine.
  if (snap.streak_core != kInvalidCore && snap.streak_len >= streak_threshold_ &&
      blacklist_[snap.streak_core] == 0) {
    blacklist_[snap.streak_core] = 1;
    ++blacklist_events_;
  }
}

double BlissScheduler::core_priority(CoreId core) const {
  return blacklist_[core] != 0 ? 0.0 : 1.0;
}

void BlissScheduler::on_epoch(Tick boundary, const QueueSnapshot& snap) {
  (void)boundary;
  (void)snap;
  std::fill(blacklist_.begin(), blacklist_.end(), 0);
}

void BlissScheduler::reset() {
  std::fill(blacklist_.begin(), blacklist_.end(), 0);
  blacklist_events_ = 0;
}

void BlissScheduler::save_state(ckpt::Writer& w) const {
  w.put_u64(blacklist_.size());
  for (const std::uint8_t b : blacklist_) w.put_u8(b);
  w.put_u64(blacklist_events_);
}

void BlissScheduler::load_state(ckpt::Reader& r) {
  const std::uint64_t n = r.get_u64();
  if (n != blacklist_.size()) {
    throw ckpt::SnapshotError("snapshot: BLISS core count mismatch");
  }
  for (std::uint8_t& b : blacklist_) b = r.get_u8();
  blacklist_events_ = r.get_u64();
}

}  // namespace memsched::sched
