#include "sched/stfm.hpp"

#include <algorithm>

#include "ckpt/snapshot.hpp"
#include "util/assert.hpp"

namespace memsched::sched {

StfmScheduler::StfmScheduler(std::vector<double> ipc_single, double epoch_cpu_cycles,
                             double alpha, double ewma_alpha)
    : ipc_single_(std::move(ipc_single)),
      epoch_cpu_cycles_(epoch_cpu_cycles),
      alpha_(alpha),
      ewma_alpha_(ewma_alpha),
      ipc_est_(ipc_single_.size(), 0.0),
      seeded_(ipc_single_.size(), false),
      slowdown_(ipc_single_.size(), 1.0) {
  MEMSCHED_ASSERT(!ipc_single_.empty(), "STFM needs per-core alone-IPC values");
  MEMSCHED_ASSERT(epoch_cpu_cycles > 0.0, "epoch length must be positive");
  MEMSCHED_ASSERT(alpha >= 1.0, "unfairness threshold below 1 is meaningless");
  for (const double v : ipc_single_) {
    MEMSCHED_ASSERT(v > 0.0, "alone-IPC must be positive");
  }
}

void StfmScheduler::on_epoch(CoreId core, double committed_insts, double /*bytes*/) {
  MEMSCHED_ASSERT(core < ipc_est_.size(), "epoch sample for unknown core");
  const double ipc = committed_insts / epoch_cpu_cycles_;
  if (!seeded_[core]) {
    ipc_est_[core] = ipc;
    seeded_[core] = true;
  } else {
    ipc_est_[core] = ewma_alpha_ * ipc + (1.0 - ewma_alpha_) * ipc_est_[core];
  }
  slowdown_[core] = ipc_single_[core] / std::max(ipc_est_[core], 1e-6);
  // A thread can appear "sped up" (slowdown < 1) through slice noise; clamp
  // so the fairness ratio below stays meaningful.
  slowdown_[core] = std::max(slowdown_[core], 1.0);
}

void StfmScheduler::prepare(const QueueSnapshot& /*snap*/) {
  double mx = 0.0, mn = 1e300;
  for (std::size_t i = 0; i < slowdown_.size(); ++i) {
    if (!seeded_[i]) continue;
    mx = std::max(mx, slowdown_[i]);
    mn = std::min(mn, slowdown_[i]);
  }
  intervening_ = mx > 0.0 && mn < 1e300 && (mx / mn) > alpha_;
}

double StfmScheduler::core_priority(CoreId core) const {
  // Balanced system: stay out of the way (everything ties; the engine's
  // hit-first + arrival order decides). Unbalanced: most-slowed first.
  if (!intervening_) return 0.0;
  return slowdown_[core];
}

void StfmScheduler::reset() {
  std::fill(ipc_est_.begin(), ipc_est_.end(), 0.0);
  std::fill(seeded_.begin(), seeded_.end(), false);
  std::fill(slowdown_.begin(), slowdown_.end(), 1.0);
  intervening_ = false;
}

void StfmScheduler::save_state(ckpt::Writer& w) const {
  w.put_u64(ipc_est_.size());
  for (std::size_t i = 0; i < ipc_est_.size(); ++i) {
    w.put_f64(ipc_est_[i]);
    w.put_bool(seeded_[i]);
    w.put_f64(slowdown_[i]);
  }
  w.put_bool(intervening_);
}

void StfmScheduler::load_state(ckpt::Reader& r) {
  const std::uint64_t n = r.get_u64();
  if (n != ipc_est_.size()) {
    throw ckpt::SnapshotError("snapshot: STFM core count mismatch");
  }
  for (std::size_t i = 0; i < ipc_est_.size(); ++i) {
    ipc_est_[i] = r.get_f64();
    seeded_[i] = r.get_bool();
    slowdown_[i] = r.get_f64();
  }
  intervening_ = r.get_bool();
}

}  // namespace memsched::sched
