// Parallelism-Aware Batch Scheduling, simplified (Mutlu & Moscibroda,
// ISCA 2008 — published the same year as the paper; included as a
// contemporaneous related-work baseline).
//
// PAR-BS groups outstanding requests into *batches*: when the current batch
// drains, up to `batch_cap` oldest requests of every core are marked as the
// new batch. Batched requests strictly outrank unbatched ones (this bounds
// any request's wait — strong starvation freedom), and within a batch cores
// are ranked shortest-job-first (fewest marked requests first) so light
// cores slip through quickly while heavy cores' bank-level parallelism is
// preserved.
//
// This simplified version tracks batch membership per core by counting:
// when a new batch forms, core i owes batch_quota[i] = min(batch_cap,
// pending_reads[i]) requests; every served request of core i decrements its
// quota while quota remains; the batch drains when every quota is zero.
// (The original marks individual requests; counting is equivalent under
// per-core FIFO service order, which the controller's within-core
// age-ordering provides.)
#pragma once

#include <cstdint>
#include <vector>

#include "sched/scheduler.hpp"

namespace memsched::sched {

class ParbsScheduler final : public Scheduler {
 public:
  explicit ParbsScheduler(std::uint32_t core_count, std::uint32_t batch_cap = 5);

  [[nodiscard]] std::string name() const override { return "PAR-BS"; }

  void prepare(const QueueSnapshot& snap) override;
  [[nodiscard]] double core_priority(CoreId core) const override;
  [[nodiscard]] bool random_core_tie_break() const override { return true; }
  void on_served(const mc::Request& req) override;
  void reset() override;

  /// Remaining batch quota of `core` (tests/diagnostics).
  [[nodiscard]] std::uint32_t quota(CoreId core) const { return quota_[core]; }
  [[nodiscard]] std::uint64_t batches_formed() const { return batches_; }

  void save_state(ckpt::Writer& w) const override;
  void load_state(ckpt::Reader& r) override;

 private:
  std::uint32_t batch_cap_;
  std::vector<std::uint32_t> quota_;       ///< marked requests left per core
  std::vector<std::uint32_t> batch_size_;  ///< quota at batch formation (SJF rank)
  std::uint64_t batches_ = 0;
};

}  // namespace memsched::sched
