// BLISS — the Blacklisting Memory Scheduler (Subramanian, Lee, Seshadri,
// Lakshminarayana & Mutlu, ICCD 2014; PAPERS.md "The Blacklisting Memory
// Scheduler"). The observation: full rank-ordering of threads (TCM, PAR-BS)
// is expensive and over-aggressive; it suffices to *blacklist* an
// application that has recently monopolised the controller and prefer
// everyone else.
//
// Mechanism as reproduced here:
//   * the controller tracks the current consecutive-serve streak per the
//     epoch/interval machinery (QueueSnapshot::streak_core/streak_len);
//   * when a core's streak reaches `streak_threshold` (paper: 4), prepare()
//     blacklists it;
//   * every `clearing_interval` bus ticks — epoch_ticks(); the paper clears
//     every 10000 CPU cycles, = 1250 ticks of our 400 MHz bus at the 8:1
//     clock ratio — on_epoch() wipes the blacklist, giving offenders a
//     fresh start;
//   * ranking is (non-blacklisted > blacklisted) ABOVE row hits
//     (hit_first_above_core() = false, matching the paper's priority order
//     "non-blacklisted > row-hit > age"), with arrival age breaking ties.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/scheduler.hpp"

namespace memsched::sched {

class BlissScheduler final : public Scheduler {
 public:
  /// Paper defaults: blacklist after 4 consecutive serves, clear every
  /// 10000 CPU cycles = 1250 bus ticks (Table 2 of the BLISS paper, mapped
  /// through this model's 8:1 CPU:bus clock ratio).
  static constexpr std::uint32_t kDefaultStreakThreshold = 4;
  static constexpr Tick kDefaultClearingIntervalTicks = 1250;

  explicit BlissScheduler(std::uint32_t core_count,
                          std::uint32_t streak_threshold = kDefaultStreakThreshold,
                          Tick clearing_interval = kDefaultClearingIntervalTicks);

  [[nodiscard]] std::string name() const override { return "BLISS"; }

  void prepare(const QueueSnapshot& snap) override;
  [[nodiscard]] double core_priority(CoreId core) const override;
  /// Blacklist status dominates row hits (BLISS priority order).
  [[nodiscard]] bool hit_first_above_core() const override { return false; }
  [[nodiscard]] Tick epoch_ticks() const override { return clearing_interval_; }
  void on_epoch(Tick boundary, const QueueSnapshot& snap) override;
  void reset() override;

  /// Test/diagnostic accessors.
  [[nodiscard]] bool blacklisted(CoreId core) const { return blacklist_[core] != 0; }
  [[nodiscard]] std::uint64_t blacklist_events() const { return blacklist_events_; }
  [[nodiscard]] std::uint32_t streak_threshold() const { return streak_threshold_; }

  void save_state(ckpt::Writer& w) const override;
  void load_state(ckpt::Reader& r) override;

 private:
  std::uint32_t streak_threshold_;
  Tick clearing_interval_;
  std::vector<std::uint8_t> blacklist_;  ///< per core, 1 = blacklisted
  std::uint64_t blacklist_events_ = 0;   ///< cores blacklisted since reset
};

}  // namespace memsched::sched
