// Baseline scheduling policies (paper §2 and §5.2).
//
// The paper's own contribution (ME and ME-LREQ, §3) lives in src/core; these
// are the conventional schemes it is evaluated against.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "sched/scheduler.hpp"

namespace memsched::sched {

/// Naive first-come first-serve: arrival order across reads *and* writes,
/// no row-hit preference (§2 "FCFS").
class FcfsScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "FCFS"; }
  [[nodiscard]] double core_priority(CoreId) const override { return 0.0; }
  [[nodiscard]] bool use_hit_first() const override { return false; }
  [[nodiscard]] bool use_read_first() const override { return false; }
  [[nodiscard]] std::uint32_t sched_window() const override { return 1; }
};

/// FCFS with read-bypass-write (§2 "Read-First").
class FcfsReadFirstScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "FCFS-RF"; }
  [[nodiscard]] double core_priority(CoreId) const override { return 0.0; }
  [[nodiscard]] bool use_hit_first() const override { return false; }
  [[nodiscard]] std::uint32_t sched_window() const override { return 1; }
};

/// Hit-First with Read-First — the paper's performance baseline: row-buffer
/// hits before misses, reads bypass writes, arrival order among misses
/// within a bounded scheduling window (kDefaultWindow oldest requests per
/// channel; a conventional arrival-indexed scheduler's lookahead). The
/// unbounded variant ("HF-RF-OOO", window = 0) is an FR-FCFS-style upgrade
/// used by the ablation study to isolate how much of the thread-aware
/// schemes' gain is pure bank-level parallelism.
class HitFirstReadFirstScheduler final : public Scheduler {
 public:
  static constexpr std::uint32_t kDefaultWindow = 8;

  explicit HitFirstReadFirstScheduler(std::uint32_t window = kDefaultWindow)
      : window_(window) {}
  [[nodiscard]] std::string name() const override {
    return window_ == 0 ? "HF-RF-OOO" : "HF-RF";
  }
  [[nodiscard]] double core_priority(CoreId) const override { return 0.0; }
  [[nodiscard]] std::uint32_t sched_window() const override { return window_; }

 private:
  std::uint32_t window_;
};

/// Decorator that drops the hit-first-above-thread rule of the wrapped
/// scheme, making core priority dominate outright (the literal Figure-1
/// reading). Used by the ablation bench to quantify the design choice.
class ThreadOverHit final : public Scheduler {
 public:
  explicit ThreadOverHit(SchedulerPtr inner) : inner_(std::move(inner)) {}

  [[nodiscard]] std::string name() const override { return inner_->name() + "/TOH"; }
  void prepare(const QueueSnapshot& snap) override { inner_->prepare(snap); }
  [[nodiscard]] double core_priority(CoreId core) const override {
    return inner_->core_priority(core);
  }
  [[nodiscard]] bool hit_first_above_core() const override { return false; }
  [[nodiscard]] bool use_hit_first() const override { return inner_->use_hit_first(); }
  [[nodiscard]] bool use_read_first() const override { return inner_->use_read_first(); }
  [[nodiscard]] bool random_core_tie_break() const override {
    return inner_->random_core_tie_break();
  }
  void on_served(const mc::Request& req) override { inner_->on_served(req); }
  void on_epoch(CoreId core, double insts, double bytes) override {
    inner_->on_epoch(core, insts, bytes);
  }
  [[nodiscard]] Tick epoch_ticks() const override { return inner_->epoch_ticks(); }
  void on_epoch(Tick boundary, const QueueSnapshot& snap) override {
    inner_->on_epoch(boundary, snap);
  }
  void reset() override { inner_->reset(); }
  void save_state(ckpt::Writer& w) const override { inner_->save_state(w); }
  void load_state(ckpt::Reader& r) override { inner_->load_state(r); }

 private:
  SchedulerPtr inner_;
};

/// Round-Robin across cores (§2): the core closest after the last-served
/// core wins. Destroys per-core spatial locality by construction, which is
/// exactly the behaviour the paper discusses.
class RoundRobinScheduler final : public Scheduler {
 public:
  explicit RoundRobinScheduler(std::uint32_t core_count)
      : core_count_(core_count) {}

  [[nodiscard]] std::string name() const override { return "RR"; }

  [[nodiscard]] double core_priority(CoreId core) const override {
    // Distance from the token: the next core after last_served_ ranks
    // highest. Negated so "higher is better".
    const std::uint32_t dist = (core + core_count_ - 1 - last_served_) % core_count_;
    return -static_cast<double>(dist);
  }

  void on_served(const mc::Request& req) override { last_served_ = req.core; }
  void reset() override { last_served_ = 0; }
  void save_state(ckpt::Writer& w) const override;
  void load_state(ckpt::Reader& r) override;

 private:
  std::uint32_t core_count_;
  CoreId last_served_ = 0;
};

/// Least-Request (§2, from Zhu & Zhang HPCA'05 [19]): the core with the
/// fewest pending read requests wins; ties broken randomly.
class LeastRequestScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "LREQ"; }

  void prepare(const QueueSnapshot& snap) override { snap_ = snap; }

  [[nodiscard]] double core_priority(CoreId core) const override {
    const std::uint32_t pending = snap_.pending_reads[core];
    // Cores with no pending reads cannot win anyway (they have no eligible
    // requests); rank them lowest to keep the priority total order clean.
    if (pending == 0) return -std::numeric_limits<double>::infinity();
    return -static_cast<double>(pending);
  }

  [[nodiscard]] bool random_core_tie_break() const override { return true; }

 private:
  QueueSnapshot snap_{};
};

/// Fair-queueing scheduler, in the spirit of Nesbit et al. [12] which the
/// paper contrasts against in §6: each core owns a virtual clock that
/// advances by an N-core-share of the service quantum whenever one of its
/// requests is served; the earliest virtual finish time wins. Provides
/// strong fairness without any application knowledge — the counterpoint to
/// ME-LREQ's efficiency-weighted allocation.
class FairQueueScheduler final : public Scheduler {
 public:
  /// `quantum_ticks` approximates one transaction's service time; only its
  /// ratio to itself matters, so the default is uncritical.
  explicit FairQueueScheduler(std::uint32_t core_count, double quantum_ticks = 12.0)
      : core_count_(core_count), quantum_(quantum_ticks), vft_(core_count, 0.0) {}

  [[nodiscard]] std::string name() const override { return "FQ"; }

  void prepare(const QueueSnapshot& snap) override {
    now_ = static_cast<double>(snap.now);
  }

  [[nodiscard]] double core_priority(CoreId core) const override {
    // Earliest virtual finish time first.
    return -std::max(vft_[core], now_);
  }

  void on_served(const mc::Request& req) override {
    vft_[req.core] = std::max(vft_[req.core], now_) +
                     quantum_ * static_cast<double>(core_count_);
  }

  [[nodiscard]] bool random_core_tie_break() const override { return true; }

  void reset() override { std::fill(vft_.begin(), vft_.end(), 0.0); }
  void save_state(ckpt::Writer& w) const override;
  void load_state(ckpt::Reader& r) override;

 private:
  std::uint32_t core_count_;
  double quantum_;
  double now_ = 0.0;
  std::vector<double> vft_;
};

/// Fixed core-priority order (§5.2 FIX-3210 / FIX-0123): `order[0]` is the
/// most important core.
class FixOrderScheduler final : public Scheduler {
 public:
  explicit FixOrderScheduler(std::vector<CoreId> order);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double core_priority(CoreId core) const override {
    return rank_[core];
  }

  /// Convenience factories matching the paper's two schemes for n cores:
  /// descending (FIX-3210 generalised) and ascending (FIX-0123).
  static SchedulerPtr descending(std::uint32_t core_count);
  static SchedulerPtr ascending(std::uint32_t core_count);

 private:
  std::vector<CoreId> order_;
  std::vector<double> rank_;  ///< indexed by core id; higher wins
  std::string name_;          ///< built once; name() is called per repeat
};

}  // namespace memsched::sched
