// Stall-Time-Fair Memory scheduling, simplified (Mutlu & Moscibroda,
// MICRO 2007 — the paper's reference [11] and §6 contrast).
//
// STFM's principle: equalise per-thread *slowdowns* S_i = T_shared/T_alone.
// While the measured unfairness max_i S_i / min_j S_j stays below a
// threshold alpha, the scheduler stays out of the way (plain hit-first /
// arrival order); once it exceeds alpha, the most-slowed thread's requests
// get priority until balance is restored.
//
// The original estimates T_alone in hardware from interference counters;
// this reproduction derives slowdowns from profiled single-core IPCs (the
// same profiling pass ME-LREQ already requires) and per-epoch committed-
// instruction counts delivered through Scheduler::on_epoch — behaviourally
// equivalent for stationary workloads and far simpler.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/scheduler.hpp"

namespace memsched::sched {

class StfmScheduler final : public Scheduler {
 public:
  /// `ipc_single[i]` is core i's profiled alone-IPC; `epoch_cpu_cycles` the
  /// CPU-cycle length of one on_epoch interval; `alpha` the unfairness
  /// threshold above which the scheduler intervenes (paper value ~1.10);
  /// `ewma_alpha` smooths the per-epoch IPC estimate.
  StfmScheduler(std::vector<double> ipc_single, double epoch_cpu_cycles,
                double alpha = 1.10, double ewma_alpha = 0.25);

  [[nodiscard]] std::string name() const override { return "STFM"; }

  void prepare(const QueueSnapshot& snap) override;
  [[nodiscard]] double core_priority(CoreId core) const override;
  [[nodiscard]] bool random_core_tie_break() const override { return true; }
  void on_epoch(CoreId core, double committed_insts, double dram_bytes) override;
  void reset() override;

  /// Current slowdown estimate for tests/diagnostics (1.0 until seeded).
  [[nodiscard]] double slowdown(CoreId core) const { return slowdown_[core]; }

  /// Whether the fairness rule is currently engaged.
  [[nodiscard]] bool intervening() const { return intervening_; }

  void save_state(ckpt::Writer& w) const override;
  void load_state(ckpt::Reader& r) override;

 private:
  std::vector<double> ipc_single_;
  double epoch_cpu_cycles_;
  double alpha_;
  double ewma_alpha_;
  std::vector<double> ipc_est_;    ///< EWMA of per-epoch shared-mode IPC
  std::vector<bool> seeded_;
  std::vector<double> slowdown_;   ///< ipc_single / ipc_est
  bool intervening_ = false;
};

}  // namespace memsched::sched
