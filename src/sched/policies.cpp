#include "sched/policies.hpp"

#include <algorithm>

#include "ckpt/snapshot.hpp"
#include "util/assert.hpp"

namespace memsched::sched {

void RoundRobinScheduler::save_state(ckpt::Writer& w) const {
  w.put_u32(last_served_);
}

void RoundRobinScheduler::load_state(ckpt::Reader& r) {
  last_served_ = r.get_u32();
}

void FairQueueScheduler::save_state(ckpt::Writer& w) const {
  // now_ is transient (refreshed by prepare() each round); only the virtual
  // finish times persist.
  w.put_u64(vft_.size());
  for (double v : vft_) w.put_f64(v);
}

void FairQueueScheduler::load_state(ckpt::Reader& r) {
  const std::uint64_t n = r.get_u64();
  if (n != vft_.size()) {
    throw ckpt::SnapshotError("snapshot: FQ core count mismatch");
  }
  for (double& v : vft_) v = r.get_f64();
}

FixOrderScheduler::FixOrderScheduler(std::vector<CoreId> order)
    : order_(std::move(order)) {
  MEMSCHED_ASSERT(!order_.empty(), "FIX order must not be empty");
  rank_.assign(order_.size(), 0.0);
  std::vector<bool> seen(order_.size(), false);
  for (std::size_t i = 0; i < order_.size(); ++i) {
    const CoreId c = order_[i];
    MEMSCHED_ASSERT(c < order_.size() && !seen[c], "FIX order must be a permutation");
    seen[c] = true;
    rank_[c] = static_cast<double>(order_.size() - i);  // earlier = higher
  }
  name_ = "FIX-";
  for (const CoreId c : order_) name_ += static_cast<char>('0' + (c % 10));
}

std::string FixOrderScheduler::name() const { return name_; }

SchedulerPtr FixOrderScheduler::descending(std::uint32_t core_count) {
  std::vector<CoreId> order(core_count);
  for (std::uint32_t i = 0; i < core_count; ++i) order[i] = core_count - 1 - i;
  return std::make_unique<FixOrderScheduler>(std::move(order));
}

SchedulerPtr FixOrderScheduler::ascending(std::uint32_t core_count) {
  std::vector<CoreId> order(core_count);
  for (std::uint32_t i = 0; i < core_count; ++i) order[i] = i;
  return std::make_unique<FixOrderScheduler>(std::move(order));
}

}  // namespace memsched::sched
