// Durable write-ahead job queue for the sweep daemon.
//
// One append-only file (`queue.wal`) holds the full job history as framed,
// CRC-checked records (serve/wire.hpp). Every state change appends a fresh
// complete record for the job — last record per id wins on replay — so a
// mutation is a single frame append + fsync, and a SIGKILL at ANY byte
// offset leaves a prefix of whole frames plus at most one torn tail frame
// that recovery detects and truncates. Nothing is acknowledged to a client
// before its frame is durable, so a torn submit was by definition never
// acked and the client's bounded retry resubmits it; duplicate submissions
// are collapsed by job key. Together: exactly-once submission.
//
// Failure philosophy mirrors the result cache: queue I/O trouble must not
// take the daemon down. An append that fails (ENOSPC, EIO) after the torn
// bytes are rolled back flips the queue into DEGRADED mode — state keeps
// advancing in memory, one grep-able MEMSCHED_SERVE_DEGRADED line explains
// why on stderr, and every later mutation first attempts a full compaction
// (atomic rewrite via util::atomic_write_file), which heals the queue the
// moment the filesystem recovers. All file I/O consults the thread-local
// util::fs_fault_hooks() seam, so every one of those paths is unit-testable
// with MEMSCHED_QUEUE_FSFAULT-style deterministic fault injection.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/fs_fault.hpp"

namespace memsched::serve {

/// Lifecycle of one submitted sweep job.
enum class JobState : std::uint8_t {
  kQueued = 0,     ///< waiting for a runner
  kRunning = 1,    ///< dispatched to a runner process
  kDone = 2,       ///< report captured; terminal
  kFailed = 3,     ///< retries exhausted; terminal until resubmitted
  kCancelled = 4,  ///< client cancel; terminal until resubmitted
};

/// Name of a JobState ("queued", "running", ...). Stable wire vocabulary.
[[nodiscard]] const char* job_state_name(JobState s);

/// One queue record — the complete durable state of a job. Appended in full
/// on every transition; the WAL never stores deltas.
struct QueueRecord {
  std::uint64_t id = 0;        ///< daemon-assigned, monotonically increasing
  std::string key;             ///< dedupe identity (config fingerprint + grid)
  JobState state = JobState::kQueued;
  std::uint32_t attempts = 0;  ///< runner attempts consumed so far
  std::string spec;            ///< submitted grid config (key=value text)
  std::string error;           ///< diagnosis when state == kFailed
};

/// Serializes one record payload (framing is the caller's job). Kept as a
/// free function paired with decode_queue_record so the codec symmetry is
/// lint-checkable.
[[nodiscard]] std::vector<std::uint8_t> encode_queue_record(const QueueRecord& rec);

/// Parses one record payload. Throws WireError on structural corruption.
[[nodiscard]] QueueRecord decode_queue_record(const std::uint8_t* data,
                                              std::size_t size);

class JobQueue {
 public:
  /// `dir` is the queue directory (created on open). `faults`, when set, is
  /// armed around every filesystem touch the queue makes — and nothing else.
  /// `verbose` gates the informational recovery/heal lines; the
  /// MEMSCHED_SERVE_DEGRADED diagnostic is contract output and always prints.
  explicit JobQueue(std::string dir, util::FsFaultHooks* faults = nullptr,
                    bool verbose = true);
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Creates the directory if needed, replays the WAL, truncates any torn or
  /// corrupt tail, and opens the append handle. False only when the queue
  /// cannot even operate in memory (directory uncreatable); error() says why.
  bool open();

  [[nodiscard]] const std::string& error() const { return error_; }

  struct SubmitResult {
    std::uint64_t id = 0;
    bool accepted = false;   ///< job will run (fresh, or failed/cancelled requeue)
    bool duplicate = false;  ///< key matched an existing live or done job
  };

  /// Idempotent submission: a key matching a queued/running/done job returns
  /// that job untouched; a key matching a failed/cancelled job requeues it;
  /// otherwise a new record is appended. The record is durable (fsync) before
  /// this returns, unless the queue is degraded.
  SubmitResult submit(const std::string& key, const std::string& spec);

  /// State transitions. Each appends a durable record; returns false only
  /// for an unknown id. `attempts` bumping is folded into mark_running.
  bool mark_running(std::uint64_t id);
  bool mark_done(std::uint64_t id);
  bool mark_failed(std::uint64_t id, const std::string& diagnosis);
  bool mark_cancelled(std::uint64_t id);
  /// Running -> queued (runner died / daemon drained); attempts preserved.
  bool requeue(std::uint64_t id);

  [[nodiscard]] const QueueRecord* find(std::uint64_t id) const;
  [[nodiscard]] const QueueRecord* find_by_key(const std::string& key) const;

  /// All jobs, id-ascending (deterministic).
  [[nodiscard]] std::vector<const QueueRecord*> jobs() const;

  /// Oldest queued job, or nullptr.
  [[nodiscard]] const QueueRecord* next_queued() const;

  /// Rewrites the WAL with only the latest record per job (atomic replace).
  /// Run on open after a truncation, when the log grows well past the live
  /// set, and as the healing step while degraded. False = still degraded.
  bool compact();

  /// True when the last durability attempt failed and in-memory state is
  /// ahead of disk. Cleared by the first successful compact().
  [[nodiscard]] bool degraded() const { return degraded_; }

  /// Bytes discarded by torn/corrupt-tail truncation during open().
  [[nodiscard]] std::uint64_t truncated_bytes() const { return truncated_bytes_; }

  /// Records replayed from disk during open().
  [[nodiscard]] std::size_t replayed() const { return replayed_; }

  [[nodiscard]] std::string wal_path() const;

 private:
  bool append_record(const QueueRecord& rec);
  bool write_frame_locked(const std::vector<std::uint8_t>& frame);
  void enter_degraded(const std::string& why);
  bool ensure_open_fd();

  std::string dir_;
  util::FsFaultHooks* faults_;
  bool verbose_;
  int fd_ = -1;
  std::uint64_t durable_size_ = 0;  ///< bytes of WAL known to be whole frames
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, QueueRecord> jobs_;
  std::map<std::string, std::uint64_t> by_key_;
  bool degraded_ = false;
  bool degraded_announced_ = false;
  std::uint64_t truncated_bytes_ = 0;
  std::size_t replayed_ = 0;
  std::string error_;
};

}  // namespace memsched::serve
