#include "serve/job_queue.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "serve/wire.hpp"
#include "util/atomic_file.hpp"

namespace fs = std::filesystem;

namespace memsched::serve {

namespace {

/// Consults the thread-local fault seam exactly like util::atomic_file does:
/// returns the injected errno for `op`, or 0.
int injected_failure(const char* op) {
  util::FsFaultHooks* hooks = util::fs_fault_hooks();
  return hooks ? hooks->fail_op(op) : 0;
}

std::size_t clamp_write_len(std::size_t requested) {
  util::FsFaultHooks* hooks = util::fs_fault_hooks();
  return hooks ? hooks->clamp_write(requested) : requested;
}

/// Compact once the dead-record overhead exceeds this many bytes. Low enough
/// that the log stays small, high enough that steady-state mutations are one
/// cheap append, not a rewrite.
constexpr std::uint64_t kCompactSlackBytes = 256 * 1024;

}  // namespace

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_queue_record(const QueueRecord& rec) {
  WireWriter w;
  w.put_u64(rec.id);
  w.put_str(rec.key);
  w.put_u8(static_cast<std::uint8_t>(rec.state));
  w.put_u32(rec.attempts);
  w.put_str(rec.spec);
  w.put_str(rec.error);
  return w.take();
}

QueueRecord decode_queue_record(const std::uint8_t* data, std::size_t size) {
  WireReader r(data, size);
  QueueRecord rec;
  rec.id = r.get_u64();
  rec.key = r.get_str();
  const std::uint8_t state = r.get_u8();
  if (state > static_cast<std::uint8_t>(JobState::kCancelled)) {
    throw WireError("queue record: unknown job state");
  }
  rec.state = static_cast<JobState>(state);
  rec.attempts = r.get_u32();
  rec.spec = r.get_str();
  rec.error = r.get_str();
  if (r.remaining() != 0) throw WireError("queue record: trailing bytes");
  return rec;
}

JobQueue::JobQueue(std::string dir, util::FsFaultHooks* faults, bool verbose)
    : dir_(std::move(dir)), faults_(faults), verbose_(verbose) {}

JobQueue::~JobQueue() {
  if (fd_ >= 0) ::close(fd_);
}

std::string JobQueue::wal_path() const { return dir_ + "/queue.wal"; }

bool JobQueue::open() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    error_ = "queue: cannot create directory " + dir_ + ": " + ec.message();
    return false;
  }

  // Replay. The whole file is read up front (queues are small — a few KB per
  // thousand jobs after compaction) and scanned frame by frame; the first
  // frame that doesn't check out marks the recovery point.
  jobs_.clear();
  by_key_.clear();
  next_id_ = 1;
  durable_size_ = 0;
  truncated_bytes_ = 0;
  replayed_ = 0;

  std::string raw;
  {
    util::ScopedFsFaults armed(faults_);
    std::ifstream in(wal_path(), std::ios::binary);
    if (in) {
      raw.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
      util::FsFaultHooks* hooks = util::fs_fault_hooks();
      if (hooks && !raw.empty()) hooks->corrupt_read(raw.data(), raw.size());
    }
  }

  const auto* data = reinterpret_cast<const std::uint8_t*>(raw.data());
  std::size_t off = 0;
  std::string tail_diagnosis;
  while (off < raw.size()) {
    FrameParse fp = parse_frame(kQueueFrameMagic, data + off, raw.size() - off);
    if (!fp.ok) {
      tail_diagnosis = fp.need_more ? "torn tail frame" : fp.error;
      break;
    }
    try {
      QueueRecord rec = decode_queue_record(fp.payload.data(), fp.payload.size());
      by_key_.erase(jobs_.count(rec.id) ? jobs_[rec.id].key : rec.key);
      by_key_[rec.key] = rec.id;
      if (rec.id >= next_id_) next_id_ = rec.id + 1;
      jobs_[rec.id] = std::move(rec);
      ++replayed_;
    } catch (const WireError& e) {
      tail_diagnosis = e.what();
      break;
    }
    off += fp.consumed;
  }
  durable_size_ = off;

  if (off < raw.size()) {
    truncated_bytes_ = raw.size() - off;
    if (verbose_) {
      std::fprintf(stderr,
                   "memsched_served: queue recovery: %s at byte %zu; truncating %llu "
                   "trailing byte(s)\n",
                   tail_diagnosis.c_str(), off,
                   static_cast<unsigned long long>(truncated_bytes_));
    }
    // Rewrite the clean prefix atomically rather than ftruncate-ing in place:
    // a crash mid-truncate then re-replays and re-truncates; a crash
    // mid-rewrite leaves the old file, same outcome. compact() also drops
    // dead records while we are here.
    if (!compact()) {
      // Degraded from the first breath — compact() already announced it.
      error_.clear();
      return true;
    }
  }

  return ensure_open_fd() || degraded_;
}

bool JobQueue::ensure_open_fd() {
  if (fd_ >= 0) return true;
  util::ScopedFsFaults armed(faults_);
  if (int err = injected_failure("open"); err != 0) {
    errno = err;
  } else {
    fd_ = ::open(wal_path().c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  }
  if (fd_ < 0) {
    enter_degraded(std::string("cannot open WAL: ") + std::strerror(errno));
    return false;
  }
  return true;
}

void JobQueue::enter_degraded(const std::string& why) {
  degraded_ = true;
  if (!degraded_announced_) {
    degraded_announced_ = true;
    std::fprintf(stderr,
                 "MEMSCHED_SERVE_DEGRADED: job queue is not durable (%s); serving "
                 "from memory, will heal by compaction\n",
                 why.c_str());
  }
}

bool JobQueue::write_frame_locked(const std::vector<std::uint8_t>& frame) {
  util::ScopedFsFaults armed(faults_);
  std::size_t done = 0;
  while (done < frame.size()) {
    if (int err = injected_failure("write"); err != 0) {
      errno = err;
      break;
    }
    const std::size_t want = clamp_write_len(frame.size() - done);
    const ssize_t n = ::write(fd_, frame.data() + done, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    done += static_cast<std::size_t>(n);
  }
  bool synced = false;
  if (done == frame.size()) {
    if (int err = injected_failure("fsync"); err != 0) {
      errno = err;
    } else {
      synced = ::fsync(fd_) == 0;
    }
  }
  if (done == frame.size() && synced) {
    durable_size_ += frame.size();
    return true;
  }
  const int saved_errno = errno;
  // Roll the torn bytes back so later appends land after whole frames only.
  // If even that fails the WAL has a torn tail; recovery truncates it, and
  // we stop appending (degraded) so no good record lands beyond the tear.
  if (::ftruncate(fd_, static_cast<off_t>(durable_size_)) != 0) {
    ::close(fd_);
    fd_ = -1;
  }
  errno = saved_errno;
  return false;
}

bool JobQueue::append_record(const QueueRecord& rec) {
  if (degraded_) {
    // Healing path: one successful compaction writes everything, including
    // this record (already applied to memory by the caller's copy).
    return compact();
  }
  if (!ensure_open_fd()) return false;
  const std::vector<std::uint8_t> frame =
      frame_payload(kQueueFrameMagic, encode_queue_record(rec));
  if (!write_frame_locked(frame)) {
    enter_degraded(std::string("append failed: ") + std::strerror(errno));
    return false;
  }
  // Opportunistic hygiene: once dead records dominate, fold the log.
  const std::uint64_t live = static_cast<std::uint64_t>(jobs_.size()) * 64;
  if (durable_size_ > live + kCompactSlackBytes) (void)compact();
  return true;
}

JobQueue::SubmitResult JobQueue::submit(const std::string& key,
                                        const std::string& spec) {
  SubmitResult res;
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    QueueRecord& existing = jobs_[it->second];
    res.id = existing.id;
    res.duplicate = true;
    if (existing.state == JobState::kFailed ||
        existing.state == JobState::kCancelled) {
      existing.state = JobState::kQueued;
      existing.attempts = 0;
      existing.error.clear();
      existing.spec = spec;
      res.accepted = true;
      append_record(existing);
    }
    return res;
  }
  QueueRecord rec;
  rec.id = next_id_++;
  rec.key = key;
  rec.state = JobState::kQueued;
  rec.spec = spec;
  jobs_[rec.id] = rec;
  by_key_[key] = rec.id;
  res.id = rec.id;
  res.accepted = true;
  append_record(rec);
  return res;
}

bool JobQueue::mark_running(std::uint64_t id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  it->second.state = JobState::kRunning;
  it->second.attempts += 1;
  append_record(it->second);
  return true;
}

bool JobQueue::mark_done(std::uint64_t id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  it->second.state = JobState::kDone;
  it->second.error.clear();
  append_record(it->second);
  return true;
}

bool JobQueue::mark_failed(std::uint64_t id, const std::string& diagnosis) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  it->second.state = JobState::kFailed;
  it->second.error = diagnosis;
  append_record(it->second);
  return true;
}

bool JobQueue::mark_cancelled(std::uint64_t id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  it->second.state = JobState::kCancelled;
  append_record(it->second);
  return true;
}

bool JobQueue::requeue(std::uint64_t id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  it->second.state = JobState::kQueued;
  append_record(it->second);
  return true;
}

const QueueRecord* JobQueue::find(std::uint64_t id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

const QueueRecord* JobQueue::find_by_key(const std::string& key) const {
  auto it = by_key_.find(key);
  return it == by_key_.end() ? nullptr : find(it->second);
}

std::vector<const QueueRecord*> JobQueue::jobs() const {
  std::vector<const QueueRecord*> out;
  out.reserve(jobs_.size());
  for (const auto& [id, rec] : jobs_) out.push_back(&rec);
  return out;
}

const QueueRecord* JobQueue::next_queued() const {
  for (const auto& [id, rec] : jobs_) {
    if (rec.state == JobState::kQueued) return &rec;
  }
  return nullptr;
}

bool JobQueue::compact() {
  std::vector<std::uint8_t> image;
  for (const auto& [id, rec] : jobs_) {
    const std::vector<std::uint8_t> frame =
        frame_payload(kQueueFrameMagic, encode_queue_record(rec));
    image.insert(image.end(), frame.begin(), frame.end());
  }
  // The append handle must not survive the rename underneath it.
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  try {
    util::ScopedFsFaults armed(faults_);
    util::atomic_write_file(wal_path(), image.data(), image.size());
  } catch (const util::AtomicFileError& e) {
    enter_degraded(std::string("compaction failed: ") + e.what());
    return false;
  }
  durable_size_ = image.size();
  if (degraded_) {
    degraded_ = false;
    degraded_announced_ = false;
    if (verbose_) {
      std::fprintf(stderr,
                   "memsched_served: job queue healed by compaction (%zu job(s))\n",
                   jobs_.size());
    }
  }
  return ensure_open_fd();
}

}  // namespace memsched::serve
