// The sweep daemon: a supervised, crash-safe sweep-as-a-service loop.
//
// One single-threaded poll() event loop owns four kinds of fds: the listening
// Unix-domain socket, the graceful-stop pipe, and one heartbeat pipe per live
// runner process. Clients connect, send one framed JSON request
// (submit/status/result/cancel/ping/drain), get one framed reply, and
// disconnect; nothing a client does can block the loop for long (per-client
// receive timeout).
//
// Jobs move through the durable JobQueue (job_queue.hpp). Dispatch forks one
// *runner* process per job (up to `workers` concurrent): the runner rebuilds
// the grid's PointSpecs (harness/grid.hpp) and drives them through the same
// Orchestrator the CLI sweep tool uses — same manifest checkpointing, same
// result cache, same byte-identical report contract. The runner heartbeats
// through the orchestrator's on_record hook, so the supervisor can tell "a
// long point is still converging" (orchestrator's own watchdog handles hung
// points) from "the runner itself is wedged" — a stale heartbeat gets the
// runner SIGKILLed and the job retried on a util::Backoff schedule, up to
// max_attempts, then parked as failed with a diagnosis.
//
// SIGTERM (or a drain request) is a *graceful* stop: runners are forwarded
// SIGTERM, their orchestrators park in-flight points in checkpoints, their
// jobs return to queued, and the daemon exits with the interrupted contract
// code (6). A restarted daemon replays the queue, re-dispatches, and — via
// the result cache and per-job manifests — produces reports byte-identical
// to an uninterrupted run.
#pragma once

#include <sys/types.h>

#include <csignal>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "serve/job_queue.hpp"
#include "util/json.hpp"
#include "util/unix_socket.hpp"
#include "util/wallclock.hpp"

namespace memsched::serve {

struct ServeConfig {
  std::string socket_path;  ///< Unix-domain socket the daemon listens on
  std::string state_dir;    ///< root for queue/, jobs/ and (by default) cache/

  /// Result cache shared with CLI sweeps; defaults to <state_dir>/cache.
  std::string cache_dir;

  std::uint32_t workers = 1;  ///< concurrent runner processes
  std::uint32_t jobs = 1;     ///< orchestrator pool width inside each runner

  double point_timeout_seconds = 300.0;  ///< orchestrator per-point watchdog

  /// Runner liveness deadline. Must exceed the per-point timeout (the
  /// orchestrator kills hung points itself; the supervisor only catches a
  /// wedged runner). 0 = auto: point timeout + 60s.
  double heartbeat_timeout_seconds = 0.0;

  std::uint32_t max_attempts = 3;  ///< runner attempts per job before failed
  double backoff_seconds = 0.5;    ///< util::Backoff base between attempts

  /// Run jobs synchronously inside the event loop instead of forking a
  /// runner. For unit tests (which are threaded and must not fork); the
  /// forked path is covered by the serve smoke script.
  bool inline_exec = false;

  bool verbose = true;

  /// Graceful-stop flag + pollable wake-up fd (typically ckpt::stop_flag()
  /// and ckpt::stop_pipe_fd(), installed by the tool's main).
  const volatile std::sig_atomic_t* stop = nullptr;
  int stop_fd = -1;

  /// Deterministic fault source armed around the job queue's file I/O only
  /// (MEMSCHED_QUEUE_FSFAULT).
  util::FsFaultHooks* queue_faults = nullptr;
};

class Daemon {
 public:
  explicit Daemon(ServeConfig cfg);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Opens (and recovers) the queue and binds the socket. False + error()
  /// on failure. A degraded queue does NOT fail start — the daemon serves
  /// from memory and heals when the filesystem does.
  bool start();

  [[nodiscard]] const std::string& error() const { return error_; }

  /// Event loop until a graceful stop (exit code 6), a drain request
  /// (exit code 0), or an unrecoverable internal error (exit code 5).
  int run();

  /// Thread-safe graceful-stop request (same path as SIGTERM). For tests.
  void request_stop();

  [[nodiscard]] const JobQueue& queue() const { return *queue_; }

  /// Where job `id`'s final report lands.
  [[nodiscard]] std::string report_path(std::uint64_t id) const;

  /// One poll()+housekeeping iteration; exposed for tests driving the loop
  /// manually. Returns false once the loop should exit (exit_code() set).
  bool poll_once(int timeout_ms);

  [[nodiscard]] int exit_code() const { return exit_code_; }

 private:
  struct Runner {
    pid_t pid = -1;
    std::uint64_t job_id = 0;
    util::Fd heartbeat;  ///< read end; runner holds the write end
    util::MonotonicTime last_beat;
  };

  void handle_client();
  [[nodiscard]] util::Json handle_request(const util::Json& req,
                                          std::string* extra_frame);
  [[nodiscard]] util::Json handle_submit(const util::Json& req);
  [[nodiscard]] util::Json handle_cancel(const util::Json& req);

  void dispatch();
  bool spawn_runner(const QueueRecord& rec);
  void run_job_inline(std::uint64_t id);
  [[noreturn]] void runner_child(std::uint64_t id, int heartbeat_fd);
  void reap_runners();
  void conclude_runner(const Runner& runner, int status, bool wedged);
  void kill_stale_runners();
  void graceful_drain(int code);

  [[nodiscard]] std::string job_dir(std::uint64_t id) const;
  [[nodiscard]] double heartbeat_timeout() const;

  ServeConfig cfg_;
  std::unique_ptr<JobQueue> queue_;
  util::Fd listener_;
  util::Fd stop_pipe_r_;  ///< internal request_stop() pipe (read end)
  util::Fd stop_pipe_w_;
  std::map<pid_t, Runner> runners_;
  std::map<std::uint64_t, util::MonotonicTime> retry_after_;
  bool draining_ = false;
  bool stopping_ = false;
  int exit_code_ = 0;
  std::string error_;
};

}  // namespace memsched::serve
