#include "serve/wire.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "ckpt/snapshot.hpp"
#include "util/unix_socket.hpp"

namespace memsched::serve {

namespace {

void append_u32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  buf.push_back(static_cast<std::uint8_t>(v & 0xff));
  buf.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  buf.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  buf.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

void WireWriter::put_u32(std::uint32_t v) { append_u32(buf_, v); }

void WireWriter::put_u64(std::uint64_t v) {
  append_u32(buf_, static_cast<std::uint32_t>(v & 0xffff'ffffu));
  append_u32(buf_, static_cast<std::uint32_t>(v >> 32));
}

void WireWriter::put_str(const std::string& s) {
  if (s.size() > kMaxFramePayload) throw WireError("wire: string too large to encode");
  append_u32(buf_, static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

const std::uint8_t* WireReader::need(std::size_t n) {
  if (size_ - pos_ < n) throw WireError("wire: record truncated");
  const std::uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

std::uint8_t WireReader::get_u8() { return *need(1); }

std::uint32_t WireReader::get_u32() { return load_u32(need(4)); }

std::uint64_t WireReader::get_u64() {
  const std::uint64_t lo = get_u32();
  const std::uint64_t hi = get_u32();
  return lo | (hi << 32);
}

std::string WireReader::get_str() {
  const std::uint32_t n = get_u32();
  if (n > kMaxFramePayload) throw WireError("wire: string length implausible");
  const std::uint8_t* p = need(n);
  return std::string(reinterpret_cast<const char*>(p), n);
}

std::vector<std::uint8_t> frame_payload(std::uint32_t magic,
                                        const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxFramePayload) throw WireError("wire: payload too large");
  std::vector<std::uint8_t> out;
  out.reserve(12 + payload.size());
  append_u32(out, magic);
  append_u32(out, static_cast<std::uint32_t>(payload.size()));
  append_u32(out, ckpt::crc32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

FrameParse parse_frame(std::uint32_t magic, const std::uint8_t* data, std::size_t size) {
  FrameParse r;
  if (size < 12) {
    // Could still be a valid header mid-write — but only if what IS there
    // matches the magic prefix. A wrong byte this early is corruption.
    const std::size_t have = std::min<std::size_t>(size, 4);
    std::uint8_t want[4];
    want[0] = static_cast<std::uint8_t>(magic & 0xff);
    want[1] = static_cast<std::uint8_t>((magic >> 8) & 0xff);
    want[2] = static_cast<std::uint8_t>((magic >> 16) & 0xff);
    want[3] = static_cast<std::uint8_t>((magic >> 24) & 0xff);
    if (std::memcmp(data, want, have) != 0) {
      r.error = "bad magic";
      return r;
    }
    r.need_more = true;
    return r;
  }
  if (load_u32(data) != magic) {
    r.error = "bad magic";
    return r;
  }
  const std::uint32_t len = load_u32(data + 4);
  if (len > kMaxFramePayload) {
    r.error = "implausible frame length";
    return r;
  }
  if (size - 12 < len) {
    r.need_more = true;
    return r;
  }
  const std::uint32_t want_crc = load_u32(data + 8);
  if (ckpt::crc32(data + 12, len) != want_crc) {
    r.error = "payload CRC mismatch";
    return r;
  }
  r.ok = true;
  r.consumed = 12 + static_cast<std::size_t>(len);
  r.payload.assign(data + 12, data + 12 + len);
  return r;
}

bool write_message(int fd, const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> framed = frame_payload(kWireFrameMagic, payload);
  return util::write_all(fd, framed.data(), framed.size());
}

bool read_message(int fd, std::vector<std::uint8_t>* payload, std::string* error) {
  std::uint8_t header[12];
  if (!util::read_exact(fd, header, sizeof header)) {
    if (error) *error = errno == 0 ? "eof" : "read error";
    return false;
  }
  if (load_u32(header) != kWireFrameMagic) {
    if (error) *error = "bad magic";
    return false;
  }
  const std::uint32_t len = load_u32(header + 4);
  if (len > kMaxFramePayload) {
    if (error) *error = "implausible frame length";
    return false;
  }
  payload->resize(len);
  if (len > 0 && !util::read_exact(fd, payload->data(), len)) {
    if (error) *error = "truncated frame";
    return false;
  }
  if (ckpt::crc32(payload->data(), len) != load_u32(header + 8)) {
    if (error) *error = "payload CRC mismatch";
    return false;
  }
  if (error) error->clear();
  return true;
}

bool write_json(int fd, const util::Json& doc) {
  const std::string text = doc.dump();
  std::vector<std::uint8_t> payload(text.begin(), text.end());
  return write_message(fd, payload);
}

}  // namespace memsched::serve
