#include "serve/daemon.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "ckpt/signal.hpp"
#include "harness/exit_codes.hpp"
#include "harness/grid.hpp"
#include "harness/orchestrator.hpp"
#include "serve/wire.hpp"
#include "util/atomic_file.hpp"
#include "util/backoff.hpp"
#include "util/config.hpp"

namespace fs = std::filesystem;

namespace memsched::serve {

namespace {

/// Parses a submitted spec (newline-separated key=value lines) into a
/// Config. Returns an error string, or empty on success.
std::string config_from_spec(const std::string& spec, util::Config* out) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t nl = spec.find('\n', pos);
    if (nl == std::string::npos) nl = spec.size();
    std::string_view line(spec.data() + pos, nl - pos);
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    if (!line.empty()) {
      if (auto err = out->parse_token(line)) return *err;
    }
    pos = nl + 1;
  }
  return {};
}

util::Json error_reply(const std::string& message) {
  util::Json resp = util::Json::object();
  resp["ok"] = false;
  resp["error"] = message;
  return resp;
}

std::string describe_status(int status) {
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    return std::string("runner exited ") + std::to_string(code) + " (" +
           harness::exit_category(code) + ")";
  }
  if (WIFSIGNALED(status)) {
    return std::string("runner killed by signal ") + std::to_string(WTERMSIG(status));
  }
  return "runner ended abnormally";
}

void set_socket_timeouts(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

}  // namespace

Daemon::Daemon(ServeConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.cache_dir.empty()) cfg_.cache_dir = cfg_.state_dir + "/cache";
  if (cfg_.workers == 0) cfg_.workers = 1;
}

Daemon::~Daemon() {
  for (auto& [pid, runner] : runners_) {
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
}

std::string Daemon::job_dir(std::uint64_t id) const {
  return cfg_.state_dir + "/jobs/job-" + std::to_string(id);
}

std::string Daemon::report_path(std::uint64_t id) const {
  return job_dir(id) + "/report.json";
}

double Daemon::heartbeat_timeout() const {
  if (cfg_.heartbeat_timeout_seconds > 0.0) return cfg_.heartbeat_timeout_seconds;
  return cfg_.point_timeout_seconds + 60.0;
}

bool Daemon::start() {
  // A daemon writing a reply to a client that already hung up must get
  // EPIPE, not die.
  std::signal(SIGPIPE, SIG_IGN);

  queue_ = std::make_unique<JobQueue>(cfg_.state_dir + "/queue", cfg_.queue_faults,
                                      cfg_.verbose);
  if (!queue_->open()) {
    error_ = queue_->error();
    return false;
  }

  // Crash recovery: a job recorded "running" belonged to a runner of a dead
  // daemon incarnation. Its in-flight points are parked in the job's
  // manifest/checkpoints; re-dispatching resumes them.
  for (const QueueRecord* rec : queue_->jobs()) {
    if (rec->state == JobState::kRunning) queue_->requeue(rec->id);
  }

  std::error_code ec;
  fs::create_directories(cfg_.state_dir + "/jobs", ec);
  if (ec) {
    error_ = "cannot create " + cfg_.state_dir + "/jobs: " + ec.message();
    return false;
  }

  listener_ = util::unix_listen(cfg_.socket_path);
  if (!listener_.valid()) {
    error_ = "cannot listen on " + cfg_.socket_path + ": " + std::strerror(errno);
    return false;
  }

  int fds[2];
  if (::pipe2(fds, O_CLOEXEC | O_NONBLOCK) != 0) {
    error_ = std::string("cannot create stop pipe: ") + std::strerror(errno);
    return false;
  }
  stop_pipe_r_ = util::Fd(fds[0]);
  stop_pipe_w_ = util::Fd(fds[1]);

  if (cfg_.verbose) {
    std::fprintf(stderr,
                 "memsched_served: listening on %s (%zu job(s) recovered, "
                 "workers=%u, jobs=%u)\n",
                 cfg_.socket_path.c_str(), queue_->jobs().size(), cfg_.workers,
                 cfg_.jobs);
  }
  return true;
}

void Daemon::request_stop() {
  const char b = 1;
  if (stop_pipe_w_.valid()) (void)!::write(stop_pipe_w_.get(), &b, 1);
}

int Daemon::run() {
  while (poll_once(200)) {
  }
  return exit_code_;
}

bool Daemon::poll_once(int timeout_ms) {
  if (stopping_) return false;

  std::vector<pollfd> fds;
  fds.push_back({listener_.get(), POLLIN, 0});
  fds.push_back({stop_pipe_r_.get(), POLLIN, 0});
  if (cfg_.stop_fd >= 0) fds.push_back({cfg_.stop_fd, POLLIN, 0});
  const std::size_t first_runner = fds.size();
  for (auto& [pid, runner] : runners_) {
    fds.push_back({runner.heartbeat.get(), POLLIN, 0});
  }

  const int rc = ::poll(fds.data(), fds.size(), timeout_ms);

  const bool stop_signalled =
      (cfg_.stop != nullptr && *cfg_.stop != 0) ||
      (fds[1].revents & POLLIN) != 0 ||
      (cfg_.stop_fd >= 0 && (fds[2].revents & POLLIN) != 0);
  if (stop_signalled) {
    graceful_drain(harness::kExitInterrupted);
    return false;
  }

  if (rc > 0) {
    // Drain heartbeats before liveness checks: a byte in flight is a beat.
    std::size_t slot = first_runner;
    for (auto& [pid, runner] : runners_) {
      if ((fds[slot].revents & (POLLIN | POLLHUP)) != 0) {
        char buf[64];
        while (::read(runner.heartbeat.get(), buf, sizeof buf) > 0) {
        }
        runner.last_beat = util::monotonic_now();
      }
      ++slot;
    }
  }

  reap_runners();
  kill_stale_runners();

  if (rc > 0 && (fds[0].revents & POLLIN) != 0) handle_client();

  dispatch();

  if (draining_ && runners_.empty()) {
    exit_code_ = 0;
    stopping_ = true;
    return false;
  }
  return true;
}

void Daemon::graceful_drain(int code) {
  stopping_ = true;
  exit_code_ = code;
  if (cfg_.verbose) {
    std::fprintf(stderr, "memsched_served: graceful stop (%zu runner(s) in flight)\n",
                 runners_.size());
  }
  for (auto& [pid, runner] : runners_) ::kill(pid, SIGTERM);

  // Bounded wait for the runners to park their points and exit. A runner
  // that outlives the deadline is wedged; SIGKILL it — its job's manifest
  // has every completed point, so nothing is lost.
  const util::MonotonicTime deadline =
      util::monotonic_now() + util::seconds_to_duration(heartbeat_timeout());
  while (!runners_.empty() && util::monotonic_now() < deadline) {
    reap_runners();
    if (runners_.empty()) break;
    ::usleep(50 * 1000);
  }
  for (auto& [pid, runner] : runners_) ::kill(pid, SIGKILL);
  reap_runners();
  while (!runners_.empty()) {
    ::usleep(10 * 1000);
    reap_runners();
  }
}

void Daemon::reap_runners() {
  for (;;) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid <= 0) break;
    auto it = runners_.find(pid);
    if (it == runners_.end()) continue;  // orchestrator grandchild leak; ignore
    Runner runner = std::move(it->second);
    runners_.erase(it);
    conclude_runner(runner, status, /*wedged=*/false);
  }
}

void Daemon::kill_stale_runners() {
  const util::MonotonicTime now = util::monotonic_now();
  const double limit = heartbeat_timeout();
  for (auto it = runners_.begin(); it != runners_.end();) {
    if (util::seconds_between(it->second.last_beat, now) <= limit) {
      ++it;
      continue;
    }
    const pid_t pid = it->first;
    Runner runner = std::move(it->second);
    it = runners_.erase(it);
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    conclude_runner(runner, status, /*wedged=*/true);
  }
}

void Daemon::conclude_runner(const Runner& runner, int status, bool wedged) {
  const QueueRecord* rec = queue_->find(runner.job_id);
  if (rec == nullptr) return;
  if (rec->state == JobState::kCancelled) return;  // cancelled while running

  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  if (!wedged && code == harness::kExitOk) {
    queue_->mark_done(runner.job_id);
    retry_after_.erase(runner.job_id);
    if (cfg_.verbose) {
      std::fprintf(stderr, "memsched_served: job %llu done\n",
                   static_cast<unsigned long long>(runner.job_id));
    }
    return;
  }
  if (!wedged && code == harness::kExitInterrupted) {
    // Graceful park (daemon drain, or an operator signalling the runner):
    // not a failure, the attempt doesn't burn retry budget semantics — the
    // job simply returns to the queue with its checkpoints intact.
    queue_->requeue(runner.job_id);
    return;
  }

  const std::string diagnosis =
      wedged ? "heartbeat timeout (runner wedged)" : describe_status(status);
  if (rec->attempts >= cfg_.max_attempts) {
    queue_->mark_failed(runner.job_id, diagnosis);
    retry_after_.erase(runner.job_id);
    std::fprintf(stderr, "memsched_served: job %llu failed permanently: %s\n",
                 static_cast<unsigned long long>(runner.job_id), diagnosis.c_str());
    return;
  }
  queue_->requeue(runner.job_id);
  const util::Backoff backoff{cfg_.backoff_seconds, 60.0};
  retry_after_[runner.job_id] =
      backoff.ready_at(util::monotonic_now(), rec->attempts);
  if (cfg_.verbose) {
    std::fprintf(stderr, "memsched_served: job %llu attempt %u failed (%s); retrying\n",
                 static_cast<unsigned long long>(runner.job_id), rec->attempts,
                 diagnosis.c_str());
  }
}

void Daemon::dispatch() {
  if (draining_ || stopping_) return;
  const util::MonotonicTime now = util::monotonic_now();
  while (runners_.size() < cfg_.workers) {
    const QueueRecord* pick = nullptr;
    for (const QueueRecord* rec : queue_->jobs()) {
      if (rec->state != JobState::kQueued) continue;
      auto it = retry_after_.find(rec->id);
      if (it != retry_after_.end() && now < it->second) continue;
      pick = rec;
      break;
    }
    if (pick == nullptr) break;
    if (cfg_.inline_exec) {
      run_job_inline(pick->id);
    } else if (!spawn_runner(*pick)) {
      break;  // transient fork/pipe trouble; retry next loop
    }
  }
}

bool Daemon::spawn_runner(const QueueRecord& rec) {
  const std::uint64_t id = rec.id;
  std::error_code ec;
  fs::create_directories(job_dir(id), ec);
  if (ec) return false;

  int fds[2];
  if (::pipe2(fds, O_CLOEXEC) != 0) return false;
  (void)::fcntl(fds[0], F_SETFL, O_NONBLOCK);

  // Durable BEFORE the fork: a crash between here and the reap recovers the
  // job as running -> requeued, never lost.
  queue_->mark_running(id);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    queue_->requeue(id);
    return false;
  }
  if (pid == 0) {
    ::close(fds[0]);
    listener_.reset();  // the runner must never accept clients
    runner_child(id, fds[1]);
  }
  ::close(fds[1]);

  Runner runner;
  runner.pid = pid;
  runner.job_id = id;
  runner.heartbeat = util::Fd(fds[0]);
  runner.last_beat = util::monotonic_now();
  runners_[pid] = std::move(runner);
  if (cfg_.verbose) {
    std::fprintf(stderr, "memsched_served: job %llu dispatched (pid %d)\n",
                 static_cast<unsigned long long>(id), static_cast<int>(pid));
  }
  return true;
}

void Daemon::runner_child(std::uint64_t id, int heartbeat_fd) {
  // Fresh graceful-stop plumbing: the daemon forwards SIGTERM on drain and
  // the orchestrator parks in-flight points.
  ckpt::install_stop_handlers();
  std::signal(SIGPIPE, SIG_IGN);

#ifdef __linux__
  // A runner must not outlive its supervisor: a SIGKILLed daemon would
  // otherwise leave an orphan racing the restarted daemon's replacement
  // runner on the same job directory. SIGTERM, not SIGKILL — the orphan
  // parks its in-flight points before exiting.
  (void)::prctl(PR_SET_PDEATHSIG, SIGTERM);
  if (::getppid() == 1) ::_exit(harness::kExitInterrupted);  // lost the race
#endif

  try {
    const QueueRecord* rec = queue_->find(id);
    if (rec == nullptr) ::_exit(harness::kExitInternal);

    util::Config cli;
    if (!config_from_spec(rec->spec, &cli).empty()) ::_exit(harness::kExitUsage);
    const harness::GridSpec grid = harness::grid_from_config(cli);

    // Serialize with any predecessor still parking this job (an orphan of a
    // crashed daemon): the manifest must not have two writers. The lock fd
    // is held for the runner's lifetime and released by _exit.
    const int lock_fd = ::open((job_dir(id) + "/.lock").c_str(),
                               O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (lock_fd >= 0) (void)::flock(lock_fd, LOCK_EX);

    harness::OrchestratorConfig oc;
    oc.manifest_path = job_dir(id) + "/manifest.json";
    // Full sweep identity for the manifest and report (bytes must match the
    // CLI sweep tool); point-independent identity for the cache so grids
    // sharing a configuration share entries.
    oc.fingerprint = harness::fingerprint(grid);
    oc.cache_fingerprint = harness::config_fingerprint(grid);
    oc.work_dir = job_dir(id) + "/work";
    oc.timeout_seconds = cfg_.point_timeout_seconds;
    oc.max_attempts = 2;
    oc.backoff_seconds = 0.2;
    oc.cache_dir = cfg_.cache_dir;
    oc.isolate = true;
    oc.verbose = cfg_.verbose;
    oc.jobs = cfg_.jobs;
    oc.stop = &ckpt::stop_flag();
    oc.on_record = [heartbeat_fd](const harness::PointRecord&) {
      const char beat = 1;
      (void)!::write(heartbeat_fd, &beat, 1);
    };

    // First beat up front: "alive and parsing" is distinguishable from
    // "wedged before the first point".
    oc.on_record(harness::PointRecord{});

    harness::Orchestrator orch(oc);
    const harness::SweepSummary summary = orch.run(harness::grid_points(grid));
    if (summary.interrupted) ::_exit(harness::kExitInterrupted);
    if (!summary.complete()) ::_exit(harness::kExitInternal);

    util::atomic_write_file(report_path(id), orch.report().dump(2) + "\n");
    ::_exit(harness::kExitOk);
  } catch (const std::invalid_argument&) {
    ::_exit(harness::kExitUsage);
  } catch (...) {
    ::_exit(harness::kExitInternal);
  }
}

void Daemon::run_job_inline(std::uint64_t id) {
  queue_->mark_running(id);
  const QueueRecord* rec = queue_->find(id);
  std::string diagnosis;
  try {
    util::Config cli;
    diagnosis = config_from_spec(rec->spec, &cli);
    if (diagnosis.empty()) {
      const harness::GridSpec grid = harness::grid_from_config(cli);

      std::error_code ec;
      fs::create_directories(job_dir(id), ec);

      harness::OrchestratorConfig oc;
      oc.manifest_path = job_dir(id) + "/manifest.json";
      oc.fingerprint = harness::fingerprint(grid);
      oc.cache_fingerprint = harness::config_fingerprint(grid);
      oc.work_dir = job_dir(id) + "/work";
      oc.cache_dir = cfg_.cache_dir;
      oc.isolate = false;  // in-process: the test harness is threaded
      oc.verbose = cfg_.verbose;
      oc.jobs = 1;
      oc.stop = cfg_.stop;

      harness::Orchestrator orch(oc);
      const harness::SweepSummary summary = orch.run(harness::grid_points(grid));
      if (summary.interrupted) {
        queue_->requeue(id);
        return;
      }
      if (summary.complete()) {
        util::atomic_write_file(report_path(id), orch.report().dump(2) + "\n");
        queue_->mark_done(id);
        retry_after_.erase(id);
        return;
      }
      diagnosis = "sweep incomplete";
    }
  } catch (const std::exception& e) {
    diagnosis = e.what();
  }
  if (rec->attempts >= cfg_.max_attempts) {
    queue_->mark_failed(id, diagnosis);
    retry_after_.erase(id);
  } else {
    queue_->requeue(id);
    const util::Backoff backoff{cfg_.backoff_seconds, 60.0};
    retry_after_[id] = backoff.ready_at(util::monotonic_now(), rec->attempts);
  }
}

void Daemon::handle_client() {
  util::Fd conn = util::unix_accept(listener_.get());
  if (!conn.valid()) return;
  set_socket_timeouts(conn.get(), 5);

  std::vector<std::uint8_t> payload;
  std::string err;
  if (!read_message(conn.get(), &payload, &err)) return;

  util::Json resp;
  std::string extra_frame;
  try {
    const util::Json req = util::Json::parse(
        std::string_view(reinterpret_cast<const char*>(payload.data()), payload.size()));
    resp = handle_request(req, &extra_frame);
  } catch (const std::exception& e) {
    resp = error_reply(std::string("malformed request: ") + e.what());
  }

  if (!write_json(conn.get(), resp)) return;
  if (!extra_frame.empty()) {
    const std::vector<std::uint8_t> bytes(extra_frame.begin(), extra_frame.end());
    (void)write_message(conn.get(), bytes);
  }
}

util::Json Daemon::handle_request(const util::Json& req, std::string* extra_frame) {
  const util::Json* cmd = req.find("cmd");
  if (cmd == nullptr || !cmd->is_string()) return error_reply("missing cmd");
  const std::string& name = cmd->as_string();

  if (name == "ping") {
    util::Json resp = util::Json::object();
    resp["ok"] = true;
    resp["pid"] = static_cast<std::int64_t>(::getpid());
    resp["degraded"] = queue_->degraded();
    resp["active"] = static_cast<std::uint64_t>(runners_.size());
    return resp;
  }
  if (name == "submit") return handle_submit(req);
  if (name == "cancel") return handle_cancel(req);

  if (name == "status") {
    util::Json resp = util::Json::object();
    resp["ok"] = true;
    const util::Json* want = req.find("id");
    util::Json jobs = util::Json::array();
    for (const QueueRecord* rec : queue_->jobs()) {
      if (want != nullptr && rec->id != want->as_uint()) continue;
      util::Json j = util::Json::object();
      j["id"] = rec->id;
      j["state"] = job_state_name(rec->state);
      j["attempts"] = rec->attempts;
      if (!rec->error.empty()) j["error"] = rec->error;
      jobs.push_back(std::move(j));
    }
    if (want != nullptr && jobs.size() == 0) return error_reply("no such job");
    resp["jobs"] = std::move(jobs);
    return resp;
  }

  if (name == "result") {
    const util::Json* id_field = req.find("id");
    if (id_field == nullptr) return error_reply("result: missing id");
    const QueueRecord* rec = queue_->find(id_field->as_uint());
    if (rec == nullptr) return error_reply("no such job");
    if (rec->state == JobState::kFailed) {
      return error_reply("job failed: " + rec->error);
    }
    if (rec->state != JobState::kDone) {
      return error_reply(std::string("job is ") + job_state_name(rec->state));
    }
    if (!read_file(report_path(rec->id), extra_frame)) {
      return error_reply("report file missing");
    }
    util::Json resp = util::Json::object();
    resp["ok"] = true;
    resp["bytes"] = static_cast<std::uint64_t>(extra_frame->size());
    return resp;
  }

  if (name == "drain") {
    draining_ = true;
    util::Json resp = util::Json::object();
    resp["ok"] = true;
    resp["active"] = static_cast<std::uint64_t>(runners_.size());
    return resp;
  }

  return error_reply("unknown cmd: " + name);
}

util::Json Daemon::handle_submit(const util::Json& req) {
  const util::Json* spec_field = req.find("spec");
  if (spec_field == nullptr || !spec_field->is_string()) {
    return error_reply("submit: missing spec");
  }
  const std::string& spec_text = spec_field->as_string();

  util::Config cli;
  if (std::string err = config_from_spec(spec_text, &cli); !err.empty()) {
    return error_reply("submit: " + err);
  }
  if (auto unknown = cli.check_known(harness::grid_keys(), {"fault."})) {
    return error_reply("submit: " + *unknown);
  }

  std::string key;
  try {
    const harness::GridSpec grid = harness::grid_from_config(cli);
    if (grid.workloads.empty() || grid.schemes.empty()) {
      return error_reply("submit: workloads and schemes must be non-empty");
    }
    key = harness::fingerprint(grid);
  } catch (const std::exception& e) {
    return error_reply(std::string("submit: ") + e.what());
  }

  const JobQueue::SubmitResult res = queue_->submit(key, spec_text);
  const QueueRecord* rec = queue_->find(res.id);
  util::Json resp = util::Json::object();
  resp["ok"] = true;
  resp["id"] = res.id;
  resp["duplicate"] = res.duplicate;
  resp["state"] = job_state_name(rec->state);
  resp["degraded"] = queue_->degraded();
  return resp;
}

util::Json Daemon::handle_cancel(const util::Json& req) {
  const util::Json* id_field = req.find("id");
  if (id_field == nullptr) return error_reply("cancel: missing id");
  const std::uint64_t id = id_field->as_uint();
  const QueueRecord* rec = queue_->find(id);
  if (rec == nullptr) return error_reply("no such job");
  if (rec->state == JobState::kDone || rec->state == JobState::kFailed ||
      rec->state == JobState::kCancelled) {
    return error_reply(std::string("job already ") + job_state_name(rec->state));
  }
  if (rec->state == JobState::kRunning) {
    for (auto& [pid, runner] : runners_) {
      if (runner.job_id == id) {
        ::kill(pid, SIGTERM);
        break;
      }
    }
  }
  queue_->mark_cancelled(id);
  retry_after_.erase(id);
  util::Json resp = util::Json::object();
  resp["ok"] = true;
  resp["state"] = "cancelled";
  return resp;
}

}  // namespace memsched::serve
