// Byte-level codec shared by the job queue's WAL records and the daemon's
// socket protocol.
//
// WireWriter/WireReader serialize plain scalars and length-prefixed strings
// into a flat byte buffer (little-endian, like every on-disk format in this
// codebase). Framing adds a fixed header per record:
//
//   magic u32  'MSQ1' (queue records) or 'MSG1' (socket messages)
//   len   u32  payload byte count (bounded; a torn length can't OOM us)
//   crc   u32  CRC-32 of the payload (ckpt::crc32)
//   payload
//
// The frame is what makes both transports crash- and corruption-evident: a
// WAL append SIGKILLed at any byte offset leaves a tail whose magic, length
// or CRC cannot check out, and recovery truncates it; a half-written socket
// message is rejected the same way instead of being half-interpreted.
//
// WireReader throws WireError on any structural problem (short buffer,
// over-read, oversized string) — never UB; callers treat it exactly like
// ckpt::SnapshotError.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace memsched::serve {

inline constexpr std::uint32_t kQueueFrameMagic = 0x3151'534d;  // "MSQ1"
inline constexpr std::uint32_t kWireFrameMagic = 0x3147'534d;   // "MSG1"

/// Hard bound on one frame's payload. Submissions and reports are small;
/// anything bigger is a corrupt length field, not a legitimate message.
inline constexpr std::uint32_t kMaxFramePayload = 16u * 1024 * 1024;

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends typed fields to a byte buffer.
class WireWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_str(const std::string& s);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads typed fields back; every accessor throws WireError on over-read.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& buf)
      : WireReader(buf.data(), buf.size()) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::string get_str();

  /// Bytes not yet consumed (0 when a record was read exactly).
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* need(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Wraps `payload` in a magic/len/CRC frame.
[[nodiscard]] std::vector<std::uint8_t> frame_payload(
    std::uint32_t magic, const std::vector<std::uint8_t>& payload);

/// Result of scanning one frame out of a byte stream.
struct FrameParse {
  bool ok = false;           ///< a complete, CRC-clean frame was extracted
  bool need_more = false;    ///< prefix of a valid frame; not enough bytes yet
  std::size_t consumed = 0;  ///< bytes used (header + payload) when ok
  std::vector<std::uint8_t> payload;
  std::string error;  ///< diagnosis when !ok && !need_more (torn/corrupt)
};

/// Parses the frame starting at `data`. Distinguishes "incomplete but so far
/// valid" (a WAL tail mid-append, a socket message mid-read) from "corrupt"
/// (bad magic, oversized length, CRC mismatch).
[[nodiscard]] FrameParse parse_frame(std::uint32_t magic, const std::uint8_t* data,
                                     std::size_t size);

/// Writes one framed message to `fd`. False + errno on I/O failure.
[[nodiscard]] bool write_message(int fd, const std::vector<std::uint8_t>& payload);

/// Reads one framed message from `fd` (blocking). False on EOF, I/O error,
/// or a corrupt frame (`*error` says which).
[[nodiscard]] bool read_message(int fd, std::vector<std::uint8_t>* payload,
                                std::string* error);

/// JSON convenience used by the daemon protocol: one JSON document per
/// framed message.
[[nodiscard]] bool write_json(int fd, const util::Json& doc);

}  // namespace memsched::serve
