#include "core/priority_table.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/fixed_point.hpp"

namespace memsched::core {

PriorityTable::PriorityTable(const MeTable& me, std::uint32_t max_pending, unsigned bits)
    : max_pending_(max_pending), bits_(bits) {
  MEMSCHED_ASSERT(max_pending >= 1, "priority table needs at least one entry");
  // The largest value any entry can hold is max_i ME[i] / 1; one common
  // scale factor preserves the relative order of all entries across cores.
  scale_max_ = std::max(me.max_me(), 1e-9);
  table_.resize(me.core_count());
  for (CoreId c = 0; c < me.core_count(); ++c) {
    reload(c, me.me(c));
  }
}

void PriorityTable::reload(CoreId core, double me_value) {
  MEMSCHED_ASSERT(core < table_.size(), "reload of unknown core");
  auto& row = table_[core];
  row.resize(max_pending_);
  for (std::uint32_t p = 1; p <= max_pending_; ++p) {
    row[p - 1] = util::quantize(me_value / static_cast<double>(p), scale_max_, bits_);
  }
}

std::uint32_t PriorityTable::lookup(CoreId core, std::uint32_t pending_reads) const {
  const std::uint32_t p = std::clamp<std::uint32_t>(pending_reads, 1, max_pending_);
  return table_.at(core)[p - 1];
}

}  // namespace memsched::core
