// Memory efficiency (paper §3.1, Equation 1).
//
//   ME[i] = IPC_single[i] / BW_single[i]
//
// where IPC_single and BW_single (GB/s) are measured on a single-core run of
// the application with the same core configuration. The value captures the
// *long-term* return on memory bandwidth: instructions committed per unit of
// bandwidth consumed. It is produced by off-line profiling (a different
// program slice than the evaluation run) and loaded into the controller "by
// the OS at the time of program loading".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace memsched::core {

/// One application's profiling result.
struct MeProfile {
  std::string app_name;
  double ipc_single = 0.0;      ///< committed IPC on a single-core system
  double bandwidth_gbs = 0.0;   ///< DRAM traffic (reads + writes) in GB/s
  double memory_efficiency = 0.0;  ///< Equation 1

  static MeProfile from_measurement(std::string app_name, double ipc, double bw_gbs);
};

/// Per-core ME vector handed to the ME/ME-LREQ schedulers — the software-
/// visible content of the workload priority tables.
class MeTable {
 public:
  MeTable() = default;
  explicit MeTable(std::vector<double> me_values) : me_(std::move(me_values)) {}

  [[nodiscard]] std::uint32_t core_count() const {
    return static_cast<std::uint32_t>(me_.size());
  }
  [[nodiscard]] double me(CoreId core) const { return me_.at(core); }
  [[nodiscard]] const std::vector<double>& values() const { return me_; }

  /// Largest ME across cores; the hardware table scales by this.
  [[nodiscard]] double max_me() const;

 private:
  std::vector<double> me_;
};

}  // namespace memsched::core
