// Hardware workload-priority-table model (paper Figure 1).
//
// The exact ME-LREQ priority ME[i]/PendingRead[i] involves a division, which
// is too expensive for a memory controller's critical path. The paper's
// implementation instead pre-computes, for every core and every possible
// pending-read count p in [1, 64], the scaled quotient and stores it as a
// 10-bit integer ("the total number of bits in the tables is only
// N x 64 x 10"). At scheduling time the controller indexes all tables in
// parallel with the current counters and compares plain integers.
//
// The tables are software-managed: the OS fills them at program load /
// context switch from the profiled ME values.
#pragma once

#include <cstdint>
#include <vector>

#include "core/memory_efficiency.hpp"
#include "util/types.hpp"

namespace memsched::core {

class PriorityTable {
 public:
  static constexpr std::uint32_t kDefaultMaxPending = 64;  ///< Table 1 buffer size
  static constexpr unsigned kDefaultBits = 10;             ///< paper §3.2

  /// Builds the tables from profiled ME values. `max_pending` is the largest
  /// representable pending-read count (counters saturate there) and `bits`
  /// the entry width.
  PriorityTable(const MeTable& me, std::uint32_t max_pending = kDefaultMaxPending,
                unsigned bits = kDefaultBits);

  /// Priority code for `core` with `pending_reads` outstanding reads.
  /// pending_reads is clamped to [1, max_pending]; the controller never
  /// queries a core with zero pending reads (it has nothing to schedule).
  [[nodiscard]] std::uint32_t lookup(CoreId core, std::uint32_t pending_reads) const;

  /// Re-fill one core's table (OS context switch: a new program with a new
  /// ME value now runs on `core`).
  void reload(CoreId core, double me_value);

  [[nodiscard]] std::uint32_t core_count() const {
    return static_cast<std::uint32_t>(table_.size());
  }
  [[nodiscard]] std::uint32_t max_pending() const { return max_pending_; }
  [[nodiscard]] unsigned bits() const { return bits_; }

  /// Total storage in bits: N x max_pending x bits (640N bits by default,
  /// matching the paper's cost estimate).
  [[nodiscard]] std::uint64_t storage_bits() const {
    return static_cast<std::uint64_t>(core_count()) * max_pending_ * bits_;
  }

 private:
  std::uint32_t max_pending_;
  unsigned bits_;
  double scale_max_;  ///< the ME/1 maximum the whole table is scaled by
  std::vector<std::vector<std::uint32_t>> table_;  ///< [core][pending-1]
};

}  // namespace memsched::core
