#include "core/me_schedulers.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "ckpt/snapshot.hpp"
#include "util/assert.hpp"

namespace memsched::core {

GeneralizedMeLreqScheduler::GeneralizedMeLreqScheduler(MeTable me, double alpha,
                                                       double beta)
    : me_(std::move(me)), alpha_(alpha), beta_(beta) {
  MEMSCHED_ASSERT(alpha >= 0.0 && beta >= 0.0, "exponents must be non-negative");
  me_pow_.reserve(me_.core_count());
  for (CoreId c = 0; c < me_.core_count(); ++c) {
    me_pow_.push_back(std::pow(std::max(me_.me(c), 1e-12), alpha_));
  }
}

std::string GeneralizedMeLreqScheduler::name() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "ME-LREQ-POW(a=%.1f,b=%.1f)", alpha_, beta_);
  return buf;
}

double GeneralizedMeLreqScheduler::core_priority(CoreId core) const {
  const std::uint32_t pending = snap_.pending_reads[core];
  if (pending == 0) return -std::numeric_limits<double>::infinity();
  return me_pow_[core] / std::pow(static_cast<double>(pending), beta_);
}

OnlineMeLreqScheduler::OnlineMeLreqScheduler(std::uint32_t core_count, double alpha,
                                             double cpu_hz)
    : alpha_(alpha), cpu_hz_(cpu_hz), me_est_(core_count, 0.0), seeded_(core_count, false) {
  MEMSCHED_ASSERT(alpha > 0.0 && alpha <= 1.0, "EWMA alpha out of range");
  MEMSCHED_ASSERT(cpu_hz > 0.0, "cpu_hz must be positive");
}

void OnlineMeLreqScheduler::on_epoch(CoreId core, double committed_insts,
                                     double dram_bytes) {
  MEMSCHED_ASSERT(core < me_est_.size(), "epoch sample for unknown core");
  // ME = IPC / GB/s; with both measured over the same epoch the epoch length
  // cancels: ME = insts * 1e9 / (bytes * f_cpu). A zero-traffic epoch means
  // effectively unbounded efficiency; clamp the divisor like Equation 1 does.
  const double bytes = std::max(dram_bytes, 1.0);
  const double sample = committed_insts * 1e9 / (bytes * cpu_hz_);
  if (!seeded_[core]) {
    me_est_[core] = sample;
    seeded_[core] = true;
  } else {
    me_est_[core] = alpha_ * sample + (1.0 - alpha_) * me_est_[core];
  }
}

double OnlineMeLreqScheduler::core_priority(CoreId core) const {
  const std::uint32_t pending = snap_.pending_reads[core];
  if (pending == 0) return -std::numeric_limits<double>::infinity();
  if (!seeded_[core]) return 0.0;  // neutral until the first sample
  return me_est_[core] / static_cast<double>(pending);
}

void OnlineMeLreqScheduler::reset() {
  std::fill(me_est_.begin(), me_est_.end(), 0.0);
  std::fill(seeded_.begin(), seeded_.end(), false);
}

void OnlineMeLreqScheduler::save_state(ckpt::Writer& w) const {
  w.put_u64(me_est_.size());
  for (std::size_t i = 0; i < me_est_.size(); ++i) {
    w.put_f64(me_est_[i]);
    w.put_bool(seeded_[i]);
  }
}

void OnlineMeLreqScheduler::load_state(ckpt::Reader& r) {
  const std::uint64_t n = r.get_u64();
  if (n != me_est_.size()) {
    throw ckpt::SnapshotError("snapshot: online-ME core count mismatch");
  }
  for (std::size_t i = 0; i < me_est_.size(); ++i) {
    me_est_[i] = r.get_f64();
    seeded_[i] = r.get_bool();
  }
}

}  // namespace memsched::core
