#include "core/scheduler_factory.hpp"

#include <cctype>
#include <stdexcept>

#include "core/me_schedulers.hpp"
#include "sched/bliss.hpp"
#include "sched/cads.hpp"
#include "sched/policies.hpp"
#include "sched/parbs.hpp"
#include "sched/stfm.hpp"
#include "sched/tcm.hpp"
#include "util/assert.hpp"
#include "util/config.hpp"

namespace memsched::core {

namespace {

MeTable me_for(const SchedulerArgs& args) {
  MEMSCHED_ASSERT(args.me.core_count() == args.core_count,
                  "ME table size must match core count");
  return args.me;
}

/// Nearest known scheme by edit distance, as a " (did you mean 'X'?)"
/// suffix — empty when nothing is plausibly close.
std::string suggestion_for(const std::string& canon) {
  std::string best;
  std::size_t best_d = canon.size();  // a full rewrite is not a suggestion
  for (const std::string& known : known_schedulers()) {
    const std::size_t d = util::edit_distance(canon, known);
    if (d < best_d || (d == best_d && !best.empty() && known < best)) {
      best_d = d;
      best = known;
    }
  }
  if (best.empty() || best_d > 3) return "";
  return " (did you mean '" + best + "'?)";
}

}  // namespace

sched::SchedulerPtr make_scheduler(const std::string& raw_name,
                                   const SchedulerArgs& args) {
  using namespace memsched::sched;
  // Scheme names are canonically UPPERCASE; accept any case from configs and
  // CLIs ("bliss" == "BLISS"). The canonical name is what lands in reports.
  std::string name = raw_name;
  for (char& c : name) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  // "<scheme>/TOH" wraps the scheme so thread priority dominates row hits
  // (the literal Figure-1 reading; used by the ablation bench).
  if (name.size() > 4 && name.substr(name.size() - 4) == "/TOH") {
    return std::make_unique<ThreadOverHit>(
        make_scheduler(name.substr(0, name.size() - 4), args));
  }
  if (name == "FCFS") return std::make_unique<FcfsScheduler>();
  if (name == "FCFS-RF") return std::make_unique<FcfsReadFirstScheduler>();
  if (name == "HF-RF") return std::make_unique<HitFirstReadFirstScheduler>();
  if (name == "HF-RF-OOO")
    return std::make_unique<HitFirstReadFirstScheduler>(/*window=*/0);
  if (name == "RR") return std::make_unique<RoundRobinScheduler>(args.core_count);
  if (name == "LREQ") return std::make_unique<LeastRequestScheduler>();
  if (name == "FQ") return std::make_unique<FairQueueScheduler>(args.core_count);
  if (name == "PAR-BS") return std::make_unique<ParbsScheduler>(args.core_count);
  if (name == "STFM") {
    MEMSCHED_ASSERT(args.ipc_single.size() == args.core_count,
                    "STFM needs one alone-IPC value per core");
    return std::make_unique<StfmScheduler>(args.ipc_single, args.epoch_cpu_cycles);
  }
  if (name == "FIX-DESC") return FixOrderScheduler::descending(args.core_count);
  if (name == "FIX-ASC") return FixOrderScheduler::ascending(args.core_count);
  if (name == "ME") return std::make_unique<MeScheduler>(me_for(args));
  if (name == "ME-LREQ") return std::make_unique<MeLreqScheduler>(me_for(args));
  if (name == "ME-LREQ-HW")
    return std::make_unique<MeLreqTableScheduler>(me_for(args), args.table_max_pending,
                                                  args.table_bits);
  // "ME-LREQ-POW-<a*10>-<b*10>": generalized exponents, e.g.
  // ME-LREQ-POW-05-20 -> ME^0.5 / Pending^2.0 (the §7 combination sweep).
  if (name.rfind("ME-LREQ-POW-", 0) == 0) {
    const std::string rest = name.substr(12);
    const auto dash = rest.find('-');
    MEMSCHED_ASSERT(dash != std::string::npos, "ME-LREQ-POW needs two exponents");
    const double a = std::stod(rest.substr(0, dash)) / 10.0;
    const double b = std::stod(rest.substr(dash + 1)) / 10.0;
    return std::make_unique<GeneralizedMeLreqScheduler>(me_for(args), a, b);
  }
  if (name == "ME-LREQ-ONLINE")
    return std::make_unique<OnlineMeLreqScheduler>(args.core_count, 0.25, args.cpu_hz);
  if (name == "BLISS") return std::make_unique<BlissScheduler>(args.core_count);
  if (name == "TCM") return std::make_unique<TcmScheduler>(args.core_count);
  if (name == "CADS") return std::make_unique<CadsScheduler>(args.core_count);
  throw std::invalid_argument("unknown scheduler: " + raw_name + suggestion_for(name));
}

std::vector<std::string> known_schedulers() {
  return {"FCFS",     "FCFS-RF", "HF-RF", "HF-RF-OOO", "RR",
          "LREQ",     "FQ",      "STFM",    "PAR-BS",  "FIX-DESC", "FIX-ASC", "ME",
          "ME-LREQ",  "ME-LREQ-HW", "ME-LREQ-ONLINE", "BLISS", "TCM", "CADS"};
}

}  // namespace memsched::core
