#include "core/memory_efficiency.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace memsched::core {

MeProfile MeProfile::from_measurement(std::string app_name, double ipc, double bw_gbs) {
  MEMSCHED_ASSERT(ipc >= 0.0 && bw_gbs >= 0.0, "negative profiling measurement");
  MeProfile p;
  p.app_name = std::move(app_name);
  p.ipc_single = ipc;
  p.bandwidth_gbs = bw_gbs;
  // An application with (near-)zero measured bandwidth has effectively
  // unbounded memory efficiency; clamp the divisor so ME stays finite, as
  // any real profiling pass would.
  constexpr double kMinBw = 1e-6;
  p.memory_efficiency = ipc / std::max(bw_gbs, kMinBw);
  return p;
}

double MeTable::max_me() const {
  double m = 0.0;
  for (const double v : me_) m = std::max(m, v);
  return m;
}

}  // namespace memsched::core
