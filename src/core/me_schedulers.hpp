// The paper's scheduling contributions (§3).
//
//   * MeScheduler       — "ME": fixed priority by profiled memory efficiency
//                         alone (evaluated as a strawman in §5.1/§5.2).
//   * MeLreqScheduler   — "ME-LREQ": Priority[i] = ME[i]/PendingRead[i]
//                         (Equation 2), combining the long-term ME signal
//                         with the short-term least-request signal.
//   * MeLreqTableScheduler — ME-LREQ through the Figure-1 hardware model:
//                         pre-computed 10-bit priority tables instead of
//                         run-time division.
//   * OnlineMeLreqScheduler — the future-work extension (§7): ME estimated
//                         at run time from per-epoch instruction and traffic
//                         counters instead of off-line profiling.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/memory_efficiency.hpp"
#include "core/priority_table.hpp"
#include "sched/scheduler.hpp"

namespace memsched::core {

/// Fixed priority by profiled ME (higher efficiency first). The paper shows
/// this starves low-ME cores and even loses to HF-RF on average.
class MeScheduler final : public sched::Scheduler {
 public:
  explicit MeScheduler(MeTable me) : me_(std::move(me)) {}

  [[nodiscard]] std::string name() const override { return "ME"; }
  [[nodiscard]] double core_priority(CoreId core) const override { return me_.me(core); }
  [[nodiscard]] bool random_core_tie_break() const override { return true; }

 private:
  MeTable me_;
};

/// ME-LREQ with the exact Equation-2 arithmetic.
class MeLreqScheduler final : public sched::Scheduler {
 public:
  explicit MeLreqScheduler(MeTable me) : me_(std::move(me)) {}

  [[nodiscard]] std::string name() const override { return "ME-LREQ"; }

  void prepare(const sched::QueueSnapshot& snap) override { snap_ = snap; }

  [[nodiscard]] double core_priority(CoreId core) const override {
    const std::uint32_t pending = snap_.pending_reads[core];
    if (pending == 0) return -std::numeric_limits<double>::infinity();
    return me_.me(core) / static_cast<double>(pending);
  }

  [[nodiscard]] bool random_core_tie_break() const override { return true; }

 private:
  MeTable me_;
  sched::QueueSnapshot snap_{};
};

/// ME-LREQ through the hardware priority tables (Figure 1): integer table
/// lookups; quantisation collisions resolved by the random tie-break.
class MeLreqTableScheduler final : public sched::Scheduler {
 public:
  explicit MeLreqTableScheduler(const MeTable& me,
                                std::uint32_t max_pending = PriorityTable::kDefaultMaxPending,
                                unsigned bits = PriorityTable::kDefaultBits)
      : table_(me, max_pending, bits) {}

  [[nodiscard]] std::string name() const override { return "ME-LREQ-HW"; }

  void prepare(const sched::QueueSnapshot& snap) override { snap_ = snap; }

  [[nodiscard]] double core_priority(CoreId core) const override {
    const std::uint32_t pending = snap_.pending_reads[core];
    if (pending == 0) return -std::numeric_limits<double>::infinity();
    return static_cast<double>(table_.lookup(core, pending));
  }

  [[nodiscard]] bool random_core_tie_break() const override { return true; }

  [[nodiscard]] const PriorityTable& table() const { return table_; }

 private:
  PriorityTable table_;
  sched::QueueSnapshot snap_{};
};

/// Generalized ME-LREQ (§7 future work: "explore other design choices in
/// the combination"): Priority[i] = ME[i]^alpha / PendingRead[i]^beta.
/// (1, 1) is the paper's Equation 2; (0, 1) degenerates to LREQ; (1, 0) to
/// the fixed-priority ME scheme. The ablation bench sweeps the exponents.
class GeneralizedMeLreqScheduler final : public sched::Scheduler {
 public:
  GeneralizedMeLreqScheduler(MeTable me, double alpha, double beta);

  [[nodiscard]] std::string name() const override;

  void prepare(const sched::QueueSnapshot& snap) override { snap_ = snap; }
  [[nodiscard]] double core_priority(CoreId core) const override;
  [[nodiscard]] bool random_core_tie_break() const override { return true; }

  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double beta() const { return beta_; }

 private:
  MeTable me_;
  double alpha_;
  double beta_;
  std::vector<double> me_pow_;  ///< ME[i]^alpha, precomputed
  sched::QueueSnapshot snap_{};
};

/// Online ME estimation (§7 future work). The simulation kernel feeds
/// per-epoch (committed instructions, DRAM bytes) samples through
/// on_epoch(); ME is an exponentially weighted moving average of
/// insts-per-byte, rescaled to the same GB/s units as Equation 1 so its
/// magnitude is comparable with profiled values. Until a core's first
/// sample arrives it is treated neutrally (all cores equal).
class OnlineMeLreqScheduler final : public sched::Scheduler {
 public:
  /// `alpha` is the EWMA weight of the newest epoch; `cpu_hz` converts the
  /// per-epoch ratio into IPC-per-GB/s units.
  explicit OnlineMeLreqScheduler(std::uint32_t core_count, double alpha = 0.25,
                                 double cpu_hz = 3.2e9);

  [[nodiscard]] std::string name() const override { return "ME-LREQ-ONLINE"; }

  void prepare(const sched::QueueSnapshot& snap) override { snap_ = snap; }
  [[nodiscard]] double core_priority(CoreId core) const override;
  [[nodiscard]] bool random_core_tie_break() const override { return true; }
  void on_epoch(CoreId core, double committed_insts, double dram_bytes) override;
  void reset() override;

  /// Current estimate (for tests/diagnostics); 0 until the first sample.
  [[nodiscard]] double estimated_me(CoreId core) const { return me_est_.at(core); }

  void save_state(ckpt::Writer& w) const override;
  void load_state(ckpt::Reader& r) override;

 private:
  double alpha_;
  double cpu_hz_;
  std::vector<double> me_est_;
  std::vector<bool> seeded_;
  sched::QueueSnapshot snap_{};
};

}  // namespace memsched::core
