// Name-based scheduler construction — one place that knows every scheme.
//
// Used by the bench harnesses and examples so a scheme is just a string
// ("HF-RF", "ME-LREQ", ...). Library users embedding memsched can of course
// construct policy objects directly or supply their own Scheduler subclass.
#pragma once

#include <string>
#include <vector>

#include "core/memory_efficiency.hpp"
#include "sched/scheduler.hpp"

namespace memsched::core {

/// Everything a factory might need; schemes ignore what they don't use.
struct SchedulerArgs {
  std::uint32_t core_count = 1;
  MeTable me;  ///< profiled ME per core (ME/ME-LREQ variants)
  std::vector<double> ipc_single;  ///< profiled alone-IPC per core (STFM)
  std::uint32_t table_max_pending = 64;
  unsigned table_bits = 10;
  double cpu_hz = 3.2e9;
  double epoch_cpu_cycles = 32768.0;  ///< on_epoch interval in CPU cycles
};

/// Creates a scheduler by name. Known names:
///   FCFS, FCFS-RF, HF-RF, HF-RF-OOO, RR, LREQ, FQ, STFM, PAR-BS,
///   FIX-DESC, FIX-ASC, ME, ME-LREQ, ME-LREQ-HW, ME-LREQ-ONLINE,
///   BLISS, TCM, CADS (the modern epoch-aware zoo),
/// plus two parameterised families:
///   "<name>/TOH"            — thread-priority-over-hit ablation variant;
///   "ME-LREQ-POW-<a>-<b>"   — generalized exponents in tenths
///                             (ME-LREQ-POW-05-20 = ME^0.5 / Pending^2.0).
/// Matching is case-insensitive ("bliss" == "BLISS"); the canonical
/// UPPERCASE name is what reaches reports. Throws std::invalid_argument for
/// unknown names, with a did-you-mean suggestion when one is close.
sched::SchedulerPtr make_scheduler(const std::string& name, const SchedulerArgs& args);

/// All scheme names make_scheduler accepts, in evaluation order.
std::vector<std::string> known_schedulers();

}  // namespace memsched::core
