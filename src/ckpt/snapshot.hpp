// Versioned binary snapshot format for simulator checkpoint/restore.
//
// Layout (host-endian, little-endian assumed as everywhere in this codebase):
//
//   magic     u64   "MEMSCKP1" — format identity
//   version   u32   schema version; bumped whenever any component changes
//                   what it serializes (old snapshots are then discarded)
//   fp_len    u32   fingerprint byte length
//   fp        bytes configuration fingerprint (seed, SystemConfig, run
//                   parameters) — a snapshot only resumes the exact run that
//                   wrote it
//   nsections u32
//   per section:
//     name_len u32, name bytes, payload_len u64, crc32 u32, payload bytes
//
// Every section carries its own CRC32 so corruption (truncation, bit flips)
// is detected before any byte is interpreted; a reader failure is always a
// SnapshotError, never UB, and callers fall back to a from-scratch run.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace memsched::ckpt {

inline constexpr std::uint64_t kMagic = 0x3150'4b43'534d'454dULL;  // "MEMSCKP1"
inline constexpr std::uint32_t kVersion = 2;  // v2: controller interval/epoch state

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
std::uint32_t crc32(const void* data, std::size_t size);

/// Any structural problem with a snapshot: bad magic, version or fingerprint
/// mismatch, CRC failure, truncation, or a section read past its end.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

/// Serializes named sections of plain scalars and saves them atomically.
/// Components append to the section the caller opened; the writer owns
/// framing, CRCs and the atomic tmp+fsync+rename publish.
class Writer {
 public:
  /// Starts a new section; subsequent put_* calls append to it. Section
  /// names must be unique within one snapshot.
  void begin_section(const std::string& name);

  void put_u8(std::uint8_t v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  /// Doubles round-trip bit-exactly (bit_cast through u64) — required for
  /// the byte-identical-report guarantee.
  void put_f64(double v);
  void put_str(const std::string& s);
  void put_u64_vec(const std::vector<std::uint64_t>& v);

  void put_rng(const util::Xoshiro256& rng);
  void put_stat(const util::RunningStat& st);
  void put_hist(const util::Histogram& h);

  /// Writes the snapshot to `path` via util::atomic_write_file. Throws on
  /// I/O failure; an existing snapshot at `path` is then left untouched.
  void save(const std::string& path, const std::string& fingerprint) const;

 private:
  struct Section {
    std::string name;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<Section> sections_;
};

/// Parses and validates a snapshot, then hands out typed reads per section.
/// Construction validates magic, version, fingerprint and every section CRC
/// up front; afterwards reads can only fail on logical over-reads (which are
/// still SnapshotError, never UB).
class Reader {
 public:
  /// Loads `path`, throwing SnapshotError unless the file is a complete,
  /// CRC-clean snapshot whose fingerprint equals `expected_fingerprint`.
  Reader(const std::string& path, const std::string& expected_fingerprint);

  /// Parses an in-memory image with the same validation. Used by callers
  /// that read the bytes themselves (the result cache routes reads through
  /// the fs fault hooks before handing the image over for parsing).
  Reader(const std::vector<std::uint8_t>& raw, const std::string& expected_fingerprint);

  [[nodiscard]] bool has_section(const std::string& name) const;

  /// Positions the read cursor at the start of section `name`.
  void open_section(const std::string& name);

  std::uint8_t get_u8();
  bool get_bool() { return get_u8() != 0; }
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_f64();
  std::string get_str();
  std::vector<std::uint64_t> get_u64_vec();

  void get_rng(util::Xoshiro256& rng);
  void get_stat(util::RunningStat& st);
  void get_hist(util::Histogram& h);

  /// Asserts the open section was consumed exactly — a length mismatch means
  /// writer and reader disagree about the schema, which must not pass
  /// silently.
  void close_section();

 private:
  void parse(const std::vector<std::uint8_t>& raw, const std::string& expected_fingerprint);
  const std::uint8_t* need(std::size_t n);

  std::map<std::string, std::vector<std::uint8_t>> sections_;
  const std::vector<std::uint8_t>* cur_ = nullptr;
  std::string cur_name_;
  std::size_t pos_ = 0;
};

}  // namespace memsched::ckpt
