#include "ckpt/signal.hpp"

#include <fcntl.h>
#include <unistd.h>

namespace memsched::ckpt {

namespace {

volatile std::sig_atomic_t g_stop = 0;
int g_pipe[2] = {-1, -1};

void on_stop_signal(int /*signo*/) {
  g_stop = 1;
  if (g_pipe[1] >= 0) {
    const char b = 1;
    // Best effort: a full pipe just means earlier signals are still pending.
    [[maybe_unused]] const ssize_t n = ::write(g_pipe[1], &b, 1);
  }
}

}  // namespace

void install_stop_handlers() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  if (::pipe(g_pipe) == 0) {
    ::fcntl(g_pipe[0], F_SETFL, O_NONBLOCK);
    ::fcntl(g_pipe[1], F_SETFL, O_NONBLOCK);
    ::fcntl(g_pipe[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(g_pipe[1], F_SETFD, FD_CLOEXEC);
  }
  struct sigaction sa = {};
  sa.sa_handler = on_stop_signal;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

const volatile std::sig_atomic_t& stop_flag() { return g_stop; }

bool stop_requested() { return g_stop != 0; }

int stop_pipe_fd() { return g_pipe[0]; }

void reset_stop_for_tests() {
  g_stop = 0;
  if (g_pipe[0] >= 0) {
    char buf[16];
    while (::read(g_pipe[0], buf, sizeof(buf)) > 0) {
    }
  }
}

}  // namespace memsched::ckpt
